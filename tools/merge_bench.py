#!/usr/bin/env python3
"""Merge every BENCH_*.json under the given directories into one document.

CI produces one JSON per bench gate (BENCH_perf.json, BENCH_va.json,
BENCH_store.json, ...) spread across per-job artifacts. This script folds
them into a single `bench-trajectory` document so one download shows the
whole performance picture of a run:

    {
      "schema": "dragonviz.bench-trajectory/1",
      "benches": [
        {"name": "BENCH_perf.json", "source": "bench-perf", "data": {...}},
        ...
      ]
    }

`source` is the path of the containing directory relative to the scan
root (the artifact name in CI), so two lanes uploading the same filename
— e.g. perf-smoke and perf-parallel both write BENCH_perf.json — stay
distinguishable. Files that fail to parse are reported and skipped: a
truncated artifact must not hide every other measurement.

Usage:
    merge_bench.py --out BENCH_trajectory.json DIR [DIR ...]
"""

import argparse
import json
import os
import sys


def collect(roots):
    """Yields (source, name, path) for every BENCH_*.json under roots."""
    for root in roots:
        if os.path.isfile(root):
            yield os.path.basename(os.path.dirname(root)) or ".", \
                os.path.basename(root), root
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if not (name.startswith("BENCH_") and name.endswith(".json")):
                    continue
                source = os.path.relpath(dirpath, root)
                yield ("." if source == "." else source), name, \
                    os.path.join(dirpath, name)


def summarize(data):
    """One-line human summary of a bench document, or None.

    Currently only BENCH_sweep.json carries enough provenance to be worth
    a line: the heavy-UR point's wall clocks plus the flow solver
    telemetry recorded alongside them (how the run split its solves),
    so a trajectory diff shows *why* a number moved, not just that it did.
    """
    ur = data.get("heavy_ur")
    if not isinstance(ur, dict):
        return None
    parts = []
    for key, label in (("seconds_flow", "flow"),
                       ("seconds_flow_coarsen", "coarsen"),
                       ("seconds_packet", "packet")):
        if key in ur:
            parts.append(f"{label} {ur[key]:.3f}s")
    tel = ur.get("telemetry_flow")
    if isinstance(tel, dict):
        parts.append(
            f"[{tel.get('solves', 0)} solves: "
            f"{tel.get('full_solves', 0)} full + "
            f"{tel.get('incremental_solves', 0)} incremental, "
            f"{tel.get('epochs', 0)} epochs, "
            f"{tel.get('drain_events', 0)} drains]")
    return "heavy_ur " + " ".join(parts) if parts else None


def main(argv):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", required=True, help="merged output path")
    ap.add_argument("roots", nargs="+",
                    help="directories (or single files) to scan")
    args = ap.parse_args(argv)

    benches = []
    skipped = []
    for source, name, path in sorted(collect(args.roots)):
        try:
            with open(path, encoding="utf-8") as f:
                data = json.load(f)
        except (OSError, ValueError) as err:
            skipped.append(f"{path}: {err}")
            continue
        benches.append({"name": name, "source": source, "data": data})
        line = summarize(data)
        if line:
            print(f"merge_bench: {source}/{name}: {line}")

    for line in skipped:
        print(f"merge_bench: skipped unreadable {line}", file=sys.stderr)
    if not benches:
        print("merge_bench: no BENCH_*.json found", file=sys.stderr)
        return 1

    merged = {
        "schema": "dragonviz.bench-trajectory/1",
        "benches": benches,
    }
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(merged, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"merge_bench: wrote {args.out} "
          f"({len(benches)} documents, {len(skipped)} skipped)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
