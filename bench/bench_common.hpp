// Shared helpers for the per-figure benchmark harnesses.
//
// Every bench regenerates one table/figure of the paper: it runs the
// corresponding simulations, prints the same rows/series the paper
// reports, renders the figure's SVG into ./bench_out/, and checks the
// qualitative *shape* claims ([shape OK] / [shape MISMATCH] lines).
// Absolute numbers are not expected to match the authors' testbed.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "app/runner.hpp"
#include "core/comparison.hpp"
#include "core/views.hpp"
#include "metrics/run_metrics.hpp"

namespace dv::bench {

/// Runs `fn` once untimed (warm-up: page-in, allocator and cache state),
/// then `reps` timed repetitions, and returns the median per-repetition
/// wall seconds — robust against a stray slow rep on shared CI hardware,
/// unlike the mean over one timed block.
double median_seconds(int reps, const std::function<void()>& fn);

/// JSON object literal describing how a BENCH_*.json number was produced:
/// compiler, build flavour (optimized / assertions), observability state,
/// hardware threads. Stamped into every benchmark artifact so a number is
/// never compared against one from a different build configuration.
std::string provenance_json();

/// Aggregate statistics over one link class.
struct LinkClassStats {
  int used = 0;
  double traffic = 0.0;
  double sat = 0.0;
  double peak_sat = 0.0;
};
LinkClassStats link_stats(const std::vector<metrics::LinkMetrics>& links);

/// Aggregate terminal statistics, optionally restricted to one job.
struct TermStats {
  double avg_latency = 0.0;
  double avg_hops = 0.0;
  double sat = 0.0;
  std::uint64_t packets = 0;
};
TermStats term_stats(const metrics::RunMetrics& run, std::int32_t job = -2);

/// Prints the bench banner (figure id + what the paper reports there) and
/// resets the observability registry so footer() can emit a per-bench
/// profile named after the figure id.
void banner(const std::string& figure, const std::string& paper_claim);

/// Records and prints one qualitative shape check.
void shape_check(bool ok, const std::string& description);

/// Number of failed shape checks so far (printed in the footer).
int shape_failures();

/// Prints the closing summary; returns 0 (benches never fail the run —
/// mismatches are reported, not fatal). In DV_OBS_ENABLED builds it also
/// writes bench_out/<figure-slug>.profile.json — the observability profile
/// accumulated across every simulation the bench ran since banner().
int footer();

/// Ensures ./bench_out exists and returns "bench_out/<name>".
std::string out_path(const std::string& name);

/// Applies shared bench command-line options. Currently: `--parallel N`
/// selects the partitioned parallel simulation engine for every experiment
/// the bench runs (exported via the DV_PARALLEL environment variable,
/// which run_experiment reads as its default). Unknown options are ignored
/// so figure-specific flags can coexist.
void parse_args(int argc, char** argv);

/// Standard experiment shortcuts used by several figures.
app::ExperimentConfig paper_df5_app(const std::string& app,
                                    routing::Algo algo);
app::ExperimentConfig fig13_config(placement::Policy amg,
                                   placement::Policy amr,
                                   placement::Policy minife);

}  // namespace dv::bench
