// VA interactive loop — time-windowed re-aggregation with the query cache.
//
// The paper's premise is that design-space exploration stays *interactive*
// while brushing time ranges and re-projecting. This bench quantifies the
// query-engine layers on the DF(1056-terminal) preset (dragonfly
// canonical(4): g=33 a=8 p=4):
//
//   cold     — every brush slices the run (slice_time) and re-aggregates
//              from scratch, the pre-engine path;
//   windowed — a fresh QueryEngine answers the same brushes (group slabs
//              are built once, then each window is an O(groups) delta);
//   cached   — the warmed engine re-answers the same brushes (pure hits).
//
// Emits bench_out/BENCH_va.json and checks cached >= 10x cold. When a
// previous BENCH_va.json exists (DV_BENCH_BASELINE overrides the path),
// the windowed/cached per-query rates must stay within 25% of it — a
// same-machine floor for local runs; CI disables it (DV_BENCH_BASELINE=
// /dev/null) and gates only on machine-relative speedups, because
// absolute timings do not transfer across runner hardware.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "core/query.hpp"
#include "json/json.hpp"

namespace {

using namespace dv;

struct RingQuery {
  core::Entity entity;
  const char* key;
  const char* attr;
};

// The three rings of the "interactive" preset.
constexpr RingQuery kRings[] = {
    {core::Entity::kGlobalLink, "group_id", "traffic"},
    {core::Entity::kLocalLink, "router_rank", "traffic"},
    {core::Entity::kTerminal, "router_rank", "data_size"},
};

core::AggregationSpec ring_spec(const RingQuery& q) {
  core::AggregationSpec spec;
  spec.keys = {q.key};
  return spec;
}

double checksum(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc;
}

struct Mode {
  const char* name;
  double seconds = 0.0;
  std::size_t queries = 0;
  double check = 0.0;  // keeps the work observable
  double ms_per_query() const {
    return queries ? seconds * 1e3 / static_cast<double>(queries) : 0.0;
  }
};

/// ms_per_query recorded for `mode` in a previous BENCH_va.json, or 0 when
/// the file is missing/unreadable (0 skips the floor — CI points
/// `DV_BENCH_BASELINE` at /dev/null for exactly that effect).
double read_baseline_ms(const std::string& default_path,
                        const std::string& mode) {
  const char* env = std::getenv("DV_BENCH_BASELINE");
  const std::string path = env && *env ? env : default_path;
  std::ifstream is(path, std::ios::binary);
  if (!is) return 0.0;
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    const dv::json::Value v = dv::json::parse(buf.str());
    for (const auto& m : v.at("modes").as_array()) {
      if (m.get_string("mode", "") == mode) {
        return m.get_number("ms_per_query", 0.0);
      }
    }
  } catch (...) {
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner(
      "VA interactive — windowed re-aggregation with a spec-keyed cache",
      "brushing a time range re-aggregates incrementally; cached brushes "
      "answer >= 10x faster than slicing from scratch");

  app::ExperimentConfig cfg;
  cfg.dragonfly_p = 4;  // 1056 terminals
  cfg.jobs = {{"uniform_random", 0, placement::Policy::kContiguous, 0}};
  cfg.routing = routing::Algo::kAdaptive;
  cfg.window = 1.0e5;
  cfg.sample_dt = 500.0;
  cfg.seed = 7;
  const auto run = app::run_experiment(cfg).run;
  const core::DataSet data(run);
  std::printf("run: %u terminals, end=%.0f ns, %zu frames of %.0f ns\n",
              run.groups * run.routers_per_group * run.terminals_per_router,
              run.end_time, run.local_traffic_ts.frames(), run.sample_dt);

  // A brushing session: W distinct windows sweeping across the run.
  const std::size_t W = 40;
  std::vector<core::TimeWindow> windows;
  for (std::size_t i = 0; i < W; ++i) {
    const double t0 = run.end_time * 0.6 * static_cast<double>(i) / W;
    windows.push_back(core::TimeWindow{t0, t0 + run.end_time * 0.35});
  }

  Mode cold{"cold"}, windowed{"windowed"}, cached{"cached"};

  {  // cold: slice_time + fresh aggregation per brush
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& w : windows) {
      const core::DataSet sliced = data.slice_time(w.t0, w.t1);
      for (const auto& q : kRings) {
        const core::Aggregation agg(sliced.table(q.entity), ring_spec(q));
        cold.check += checksum(agg.reduce(q.attr, core::Reducer::kSum));
        ++cold.queries;
      }
    }
    cold.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
  }

  core::QueryEngine engine(data, 512);
  {  // windowed: fresh engine, slabs amortized across the sweep
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& w : windows) {
      for (const auto& q : kRings) {
        auto spec = ring_spec(q);
        spec.window = w;
        windowed.check += checksum(
            *engine.reduce(q.entity, spec, q.attr, core::Reducer::kSum));
        ++windowed.queries;
      }
    }
    windowed.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  }

  {  // cached: the same brushes again, answered from the LRU
    const auto t0 = std::chrono::steady_clock::now();
    for (int rep = 0; rep < 5; ++rep) {
      for (const auto& w : windows) {
        for (const auto& q : kRings) {
          auto spec = ring_spec(q);
          spec.window = w;
          cached.check += checksum(
              *engine.reduce(q.entity, spec, q.attr, core::Reducer::kSum));
          ++cached.queries;
        }
      }
    }
    cached.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
  }

  const auto stats = engine.stats();
  for (const Mode* m : {&cold, &windowed, &cached}) {
    std::printf("%-9s %6zu queries in %8.3f ms  (%8.4f ms/query)\n", m->name,
                m->queries, m->seconds * 1e3, m->ms_per_query());
  }
  std::printf("cache: %llu hits / %llu misses, %llu slab builds, "
              "%llu slab reductions\n",
              static_cast<unsigned long long>(stats.hits),
              static_cast<unsigned long long>(stats.misses),
              static_cast<unsigned long long>(stats.slab_builds),
              static_cast<unsigned long long>(stats.slab_reduces));

  const double windowed_speedup = cold.ms_per_query() / windowed.ms_per_query();
  const double cached_speedup = cold.ms_per_query() / cached.ms_per_query();
  std::printf("speedup vs cold: windowed %.1fx, cached %.1fx\n",
              windowed_speedup, cached_speedup);

  // The three paths all sum the same per-window traffic (per-brush checksum
  // sets differ only in repetition count, so compare per-query averages).
  const double cold_avg = cold.check / static_cast<double>(cold.queries);
  const double win_avg = windowed.check / static_cast<double>(windowed.queries);
  const double cache_avg = cached.check / static_cast<double>(cached.queries);
  bench::shape_check(
      std::abs(win_avg - cold_avg) <= 1e-6 + std::abs(cold_avg) * 1e-6 &&
          std::abs(cache_avg - cold_avg) <= 1e-6 + std::abs(cold_avg) * 1e-6,
      "windowed and cached answers agree with slicing from scratch");
  bench::shape_check(cached_speedup >= 10.0,
                     "cached re-aggregation is >= 10x faster than cold");
  bench::shape_check(windowed_speedup >= 2.0,
                     "incremental windowed aggregation beats cold slicing");
  bench::shape_check(stats.slab_builds <= 3,
                     "group slabs are built once per ring, not per brush");

  const std::string path = bench::out_path("BENCH_va.json");
  // Rate floor vs the checked-in baseline, read before it is overwritten.
  // windowed sums ~3ms over 120 queries, so a 25% band absorbs runner
  // jitter while catching real hot-path regressions; cached answers are
  // sub-microsecond lookups where timer noise dominates, so only a 2x
  // slowdown is treated as a real regression there.
  struct Floor {
    const Mode* mode;
    double min_ratio;
  };
  for (const auto& [m, min_ratio] :
       {Floor{&windowed, 0.75}, Floor{&cached, 0.5}}) {
    const double base_ms = read_baseline_ms(path, m->name);
    if (base_ms <= 0.0) continue;
    const double ratio = base_ms / m->ms_per_query();  // >1 means faster
    std::printf("%s vs baseline: %.4f ms/query vs %.4f (%.2fx)\n", m->name,
                m->ms_per_query(), base_ms, ratio);
    bench::shape_check(ratio >= min_ratio,
                       std::string(m->name) + " per-query rate above the " +
                           (min_ratio >= 0.75 ? "25%" : "2x") +
                           " regression floor vs the baseline");
  }
  std::ofstream os(path, std::ios::binary);
  os << "{\n  \"benchmark\": \"va_interactive\",\n"
     << "  \"provenance\": " << bench::provenance_json() << ",\n"
     << "  \"topology\": \"dragonfly canonical(4)\",\n"
     << "  \"terminals\": "
     << run.groups * run.routers_per_group * run.terminals_per_router << ",\n"
     << "  \"frames\": " << run.local_traffic_ts.frames() << ",\n"
     << "  \"brush_windows\": " << W << ",\n"
     << "  \"modes\": [\n";
  const Mode* modes[] = {&cold, &windowed, &cached};
  for (std::size_t i = 0; i < 3; ++i) {
    os << "    {\"mode\": \"" << modes[i]->name
       << "\", \"queries\": " << modes[i]->queries
       << ", \"seconds\": " << modes[i]->seconds
       << ", \"ms_per_query\": " << modes[i]->ms_per_query() << "}"
       << (i + 1 < 3 ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"speedup_windowed_vs_cold\": " << windowed_speedup << ",\n"
     << "  \"speedup_cached_vs_cold\": " << cached_speedup << ",\n"
     << "  \"cache\": {\"hits\": " << stats.hits
     << ", \"misses\": " << stats.misses
     << ", \"slab_builds\": " << stats.slab_builds
     << ", \"slab_reduces\": " << stats.slab_reduces << "}\n"
     << "}\n";
  std::printf("wrote %s\n", path.c_str());
  return bench::footer();
}
