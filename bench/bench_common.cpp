#include "bench_common.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <thread>

#include "obs/profile.hpp"

namespace dv::bench {

namespace {
int g_failures = 0;
int g_checks = 0;
std::string g_figure_slug;

/// "Figure 8 — minimal vs adaptive..." -> "figure_8" (first two words).
std::string slugify(const std::string& figure) {
  std::string s;
  for (const char c : figure) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!s.empty() && s.back() != '_') {
      if (s.find('_') != std::string::npos) break;  // keep "figure_8"
      s += '_';
    }
  }
  while (!s.empty() && s.back() == '_') s.pop_back();
  return s.empty() ? "bench" : s;
}
}  // namespace

double median_seconds(int reps, const std::function<void()>& fn) {
  fn();  // warm-up, untimed
  std::vector<double> secs;
  secs.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    secs.push_back(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count());
  }
  std::sort(secs.begin(), secs.end());
  const std::size_t n = secs.size();
  return n % 2 ? secs[n / 2] : 0.5 * (secs[n / 2 - 1] + secs[n / 2]);
}

std::string provenance_json() {
  std::ostringstream os;
  os << "{\"compiler\": \"" << __VERSION__ << "\", \"optimized\": "
#ifdef NDEBUG
     << "true"
#else
     << "false"
#endif
     << ", \"obs_enabled\": " << (obs::kEnabled ? "true" : "false")
     << ", \"hardware_threads\": " << std::thread::hardware_concurrency()
     << "}";
  return os.str();
}

LinkClassStats link_stats(const std::vector<metrics::LinkMetrics>& links) {
  LinkClassStats s;
  for (const auto& l : links) {
    s.used += l.traffic > 0;
    s.traffic += l.traffic;
    s.sat += l.sat_time;
    s.peak_sat = std::max(s.peak_sat, l.sat_time);
  }
  return s;
}

TermStats term_stats(const metrics::RunMetrics& run, std::int32_t job) {
  TermStats s;
  double lat = 0, hops = 0;
  for (const auto& t : run.terminals) {
    if (job != -2 && t.job != job) continue;
    lat += t.sum_latency;
    hops += t.sum_hops;
    s.sat += t.sat_time;
    s.packets += t.packets_finished;
  }
  if (s.packets) {
    s.avg_latency = lat / static_cast<double>(s.packets);
    s.avg_hops = hops / static_cast<double>(s.packets);
  }
  return s;
}

void banner(const std::string& figure, const std::string& paper_claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", figure.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("================================================================\n");
  g_figure_slug = slugify(figure);
  obs::reset();  // profile covers everything the bench runs from here on
}

void shape_check(bool ok, const std::string& description) {
  ++g_checks;
  if (!ok) ++g_failures;
  std::printf("  [shape %s] %s\n", ok ? "OK      " : "MISMATCH", description.c_str());
}

int shape_failures() { return g_failures; }

int footer() {
  std::printf("----------------------------------------------------------------\n");
  std::printf("shape checks: %d/%d matched the paper\n", g_checks - g_failures,
              g_checks);
  if (obs::kEnabled && !g_figure_slug.empty()) {
    const obs::RunProfile profile = obs::capture();
    const std::string path = out_path(g_figure_slug + ".profile.json");
    profile.save(path);
    std::printf("profile: %s (%llu events, %.2fs wall)\n", path.c_str(),
                static_cast<unsigned long long>(
                    profile.counter_value("sim.events_processed")),
                profile.wall_seconds);
  }
  return 0;
}

std::string out_path(const std::string& name) {
  std::filesystem::create_directories("bench_out");
  return "bench_out/" + name;
}

void parse_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--parallel" && i + 1 < argc) {
      value = argv[++i];
    } else if (arg.rfind("--parallel=", 0) == 0) {
      value = arg.substr(std::string("--parallel=").size());
    } else {
      continue;
    }
    ::setenv("DV_PARALLEL", value.c_str(), 1);
    std::printf("engine: parallel=%s (DV_PARALLEL)\n", value.c_str());
  }
}

app::ExperimentConfig paper_df5_app(const std::string& appname,
                                    routing::Algo algo) {
  app::ExperimentConfig cfg;
  cfg.dragonfly_p = 5;  // 2,550 terminals, as in Sec. V-C
  app::JobSpec job;
  job.workload = appname;
  job.policy = placement::Policy::kContiguous;
  // Volumes: scaled defaults, except AMG raised so its bursts exercise the
  // inter-group links (DESIGN.md "Substitutions").
  if (appname == "amg") job.bytes = 150u << 20;
  cfg.jobs = {job};
  cfg.routing = algo;
  cfg.window = 5.0e5;
  cfg.seed = 7;
  return cfg;
}

app::ExperimentConfig fig13_config(placement::Policy amg,
                                   placement::Policy amr,
                                   placement::Policy minife) {
  app::ExperimentConfig cfg;
  cfg.dragonfly_p = 6;  // the paper's 73x12x6 = 5,256-terminal network
  cfg.jobs = {{"amg", 1728, amg, 150u << 20},
              {"amr_boxlib", 1728, amr, 30u << 20},
              {"minife", 1152, minife, 735u << 20}};
  cfg.routing = routing::Algo::kAdaptive;
  cfg.window = 5.0e5;
  cfg.seed = 23;
  return cfg;
}

}  // namespace dv::bench
