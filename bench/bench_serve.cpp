// serve daemon under concurrent multi-tenant load.
//
// N synthetic clients connect to one in-process Server (socketpair per
// client — the exact serve_fd path a TCP/unix accept takes) and sweep the
// same brushing session: windowed renders of the overview preset across a
// shared set of time windows. Because every session's windows hash to the
// same canonical cache keys, the shared sharded ResultCache turns the
// fleet's workload into one computation per distinct view plus hits —
// the multi-tenant premise of the serve daemon.
//
// Emits bench_out/BENCH_serve.json and checks:
//   - shared-cache hit rate across 8 concurrent clients > 80%,
//   - the daemon-path render is byte-identical to the direct CLI path,
//   - every client observed identical bytes for the same view.
#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/projection.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace dv;

json::Value render_params(double t0, double t1) {
  json::Object p;
  p["run"] = json::Value("bench");
  p["spec"] = json::Value("preset:overview");
  if (t1 > t0) {
    p["window"] = json::Value(json::Array{json::Value(t0), json::Value(t1)});
  }
  return json::Value(std::move(p));
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner(
      "serve — multi-tenant query daemon over the shared result cache",
      "concurrent sessions brushing the same views share one cache: hit "
      "rate > 80% across 8 clients, daemon renders byte-identical to the "
      "direct path");

  // One sampled mid-size run, written to disk so the daemon loads it the
  // way production does.
  app::ExperimentConfig cfg;
  cfg.dragonfly_p = 3;
  cfg.jobs = {{"uniform_random", 0, placement::Policy::kContiguous, 0}};
  cfg.routing = routing::Algo::kAdaptive;
  cfg.window = 1.0e5;
  cfg.sample_dt = 500.0;
  cfg.seed = 7;
  const auto run = app::run_experiment(cfg).run;
  const std::string run_path = bench::out_path("serve_run.json");
  run.save(run_path);

  constexpr std::size_t kClients = 8;
  constexpr std::size_t kRequestsPerClient = 24;
  constexpr std::size_t kWindows = 6;  // distinct views shared by everyone

  serve::ServeOptions opts;
  opts.workers = 4;
  opts.max_queue = 256;
  opts.cache_capacity = 4096;
  serve::Server server(opts);
  server.catalog().load(run_path, "bench");

  std::vector<std::pair<double, double>> windows;
  for (std::size_t i = 0; i < kWindows; ++i) {
    const double t0 =
        run.end_time * 0.5 * static_cast<double>(i) / kWindows;
    windows.emplace_back(t0, t0 + run.end_time * 0.4);
  }

  // Every client renders the same window sequence; per-client first bytes
  // of view 0 are compared afterwards.
  std::vector<std::string> first_svg(kClients);
  std::atomic<std::uint64_t> requests_done{0};
  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    std::vector<std::thread> conns;
    for (std::size_t c = 0; c < kClients; ++c) {
      int sv[2] = {-1, -1};
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
        std::fprintf(stderr, "socketpair failed\n");
        return 1;
      }
      conns.emplace_back([&server, fd = sv[0]] { server.serve_fd(fd); });
      clients.emplace_back([&, c, fd = sv[1]] {
        serve::Client client(fd);
        client.call("hello");
        for (std::size_t r = 0; r < kRequestsPerClient; ++r) {
          const auto& [t0, t1] = windows[r % kWindows];
          const auto resp = client.call("render", render_params(t0, t1));
          if (r == 0) first_svg[c] = resp.at("svg").as_string();
          requests_done.fetch_add(1, std::memory_order_relaxed);
        }
        client.call("bye");
      });
    }
    for (auto& t : clients) t.join();
    for (auto& t : conns) t.join();
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Post-hoc stats from a fresh control session.
  int sv[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return 1;
  std::thread control([&server, fd = sv[0]] { server.serve_fd(fd); });
  json::Value stats;
  std::string daemon_svg;
  {
    serve::Client client(sv[1]);
    // Unwindowed render for the CLI byte-identity check.
    daemon_svg =
        client.call("render", render_params(0, 0)).at("svg").as_string();
    stats = client.call("stats");
  }
  control.join();

  const auto& cache = stats.at("cache");
  const double hit_rate = cache.get_number("hit_rate", 0.0);
  const double hits = cache.get_number("hits", 0.0);
  const double misses = cache.get_number("misses", 0.0);
  const double coalesced = cache.get_number("coalesced", 0.0);
  const auto& render_lat = stats.at("latency_ms").at("render");

  // Direct CLI path: fresh dataset + fresh engine from the same file, the
  // exact work `dragonviz render --spec preset:overview` does.
  const core::DataSet data(metrics::RunMetrics::load(run_path));
  core::QueryEngine engine(data);
  const core::ProjectionView view(data, core::preset("overview"), nullptr,
                                  &engine);
  const std::string direct_svg = view.to_svg(
      800, data.run().workload + " / " + data.run().routing);

  bool clients_identical = true;
  for (const auto& svg : first_svg) {
    clients_identical = clients_identical && svg == first_svg[0];
  }

  std::printf("%zu clients x %zu requests in %.2fs (%.0f req/s)\n", kClients,
              kRequestsPerClient, wall,
              static_cast<double>(requests_done.load()) / wall);
  std::printf("cache: %.0f hits / %.0f misses (%.1f%% hit rate, "
              "%.0f coalesced)\n",
              hits, misses, hit_rate * 100, coalesced);
  std::printf("render latency: p50 %.2f ms, p99 %.2f ms over %.0f requests\n",
              render_lat.get_number("p50_ms", 0),
              render_lat.get_number("p99_ms", 0),
              render_lat.get_number("count", 0));

  bench::shape_check(hit_rate > 0.8,
                     "shared-cache hit rate > 80% across concurrent clients");
  bench::shape_check(daemon_svg == direct_svg,
                     "daemon render byte-identical to the direct CLI path");
  bench::shape_check(clients_identical,
                     "all clients observed identical bytes per view");

  std::ofstream js(bench::out_path("BENCH_serve.json"));
  js << "{\n"
     << "  \"bench\": \"serve\",\n"
     << "  \"clients\": " << kClients << ",\n"
     << "  \"requests_per_client\": " << kRequestsPerClient << ",\n"
     << "  \"distinct_views\": " << kWindows << ",\n"
     << "  \"wall_seconds\": " << wall << ",\n"
     << "  \"requests_per_second\": "
     << static_cast<double>(requests_done.load()) / wall << ",\n"
     << "  \"cache_hits\": " << hits << ",\n"
     << "  \"cache_misses\": " << misses << ",\n"
     << "  \"cache_hit_rate\": " << hit_rate << ",\n"
     << "  \"coalesced\": " << coalesced << ",\n"
     << "  \"render_p50_ms\": " << render_lat.get_number("p50_ms", 0) << ",\n"
     << "  \"render_p99_ms\": " << render_lat.get_number("p99_ms", 0) << ",\n"
     << "  \"byte_identical_to_cli\": "
     << (daemon_svg == direct_svg ? "true" : "false") << ",\n"
     << "  \"provenance\": " << bench::provenance_json() << "\n"
     << "}\n";
  std::printf("wrote %s\n", bench::out_path("BENCH_serve.json").c_str());
  return bench::footer();
}
