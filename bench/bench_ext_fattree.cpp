// Extension — Fat Tree through the dragonviz VA pipeline (Sec. VI).
//
// The paper's future work: "extend our system to support analysis and
// exploration of other network topologies, such as Fat Tree and Slim Fly".
// This bench runs uniform-random and incast workloads on a k=8 fat tree
// (128 hosts), maps the results into the standard entity tables
// (pods = groups, edge/agg switches = routers, cores = pseudo-pods), and
// renders the same radial projection views used for the Dragonfly.
#include <cstdio>

#include "bench_common.hpp"
#include "netsim/fattree_network.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace {

dv::metrics::RunMetrics run_ft(const char* pattern, std::uint64_t seed) {
  const dv::topo::FatTree topo(8);
  dv::netsim::FatTreeNetwork net(topo, {}, seed);
  net.set_labels(pattern, "contiguous", {pattern});
  net.set_jobs(std::vector<std::int32_t>(topo.num_hosts(), 0));
  dv::workload::Config cfg;
  cfg.ranks = topo.num_hosts();
  cfg.total_bytes = 64ull << 20;
  cfg.window = 2.0e5;
  cfg.seed = seed;
  for (const auto& m : dv::workload::generate(pattern, cfg)) {
    net.add_message({m.src_rank, m.dst_rank, m.bytes, m.time, 0});
  }
  return net.run();
}

double cv(const std::vector<dv::metrics::LinkMetrics>& links) {
  dv::Accumulator acc;
  for (const auto& l : links) acc.add(l.traffic);
  return acc.mean() > 0 ? acc.stddev() / acc.mean() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Extension — Fat Tree via the dragonviz VA layer (128 hosts, k=8)",
      "future work of Sec. VI: other topologies through the same entity "
      "tables, aggregation and radial views");

  const auto ur = run_ft("uniform_random", 3);
  const auto bis = run_ft("bisection", 3);

  std::printf("%-24s %14s %14s\n", "", "uniform-random", "bisection");
  auto row = [](const char* label, double a, double b) {
    std::printf("%-24s %14.4g %14.4g\n", label, a, b);
  };
  const auto ur_g = bench::link_stats(ur.global_links);
  const auto bis_g = bench::link_stats(bis.global_links);
  row("core-link traffic (MB)", ur_g.traffic / 1e6, bis_g.traffic / 1e6);
  row("core-link traffic CV", cv(ur.global_links), cv(bis.global_links));
  row("core-link sat (us)", ur_g.sat / 1e3, bis_g.sat / 1e3);
  const auto ur_t = bench::term_stats(ur);
  const auto bis_t = bench::term_stats(bis);
  row("avg hops", ur_t.avg_hops, bis_t.avg_hops);
  row("avg latency (ns)", ur_t.avg_latency, bis_t.avg_latency);

  bench::shape_check(cv(ur.global_links) < 0.6,
                     "ECMP balances uniform-random load over the core");
  bench::shape_check(bis_t.avg_hops > 4.5,
                     "bisection traffic crosses the core (5-switch paths)");
  bench::shape_check(ur_t.avg_hops > 3.0 && ur_t.avg_hops < 5.0,
                     "uniform random mixes 1/3/5-switch paths");

  // The same VA pipeline renders the fat tree.
  const core::DataSet data(ur);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"group_id"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .colors({"white", "steelblue"})
                        .ribbons(core::Entity::kLocalLink, "group_id")
                        .build();
  const core::ProjectionView view(data, spec);
  view.save_svg(bench::out_path("ext_fattree_radial.svg"), 800,
                "k=8 fat tree, uniform random, via the dragonviz VA layer");
  std::printf("radial view: %zu rings, %zu ribbons (pods as groups)\n",
              view.rings().size(), view.ribbons().size());
  bench::shape_check(!view.rings()[0].items.empty() &&
                         !view.ribbons().empty(),
                     "fat-tree runs flow through the unchanged VA pipeline");
  return bench::footer();
}
