// Figure 7 — Nearest-neighbour vs. uniform-random synthetic traffic on the
// 5,256-terminal Dragonfly under adaptive routing.
//
// Paper: nearest neighbour drives high usage of *specific* global links and
// saturation on *specific* local links (with light non-minimal spill onto
// other local links from adaptive routing); uniform random loads every
// bundled link about equally and leaves links unsaturated.
#include <cstdio>
#include <cmath>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

dv::metrics::RunMetrics run_synthetic(const std::string& pattern) {
  dv::app::ExperimentConfig cfg;
  cfg.dragonfly_p = 6;
  dv::app::JobSpec job;
  job.workload = pattern;
  job.policy = dv::placement::Policy::kContiguous;
  cfg.jobs = {job};
  cfg.routing = dv::routing::Algo::kAdaptive;
  // ~1.3 GB/s offered per terminal: each router's six NN flows share one
  // local link (6x oversubscribed) while uniform random spreads the same
  // load far below any link's capacity.
  cfg.synthetic_bytes_per_rank = 128 * 1024;
  cfg.window = 1.0e5;
  cfg.seed = 7;
  return dv::app::run_experiment(cfg).run;
}

/// Coefficient of variation of per-link traffic (0 = perfectly balanced).
double traffic_cv(const std::vector<dv::metrics::LinkMetrics>& links) {
  dv::Accumulator acc;
  for (const auto& l : links) acc.add(l.traffic);
  return acc.mean() > 0 ? acc.stddev() / acc.mean() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Figure 7 — nearest neighbour vs uniform random (5,256 terminals)",
      "NN saturates specific local/terminal links; UR is load-balanced with "
      "no local-link saturation");

  const auto nn = run_synthetic("nearest_neighbor");
  const auto ur = run_synthetic("uniform_random");

  const auto nn_l = bench::link_stats(nn.local_links);
  const auto ur_l = bench::link_stats(ur.local_links);
  const auto nn_g = bench::link_stats(nn.global_links);
  const auto ur_g = bench::link_stats(ur.global_links);
  const auto nn_t = bench::term_stats(nn);
  const auto ur_t = bench::term_stats(ur);

  std::printf("%-28s %16s %16s\n", "", "nearest-neighbor", "uniform-random");
  auto row = [](const char* label, double a, double b) {
    std::printf("%-28s %16.4g %16.4g\n", label, a, b);
  };
  row("local links used", nn_l.used, ur_l.used);
  row("local traffic CV", traffic_cv(nn.local_links), traffic_cv(ur.local_links));
  row("local sat total (us)", nn_l.sat / 1e3, ur_l.sat / 1e3);
  row("peak local sat (us)", nn_l.peak_sat / 1e3, ur_l.peak_sat / 1e3);
  row("global links used", nn_g.used, ur_g.used);
  row("global traffic CV", traffic_cv(nn.global_links), traffic_cv(ur.global_links));
  row("global sat total (us)", nn_g.sat / 1e3, ur_g.sat / 1e3);
  row("terminal sat total (us)", nn_t.sat / 1e3, ur_t.sat / 1e3);

  // Render the paper's side-by-side projection views under shared scales.
  const core::DataSet d_nn(nn), d_ur(ur);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kLocalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .colors({"white", "steelblue"})
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .colors({"white", "purple"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .colors({"white", "crimson"})
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  const core::ComparisonView cmp({&d_nn, &d_ur}, spec,
                                 {"Nearest Neighbor", "Uniform Random"});
  cmp.save_svg(bench::out_path("fig7_synthetic.svg"));

  bench::shape_check(
      traffic_cv(nn.local_links) > 2.0 * traffic_cv(ur.local_links),
      "NN concentrates local traffic on specific links; UR balances");
  bench::shape_check(nn_l.peak_sat > 10.0 * std::max(1.0, ur_l.peak_sat),
                     "NN saturates specific local links, UR does not");
  bench::shape_check(ur_l.sat < nn_l.sat,
                     "UR has (near-)zero local link saturation");
  // Minimal NN needs roughly one local link per router (the direct
  // next-router link plus group-exit feeds); adaptive proxy routes light
  // up additional local links while most of the fabric stays dark.
  const double n_routers =
      static_cast<double>(nn.groups) * nn.routers_per_group;
  bench::shape_check(nn_l.used > 1.5 * n_routers &&
                         nn_l.used < 0.5 * static_cast<double>(nn.local_links.size()),
                     "adaptive routing spills light NN traffic onto other "
                     "local links (non-minimal routes)");
  bench::shape_check(
      traffic_cv(ur.global_links) < 0.3,
      "UR loads the global links about equally (same ribbon color)");
  return bench::footer();
}
