// Figure 5 — Script-specified projection views.
//
// Runs the Fig. 4/13 three-job simulation and then builds the paper's two
// scripted views verbatim:
//   (a) the whole 73-group network aggregated to 9 partitions via
//       maxBins: 8, and
//   (b) a detail view of the first 9 groups via filter: group_id [0, 8],
//       showing per-(rank, port) local-link heatmaps and terminal scatter.
#include <cstdio>

#include "bench_common.hpp"

namespace {

// Scripts as printed in the paper (Fig. 5a / 5b), with attribute names
// resolved to this library's entity-table columns.
const char* kScriptA = R"(
{ aggregate : "group_id",
  maxBins : 8,
  project : "global_link",
  vmap : { color : "sat_time", size : "traffic" },
  colors : ["white", "purple"]},
{ project : "router",
  aggregate : "router_rank",
  vmap : { color : "local_sat_time", },
  colors : ["white", "steelblue"],},
{ project : "terminal",
  aggregate : ["router_port", "workload"],
  vmap: { color :"workload", size : "avg_hops", },
  colors: ["green", "orange", "brown"],},
{ ribbons: { project: "global_link", key: "job",
             vmap: { size: "traffic", color: "sat_time" },
             colors: ["white", "purple"] } }
)";

const char* kScriptB = R"(
{ filter: { group_id : [0, 8] },
  aggregate : "group_id",
  project : "router",
  vmap : { size : "global_traffic"},
  colors : ["white", "purple"]},
{ filter: { group_id : [0, 8] },
  project : "local_link",
  aggregate : ["router_rank", "router_port"],
  vmap : { color : "traffic", x : "router_rank", y : "router_port" },
  colors : ["white", "steelblue"],},
{ filter: { group_id : [0, 8] },
  project : "terminal",
  aggregate : ["router_rank", "router_port"],
  vmap: { color :"workload", size : "data_size",
          x : "router_rank", y : "router_port" },
  colors: ["green", "orange", "brown"],
  border: false}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner("Figure 5 — script-specified projection views",
                "73 groups aggregated to 9 partitions (maxBins: 8); detail "
                "view of the first 9 groups (filter)");

  auto cfg = bench::fig13_config(placement::Policy::kRandomRouter,
                                 placement::Policy::kRandomRouter,
                                 placement::Policy::kRandomRouter);
  const auto result = app::run_experiment(cfg);
  const core::DataSet data(result.run);

  // (a) overview with binned aggregation.
  const auto spec_a = core::ProjectionSpec::parse(kScriptA);
  const core::ProjectionView view_a(data, spec_a);
  view_a.save_svg(bench::out_path("fig5a_overview.svg"), 900,
                  "Fig. 5a — 73 groups -> 9 partitions (maxBins: 8)");
  std::printf("view (a): ring0 items = %zu (73 groups, maxBins 8)\n",
              view_a.rings()[0].items.size());
  bench::shape_check(view_a.rings()[0].items.size() == 9u,
                     "maxBins: 8 partitions the 73 groups into 9 "
                     "(the count the paper's caption reports)");

  // (b) first-nine-groups detail.
  const auto spec_b = core::ProjectionSpec::parse(kScriptB);
  const core::ProjectionView view_b(data, spec_b);
  view_b.save_svg(bench::out_path("fig5b_detail.svg"), 900,
                  "Fig. 5b — detail of groups 0..8, random-router placement");
  std::printf("view (b): ring0 items = %zu, ring1 items = %zu, ring2 items = %zu\n",
              view_b.rings()[0].items.size(),
              view_b.rings()[1].items.size(),
              view_b.rings()[2].items.size());
  bench::shape_check(view_b.rings()[0].items.size() == 9u,
                     "filter group_id [0,8] keeps exactly 9 groups");
  bench::shape_check(view_b.rings()[1].items.size() == 12u * 11u,
                     "local links aggregate to (rank, local port) cells");
  bench::shape_check(view_b.rings()[1].type == core::PlotType::kHeatmap2D,
                     "color+x+y derives a 2-D heatmap ring");
  bench::shape_check(view_b.rings()[2].type == core::PlotType::kScatter,
                     "4-channel terminal level derives a scatter ring");

  // The saved spec can be reloaded and reapplied (the paper's "save the
  // specification for analyzing another dataset").
  const auto reloaded = core::ProjectionSpec::parse(spec_a.to_script());
  const core::ProjectionView view_a2(data, reloaded);
  bench::shape_check(
      view_a2.rings()[0].items.size() == view_a.rings()[0].items.size(),
      "specs round-trip through the script format");
  return bench::footer();
}
