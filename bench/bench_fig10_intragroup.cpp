// Figure 10 — Intra-group communication patterns and link-class metric
// correlations for the three applications, each run alone on the
// 2,550-terminal Dragonfly (adaptive routing, contiguous placement).
//
// Paper: AMG and MiniFE balance traffic across local and global links;
// AMG's local links sit at a similar saturation level; MiniFE saturates
// only a few local/global links, with back pressure from global links
// showing up on local links; AMR Boxlib is strongly unbalanced — the
// first two groups generate >60 % of inter-group traffic.
#include <cstdio>
#include <cmath>

#include "bench_common.hpp"
#include "util/stats.hpp"
#include "workload/workload.hpp"

namespace {

using dv::metrics::RunMetrics;

double cv(const std::vector<double>& v) {
  dv::Accumulator acc;
  for (double x : v) acc.add(x);
  return acc.mean() > 0 ? acc.stddev() / acc.mean() : 0.0;
}

/// Pearson correlation between per-router global and local saturation.
double backpressure_corr(const RunMetrics& run) {
  const auto routers = run.derive_routers();
  double mg = 0, ml = 0;
  for (const auto& r : routers) {
    mg += r.global_sat_time;
    ml += r.local_sat_time;
  }
  mg /= static_cast<double>(routers.size());
  ml /= static_cast<double>(routers.size());
  double num = 0, dg = 0, dl = 0;
  for (const auto& r : routers) {
    num += (r.global_sat_time - mg) * (r.local_sat_time - ml);
    dg += (r.global_sat_time - mg) * (r.global_sat_time - mg);
    dl += (r.local_sat_time - ml) * (r.local_sat_time - ml);
  }
  return dg > 0 && dl > 0 ? num / std::sqrt(dg * dl) : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Figure 10 — intra-group patterns of AMG / AMR Boxlib / MiniFE",
      "AMG+MiniFE balanced; AMR's first groups dominate; MiniFE back "
      "pressure couples global and local saturation");

  std::vector<RunMetrics> runs;
  for (const char* appname : {"amg", "amr_boxlib", "minife"}) {
    runs.push_back(
        app::run_experiment(bench::paper_df5_app(appname,
                                                 routing::Algo::kAdaptive))
            .run);
  }

  std::printf("%-12s %12s %12s %14s %14s %16s\n", "app", "local MB",
              "global MB", "local sat us", "global sat us",
              "g1+g2 created shr");
  std::vector<double> local_cv(3), first2_share(3), bp(3);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& run = runs[i];
    const auto l = bench::link_stats(run.local_links);
    const auto g = bench::link_stats(run.global_links);
    std::vector<double> ltraf;
    for (const auto& link : run.local_links) ltraf.push_back(link.traffic);
    local_cv[i] = cv(ltraf);
    // Share of *created* inter-group traffic originating in the first two
    // groups (the paper's "routers in the first two groups created more
    // than 60 percent of the inter-group traffic"): computed from the
    // traffic matrix so Valiant transit is not re-attributed.
    {
      const char* names[] = {"amg", "amr_boxlib", "minife"};
      const auto& info = workload::app_info(names[i]);
      workload::Config wcfg;
      wcfg.ranks = info.ranks;
      wcfg.total_bytes =
          names[i] == std::string("amg")
              ? (150ull << 20)
              : static_cast<std::uint64_t>(info.scaled_bytes);
      wcfg.window = 5.0e5;
      wcfg.seed = 7;
      const auto msgs = workload::generate(names[i], wcfg);
      const std::uint32_t per_group =
          run.routers_per_group * run.terminals_per_router;
      double inter = 0, inter_first2 = 0;
      for (const auto& m : msgs) {
        const std::uint32_t sg = m.src_rank / per_group;  // contiguous
        const std::uint32_t dg = m.dst_rank / per_group;
        if (sg == dg) continue;
        inter += static_cast<double>(m.bytes);
        if (sg < 2) inter_first2 += static_cast<double>(m.bytes);
      }
      first2_share[i] = inter > 0 ? inter_first2 / inter : 0.0;
    }
    bp[i] = backpressure_corr(run);
    std::printf("%-12s %12.1f %12.1f %14.1f %14.1f %15.0f%%\n",
                run.workload.c_str(), l.traffic / 1e6, g.traffic / 1e6,
                l.sat / 1e3, g.sat / 1e3, first2_share[i] * 100);
  }
  std::printf("local traffic CV: amg=%.2f amr=%.2f minife=%.2f\n",
              local_cv[0], local_cv[1], local_cv[2]);
  std::printf("router global/local sat correlation (back pressure): "
              "amg=%.2f amr=%.2f minife=%.2f\n",
              bp[0], bp[1], bp[2]);

  // Shared-scale projection views per app (the figure's three panels).
  const core::DataSet d0(runs[0]), d1(runs[1]), d2(runs[2]);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .colors({"white", "crimson"})
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  core::ComparisonView({&d0, &d1, &d2}, spec,
                       {"AMG", "AMR Boxlib", "MiniFE"})
      .save_svg(bench::out_path("fig10_intragroup.svg"));

  bench::shape_check(first2_share[1] > 0.60,
                     "AMR Boxlib: first two groups generate >60% of the "
                     "inter-group traffic");
  bench::shape_check(first2_share[0] < 0.2 && first2_share[2] < 0.2,
                     "AMG and MiniFE spread inter-group traffic");
  bench::shape_check(local_cv[1] > 2.0 * local_cv[0],
                     "AMR's intra-group load is far more unbalanced than "
                     "AMG's");
  bench::shape_check(bp[2] > 0.3,
                     "MiniFE: high local-link saturation is back pressure "
                     "from the global links (router-level correlation)");
  return bench::footer();
}
