// Figure 9 — Minimal vs. adaptive routing for uniform-random traffic on
// the 9,702-terminal Dragonfly.
//
// Paper: adaptive roughly doubles global-link usage (random proxy groups),
// raises local traffic in proxy groups, removes local-link saturation that
// minimal suffers from path conflicts, and — because the workload is
// already balanced — pays for it with higher hop counts and packet latency.
#include <cstdio>

#include "bench_common.hpp"

namespace {

dv::metrics::RunMetrics run_ur(dv::routing::Algo algo) {
  dv::app::ExperimentConfig cfg;
  cfg.dragonfly_p = 7;  // 9,702 terminals
  dv::app::JobSpec job;
  job.workload = "uniform_random";
  job.policy = dv::placement::Policy::kContiguous;
  job.bytes = 250'000'000;  // light load: minimal is unsaturated overall
  cfg.jobs = {job};
  cfg.routing = algo;
  cfg.window = 1.0e5;
  cfg.seed = 7;
  return dv::app::run_experiment(cfg).run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Figure 9 — minimal vs adaptive, uniform random on 9,702 nodes",
      "adaptive: higher global usage + local proxy traffic, lower local "
      "saturation, higher avg hops and packet latency");

  const auto mmin = run_ur(routing::Algo::kMinimal);
  const auto madp = run_ur(routing::Algo::kAdaptive);

  const auto lmin = bench::link_stats(mmin.local_links);
  const auto ladp = bench::link_stats(madp.local_links);
  const auto gmin = bench::link_stats(mmin.global_links);
  const auto gadp = bench::link_stats(madp.global_links);
  const auto tmin = bench::term_stats(mmin);
  const auto tadp = bench::term_stats(madp);

  std::printf("%-28s %14s %14s\n", "", "minimal", "adaptive");
  auto row = [](const char* label, double a, double b) {
    std::printf("%-28s %14.4g %14.4g\n", label, a, b);
  };
  row("global traffic (MB)", gmin.traffic / 1e6, gadp.traffic / 1e6);
  row("global sat (us)", gmin.sat / 1e3, gadp.sat / 1e3);
  row("local traffic (MB)", lmin.traffic / 1e6, ladp.traffic / 1e6);
  row("local sat (us)", lmin.sat / 1e3, ladp.sat / 1e3);
  row("avg hops", tmin.avg_hops, tadp.avg_hops);
  row("avg packet latency (ns)", tmin.avg_latency, tadp.avg_latency);

  const core::DataSet d_min(mmin), d_adp(madp);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"group_id"})
                        .max_bins(12)
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(core::Entity::kLocalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "steelblue"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("avg_latency")
                        .size("avg_hops")
                        .colors({"white", "crimson"})
                        .ribbons(core::Entity::kGlobalLink, "group_id")
                        .build();
  core::ComparisonView({&d_min, &d_adp}, spec,
                       {"Minimal Routing", "Adaptive Routing"})
      .save_svg(bench::out_path("fig9_routing_ur.svg"));

  bench::shape_check(gadp.traffic > 1.3 * gmin.traffic,
                     "adaptive raises global-link usage (proxy groups)");
  bench::shape_check(ladp.traffic > lmin.traffic,
                     "adaptive raises local traffic in proxy groups");
  bench::shape_check(ladp.sat < 0.2 * lmin.sat,
                     "minimal has low local usage but high saturation from "
                     "path conflicts; adaptive removes it");
  bench::shape_check(tadp.avg_hops > tmin.avg_hops,
                     "adaptive raises average hop count");
  bench::shape_check(tadp.avg_latency > tmin.avg_latency,
                     "adaptive raises average packet latency (UR is "
                     "already balanced)");
  return bench::footer();
}
