// Figure 12 — Temporal characteristics of the network-link traffic for the
// three application workloads (timeline plots of total traffic over time).
//
// Paper: the three applications have very different temporal structure;
// AMG shows three traffic bursts (beginning, middle and near the end),
// MiniFE iterates periodically, AMR Boxlib is irregular with a couple of
// heavy phases.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

namespace {

/// Counts rising edges above `factor` x mean in a series.
int count_bursts(const std::vector<double>& series, double factor) {
  dv::Accumulator acc;
  for (double v : series) acc.add(v);
  int bursts = 0;
  bool in_burst = false;
  for (double v : series) {
    const bool high = v > factor * acc.mean();
    if (high && !in_burst) ++bursts;
    in_burst = high;
  }
  return bursts;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Figure 12 — temporal characteristics of AMG / AMR Boxlib / MiniFE",
      "AMG: three bursts; AMR Boxlib: irregular phases; MiniFE: periodic "
      "iteration structure");

  std::vector<metrics::RunMetrics> runs;
  for (const char* appname : {"amg", "amr_boxlib", "minife"}) {
    auto cfg = bench::paper_df5_app(appname, routing::Algo::kAdaptive);
    cfg.sample_dt = 10'000.0;  // finer than the paper's rates; one scale
    runs.push_back(app::run_experiment(cfg).run);
  }

  std::vector<int> bursts(3);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const core::DataSet data(runs[i]);
    core::TimelineView tv(data);
    const auto series = tv.series("local_traffic");
    bursts[i] = count_bursts(series, 2.0);

    // Print the series the way the paper plots it (normalized sparkline).
    double peak = 0;
    for (double v : series) peak = std::max(peak, v);
    std::printf("%-12s (%zu frames, peak %.1f MB/frame): ",
                runs[i].workload.c_str(), series.size(), peak / 1e6);
    static const char* glyph = " .:-=+*#%@";
    for (std::size_t f = 0; f < series.size(); f += std::max<std::size_t>(1, series.size() / 80)) {
      const int level =
          peak > 0 ? static_cast<int>(series[f] / peak * 9.0) : 0;
      std::printf("%c", glyph[level]);
    }
    std::printf("\n");

    core::SvgDocument doc(900, 240);
    doc.rect(0, 0, 900, 240, core::Style::filled(Rgb{255, 255, 255}));
    doc.text(450, 16, "Fig. 12 — " + runs[i].workload + " link traffic over time",
             12, Rgb{40, 40, 40}, "middle");
    tv.render(doc, 8, 24, 884, 208);
    doc.save(bench::out_path("fig12_" + runs[i].workload + "_timeline.svg"));
  }

  std::printf("burst counts (>2x mean): amg=%d amr_boxlib=%d minife=%d\n",
              bursts[0], bursts[1], bursts[2]);
  bench::shape_check(bursts[0] == 3,
                     "AMG shows exactly three traffic bursts");
  bench::shape_check(bursts[2] >= 5,
                     "MiniFE shows repeated iteration bursts");
  bench::shape_check(bursts[1] >= 1 && bursts[1] <= 4,
                     "AMR Boxlib shows a small number of irregular phases");

  // The three temporal signatures are mutually distinct.
  bench::shape_check(bursts[0] != bursts[2],
                     "applications are distinguishable from their timelines");
  return bench::footer();
}
