// Ablation — routing strategies on bursty and adversarial traffic.
//
// The paper's burst analysis (Sec. V-C) observes that source-adaptive
// routing can be notified too late during fast traffic bursts and suggests
// progressive adaptive routing (PAR), which re-evaluates the decision at
// every hop in the source group. This bench sweeps all four implemented
// strategies over (a) the bursty AMG workload and (b) the classic
// adversarial tornado pattern (every group floods its neighbour group,
// expressed as nearest-neighbour traffic with a one-group stride).
#include <cstdio>

#include "bench_common.hpp"

namespace {

using dv::routing::Algo;

dv::metrics::RunMetrics run_case(const char* workload, Algo algo,
                                 std::uint32_t nn_stride) {
  dv::app::ExperimentConfig cfg;
  cfg.dragonfly_p = 4;  // 1,056 terminals
  dv::app::JobSpec job;
  job.workload = workload;
  job.policy = dv::placement::Policy::kContiguous;
  if (std::string(workload) == "amg") {
    job.ranks = 512;
    job.bytes = 80u << 20;
  } else {
    job.bytes = 0;  // synthetic default per-rank volume
  }
  cfg.jobs = {job};
  cfg.routing = algo;
  cfg.synthetic_bytes_per_rank = 96 * 1024;
  cfg.nn_stride = nn_stride;
  cfg.window = 2.0e5;
  cfg.seed = 13;
  return dv::app::run_experiment(cfg).run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Ablation — routing strategies under bursts and adversarial traffic",
      "PAR should beat source-adaptive UGAL on fast bursts (Sec. V-C); "
      "Valiant/adaptive must beat minimal on tornado");

  const Algo algos[] = {Algo::kMinimal, Algo::kNonMinimal, Algo::kAdaptive,
                        Algo::kProgressiveAdaptive};

  std::printf("\n(a) bursty AMG halo exchange\n");
  std::printf("%-22s %14s %14s %14s\n", "routing", "latency (ns)",
              "peak gsat (us)", "finish (us)");
  double lat[4];
  for (int i = 0; i < 4; ++i) {
    const auto run = run_case("amg", algos[i], 0);
    const auto t = bench::term_stats(run);
    const auto g = bench::link_stats(run.global_links);
    lat[i] = t.avg_latency;
    std::printf("%-22s %14.1f %14.2f %14.1f\n",
                routing::to_string(algos[i]).c_str(), t.avg_latency,
                g.peak_sat / 1e3, run.end_time / 1e3);
  }
  bench::shape_check(lat[2] < lat[0],
                     "adaptive beats minimal on the bursty halo");
  bench::shape_check(lat[3] <= lat[2] * 1.05,
                     "PAR is at least competitive with source-adaptive "
                     "UGAL on bursts (paper suggests it should help)");

  std::printf("\n(b) tornado: every group floods its neighbour group\n");
  std::printf("%-22s %14s %14s %14s\n", "routing", "latency (ns)",
              "peak gsat (us)", "finish (us)");
  // stride = terminals per group on DF(4): 8 routers x 4 terminals.
  const std::uint32_t stride = 8 * 4;
  double tlat[4];
  for (int i = 0; i < 4; ++i) {
    const auto run = run_case("nearest_neighbor", algos[i], stride);
    const auto t = bench::term_stats(run);
    const auto g = bench::link_stats(run.global_links);
    tlat[i] = t.avg_latency;
    std::printf("%-22s %14.1f %14.2f %14.1f\n",
                routing::to_string(algos[i]).c_str(), t.avg_latency,
                g.peak_sat / 1e3, run.end_time / 1e3);
  }
  bench::shape_check(tlat[1] < tlat[0] && tlat[2] < tlat[0],
                     "Valiant and adaptive crush minimal on tornado (the "
                     "textbook dragonfly adversarial case)");
  bench::shape_check(tlat[3] < tlat[0],
                     "PAR also avoids the tornado hotspot");
  return bench::footer();
}
