// Core micro-benchmarks (google-benchmark): simulator event rate,
// hierarchical aggregation, projection build, SVG render, script parsing,
// time-range re-aggregation — the operations behind the paper's claim of
// *interactive* exploration of large networks.
#include <benchmark/benchmark.h>

#include "core/projection.hpp"
#include "core/views.hpp"
#include "netsim/network.hpp"
#include "pdes/phold.hpp"
#include "workload/workload.hpp"

namespace {

using namespace dv;

/// One cached medium run (uniform random on the 2,550-terminal network).
const metrics::RunMetrics& cached_run() {
  static const metrics::RunMetrics run = [] {
    const auto topo = topo::Dragonfly::canonical(5);
    netsim::Network net(topo, routing::Algo::kAdaptive, {}, 7);
    workload::Config cfg;
    cfg.ranks = topo.num_terminals();
    cfg.total_bytes = 160ull << 20;
    cfg.window = 2.0e5;
    cfg.seed = 7;
    const auto placement = placement::place_jobs(
        topo, {{"ur", topo.num_terminals(), placement::Policy::kContiguous}},
        7);
    net.set_jobs(placement);
    net.add_messages(workload::map_to_terminals(
        workload::generate_uniform_random(cfg), placement, 0));
    net.enable_sampling(5'000.0);
    return net.run();
  }();
  return run;
}

core::ProjectionSpec default_spec() {
  return core::SpecBuilder()
      .level(core::Entity::kGlobalLink)
      .aggregate({"router_rank"})
      .color("sat_time")
      .size("traffic")
      .level(core::Entity::kTerminal)
      .aggregate({"router_rank", "router_port"})
      .color("sat_time")
      .level(core::Entity::kTerminal)
      .color("workload")
      .size("avg_latency")
      .x("avg_hops")
      .y("data_size")
      .ribbons(core::Entity::kLocalLink, "router_rank")
      .build();
}

void BM_SimulatorEventRate(benchmark::State& state) {
  const auto topo = topo::Dragonfly::canonical(3);
  std::uint64_t events = 0;
  for (auto _ : state) {
    netsim::Network net(topo, routing::Algo::kAdaptive, {}, 3);
    workload::Config cfg;
    cfg.ranks = topo.num_terminals();
    cfg.total_bytes = 8u << 20;
    cfg.window = 5.0e4;
    const auto placement = placement::place_jobs(
        topo, {{"ur", topo.num_terminals(), placement::Policy::kContiguous}},
        3);
    net.add_messages(workload::map_to_terminals(
        workload::generate_uniform_random(cfg), placement, 0));
    benchmark::DoNotOptimize(net.run());
    events += net.events_processed();
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulatorEventRate)->Unit(benchmark::kMillisecond);

void BM_DataSetBuild(benchmark::State& state) {
  const auto& run = cached_run();
  for (auto _ : state) {
    core::DataSet data(run);
    benchmark::DoNotOptimize(&data);
  }
}
BENCHMARK(BM_DataSetBuild)->Unit(benchmark::kMillisecond);

void BM_HierarchicalAggregation(benchmark::State& state) {
  const core::DataSet data(cached_run());
  const auto& table = data.table(core::Entity::kTerminal);
  core::AggregationSpec spec;
  spec.keys = {"group_id", "router_rank"};
  spec.max_bins = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::Aggregation agg(table, spec);
    benchmark::DoNotOptimize(agg.reduce("data_size"));
    benchmark::DoNotOptimize(agg.reduce("avg_latency"));
  }
  state.counters["rows"] = static_cast<double>(table.rows());
}
BENCHMARK(BM_HierarchicalAggregation)->Arg(0)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_ProjectionBuild(benchmark::State& state) {
  const core::DataSet data(cached_run());
  const auto spec = default_spec();
  for (auto _ : state) {
    core::ProjectionView view(data, spec);
    benchmark::DoNotOptimize(&view);
  }
}
BENCHMARK(BM_ProjectionBuild)->Unit(benchmark::kMillisecond);

void BM_SvgRender(benchmark::State& state) {
  const core::DataSet data(cached_run());
  const core::ProjectionView view(data, default_spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.to_svg(800));
  }
}
BENCHMARK(BM_SvgRender)->Unit(benchmark::kMillisecond);

void BM_TimeRangeSlice(benchmark::State& state) {
  const core::DataSet data(cached_run());
  const double end = cached_run().end_time;
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.slice_time(end * 0.25, end * 0.5));
  }
}
BENCHMARK(BM_TimeRangeSlice)->Unit(benchmark::kMillisecond);

void BM_SpecScriptParse(benchmark::State& state) {
  const std::string script = default_spec().to_script();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ProjectionSpec::parse(script));
  }
}
BENCHMARK(BM_SpecScriptParse)->Unit(benchmark::kMicrosecond);

void BM_BrushSelection(benchmark::State& state) {
  const core::DataSet data(cached_run());
  for (auto _ : state) {
    core::DetailView dv(data);
    dv.brush("avg_latency", 1000.0, 1e18);
    benchmark::DoNotOptimize(dv.selected_terminals());
    benchmark::DoNotOptimize(dv.associated_links(core::Entity::kLocalLink));
  }
}
BENCHMARK(BM_BrushSelection)->Unit(benchmark::kMillisecond);

void BM_PholdEngine(benchmark::State& state) {
  pdes::PholdConfig cfg;
  cfg.lps = 64;
  cfg.population = 8;
  cfg.horizon = 2000.0;
  std::uint64_t events = 0;
  const auto partitions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto result = partitions == 0
                            ? pdes::run_phold_sequential(cfg)
                            : pdes::run_phold_parallel(cfg, partitions);
    events += result.events;
    benchmark::DoNotOptimize(result.per_lp.data());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
// Arg 0 = sequential engine; 1/2/4 = conservative parallel partitions.
BENCHMARK(BM_PholdEngine)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
