// Core micro-benchmarks (google-benchmark): simulator event rate,
// hierarchical aggregation, projection build, SVG render, script parsing,
// time-range re-aggregation — the operations behind the paper's claim of
// *interactive* exploration of large networks.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/projection.hpp"
#include "core/views.hpp"
#include "fault/fault.hpp"
#include "json/json.hpp"
#include "netsim/network.hpp"
#include "pdes/phold.hpp"
#include "workload/workload.hpp"

namespace {

using namespace dv;

/// One cached medium run (uniform random on the 2,550-terminal network).
const metrics::RunMetrics& cached_run() {
  static const metrics::RunMetrics run = [] {
    const auto topo = topo::Dragonfly::canonical(5);
    netsim::Network net(topo, routing::Algo::kAdaptive, {}, 7);
    workload::Config cfg;
    cfg.ranks = topo.num_terminals();
    cfg.total_bytes = 160ull << 20;
    cfg.window = 2.0e5;
    cfg.seed = 7;
    const auto placement = placement::place_jobs(
        topo, {{"ur", topo.num_terminals(), placement::Policy::kContiguous}},
        7);
    net.set_jobs(placement);
    net.add_messages(workload::map_to_terminals(
        workload::generate_uniform_random(cfg), placement, 0));
    net.enable_sampling(5'000.0);
    return net.run();
  }();
  return run;
}

core::ProjectionSpec default_spec() {
  return core::SpecBuilder()
      .level(core::Entity::kGlobalLink)
      .aggregate({"router_rank"})
      .color("sat_time")
      .size("traffic")
      .level(core::Entity::kTerminal)
      .aggregate({"router_rank", "router_port"})
      .color("sat_time")
      .level(core::Entity::kTerminal)
      .color("workload")
      .size("avg_latency")
      .x("avg_hops")
      .y("data_size")
      .ribbons(core::Entity::kLocalLink, "router_rank")
      .build();
}

/// Partition/cut provenance plus the engine's busy/wait split, captured
/// from the Network after a parallel run (zeros for sequential runs).
struct EngineProvenance {
  std::uint32_t partitions = 1;
  std::uint32_t cut_channels = 0;
  std::uint32_t total_channels = 0;
  std::uint32_t refine_moves = 0;
  double cut_weight = 0.0;
  double busy_seconds = 0.0;  ///< summed across workers
  double wait_seconds = 0.0;  ///< summed across workers
  std::uint64_t rounds = 0;   ///< pairwise negotiation rounds
};

/// One medium uniform-random netsim run; workers = 0 picks the sequential
/// engine, N > 1 the partitioned parallel one. `faulted` adds a transient
/// cable outage plus a transient router outage inside the injection window.
/// Returns events processed.
std::uint64_t run_netsim_once(std::uint32_t workers, bool faulted = false,
                              EngineProvenance* prov = nullptr) {
  const auto topo = topo::Dragonfly::canonical(3);
  netsim::Network net(topo, routing::Algo::kAdaptive, {}, 3);
  workload::Config cfg;
  cfg.ranks = topo.num_terminals();
  cfg.total_bytes = 8u << 20;
  cfg.window = 5.0e4;
  cfg.seed = 3;
  const auto placement = placement::place_jobs(
      topo, {{"ur", topo.num_terminals(), placement::Policy::kContiguous}}, 3);
  net.add_messages(workload::map_to_terminals(
      workload::generate_uniform_random(cfg), placement, 0));
  if (faulted) {
    net.set_fault_plan(fault::FaultPlan::parse(
        "link:g0->g1@1e4:3e4\nrouter:g2.r1@5e3:2.5e4\n"));
  }
  if (workers) net.set_parallel(workers);
  benchmark::DoNotOptimize(net.run());
  if (prov) {
    prov->partitions = net.partitions_used();
    if (const auto* plan = net.partition_plan()) {
      prov->cut_channels = plan->cut_channels;
      prov->total_channels = plan->total_channels;
      prov->cut_weight = plan->cut_weight;
      prov->refine_moves = plan->refine_moves;
    }
    if (const auto* par = net.parallel_engine()) {
      for (std::uint32_t p = 0; p < net.partitions_used(); ++p) {
        const auto ws = par->worker_stats(p);
        prov->busy_seconds += ws.busy_seconds;
        prov->wait_seconds += ws.wait_seconds;
        prov->rounds += ws.rounds;
      }
    }
  }
  return net.events_processed();
}

void BM_SimulatorEventRate(benchmark::State& state) {
  std::uint64_t events = 0;
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    events += run_netsim_once(workers);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
// Arg 0 = sequential engine; 1/2/4 = conservative parallel partitions.
BENCHMARK(BM_SimulatorEventRate)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_SimulatorEventRateFaulted(benchmark::State& state) {
  std::uint64_t events = 0;
  const auto workers = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    events += run_netsim_once(workers, /*faulted=*/true);
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
// The degraded-operation cost: same run with an active fault plan (per-port
// liveness checks, retries, detours). Compare against BM_SimulatorEventRate
// to see the overhead; the no-fault path itself stays branch-gated.
BENCHMARK(BM_SimulatorEventRateFaulted)
    ->Arg(0)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_DataSetBuild(benchmark::State& state) {
  const auto& run = cached_run();
  for (auto _ : state) {
    core::DataSet data(run);
    benchmark::DoNotOptimize(&data);
  }
}
BENCHMARK(BM_DataSetBuild)->Unit(benchmark::kMillisecond);

void BM_HierarchicalAggregation(benchmark::State& state) {
  const core::DataSet data(cached_run());
  const auto& table = data.table(core::Entity::kTerminal);
  core::AggregationSpec spec;
  spec.keys = {"group_id", "router_rank"};
  spec.max_bins = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    core::Aggregation agg(table, spec);
    benchmark::DoNotOptimize(agg.reduce("data_size"));
    benchmark::DoNotOptimize(agg.reduce("avg_latency"));
  }
  state.counters["rows"] = static_cast<double>(table.rows());
}
BENCHMARK(BM_HierarchicalAggregation)->Arg(0)->Arg(8)->Unit(benchmark::kMicrosecond);

void BM_ProjectionBuild(benchmark::State& state) {
  const core::DataSet data(cached_run());
  const auto spec = default_spec();
  for (auto _ : state) {
    core::ProjectionView view(data, spec);
    benchmark::DoNotOptimize(&view);
  }
}
BENCHMARK(BM_ProjectionBuild)->Unit(benchmark::kMillisecond);

void BM_SvgRender(benchmark::State& state) {
  const core::DataSet data(cached_run());
  const core::ProjectionView view(data, default_spec());
  for (auto _ : state) {
    benchmark::DoNotOptimize(view.to_svg(800));
  }
}
BENCHMARK(BM_SvgRender)->Unit(benchmark::kMillisecond);

void BM_TimeRangeSlice(benchmark::State& state) {
  const core::DataSet data(cached_run());
  const double end = cached_run().end_time;
  for (auto _ : state) {
    benchmark::DoNotOptimize(data.slice_time(end * 0.25, end * 0.5));
  }
}
BENCHMARK(BM_TimeRangeSlice)->Unit(benchmark::kMillisecond);

void BM_SpecScriptParse(benchmark::State& state) {
  const std::string script = default_spec().to_script();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ProjectionSpec::parse(script));
  }
}
BENCHMARK(BM_SpecScriptParse)->Unit(benchmark::kMicrosecond);

void BM_BrushSelection(benchmark::State& state) {
  const core::DataSet data(cached_run());
  for (auto _ : state) {
    core::DetailView dv(data);
    dv.brush("avg_latency", 1000.0, 1e18);
    benchmark::DoNotOptimize(dv.selected_terminals());
    benchmark::DoNotOptimize(dv.associated_links(core::Entity::kLocalLink));
  }
}
BENCHMARK(BM_BrushSelection)->Unit(benchmark::kMillisecond);

void BM_PholdEngine(benchmark::State& state) {
  pdes::PholdConfig cfg;
  cfg.lps = 64;
  cfg.population = 8;
  cfg.horizon = 2000.0;
  std::uint64_t events = 0;
  const auto partitions = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto result = partitions == 0
                            ? pdes::run_phold_sequential(cfg)
                            : pdes::run_phold_parallel(cfg, partitions);
    events += result.events;
    benchmark::DoNotOptimize(result.per_lp.data());
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
// Arg 0 = sequential engine; 1/2/4 = conservative parallel partitions.
BENCHMARK(BM_PholdEngine)->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

/// Sequential events/s recorded in a previous BENCH_perf.json, or 0 when
/// the file is missing/unreadable. `DV_BENCH_BASELINE` overrides the path
/// (CI points it at the checked-in baseline before this run overwrites the
/// default location).
double read_baseline_seq_rate(const std::string& default_path) {
  const char* env = std::getenv("DV_BENCH_BASELINE");
  const std::string path = env && *env ? env : default_path;
  std::ifstream is(path, std::ios::binary);
  if (!is) return 0.0;
  std::ostringstream buf;
  buf << is.rdbuf();
  try {
    const json::Value v = json::parse(buf.str());
    for (const auto& cfg : v.at("configs").as_array()) {
      if (cfg.get_string("engine", "") == "sequential") {
        return cfg.get_number("events_per_second", 0.0);
      }
    }
  } catch (const Error&) {
  }
  return 0.0;
}

/// Direct timed comparison of the two simulation engines, written as
/// machine-readable JSON so CI and EXPERIMENTS.md can track the event-rate
/// speedup across hardware. Each config runs once untimed (warm-up), then
/// `reps` timed repetitions; the reported rate uses the *median* rep so a
/// stray slow run on shared hardware cannot fail the CI regression gate.
/// The file also stamps build provenance — a number measured with a
/// different compiler or with assertions on is not comparable.
/// Returns the 4-worker speedup over sequential (the CI perf-parallel gate).
double write_perf_json(const std::string& path) {
  const double baseline_seq = read_baseline_seq_rate(path);
  struct Row {
    std::uint32_t workers;  // 0 = sequential reference
    std::uint64_t events;   // per run (identical across reps by design)
    double seconds;         // median timed rep
    EngineProvenance prov;  // partition/cut + busy/wait, last timed rep
  };
  std::vector<Row> rows;
  const int reps = 5;
  for (const std::uint32_t workers : {0u, 1u, 2u, 4u}) {
    Row row{workers, 0, 0.0, {}};
    row.seconds = bench::median_seconds(reps, [&] {
      row.prov = {};
      row.events = run_netsim_once(workers, /*faulted=*/false, &row.prov);
    });
    rows.push_back(row);
    std::printf("perf: %-28s %10.0f events/s\n",
                workers == 0 ? "sequential"
                             : ("parallel workers=" +
                                std::to_string(workers)).c_str(),
                static_cast<double>(row.events) / row.seconds);
    if (row.prov.partitions > 1) {
      const double engine_time =
          row.prov.busy_seconds + row.prov.wait_seconds;
      std::printf("      cut %u/%u channels (weight %.1f, %u refine moves), "
                  "wait share %.0f%%\n",
                  row.prov.cut_channels, row.prov.total_channels,
                  row.prov.cut_weight, row.prov.refine_moves,
                  engine_time > 0.0
                      ? 100.0 * row.prov.wait_seconds / engine_time
                      : 0.0);
    }
  }
  const double seq_rate =
      static_cast<double>(rows[0].events) / rows[0].seconds;
  if (baseline_seq > 0.0) {
    std::printf("perf: sequential vs baseline        %10.2fx (%.0f -> %.0f)\n",
                seq_rate / baseline_seq, baseline_seq, seq_rate);
  }

  std::filesystem::create_directories(
      std::filesystem::path(path).parent_path());
  std::ofstream os(path, std::ios::binary);
  os << "{\n  \"benchmark\": \"netsim_event_rate\",\n"
     << "  \"topology\": \"dragonfly canonical(3)\",\n"
     << "  \"workload\": \"uniform_random 8 MiB\",\n"
     << "  \"reps\": " << reps << ",\n"
     << "  \"timing\": \"median rep after one untimed warm-up\",\n"
     << "  \"provenance\": " << bench::provenance_json() << ",\n"
     << "  \"configs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const double rate = static_cast<double>(rows[i].events) / rows[i].seconds;
    os << "    {\"engine\": \""
       << (rows[i].workers == 0 ? "sequential" : "parallel")
       << "\", \"workers\": " << rows[i].workers
       << ", \"events\": " << rows[i].events
       << ", \"seconds\": " << rows[i].seconds
       << ", \"events_per_second\": " << rate
       << ", \"speedup_vs_sequential\": " << rate / seq_rate;
    const EngineProvenance& pv = rows[i].prov;
    if (pv.partitions > 1) {
      os << ",\n     \"partitions\": " << pv.partitions
         << ", \"cut_channels\": " << pv.cut_channels
         << ", \"total_channels\": " << pv.total_channels
         << ", \"cut_weight\": " << pv.cut_weight
         << ", \"refine_moves\": " << pv.refine_moves
         << ", \"busy_seconds\": " << pv.busy_seconds
         << ", \"wait_seconds\": " << pv.wait_seconds
         << ", \"negotiation_rounds\": " << pv.rounds;
    }
    os << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  const Row& par4 = rows.back();
  const double par4_rate = static_cast<double>(par4.events) / par4.seconds;
  const double speedup = par4_rate / seq_rate;
  std::printf("perf: parallel speedup at %u workers %9.2fx\n", par4.workers,
              speedup);
  return speedup;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // CI's perf-smoke leg wants only the engine comparison JSON, not the
    // google-benchmark suite; the perf-parallel leg gates on the reported
    // speedup (threshold enforcement lives in the workflow, which also
    // decides whether the host has enough cores for the number to mean
    // anything).
    if (arg == "--perf-json-only" || arg == "--parallel") {
      write_perf_json("bench_out/BENCH_perf.json");
      return 0;
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_perf_json("bench_out/BENCH_perf.json");
  return 0;
}
