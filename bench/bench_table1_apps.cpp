// Table I — Summary of Applications.
//
// Regenerates the paper's application table (ranks, data volume,
// communication pattern) from the workload generators, and verifies that
// each generator actually produces the pattern the table names: AMG's 3-D
// halo degree, AMR Boxlib's sparse/irregular skew, MiniFE's many-to-many
// fan-out.
#include <cstdio>
#include <map>
#include <set>

#include "bench_common.hpp"
#include "util/str.hpp"
#include "workload/workload.hpp"

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner("Table I — Summary of Applications",
                "AMG 1728 ranks / 1.2 GB / 3D nearest neighbor; "
                "AMR Boxlib 1728 / 2.2 GB / irregular and sparse; "
                "MiniFE 1152 / 147 GB / many-to-many");

  std::printf("%-12s %6s %12s %12s  %s\n", "Application", "Ranks",
              "Paper data", "Sim data", "Comm. Pattern");
  const auto apps = workload::paper_applications();
  for (const auto& a : apps) {
    std::printf("%-12s %6u %12s %12s  %s\n", a.name.c_str(), a.ranks,
                human_bytes(a.paper_bytes).c_str(),
                human_bytes(a.scaled_bytes).c_str(), a.pattern.c_str());
  }

  // Generate each workload at its Table I rank count and measure the
  // communication-matrix structure.
  std::printf("\nmeasured communication structure:\n");
  std::printf("%-12s %10s %12s %14s %16s\n", "app", "messages",
              "avg degree", "max degree", "top-6%-rank share");
  for (const auto& a : apps) {
    workload::Config cfg;
    cfg.ranks = a.ranks;
    cfg.total_bytes = static_cast<std::uint64_t>(a.scaled_bytes);
    cfg.window = 5.0e5;
    cfg.seed = 7;
    const auto msgs = workload::generate(a.name, cfg);
    std::map<std::uint32_t, std::set<std::uint32_t>> partners;
    std::uint64_t total = 0, hot = 0;
    const std::uint32_t hot_cut = a.ranks * 6 / 100;
    for (const auto& m : msgs) {
      partners[m.src_rank].insert(m.dst_rank);
      total += m.bytes;
      if (m.src_rank < hot_cut) hot += m.bytes;
    }
    double deg_sum = 0;
    std::size_t deg_max = 0;
    for (const auto& [r, p] : partners) {
      deg_sum += static_cast<double>(p.size());
      deg_max = std::max(deg_max, p.size());
    }
    const double avg_deg = deg_sum / static_cast<double>(partners.size());
    const double hot_share = static_cast<double>(hot) / static_cast<double>(total);
    std::printf("%-12s %10zu %12.1f %14zu %15.0f%%\n", a.name.c_str(),
                msgs.size(), avg_deg, deg_max, hot_share * 100);

    if (a.name == "amg") {
      bench::shape_check(avg_deg > 5.0 && deg_max == 6,
                         "AMG is a 3-D halo (degree <= 6, interior = 6)");
    } else if (a.name == "amr_boxlib") {
      bench::shape_check(hot_share > 0.55,
                         "AMR Boxlib concentrates >55% of bytes in the "
                         "lowest ranks (irregular and sparse)");
    } else if (a.name == "minife") {
      bench::shape_check(avg_deg > 20.0,
                         "MiniFE is many-to-many (row+column+butterfly "
                         "partners)");
    }
  }

  bench::shape_check(apps[0].scaled_bytes < apps[1].scaled_bytes &&
                         apps[1].scaled_bytes * 4 < apps[2].scaled_bytes,
                     "volume ordering AMG < AMR Boxlib << MiniFE preserved");
  return bench::footer();
}
