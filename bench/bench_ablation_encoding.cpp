// Ablation — aggregated radial encoding vs the matrix-view baseline.
//
// The paper's Sec. IV-B1 argues that matrix views (the common encoding for
// communication data) do not scale to large hierarchical networks, while
// hierarchical aggregation keeps the visual-item count bounded. This bench
// quantifies that: for the canonical dragonfly family, it counts the
// visual items each encoding must draw for the same router-level traffic
// data, and renders both for a small network.
#include <cstdio>
#include <fstream>

#include "bench_common.hpp"
#include "core/matrix_view.hpp"

namespace {

dv::metrics::RunMetrics quick_run(std::uint32_t p) {
  dv::app::ExperimentConfig cfg;
  cfg.dragonfly_p = p;
  dv::app::JobSpec job;
  job.workload = "uniform_random";
  job.policy = dv::placement::Policy::kContiguous;
  job.bytes = 8u << 20;  // tiny: this bench measures encodings, not load
  cfg.jobs = {job};
  cfg.window = 5.0e4;
  cfg.seed = 3;
  return dv::app::run_experiment(cfg).run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Ablation — aggregated radial views vs matrix views",
      "direct visualization of the topology does not scale; hierarchical "
      "aggregation keeps the item count bounded (Sec. II-C / IV)");

  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank", "router_port"})
                        .color("sat_time")
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();

  std::printf("%4s %10s %10s | %16s %16s %8s\n", "p", "routers",
              "terminals", "matrix cells", "radial items", "ratio");
  std::vector<double> matrix_items, radial_items;
  for (std::uint32_t p = 2; p <= 6; ++p) {
    const auto run = quick_run(p);
    const core::DataSet data(run);
    const core::MatrixView matrix(data, core::Entity::kLocalLink, "router");
    const core::ProjectionView radial(data, spec);
    std::size_t items = radial.ribbons().size() + radial.arcs().size();
    for (const auto& ring : radial.rings()) items += ring.items.size();
    matrix_items.push_back(static_cast<double>(matrix.visual_items()));
    radial_items.push_back(static_cast<double>(items));
    std::printf("%4u %10u %10u | %16zu %16zu %8.0f\n", p,
                run.groups * run.routers_per_group,
                run.groups * run.routers_per_group * run.terminals_per_router,
                matrix.visual_items(), items,
                static_cast<double>(matrix.visual_items()) /
                    static_cast<double>(items));

    if (p == 3) {
      std::ofstream os(bench::out_path("ablation_matrix_p3.svg"));
      os << matrix.to_svg(700, "router-to-router local traffic (matrix baseline)");
      radial.save_svg(bench::out_path("ablation_radial_p3.svg"), 700,
                      "same data, aggregated radial view");
    }
  }

  // Growth rates: matrix is quadratic in routers, the aggregated radial
  // view is bounded by the aggregation arity (grows ~linearly in a).
  const double matrix_growth = matrix_items.back() / matrix_items.front();
  const double radial_growth = radial_items.back() / radial_items.front();
  std::printf("growth p=2 -> p=6: matrix %.0fx, radial %.1fx\n",
              matrix_growth, radial_growth);
  bench::shape_check(matrix_growth > 20.0 * radial_growth,
                     "matrix item count explodes quadratically while the "
                     "aggregated radial view stays near-constant");

  // The matrix renderer itself refuses unreadable dimensions — the
  // scalability wall the paper describes.
  const auto big = quick_run(6);
  const core::DataSet big_data(big);
  const core::MatrixView big_matrix(big_data, core::Entity::kLocalLink,
                                    "router");
  bool refused = false;
  try {
    (void)big_matrix.to_svg(700, "", 512);
  } catch (const Error&) {
    refused = true;
  }
  bench::shape_check(refused,
                     "876-router matrix exceeds the readable-cell budget; "
                     "the aggregated view renders it comfortably");
  core::ProjectionView(big_data, spec)
      .save_svg(bench::out_path("ablation_radial_p6.svg"), 700,
                "5,256-terminal network, aggregated radial view");
  return bench::footer();
}
