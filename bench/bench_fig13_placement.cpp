// Figure 13 — Job placement policies and inter-job interference: AMG,
// AMR Boxlib and MiniFE run in parallel on the paper's 5,256-terminal
// Dragonfly under (a) random-group, (b) random-router and (c) the hybrid
// placement the paper derives (AMR Boxlib on random-group, the others on
// random-router), plus (d) the per-application packet-latency comparison.
//
// Paper (13d): switching random-group -> random-router helps AMG (~+26%,
// from adaptive routing) but degrades AMR Boxlib (~-17%, its minimal
// routes are congested by the heavy jobs); the hybrid placement repairs
// AMR Boxlib's loss while keeping the gains.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  using placement::Policy;
  bench::banner(
      "Figure 13 — job placement and inter-job interference (5,256 nodes)",
      "random-router helps AMG, hurts AMR Boxlib; hybrid repairs AMR "
      "while keeping the gains (13d)");

  struct Case {
    const char* name;
    Policy amg, amr, minife;
  };
  const Case cases[] = {
      {"random_group", Policy::kRandomGroup, Policy::kRandomGroup,
       Policy::kRandomGroup},
      {"random_router", Policy::kRandomRouter, Policy::kRandomRouter,
       Policy::kRandomRouter},
      {"hybrid", Policy::kRandomRouter, Policy::kRandomGroup,
       Policy::kRandomRouter},
  };

  std::vector<metrics::RunMetrics> runs;
  for (const auto& c : cases) {
    const auto cfg = bench::fig13_config(c.amg, c.amr, c.minife);
    const auto result = app::run_experiment(cfg);
    std::printf("%-14s simulated (%llu events, %.1fs wall)\n", c.name,
                static_cast<unsigned long long>(result.events),
                result.wall_seconds);
    runs.push_back(result.run);
  }

  // Fig. 13a-c: job-level ribbon views under shared scales. Global links
  // bundle by job; routers carrying only Valiant transit form the
  // "proxies" arc (job -1 renders gray).
  const core::DataSet dg(runs[0]), dr(runs[1]), dh(runs[2]);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kLocalLink)
                        .aggregate({"src_job"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "steelblue"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"workload"})
                        .color("avg_latency")
                        .size("avg_hops")
                        .colors({"white", "crimson"})
                        .ribbons(core::Entity::kGlobalLink, "job")
                        .build();
  const core::ComparisonView cmp(
      {&dg, &dr, &dh}, spec,
      {"(a) Random Group", "(b) Random Router", "(c) Hybrid"});
  cmp.save_svg(bench::out_path("fig13_placement.svg"));

  // Fig. 13d: avg packet latency per application and placement.
  const auto summaries = cmp.job_summaries();
  std::printf("\nFig. 13d — avg packet latency (us, lower is better)\n");
  std::printf("%-12s %14s %14s %14s\n", "job", "random-group",
              "random-router", "hybrid");
  double lat[3][3];
  for (std::size_t j = 0; j < 3; ++j) {
    for (std::size_t c = 0; c < 3; ++c) lat[j][c] = summaries[c][j].avg_latency;
    std::printf("%-12s %14.1f %14.1f %14.1f\n", summaries[0][j].name.c_str(),
                lat[j][0] / 1e3, lat[j][1] / 1e3, lat[j][2] / 1e3);
  }
  auto gain = [&](std::size_t job, std::size_t c) {
    return (lat[job][0] - lat[job][c]) / lat[job][0] * 100.0;
  };
  std::printf("\nchange vs random-group (positive = faster):\n");
  std::printf("%-12s %13s%% %13s%%\n", "job", "random-router", "hybrid");
  for (std::size_t j = 0; j < 3; ++j) {
    std::printf("%-12s %13.1f%% %13.1f%%\n", summaries[0][j].name.c_str(),
                gain(j, 1), gain(j, 2));
  }

  // Shape checks against the paper's reading of 13d.
  bench::shape_check(gain(0, 1) > 10.0,
                     "random-router gives AMG a large latency gain "
                     "(paper: ~26%)");
  bench::shape_check(gain(1, 1) < 0.0,
                     "random-router degrades AMR Boxlib (paper: ~-17%)");
  bench::shape_check(gain(1, 2) > gain(1, 1) + 3.0,
                     "hybrid repairs most of AMR Boxlib's loss");
  bench::shape_check(gain(0, 2) > 10.0,
                     "hybrid keeps AMG's adaptive-routing gain");
  bench::shape_check(std::abs(gain(2, 2)) < 15.0 && std::abs(gain(2, 1)) < 60.0,
                     "MiniFE is comparatively insensitive (intra-group "
                     "congestion bound)");

  // Proxy arcs appear in the random-group view: routers with no job carry
  // Valiant transit (the paper's 'proxies').
  bool proxies = false;
  for (const auto& arc : cmp.view(0).arcs()) {
    if (arc.key < 0) proxies = true;
  }
  bench::shape_check(proxies,
                     "proxy routers (no job) form their own ribbon arc");

  // Fig. 13a vs 13b claim: "very few non-minimal routes between AMG and
  // AMR Boxlib with random group placement" but heavy AMG<->AMR global
  // traffic under random router. Compare the AMG-AMR ribbon bundle size
  // (jobs 0 and 1) across the two views.
  auto amg_amr_bundle = [&](std::size_t run_idx) {
    for (const auto& rb : cmp.view(run_idx).ribbons()) {
      const double ka = cmp.view(run_idx).arcs()[rb.arc_a].key;
      const double kb = cmp.view(run_idx).arcs()[rb.arc_b].key;
      if ((ka == 0.0 && kb == 1.0) || (ka == 1.0 && kb == 0.0)) {
        return rb.size_value;
      }
    }
    return 0.0;
  };
  const double cross_group = amg_amr_bundle(0);
  const double cross_router = amg_amr_bundle(1);
  std::printf("\nAMG<->AMR global-link traffic: random-group %.1f MB, "
              "random-router %.1f MB\n",
              cross_group / 1e6, cross_router / 1e6);
  bench::shape_check(cross_router > 5.0 * std::max(1.0, cross_group),
                     "random-group has very few AMG<->AMR routes; "
                     "random-router mixes the jobs heavily (13a vs 13b)");
  return bench::footer();
}
