// Figure 11 — Inter-group communication patterns and terminal metric
// correlations for the three applications (same runs as Fig. 10, viewed
// with the Fig. 5a-style configuration: binned group partitions, local
// saturation, avg packet latency on the outer ring).
//
// Paper: all three applications show high variance in per-terminal average
// packet latency and hop count; the view correlates local-link saturation
// with the terminals experiencing it.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Figure 11 — inter-group patterns + terminal metrics (3 apps)",
      "high per-terminal variance of avg latency and hop count; terminal "
      "latency correlates with local-link saturation");

  std::vector<metrics::RunMetrics> runs;
  for (const char* appname : {"amg", "amr_boxlib", "minife"}) {
    runs.push_back(
        app::run_experiment(bench::paper_df5_app(appname,
                                                 routing::Algo::kAdaptive))
            .run);
  }

  std::printf("%-12s %14s %12s %12s %10s %10s\n", "app", "avg lat (ns)",
              "lat p10", "lat p90", "avg hops", "hops CV");
  bool all_high_variance = true;
  for (const auto& run : runs) {
    std::vector<double> lat, hops;
    Accumulator lat_acc, hop_acc;
    for (const auto& t : run.terminals) {
      if (t.packets_finished == 0) continue;  // unused terminals filtered
      lat.push_back(t.avg_latency());
      hops.push_back(t.avg_hops());
      lat_acc.add(t.avg_latency());
      hop_acc.add(t.avg_hops());
    }
    const double p10 = percentile(lat, 0.10);
    const double p90 = percentile(lat, 0.90);
    const double hop_cv = hop_acc.stddev() / hop_acc.mean();
    std::printf("%-12s %14.1f %12.1f %12.1f %10.2f %10.2f\n",
                run.workload.c_str(), lat_acc.mean(), p10, p90,
                hop_acc.mean(), hop_cv);
    if (p90 < 1.25 * p10) all_high_variance = false;
  }
  bench::shape_check(all_high_variance,
                     "every application shows high variance in per-terminal "
                     "average packet latency (p90 > 1.25x p10)");

  // The Fig. 5a-style scripted view applied to each run, shared scales.
  const auto spec = core::ProjectionSpec::parse(R"(
    { aggregate : "group_id", maxBins : 8, project : "global_link",
      vmap : { color : "sat_time", size : "traffic" },
      colors : ["white", "purple"]},
    { project : "local_link", aggregate : "router_rank",
      vmap : { color : "sat_time" }, colors : ["white", "steelblue"]},
    { project : "terminal", aggregate : ["router_rank"],
      vmap : { color : "avg_latency", size : "avg_hops" },
      colors : ["white", "crimson"]},
    { ribbons : { project : "global_link", key : "group_id",
                  vmap : { size : "traffic", color : "sat_time" },
                  colors : ["white", "purple"] } }
  )");
  const core::DataSet d0(runs[0]), d1(runs[1]), d2(runs[2]);
  const core::ComparisonView cmp({&d0, &d1, &d2}, spec,
                                 {"AMG", "AMR Boxlib", "MiniFE"});
  cmp.save_svg(bench::out_path("fig11_intergroup.svg"));

  // Correlation claim: terminals attached to routers with saturated local
  // links have above-median latency (checked on the heaviest app).
  const auto& run = runs[2];
  const auto routers = run.derive_routers();
  std::vector<double> lat_all;
  for (const auto& t : run.terminals) {
    if (t.packets_finished) lat_all.push_back(t.avg_latency());
  }
  const double median_lat = percentile(lat_all, 0.5);
  // Routers in the top decile of local saturation.
  std::vector<double> lsat;
  for (const auto& r : routers) lsat.push_back(r.local_sat_time);
  const double sat_p90 = percentile(lsat, 0.9);
  double hot_lat = 0;
  std::uint64_t hot_pkts = 0;
  for (const auto& t : run.terminals) {
    if (routers[t.router].local_sat_time >= sat_p90 && t.packets_finished) {
      hot_lat += t.sum_latency;
      hot_pkts += t.packets_finished;
    }
  }
  if (hot_pkts) {
    const double hot_avg = hot_lat / static_cast<double>(hot_pkts);
    std::printf("MiniFE: terminals on top-decile saturated routers average "
                "%.1f ns vs median %.1f ns\n",
                hot_avg, median_lat);
    bench::shape_check(hot_avg > median_lat,
                       "terminal latency correlates with local-link "
                       "saturation of the attached router");
  }
  return bench::footer();
}
