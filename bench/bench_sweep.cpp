// Sweep throughput: the flow backend's reason to exist. Fans the same
// 8-point design grid (workload x routing x load) through `run_sweep`
// under both backends and reports the wall-clock ratio. The grid is the
// byte-heavy/bundle-light regime sweeps live in (structured patterns,
// hundreds of demand pairs, large per-pair volumes) — the packet
// simulator resolves every 2 KB packet while the flow backend solves a
// few hundred water-filling epochs, so the gap is large by construction.
// A second section times the opposite regime: heavy uniform random
// (bundle-heavy/byte-light, the flow backend's historical worst case) and
// gates it at <= 1.5x the packet simulator's wall clock.
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "app/sweep.hpp"
#include "bench_common.hpp"

namespace dv {
namespace {

std::string temp_store(const std::string& leaf) {
  const auto dir = (std::filesystem::temp_directory_path() / leaf).string();
  std::filesystem::remove_all(dir);
  return dir;
}

app::SweepConfig grid(const std::string& store_dir, app::Backend backend) {
  app::SweepConfig cfg;
  cfg.base.dragonfly_p = 3;  // canonical 342-terminal dragonfly
  cfg.base.window = 1.0e5;
  cfg.base.seed = 5;
  cfg.base.backend = backend;
  cfg.base.jobs.push_back(app::JobSpec{});  // overwritten per point
  cfg.workloads = {"nearest_neighbor", "transpose"};
  cfg.routings = {"minimal", "adaptive"};
  cfg.scales = {32.0, 64.0};
  cfg.store_dir = store_dir;
  return cfg;
}

/// The historical worst case for the flow backend: heavy uniform random
/// floods it with tens of thousands of tiny concurrent bundles, the
/// bundle-heavy/byte-light regime where PR-8's fixed-epoch loop ran ~30x
/// *slower* than the packet simulator. The event-driven engine must keep
/// this point at packet speed or better.
app::ExperimentConfig heavy_ur(app::Backend backend, bool coarsen) {
  app::ExperimentConfig cfg;
  cfg.dragonfly_p = 3;
  app::JobSpec job;
  job.workload = "uniform_random";
  cfg.jobs.push_back(job);
  cfg.routing = routing::Algo::kMinimal;
  cfg.traffic_scale = 60.0;
  cfg.window = 1.0e5;
  cfg.seed = 5;
  cfg.backend = backend;
  cfg.flow_coarsen = coarsen;
  return cfg;
}

std::string telemetry_json(const app::FlowTelemetry& t) {
  std::string s = "{";
  s += "\"epochs\": " + std::to_string(t.epochs);
  s += ", \"solves\": " + std::to_string(t.solves);
  s += ", \"full_solves\": " + std::to_string(t.full_solves);
  s += ", \"incremental_solves\": " + std::to_string(t.incremental_solves);
  s += ", \"solver_rounds\": " + std::to_string(t.solver_rounds);
  s += ", \"drain_events\": " + std::to_string(t.drain_events);
  return s + "}";
}

}  // namespace
}  // namespace dv

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner("sweep",
                "a design-space sweep under the flow backend is >= 20x "
                "faster than the same grid under the packet simulator");

  const auto flow_dir = temp_store("dv_bench_sweep_flow");
  const auto pkt_dir = temp_store("dv_bench_sweep_packet");

  // median_seconds re-runs the sweep into the same store each rep, which
  // also exercises the idempotent replace-in-place path continuously.
  app::SweepResult flow_res, pkt_res;
  const double flow_s = bench::median_seconds(
      5, [&] { flow_res = app::run_sweep(grid(flow_dir, app::Backend::kFlow)); });
  const double pkt_s = bench::median_seconds(
      5, [&] { pkt_res = app::run_sweep(grid(pkt_dir, app::Backend::kPacket)); });
  const double speedup = pkt_s / flow_s;

  std::printf("%-38s %12s %12s\n", "grid point", "flow uid", "packet uid");
  for (std::size_t i = 0; i < flow_res.points.size(); ++i) {
    std::printf("%-38s %12llu %12llu\n", flow_res.points[i].name.c_str(),
                static_cast<unsigned long long>(flow_res.points[i].uid),
                static_cast<unsigned long long>(pkt_res.points[i].uid));
  }
  std::printf("flow   %8.3f s per 8-point sweep\n", flow_s);
  std::printf("packet %8.3f s per 8-point sweep\n", pkt_s);
  std::printf("speedup: %.1fx\n", speedup);

  // A fresh store must reproduce the exact same run content uids.
  const auto fresh_dir = temp_store("dv_bench_sweep_flow_fresh");
  const auto fresh = app::run_sweep(grid(fresh_dir, app::Backend::kFlow));
  bool uids_match = fresh.points.size() == flow_res.points.size();
  for (std::size_t i = 0; uids_match && i < fresh.points.size(); ++i) {
    uids_match = fresh.points[i].uid == flow_res.points[i].uid;
  }

  bench::shape_check(flow_res.points.size() == 8 && pkt_res.points.size() == 8,
                     "both backends complete the full 8-point grid");
  bench::shape_check(uids_match,
                     "flow sweep into a fresh store reproduces identical uids");
  bench::shape_check(speedup >= 20.0,
                     "flow backend sweeps the grid >= 20x faster than packet");

  // Heavy-UR point: DF(3) uniform random at 60x, minimal routing — the
  // bundle-heavy regime the grid above never enters. Median-of-5 per
  // backend; the last flow rep's solver telemetry goes into the artifact
  // so the bench trajectory can see *why* the number moved.
  app::ExperimentResult ur_flow, ur_coarse;
  const double ur_flow_s = bench::median_seconds(
      5, [&] { ur_flow = app::run_experiment(heavy_ur(app::Backend::kFlow,
                                                      false)); });
  const double ur_coarse_s = bench::median_seconds(
      5, [&] { ur_coarse = app::run_experiment(heavy_ur(app::Backend::kFlow,
                                                        true)); });
  app::ExperimentResult ur_pkt;
  const double ur_pkt_s = bench::median_seconds(
      5, [&] { ur_pkt = app::run_experiment(heavy_ur(app::Backend::kPacket,
                                                     false)); });

  std::printf("heavy UR@60x  flow    %8.3f s  (%llu solves: %llu full + %llu "
              "incremental, %llu epochs)\n",
              ur_flow_s,
              static_cast<unsigned long long>(ur_flow.flow.solves),
              static_cast<unsigned long long>(ur_flow.flow.full_solves),
              static_cast<unsigned long long>(ur_flow.flow.incremental_solves),
              static_cast<unsigned long long>(ur_flow.flow.epochs));
  std::printf("heavy UR@60x  coarsen %8.3f s  (%llu solves, %llu epochs)\n",
              ur_coarse_s,
              static_cast<unsigned long long>(ur_coarse.flow.solves),
              static_cast<unsigned long long>(ur_coarse.flow.epochs));
  std::printf("heavy UR@60x  packet  %8.3f s\n", ur_pkt_s);

  // Packet counts are integers (exact); injected bytes accumulate as
  // fractional drains in the flow model, so compare to FP tolerance.
  bench::shape_check(ur_flow.run.total_packets_finished() ==
                         ur_pkt.run.total_packets_finished(),
                     "heavy-UR flow and packet runs deliver identical "
                     "packet counts");
  bench::shape_check(std::abs(ur_flow.run.total_injected() -
                              ur_pkt.run.total_injected()) <=
                         ur_pkt.run.total_injected() * 1e-9,
                     "heavy-UR flow and packet runs inject identical bytes");
  bench::shape_check(ur_flow_s <= 1.5 * ur_pkt_s,
                     "heavy-UR flow run stays within 1.5x of packet "
                     "(the PR-8 engine was ~30x slower here)");
  bench::shape_check(ur_coarse_s <= ur_flow_s * 1.25,
                     "bundle coarsening does not slow the heavy-UR point");

  const std::string path = bench::out_path("BENCH_sweep.json");
  std::ofstream os(path, std::ios::binary);
  os << "{\n  \"benchmark\": \"sweep_flow_vs_packet\",\n"
     << "  \"provenance\": " << bench::provenance_json() << ",\n"
     << "  \"grid_points\": 8,\n"
     << "  \"workloads\": [\"nearest_neighbor\", \"transpose\"],\n"
     << "  \"routings\": [\"minimal\", \"adaptive\"],\n"
     << "  \"scales\": [32, 64],\n"
     << "  \"seconds_flow\": " << flow_s << ",\n"
     << "  \"seconds_packet\": " << pkt_s << ",\n"
     << "  \"speedup_flow_vs_packet\": " << speedup << ",\n"
     << "  \"heavy_ur\": {\n"
     << "    \"workload\": \"uniform_random\", \"routing\": \"minimal\", "
     << "\"scale\": 60,\n"
     << "    \"seconds_flow\": " << ur_flow_s << ",\n"
     << "    \"seconds_flow_coarsen\": " << ur_coarse_s << ",\n"
     << "    \"seconds_packet\": " << ur_pkt_s << ",\n"
     << "    \"flow_vs_packet\": " << ur_flow_s / ur_pkt_s << ",\n"
     << "    \"telemetry_flow\": " << telemetry_json(ur_flow.flow) << ",\n"
     << "    \"telemetry_flow_coarsen\": " << telemetry_json(ur_coarse.flow)
     << "\n  },\n"
     << "  \"points\": [\n";
  for (std::size_t i = 0; i < flow_res.points.size(); ++i) {
    os << "    {\"name\": \"" << flow_res.points[i].name
       << "\", \"uid_flow\": " << flow_res.points[i].uid
       << ", \"uid_packet\": " << pkt_res.points[i].uid << "}"
       << (i + 1 < flow_res.points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());

  std::filesystem::remove_all(flow_dir);
  std::filesystem::remove_all(pkt_dir);
  std::filesystem::remove_all(fresh_dir);
  return bench::footer();
}
