// Sweep throughput: the flow backend's reason to exist. Fans the same
// 8-point design grid (workload x routing x load) through `run_sweep`
// under both backends and reports the wall-clock ratio. The grid is the
// byte-heavy/bundle-light regime sweeps live in (structured patterns,
// hundreds of demand pairs, large per-pair volumes) — the packet
// simulator resolves every 2 KB packet while the flow backend solves a
// few hundred water-filling epochs, so the gap is large by construction.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "app/sweep.hpp"
#include "bench_common.hpp"

namespace dv {
namespace {

std::string temp_store(const std::string& leaf) {
  const auto dir = (std::filesystem::temp_directory_path() / leaf).string();
  std::filesystem::remove_all(dir);
  return dir;
}

app::SweepConfig grid(const std::string& store_dir, app::Backend backend) {
  app::SweepConfig cfg;
  cfg.base.dragonfly_p = 3;  // canonical 342-terminal dragonfly
  cfg.base.window = 1.0e5;
  cfg.base.seed = 5;
  cfg.base.backend = backend;
  cfg.base.jobs.push_back(app::JobSpec{});  // overwritten per point
  cfg.workloads = {"nearest_neighbor", "transpose"};
  cfg.routings = {"minimal", "adaptive"};
  cfg.scales = {32.0, 64.0};
  cfg.store_dir = store_dir;
  return cfg;
}

}  // namespace
}  // namespace dv

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner("sweep",
                "a design-space sweep under the flow backend is >= 20x "
                "faster than the same grid under the packet simulator");

  const auto flow_dir = temp_store("dv_bench_sweep_flow");
  const auto pkt_dir = temp_store("dv_bench_sweep_packet");

  // median_seconds re-runs the sweep into the same store each rep, which
  // also exercises the idempotent replace-in-place path continuously.
  app::SweepResult flow_res, pkt_res;
  const double flow_s = bench::median_seconds(
      5, [&] { flow_res = app::run_sweep(grid(flow_dir, app::Backend::kFlow)); });
  const double pkt_s = bench::median_seconds(
      5, [&] { pkt_res = app::run_sweep(grid(pkt_dir, app::Backend::kPacket)); });
  const double speedup = pkt_s / flow_s;

  std::printf("%-38s %12s %12s\n", "grid point", "flow uid", "packet uid");
  for (std::size_t i = 0; i < flow_res.points.size(); ++i) {
    std::printf("%-38s %12llu %12llu\n", flow_res.points[i].name.c_str(),
                static_cast<unsigned long long>(flow_res.points[i].uid),
                static_cast<unsigned long long>(pkt_res.points[i].uid));
  }
  std::printf("flow   %8.3f s per 8-point sweep\n", flow_s);
  std::printf("packet %8.3f s per 8-point sweep\n", pkt_s);
  std::printf("speedup: %.1fx\n", speedup);

  // A fresh store must reproduce the exact same run content uids.
  const auto fresh_dir = temp_store("dv_bench_sweep_flow_fresh");
  const auto fresh = app::run_sweep(grid(fresh_dir, app::Backend::kFlow));
  bool uids_match = fresh.points.size() == flow_res.points.size();
  for (std::size_t i = 0; uids_match && i < fresh.points.size(); ++i) {
    uids_match = fresh.points[i].uid == flow_res.points[i].uid;
  }

  bench::shape_check(flow_res.points.size() == 8 && pkt_res.points.size() == 8,
                     "both backends complete the full 8-point grid");
  bench::shape_check(uids_match,
                     "flow sweep into a fresh store reproduces identical uids");
  bench::shape_check(speedup >= 20.0,
                     "flow backend sweeps the grid >= 20x faster than packet");

  const std::string path = bench::out_path("BENCH_sweep.json");
  std::ofstream os(path, std::ios::binary);
  os << "{\n  \"benchmark\": \"sweep_flow_vs_packet\",\n"
     << "  \"provenance\": " << bench::provenance_json() << ",\n"
     << "  \"grid_points\": 8,\n"
     << "  \"workloads\": [\"nearest_neighbor\", \"transpose\"],\n"
     << "  \"routings\": [\"minimal\", \"adaptive\"],\n"
     << "  \"scales\": [32, 64],\n"
     << "  \"seconds_flow\": " << flow_s << ",\n"
     << "  \"seconds_packet\": " << pkt_s << ",\n"
     << "  \"speedup_flow_vs_packet\": " << speedup << ",\n"
     << "  \"points\": [\n";
  for (std::size_t i = 0; i < flow_res.points.size(); ++i) {
    os << "    {\"name\": \"" << flow_res.points[i].name
       << "\", \"uid_flow\": " << flow_res.points[i].uid
       << ", \"uid_packet\": " << pkt_res.points[i].uid << "}"
       << (i + 1 < flow_res.points.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());

  std::filesystem::remove_all(flow_dir);
  std::filesystem::remove_all(pkt_dir);
  std::filesystem::remove_all(fresh_dir);
  return bench::footer();
}
