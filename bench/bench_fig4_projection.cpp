// Figure 4 — Hierarchical radial visualization of three jobs on the
// 73-group Dragonfly (12 routers/group, 6 terminals/router).
//
// Rebuilds the exact view of Fig. 4(c): ribbons = intra-group local links
// bundled by router rank (size=traffic, color=saturation); inner ring =
// global links aggregated by router port (bar chart: color=sat, size=
// traffic); middle ring = terminals aggregated by port (heatmap of
// saturation); outer ring = individual terminals (scatter: color=job,
// size=avg latency, x=avg hops, y=data size).
#include <cstdio>
#include <set>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Figure 4 — hierarchical radial view, 3 jobs on the 73-group network",
      "intra-group patterns + metric correlations in one customizable view");

  auto cfg = bench::fig13_config(placement::Policy::kRandomRouter,
                                 placement::Policy::kRandomRouter,
                                 placement::Policy::kRandomRouter);
  const auto result = app::run_experiment(cfg);
  std::printf("simulated %s (%llu events, %.1fs)\n",
              result.topo.describe().c_str(),
              static_cast<unsigned long long>(result.events),
              result.wall_seconds);

  const core::DataSet data(result.run);
  // The Fig. 4(a) interface configuration, via the builder API.
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank", "router_port"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "steelblue"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank", "router_port"})
                        .color("sat_time")
                        .colors({"white", "steelblue"})
                        .level(core::Entity::kTerminal)
                        .color("workload")
                        .size("avg_latency")
                        .x("avg_hops")
                        .y("data_size")
                        .colors({"green", "orange", "brown"})
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  const core::ProjectionView view(data, spec);
  view.save_svg(bench::out_path("fig4_projection.svg"), 900,
                "Fig. 4 — AMG + AMR Boxlib + MiniFE, random-router placement");

  std::printf("rings: %zu  ribbons: %zu  arcs: %zu\n", view.rings().size(),
              view.ribbons().size(), view.arcs().size());
  // Ring item counts match the hierarchy: 12 ranks x 6 global ports; 12x6
  // terminal ports; 5,256 individual terminals.
  bench::shape_check(view.rings()[0].items.size() == 12u * 6u,
                     "inner ring: one bar per (router rank, global port)");
  bench::shape_check(view.rings()[1].items.size() == 12u * 6u,
                     "middle ring: one heatmap cell per (rank, terminal port)");
  bench::shape_check(view.rings()[2].items.size() == 5256u,
                     "outer ring: one scatter point per terminal");
  bench::shape_check(view.rings()[2].type == core::PlotType::kScatter,
                     "outer ring plot type derives to scatter (4 channels)");
  // Ribbons bundle the 12x11 directed rank pairs into at most 66 bundles.
  bench::shape_check(view.ribbons().size() <= 66u && !view.ribbons().empty(),
                     "local links bundle into rank-pair ribbons");
  // Three jobs color the outer ring with three categorical colors (+gray).
  std::set<std::string> colors;
  for (const auto& it : view.rings()[2].items) colors.insert(it.color.hex());
  bench::shape_check(colors.size() == 4,
                     "outer ring shows 3 job colors + idle gray");
  return bench::footer();
}
