// Out-of-core run store — catalog cold-open + first render, text vs packed.
//
// A parameter sweep leaves dozens-to-hundreds of run files behind; the
// interactive loop starts with "open the catalog, look at one run". This
// bench times that start-up path over a 50-run store in three modes:
//
//   text_eager  — every run is parsed and materialized up front (the
//                 pre-attach catalog behavior over text JSON);
//   text_lazy   — runs are attached; only the rendered run is parsed;
//   packed_lazy — runs are attached as .dvr; the rendered run is
//                 reconstructed from mmap-ed column chunks.
//
// Emits bench_out/BENCH_store.json and checks packed_lazy >= 3x faster
// than text_eager, with byte-identical SVG output in all modes.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/presets.hpp"
#include "core/projection.hpp"
#include "metrics/dvr.hpp"
#include "metrics/run_store.hpp"
#include "serve/catalog.hpp"

namespace {

using namespace dv;

struct Mode {
  const char* name;
  double seconds = 0.0;   // median cold-open + first-render wall time
  std::string svg{};      // first render (identity-checked across modes)
  std::size_t disk_bytes = 0;
};

std::size_t dir_bytes(const std::string& dir) {
  std::size_t total = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.is_regular_file()) total += e.file_size();
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  bench::banner(
      "run store — sweep-scale catalog cold open + first render",
      "a packed lazy catalog reaches the first rendered view >= 3x faster "
      "than eagerly parsing a text store");

  // A 50-run sweep of small runs: cold-open cost scales with run count,
  // which is exactly what the attach path is meant to flatten.
  const std::size_t kRuns = 50;
  app::ExperimentConfig cfg;
  cfg.dragonfly_p = 2;  // canonical(2): small per-run, many runs
  cfg.jobs = {{"uniform_random", 0, placement::Policy::kContiguous, 0}};
  cfg.routing = routing::Algo::kAdaptive;
  cfg.window = 2.0e4;
  cfg.sample_dt = 400.0;

  const auto base =
      std::filesystem::temp_directory_path() / "dv_bench_store";
  std::filesystem::remove_all(base);
  const std::string text_dir = (base / "text").string();
  const std::string packed_dir = (base / "packed").string();
  std::string target;  // name of the run the "first render" touches
  {
    metrics::RunStore text_store(text_dir);
    metrics::RunStore packed_store(packed_dir);
    for (std::size_t i = 0; i < kRuns; ++i) {
      cfg.seed = 100 + i;
      const auto run = app::run_experiment(cfg).run;
      const auto name = "sweep_" + std::to_string(i);
      text_store.add(run, name, metrics::StoreFormat::kText);
      packed_store.add(run, name, metrics::StoreFormat::kPacked);
      if (i == kRuns / 2) target = name;
    }
  }
  std::printf("store: %zu runs, text %.1f MB, packed %.1f MB\n", kRuns,
              dir_bytes(text_dir) / 1e6, dir_bytes(packed_dir) / 1e6);

  const auto spec = core::preset_from_ref("preset:fig4");
  const auto render_one = [&](const serve::RunCatalog& catalog) {
    const auto lr = catalog.get(target);
    const core::ProjectionView view(lr->data, spec, nullptr, &lr->engine);
    return view.to_svg(800, "store bench");
  };
  const auto run_paths = [&](const std::string& dir) {
    metrics::RunStore store(dir);
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& info : store.list()) {
      out.emplace_back(info.name, store.path(info.name));
    }
    return out;
  };

  Mode text_eager{"text_eager"}, text_lazy{"text_lazy"},
      packed_lazy{"packed_lazy"};
  text_eager.disk_bytes = dir_bytes(text_dir);
  text_lazy.disk_bytes = text_eager.disk_bytes;
  packed_lazy.disk_bytes = dir_bytes(packed_dir);

  const int reps = 3;
  text_eager.seconds = bench::median_seconds(reps, [&] {
    serve::RunCatalog catalog;
    for (const auto& [name, path] : run_paths(text_dir)) {
      catalog.load(path, name);
    }
    text_eager.svg = render_one(catalog);
  });
  text_lazy.seconds = bench::median_seconds(reps, [&] {
    serve::RunCatalog catalog;
    for (const auto& [name, path] : run_paths(text_dir)) {
      catalog.attach(path, name);
    }
    text_lazy.svg = render_one(catalog);
  });
  metrics::dvr_reset_stats();
  packed_lazy.seconds = bench::median_seconds(reps, [&] {
    serve::RunCatalog catalog;
    for (const auto& [name, path] : run_paths(packed_dir)) {
      catalog.attach(path, name);
    }
    packed_lazy.svg = render_one(catalog);
  });
  const auto dvr = metrics::dvr_stats();

  for (const Mode* m : {&text_eager, &text_lazy, &packed_lazy}) {
    std::printf("%-12s %9.3f ms to first render  (%.1f MB on disk)\n",
                m->name, m->seconds * 1e3, m->disk_bytes / 1e6);
  }
  const double speedup = text_eager.seconds / packed_lazy.seconds;
  std::printf("packed_lazy vs text_eager: %.1fx; dvr: %llu opens, "
              "%llu chunks read, %llu chunks pruned\n",
              speedup, static_cast<unsigned long long>(dvr.opens),
              static_cast<unsigned long long>(dvr.chunks_read),
              static_cast<unsigned long long>(dvr.chunks_pruned));

  bench::shape_check(text_eager.svg == text_lazy.svg &&
                         text_eager.svg == packed_lazy.svg,
                     "first render is byte-identical across store modes");
  bench::shape_check(speedup >= 3.0,
                     "packed lazy cold open + first render is >= 3x faster "
                     "than eager text");
  bench::shape_check(text_lazy.seconds <= text_eager.seconds,
                     "attaching text runs never loses to eager-loading them");

  const std::string path = bench::out_path("BENCH_store.json");
  std::ofstream os(path, std::ios::binary);
  os << "{\n  \"benchmark\": \"store_cold_open\",\n"
     << "  \"provenance\": " << bench::provenance_json() << ",\n"
     << "  \"runs\": " << kRuns << ",\n"
     << "  \"modes\": [\n";
  const Mode* modes[] = {&text_eager, &text_lazy, &packed_lazy};
  for (std::size_t i = 0; i < 3; ++i) {
    os << "    {\"mode\": \"" << modes[i]->name
       << "\", \"seconds_to_first_render\": " << modes[i]->seconds
       << ", \"disk_bytes\": " << modes[i]->disk_bytes << "}"
       << (i + 1 < 3 ? "," : "") << "\n";
  }
  os << "  ],\n"
     << "  \"speedup_packed_vs_text_eager\": " << speedup << ",\n"
     << "  \"dvr\": {\"opens\": " << dvr.opens
     << ", \"chunks_read\": " << dvr.chunks_read
     << ", \"chunk_bytes_read\": " << dvr.chunk_bytes_read
     << ", \"chunks_pruned\": " << dvr.chunks_pruned << "}\n"
     << "}\n";
  std::printf("wrote %s\n", path.c_str());

  std::filesystem::remove_all(base);
  return bench::footer();
}
