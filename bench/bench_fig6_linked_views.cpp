// Figure 6 — The full linked-view user interface: projection + detail +
// timeline for AMG (1728 ranks) on the 2,550-terminal Dragonfly, with a
// time range selected around a traffic burst and a brush on high-latency
// terminals highlighting their associated links.
#include <cstdio>

#include "bench_common.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner(
      "Figure 6 — linked projection/detail/timeline views (AMG, 2550 nodes)",
      "time-range selection updates the projection; selecting high-latency "
      "terminals highlights their saturated links");

  auto cfg = bench::paper_df5_app("amg", routing::Algo::kAdaptive);
  cfg.sample_dt = 20'000.0;  // the paper's 0.02 ms AMG sampling rate
  const auto result = app::run_experiment(cfg);
  std::printf("simulated %s (%llu events)\n", result.topo.describe().c_str(),
              static_cast<unsigned long long>(result.events));

  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .level(core::Entity::kTerminal)
                        .color("workload")
                        .size("avg_latency")
                        .x("avg_hops")
                        .y("data_size")
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  core::AnalysisSession session{core::DataSet(result.run), spec};

  // Timeline: find the second traffic burst and select it (Fig. 6c).
  const auto series = session.timeline().series("local_traffic");
  std::printf("timeline: %zu frames at %.0f ns\n", series.size(),
              session.timeline().dt());
  // Peaks: frames above 3x the mean.
  Accumulator acc;
  for (double v : series) acc.add(v);
  std::vector<std::size_t> bursts;
  bool in_burst = false;
  for (std::size_t f = 0; f < series.size(); ++f) {
    const bool high = series[f] > 2.0 * acc.mean();
    if (high && !in_burst) bursts.push_back(f);
    in_burst = high;
  }
  std::printf("burst count (frames > 2x mean): %zu at frames:", bursts.size());
  for (auto f : bursts) std::printf(" %zu", f);
  std::printf("\n");
  bench::shape_check(bursts.size() == 3,
                     "AMG shows three traffic bursts (begin/middle/end)");

  session.save_svg(bench::out_path("fig6_full_ui.svg"), 1400, 900);

  if (bursts.size() >= 2) {
    const double dt = session.timeline().dt();
    const double t0 = static_cast<double>(bursts[1]) * dt - 2 * dt;
    const double t1 = static_cast<double>(bursts[1]) * dt + 5 * dt;
    session.select_time_range(std::max(0.0, t0), t1);
    session.save_svg(bench::out_path("fig6_burst_selected.svg"), 1400, 900);
    // During the burst only some global links saturate (the paper's
    // observation motivating progressive adaptive routing).
    const auto& ring0 = session.projection().rings()[0];
    int saturated = 0;
    for (const auto& it : ring0.items) saturated += it.color_value > 0;
    std::printf("burst window: %d/%zu global-link aggregates saturated\n",
                saturated, ring0.items.size());
    bench::shape_check(saturated > 0 &&
                           saturated < static_cast<int>(ring0.items.size()),
                       "only specific global links saturate inside the burst");
    session.clear_time_range();
  }

  // Brush the outer-ring metric: terminals in the top latency decile.
  const auto& lat =
      core::DataSet(result.run).table(core::Entity::kTerminal)
          .column("avg_latency");
  std::vector<double> nonzero;
  for (double v : lat) {
    if (v > 0) nonzero.push_back(v);
  }
  const double p90 = percentile(nonzero, 0.90);
  session.brush("avg_latency", p90, 1e18);
  const auto selected = session.detail().selected_terminals();
  const auto assoc_local =
      session.detail().associated_links(core::Entity::kLocalLink);
  const auto assoc_global =
      session.detail().associated_links(core::Entity::kGlobalLink);
  std::printf("brush avg_latency >= p90: %zu terminals, %zu local + %zu "
              "global associated links\n",
              selected.size(), assoc_local.size(), assoc_global.size());
  bench::shape_check(!selected.empty() && !assoc_local.empty() &&
                         !assoc_global.empty(),
                     "selecting high-latency terminals highlights their "
                     "associated network links");
  session.save_svg(bench::out_path("fig6_brushed.svg"), 1400, 900);
  return bench::footer();
}
