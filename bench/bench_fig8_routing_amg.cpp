// Figure 8 — Minimal vs. adaptive routing for AMG on the 2,550-terminal
// Dragonfly, contiguous placement.
//
// Paper: "adaptive routing results in high intra-group traffic while
// having much lower saturation time for all type of network links".
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace dv;
  bench::parse_args(argc, argv);
  bench::banner("Figure 8 — minimal vs adaptive routing, AMG on 2,550 nodes",
                "adaptive raises local-link usage/traffic and lowers "
                "saturation on every link class");

  const auto mmin =
      app::run_experiment(bench::paper_df5_app("amg", routing::Algo::kMinimal))
          .run;
  const auto madp =
      app::run_experiment(bench::paper_df5_app("amg", routing::Algo::kAdaptive))
          .run;

  const auto lmin = bench::link_stats(mmin.local_links);
  const auto ladp = bench::link_stats(madp.local_links);
  const auto gmin = bench::link_stats(mmin.global_links);
  const auto gadp = bench::link_stats(madp.global_links);
  const auto tmin = bench::term_stats(mmin);
  const auto tadp = bench::term_stats(madp);

  std::printf("%-28s %14s %14s\n", "", "minimal", "adaptive");
  auto row = [](const char* label, double a, double b) {
    std::printf("%-28s %14.4g %14.4g\n", label, a, b);
  };
  row("local links used", lmin.used, ladp.used);
  row("local traffic (MB)", lmin.traffic / 1e6, ladp.traffic / 1e6);
  row("local sat (us)", lmin.sat / 1e3, ladp.sat / 1e3);
  row("global traffic (MB)", gmin.traffic / 1e6, gadp.traffic / 1e6);
  row("global sat (us)", gmin.sat / 1e3, gadp.sat / 1e3);
  row("terminal sat (us)", tmin.sat / 1e3, tadp.sat / 1e3);
  row("avg packet latency (ns)", tmin.avg_latency, tadp.avg_latency);
  row("avg hops", tmin.avg_hops, tadp.avg_hops);
  row("completion time (us)", mmin.end_time / 1e3, madp.end_time / 1e3);

  const core::DataSet d_min(mmin), d_adp(madp);
  const auto spec = core::SpecBuilder()
                        .level(core::Entity::kGlobalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .size("traffic")
                        .colors({"white", "purple"})
                        .level(core::Entity::kLocalLink)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .colors({"white", "steelblue"})
                        .level(core::Entity::kTerminal)
                        .aggregate({"router_rank"})
                        .color("sat_time")
                        .colors({"white", "crimson"})
                        .ribbons(core::Entity::kLocalLink, "router_rank")
                        .build();
  core::ComparisonView({&d_min, &d_adp}, spec,
                       {"Minimal Routing", "Adaptive Routing"})
      .save_svg(bench::out_path("fig8_routing_amg.svg"));

  bench::shape_check(ladp.used > lmin.used && ladp.traffic > lmin.traffic,
                     "adaptive raises intra-group (local link) usage");
  bench::shape_check(ladp.sat < lmin.sat,
                     "adaptive lowers local link saturation");
  bench::shape_check(tadp.sat < tmin.sat,
                     "adaptive lowers terminal link saturation");
  bench::shape_check(tadp.avg_latency < tmin.avg_latency,
                     "adaptive lowers AMG packet latency");
  return bench::footer();
}
