// .dvr — the packed columnar on-disk run format.
//
// RunMetrics' text (JSON) format round-trips every metric through decimal
// strings; at sweep scale (hundreds of runs x sampled series) parsing
// dominates cold-open time. A .dvr file stores the same run as raw little-
// endian column chunks behind a fixed header and a chunk directory, so a
// reader can
//
//   * mmap the file and touch only the chunks a query needs (lazy,
//     per-query chunk loading — the out-of-core half of this layer),
//   * skip chunks whose min/max zone map proves they cannot contribute
//     (all-zero sampled-series chunks under a range sum), and
//   * identify the run stably across sessions via a content uid, the key
//     VAID-style persistent query artifacts index on.
//
// Byte-identity contract: RunMetrics -> save_dvr -> load_dvr -> RunMetrics
// is lossless (bit-exact doubles/floats), so DataTables, renders, and
// reports built from a packed run equal the text-loaded ones byte for
// byte. docs/RUN_FORMAT.md specifies the layout.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/run_metrics.hpp"

namespace dv::metrics {

constexpr std::uint32_t kDvrVersion = 1;
/// Sampled series are split into frame-chunks of this many frames, each
/// with its own zone map — the unit of lazy loading and pruning.
constexpr std::size_t kDvrSeriesChunkFrames = 256;

/// Sections a chunk can belong to. Series sections are kSeriesBase + id
/// with id in [0, 6): local_traffic, local_sat, global_traffic,
/// global_sat, term_traffic, term_sat — index order of RunMetrics.
enum class DvrSection : std::uint16_t {
  kLocalLinks = 1,
  kGlobalLinks = 2,
  kTerminals = 3,
  kRouterTallies = 4,
  kSeriesBase = 16,
};
constexpr std::size_t kDvrSeriesCount = 6;

enum class DvrType : std::uint16_t {
  kF64 = 1,
  kF32 = 2,
  kU32 = 3,
  kU64 = 4,
  kI32 = 5,
};
std::size_t dvr_type_size(DvrType t);

/// One chunk-directory entry: where a column (or series frame-chunk)
/// lives, its shape, and its min/max zone map.
struct DvrChunk {
  std::uint16_t section = 0;  ///< DvrSection
  std::uint16_t column = 0;   ///< column id (chunk ordinal for series)
  std::uint16_t dtype = 0;    ///< DvrType
  std::uint64_t offset = 0;   ///< byte offset of the payload
  std::uint64_t bytes = 0;    ///< payload length
  std::uint64_t rows = 0;     ///< element count
  std::uint64_t row0 = 0;     ///< first row / frame index in this chunk
  double zmin = 0.0, zmax = 0.0;  ///< zone map over the chunk's values
};

/// Stable identity of a run's *content*: FNV-1a over every configuration
/// field, metric column and sampled frame, independent of file format or
/// path. Text and packed copies of the same run hash identically, so
/// caches persisted across sessions can key on it.
std::uint64_t run_content_uid(const RunMetrics& run);

/// Writes `run` as a .dvr file (atomically and durably: tmp + fsync +
/// rename).
void save_dvr(const RunMetrics& run, const std::string& path);

/// Atomic durable file publish shared by the .dvr writer and the run-store
/// index: writes `size` bytes to `path + ".tmp"`, fsyncs, renames over
/// `path`, then best-effort fsyncs the containing directory. A crash or
/// power loss leaves either the old file or the complete new one — never a
/// torn or truncated file under the final name.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size);

/// True when the file starts with the DVR1 magic (format dispatch sniffs
/// bytes, not extensions).
bool is_dvr_file(const std::string& path);

/// Full materialization: open, read every chunk, close.
RunMetrics load_dvr(const std::string& path);

/// Process-wide reader counters (mirrored into obs as metrics.dvr.*) —
/// how much of the mapped bytes queries actually touched.
struct DvrStats {
  std::uint64_t opens = 0;
  std::uint64_t bytes_mapped = 0;
  std::uint64_t chunks_read = 0;
  std::uint64_t chunk_bytes_read = 0;
  std::uint64_t chunks_pruned = 0;  ///< skipped via zone maps
};
DvrStats dvr_stats();
void dvr_reset_stats();

/// An open .dvr file: header + chunk directory parsed eagerly (a few KB),
/// column payloads mapped but untouched until a query asks. Read-only and
/// immutable after construction, so concurrent readers need no locking.
class DvrFile {
 public:
  explicit DvrFile(const std::string& path);
  ~DvrFile();
  DvrFile(const DvrFile&) = delete;
  DvrFile& operator=(const DvrFile&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t run_uid() const { return run_uid_; }
  std::uint64_t file_bytes() const { return size_; }
  const std::vector<DvrChunk>& chunks() const { return chunks_; }

  // Header metadata — enough for catalogs and `inspect` without touching
  // any column payload.
  std::uint32_t groups() const { return groups_; }
  std::uint32_t routers_per_group() const { return routers_per_group_; }
  std::uint32_t terminals_per_router() const {
    return terminals_per_router_;
  }
  std::uint32_t global_per_router() const { return global_per_router_; }
  std::uint64_t seed() const { return seed_; }
  double end_time() const { return end_time_; }
  double sample_dt() const { return sample_dt_; }
  bool has_time_series() const { return sample_dt_ > 0.0; }
  const std::string& workload() const { return workload_; }
  const std::string& routing() const { return routing_; }
  const std::string& placement() const { return placement_; }
  const std::vector<std::string>& job_names() const { return job_names_; }

  /// Reads every chunk and rebuilds the RunMetrics bit-exactly.
  RunMetrics load_all() const;

  /// Rebuilds one sampled series (all of its frame-chunks).
  SampledSeries series(std::size_t id) const;
  std::size_t series_entities(std::size_t id) const;
  std::size_t series_frames(std::size_t id) const;

  /// Windowed sum over frames [f0, f1) of one entity, touching only the
  /// overlapping frame-chunks and skipping all-zero ones via their zone
  /// maps. Adding zeros never changes an accumulator that started at +0.0,
  /// so the pruned sum is bit-identical to SampledSeries::range_sum.
  double series_range_sum(std::size_t id, std::size_t entity,
                          std::size_t f0, std::size_t f1,
                          bool prune = true) const;

 private:
  const unsigned char* payload(const DvrChunk& c) const;  // counts a read
  const DvrChunk& find_chunk(DvrSection s, std::uint16_t column) const;
  const DvrChunk* try_chunk(DvrSection s, std::uint16_t column) const;

  std::string path_;
  int fd_ = -1;
  const unsigned char* map_ = nullptr;
  std::uint64_t size_ = 0;
  std::vector<unsigned char> fallback_;  ///< used when mmap is unavailable

  std::uint64_t run_uid_ = 0;
  std::uint32_t groups_ = 0, routers_per_group_ = 0,
                terminals_per_router_ = 0, global_per_router_ = 0;
  std::uint64_t seed_ = 0;
  double end_time_ = 0.0, sample_dt_ = 0.0;
  std::uint32_t n_local_ = 0, n_global_ = 0, n_terminals_ = 0,
                n_tallies_ = 0;
  std::string workload_, routing_, placement_;
  std::vector<std::string> job_names_;
  std::vector<DvrChunk> chunks_;
};

}  // namespace dv::metrics
