// Simulation output schema — the data the VA layer consumes.
//
// Mirrors Fig. 2(a) of the paper: per-entity metric records for routers,
// local/global links and terminals, plus (Sec. III) time-series sampling of
// every link-class metric at a configurable rate so temporal behaviour can
// be explored and a time range re-aggregated.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "json/json.hpp"
#include "util/common.hpp"
#include "util/csv.hpp"

namespace dv::metrics {

/// One directed network link (local or global).
struct LinkMetrics {
  std::uint32_t src_router = 0;
  std::uint32_t src_port = 0;
  std::uint32_t dst_router = 0;
  std::uint32_t dst_port = 0;
  double traffic = 0.0;   ///< bytes transmitted
  double sat_time = 0.0;  ///< total ns during which VC buffers were full
  // Fault injection (all zero on a healthy run).
  double downtime = 0.0;  ///< ns the link was effectively unusable
  std::uint64_t retries = 0;       ///< fault retries of packets aimed here
  std::uint64_t pkts_dropped = 0;  ///< packets dropped while aimed here
};

/// One terminal (compute node NIC) — Fig. 2(a) "Terminal".
struct TerminalMetrics {
  std::uint32_t router = 0;  ///< router the terminal attaches to
  std::uint32_t port = 0;    ///< terminal slot on that router
  double data_size = 0.0;    ///< bytes injected by this terminal
  double sat_time = 0.0;     ///< injection-link buffer-full time (ns)
  std::uint64_t packets_finished = 0;  ///< packets delivered to this terminal
  double sum_latency = 0.0;  ///< over finished packets (ns)
  double sum_hops = 0.0;     ///< router visits over finished packets
  std::int32_t job = -1;     ///< job id, -1 when idle
  // Fault injection (all zero on a healthy run).
  std::uint64_t packets_rerouted = 0;  ///< delivered via a fault detour
  std::uint64_t packets_dropped = 0;   ///< sourced here, dropped in flight
  double downtime = 0.0;               ///< ns the attached router was down

  double avg_latency() const {
    return packets_finished ? sum_latency / static_cast<double>(packets_finished) : 0.0;
  }
  double avg_hops() const {
    return packets_finished ? sum_hops / static_cast<double>(packets_finished) : 0.0;
  }
  /// Fraction of delivered packets that reached here via a fault detour.
  double rerouted_frac() const {
    return packets_finished
               ? static_cast<double>(packets_rerouted) /
                     static_cast<double>(packets_finished)
               : 0.0;
  }
};

/// Per-router aggregate — Fig. 2(a) "Router" (derived from link metrics).
struct RouterMetrics {
  std::uint32_t router = 0;
  std::uint32_t group = 0;
  std::uint32_t rank = 0;
  double global_traffic = 0.0;
  double global_sat_time = 0.0;
  double local_traffic = 0.0;
  double local_sat_time = 0.0;
  // Fault injection (all zero on a healthy run).
  double downtime = 0.0;           ///< ns the router was down
  std::uint64_t retries = 0;       ///< fault retries issued at this router
  std::uint64_t pkts_dropped = 0;  ///< packets dropped at this router
};

/// Fixed-rate sampled series for one entity class: frame f stores the
/// *delta* of a metric for every entity during [f*dt, (f+1)*dt).
class SampledSeries {
 public:
  SampledSeries() = default;
  SampledSeries(std::size_t entities, double dt)
      : entities_(entities), dt_(dt) {}

  std::size_t entities() const { return entities_; }
  std::size_t frames() const {
    return entities_ ? data_.size() / entities_ : 0;
  }
  double dt() const { return dt_; }
  bool empty() const { return data_.empty(); }

  void push_frame(const std::vector<float>& deltas);
  /// Appends one frame and returns a pointer to its `entities()` floats for
  /// in-place filling — the allocation-free counterpart of push_frame used
  /// by the simulator's per-tick flush (no temporary frame vector).
  float* push_frame_raw();
  float at(std::size_t frame, std::size_t entity) const;

  /// Frame-major raw storage (frames() x entities() floats) — the
  /// contiguous span the vectorized kernels, the prefix-slab build, and
  /// the .dvr column writer read directly.
  const float* data() const { return data_.data(); }

  /// Adopts whole frame-major storage in one move (the .dvr reader's
  /// allocation-free ingest path). `data.size()` must be a multiple of
  /// `entities` (zero entities requires empty data).
  static SampledSeries adopt(std::size_t entities, double dt,
                             std::vector<float> data);

  /// Sum over all entities in one frame.
  double frame_total(std::size_t frame) const;
  /// Sum over frames [f0, f1) for one entity (time-range selection).
  double range_sum(std::size_t entity, std::size_t f0, std::size_t f1) const;
  /// Frame index containing time t (clamped).
  std::size_t frame_of(SimTime t) const;

 private:
  std::size_t entities_ = 0;
  double dt_ = 0.0;
  std::vector<float> data_;  // frame-major
};

/// Prefix-summed view of a SampledSeries: P[f][e] accumulates the frames
/// [0, f) of entity e, so the windowed sum over frames [f0, f1) is the O(1)
/// delta P[f1][e] - P[f0][e] instead of an O(f1-f0) scan. The VA layer's
/// query engine and DataSet::slice_time both reduce through one PrefixSeries
/// per sampled metric, which makes incremental re-windowing and from-scratch
/// slicing bit-exact with each other.
class PrefixSeries {
 public:
  PrefixSeries() = default;
  explicit PrefixSeries(const SampledSeries& s);

  std::size_t entities() const { return entities_; }
  std::size_t frames() const {
    return entities_ ? prefix_.size() / entities_ - 1 : 0;
  }
  double dt() const { return dt_; }
  bool empty() const { return prefix_.empty(); }

  /// Sum over frames [f0, f1) for one entity, as a prefix delta.
  double range_sum(std::size_t entity, std::size_t f0, std::size_t f1) const;

  /// Frame-major raw prefix storage ((frames()+1) x entities() doubles).
  /// Hot loops (the query engine's group-slab build) index this directly:
  /// range_sum(e, f0, f1) == p[f1*entities()+e] - p[f0*entities()+e].
  const double* prefix_data() const { return prefix_.data(); }

  /// Half-open frame quantization of the time range [t0, t1): frame f
  /// covers [f*dt, (f+1)*dt), so adjacent ranges partition the frames
  /// exactly (no double counting). Clamped to the sampled span.
  std::pair<std::size_t, std::size_t> frame_range(double t0, double t1) const;

 private:
  std::size_t entities_ = 0;
  double dt_ = 0.0;
  std::vector<double> prefix_;  // (frames+1) x entities, frame-major
};

/// Everything one simulation run produces.
struct RunMetrics {
  // Configuration echo (enough to rebuild entity relations in the VA layer).
  std::uint32_t groups = 0;
  std::uint32_t routers_per_group = 0;
  std::uint32_t terminals_per_router = 0;
  std::uint32_t global_per_router = 0;
  std::string workload;
  std::string routing;
  std::string placement;
  std::uint64_t seed = 0;
  double end_time = 0.0;  ///< simulated ns at completion
  std::vector<std::string> job_names;

  std::vector<LinkMetrics> local_links;   // id = router*(a-1)+lport
  std::vector<LinkMetrics> global_links;  // id = router*h+channel
  std::vector<TerminalMetrics> terminals;

  // Per-router fault tallies (empty on a healthy run; index = router id).
  std::vector<double> router_downtime;
  std::vector<std::uint64_t> router_retries;
  std::vector<std::uint64_t> router_drops;

  // Optional sampling (enabled per run); indices match the vectors above.
  double sample_dt = 0.0;
  SampledSeries local_traffic_ts, local_sat_ts;
  SampledSeries global_traffic_ts, global_sat_ts;
  SampledSeries term_traffic_ts, term_sat_ts;

  bool has_time_series() const { return sample_dt > 0.0; }

  /// Derives the per-router record of Fig. 2(a).
  std::vector<RouterMetrics> derive_routers() const;

  // Totals (used by timeline plots and sanity tests).
  double total_local_traffic() const;
  double total_global_traffic() const;
  double total_terminal_traffic() const;
  double total_injected() const;
  std::uint64_t total_packets_finished() const;

  // Serialization. save() writes the text (JSON) format; dvr.hpp owns the
  // packed columnar format. load() sniffs the on-disk magic and accepts
  // either, so every consumer (CLI, store, serve catalog) reads both. Text
  // parse errors are rethrown with the file path and the offending line
  // number; a UTF-8 BOM, CRLF line endings and trailing whitespace are
  // tolerated.
  json::Value to_json() const;
  static RunMetrics from_json(const json::Value& v);
  void save(const std::string& path) const;
  static RunMetrics load(const std::string& path);

  /// CSV export of one entity class: "local_links", "global_links",
  /// "terminals" or "routers".
  CsvTable to_csv(const std::string& entity_class) const;
};

}  // namespace dv::metrics
