#include "metrics/run_store.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dv::metrics {

namespace fs = std::filesystem;

RunStore::RunStore(std::string dir) : dir_(std::move(dir)) {
  DV_REQUIRE(!dir_.empty(), "run store needs a directory");
  fs::create_directories(dir_);
  load_index();
}

std::string RunStore::path_of(const std::string& name) const {
  return (fs::path(dir_) / (name + ".json")).string();
}

bool RunStore::contains(const std::string& name) const {
  return std::any_of(index_.begin(), index_.end(),
                     [&](const RunInfo& i) { return i.name == name; });
}

std::string RunStore::add(const RunMetrics& run, std::string name) {
  if (name.empty()) {
    name = run.workload + "_" + run.routing + "_" + run.placement;
    for (auto& c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != '-') {
        c = '-';
      }
    }
  }
  std::string final_name = name;
  for (int suffix = 2; contains(final_name); ++suffix) {
    final_name = name + "_" + std::to_string(suffix);
  }
  run.save(path_of(final_name));
  RunInfo info;
  info.name = final_name;
  info.workload = run.workload;
  info.routing = run.routing;
  info.placement = run.placement;
  info.terminals =
      run.groups * run.routers_per_group * run.terminals_per_router;
  info.end_time = run.end_time;
  info.sampled = run.has_time_series();
  index_.push_back(info);
  save_index();
  return final_name;
}

RunMetrics RunStore::load(const std::string& name) const {
  DV_REQUIRE(contains(name), "run store has no run named '" + name + "'");
  return RunMetrics::load(path_of(name));
}

void RunStore::remove(const std::string& name) {
  const auto it = std::find_if(index_.begin(), index_.end(),
                               [&](const RunInfo& i) { return i.name == name; });
  DV_REQUIRE(it != index_.end(), "run store has no run named '" + name + "'");
  fs::remove(path_of(name));
  index_.erase(it);
  save_index();
}

std::vector<std::string> RunStore::find(const std::string& workload,
                                        const std::string& routing,
                                        const std::string& placement) const {
  std::vector<std::string> out;
  for (const auto& info : index_) {
    if (!workload.empty() && info.workload != workload) continue;
    if (!routing.empty() && info.routing != routing) continue;
    if (!placement.empty() && info.placement != placement) continue;
    out.push_back(info.name);
  }
  return out;
}

void RunStore::save_index() const {
  json::Array arr;
  for (const auto& info : index_) {
    json::Object o;
    o["name"] = json::Value(info.name);
    o["workload"] = json::Value(info.workload);
    o["routing"] = json::Value(info.routing);
    o["placement"] = json::Value(info.placement);
    o["terminals"] = json::Value(info.terminals);
    o["end_time"] = json::Value(info.end_time);
    o["sampled"] = json::Value(info.sampled);
    arr.emplace_back(std::move(o));
  }
  std::ofstream os((fs::path(dir_) / "index.json").string(),
                   std::ios::binary);
  DV_REQUIRE(os.good(), "cannot write run store index");
  os << json::dump(json::Value(std::move(arr)), 2);
}

void RunStore::load_index() {
  const auto path = (fs::path(dir_) / "index.json").string();
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return;  // empty store
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto v = json::parse(buf.str());
  index_.clear();
  for (const auto& entry : v.as_array()) {
    RunInfo info;
    info.name = entry.at("name").as_string();
    info.workload = entry.get_string("workload", "");
    info.routing = entry.get_string("routing", "");
    info.placement = entry.get_string("placement", "");
    info.terminals =
        static_cast<std::uint32_t>(entry.get_number("terminals", 0));
    info.end_time = entry.get_number("end_time", 0.0);
    info.sampled = entry.get_bool("sampled", false);
    index_.push_back(info);
  }
}

}  // namespace dv::metrics
