#include "metrics/run_store.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "metrics/dvr.hpp"

namespace dv::metrics {

namespace fs = std::filesystem;

std::string to_string(StoreFormat f) {
  return f == StoreFormat::kPacked ? "dvr" : "text";
}

StoreFormat store_format_from_string(const std::string& s) {
  if (s == "text" || s == "json") return StoreFormat::kText;
  if (s == "dvr" || s == "packed") return StoreFormat::kPacked;
  throw Error("unknown store format '" + s + "' (want text|dvr)");
}

RunStore::RunStore(std::string dir) : dir_(std::move(dir)) {
  DV_REQUIRE(!dir_.empty(), "run store needs a directory");
  fs::create_directories(dir_);
  load_index();
}

std::string RunStore::path_of(const std::string& name,
                              StoreFormat format) const {
  const char* ext = format == StoreFormat::kPacked ? ".dvr" : ".json";
  return (fs::path(dir_) / (name + ext)).string();
}

bool RunStore::contains(const std::string& name) const {
  return std::any_of(index_.begin(), index_.end(),
                     [&](const RunInfo& i) { return i.name == name; });
}

const RunInfo& RunStore::info(const std::string& name) const {
  const auto it =
      std::find_if(index_.begin(), index_.end(),
                   [&](const RunInfo& i) { return i.name == name; });
  DV_REQUIRE(it != index_.end(),
             "run store has no run named '" + name + "'");
  return *it;
}

std::string RunStore::path(const std::string& name) const {
  const RunInfo& i = info(name);
  return path_of(i.name, i.format);
}

std::string RunStore::add(const RunMetrics& run, std::string name,
                          StoreFormat format) {
  if (name.empty()) {
    name = run.workload + "_" + run.routing + "_" + run.placement;
    for (auto& c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
          c != '-') {
        c = '-';
      }
    }
  }
  std::string final_name = name;
  for (int suffix = 2; contains(final_name); ++suffix) {
    final_name = name + "_" + std::to_string(suffix);
  }
  if (format == StoreFormat::kPacked) {
    save_dvr(run, path_of(final_name, format));
  } else {
    run.save(path_of(final_name, format));
  }
  RunInfo info;
  info.name = final_name;
  info.workload = run.workload;
  info.routing = run.routing;
  info.placement = run.placement;
  info.terminals =
      run.groups * run.routers_per_group * run.terminals_per_router;
  info.end_time = run.end_time;
  info.sampled = run.has_time_series();
  info.format = format;
  info.uid = run_content_uid(run);
  index_.push_back(info);
  save_index();
  return final_name;
}

RunMetrics RunStore::load(const std::string& name) const {
  return RunMetrics::load(path(name));
}

void RunStore::remove(const std::string& name) {
  const auto it = std::find_if(index_.begin(), index_.end(),
                               [&](const RunInfo& i) { return i.name == name; });
  DV_REQUIRE(it != index_.end(), "run store has no run named '" + name + "'");
  fs::remove(path_of(it->name, it->format));
  index_.erase(it);
  save_index();
}

void RunStore::repack(const std::string& name, StoreFormat format) {
  const auto it = std::find_if(index_.begin(), index_.end(),
                               [&](const RunInfo& i) { return i.name == name; });
  DV_REQUIRE(it != index_.end(), "run store has no run named '" + name + "'");
  if (it->format == format) return;
  const RunMetrics run = RunMetrics::load(path_of(it->name, it->format));
  // Write the new file before dropping the old one: a failure mid-repack
  // leaves the run readable in its original format.
  if (format == StoreFormat::kPacked) {
    save_dvr(run, path_of(it->name, format));
  } else {
    run.save(path_of(it->name, format));
  }
  fs::remove(path_of(it->name, it->format));
  it->format = format;
  if (it->uid == 0) it->uid = run_content_uid(run);
  save_index();
}

std::vector<std::string> RunStore::find(const std::string& workload,
                                        const std::string& routing,
                                        const std::string& placement) const {
  std::vector<std::string> out;
  for (const auto& info : index_) {
    if (!workload.empty() && info.workload != workload) continue;
    if (!routing.empty() && info.routing != routing) continue;
    if (!placement.empty() && info.placement != placement) continue;
    out.push_back(info.name);
  }
  return out;
}

void RunStore::save_index() const {
  json::Array arr;
  for (const auto& info : index_) {
    json::Object o;
    o["name"] = json::Value(info.name);
    o["workload"] = json::Value(info.workload);
    o["routing"] = json::Value(info.routing);
    o["placement"] = json::Value(info.placement);
    o["terminals"] = json::Value(info.terminals);
    o["end_time"] = json::Value(info.end_time);
    o["sampled"] = json::Value(info.sampled);
    o["format"] = json::Value(to_string(info.format));
    // uid as a decimal string: 64-bit values don't round-trip through a
    // JSON double.
    o["uid"] = json::Value(std::to_string(info.uid));
    arr.emplace_back(std::move(o));
  }
  // Atomic durable publish (tmp + fsync + rename): a reader, a crash, or
  // even a power loss never observes a torn index.
  const auto path = (fs::path(dir_) / "index.json").string();
  const auto text = json::dump(json::Value(std::move(arr)), 2);
  atomic_write_file(path, text.data(), text.size());
}

void RunStore::load_index() {
  const auto path = (fs::path(dir_) / "index.json").string();
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return;  // empty store
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto v = json::parse(buf.str());
  index_.clear();
  for (const auto& entry : v.as_array()) {
    RunInfo info;
    info.name = entry.at("name").as_string();
    info.workload = entry.get_string("workload", "");
    info.routing = entry.get_string("routing", "");
    info.placement = entry.get_string("placement", "");
    info.terminals =
        static_cast<std::uint32_t>(entry.get_number("terminals", 0));
    info.end_time = entry.get_number("end_time", 0.0);
    info.sampled = entry.get_bool("sampled", false);
    info.format = store_format_from_string(entry.get_string("format", "text"));
    info.uid = std::stoull(entry.get_string("uid", "0"));
    index_.push_back(info);
  }
}

}  // namespace dv::metrics
