// RunStore — the "data management" box of the paper's Fig. 1.
//
// The system "effectively processes and manages simulation data to provide
// not only interactive exploration but also quick comparison between
// simulation runs of different network configurations". A RunStore is a
// directory of saved RunMetrics files plus an index of their
// configurations, so runs can be listed, reloaded, and selected for
// comparison without parsing every result file.
#pragma once

#include <string>
#include <vector>

#include "metrics/run_metrics.hpp"

namespace dv::metrics {

/// On-disk representation of a stored run: the text (JSON) format or the
/// packed columnar .dvr format of dvr.hpp. Both load() identically.
enum class StoreFormat { kText, kPacked };

std::string to_string(StoreFormat f);
StoreFormat store_format_from_string(const std::string& s);  // throws

/// Index entry for one stored run.
struct RunInfo {
  std::string name;
  std::string workload;
  std::string routing;
  std::string placement;
  std::uint32_t terminals = 0;
  double end_time = 0.0;
  bool sampled = false;
  StoreFormat format = StoreFormat::kText;
  /// Content uid (run_content_uid) — stable across formats and paths, so
  /// index consumers can key persistent artifacts on it.
  std::uint64_t uid = 0;

  bool operator==(const RunInfo&) const = default;
};

class RunStore {
 public:
  /// Opens (creating if needed) the store directory and loads its index.
  explicit RunStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::size_t size() const { return index_.size(); }
  const std::vector<RunInfo>& list() const { return index_; }
  bool contains(const std::string& name) const;
  const RunInfo& info(const std::string& name) const;  // throws if missing

  /// Saves a run under `name` (derived from its configuration when empty;
  /// suffixed when taken) in the given on-disk format. Returns the final
  /// name.
  std::string add(const RunMetrics& run, std::string name = "",
                  StoreFormat format = StoreFormat::kText);

  RunMetrics load(const std::string& name) const;  // throws if missing
  void remove(const std::string& name);            // throws if missing

  /// Rewrites a stored run in another on-disk format (no-op when it is
  /// already stored that way). The content uid is unchanged by design.
  void repack(const std::string& name, StoreFormat format);

  /// Full path of a stored run's file (throws if missing) — what serve's
  /// lazy catalog and `dragonviz inspect` hand to format-aware readers.
  std::string path(const std::string& name) const;

  /// Names of runs whose metadata matches all non-empty filters. Goes
  /// through the loaded index only — no file is opened or parsed.
  std::vector<std::string> find(const std::string& workload,
                                const std::string& routing = "",
                                const std::string& placement = "") const;

 private:
  std::string path_of(const std::string& name, StoreFormat format) const;
  void save_index() const;  // atomic + durable: tmp + fsync + rename
  void load_index();

  std::string dir_;
  std::vector<RunInfo> index_;
};

}  // namespace dv::metrics
