// RunStore — the "data management" box of the paper's Fig. 1.
//
// The system "effectively processes and manages simulation data to provide
// not only interactive exploration but also quick comparison between
// simulation runs of different network configurations". A RunStore is a
// directory of saved RunMetrics files plus an index of their
// configurations, so runs can be listed, reloaded, and selected for
// comparison without parsing every result file.
#pragma once

#include <string>
#include <vector>

#include "metrics/run_metrics.hpp"

namespace dv::metrics {

/// Index entry for one stored run.
struct RunInfo {
  std::string name;
  std::string workload;
  std::string routing;
  std::string placement;
  std::uint32_t terminals = 0;
  double end_time = 0.0;
  bool sampled = false;

  bool operator==(const RunInfo&) const = default;
};

class RunStore {
 public:
  /// Opens (creating if needed) the store directory and loads its index.
  explicit RunStore(std::string dir);

  const std::string& dir() const { return dir_; }
  std::size_t size() const { return index_.size(); }
  const std::vector<RunInfo>& list() const { return index_; }
  bool contains(const std::string& name) const;

  /// Saves a run under `name` (derived from its configuration when empty;
  /// suffixed when taken). Returns the final name.
  std::string add(const RunMetrics& run, std::string name = "");

  RunMetrics load(const std::string& name) const;  // throws if missing
  void remove(const std::string& name);            // throws if missing

  /// Names of runs whose metadata matches all non-empty filters.
  std::vector<std::string> find(const std::string& workload,
                                const std::string& routing = "",
                                const std::string& placement = "") const;

 private:
  std::string path_of(const std::string& name) const;
  void save_index() const;
  void load_index();

  std::string dir_;
  std::vector<RunInfo> index_;
};

}  // namespace dv::metrics
