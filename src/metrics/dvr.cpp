#include "metrics/dvr.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "obs/obs.hpp"
#include "util/kernels.hpp"

namespace dv::metrics {

namespace {

constexpr char kMagic[4] = {'D', 'V', 'R', '1'};

struct Stats {
  std::atomic<std::uint64_t> opens{0};
  std::atomic<std::uint64_t> bytes_mapped{0};
  std::atomic<std::uint64_t> chunks_read{0};
  std::atomic<std::uint64_t> chunk_bytes_read{0};
  std::atomic<std::uint64_t> chunks_pruned{0};
};
Stats& stats() {
  static Stats s;
  return s;
}

// ----------------------------------------------------- byte-level helpers
// All multi-byte values are little-endian. The writer/reader memcpy
// through byte buffers (no packed-struct aliasing); dragonviz targets
// little-endian hosts, which keeps these memcpys copy-through.

class ByteWriter {
 public:
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  template <typename T>
  void pod(T v) {
    raw(&v, sizeof(v));
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint32_t>(s.size()));
    raw(s.data(), s.size());
  }
  std::size_t size() const { return buf_.size(); }
  const std::vector<unsigned char>& bytes() const { return buf_; }
  /// Patches a previously written POD in place (for offsets known late).
  template <typename T>
  void patch(std::size_t at, T v) {
    DV_CHECK(at + sizeof(v) <= buf_.size(), "dvr patch out of range");
    std::memcpy(buf_.data() + at, &v, sizeof(v));
  }

 private:
  std::vector<unsigned char> buf_;
};

class ByteReader {
 public:
  ByteReader(const unsigned char* p, std::uint64_t n) : p_(p), n_(n) {}
  template <typename T>
  T pod() {
    T v;
    DV_REQUIRE(at_ + sizeof(v) <= n_, "truncated .dvr file");
    std::memcpy(&v, p_ + at_, sizeof(v));
    at_ += sizeof(v);
    return v;
  }
  std::string str() {
    const auto len = pod<std::uint32_t>();
    DV_REQUIRE(at_ + len <= n_, "truncated .dvr string");
    std::string s(reinterpret_cast<const char*>(p_ + at_), len);
    at_ += len;
    return s;
  }
  void seek(std::uint64_t at) {
    DV_REQUIRE(at <= n_, "bad .dvr offset");
    at_ = at;
  }
  std::uint64_t at() const { return at_; }

 private:
  const unsigned char* p_;
  std::uint64_t n_;
  std::uint64_t at_ = 0;
};

// -------------------------------------------------------------- column IO

/// Extracts one field of a record vector into a contiguous typed buffer.
template <typename T, typename Rec, typename F>
std::vector<T> gather_field(const std::vector<Rec>& recs, F get) {
  std::vector<T> out(recs.size());
  for (std::size_t i = 0; i < recs.size(); ++i) out[i] = get(recs[i]);
  return out;
}

template <typename T>
void zone_map(const std::vector<T>& v, double& zmin, double& zmax) {
  zmin = zmax = 0.0;
  if (v.empty()) return;
  if constexpr (std::is_same_v<T, double>) {
    kernels::minmax_f64(v.data(), v.size(), zmin, zmax);
  } else if constexpr (std::is_same_v<T, float>) {
    float lo = 0.0f, hi = 0.0f;
    kernels::minmax_f32(v.data(), v.size(), lo, hi);
    zmin = lo;
    zmax = hi;
  } else {
    T lo = v[0], hi = v[0];
    for (const T x : v) {
      lo = x < lo ? x : lo;
      hi = x > hi ? x : hi;
    }
    zmin = static_cast<double>(lo);
    zmax = static_cast<double>(hi);
  }
}

template <typename T>
DvrType dvr_type_of() {
  if constexpr (std::is_same_v<T, double>) return DvrType::kF64;
  if constexpr (std::is_same_v<T, float>) return DvrType::kF32;
  if constexpr (std::is_same_v<T, std::uint32_t>) return DvrType::kU32;
  if constexpr (std::is_same_v<T, std::uint64_t>) return DvrType::kU64;
  return DvrType::kI32;
}

struct PendingChunk {
  DvrChunk meta;
  std::vector<unsigned char> payload;
};

class ChunkSink {
 public:
  template <typename T>
  void add(DvrSection section, std::uint16_t column,
           const std::vector<T>& values, std::uint64_t row0 = 0) {
    PendingChunk c;
    c.meta.section = static_cast<std::uint16_t>(section);
    c.meta.column = column;
    c.meta.dtype = static_cast<std::uint16_t>(dvr_type_of<T>());
    c.meta.rows = values.size();
    c.meta.row0 = row0;
    c.meta.bytes = values.size() * sizeof(T);
    zone_map(values, c.meta.zmin, c.meta.zmax);
    c.payload.resize(c.meta.bytes);
    std::memcpy(c.payload.data(), values.data(), c.meta.bytes);
    chunks_.push_back(std::move(c));
  }
  std::vector<PendingChunk>& chunks() { return chunks_; }

 private:
  std::vector<PendingChunk> chunks_;
};

void write_links(ChunkSink& sink, DvrSection s,
                 const std::vector<LinkMetrics>& links) {
  using L = LinkMetrics;
  sink.add(s, 0, gather_field<std::uint32_t, L>(
                     links, [](const L& l) { return l.src_router; }));
  sink.add(s, 1, gather_field<std::uint32_t, L>(
                     links, [](const L& l) { return l.src_port; }));
  sink.add(s, 2, gather_field<std::uint32_t, L>(
                     links, [](const L& l) { return l.dst_router; }));
  sink.add(s, 3, gather_field<std::uint32_t, L>(
                     links, [](const L& l) { return l.dst_port; }));
  sink.add(s, 4, gather_field<double, L>(
                     links, [](const L& l) { return l.traffic; }));
  sink.add(s, 5, gather_field<double, L>(
                     links, [](const L& l) { return l.sat_time; }));
  sink.add(s, 6, gather_field<double, L>(
                     links, [](const L& l) { return l.downtime; }));
  sink.add(s, 7, gather_field<std::uint64_t, L>(
                     links, [](const L& l) { return l.retries; }));
  sink.add(s, 8, gather_field<std::uint64_t, L>(
                     links, [](const L& l) { return l.pkts_dropped; }));
}

void write_terminals(ChunkSink& sink,
                     const std::vector<TerminalMetrics>& terms) {
  using T = TerminalMetrics;
  const auto s = DvrSection::kTerminals;
  sink.add(s, 0, gather_field<std::uint32_t, T>(
                     terms, [](const T& t) { return t.router; }));
  sink.add(s, 1, gather_field<std::uint32_t, T>(
                     terms, [](const T& t) { return t.port; }));
  sink.add(s, 2, gather_field<double, T>(
                     terms, [](const T& t) { return t.data_size; }));
  sink.add(s, 3, gather_field<double, T>(
                     terms, [](const T& t) { return t.sat_time; }));
  sink.add(s, 4, gather_field<std::uint64_t, T>(
                     terms, [](const T& t) { return t.packets_finished; }));
  sink.add(s, 5, gather_field<double, T>(
                     terms, [](const T& t) { return t.sum_latency; }));
  sink.add(s, 6, gather_field<double, T>(
                     terms, [](const T& t) { return t.sum_hops; }));
  sink.add(s, 7, gather_field<std::int32_t, T>(
                     terms, [](const T& t) { return t.job; }));
  sink.add(s, 8, gather_field<std::uint64_t, T>(
                     terms, [](const T& t) { return t.packets_rerouted; }));
  sink.add(s, 9, gather_field<std::uint64_t, T>(
                     terms, [](const T& t) { return t.packets_dropped; }));
  sink.add(s, 10, gather_field<double, T>(
                      terms, [](const T& t) { return t.downtime; }));
}

const SampledSeries* series_of(const RunMetrics& run, std::size_t id) {
  switch (id) {
    case 0: return &run.local_traffic_ts;
    case 1: return &run.local_sat_ts;
    case 2: return &run.global_traffic_ts;
    case 3: return &run.global_sat_ts;
    case 4: return &run.term_traffic_ts;
    case 5: return &run.term_sat_ts;
  }
  return nullptr;
}

void write_series(ChunkSink& sink, std::size_t id, const SampledSeries& s) {
  const auto section =
      static_cast<DvrSection>(static_cast<std::uint16_t>(
                                  DvrSection::kSeriesBase) +
                              id);
  const std::size_t entities = s.entities();
  const std::size_t frames = s.frames();
  std::uint16_t ordinal = 0;
  for (std::size_t f0 = 0; f0 < frames; f0 += kDvrSeriesChunkFrames) {
    const std::size_t nf = std::min(kDvrSeriesChunkFrames, frames - f0);
    std::vector<float> chunk(s.data() + f0 * entities,
                             s.data() + (f0 + nf) * entities);
    sink.add(section, ordinal++, chunk, f0);
  }
  // A sampled-but-empty series (entities > 0, no frames yet) still needs
  // its shape recorded; an explicit empty chunk does that.
  if (frames == 0 && entities > 0) {
    sink.add(section, 0, std::vector<float>{}, 0);
  }
}

}  // namespace

std::size_t dvr_type_size(DvrType t) {
  switch (t) {
    case DvrType::kF64: return 8;
    case DvrType::kF32: return 4;
    case DvrType::kU32: return 4;
    case DvrType::kU64: return 8;
    case DvrType::kI32: return 4;
  }
  throw Error("unknown .dvr dtype");
}

// ----------------------------------------------------------- content uid

std::uint64_t run_content_uid(const RunMetrics& run) {
  // FNV-1a over a canonical byte stream of every field, column-major in
  // the same order the writer emits chunks, so uid computation and file
  // layout can never drift apart silently.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  };
  auto pod = [&mix](auto v) { mix(&v, sizeof(v)); };
  auto str = [&](const std::string& s) {
    pod(static_cast<std::uint64_t>(s.size()));
    mix(s.data(), s.size());
  };
  pod(run.groups);
  pod(run.routers_per_group);
  pod(run.terminals_per_router);
  pod(run.global_per_router);
  str(run.workload);
  str(run.routing);
  str(run.placement);
  pod(run.seed);
  pod(run.end_time);
  pod(static_cast<std::uint64_t>(run.job_names.size()));
  for (const auto& n : run.job_names) str(n);
  auto links = [&](const std::vector<LinkMetrics>& ls) {
    pod(static_cast<std::uint64_t>(ls.size()));
    for (const auto& l : ls) {
      pod(l.src_router);
      pod(l.src_port);
      pod(l.dst_router);
      pod(l.dst_port);
      pod(l.traffic);
      pod(l.sat_time);
      pod(l.downtime);
      pod(l.retries);
      pod(l.pkts_dropped);
    }
  };
  links(run.local_links);
  links(run.global_links);
  pod(static_cast<std::uint64_t>(run.terminals.size()));
  for (const auto& t : run.terminals) {
    pod(t.router);
    pod(t.port);
    pod(t.data_size);
    pod(t.sat_time);
    pod(t.packets_finished);
    pod(t.sum_latency);
    pod(t.sum_hops);
    pod(t.job);
    pod(t.packets_rerouted);
    pod(t.packets_dropped);
    pod(t.downtime);
  }
  pod(static_cast<std::uint64_t>(run.router_downtime.size()));
  for (const double d : run.router_downtime) pod(d);
  pod(static_cast<std::uint64_t>(run.router_retries.size()));
  for (const std::uint64_t c : run.router_retries) pod(c);
  pod(static_cast<std::uint64_t>(run.router_drops.size()));
  for (const std::uint64_t c : run.router_drops) pod(c);
  pod(run.sample_dt);
  for (std::size_t id = 0; id < kDvrSeriesCount; ++id) {
    const SampledSeries& s = *series_of(run, id);
    pod(static_cast<std::uint64_t>(s.entities()));
    pod(static_cast<std::uint64_t>(s.frames()));
    mix(s.data(), s.frames() * s.entities() * sizeof(float));
  }
  return h;
}

// ----------------------------------------------------------------- writer

void save_dvr(const RunMetrics& run, const std::string& path) {
  ChunkSink sink;
  write_links(sink, DvrSection::kLocalLinks, run.local_links);
  write_links(sink, DvrSection::kGlobalLinks, run.global_links);
  write_terminals(sink, run.terminals);
  if (!run.router_downtime.empty()) {
    sink.add(DvrSection::kRouterTallies, 0, run.router_downtime);
  }
  if (!run.router_retries.empty()) {
    sink.add(DvrSection::kRouterTallies, 1, run.router_retries);
  }
  if (!run.router_drops.empty()) {
    sink.add(DvrSection::kRouterTallies, 2, run.router_drops);
  }
  if (run.has_time_series()) {
    for (std::size_t id = 0; id < kDvrSeriesCount; ++id) {
      write_series(sink, id, *series_of(run, id));
    }
  }

  ByteWriter w;
  w.raw(kMagic, sizeof(kMagic));
  w.pod(kDvrVersion);
  w.pod(run_content_uid(run));
  w.pod(run.groups);
  w.pod(run.routers_per_group);
  w.pod(run.terminals_per_router);
  w.pod(run.global_per_router);
  w.pod(run.seed);
  w.pod(run.end_time);
  w.pod(run.sample_dt);
  w.pod(static_cast<std::uint32_t>(run.local_links.size()));
  w.pod(static_cast<std::uint32_t>(run.global_links.size()));
  w.pod(static_cast<std::uint32_t>(run.terminals.size()));
  w.pod(static_cast<std::uint32_t>(run.router_downtime.size()));
  w.pod(static_cast<std::uint32_t>(sink.chunks().size()));
  const std::size_t dir_offset_at = w.size();
  w.pod(static_cast<std::uint64_t>(0));  // chunk directory offset (patched)
  w.str(run.workload);
  w.str(run.routing);
  w.str(run.placement);
  w.pod(static_cast<std::uint32_t>(run.job_names.size()));
  for (const auto& n : run.job_names) w.str(n);

  // Chunk payloads, 8-byte aligned so mmap'd doubles are naturally
  // aligned for direct memcpy-free reads.
  for (auto& c : sink.chunks()) {
    while (w.size() % 8 != 0) w.pod(static_cast<unsigned char>(0));
    c.meta.offset = w.size();
    w.raw(c.payload.data(), c.payload.size());
  }

  const std::uint64_t dir_offset = w.size();
  w.patch(dir_offset_at, dir_offset);
  for (const auto& c : sink.chunks()) {
    w.pod(c.meta.section);
    w.pod(c.meta.column);
    w.pod(c.meta.dtype);
    w.pod(static_cast<std::uint16_t>(0));  // reserved
    w.pod(c.meta.offset);
    w.pod(c.meta.bytes);
    w.pod(c.meta.rows);
    w.pod(c.meta.row0);
    w.pod(c.meta.zmin);
    w.pod(c.meta.zmax);
  }

  atomic_write_file(path, w.bytes().data(), w.size());
}

void atomic_write_file(const std::string& path, const void* data,
                       std::size_t size) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  DV_REQUIRE(fd >= 0, "cannot open for writing: " + tmp);
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t put = 0;
  bool ok = true;
  while (ok && put < size) {
    const ssize_t n = ::write(fd, p + put, size - put);
    if (n < 0) {
      ok = false;
    } else {
      put += static_cast<std::size_t>(n);
    }
  }
  // Durability before visibility: without this fsync the rename below can
  // survive a power loss while the data does not, publishing a truncated
  // file under the final name on some filesystems.
  if (ok && ::fsync(fd) != 0) ok = false;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    throw Error("write failed: " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw Error("cannot rename " + tmp + " -> " + path);
  }
  // Best-effort: persist the directory entry too. Some filesystems refuse
  // to fsync a directory fd, so failures here are not fatal — the data
  // itself is already durable.
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

bool is_dvr_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is.good()) return false;
  char magic[4] = {};
  is.read(magic, sizeof(magic));
  return is.gcount() == sizeof(magic) &&
         std::memcmp(magic, kMagic, sizeof(magic)) == 0;
}

RunMetrics load_dvr(const std::string& path) {
  return DvrFile(path).load_all();
}

// ----------------------------------------------------------------- reader

DvrStats dvr_stats() {
  DvrStats out;
  Stats& s = stats();
  out.opens = s.opens.load(std::memory_order_relaxed);
  out.bytes_mapped = s.bytes_mapped.load(std::memory_order_relaxed);
  out.chunks_read = s.chunks_read.load(std::memory_order_relaxed);
  out.chunk_bytes_read = s.chunk_bytes_read.load(std::memory_order_relaxed);
  out.chunks_pruned = s.chunks_pruned.load(std::memory_order_relaxed);
  return out;
}

void dvr_reset_stats() {
  Stats& s = stats();
  s.opens.store(0, std::memory_order_relaxed);
  s.bytes_mapped.store(0, std::memory_order_relaxed);
  s.chunks_read.store(0, std::memory_order_relaxed);
  s.chunk_bytes_read.store(0, std::memory_order_relaxed);
  s.chunks_pruned.store(0, std::memory_order_relaxed);
}

DvrFile::DvrFile(const std::string& path) : path_(path) {
  fd_ = ::open(path.c_str(), O_RDONLY);
  DV_REQUIRE(fd_ >= 0, "cannot open for reading: " + path);
  struct stat st = {};
  if (::fstat(fd_, &st) != 0 || st.st_size <= 0) {
    ::close(fd_);
    fd_ = -1;
    throw Error("cannot stat .dvr file: " + path);
  }
  size_ = static_cast<std::uint64_t>(st.st_size);
  void* m = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd_, 0);
  if (m != MAP_FAILED) {
    map_ = static_cast<const unsigned char*>(m);
  } else {
    // mmap can fail on exotic filesystems; fall back to a full read so
    // the format stays usable (at the cost of laziness).
    fallback_.resize(size_);
    std::uint64_t got = 0;
    while (got < size_) {
      const ssize_t r = ::read(fd_, fallback_.data() + got, size_ - got);
      if (r <= 0) {
        ::close(fd_);
        fd_ = -1;
        throw Error("cannot read .dvr file: " + path);
      }
      got += static_cast<std::uint64_t>(r);
    }
    map_ = fallback_.data();
  }
  stats().opens.fetch_add(1, std::memory_order_relaxed);
  stats().bytes_mapped.fetch_add(size_, std::memory_order_relaxed);
  DV_OBS_COUNT("metrics.dvr.opens", 1);

  try {
    ByteReader r(map_, size_);
    char magic[4];
    std::memcpy(magic, map_, sizeof(magic));
    r.seek(sizeof(magic));
    DV_REQUIRE(std::memcmp(magic, kMagic, sizeof(magic)) == 0,
               "not a .dvr file: " + path);
    const auto version = r.pod<std::uint32_t>();
    DV_REQUIRE(version == kDvrVersion,
               "unsupported .dvr version " + std::to_string(version) +
                   " in " + path + " (reader supports " +
                   std::to_string(kDvrVersion) + ")");
    run_uid_ = r.pod<std::uint64_t>();
    groups_ = r.pod<std::uint32_t>();
    routers_per_group_ = r.pod<std::uint32_t>();
    terminals_per_router_ = r.pod<std::uint32_t>();
    global_per_router_ = r.pod<std::uint32_t>();
    seed_ = r.pod<std::uint64_t>();
    end_time_ = r.pod<double>();
    sample_dt_ = r.pod<double>();
    n_local_ = r.pod<std::uint32_t>();
    n_global_ = r.pod<std::uint32_t>();
    n_terminals_ = r.pod<std::uint32_t>();
    n_tallies_ = r.pod<std::uint32_t>();
    const auto n_chunks = r.pod<std::uint32_t>();
    const auto dir_offset = r.pod<std::uint64_t>();
    workload_ = r.str();
    routing_ = r.str();
    placement_ = r.str();
    const auto n_jobs = r.pod<std::uint32_t>();
    job_names_.reserve(n_jobs);
    for (std::uint32_t i = 0; i < n_jobs; ++i) job_names_.push_back(r.str());

    r.seek(dir_offset);
    chunks_.reserve(n_chunks);
    for (std::uint32_t i = 0; i < n_chunks; ++i) {
      DvrChunk c;
      c.section = r.pod<std::uint16_t>();
      c.column = r.pod<std::uint16_t>();
      c.dtype = r.pod<std::uint16_t>();
      r.pod<std::uint16_t>();  // reserved
      c.offset = r.pod<std::uint64_t>();
      c.bytes = r.pod<std::uint64_t>();
      c.rows = r.pod<std::uint64_t>();
      c.row0 = r.pod<std::uint64_t>();
      c.zmin = r.pod<double>();
      c.zmax = r.pod<double>();
      // Subtraction/division forms: the additive `offset + bytes <= size`
      // and multiplicative `bytes == rows * elem` checks both wrap on
      // crafted uint64 values and would admit out-of-range chunks.
      DV_REQUIRE(c.offset <= size_ && c.bytes <= size_ - c.offset,
                 "chunk past end of .dvr file: " + path);
      const std::uint64_t elem =
          dvr_type_size(static_cast<DvrType>(c.dtype));
      DV_REQUIRE(c.bytes % elem == 0 && c.rows == c.bytes / elem,
                 "chunk size/dtype mismatch in " + path);
      // Series chunks address a frames x entities slab, so series() can
      // only memcpy safely if every chunk's [row0, row0 + rows/entities)
      // frame range is representable and consistent with the header's
      // entity count. A frame costs entities * sizeof(float) payload
      // bytes, so no genuine frame index can exceed size_ / that — which
      // also keeps the frames * entities allocation arithmetic overflow-
      // free for everything the directory admits.
      const auto series_base =
          static_cast<std::uint16_t>(DvrSection::kSeriesBase);
      if (c.section >= series_base &&
          c.section < series_base + kDvrSeriesCount) {
        const std::uint64_t entities =
            series_entities(c.section - series_base);
        if (c.rows > 0) {
          DV_REQUIRE(entities > 0,
                     "series chunk for an empty entity class in " + path);
          DV_REQUIRE(c.rows % entities == 0,
                     "series chunk rows not a multiple of the entity "
                     "count in " +
                         path);
        }
        if (entities > 0) {
          const std::uint64_t max_frames =
              size_ / (entities * sizeof(float));
          const std::uint64_t chunk_frames = c.rows / entities;
          DV_REQUIRE(
              chunk_frames <= max_frames && c.row0 <= max_frames - chunk_frames,
              "series chunk frame range exceeds file in " + path);
        }
      }
      chunks_.push_back(c);
    }
  } catch (...) {
    if (map_ != nullptr && fallback_.empty()) {
      ::munmap(const_cast<unsigned char*>(map_), size_);
    }
    ::close(fd_);
    throw;
  }
}

DvrFile::~DvrFile() {
  if (map_ != nullptr && fallback_.empty()) {
    ::munmap(const_cast<unsigned char*>(map_), size_);
  }
  if (fd_ >= 0) ::close(fd_);
}

const unsigned char* DvrFile::payload(const DvrChunk& c) const {
  stats().chunks_read.fetch_add(1, std::memory_order_relaxed);
  stats().chunk_bytes_read.fetch_add(c.bytes, std::memory_order_relaxed);
  DV_OBS_COUNT("metrics.dvr.chunks_read", 1);
  return map_ + c.offset;
}

const DvrChunk* DvrFile::try_chunk(DvrSection s,
                                   std::uint16_t column) const {
  for (const auto& c : chunks_) {
    if (c.section == static_cast<std::uint16_t>(s) && c.column == column) {
      return &c;
    }
  }
  return nullptr;
}

const DvrChunk& DvrFile::find_chunk(DvrSection s,
                                    std::uint16_t column) const {
  const DvrChunk* c = try_chunk(s, column);
  DV_REQUIRE(c != nullptr, "missing chunk in " + path_ + " (section " +
                               std::to_string(static_cast<int>(s)) +
                               ", column " + std::to_string(column) + ")");
  return *c;
}

namespace {

template <typename T>
std::vector<T> read_column(const DvrFile& f, const DvrChunk& c,
                           const unsigned char* p) {
  DV_REQUIRE(static_cast<DvrType>(c.dtype) == dvr_type_of<T>(),
             "chunk dtype mismatch in " + f.path());
  std::vector<T> out(c.rows);
  std::memcpy(out.data(), p, c.bytes);
  return out;
}

}  // namespace

RunMetrics DvrFile::load_all() const {
  RunMetrics m;
  m.groups = groups_;
  m.routers_per_group = routers_per_group_;
  m.terminals_per_router = terminals_per_router_;
  m.global_per_router = global_per_router_;
  m.workload = workload_;
  m.routing = routing_;
  m.placement = placement_;
  m.seed = seed_;
  m.end_time = end_time_;
  m.sample_dt = sample_dt_;
  m.job_names = job_names_;

  auto read_links = [this](DvrSection s, std::uint32_t n) {
    std::vector<LinkMetrics> links(n);
    if (n == 0) return links;
    auto col = [this, s](std::uint16_t id) {
      return find_chunk(s, id);
    };
    const auto sr = read_column<std::uint32_t>(*this, col(0), payload(col(0)));
    const auto sp = read_column<std::uint32_t>(*this, col(1), payload(col(1)));
    const auto dr = read_column<std::uint32_t>(*this, col(2), payload(col(2)));
    const auto dp = read_column<std::uint32_t>(*this, col(3), payload(col(3)));
    const auto tr = read_column<double>(*this, col(4), payload(col(4)));
    const auto sa = read_column<double>(*this, col(5), payload(col(5)));
    const auto dn = read_column<double>(*this, col(6), payload(col(6)));
    const auto re = read_column<std::uint64_t>(*this, col(7), payload(col(7)));
    const auto pd = read_column<std::uint64_t>(*this, col(8), payload(col(8)));
    DV_REQUIRE(sr.size() == n, "link column count mismatch in " + path_);
    for (std::uint32_t i = 0; i < n; ++i) {
      links[i].src_router = sr[i];
      links[i].src_port = sp[i];
      links[i].dst_router = dr[i];
      links[i].dst_port = dp[i];
      links[i].traffic = tr[i];
      links[i].sat_time = sa[i];
      links[i].downtime = dn[i];
      links[i].retries = re[i];
      links[i].pkts_dropped = pd[i];
    }
    return links;
  };
  m.local_links = read_links(DvrSection::kLocalLinks, n_local_);
  m.global_links = read_links(DvrSection::kGlobalLinks, n_global_);

  if (n_terminals_ > 0) {
    const auto s = DvrSection::kTerminals;
    auto col = [this, s](std::uint16_t id) { return find_chunk(s, id); };
    const auto ro = read_column<std::uint32_t>(*this, col(0), payload(col(0)));
    const auto po = read_column<std::uint32_t>(*this, col(1), payload(col(1)));
    const auto ds = read_column<double>(*this, col(2), payload(col(2)));
    const auto sa = read_column<double>(*this, col(3), payload(col(3)));
    const auto pf = read_column<std::uint64_t>(*this, col(4), payload(col(4)));
    const auto sl = read_column<double>(*this, col(5), payload(col(5)));
    const auto sh = read_column<double>(*this, col(6), payload(col(6)));
    const auto jb = read_column<std::int32_t>(*this, col(7), payload(col(7)));
    const auto pr = read_column<std::uint64_t>(*this, col(8), payload(col(8)));
    const auto pd = read_column<std::uint64_t>(*this, col(9), payload(col(9)));
    const auto dn = read_column<double>(*this, col(10), payload(col(10)));
    DV_REQUIRE(ro.size() == n_terminals_,
               "terminal column count mismatch in " + path_);
    m.terminals.resize(n_terminals_);
    for (std::uint32_t i = 0; i < n_terminals_; ++i) {
      auto& t = m.terminals[i];
      t.router = ro[i];
      t.port = po[i];
      t.data_size = ds[i];
      t.sat_time = sa[i];
      t.packets_finished = pf[i];
      t.sum_latency = sl[i];
      t.sum_hops = sh[i];
      t.job = jb[i];
      t.packets_rerouted = pr[i];
      t.packets_dropped = pd[i];
      t.downtime = dn[i];
    }
  }

  if (n_tallies_ > 0) {
    const auto s = DvrSection::kRouterTallies;
    const DvrChunk& dt = find_chunk(s, 0);
    m.router_downtime = read_column<double>(*this, dt, payload(dt));
    const DvrChunk& rt = find_chunk(s, 1);
    m.router_retries = read_column<std::uint64_t>(*this, rt, payload(rt));
    const DvrChunk& dr = find_chunk(s, 2);
    m.router_drops = read_column<std::uint64_t>(*this, dr, payload(dr));
  }

  if (has_time_series()) {
    m.local_traffic_ts = series(0);
    m.local_sat_ts = series(1);
    m.global_traffic_ts = series(2);
    m.global_sat_ts = series(3);
    m.term_traffic_ts = series(4);
    m.term_sat_ts = series(5);
  }
  return m;
}

std::size_t DvrFile::series_entities(std::size_t id) const {
  switch (id) {
    case 0:
    case 1: return n_local_;
    case 2:
    case 3: return n_global_;
    case 4:
    case 5: return n_terminals_;
  }
  throw Error("bad series id");
}

std::size_t DvrFile::series_frames(std::size_t id) const {
  const std::size_t entities = series_entities(id);
  if (entities == 0) return 0;
  const auto section = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(DvrSection::kSeriesBase) + id);
  std::size_t frames = 0;
  for (const auto& c : chunks_) {
    if (c.section != section) continue;
    frames = std::max<std::size_t>(frames, c.row0 + c.rows / entities);
  }
  return frames;
}

SampledSeries DvrFile::series(std::size_t id) const {
  const std::size_t entities = series_entities(id);
  const std::size_t frames = series_frames(id);
  std::vector<float> data(frames * entities);
  const auto section = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(DvrSection::kSeriesBase) + id);
  for (const auto& c : chunks_) {
    if (c.section != section || c.rows == 0) continue;
    DV_REQUIRE(static_cast<DvrType>(c.dtype) == DvrType::kF32,
               "series chunk dtype mismatch in " + path_);
    // The constructor admits only chunks whose frame range fits the slab;
    // this invariant is what makes the raw memcpy below safe.
    DV_CHECK(c.row0 * entities + c.rows <= data.size(),
             "series chunk outside slab in " + path_);
    std::memcpy(data.data() + c.row0 * entities, payload(c), c.bytes);
  }
  return SampledSeries::adopt(entities, sample_dt_, std::move(data));
}

double DvrFile::series_range_sum(std::size_t id, std::size_t entity,
                                 std::size_t f0, std::size_t f1,
                                 bool prune) const {
  const std::size_t entities = series_entities(id);
  DV_REQUIRE(entity < entities, "entity out of range");
  DV_REQUIRE(f0 <= f1 && f1 <= series_frames(id), "bad frame range");
  const auto section = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(DvrSection::kSeriesBase) + id);
  double acc = 0.0;
  // Frame-chunks are written in ascending row0 order, so walking the
  // directory in order preserves the scalar loop's accumulation order.
  for (const auto& c : chunks_) {
    if (c.section != section || c.rows == 0) continue;
    const std::size_t cf0 = c.row0;
    const std::size_t cf1 = c.row0 + c.rows / entities;
    const std::size_t lo = std::max(f0, cf0);
    const std::size_t hi = std::min(f1, cf1);
    if (lo >= hi) continue;
    if (prune && c.zmin == 0.0 && c.zmax == 0.0) {
      // Zone map proves every value in the chunk is (+/-)0.0f; adding
      // zeros to an accumulator that starts at +0.0 never changes its
      // bits, so the skip is exact, not approximate.
      stats().chunks_pruned.fetch_add(1, std::memory_order_relaxed);
      DV_OBS_COUNT("metrics.dvr.chunks_pruned", 1);
      continue;
    }
    const auto* vals = reinterpret_cast<const float*>(payload(c));
    acc += kernels::strided_sum(vals, entities, entity, lo - cf0, hi - cf0);
  }
  return acc;
}

}  // namespace dv::metrics
