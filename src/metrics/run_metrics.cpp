#include "metrics/run_metrics.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "metrics/dvr.hpp"
#include "util/kernels.hpp"
#include "util/str.hpp"

namespace dv::metrics {

// ------------------------------------------------------------ SampledSeries

void SampledSeries::push_frame(const std::vector<float>& deltas) {
  DV_REQUIRE(deltas.size() == entities_, "frame size mismatch");
  data_.insert(data_.end(), deltas.begin(), deltas.end());
}

float* SampledSeries::push_frame_raw() {
  DV_REQUIRE(entities_ > 0, "push_frame_raw on an unconfigured series");
  data_.resize(data_.size() + entities_, 0.0f);
  return data_.data() + (data_.size() - entities_);
}

SampledSeries SampledSeries::adopt(std::size_t entities, double dt,
                                   std::vector<float> data) {
  DV_REQUIRE(entities ? data.size() % entities == 0 : data.empty(),
             "adopted series data is not a whole number of frames");
  SampledSeries s(entities, dt);
  s.data_ = std::move(data);
  return s;
}

float SampledSeries::at(std::size_t frame, std::size_t entity) const {
  DV_REQUIRE(frame < frames() && entity < entities_, "series index out of range");
  return data_[frame * entities_ + entity];
}

double SampledSeries::frame_total(std::size_t frame) const {
  DV_REQUIRE(frame < frames(), "frame out of range");
  return kernels::sum_span(data_.data() + frame * entities_, entities_);
}

double SampledSeries::range_sum(std::size_t entity, std::size_t f0,
                                std::size_t f1) const {
  DV_REQUIRE(entity < entities_, "entity out of range");
  DV_REQUIRE(f0 <= f1 && f1 <= frames(), "bad frame range");
  return kernels::strided_sum(data_.data(), entities_, entity, f0, f1);
}

std::size_t SampledSeries::frame_of(SimTime t) const {
  if (dt_ <= 0.0 || frames() == 0) return 0;
  if (t <= 0.0) return 0;
  const auto f = static_cast<std::size_t>(t / dt_);
  return f >= frames() ? frames() - 1 : f;
}

// ------------------------------------------------------------ PrefixSeries

PrefixSeries::PrefixSeries(const SampledSeries& s)
    : entities_(s.entities()), dt_(s.dt()) {
  const std::size_t frames = s.frames();
  if (entities_ == 0) return;
  prefix_.assign((frames + 1) * entities_, 0.0);
  // P[f+1][e] = P[f][e] + frame f — the same sequential accumulation
  // SampledSeries::range_sum(e, 0, f) performs, so prefix deltas starting
  // at frame 0 reproduce it bit for bit. Lanes (entities) are independent,
  // so the SIMD frame pass is bit-identical to the scalar loop.
  const float* raw = s.data();
  for (std::size_t f = 0; f < frames; ++f) {
    kernels::prefix_add_frame(raw + f * entities_, &prefix_[f * entities_],
                              &prefix_[(f + 1) * entities_], entities_);
  }
}

double PrefixSeries::range_sum(std::size_t entity, std::size_t f0,
                               std::size_t f1) const {
  DV_REQUIRE(entity < entities_, "entity out of range");
  DV_REQUIRE(f0 <= f1 && f1 <= frames(), "bad frame range");
  return prefix_[f1 * entities_ + entity] - prefix_[f0 * entities_ + entity];
}

std::pair<std::size_t, std::size_t> PrefixSeries::frame_range(
    double t0, double t1) const {
  const std::size_t n = frames();
  if (dt_ <= 0.0 || n == 0) return {0, 0};
  const std::size_t f0 = static_cast<std::size_t>(std::max(0.0, t0 / dt_));
  std::size_t f1 = t1 >= static_cast<double>(n) * dt_
                       ? n
                       : static_cast<std::size_t>(std::max(0.0, t1 / dt_));
  f1 = std::min(f1, n);
  return {std::min(f0, f1), f1};
}

// ------------------------------------------------------------ RunMetrics

std::vector<RouterMetrics> RunMetrics::derive_routers() const {
  const std::uint32_t a = routers_per_group;
  const std::uint32_t n_routers = groups * a;
  std::vector<RouterMetrics> out(n_routers);
  for (std::uint32_t r = 0; r < n_routers; ++r) {
    out[r].router = r;
    out[r].group = r / a;
    out[r].rank = r % a;
  }
  for (const auto& l : local_links) {
    out[l.src_router].local_traffic += l.traffic;
    out[l.src_router].local_sat_time += l.sat_time;
  }
  for (const auto& l : global_links) {
    out[l.src_router].global_traffic += l.traffic;
    out[l.src_router].global_sat_time += l.sat_time;
  }
  for (std::uint32_t r = 0; r < n_routers; ++r) {
    if (r < router_downtime.size()) out[r].downtime = router_downtime[r];
    if (r < router_retries.size()) out[r].retries = router_retries[r];
    if (r < router_drops.size()) out[r].pkts_dropped = router_drops[r];
  }
  return out;
}

double RunMetrics::total_local_traffic() const {
  double s = 0.0;
  for (const auto& l : local_links) s += l.traffic;
  return s;
}

double RunMetrics::total_global_traffic() const {
  double s = 0.0;
  for (const auto& l : global_links) s += l.traffic;
  return s;
}

double RunMetrics::total_terminal_traffic() const {
  double s = 0.0;
  for (const auto& t : terminals) s += t.data_size;
  return s;
}

double RunMetrics::total_injected() const { return total_terminal_traffic(); }

std::uint64_t RunMetrics::total_packets_finished() const {
  std::uint64_t s = 0;
  for (const auto& t : terminals) s += t.packets_finished;
  return s;
}

namespace {

json::Value links_to_json(const std::vector<LinkMetrics>& links) {
  json::Array arr;
  arr.reserve(links.size());
  for (const auto& l : links) {
    json::Array row;
    row.emplace_back(l.src_router);
    row.emplace_back(l.src_port);
    row.emplace_back(l.dst_router);
    row.emplace_back(l.dst_port);
    row.emplace_back(l.traffic);
    row.emplace_back(l.sat_time);
    row.emplace_back(l.downtime);
    row.emplace_back(l.retries);
    row.emplace_back(l.pkts_dropped);
    arr.emplace_back(std::move(row));
  }
  return json::Value(std::move(arr));
}

std::vector<LinkMetrics> links_from_json(const json::Value& v) {
  std::vector<LinkMetrics> out;
  for (const auto& rowv : v.as_array()) {
    const auto& row = rowv.as_array();
    // 6-column rows predate fault injection; accept both layouts.
    DV_REQUIRE(row.size() == 6 || row.size() == 9, "bad link row");
    LinkMetrics l;
    l.src_router = static_cast<std::uint32_t>(row[0].as_int());
    l.src_port = static_cast<std::uint32_t>(row[1].as_int());
    l.dst_router = static_cast<std::uint32_t>(row[2].as_int());
    l.dst_port = static_cast<std::uint32_t>(row[3].as_int());
    l.traffic = row[4].as_number();
    l.sat_time = row[5].as_number();
    if (row.size() == 9) {
      l.downtime = row[6].as_number();
      l.retries = static_cast<std::uint64_t>(row[7].as_int());
      l.pkts_dropped = static_cast<std::uint64_t>(row[8].as_int());
    }
    out.push_back(l);
  }
  return out;
}

json::Value series_to_json(const SampledSeries& s) {
  json::Object o;
  o["entities"] = json::Value(s.entities());
  o["dt"] = json::Value(s.dt());
  json::Array frames;
  for (std::size_t f = 0; f < s.frames(); ++f) {
    json::Array frame;
    frame.reserve(s.entities());
    for (std::size_t e = 0; e < s.entities(); ++e) {
      frame.emplace_back(static_cast<double>(s.at(f, e)));
    }
    frames.emplace_back(std::move(frame));
  }
  o["frames"] = json::Value(std::move(frames));
  return json::Value(std::move(o));
}

SampledSeries series_from_json(const json::Value& v) {
  const auto n = static_cast<std::size_t>(v.at("entities").as_int());
  SampledSeries s(n, v.at("dt").as_number());
  for (const auto& framev : v.at("frames").as_array()) {
    const auto& frame = framev.as_array();
    DV_REQUIRE(frame.size() == n, "bad series frame width");
    std::vector<float> deltas(n);
    for (std::size_t e = 0; e < n; ++e) {
      deltas[e] = static_cast<float>(frame[e].as_number());
    }
    s.push_frame(deltas);
  }
  return s;
}

}  // namespace

json::Value RunMetrics::to_json() const {
  json::Object o;
  o["groups"] = json::Value(groups);
  o["routers_per_group"] = json::Value(routers_per_group);
  o["terminals_per_router"] = json::Value(terminals_per_router);
  o["global_per_router"] = json::Value(global_per_router);
  o["workload"] = json::Value(workload);
  o["routing"] = json::Value(routing);
  o["placement"] = json::Value(placement);
  o["seed"] = json::Value(static_cast<double>(seed));
  o["end_time"] = json::Value(end_time);
  {
    json::Array names;
    for (const auto& n : job_names) names.emplace_back(n);
    o["job_names"] = json::Value(std::move(names));
  }
  o["local_links"] = links_to_json(local_links);
  o["global_links"] = links_to_json(global_links);
  {
    json::Array arr;
    arr.reserve(terminals.size());
    for (const auto& t : terminals) {
      json::Array row;
      row.emplace_back(t.router);
      row.emplace_back(t.port);
      row.emplace_back(t.data_size);
      row.emplace_back(t.sat_time);
      row.emplace_back(t.packets_finished);
      row.emplace_back(t.sum_latency);
      row.emplace_back(t.sum_hops);
      row.emplace_back(static_cast<double>(t.job));
      row.emplace_back(t.packets_rerouted);
      row.emplace_back(t.packets_dropped);
      row.emplace_back(t.downtime);
      arr.emplace_back(std::move(row));
    }
    o["terminals"] = json::Value(std::move(arr));
  }
  if (!router_downtime.empty() || !router_retries.empty() ||
      !router_drops.empty()) {
    auto dump_doubles = [](const std::vector<double>& vs) {
      json::Array a;
      a.reserve(vs.size());
      for (double d : vs) a.emplace_back(d);
      return json::Value(std::move(a));
    };
    auto dump_counts = [](const std::vector<std::uint64_t>& vs) {
      json::Array a;
      a.reserve(vs.size());
      for (std::uint64_t c : vs) a.emplace_back(c);
      return json::Value(std::move(a));
    };
    o["router_downtime"] = dump_doubles(router_downtime);
    o["router_retries"] = dump_counts(router_retries);
    o["router_drops"] = dump_counts(router_drops);
  }
  o["sample_dt"] = json::Value(sample_dt);
  if (has_time_series()) {
    o["local_traffic_ts"] = series_to_json(local_traffic_ts);
    o["local_sat_ts"] = series_to_json(local_sat_ts);
    o["global_traffic_ts"] = series_to_json(global_traffic_ts);
    o["global_sat_ts"] = series_to_json(global_sat_ts);
    o["term_traffic_ts"] = series_to_json(term_traffic_ts);
    o["term_sat_ts"] = series_to_json(term_sat_ts);
  }
  return json::Value(std::move(o));
}

RunMetrics RunMetrics::from_json(const json::Value& v) {
  RunMetrics m;
  m.groups = static_cast<std::uint32_t>(v.at("groups").as_int());
  m.routers_per_group =
      static_cast<std::uint32_t>(v.at("routers_per_group").as_int());
  m.terminals_per_router =
      static_cast<std::uint32_t>(v.at("terminals_per_router").as_int());
  m.global_per_router =
      static_cast<std::uint32_t>(v.at("global_per_router").as_int());
  m.workload = v.get_string("workload", "");
  m.routing = v.get_string("routing", "");
  m.placement = v.get_string("placement", "");
  m.seed = static_cast<std::uint64_t>(v.get_number("seed", 0));
  m.end_time = v.get_number("end_time", 0.0);
  if (const auto* names = v.find("job_names")) {
    for (const auto& n : names->as_array()) m.job_names.push_back(n.as_string());
  }
  m.local_links = links_from_json(v.at("local_links"));
  m.global_links = links_from_json(v.at("global_links"));
  for (const auto& rowv : v.at("terminals").as_array()) {
    const auto& row = rowv.as_array();
    // 8-column rows predate fault injection; accept both layouts.
    DV_REQUIRE(row.size() == 8 || row.size() == 11, "bad terminal row");
    TerminalMetrics t;
    t.router = static_cast<std::uint32_t>(row[0].as_int());
    t.port = static_cast<std::uint32_t>(row[1].as_int());
    t.data_size = row[2].as_number();
    t.sat_time = row[3].as_number();
    t.packets_finished = static_cast<std::uint64_t>(row[4].as_int());
    t.sum_latency = row[5].as_number();
    t.sum_hops = row[6].as_number();
    t.job = static_cast<std::int32_t>(row[7].as_int());
    if (row.size() == 11) {
      t.packets_rerouted = static_cast<std::uint64_t>(row[8].as_int());
      t.packets_dropped = static_cast<std::uint64_t>(row[9].as_int());
      t.downtime = row[10].as_number();
    }
    m.terminals.push_back(t);
  }
  if (const auto* rd = v.find("router_downtime")) {
    for (const auto& d : rd->as_array()) {
      m.router_downtime.push_back(d.as_number());
    }
  }
  if (const auto* rr = v.find("router_retries")) {
    for (const auto& c : rr->as_array()) {
      m.router_retries.push_back(static_cast<std::uint64_t>(c.as_int()));
    }
  }
  if (const auto* rd = v.find("router_drops")) {
    for (const auto& c : rd->as_array()) {
      m.router_drops.push_back(static_cast<std::uint64_t>(c.as_int()));
    }
  }
  m.sample_dt = v.get_number("sample_dt", 0.0);
  if (m.sample_dt > 0.0) {
    m.local_traffic_ts = series_from_json(v.at("local_traffic_ts"));
    m.local_sat_ts = series_from_json(v.at("local_sat_ts"));
    m.global_traffic_ts = series_from_json(v.at("global_traffic_ts"));
    m.global_sat_ts = series_from_json(v.at("global_sat_ts"));
    m.term_traffic_ts = series_from_json(v.at("term_traffic_ts"));
    m.term_sat_ts = series_from_json(v.at("term_sat_ts"));
  }
  return m;
}

void RunMetrics::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open for writing: " + path);
  os << json::dump(to_json());
  DV_REQUIRE(os.good(), "write failed: " + path);
}

RunMetrics RunMetrics::load(const std::string& path) {
  // Packed runs dispatch on the on-disk magic, not the extension, so a
  // .dvr renamed to .json still loads.
  if (is_dvr_file(path)) return load_dvr(path);
  std::ifstream is(path, std::ios::binary);
  DV_REQUIRE(is.good(), "cannot open for reading: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  std::string text = buf.str();
  // Tolerate a UTF-8 BOM and trailing whitespace/CRLF noise from editors
  // or transfer tools; the parser handles interior \r as whitespace.
  if (text.size() >= 3 && text.compare(0, 3, "\xEF\xBB\xBF") == 0) {
    text.erase(0, 3);
  }
  while (!text.empty() &&
         (text.back() == '\n' || text.back() == '\r' ||
          text.back() == ' ' || text.back() == '\t')) {
    text.pop_back();
  }
  try {
    return from_json(json::parse(text));
  } catch (const Error& e) {
    // The parser reports line/column; prepend which file was at fault so a
    // failed sweep names the offending run instead of a bare position.
    throw Error(path + ": " + e.what());
  }
}

CsvTable RunMetrics::to_csv(const std::string& entity_class) const {
  CsvTable t;
  auto num = [](double v) { return fmt_double(v, 3); };
  if (entity_class == "local_links" || entity_class == "global_links") {
    const auto& links =
        entity_class == "local_links" ? local_links : global_links;
    t.header = {"src_router", "src_port", "dst_router",
                "dst_port",   "traffic",  "sat_time",
                "downtime",   "retries",  "pkts_dropped"};
    for (const auto& l : links) {
      t.rows.push_back({std::to_string(l.src_router), std::to_string(l.src_port),
                        std::to_string(l.dst_router), std::to_string(l.dst_port),
                        num(l.traffic), num(l.sat_time), num(l.downtime),
                        std::to_string(l.retries),
                        std::to_string(l.pkts_dropped)});
    }
    return t;
  }
  if (entity_class == "terminals") {
    t.header = {"router",      "port",     "data_size",    "sat_time",
                "packets",     "avg_latency", "avg_hops",  "job",
                "pkts_rerouted", "pkts_dropped", "downtime"};
    for (const auto& term : terminals) {
      t.rows.push_back({std::to_string(term.router), std::to_string(term.port),
                        num(term.data_size), num(term.sat_time),
                        std::to_string(term.packets_finished),
                        num(term.avg_latency()), num(term.avg_hops()),
                        std::to_string(term.job),
                        std::to_string(term.packets_rerouted),
                        std::to_string(term.packets_dropped),
                        num(term.downtime)});
    }
    return t;
  }
  if (entity_class == "routers") {
    t.header = {"router",        "group",          "rank",
                "global_traffic", "global_sat_time", "local_traffic",
                "local_sat_time", "downtime",       "retries",
                "pkts_dropped"};
    for (const auto& r : derive_routers()) {
      t.rows.push_back({std::to_string(r.router), std::to_string(r.group),
                        std::to_string(r.rank), num(r.global_traffic),
                        num(r.global_sat_time), num(r.local_traffic),
                        num(r.local_sat_time), num(r.downtime),
                        std::to_string(r.retries),
                        std::to_string(r.pkts_dropped)});
    }
    return t;
  }
  throw Error("unknown entity class for csv export: " + entity_class);
}

}  // namespace dv::metrics
