// Dragonfly topology (Kim, Dally, Scott, Abts 2008) — the network studied
// in the paper.
//
// A Dragonfly has `g` groups; each group has `a` routers fully connected by
// local links; each router has `p` terminals and `h` global channels to
// other groups. The canonical balanced configuration is a = 2p = 2h and
// g = a*h + 1, in which the inter-group graph is a complete graph with
// exactly one global link between every pair of groups.
//
// The paper's three network scales are exactly the canonical Dragonflies
// with p = 5, 6, 7: 2,550 / 5,256 / 9,702 terminals.
//
// Identifier scheme (used across netsim, metrics and the VA layer):
//   router id   r  = group * a + rank               (rank in [0, a))
//   terminal id t  = r * p + slot                   (slot in [0, p))
//   router ports   [0, p)            terminal ports
//                  [p, p + a-1)      local ports
//                  [p + a-1, p+a-1+h) global ports
//   local link id  (directed)  = r * (a-1) + local_port_index
//   global link id (directed)  = r * h + channel
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace dv::topo {

/// Endpoint of a global channel: a (router, channel slot) pair.
struct GlobalEnd {
  std::uint32_t router = 0;
  std::uint32_t channel = 0;
  bool operator==(const GlobalEnd&) const = default;
};

class Dragonfly {
 public:
  /// General configuration. Requires the inter-group graph to be feasible:
  /// a*h >= g-1 and (for the one-link-per-group-pair arrangement used
  /// here) a*h == g-1 when g > 1.
  Dragonfly(std::uint32_t groups, std::uint32_t routers_per_group,
            std::uint32_t terminals_per_router,
            std::uint32_t global_per_router);

  /// Canonical balanced Dragonfly: a=2p, h=p, g=a*h+1.
  static Dragonfly canonical(std::uint32_t p);

  // ---- sizes -------------------------------------------------------
  std::uint32_t groups() const { return g_; }
  std::uint32_t routers_per_group() const { return a_; }
  std::uint32_t terminals_per_router() const { return p_; }
  std::uint32_t global_per_router() const { return h_; }
  std::uint32_t num_routers() const { return g_ * a_; }
  std::uint32_t num_terminals() const { return num_routers() * p_; }
  /// Directed counts: each physical cable is two directed links.
  std::uint32_t num_local_links() const { return num_routers() * (a_ - 1); }
  std::uint32_t num_global_links() const { return num_routers() * h_; }
  std::uint32_t ports_per_router() const { return p_ + (a_ - 1) + h_; }

  // ---- id decomposition -------------------------------------------
  std::uint32_t router_group(std::uint32_t router) const { return router / a_; }
  std::uint32_t router_rank(std::uint32_t router) const { return router % a_; }
  std::uint32_t router_id(std::uint32_t group, std::uint32_t rank) const;
  std::uint32_t terminal_router(std::uint32_t term) const { return term / p_; }
  std::uint32_t terminal_slot(std::uint32_t term) const { return term % p_; }
  std::uint32_t terminal_id(std::uint32_t router, std::uint32_t slot) const;
  std::uint32_t terminal_group(std::uint32_t term) const {
    return router_group(terminal_router(term));
  }

  // ---- ports -------------------------------------------------------
  std::uint32_t terminal_port(std::uint32_t slot) const { return slot; }
  /// Local port on `from_rank` leading to `to_rank` (ranks must differ).
  std::uint32_t local_port(std::uint32_t from_rank, std::uint32_t to_rank) const;
  /// Rank reached through local port index `lport` in [0, a-1).
  std::uint32_t local_neighbor(std::uint32_t from_rank, std::uint32_t lport) const;
  std::uint32_t global_port(std::uint32_t channel) const {
    return p_ + (a_ - 1) + channel;
  }

  // ---- link ids ----------------------------------------------------
  std::uint32_t local_link_id(std::uint32_t router, std::uint32_t lport) const;
  std::uint32_t global_link_id(std::uint32_t router, std::uint32_t channel) const;
  /// Inverse of local_link_id.
  std::pair<std::uint32_t, std::uint32_t> local_link_ends(std::uint32_t lid) const;
  /// Source router / channel of a global link id.
  GlobalEnd global_link_src(std::uint32_t gid) const;

  // ---- global wiring (absolute / consecutive arrangement) ----------
  /// Remote end of global channel `channel` on `router`.
  GlobalEnd global_neighbor(std::uint32_t router, std::uint32_t channel) const;
  /// The unique (router rank, channel) in `src_group` whose global link
  /// reaches `dst_group` (groups must differ).
  GlobalEnd group_exit(std::uint32_t src_group, std::uint32_t dst_group) const;

  /// Minimal hop count between two terminals (1 = same router, 2-3 within
  /// group, up to 5 across groups: src router, group exit, group entry,
  /// dst router). Counts router-to-router hops + 2 terminal hops? No —
  /// returns the number of routers on the minimal path, matching the
  /// "hops" metric reported by CODES (router visits).
  std::uint32_t minimal_router_hops(std::uint32_t src_term,
                                    std::uint32_t dst_term) const;

  std::string describe() const;

 private:
  std::uint32_t g_, a_, p_, h_;
};

}  // namespace dv::topo
