#include "topology/dragonfly.hpp"

#include <sstream>

namespace dv::topo {

Dragonfly::Dragonfly(std::uint32_t groups, std::uint32_t routers_per_group,
                     std::uint32_t terminals_per_router,
                     std::uint32_t global_per_router)
    : g_(groups), a_(routers_per_group), p_(terminals_per_router),
      h_(global_per_router) {
  DV_REQUIRE(g_ >= 1, "dragonfly needs at least one group");
  DV_REQUIRE(a_ >= 2, "dragonfly needs at least two routers per group");
  DV_REQUIRE(p_ >= 1, "dragonfly needs at least one terminal per router");
  if (g_ > 1) {
    // One-link-per-group-pair (absolute) arrangement: every group spends all
    // its a*h global channels reaching each other group exactly once.
    DV_REQUIRE(a_ * h_ == g_ - 1,
               "dragonfly requires a*h == g-1 for the absolute global-link "
               "arrangement");
  }
}

Dragonfly Dragonfly::canonical(std::uint32_t p) {
  DV_REQUIRE(p >= 1, "canonical dragonfly needs p >= 1");
  const std::uint32_t a = 2 * p;
  const std::uint32_t h = p;
  return Dragonfly(a * h + 1, a, p, h);
}

std::uint32_t Dragonfly::router_id(std::uint32_t group,
                                   std::uint32_t rank) const {
  DV_REQUIRE(group < g_ && rank < a_, "router_id out of range");
  return group * a_ + rank;
}

std::uint32_t Dragonfly::terminal_id(std::uint32_t router,
                                     std::uint32_t slot) const {
  DV_REQUIRE(router < num_routers() && slot < p_, "terminal_id out of range");
  return router * p_ + slot;
}

std::uint32_t Dragonfly::local_port(std::uint32_t from_rank,
                                    std::uint32_t to_rank) const {
  DV_REQUIRE(from_rank < a_ && to_rank < a_ && from_rank != to_rank,
             "invalid local port query");
  const std::uint32_t idx = to_rank < from_rank ? to_rank : to_rank - 1;
  return p_ + idx;
}

std::uint32_t Dragonfly::local_neighbor(std::uint32_t from_rank,
                                        std::uint32_t lport) const {
  DV_REQUIRE(from_rank < a_ && lport < a_ - 1, "invalid local neighbor query");
  return lport < from_rank ? lport : lport + 1;
}

std::uint32_t Dragonfly::local_link_id(std::uint32_t router,
                                       std::uint32_t lport) const {
  DV_REQUIRE(router < num_routers() && lport < a_ - 1,
             "local_link_id out of range");
  return router * (a_ - 1) + lport;
}

std::uint32_t Dragonfly::global_link_id(std::uint32_t router,
                                        std::uint32_t channel) const {
  DV_REQUIRE(router < num_routers() && channel < h_,
             "global_link_id out of range");
  return router * h_ + channel;
}

std::pair<std::uint32_t, std::uint32_t> Dragonfly::local_link_ends(
    std::uint32_t lid) const {
  DV_REQUIRE(lid < num_local_links(), "local link id out of range");
  return {lid / (a_ - 1), lid % (a_ - 1)};
}

GlobalEnd Dragonfly::global_link_src(std::uint32_t gid) const {
  DV_REQUIRE(gid < num_global_links(), "global link id out of range");
  return {gid / h_, gid % h_};
}

GlobalEnd Dragonfly::global_neighbor(std::uint32_t router,
                                     std::uint32_t channel) const {
  DV_REQUIRE(router < num_routers() && channel < h_,
             "global_neighbor out of range");
  DV_REQUIRE(g_ > 1, "single-group dragonfly has no global links");
  const std::uint32_t grp = router_group(router);
  const std::uint32_t rank = router_rank(router);
  // Slot of this channel within the group's g-1 outgoing global links.
  const std::uint32_t slot = rank * h_ + channel;
  const std::uint32_t dst_group = slot < grp ? slot : slot + 1;
  // On the destination side, the link back to `grp` occupies slot grp
  // (shifted down past dst_group itself).
  const std::uint32_t back_slot = grp < dst_group ? grp : grp - 1;
  return {router_id(dst_group, back_slot / h_), back_slot % h_};
}

GlobalEnd Dragonfly::group_exit(std::uint32_t src_group,
                                std::uint32_t dst_group) const {
  DV_REQUIRE(src_group < g_ && dst_group < g_ && src_group != dst_group,
             "invalid group_exit query");
  const std::uint32_t slot = dst_group < src_group ? dst_group : dst_group - 1;
  return {router_id(src_group, slot / h_), slot % h_};
}

std::uint32_t Dragonfly::minimal_router_hops(std::uint32_t src_term,
                                             std::uint32_t dst_term) const {
  DV_REQUIRE(src_term < num_terminals() && dst_term < num_terminals(),
             "terminal id out of range");
  const std::uint32_t sr = terminal_router(src_term);
  const std::uint32_t dr = terminal_router(dst_term);
  if (sr == dr) return 1;
  const std::uint32_t sg = router_group(sr);
  const std::uint32_t dg = router_group(dr);
  if (sg == dg) return 2;
  const GlobalEnd exit = group_exit(sg, dg);
  const GlobalEnd entry = global_neighbor(exit.router, exit.channel);
  std::uint32_t hops = 1;                    // src router
  if (exit.router != sr) ++hops;             // group exit router
  ++hops;                                    // group entry router
  if (entry.router != dr) ++hops;            // dst router
  return hops;
}

std::string Dragonfly::describe() const {
  std::ostringstream os;
  os << "dragonfly(g=" << g_ << ", a=" << a_ << ", p=" << p_ << ", h=" << h_
     << "; routers=" << num_routers() << ", terminals=" << num_terminals()
     << ")";
  return os.str();
}

}  // namespace dv::topo
