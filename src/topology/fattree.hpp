// Three-level k-ary Fat Tree (Al-Fares, Loukissas, Vahdat 2008).
//
// Listed by the paper as a future-work target topology for the VA system;
// provided here so the entity-tree/aggregation layer has a second topology
// to exercise. k must be even: k pods, each with k/2 edge and k/2
// aggregation switches, (k/2)^2 core switches, and k^3/4 hosts.
#pragma once

#include <cstdint>
#include <string>

#include "util/common.hpp"

namespace dv::topo {

class FatTree {
 public:
  explicit FatTree(std::uint32_t k);

  std::uint32_t k() const { return k_; }
  std::uint32_t pods() const { return k_; }
  std::uint32_t edge_per_pod() const { return k_ / 2; }
  std::uint32_t agg_per_pod() const { return k_ / 2; }
  std::uint32_t num_core() const { return (k_ / 2) * (k_ / 2); }
  std::uint32_t num_edge() const { return k_ * (k_ / 2); }
  std::uint32_t num_agg() const { return k_ * (k_ / 2); }
  std::uint32_t num_switches() const {
    return num_core() + num_edge() + num_agg();
  }
  std::uint32_t hosts_per_edge() const { return k_ / 2; }
  std::uint32_t num_hosts() const { return k_ * k_ * k_ / 4; }

  // Host / switch id decomposition.
  std::uint32_t host_pod(std::uint32_t host) const;
  std::uint32_t host_edge(std::uint32_t host) const;  // global edge index
  std::uint32_t edge_id(std::uint32_t pod, std::uint32_t idx) const;
  std::uint32_t agg_id(std::uint32_t pod, std::uint32_t idx) const;

  /// Core switch reached by up-port `up` of aggregation switch (pod, j).
  std::uint32_t core_above(std::uint32_t agg_idx, std::uint32_t up) const;

  /// Number of switches on the minimal path between two hosts
  /// (1 same edge, 3 same pod, 5 across pods).
  std::uint32_t minimal_switch_hops(std::uint32_t src, std::uint32_t dst) const;

  std::string describe() const;

 private:
  std::uint32_t k_;
};

}  // namespace dv::topo
