#include "topology/fattree.hpp"

#include <sstream>

namespace dv::topo {

FatTree::FatTree(std::uint32_t k) : k_(k) {
  DV_REQUIRE(k >= 2 && k % 2 == 0, "fat tree arity k must be even and >= 2");
}

std::uint32_t FatTree::host_pod(std::uint32_t host) const {
  DV_REQUIRE(host < num_hosts(), "host id out of range");
  return host / (k_ * k_ / 4);
}

std::uint32_t FatTree::host_edge(std::uint32_t host) const {
  DV_REQUIRE(host < num_hosts(), "host id out of range");
  return host / hosts_per_edge();
}

std::uint32_t FatTree::edge_id(std::uint32_t pod, std::uint32_t idx) const {
  DV_REQUIRE(pod < pods() && idx < edge_per_pod(), "edge id out of range");
  return pod * edge_per_pod() + idx;
}

std::uint32_t FatTree::agg_id(std::uint32_t pod, std::uint32_t idx) const {
  DV_REQUIRE(pod < pods() && idx < agg_per_pod(), "agg id out of range");
  return pod * agg_per_pod() + idx;
}

std::uint32_t FatTree::core_above(std::uint32_t agg_idx,
                                  std::uint32_t up) const {
  DV_REQUIRE(agg_idx < num_agg() && up < k_ / 2, "core_above out of range");
  const std::uint32_t j = agg_idx % agg_per_pod();
  return j * (k_ / 2) + up;
}

std::uint32_t FatTree::minimal_switch_hops(std::uint32_t src,
                                           std::uint32_t dst) const {
  DV_REQUIRE(src < num_hosts() && dst < num_hosts(), "host id out of range");
  if (host_edge(src) == host_edge(dst)) return 1;
  if (host_pod(src) == host_pod(dst)) return 3;
  return 5;
}

std::string FatTree::describe() const {
  std::ostringstream os;
  os << "fattree(k=" << k_ << "; switches=" << num_switches()
     << ", hosts=" << num_hosts() << ")";
  return os.str();
}

}  // namespace dv::topo
