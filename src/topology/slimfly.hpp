// Slim Fly (Besta, Hoefler 2014) — MMS-graph diameter-2 topology.
//
// Listed by the paper as a future-work target. Implemented for prime
// q ≡ 1 (mod 4) using the McKay–Miller–Širáň construction: two router
// subgraphs of q×q routers each; routers (0,x,y) and (1,m,c) with x,y,m,c
// in GF(q). Intra-subgraph edges follow generator sets X (quadratic
// residues) and X' (non-residues); cross edges satisfy y = m*x + c.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace dv::topo {

class SlimFly {
 public:
  /// q must be a prime with q % 4 == 1 (so the generator sets are closed
  /// under negation and the graph is undirected).
  explicit SlimFly(std::uint32_t q);

  std::uint32_t q() const { return q_; }
  std::uint32_t num_routers() const { return 2 * q_ * q_; }
  /// Network (router-to-router) degree: |X| + q = (3q - 1) / 2.
  std::uint32_t network_degree() const { return (3 * q_ - 1) / 2; }

  /// Router id for (subgraph s in {0,1}, x, y).
  std::uint32_t router_id(std::uint32_t s, std::uint32_t x,
                          std::uint32_t y) const;
  std::uint32_t router_subgraph(std::uint32_t r) const;
  std::uint32_t router_x(std::uint32_t r) const;
  std::uint32_t router_y(std::uint32_t r) const;

  bool connected(std::uint32_t r1, std::uint32_t r2) const;
  std::vector<std::uint32_t> neighbors(std::uint32_t r) const;

  /// Generator sets (exposed for tests).
  const std::vector<std::uint32_t>& gen_x() const { return gen_x_; }
  const std::vector<std::uint32_t>& gen_xp() const { return gen_xp_; }

  std::string describe() const;

 private:
  std::uint32_t q_;
  std::vector<std::uint32_t> gen_x_;   // quadratic residues (even powers)
  std::vector<std::uint32_t> gen_xp_;  // non-residues (odd powers)
  std::vector<bool> in_x_, in_xp_;
};

}  // namespace dv::topo
