#include "topology/slimfly.hpp"

#include <sstream>

namespace dv::topo {

namespace {

bool is_prime(std::uint32_t n) {
  if (n < 2) return false;
  for (std::uint32_t d = 2; d * d <= n; ++d) {
    if (n % d == 0) return false;
  }
  return true;
}

std::uint32_t primitive_root(std::uint32_t q) {
  // Brute force: order of g must be q-1.
  for (std::uint32_t g = 2; g < q; ++g) {
    std::uint32_t v = 1;
    std::uint32_t order = 0;
    do {
      v = (v * g) % q;
      ++order;
    } while (v != 1);
    if (order == q - 1) return g;
  }
  throw Error("no primitive root found (q not prime?)");
}

}  // namespace

SlimFly::SlimFly(std::uint32_t q) : q_(q) {
  DV_REQUIRE(is_prime(q), "slim fly q must be prime");
  DV_REQUIRE(q % 4 == 1, "slim fly construction here requires q = 1 mod 4");
  const std::uint32_t xi = primitive_root(q);
  // Even powers of the primitive root -> quadratic residues (set X);
  // odd powers -> non-residues (set X'). For q = 1 mod 4, -1 is a residue,
  // so both sets are symmetric and define undirected Cayley graphs.
  in_x_.assign(q, false);
  in_xp_.assign(q, false);
  std::uint32_t v = 1;
  for (std::uint32_t e = 0; e < q - 1; ++e) {
    if (e % 2 == 0) {
      if (!in_x_[v]) {
        in_x_[v] = true;
        gen_x_.push_back(v);
      }
    } else {
      if (!in_xp_[v]) {
        in_xp_[v] = true;
        gen_xp_.push_back(v);
      }
    }
    v = (v * xi) % q;
  }
}

std::uint32_t SlimFly::router_id(std::uint32_t s, std::uint32_t x,
                                 std::uint32_t y) const {
  DV_REQUIRE(s < 2 && x < q_ && y < q_, "slim fly coordinates out of range");
  return s * q_ * q_ + x * q_ + y;
}

std::uint32_t SlimFly::router_subgraph(std::uint32_t r) const {
  DV_REQUIRE(r < num_routers(), "router id out of range");
  return r / (q_ * q_);
}

std::uint32_t SlimFly::router_x(std::uint32_t r) const {
  DV_REQUIRE(r < num_routers(), "router id out of range");
  return (r % (q_ * q_)) / q_;
}

std::uint32_t SlimFly::router_y(std::uint32_t r) const {
  DV_REQUIRE(r < num_routers(), "router id out of range");
  return r % q_;
}

bool SlimFly::connected(std::uint32_t r1, std::uint32_t r2) const {
  if (r1 == r2) return false;
  const std::uint32_t s1 = router_subgraph(r1), s2 = router_subgraph(r2);
  const std::uint32_t x1 = router_x(r1), y1 = router_y(r1);
  const std::uint32_t x2 = router_x(r2), y2 = router_y(r2);
  if (s1 == s2) {
    if (x1 != x2) return false;
    const std::uint32_t diff = (y1 + q_ - y2) % q_;
    return s1 == 0 ? in_x_[diff] : in_xp_[diff];
  }
  // Cross edge (0,x,y) ~ (1,m,c) iff y = m*x + c (mod q).
  const std::uint32_t x = s1 == 0 ? x1 : x2;
  const std::uint32_t y = s1 == 0 ? y1 : y2;
  const std::uint32_t m = s1 == 0 ? x2 : x1;
  const std::uint32_t c = s1 == 0 ? y2 : y1;
  return y == (m * x + c) % q_;
}

std::vector<std::uint32_t> SlimFly::neighbors(std::uint32_t r) const {
  const std::uint32_t s = router_subgraph(r);
  const std::uint32_t x = router_x(r), y = router_y(r);
  std::vector<std::uint32_t> out;
  out.reserve(network_degree());
  const auto& gens = s == 0 ? gen_x_ : gen_xp_;
  for (std::uint32_t gval : gens) {
    out.push_back(router_id(s, x, (y + gval) % q_));
  }
  if (s == 0) {
    // (0,x,y) ~ (1,m,c) with c = y - m*x.
    for (std::uint32_t m = 0; m < q_; ++m) {
      const std::uint32_t c = (y + q_ - (m * x) % q_) % q_;
      out.push_back(router_id(1, m, c));
    }
  } else {
    // (1,m,c) ~ (0,x,y) with y = m*x + c.
    for (std::uint32_t xx = 0; xx < q_; ++xx) {
      out.push_back(router_id(0, xx, (x * xx + y) % q_));
    }
  }
  return out;
}

std::string SlimFly::describe() const {
  std::ostringstream os;
  os << "slimfly(q=" << q_ << "; routers=" << num_routers()
     << ", degree=" << network_degree() << ")";
  return os.str();
}

}  // namespace dv::topo
