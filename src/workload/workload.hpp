// Workload generators.
//
// The paper drives its case studies with two synthetic traffic patterns
// (nearest neighbour, uniform random) and DUMPI communication traces of
// three DOE Design Forward applications (Table I):
//
//   AMG        1728 ranks  1.2 GB   3-D nearest-neighbour halo exchange
//   AMR Boxlib 1728 ranks  2.2 GB   irregular and sparse
//   MiniFE     1152 ranks  147 GB   many-to-many
//
// We do not have the proprietary traces, so each application is replaced by
// a synthetic generator reproducing its *communication structure* (matrix
// shape, load concentration, temporal phases — see DESIGN.md):
//   - AMG: 12x12x12 rank grid, 6-point halo exchange, three traffic bursts
//     (the paper's Fig. 12 shows bursts at the start, middle and end).
//   - AMR Boxlib: power-law (Zipf) load concentrated in the lowest ranks —
//     the paper observes the first two groups generating >60 % of
//     inter-group traffic — over a sparse irregular neighbour set.
//   - MiniFE: 2-D row/column process-grid exchange plus allreduce-style
//     butterfly phases repeated over CG iterations (many-to-many).
//
// Generators emit rank-level messages; map_to_terminals() applies a job
// placement to turn them into terminal-level netsim messages.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/network.hpp"
#include "placement/placement.hpp"

namespace dv::workload {

/// A rank-level message (independent of placement).
struct RankMsg {
  std::uint32_t src_rank = 0;
  std::uint32_t dst_rank = 0;
  std::uint64_t bytes = 0;
  double time = 0.0;  // ns

  bool operator==(const RankMsg&) const = default;
};

/// Table I of the paper.
struct AppInfo {
  std::string name;
  std::uint32_t ranks;
  double paper_bytes;     ///< data volume reported in the paper
  double scaled_bytes;    ///< default volume simulated here (see DESIGN.md)
  std::string pattern;
};
std::vector<AppInfo> paper_applications();
const AppInfo& app_info(const std::string& name);  // throws on unknown

/// Generator configuration.
struct Config {
  std::uint32_t ranks = 0;
  std::uint64_t total_bytes = 0;   ///< across all ranks
  double window = 1.0e6;           ///< injection window (ns)
  std::uint64_t seed = 1;
  std::uint32_t msg_bytes = 16 * 1024;  ///< nominal message granularity
  /// nearest_neighbor only: rank r sends to r + stride. Stride 1 is a ring
  /// over terminals; stride = terminals-per-router targets the same slot
  /// on the next router, so all flows of a router share one link (the
  /// congestion-forming variant used for Fig. 7).
  std::uint32_t neighbor_stride = 1;
};

// ---- synthetic patterns (Sec. V-A) -----------------------------------
std::vector<RankMsg> generate_uniform_random(const Config& cfg);
std::vector<RankMsg> generate_nearest_neighbor(const Config& cfg);

// ---- extension patterns ----------------------------------------------
std::vector<RankMsg> generate_all_to_all(const Config& cfg);
std::vector<RankMsg> generate_permutation(const Config& cfg);
std::vector<RankMsg> generate_bisection(const Config& cfg);
/// Matrix-transpose exchange over the grid2(ranks) process grid:
/// rank (row, col) sends to rank (col, row). Diagonal ranks are local-only
/// and emit nothing. A classic adversarial pattern for minimal routing.
std::vector<RankMsg> generate_transpose(const Config& cfg);

// ---- application stand-ins (Table I) ----------------------------------
std::vector<RankMsg> generate_amg(const Config& cfg);
std::vector<RankMsg> generate_amr_boxlib(const Config& cfg);
std::vector<RankMsg> generate_minife(const Config& cfg);

/// Dispatch by name: "uniform_random", "nearest_neighbor", "all_to_all",
/// "permutation", "bisection", "transpose", "amg", "amr_boxlib", "minife".
std::vector<RankMsg> generate(const std::string& name, const Config& cfg);
std::vector<std::string> workload_names();

/// Aggregates rank messages into a dense ranks x ranks demand matrix
/// (bytes from src to dst at [src * ranks + dst]). The row/column sums are
/// what the solvers and the tests reason about.
std::vector<std::uint64_t> demand_matrix(const std::vector<RankMsg>& msgs,
                                         std::uint32_t ranks);

/// Applies a placement: rank r of job `job` runs on
/// placement.terminals[job][r]. Messages whose endpoints land on the same
/// terminal are dropped (they never enter the network). Ranks must fit the
/// placement.
std::vector<netsim::Message> map_to_terminals(
    const std::vector<RankMsg>& msgs, const placement::Placement& placement,
    std::size_t job);

/// Total bytes across a rank-message list.
std::uint64_t total_bytes(const std::vector<RankMsg>& msgs);

}  // namespace dv::workload
