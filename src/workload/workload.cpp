#include "workload/workload.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"
#include "util/str.hpp"

namespace dv::workload {

std::vector<AppInfo> paper_applications() {
  // Scaled volumes keep the ordering AMG < AMR << MiniFE while staying
  // simulable on one machine; ratios are compressed for MiniFE (see
  // DESIGN.md "Substitutions").
  return {
      {"amg", 1728, 1.2e9, 48e6, "3D nearest neighbor"},
      {"amr_boxlib", 1728, 2.2e9, 88e6, "Irregular and sparse"},
      {"minife", 1152, 147e9, 735e6, "Many-to-many"},
  };
}

const AppInfo& app_info(const std::string& name) {
  static const std::vector<AppInfo> apps = paper_applications();
  for (const auto& a : apps) {
    if (a.name == name) return a;
  }
  throw Error("unknown application: " + name);
}

std::uint64_t total_bytes(const std::vector<RankMsg>& msgs) {
  std::uint64_t s = 0;
  for (const auto& m : msgs) s += m.bytes;
  return s;
}

namespace {

void check_config(const Config& cfg, std::uint32_t min_ranks = 2) {
  DV_REQUIRE(cfg.ranks >= min_ranks, "workload needs more ranks");
  DV_REQUIRE(cfg.total_bytes > 0, "workload volume must be positive");
  DV_REQUIRE(cfg.window > 0, "injection window must be positive");
  DV_REQUIRE(cfg.msg_bytes > 0, "message granularity must be positive");
}

/// A weighted flow; emit() converts flows to messages so each generator
/// only describes structure (who talks to whom, when, how much).
struct Flow {
  std::uint32_t src, dst;
  double weight;  ///< share of the total volume (unnormalized)
  double time;    ///< nominal start (ns)
};

std::vector<RankMsg> emit(const std::vector<Flow>& flows,
                          std::uint64_t total, double jitter, Rng& rng) {
  double wsum = 0.0;
  for (const auto& f : flows) wsum += f.weight;
  DV_REQUIRE(wsum > 0, "workload has no flows");
  std::vector<RankMsg> out;
  out.reserve(flows.size());
  for (const auto& f : flows) {
    const auto bytes = static_cast<std::uint64_t>(
        static_cast<double>(total) * f.weight / wsum);
    if (bytes == 0 || f.src == f.dst) continue;
    double t = f.time + (jitter > 0 ? rng.next_double() * jitter : 0.0);
    if (t < 0) t = 0;
    out.push_back(RankMsg{f.src, f.dst, bytes, t});
  }
  return out;
}

/// Factors n into (x, y, z) as close to a cube as possible.
std::array<std::uint32_t, 3> grid3(std::uint32_t n) {
  std::uint32_t best_x = 1, best_y = 1, best_z = n;
  double best_score = 1e300;
  for (std::uint32_t x = 1; x * x * x <= n; ++x) {
    if (n % x) continue;
    const std::uint32_t rest = n / x;
    for (std::uint32_t y = x; y * y <= rest; ++y) {
      if (rest % y) continue;
      const std::uint32_t z = rest / y;
      const double score = static_cast<double>(z) / x;  // aspect ratio
      if (score < best_score) {
        best_score = score;
        best_x = x;
        best_y = y;
        best_z = z;
      }
    }
  }
  return {best_x, best_y, best_z};
}

std::array<std::uint32_t, 2> grid2(std::uint32_t n) {
  std::uint32_t best_x = 1;
  for (std::uint32_t x = 1; x * x <= n; ++x) {
    if (n % x == 0) best_x = x;
  }
  return {best_x, n / best_x};
}

}  // namespace

// ------------------------------------------------------------- synthetic

std::vector<RankMsg> generate_uniform_random(const Config& cfg) {
  check_config(cfg);
  Rng rng(cfg.seed, 0x11f02aULL);
  const std::uint64_t per_rank = std::max<std::uint64_t>(
      1, cfg.total_bytes / cfg.ranks / cfg.msg_bytes);
  std::vector<Flow> flows;
  flows.reserve(cfg.ranks * per_rank);
  for (std::uint32_t r = 0; r < cfg.ranks; ++r) {
    for (std::uint64_t k = 0; k < per_rank; ++k) {
      std::uint32_t dst = r;
      while (dst == r) {
        dst = static_cast<std::uint32_t>(rng.next_below(cfg.ranks));
      }
      flows.push_back({r, dst, 1.0, rng.next_double() * cfg.window});
    }
  }
  return emit(flows, cfg.total_bytes, 0.0, rng);
}

std::vector<RankMsg> generate_nearest_neighbor(const Config& cfg) {
  check_config(cfg);
  DV_REQUIRE(cfg.neighbor_stride >= 1 && cfg.neighbor_stride < cfg.ranks,
             "neighbor stride out of range");
  Rng rng(cfg.seed, 0x2e14b0ULL);
  const std::uint64_t per_rank = std::max<std::uint64_t>(
      1, cfg.total_bytes / cfg.ranks / cfg.msg_bytes);
  std::vector<Flow> flows;
  flows.reserve(cfg.ranks * per_rank);
  for (std::uint32_t r = 0; r < cfg.ranks; ++r) {
    const std::uint32_t dst = (r + cfg.neighbor_stride) % cfg.ranks;
    for (std::uint64_t k = 0; k < per_rank; ++k) {
      flows.push_back({r, dst, 1.0, rng.next_double() * cfg.window});
    }
  }
  return emit(flows, cfg.total_bytes, 0.0, rng);
}

// ------------------------------------------------------------- extensions

std::vector<RankMsg> generate_all_to_all(const Config& cfg) {
  check_config(cfg);
  Rng rng(cfg.seed, 0xa77a11ULL);
  std::vector<Flow> flows;
  flows.reserve(static_cast<std::size_t>(cfg.ranks) * (cfg.ranks - 1));
  for (std::uint32_t r = 0; r < cfg.ranks; ++r) {
    for (std::uint32_t d = 0; d < cfg.ranks; ++d) {
      if (d == r) continue;
      // Ring-shifted schedule, as an MPI_Alltoall implementation would use.
      const double phase =
          static_cast<double>((d + cfg.ranks - r) % cfg.ranks) /
          static_cast<double>(cfg.ranks);
      flows.push_back({r, d, 1.0, phase * cfg.window});
    }
  }
  return emit(flows, cfg.total_bytes, cfg.window * 0.01, rng);
}

std::vector<RankMsg> generate_permutation(const Config& cfg) {
  check_config(cfg);
  Rng rng(cfg.seed, 0x9e2174ULL);
  std::vector<std::uint32_t> perm(cfg.ranks);
  std::iota(perm.begin(), perm.end(), 0u);
  rng.shuffle(perm);
  // Fix fixed points to keep the permutation a derangement.
  for (std::uint32_t r = 0; r < cfg.ranks; ++r) {
    if (perm[r] == r) std::swap(perm[r], perm[(r + 1) % cfg.ranks]);
  }
  const std::uint64_t per_rank = std::max<std::uint64_t>(
      1, cfg.total_bytes / cfg.ranks / cfg.msg_bytes);
  std::vector<Flow> flows;
  for (std::uint32_t r = 0; r < cfg.ranks; ++r) {
    for (std::uint64_t k = 0; k < per_rank; ++k) {
      flows.push_back({r, perm[r], 1.0, rng.next_double() * cfg.window});
    }
  }
  return emit(flows, cfg.total_bytes, 0.0, rng);
}

std::vector<RankMsg> generate_bisection(const Config& cfg) {
  check_config(cfg);
  Rng rng(cfg.seed, 0xb15ec7ULL);
  const std::uint32_t half = cfg.ranks / 2;
  DV_REQUIRE(half >= 1, "bisection needs at least 2 ranks");
  const std::uint64_t per_rank = std::max<std::uint64_t>(
      1, cfg.total_bytes / cfg.ranks / cfg.msg_bytes);
  std::vector<Flow> flows;
  for (std::uint32_t r = 0; r < half; ++r) {
    for (std::uint64_t k = 0; k < per_rank; ++k) {
      const double t = rng.next_double() * cfg.window;
      flows.push_back({r, r + half, 1.0, t});
      flows.push_back({r + half, r, 1.0, t});
    }
  }
  return emit(flows, cfg.total_bytes, 0.0, rng);
}

std::vector<RankMsg> generate_transpose(const Config& cfg) {
  check_config(cfg);
  Rng rng(cfg.seed, 0x7a4259ULL);
  const auto [pr, pc] = grid2(cfg.ranks);
  const std::uint64_t per_rank = std::max<std::uint64_t>(
      1, cfg.total_bytes / cfg.ranks / cfg.msg_bytes);
  std::vector<Flow> flows;
  flows.reserve(cfg.ranks * per_rank);
  for (std::uint32_t r = 0; r < cfg.ranks; ++r) {
    const std::uint32_t row = r / pc;
    const std::uint32_t col = r % pc;
    // (row, col) -> (col, row), the partner indexed in the transposed
    // pc x pr layout: col * pr + row < pc * pr = ranks, so the map is a
    // bijection even on non-square grids. Diagonal ranks stay silent.
    const std::uint32_t partner = col * pr + row;
    if (partner == r) continue;
    for (std::uint64_t k = 0; k < per_rank; ++k) {
      flows.push_back({r, partner, 1.0, rng.next_double() * cfg.window});
    }
  }
  return emit(flows, cfg.total_bytes, 0.0, rng);
}

// ------------------------------------------------------------- applications

std::vector<RankMsg> generate_amg(const Config& cfg) {
  check_config(cfg);
  Rng rng(cfg.seed, 0xa319a3ULL);
  const auto [nx, ny, nz] = grid3(cfg.ranks);
  auto rank_of = [&, nx = nx, ny = ny](std::uint32_t x, std::uint32_t y,
                                       std::uint32_t z) {
    return (z * ny + y) * nx + x;
  };
  // Three traffic bursts (setup, solve, refinement) — Fig. 12 of the paper
  // shows bursts at the beginning, middle and end of the AMG run.
  const double bursts[3] = {0.05 * cfg.window, 0.48 * cfg.window,
                            0.88 * cfg.window};
  std::vector<Flow> flows;
  for (std::uint32_t z = 0; z < nz; ++z) {
    for (std::uint32_t y = 0; y < ny; ++y) {
      for (std::uint32_t x = 0; x < nx; ++x) {
        const std::uint32_t r = rank_of(x, y, z);
        std::vector<std::uint32_t> nbrs;
        if (x > 0) nbrs.push_back(rank_of(x - 1, y, z));
        if (x + 1 < nx) nbrs.push_back(rank_of(x + 1, y, z));
        if (y > 0) nbrs.push_back(rank_of(x, y - 1, z));
        if (y + 1 < ny) nbrs.push_back(rank_of(x, y + 1, z));
        if (z > 0) nbrs.push_back(rank_of(x, y, z - 1));
        if (z + 1 < nz) nbrs.push_back(rank_of(x, y, z + 1));
        for (const double bt : bursts) {
          for (std::uint32_t d : nbrs) {
            flows.push_back({r, d, 1.0, bt});
          }
        }
      }
    }
  }
  return emit(flows, cfg.total_bytes, 0.04 * cfg.window, rng);
}

std::vector<RankMsg> generate_amr_boxlib(const Config& cfg) {
  check_config(cfg);
  Rng rng(cfg.seed, 0xab0817ULL);
  // Two-tier load model encoding the paper's observation that the lowest
  // ranks dominate: the "hot" first ~6 % of ranks (refined AMR levels)
  // carry ~65 % of the volume; the rest is sparse background exchange.
  const std::uint32_t hot =
      std::max<std::uint32_t>(2, cfg.ranks * 6 / 100);
  const double phases[2] = {0.25 * cfg.window, 0.65 * cfg.window};
  std::vector<Flow> flows;
  auto skewed_dst = [&](std::uint32_t src, double nearby_prob) {
    // Mixture: nearby (sparse stencil) or skewed toward low ids.
    std::uint32_t dst = src;
    while (dst == src) {
      if (rng.next_bool(nearby_prob)) {
        const std::int64_t delta = rng.next_range(-8, 8);
        const std::int64_t cand = static_cast<std::int64_t>(src) + delta;
        if (cand < 0 || cand >= static_cast<std::int64_t>(cfg.ranks)) continue;
        dst = static_cast<std::uint32_t>(cand);
      } else {
        const double u = rng.next_double();
        dst = static_cast<std::uint32_t>(u * u *
                                         static_cast<double>(cfg.ranks));
        if (dst >= cfg.ranks) dst = cfg.ranks - 1;
      }
    }
    return dst;
  };
  for (std::uint32_t r = 0; r < cfg.ranks; ++r) {
    const bool is_hot = r < hot;
    const double rank_weight =
        is_hot ? 0.65 / hot : 0.35 / (cfg.ranks - hot);
    const std::uint32_t degree =
        static_cast<std::uint32_t>(rng.next_range(2, is_hot ? 12 : 5));
    // Hot (refined-level) ranks exchange mostly with distant coarse ranks,
    // which is what pushes their load onto the inter-group links.
    const double nearby_prob = 0.5;
    for (const double ph : phases) {
      for (std::uint32_t k = 0; k < degree; ++k) {
        flows.push_back({r, skewed_dst(r, nearby_prob), rank_weight / degree, ph});
      }
    }
  }
  return emit(flows, cfg.total_bytes, 0.18 * cfg.window, rng);
}

std::vector<RankMsg> generate_minife(const Config& cfg) {
  check_config(cfg);
  Rng rng(cfg.seed, 0x31f1feULL);
  const auto [pr, pc] = grid2(cfg.ranks);
  const std::uint32_t iters = 8;
  std::vector<Flow> flows;
  for (std::uint32_t it = 0; it < iters; ++it) {
    const double t0 = (static_cast<double>(it) + 0.1) /
                      static_cast<double>(iters) * cfg.window;
    for (std::uint32_t r = 0; r < cfg.ranks; ++r) {
      const std::uint32_t row = r / pc;
      const std::uint32_t col = r % pc;
      // Matrix-vector halo: exchange with the full process row and column
      // (many-to-many). Weight favours the row exchange.
      for (std::uint32_t c2 = 0; c2 < pc; ++c2) {
        if (c2 == col) continue;
        flows.push_back({r, row * pc + c2, 1.0, t0});
      }
      for (std::uint32_t r2 = 0; r2 < pr; ++r2) {
        if (r2 == row) continue;
        flows.push_back({r, r2 * pc + col, 1.0, t0});
      }
      // Dot-product allreduce: butterfly partners (small messages).
      for (std::uint32_t bit = 1; bit < cfg.ranks; bit <<= 1) {
        const std::uint32_t partner = r ^ bit;
        if (partner < cfg.ranks && partner != r) {
          flows.push_back({r, partner, 0.05, t0 + 0.04 * cfg.window});
        }
      }
    }
  }
  return emit(flows, cfg.total_bytes, 0.02 * cfg.window, rng);
}

// ------------------------------------------------------------- dispatch

std::vector<RankMsg> generate(const std::string& name, const Config& cfg) {
  const std::string n = to_lower(trim(name));
  if (n == "uniform_random" || n == "uniform") return generate_uniform_random(cfg);
  if (n == "nearest_neighbor" || n == "nn") return generate_nearest_neighbor(cfg);
  if (n == "all_to_all") return generate_all_to_all(cfg);
  if (n == "permutation") return generate_permutation(cfg);
  if (n == "bisection") return generate_bisection(cfg);
  if (n == "transpose") return generate_transpose(cfg);
  if (n == "amg") return generate_amg(cfg);
  if (n == "amr_boxlib" || n == "amr") return generate_amr_boxlib(cfg);
  if (n == "minife") return generate_minife(cfg);
  throw Error("unknown workload: " + name);
}

std::vector<std::string> workload_names() {
  return {"uniform_random", "nearest_neighbor", "all_to_all", "permutation",
          "bisection", "transpose", "amg", "amr_boxlib", "minife"};
}

std::vector<std::uint64_t> demand_matrix(const std::vector<RankMsg>& msgs,
                                         std::uint32_t ranks) {
  DV_REQUIRE(ranks > 0, "demand matrix needs at least one rank");
  std::vector<std::uint64_t> dm(static_cast<std::size_t>(ranks) * ranks, 0);
  for (const auto& m : msgs) {
    DV_REQUIRE(m.src_rank < ranks && m.dst_rank < ranks,
               "rank message outside the demand matrix");
    dm[static_cast<std::size_t>(m.src_rank) * ranks + m.dst_rank] += m.bytes;
  }
  return dm;
}

std::vector<netsim::Message> map_to_terminals(
    const std::vector<RankMsg>& msgs, const placement::Placement& placement,
    std::size_t job) {
  DV_REQUIRE(job < placement.job_count(), "job index out of range");
  const auto& terms = placement.terminals[job];
  std::vector<netsim::Message> out;
  out.reserve(msgs.size());
  for (const auto& m : msgs) {
    DV_REQUIRE(m.src_rank < terms.size() && m.dst_rank < terms.size(),
               "rank message outside the placed job size");
    const std::uint32_t src = terms[m.src_rank];
    const std::uint32_t dst = terms[m.dst_rank];
    if (src == dst) continue;  // same terminal: no network traffic
    out.push_back(netsim::Message{src, dst, m.bytes, m.time,
                                  static_cast<std::int32_t>(job)});
  }
  return out;
}

}  // namespace dv::workload
