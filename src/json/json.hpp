// Dependency-free JSON with a relaxed dialect for projection-view scripts.
//
// The paper (Fig. 5) specifies projection views with key-value scripts that
// use unquoted keys and trailing commas; parse() accepts strict JSON plus
// that relaxed dialect (unquoted identifier keys, single-quoted strings,
// trailing commas, // and /* */ comments). parse_script() additionally
// accepts a comma-separated sequence of top-level objects, which is how the
// scripts in the paper are written.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace dv::json {

class Value;
using Array = std::vector<Value>;

/// Object preserving insertion order (deterministic serialization).
class Object {
 public:
  Value& operator[](const std::string& key);           // inserts if missing
  const Value& at(const std::string& key) const;       // throws if missing
  const Value* find(const std::string& key) const;     // nullptr if missing
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  std::size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  auto begin() const { return items_.begin(); }
  auto end() const { return items_.end(); }

  bool operator==(const Object&) const = default;

 private:
  std::vector<std::pair<std::string, Value>> items_;
};

enum class Type { Null, Bool, Number, String, Array, Object };

/// A JSON value (tagged union with value semantics).
class Value {
 public:
  Value() : type_(Type::Null) {}
  Value(std::nullptr_t) : type_(Type::Null) {}
  Value(bool b) : type_(Type::Bool), bool_(b) {}
  Value(double d) : type_(Type::Number), num_(d) {}
  Value(int i) : type_(Type::Number), num_(i) {}
  Value(unsigned int i) : type_(Type::Number), num_(i) {}
  Value(std::int64_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Value(std::size_t i) : type_(Type::Number), num_(static_cast<double>(i)) {}
  Value(const char* s) : type_(Type::String), str_(s) {}
  Value(std::string s) : type_(Type::String), str_(std::move(s)) {}
  Value(Array a) : type_(Type::Array), arr_(std::move(a)) {}
  Value(Object o) : type_(Type::Object), obj_(std::move(o)) {}

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }
  bool is_bool() const { return type_ == Type::Bool; }
  bool is_number() const { return type_ == Type::Number; }
  bool is_string() const { return type_ == Type::String; }
  bool is_array() const { return type_ == Type::Array; }
  bool is_object() const { return type_ == Type::Object; }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  Array& as_array();
  const Object& as_object() const;
  Object& as_object();

  /// Object member access; throws when not an object / key missing.
  const Value& at(const std::string& key) const;
  /// Optional lookups with defaults.
  double get_number(const std::string& key, double dflt) const;
  std::string get_string(const std::string& key,
                         const std::string& dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;
  const Value* find(const std::string& key) const;

  bool operator==(const Value&) const = default;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parses strict or relaxed JSON (see header comment). Throws dv::Error.
Value parse(const std::string& text);

/// Parses a projection-view script: either a single value, or a
/// comma-separated sequence of objects, returned as an Array.
Value parse_script(const std::string& text);

/// Serializes; indent < 0 means compact.
std::string dump(const Value& v, int indent = -1);

}  // namespace dv::json
