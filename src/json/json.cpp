#include "json/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace dv::json {

// ---------------------------------------------------------------- Object

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : items_) {
    if (k == key) return v;
  }
  items_.emplace_back(key, Value());
  return items_.back().second;
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : items_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Object::at(const std::string& key) const {
  const Value* v = find(key);
  if (!v) throw Error("json object has no key '" + key + "'");
  return *v;
}

// ---------------------------------------------------------------- Value

bool Value::as_bool() const {
  DV_REQUIRE(is_bool(), "json value is not a bool");
  return bool_;
}

double Value::as_number() const {
  DV_REQUIRE(is_number(), "json value is not a number");
  return num_;
}

std::int64_t Value::as_int() const {
  return static_cast<std::int64_t>(std::llround(as_number()));
}

const std::string& Value::as_string() const {
  DV_REQUIRE(is_string(), "json value is not a string");
  return str_;
}

const Array& Value::as_array() const {
  DV_REQUIRE(is_array(), "json value is not an array");
  return arr_;
}

Array& Value::as_array() {
  DV_REQUIRE(is_array(), "json value is not an array");
  return arr_;
}

const Object& Value::as_object() const {
  DV_REQUIRE(is_object(), "json value is not an object");
  return obj_;
}

Object& Value::as_object() {
  DV_REQUIRE(is_object(), "json value is not an object");
  return obj_;
}

const Value& Value::at(const std::string& key) const {
  return as_object().at(key);
}

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  return obj_.find(key);
}

double Value::get_number(const std::string& key, double dflt) const {
  const Value* v = find(key);
  return v && v->is_number() ? v->as_number() : dflt;
}

std::string Value::get_string(const std::string& key,
                              const std::string& dflt) const {
  const Value* v = find(key);
  return v && v->is_string() ? v->as_string() : dflt;
}

bool Value::get_bool(const std::string& key, bool dflt) const {
  const Value* v = find(key);
  return v && v->is_bool() ? v->as_bool() : dflt;
}

// ---------------------------------------------------------------- Parser

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  Value parse_value() {
    skip_ws();
    if (eof()) throw err("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string('"'));
      case '\'': return Value(parse_string('\''));
      default:
        if (c == '-' || c == '+' || std::isdigit(static_cast<unsigned char>(c)))
          return parse_number();
        return parse_word();
    }
  }

  void skip_ws() {
    for (;;) {
      while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) ++pos_;
      if (pos_ + 1 < s_.size() && s_[pos_] == '/' && s_[pos_ + 1] == '/') {
        while (!eof() && peek() != '\n') ++pos_;
        continue;
      }
      if (pos_ + 1 < s_.size() && s_[pos_] == '/' && s_[pos_ + 1] == '*') {
        pos_ += 2;
        while (pos_ + 1 < s_.size() &&
               !(s_[pos_] == '*' && s_[pos_ + 1] == '/'))
          ++pos_;
        if (pos_ + 1 >= s_.size()) throw err("unterminated block comment");
        pos_ += 2;
        continue;
      }
      break;
    }
  }

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  std::size_t pos() const { return pos_; }
  bool consume(char c) {
    if (!eof() && peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Error err(const std::string& msg) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    std::ostringstream os;
    os << "json parse error at line " << line << ", column " << col << ": "
       << msg;
    return Error(os.str());
  }

 private:
  Value parse_object() {
    expect('{');
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    for (;;) {
      skip_ws();
      std::string key = parse_key();
      skip_ws();
      expect(':');
      obj[key] = parse_value();
      skip_ws();
      if (consume(',')) {
        skip_ws();
        if (consume('}')) return Value(std::move(obj));  // trailing comma
        continue;
      }
      expect('}');
      return Value(std::move(obj));
    }
  }

  Value parse_array() {
    expect('[');
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (consume(',')) {
        skip_ws();
        if (consume(']')) return Value(std::move(arr));  // trailing comma
        continue;
      }
      expect(']');
      return Value(std::move(arr));
    }
  }

  std::string parse_key() {
    if (eof()) throw err("expected object key");
    if (peek() == '"' || peek() == '\'') return parse_string(peek());
    // Relaxed dialect: bare identifier key.
    std::string key;
    while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                      peek() == '_' || peek() == '$')) {
      key.push_back(s_[pos_++]);
    }
    if (key.empty()) throw err("expected object key");
    return key;
  }

  std::string parse_string(char quote) {
    expect(quote);
    std::string out;
    for (;;) {
      if (eof()) throw err("unterminated string");
      char c = s_[pos_++];
      if (c == quote) return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (eof()) throw err("unterminated escape");
      c = s_[pos_++];
      switch (c) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case '/': out.push_back('/'); break;
        case '\\': out.push_back('\\'); break;
        case '"': out.push_back('"'); break;
        case '\'': out.push_back('\''); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw err("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else throw err("invalid \\u escape");
          }
          // Encode as UTF-8 (basic multilingual plane only).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          throw err(std::string("invalid escape \\") + c);
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-' || peek() == '+') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      ((peek() == '-' || peek() == '+') &&
                       (s_[pos_ - 1] == 'e' || s_[pos_ - 1] == 'E')))) {
      ++pos_;
    }
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') throw err("invalid number: " + tok);
    return Value(v);
  }

  Value parse_word() {
    std::string word;
    while (!eof() && std::isalpha(static_cast<unsigned char>(peek()))) {
      word.push_back(s_[pos_++]);
    }
    if (word == "true") return Value(true);
    if (word == "false") return Value(false);
    if (word == "null") return Value(nullptr);
    throw err("unexpected token '" + word + "'");
  }

  void expect(char c) {
    skip_ws();
    if (eof() || peek() != c) {
      throw err(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) {
  Parser p(text);
  Value v = p.parse_value();
  p.skip_ws();
  if (!p.eof()) throw p.err("trailing content after json value");
  return v;
}

Value parse_script(const std::string& text) {
  Parser p(text);
  Array items;
  items.push_back(p.parse_value());
  p.skip_ws();
  while (!p.eof()) {
    if (!p.consume(',')) throw p.err("expected ',' between script entries");
    p.skip_ws();
    if (p.eof()) break;  // trailing comma
    items.push_back(p.parse_value());
    p.skip_ws();
  }
  if (items.size() == 1 && items[0].is_array()) return items[0];
  return Value(std::move(items));
}

// ---------------------------------------------------------------- Writer

namespace {

void dump_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\t': os << "\\t"; break;
      case '\r': os << "\\r"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void dump_number(std::ostringstream& os, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    os << "null";  // JSON has no NaN/inf
    return;
  }
  if (d == std::floor(d) && std::fabs(d) < 1e15) {
    os << static_cast<long long>(d);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  os << buf;
}

void dump_impl(std::ostringstream& os, const Value& v, int indent,
               int depth) {
  auto newline = [&](int d) {
    if (indent >= 0) {
      os << '\n';
      for (int i = 0; i < indent * d; ++i) os << ' ';
    }
  };
  switch (v.type()) {
    case Type::Null: os << "null"; break;
    case Type::Bool: os << (v.as_bool() ? "true" : "false"); break;
    case Type::Number: dump_number(os, v.as_number()); break;
    case Type::String: dump_string(os, v.as_string()); break;
    case Type::Array: {
      const auto& arr = v.as_array();
      if (arr.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        if (i) os << ',';
        newline(depth + 1);
        dump_impl(os, arr[i], indent, depth + 1);
      }
      newline(depth);
      os << ']';
      break;
    }
    case Type::Object: {
      const auto& obj = v.as_object();
      if (obj.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [k, val] : obj) {
        if (!first) os << ',';
        first = false;
        newline(depth + 1);
        dump_string(os, k);
        os << (indent >= 0 ? ": " : ":");
        dump_impl(os, val, indent, depth + 1);
      }
      newline(depth);
      os << '}';
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& v, int indent) {
  std::ostringstream os;
  dump_impl(os, v, indent, 0);
  return os.str();
}

}  // namespace dv::json
