// Flow-level fast backend for design-space sweeps.
//
// The packet simulator (netsim) resolves every 2 KB packet through
// store-and-forward routers; at ~9M events/s a hundreds-of-points design
// sweep takes hours. This module trades packet fidelity for steady-state
// fluid rates: each (src terminal, dst terminal) demand pair becomes a
// *flow* over a fixed path, and per epoch the rates are the max-min fair
// allocation computed by iterative water-filling (progressive filling:
// raise all unfrozen rates together, freeze the flows crossing whichever
// link exhausts first — SimGrid's LMM model, `waterFilling` in
// jianglong-nie's simulator). Time advances in epochs; demands activate
// when the workload issues them and drain at the allocated rates.
//
// The whole point is schema fidelity: FlowNetwork emits the *same*
// RunMetrics record (link rows with netsim's src/dst port conventions,
// terminal rows, frame-major sampled series) so every spec, ring, report,
// .dvr pack, and serve verb runs unchanged against either backend.
//
// What the model keeps: link traffic split, saturation ordering between
// scenarios, latency as completion time plus fixed path latency, adaptive
// routing as a UGAL-style decision on solved link utilization. What it
// drops: packet-level queueing dynamics, VC backpressure transients, and
// fault injection (rejected up front).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "netsim/network.hpp"
#include "placement/placement.hpp"
#include "routing/routing.hpp"
#include "topology/dragonfly.hpp"
#include "util/rng.hpp"

namespace dv::flow {

/// One flow's view of the network for the solver: the links it crosses
/// (indices into the capacity vector) and an optional rate ceiling (its
/// demand rate; infinity = limited by the network only).
struct SolverFlow {
  std::vector<std::uint32_t> links;
  double rate_cap = std::numeric_limits<double>::infinity();
};

struct SolverResult {
  std::vector<double> rates;      ///< per flow, same order as input
  std::vector<double> link_load;  ///< per link, sum of crossing rates
  std::uint32_t rounds = 0;       ///< water-filling iterations taken
};

/// Iterative max-min fair allocation (progressive filling / water-filling).
/// Every round raises all active rates by the largest uniform increment no
/// link or rate cap can refuse, then freezes the flows on the exhausted
/// link(s) and the flows that hit their cap. Terminates in at most
/// flows + links rounds; the result satisfies the max-min certificate:
/// every flow is either at its cap or crosses at least one saturated link.
SolverResult water_fill(const std::vector<double>& capacity,
                        const std::vector<SolverFlow>& flows);

/// Flow-level simulation: construct, add messages, run once — the same
/// call sequence as netsim::Network, consuming the same netsim::Message
/// and netsim::Params so app::run_experiment dispatches between backends
/// with no translation layer.
class FlowNetwork {
 public:
  FlowNetwork(const topo::Dragonfly& topo, routing::Algo algo,
              netsim::Params params = {}, std::uint64_t seed = 1);

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  const topo::Dragonfly& topology() const { return topo_; }

  void add_message(const netsim::Message& m);
  void add_messages(const std::vector<netsim::Message>& ms);

  void set_labels(std::string workload, std::string placement,
                  std::vector<std::string> job_names);
  void set_jobs(const placement::Placement& placement);

  /// Fixed-rate time-series sampling (dt in ns). When enabled, the epoch
  /// step is locked to dt so frames are exactly the per-epoch deltas.
  void enable_sampling(double dt);

  /// Epoch length in ns (ignored while sampling; 0 = auto: 1/256 of the
  /// injection span).
  void set_epoch_dt(double dt);

  /// Runs to completion (all demands drained) and returns metrics with
  /// the exact netsim RunMetrics schema. May be called once.
  metrics::RunMetrics run();

  // Work counters (the flow backend's analog of events_processed()).
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t solver_rounds() const { return solver_rounds_; }
  std::size_t bundles() const { return bundles_.size(); }

 private:
  /// All directed links in one index space (the solver's capacity vector):
  /// [0,T) injection, [T,2T) ejection, [2T,2T+L) local, [2T+L,2T+L+G)
  /// global, where T/L/G are the topology's terminal/local/global counts.
  std::uint32_t inj_link(std::uint32_t term) const { return term; }
  std::uint32_t ej_link(std::uint32_t term) const { return nterm_ + term; }
  std::uint32_t local_link(std::uint32_t lid) const {
    return 2 * nterm_ + lid;
  }
  std::uint32_t global_link(std::uint32_t gid) const {
    return 2 * nterm_ + nlocal_ + gid;
  }

  /// A demand bundle: every message of one (src,dst) terminal pair drains
  /// FIFO through one flow. Its path is (re)decided whenever the bundle
  /// transitions idle -> backlogged, the flow-level analog of per-packet
  /// adaptive decisions at injection time.
  struct PendingMsg {
    double remaining = 0.0;      ///< bytes left to drain
    double issue = 0.0;          ///< application send time
    std::uint64_t bytes = 0;     ///< original size (packet accounting)
  };
  struct Bundle {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    double backlog = 0.0;                ///< bytes not yet drained
    double rate = 0.0;                   ///< current allocation (bytes/ns)
    std::vector<std::uint32_t> links;    ///< current path (link indices)
    std::uint32_t router_hops = 0;       ///< routers on the path
    double path_latency = 0.0;           ///< fixed wire+router latency (ns)
    std::deque<PendingMsg> fifo;
  };

  struct PathInfo {
    std::vector<std::uint32_t> links;
    std::uint32_t router_hops = 0;
    double latency = 0.0;
  };

  /// Walks the planner's minimal step function from src to dst, honoring
  /// a preset Valiant proxy group/router, and records every link crossed.
  PathInfo build_path(std::uint32_t src_term, std::uint32_t dst_term,
                      std::int32_t proxy_group,
                      std::int32_t proxy_router) const;

  // Valiant proxy draws, mirroring RoutePlanner's pick logic (private
  // there) on the per-source-terminal rng streams netsim uses.
  std::int32_t pick_proxy_group(std::uint32_t sg, std::uint32_t dg,
                                Rng& rng) const;
  std::int32_t pick_proxy_router(std::uint32_t group, std::uint32_t sr,
                                 std::uint32_t dr, Rng& rng) const;
  /// Bottleneck utilization along a path, from the previous solve.
  double path_peak_util(const PathInfo& path) const;

  /// Chooses the bundle's path per the configured algorithm. Adaptive
  /// algorithms compare the bottleneck utilization (from the previous
  /// solve) along the minimal path against a Valiant candidate — the
  /// fluid analog of UGAL's queue-depth comparison.
  void decide_route(Bundle& b);

  std::uint32_t bundle_of(std::uint32_t src, std::uint32_t dst);
  void solve_epoch(double dt);
  /// Returns true when any bundle fully drained (the active set changed,
  /// so the next epoch must re-solve).
  bool drain_epoch(double t0, double dt);
  void push_sample_frame();
  void collect(metrics::RunMetrics& out, double end);
  void publish_run_obs(const metrics::RunMetrics& out);

  // ---- state ----------------------------------------------------------
  const topo::Dragonfly topo_;
  routing::Algo algo_;
  netsim::Params params_;
  routing::RoutePlanner planner_;  ///< kMinimal walker (proxies preset)
  routing::NullProbe null_probe_;

  std::uint32_t nterm_ = 0, nlocal_ = 0, nglobal_ = 0;
  std::vector<double> capacity_;     ///< per link, bytes/ns
  std::vector<double> link_traffic_; ///< per link, cumulative bytes
  std::vector<double> link_sat_;     ///< per link, cumulative saturated ns
  std::vector<double> link_util_;    ///< load/capacity from the last solve
  std::vector<std::uint8_t> link_saturated_;  ///< solve-scope visit marker
  std::vector<std::uint32_t> used_links_;     ///< links in the last solve
  std::vector<std::uint32_t> sat_links_;      ///< saturated-link list

  std::vector<netsim::Message> messages_;
  std::vector<Bundle> bundles_;
  std::unordered_map<std::uint64_t, std::uint32_t> bundle_index_;
  std::vector<std::uint32_t> active_;  ///< bundle ids, ascending

  std::vector<Rng> term_rng_;  ///< per-source Valiant draws (netsim scheme)

  // Terminal delivery accumulators (columnar, as in netsim).
  std::vector<std::uint64_t> term_finished_;
  std::vector<double> term_sum_latency_;
  std::vector<double> term_sum_hops_;

  // Sampling.
  double sample_dt_ = 0.0;
  double epoch_dt_ = 0.0;
  metrics::SampledSeries local_traffic_ts_, local_sat_ts_;
  metrics::SampledSeries global_traffic_ts_, global_sat_ts_;
  metrics::SampledSeries term_traffic_ts_, term_sat_ts_;
  std::vector<double> prev_traffic_, prev_sat_;

  std::string workload_label_ = "custom";
  std::string placement_label_ = "custom";
  std::vector<std::string> job_names_;
  std::vector<std::int32_t> term_job_;

  std::uint64_t seed_ = 1;
  std::uint64_t epochs_ = 0;
  std::uint64_t solver_rounds_ = 0;
  std::uint64_t solves_ = 0;
  std::uint64_t msgs_finished_ = 0;
  double bytes_injected_ = 0.0;
  double bytes_delivered_ = 0.0;
  double max_delivery_ = 0.0;
  bool ran_ = false;

  // Scratch reused across epochs.
  std::vector<SolverFlow> scratch_flows_;
  std::vector<std::uint32_t> drained_;
};

}  // namespace dv::flow
