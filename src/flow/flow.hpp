// Flow-level fast backend for design-space sweeps.
//
// The packet simulator (netsim) resolves every 2 KB packet through
// store-and-forward routers; at ~9M events/s a hundreds-of-points design
// sweep takes hours. This module trades packet fidelity for steady-state
// fluid rates: each (src terminal, dst terminal) demand pair becomes a
// *flow* over a fixed path, and the rates are the max-min fair allocation
// computed by iterative water-filling (progressive filling: raise all
// unfrozen rates together, freeze the flows crossing whichever link
// exhausts first — SimGrid's LMM model, `waterFilling` in jianglong-nie's
// simulator). Demands activate when the workload issues them and drain at
// the allocated rates.
//
// Time advances event-driven (Stepping::kEvent, the default): each step
// runs to the next rate-changing event — the next injection quantum, a
// batch of bundle completions, or a sampling-frame boundary — instead of
// grinding fixed epochs through the long drain tail. Completions shrink
// the active set, and shrink-only changes re-solve *incrementally*
// (water_fill_removed): finished bundles' rates leave their links and
// water-filling re-runs restricted to the flows the perturbation can
// actually reach, falling back to a full solve when the cascade spreads.
// Stepping::kFixedEpoch keeps the PR-8 fixed-tick loop for comparison.
//
// The whole point is schema fidelity: FlowNetwork emits the *same*
// RunMetrics record (link rows with netsim's src/dst port conventions,
// terminal rows, frame-major sampled series) so every spec, ring, report,
// .dvr pack, and serve verb runs unchanged against either backend.
//
// What the model keeps: link traffic split, saturation ordering between
// scenarios, latency as completion time plus fixed path latency, adaptive
// routing as a UGAL-style decision on solved link utilization. What it
// drops: packet-level queueing dynamics, VC backpressure transients, and
// fault injection (rejected up front).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "netsim/network.hpp"
#include "placement/placement.hpp"
#include "routing/routing.hpp"
#include "topology/dragonfly.hpp"
#include "util/rng.hpp"

namespace dv::flow {

/// One flow's view of the network for the solver: the links it crosses
/// (indices into the capacity vector) and an optional rate ceiling (its
/// demand rate; infinity = limited by the network only, <= 0 = absent).
struct SolverFlow {
  std::vector<std::uint32_t> links;
  double rate_cap = std::numeric_limits<double>::infinity();
};

struct SolverResult {
  std::vector<double> rates;      ///< per flow, same order as input
  std::vector<double> link_load;  ///< per link, sum of crossing rates
  std::uint32_t rounds = 0;       ///< water-filling iterations taken
};

/// Iterative max-min fair allocation (progressive filling / water-filling).
/// Every round raises all active rates by the largest uniform increment no
/// link or rate cap can refuse, then freezes the flows on the exhausted
/// link(s) and the flows that hit their cap. Terminates in at most
/// flows + links rounds; the result satisfies the max-min certificate:
/// every flow is either at its cap or crosses at least one saturated link.
SolverResult water_fill(const std::vector<double>& capacity,
                        const std::vector<SolverFlow>& flows);

/// Outcome of an incremental re-solve (water_fill_removed).
struct IncrementalResult {
  std::uint32_t released = 0;  ///< flows re-solved by the restricted passes
  std::uint32_t rounds = 0;    ///< restricted water-filling rounds taken
  /// The release cascade passed cascade_frac of the surviving flows; the
  /// state was left partially updated and the caller must run a full
  /// water_fill instead.
  bool full_solve = false;
};

/// Incremental max-min re-solve after deleting flows from a solved state.
///
/// `state` must be the water_fill result for `flows` (flows with
/// rate_cap <= 0 treated as absent). `removed` names currently-alive flows
/// to delete; their rates are taken off the links they crossed and
/// water-filling re-runs restricted to the flows the perturbation can
/// reach: the seed set is every alive flow crossing a removed flow's
/// links, and each restricted pass releases further frozen flows whose
/// max-min certificate the pass invalidated — a frozen flow above the new
/// water level of a still-saturated link (it must drop to make room), or
/// any frozen flow on a previously-saturated link that lost saturation
/// (it may rise). Links no released or removed flow crosses keep their
/// frozen allocation untouched, which is what makes sparse completions
/// cheap. When the released set exceeds `cascade_frac` of the surviving
/// flows the function bails with full_solve = true (state unspecified).
///
/// On success, `state` holds the same allocation a fresh water_fill over
/// the surviving flows would produce (removed flows' rates are zeroed).
/// The caller owns marking removed flows absent (rate_cap <= 0) before
/// reusing `flows` in later solves.
IncrementalResult water_fill_removed(const std::vector<double>& capacity,
                                     const std::vector<SolverFlow>& flows,
                                     const std::vector<std::uint32_t>& removed,
                                     SolverResult& state,
                                     double cascade_frac = 0.5);

/// Flow-level simulation: construct, add messages, run once — the same
/// call sequence as netsim::Network, consuming the same netsim::Message
/// and netsim::Params so app::run_experiment dispatches between backends
/// with no translation layer.
class FlowNetwork {
 public:
  /// Time-stepping strategy. kEvent advances to the exact next
  /// rate-changing event (injection quantum, completion batch, frame
  /// boundary); kFixedEpoch is the PR-8 fixed-tick loop, kept as the
  /// comparison baseline for the event engine's equivalence tests.
  enum class Stepping { kEvent, kFixedEpoch };

  FlowNetwork(const topo::Dragonfly& topo, routing::Algo algo,
              netsim::Params params = {}, std::uint64_t seed = 1);

  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  const topo::Dragonfly& topology() const { return topo_; }

  void add_message(const netsim::Message& m);
  void add_messages(const std::vector<netsim::Message>& ms);

  void set_labels(std::string workload, std::string placement,
                  std::vector<std::string> job_names);
  void set_jobs(const placement::Placement& placement);

  /// Fixed-rate time-series sampling (dt in ns). When enabled, the
  /// injection quantum is locked to dt and event steps split at frame
  /// boundaries, so frames are exactly the per-interval deltas.
  void enable_sampling(double dt);

  /// Epoch length / injection quantum in ns (must be positive; ignored
  /// while sampling — the quantum locks to the sampling dt). When never
  /// called, the quantum is auto-sized to 1/256 of the injection span.
  void set_epoch_dt(double dt);

  void set_stepping(Stepping s);

  /// Aggregates demand per (src router, dst router) instead of per
  /// terminal pair — O(routers^2) bundles instead of O(terminals^2), the
  /// difference between uniform-random and structured traffic. Per-message
  /// terminal attribution (packet counts, latency, injected bytes) fans
  /// back out exactly at message completion; the tradeoff is latency and
  /// saturation attribution: messages of one router pair drain FIFO
  /// through a shared bundle (head-of-line across terminal pairs), and a
  /// terminal's sat_time becomes its router's aggregate injection/ejection
  /// saturation, identical for all terminals of the router.
  void enable_coarsening();

  /// Runs to completion (all demands drained) and returns metrics with
  /// the exact netsim RunMetrics schema. May be called once.
  metrics::RunMetrics run();

  // Work counters (the flow backend's analog of events_processed()).
  std::uint64_t epochs() const { return epochs_; }
  std::uint64_t solver_rounds() const { return solver_rounds_; }
  std::uint64_t solves() const { return solves_; }
  std::uint64_t full_solves() const { return full_solves_; }
  std::uint64_t incremental_solves() const { return incremental_solves_; }
  /// Bundle completions observed by the drain accounting.
  std::uint64_t drain_events() const { return drain_events_; }
  std::size_t bundles() const { return bundles_.size(); }

 private:
  /// All directed links in one index space (the solver's capacity vector):
  /// [0,T) injection, [T,2T) ejection, [2T,2T+L) local, [2T+L,2T+L+G)
  /// global, where T/L/G are the topology's terminal/local/global counts.
  /// Coarsening appends 2R router-level injection/ejection links after the
  /// globals (capacity p * terminal_bandwidth) and routes bundles over
  /// those instead of the per-terminal edge links.
  std::uint32_t inj_link(std::uint32_t term) const { return term; }
  std::uint32_t ej_link(std::uint32_t term) const { return nterm_ + term; }
  std::uint32_t local_link(std::uint32_t lid) const {
    return 2 * nterm_ + lid;
  }
  std::uint32_t global_link(std::uint32_t gid) const {
    return 2 * nterm_ + nlocal_ + gid;
  }
  std::uint32_t coarse_inj_link(std::uint32_t router) const {
    return coarse_base_ + router;
  }
  std::uint32_t coarse_ej_link(std::uint32_t router) const {
    return coarse_base_ + nrouters_ + router;
  }

  /// A demand bundle: every message of one (src,dst) terminal pair —
  /// router pair under coarsening — drains FIFO through one flow. Its path
  /// is (re)decided whenever the bundle transitions idle -> backlogged,
  /// the flow-level analog of per-packet adaptive decisions at injection
  /// time.
  struct PendingMsg {
    double remaining = 0.0;      ///< bytes left to drain
    double issue = 0.0;          ///< application send time
    std::uint64_t bytes = 0;     ///< original size (packet accounting)
    std::uint32_t src = 0;       ///< source terminal (coarse fan-out)
    std::uint32_t dst = 0;       ///< destination terminal (coarse fan-out)
  };
  struct Bundle {
    std::uint32_t src = 0;  ///< representative terminal when coarsening
    std::uint32_t dst = 0;
    double backlog = 0.0;                ///< bytes not yet drained
    double rate = 0.0;                   ///< current allocation (bytes/ns)
    std::vector<std::uint32_t> links;    ///< current path (link indices)
    std::uint32_t router_hops = 0;       ///< routers on the path
    double path_latency = 0.0;           ///< fixed wire+router latency (ns)
    std::deque<PendingMsg> fifo;
  };

  struct PathInfo {
    std::vector<std::uint32_t> links;
    std::uint32_t router_hops = 0;
    double latency = 0.0;
  };

  /// Walks the planner's minimal step function from src to dst, honoring
  /// a preset Valiant proxy group/router, and records every link crossed.
  PathInfo build_path(std::uint32_t src_term, std::uint32_t dst_term,
                      std::int32_t proxy_group,
                      std::int32_t proxy_router) const;

  // Valiant proxy draws, mirroring RoutePlanner's pick logic (private
  // there) on the per-source-terminal rng streams netsim uses.
  std::int32_t pick_proxy_group(std::uint32_t sg, std::uint32_t dg,
                                Rng& rng) const;
  std::int32_t pick_proxy_router(std::uint32_t group, std::uint32_t sr,
                                 std::uint32_t dr, Rng& rng) const;
  /// Bottleneck utilization along a path, from the previous solve.
  double path_peak_util(const PathInfo& path) const;

  /// Chooses the bundle's path per the configured algorithm. Adaptive
  /// algorithms compare the bottleneck utilization (from the previous
  /// solve) along the minimal path against a Valiant candidate — the
  /// fluid analog of UGAL's queue-depth comparison.
  void decide_route(Bundle& b);

  std::uint32_t bundle_of(std::uint32_t src, std::uint32_t dst);
  void solve_epoch(double dt);
  /// Returns true when any bundle fully drained (the active set changed,
  /// so the next epoch must re-solve).
  bool drain_epoch(double t0, double dt);
  void push_sample_frame();
  void collect(metrics::RunMetrics& out, double end);
  void publish_run_obs(const metrics::RunMetrics& out);

  // Event-driven engine (Stepping::kEvent).
  /// Returns the simulated end time (sampled: last frame boundary).
  double run_event(const std::vector<std::uint32_t>& order, double dt);
  /// PR-8 fixed-epoch loop, kept verbatim (Stepping::kFixedEpoch).
  double run_fixed(const std::vector<std::uint32_t>& order, double dt);
  void solve_event_full(double dt);
  /// Shrink-only re-solve: `removed` is the accumulated completion batch
  /// since the last solve (still cap-alive in ev_flows_; zeroed here).
  void solve_event_drained(double dt, const std::vector<std::uint32_t>& removed);
  void apply_event_solve();
  /// Time of the k-th next bundle completion at current rates (the batch
  /// re-solve target); infinity when nothing is active.
  double next_completion_target(double t);

  // ---- state ----------------------------------------------------------
  const topo::Dragonfly topo_;
  routing::Algo algo_;
  netsim::Params params_;
  routing::RoutePlanner planner_;  ///< kMinimal walker (proxies preset)
  routing::NullProbe null_probe_;

  std::uint32_t nterm_ = 0, nlocal_ = 0, nglobal_ = 0, nrouters_ = 0;
  std::uint32_t coarse_base_ = 0;    ///< first router-level link index
  std::vector<double> capacity_;     ///< per link, bytes/ns
  std::vector<double> link_traffic_; ///< per link, cumulative bytes
  std::vector<double> link_sat_;     ///< per link, cumulative saturated ns
  std::vector<double> link_util_;    ///< load/capacity from the last solve
  std::vector<std::uint8_t> link_saturated_;  ///< solve-scope visit marker
  std::vector<std::uint32_t> used_links_;     ///< links in the last solve
  std::vector<std::uint32_t> sat_links_;      ///< saturated-link list

  std::vector<netsim::Message> messages_;
  std::vector<Bundle> bundles_;
  std::unordered_map<std::uint64_t, std::uint32_t> bundle_index_;
  std::vector<std::uint32_t> active_;  ///< bundle ids, ascending

  std::vector<Rng> term_rng_;  ///< per-source Valiant draws (netsim scheme)

  // Terminal delivery accumulators (columnar, as in netsim).
  std::vector<std::uint64_t> term_finished_;
  std::vector<double> term_sum_latency_;
  std::vector<double> term_sum_hops_;

  // Sampling.
  double sample_dt_ = 0.0;
  double epoch_dt_ = 0.0;
  metrics::SampledSeries local_traffic_ts_, local_sat_ts_;
  metrics::SampledSeries global_traffic_ts_, global_sat_ts_;
  metrics::SampledSeries term_traffic_ts_, term_sat_ts_;
  std::vector<double> prev_traffic_, prev_sat_;

  std::string workload_label_ = "custom";
  std::string placement_label_ = "custom";
  std::vector<std::string> job_names_;
  std::vector<std::int32_t> term_job_;

  std::uint64_t seed_ = 1;
  std::uint64_t epochs_ = 0;
  std::uint64_t solver_rounds_ = 0;
  std::uint64_t solves_ = 0;
  std::uint64_t full_solves_ = 0;
  std::uint64_t incremental_solves_ = 0;
  std::uint64_t drain_events_ = 0;
  std::uint64_t msgs_finished_ = 0;
  double bytes_injected_ = 0.0;
  double bytes_delivered_ = 0.0;
  double max_delivery_ = 0.0;
  bool ran_ = false;
  bool coarsen_ = false;
  Stepping stepping_ = Stepping::kEvent;

  // Event-engine solver state: one persistent SolverFlow per bundle
  // (rate_cap <= 0 = absent), so incremental re-solves have a stable flow
  // index space and full solves skip the per-epoch path copies.
  std::vector<SolverFlow> ev_flows_;
  SolverResult ev_state_;
  /// The last event solve froze some flow at its demand cap; such rates
  /// change with every drained byte, so shrink-only steps cannot reuse
  /// the frozen allocation and must full-solve.
  bool ev_cap_bound_ = false;

  // Scratch reused across epochs.
  std::vector<SolverFlow> scratch_flows_;
  std::vector<std::uint32_t> drained_;
  std::vector<double> comp_scratch_;
};

}  // namespace dv::flow
