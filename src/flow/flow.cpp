#include "flow/flow.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

#include "obs/obs.hpp"

namespace dv::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Byte residue below which a backlog counts as drained (float noise from
/// rate*dt round trips, never a meaningful fraction of any message).
constexpr double kByteEps = 1e-6;
/// A link is saturated when its load reaches this fraction of capacity.
constexpr double kSatFrac = 1.0 - 1e-6;
/// Runaway guard: no sane configuration needs more epochs than this.
constexpr std::uint64_t kMaxEpochs = 1u << 22;

}  // namespace

// ------------------------------------------------------------- water_fill

SolverResult water_fill(const std::vector<double>& capacity,
                        const std::vector<SolverFlow>& flows) {
  const std::size_t nf = flows.size();
  const std::size_t nl = capacity.size();
  SolverResult out;
  out.rates.assign(nf, 0.0);
  out.link_load.assign(nl, 0.0);
  if (nf == 0) return out;

  std::vector<std::uint32_t> count(nl, 0);   // alive crossings per link
  std::vector<double> frozen_load(nl, 0.0);  // load contributed by frozen flows
  std::vector<std::uint8_t> alive(nf, 1);
  std::size_t n_alive = 0;

  // Used-link list: everything below touches only links some active flow
  // crosses, so sparse traffic on a big topology stays cheap.
  std::vector<std::uint32_t> used;
  for (std::size_t f = 0; f < nf; ++f) {
    DV_REQUIRE(flows[f].rate_cap >= 0.0, "negative rate cap");
    for (const std::uint32_t l : flows[f].links) {
      DV_REQUIRE(l < nl, "flow crosses a link outside the capacity vector");
      if (count[l]++ == 0) used.push_back(l);
    }
    if (flows[f].rate_cap <= 0.0) {
      alive[f] = 0;  // zero-demand flow: rate stays 0
      for (const std::uint32_t l : flows[f].links) --count[l];
    } else if (flows[f].links.empty() &&
               !std::isfinite(flows[f].rate_cap)) {
      throw Error("unconstrained flow: no links and no rate cap");
    } else {
      ++n_alive;
    }
  }

  // Per-link flow lists, so an exhausted link freezes its flows in O(deg).
  std::vector<std::uint32_t> adj_start(nl + 1, 0);
  {
    std::vector<std::uint32_t> deg(nl, 0);
    for (std::size_t f = 0; f < nf; ++f) {
      if (!alive[f]) continue;
      for (const std::uint32_t l : flows[f].links) ++deg[l];
    }
    for (const std::uint32_t l : used) adj_start[l + 1] = deg[l];
    for (std::size_t l = 0; l < nl; ++l) adj_start[l + 1] += adj_start[l];
  }
  std::vector<std::uint32_t> adj(adj_start[nl]);
  {
    std::vector<std::uint32_t> fill(nl, 0);
    for (std::size_t f = 0; f < nf; ++f) {
      if (!alive[f]) continue;
      for (const std::uint32_t l : flows[f].links) {
        adj[adj_start[l] + fill[l]++] = static_cast<std::uint32_t>(f);
      }
    }
  }

  // Progressive filling with an implicit water level W: every unfrozen
  // rate equals W, so a round never touches the alive flows at all. Cap
  // freezes happen in ascending cap order (a pointer into the cap-sorted
  // id list); link exhaustion levels live in a lazy min-heap keyed by the
  // level W at which link l fills: frozen_load[l] + count[l]*W == cap_l.
  // Entries go stale when a freeze changes a link; each change pushes a
  // fresh entry and bumps the link's stamp, and pops skip mismatches.
  // Total cost O((flows + crossings) log links) instead of the quadratic
  // freeze-one-flow-per-round-with-full-rescans loop.
  std::vector<std::uint32_t> by_cap;
  by_cap.reserve(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    if (alive[f] && std::isfinite(flows[f].rate_cap)) {
      by_cap.push_back(static_cast<std::uint32_t>(f));
    }
  }
  std::sort(by_cap.begin(), by_cap.end(),
            [&flows](std::uint32_t a, std::uint32_t b) {
              if (flows[a].rate_cap != flows[b].rate_cap) {
                return flows[a].rate_cap < flows[b].rate_cap;
              }
              return a < b;
            });

  struct LinkLevel {
    double w;
    std::uint32_t link;
    std::uint32_t stamp;
    bool operator>(const LinkLevel& o) const { return w > o.w; }
  };
  std::priority_queue<LinkLevel, std::vector<LinkLevel>,
                      std::greater<LinkLevel>>
      heap;
  std::vector<std::uint32_t> stamp(nl, 0);
  auto sat_level = [&](std::uint32_t l) {
    return (capacity[l] - frozen_load[l]) / static_cast<double>(count[l]);
  };
  for (const std::uint32_t l : used) {
    if (count[l] > 0) heap.push({sat_level(l), l, stamp[l]});
  }

  double water = 0.0;
  auto freeze = [&](std::uint32_t f, double rate) {
    alive[f] = 0;
    out.rates[f] = rate;
    --n_alive;
    for (const std::uint32_t l : flows[f].links) {
      --count[l];
      frozen_load[l] += rate;
      ++stamp[l];
      if (count[l] > 0) heap.push({sat_level(l), l, stamp[l]});
    }
  };

  std::size_t cap_ptr = 0;
  while (n_alive > 0) {
    ++out.rounds;
    DV_CHECK(out.rounds <= nf + used.size() + 1,
             "water-filling failed to converge");
    // Validate the heap top: the next link to exhaust at the current state.
    while (!heap.empty() && (stamp[heap.top().link] != heap.top().stamp ||
                             count[heap.top().link] == 0)) {
      heap.pop();
    }
    const double w_link = heap.empty() ? kInf : heap.top().w;
    while (cap_ptr < by_cap.size() && !alive[by_cap[cap_ptr]]) ++cap_ptr;
    const double w_cap =
        cap_ptr < by_cap.size() ? flows[by_cap[cap_ptr]].rate_cap : kInf;
    DV_CHECK(std::isfinite(std::min(w_cap, w_link)),
             "unbounded water-filling increment");

    if (w_cap <= w_link) {
      // Raise the level to the smallest alive cap and freeze every flow
      // capped there (batching ties), each at exactly its cap.
      water = std::max(water, w_cap);
      while (cap_ptr < by_cap.size()) {
        const std::uint32_t f = by_cap[cap_ptr];
        if (!alive[f]) {
          ++cap_ptr;
          continue;
        }
        if (flows[f].rate_cap > water) break;
        freeze(f, flows[f].rate_cap);
        ++cap_ptr;
      }
    } else {
      // Raise the level until the bottleneck link fills, freezing all its
      // alive flows at W — its load lands exactly on capacity.
      const std::uint32_t l = heap.top().link;
      heap.pop();
      water = std::max(water, w_link);
      for (std::uint32_t a = adj_start[l]; a < adj_start[l + 1]; ++a) {
        const std::uint32_t f = adj[a];
        if (alive[f]) freeze(f, water);
      }
    }
  }

  for (const std::uint32_t l : used) {
    out.link_load[l] = frozen_load[l];
  }
  return out;
}

// ------------------------------------------------------------ FlowNetwork

FlowNetwork::FlowNetwork(const topo::Dragonfly& topo, routing::Algo algo,
                         netsim::Params params, std::uint64_t seed)
    : topo_(topo),
      algo_(algo),
      params_(params),
      planner_(topo_, routing::Algo::kMinimal, params.adaptive, seed),
      seed_(seed) {
  params_.validate();
  nterm_ = topo_.num_terminals();
  nlocal_ = topo_.num_local_links();
  nglobal_ = topo_.num_global_links();
  const std::size_t nlinks =
      2 * static_cast<std::size_t>(nterm_) + nlocal_ + nglobal_;

  capacity_.resize(nlinks);
  for (std::uint32_t t = 0; t < nterm_; ++t) {
    capacity_[inj_link(t)] = params_.terminal_bandwidth;
    capacity_[ej_link(t)] = params_.terminal_bandwidth;
  }
  for (std::uint32_t l = 0; l < nlocal_; ++l) {
    capacity_[local_link(l)] = params_.local_bandwidth;
  }
  for (std::uint32_t g = 0; g < nglobal_; ++g) {
    capacity_[global_link(g)] = params_.global_bandwidth;
  }
  link_traffic_.assign(nlinks, 0.0);
  link_sat_.assign(nlinks, 0.0);
  link_saturated_.assign(nlinks, 0);
  link_util_.assign(nlinks, 0.0);

  term_rng_.reserve(nterm_);
  for (std::uint32_t t = 0; t < nterm_; ++t) {
    term_rng_.emplace_back(seed, (1ULL << 32) + t);
  }
  term_finished_.assign(nterm_, 0);
  term_sum_latency_.assign(nterm_, 0.0);
  term_sum_hops_.assign(nterm_, 0.0);
  term_job_.assign(nterm_, -1);
}

void FlowNetwork::add_message(const netsim::Message& m) {
  DV_REQUIRE(!ran_, "add_message after run()");
  DV_REQUIRE(m.src_terminal < nterm_ && m.dst_terminal < nterm_,
             "message endpoint outside the topology");
  DV_REQUIRE(m.src_terminal != m.dst_terminal,
             "message to self never enters the network");
  DV_REQUIRE(m.bytes > 0, "empty message");
  DV_REQUIRE(m.time >= 0.0, "negative injection time");
  messages_.push_back(m);
}

void FlowNetwork::add_messages(const std::vector<netsim::Message>& ms) {
  for (const auto& m : ms) add_message(m);
}

void FlowNetwork::set_labels(std::string workload, std::string placement,
                             std::vector<std::string> job_names) {
  workload_label_ = std::move(workload);
  placement_label_ = std::move(placement);
  job_names_ = std::move(job_names);
}

void FlowNetwork::set_jobs(const placement::Placement& placement) {
  DV_REQUIRE(placement.job_of.size() == term_job_.size(),
             "placement size mismatch");
  term_job_ = placement.job_of;
}

void FlowNetwork::enable_sampling(double dt) {
  DV_REQUIRE(!ran_, "enable_sampling after run()");
  DV_REQUIRE(dt > 0.0, "sampling interval must be positive");
  sample_dt_ = dt;
  local_traffic_ts_ = metrics::SampledSeries(nlocal_, dt);
  local_sat_ts_ = metrics::SampledSeries(nlocal_, dt);
  global_traffic_ts_ = metrics::SampledSeries(nglobal_, dt);
  global_sat_ts_ = metrics::SampledSeries(nglobal_, dt);
  term_traffic_ts_ = metrics::SampledSeries(nterm_, dt);
  term_sat_ts_ = metrics::SampledSeries(nterm_, dt);
  prev_traffic_.assign(capacity_.size(), 0.0);
  prev_sat_.assign(capacity_.size(), 0.0);
}

void FlowNetwork::set_epoch_dt(double dt) {
  DV_REQUIRE(!ran_, "set_epoch_dt after run()");
  DV_REQUIRE(dt >= 0.0, "negative epoch length");
  epoch_dt_ = dt;
}

// --------------------------------------------------------------- routing

FlowNetwork::PathInfo FlowNetwork::build_path(std::uint32_t src_term,
                                              std::uint32_t dst_term,
                                              std::int32_t proxy_group,
                                              std::int32_t proxy_router) const {
  PathInfo path;
  path.links.push_back(inj_link(src_term));
  path.latency = 2.0 * params_.terminal_latency;

  std::uint32_t cur = topo_.terminal_router(src_term);
  path.router_hops = 1;

  routing::PacketRoute st;
  st.dst_terminal = dst_term;
  st.proxy_group = proxy_group;
  st.proxy_router = proxy_router;
  st.src_group = static_cast<std::int32_t>(topo_.router_group(cur));
  st.decided = true;

  const std::uint32_t nterm = topo_.terminals_per_router();
  const std::uint32_t nlocal_ports = topo_.routers_per_group() - 1;
  routing::RouteStats stats;
  Rng rng(0, 0);  // never consulted: minimal walker, decided, no faults
  for (int step = 0; step < 32; ++step) {
    const routing::Decision d =
        planner_.route(st, cur, null_probe_, rng, stats);
    if (d.kind == routing::Decision::Kind::kTerminal) {
      path.links.push_back(ej_link(dst_term));
      path.latency += params_.router_delay * path.router_hops;
      return path;
    }
    if (d.kind == routing::Decision::Kind::kLocal) {
      const std::uint32_t lport = d.port - nterm;
      path.links.push_back(local_link(topo_.local_link_id(cur, lport)));
      path.latency += params_.local_latency;
      cur = topo_.router_id(
          topo_.router_group(cur),
          topo_.local_neighbor(topo_.router_rank(cur), lport));
    } else {
      const std::uint32_t channel = d.port - nterm - nlocal_ports;
      path.links.push_back(global_link(topo_.global_link_id(cur, channel)));
      path.latency += params_.global_latency;
      cur = topo_.global_neighbor(cur, channel).router;
    }
    ++path.router_hops;
  }
  throw Error("flow path walk failed to terminate");
}

std::int32_t FlowNetwork::pick_proxy_group(std::uint32_t sg, std::uint32_t dg,
                                           Rng& rng) const {
  if (topo_.groups() <= 2) return -1;
  for (;;) {
    const auto g = static_cast<std::uint32_t>(rng.next_below(topo_.groups()));
    if (g != sg && g != dg) return static_cast<std::int32_t>(g);
  }
}

std::int32_t FlowNetwork::pick_proxy_router(std::uint32_t group,
                                            std::uint32_t sr,
                                            std::uint32_t dr,
                                            Rng& rng) const {
  if (topo_.routers_per_group() <= 2) return -1;
  for (;;) {
    const auto rank = static_cast<std::uint32_t>(
        rng.next_below(topo_.routers_per_group()));
    const std::uint32_t r = topo_.router_id(group, rank);
    if (r != sr && r != dr) return static_cast<std::int32_t>(r);
  }
}

double FlowNetwork::path_peak_util(const PathInfo& path) const {
  double peak = 0.0;
  for (const std::uint32_t l : path.links) {
    peak = std::max(peak, link_util_[l]);
  }
  return peak;
}

void FlowNetwork::decide_route(Bundle& b) {
  const std::uint32_t sr = topo_.terminal_router(b.src);
  const std::uint32_t dr = topo_.terminal_router(b.dst);
  const std::uint32_t sg = topo_.router_group(sr);
  const std::uint32_t dg = topo_.router_group(dr);
  Rng& rng = term_rng_[b.src];

  std::int32_t proxy_group = -1;
  std::int32_t proxy_router = -1;
  if (sr != dr) {
    switch (algo_) {
      case routing::Algo::kMinimal:
        break;
      case routing::Algo::kNonMinimal:
        if (dg != sg) {
          proxy_group = pick_proxy_group(sg, dg, rng);
        } else {
          proxy_router = pick_proxy_router(sg, sr, dr, rng);
        }
        break;
      case routing::Algo::kAdaptive:
      case routing::Algo::kProgressiveAdaptive: {
        // Fluid UGAL: netsim compares source-router queue depths; the flow
        // model's congestion signal is the previous solve's bottleneck
        // utilization along each candidate path. The threshold (packets)
        // is normalized by the VC buffer size to the same [0,1] scale.
        if (dg == sg) break;
        const std::int32_t proxy = pick_proxy_group(sg, dg, rng);
        if (proxy < 0) break;
        const PathInfo min_path = build_path(b.src, b.dst, -1, -1);
        const PathInfo non_path = build_path(b.src, b.dst, proxy, -1);
        const double q_min = path_peak_util(min_path);
        const double q_non = path_peak_util(non_path);
        const double bias =
            params_.adaptive.threshold / params_.vc_buffer_packets;
        if (q_min * min_path.router_hops >
            q_non * non_path.router_hops + bias) {
          proxy_group = proxy;
        }
        break;
      }
    }
  }

  PathInfo path = (proxy_group >= 0 || proxy_router >= 0)
                      ? build_path(b.src, b.dst, proxy_group, proxy_router)
                      : build_path(b.src, b.dst, -1, -1);
  b.links = std::move(path.links);
  b.router_hops = path.router_hops;
  b.path_latency = path.latency;
}

// -------------------------------------------------------------- epoching

std::uint32_t FlowNetwork::bundle_of(std::uint32_t src, std::uint32_t dst) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(src) << 32) | dst;
  const auto it = bundle_index_.find(key);
  if (it != bundle_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(bundles_.size());
  Bundle b;
  b.src = src;
  b.dst = dst;
  bundles_.push_back(std::move(b));
  bundle_index_.emplace(key, id);
  return id;
}

void FlowNetwork::solve_epoch(double dt) {
  // resize + assign (not clear + push_back) keeps each slot's links
  // capacity across epochs — the solve path allocates nothing steady-state.
  scratch_flows_.resize(active_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const Bundle& b = bundles_[active_[i]];
    SolverFlow& f = scratch_flows_[i];
    f.links.assign(b.links.begin(), b.links.end());
    f.rate_cap = b.backlog / dt;
  }
  const SolverResult res = water_fill(capacity_, scratch_flows_);
  ++solves_;
  solver_rounds_ += res.rounds;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    bundles_[active_[i]].rate = res.rates[i];
  }
  // Utilization + saturation snapshot for routing decisions and sat time.
  // Links used in the previous solve but idle now decay to zero first.
  for (const std::uint32_t l : used_links_) link_util_[l] = 0.0;
  used_links_.clear();
  sat_links_.clear();
  for (const std::uint32_t id : active_) {
    for (const std::uint32_t l : bundles_[id].links) {
      if (link_saturated_[l]) continue;  // already visited this solve
      link_saturated_[l] = 1;
      used_links_.push_back(l);
      link_util_[l] = res.link_load[l] / capacity_[l];
      if (res.link_load[l] >= capacity_[l] * kSatFrac) {
        sat_links_.push_back(l);
      }
    }
  }
  for (const std::uint32_t l : used_links_) link_saturated_[l] = 0;
}

bool FlowNetwork::drain_epoch(double t0, double dt) {
  for (const std::uint32_t l : sat_links_) link_sat_[l] += dt;

  drained_.clear();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Bundle& b = bundles_[active_[i]];
    double sent = std::min(b.backlog, b.rate * dt);
    if (sent <= 0.0) continue;
    for (const std::uint32_t l : b.links) link_traffic_[l] += sent;
    bytes_injected_ += sent;

    // FIFO completion: message k finishes when the cumulative drain covers
    // its residue; its packets arrive one fixed path latency later.
    double consumed = 0.0;
    while (!b.fifo.empty()) {
      PendingMsg& m = b.fifo.front();
      const double take = std::min(m.remaining, sent - consumed);
      if (take < m.remaining - kByteEps) {
        m.remaining -= take;
        break;
      }
      consumed += m.remaining;
      const double completion =
          b.rate > 0.0 ? std::min(t0 + consumed / b.rate, t0 + dt) : t0 + dt;
      const double arrival = completion + b.path_latency;
      const auto npkts = static_cast<std::uint64_t>(
          (m.bytes + params_.packet_size - 1) / params_.packet_size);
      term_finished_[b.dst] += npkts;
      term_sum_latency_[b.dst] +=
          std::max(arrival - m.issue, b.path_latency) *
          static_cast<double>(npkts);
      term_sum_hops_[b.dst] +=
          static_cast<double>(b.router_hops) * static_cast<double>(npkts);
      ++msgs_finished_;
      bytes_delivered_ += static_cast<double>(m.bytes);
      max_delivery_ = std::max(max_delivery_, arrival);
      b.fifo.pop_front();
    }
    b.backlog = std::max(0.0, b.backlog - sent);
    if (b.backlog <= kByteEps && b.fifo.empty()) {
      b.backlog = 0.0;
      b.rate = 0.0;
      drained_.push_back(active_[i]);
    }
  }
  if (!drained_.empty()) {
    std::size_t d = 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < active_.size(); ++r) {
      if (d < drained_.size() && drained_[d] == active_[r]) {
        ++d;
        continue;
      }
      active_[w++] = active_[r];
    }
    active_.resize(w);
  }
  return !drained_.empty();
}

void FlowNetwork::push_sample_frame() {
  auto capture = [this](std::uint32_t base, std::size_t n,
                        metrics::SampledSeries& traffic_ts,
                        metrics::SampledSeries& sat_ts) {
    float* dt = traffic_ts.push_frame_raw();
    float* ds = sat_ts.push_frame_raw();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t l = base + i;
      dt[i] = static_cast<float>(link_traffic_[l] - prev_traffic_[l]);
      ds[i] = static_cast<float>(link_sat_[l] - prev_sat_[l]);
      prev_traffic_[l] = link_traffic_[l];
      prev_sat_[l] = link_sat_[l];
    }
  };
  capture(local_link(0), nlocal_, local_traffic_ts_, local_sat_ts_);
  capture(global_link(0), nglobal_, global_traffic_ts_, global_sat_ts_);
  // Terminal frames: injected bytes, injection + ejection saturation.
  {
    float* dt = term_traffic_ts_.push_frame_raw();
    float* ds = term_sat_ts_.push_frame_raw();
    for (std::size_t t = 0; t < nterm_; ++t) {
      const std::size_t li = inj_link(static_cast<std::uint32_t>(t));
      const std::size_t le = ej_link(static_cast<std::uint32_t>(t));
      dt[t] = static_cast<float>(link_traffic_[li] - prev_traffic_[li]);
      ds[t] = static_cast<float>(link_sat_[li] - prev_sat_[li] +
                                 link_sat_[le] - prev_sat_[le]);
      prev_traffic_[li] = link_traffic_[li];
      prev_sat_[li] = link_sat_[li];
      prev_sat_[le] = link_sat_[le];
    }
  }
}

// ------------------------------------------------------------------- run

metrics::RunMetrics FlowNetwork::run() {
  DV_REQUIRE(!ran_, "run() already called");
  ran_ = true;

  // Deterministic processing order, independent of add_message order.
  std::vector<std::uint32_t> order(messages_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const netsim::Message& ma = messages_[a];
              const netsim::Message& mb = messages_[b];
              if (ma.time != mb.time) return ma.time < mb.time;
              if (ma.src_terminal != mb.src_terminal)
                return ma.src_terminal < mb.src_terminal;
              if (ma.dst_terminal != mb.dst_terminal)
                return ma.dst_terminal < mb.dst_terminal;
              return a < b;
            });

  double dt = sample_dt_ > 0.0 ? sample_dt_ : epoch_dt_;
  if (dt <= 0.0) {
    double max_issue = 0.0;
    for (const auto& m : messages_) max_issue = std::max(max_issue, m.time);
    dt = max_issue > 0.0 ? max_issue / 256.0 : 1000.0;
  }

  double t = 0.0;
  {
    obs::ScopedPhase phase("sim");
    std::size_t next = 0;
    std::vector<std::uint32_t> activated;
    bool need_solve = true;
    while (next < order.size() || !active_.empty()) {
      DV_REQUIRE(++epochs_ < kMaxEpochs,
                 "flow simulation failed to drain (epoch guard)");
      // Idle gap: jump to the epoch containing the next injection,
      // emitting zero frames so sampled series stay contiguous from t=0.
      if (active_.empty() && next < order.size()) {
        const double next_time = messages_[order[next]].time;
        while (t + dt <= next_time) {
          if (sample_dt_ > 0.0) push_sample_frame();
          t += dt;
        }
      }
      const double t1 = t + dt;
      activated.clear();
      while (next < order.size() && messages_[order[next]].time < t1) {
        const netsim::Message& m = messages_[order[next]];
        const std::uint32_t id = bundle_of(m.src_terminal, m.dst_terminal);
        Bundle& b = bundles_[id];
        if (b.fifo.empty() && b.backlog <= 0.0) {
          decide_route(b);
          activated.push_back(id);
        }
        b.fifo.push_back(
            PendingMsg{static_cast<double>(m.bytes), m.time, m.bytes});
        b.backlog += static_cast<double>(m.bytes);
        ++next;
      }
      if (!activated.empty()) {
        active_.insert(active_.end(), activated.begin(), activated.end());
        std::sort(active_.begin(), active_.end());
        active_.erase(std::unique(active_.begin(), active_.end()),
                      active_.end());
        need_solve = true;
      }
      // Rates only change when the active set does (a new demand arrives
      // or a bundle drains); every other epoch reuses the last max-min
      // allocation and just advances the drain accounting. Redistribution
      // after a completion lands one epoch later — the fluid analog of a
      // control-loop delay — which keeps heavy sweeps out of the
      // solve-per-epoch regime.
      if (need_solve) solve_epoch(dt);
      // Epoch batching: while the allocation is frozen, drain accounting
      // is linear in dt (sat += dt, exact in-epoch completion times), so
      // one drain_epoch call over k whole epochs lands on the same state
      // as k unit steps. k stops at the first event that changes rates:
      // the earliest bundle to fully drain or the next injection epoch.
      // Sampled runs step one epoch at a time — each epoch is a frame.
      double step = dt;
      if (sample_dt_ <= 0.0 && !active_.empty()) {
        double k = std::numeric_limits<double>::infinity();
        for (const std::uint32_t id : active_) {
          const Bundle& b = bundles_[id];
          if (b.rate <= 0.0) {
            k = 1.0;
            break;
          }
          k = std::min(k, std::ceil(b.backlog / (b.rate * dt)));
        }
        if (next < order.size()) {
          k = std::min(k, std::floor((messages_[order[next]].time - t) / dt));
        }
        step = std::max(1.0, k) * dt;
      }
      need_solve = drain_epoch(t, step);
      if (sample_dt_ > 0.0) push_sample_frame();
      t = sample_dt_ > 0.0 ? t1 : t + step;
    }
    // Sampled runs keep ticking until the frames cover the last arrival —
    // netsim's sampling loop ends only once the event queue is empty, so
    // end_time ≈ frames * dt holds for both backends.
    if (sample_dt_ > 0.0) {
      while (t < max_delivery_) {
        push_sample_frame();
        t += dt;
      }
    }
  }

  DV_CHECK(msgs_finished_ == messages_.size(),
           "flow simulation drained with messages outstanding");
  const double tol =
      std::max(1.0, bytes_delivered_) * 1e-9 + kByteEps * messages_.size();
  DV_CHECK(std::abs(bytes_injected_ - bytes_delivered_) <= tol,
           "flow conservation violated: injected != delivered");

  const double end = sample_dt_ > 0.0 ? t : max_delivery_;
  metrics::RunMetrics out;
  {
    obs::ScopedPhase phase("collect");
    collect(out, end);
  }
  publish_run_obs(out);
  return out;
}

void FlowNetwork::collect(metrics::RunMetrics& out, double end) {
  out.groups = topo_.groups();
  out.routers_per_group = topo_.routers_per_group();
  out.terminals_per_router = topo_.terminals_per_router();
  out.global_per_router = topo_.global_per_router();
  out.workload = workload_label_;
  out.routing = routing::to_string(algo_);
  out.placement = placement_label_;
  out.job_names = job_names_;
  out.seed = seed_;
  out.end_time = end;

  const std::uint32_t nterm = topo_.terminals_per_router();
  out.local_links.resize(nlocal_);
  for (std::uint32_t lid = 0; lid < nlocal_; ++lid) {
    const auto [router, lport] = topo_.local_link_ends(lid);
    const std::uint32_t nrank =
        topo_.local_neighbor(topo_.router_rank(router), lport);
    metrics::LinkMetrics& l = out.local_links[lid];
    l.src_router = router;
    l.src_port = nterm + lport;
    l.dst_router = topo_.router_id(topo_.router_group(router), nrank);
    l.dst_port = nterm + (topo_.local_port(nrank, topo_.router_rank(router)) -
                          nterm);
    l.traffic = link_traffic_[local_link(lid)];
    l.sat_time = link_sat_[local_link(lid)];
  }
  out.global_links.resize(nglobal_);
  for (std::uint32_t gid = 0; gid < nglobal_; ++gid) {
    const topo::GlobalEnd src = topo_.global_link_src(gid);
    const topo::GlobalEnd dst = topo_.global_neighbor(src.router, src.channel);
    metrics::LinkMetrics& l = out.global_links[gid];
    l.src_router = src.router;
    l.src_port = topo_.global_port(src.channel);
    l.dst_router = dst.router;
    l.dst_port = topo_.global_port(dst.channel);
    l.traffic = link_traffic_[global_link(gid)];
    l.sat_time = link_sat_[global_link(gid)];
  }
  out.terminals.resize(nterm_);
  for (std::uint32_t tm = 0; tm < nterm_; ++tm) {
    metrics::TerminalMetrics& trow = out.terminals[tm];
    trow.router = topo_.terminal_router(tm);
    trow.port = topo_.terminal_slot(tm);
    trow.packets_finished = term_finished_[tm];
    trow.sum_latency = term_sum_latency_[tm];
    trow.sum_hops = term_sum_hops_[tm];
    trow.data_size = link_traffic_[inj_link(tm)];
    trow.sat_time = link_sat_[inj_link(tm)] + link_sat_[ej_link(tm)];
    trow.job = term_job_[tm];
  }

  if (sample_dt_ > 0.0) {
    out.sample_dt = sample_dt_;
    out.local_traffic_ts = std::move(local_traffic_ts_);
    out.local_sat_ts = std::move(local_sat_ts_);
    out.global_traffic_ts = std::move(global_traffic_ts_);
    out.global_sat_ts = std::move(global_sat_ts_);
    out.term_traffic_ts = std::move(term_traffic_ts_);
    out.term_sat_ts = std::move(term_sat_ts_);
  }
}

void FlowNetwork::publish_run_obs(const metrics::RunMetrics& out) {
#ifdef DV_OBS_ENABLED
  obs::counter("flow.messages").add(messages_.size());
  obs::counter("flow.bundles").add(bundles_.size());
  obs::counter("flow.epochs").add(epochs_);
  obs::counter("flow.solves").add(solves_);
  obs::counter("flow.solver_rounds").add(solver_rounds_);
  obs::counter("flow.bytes").add(static_cast<std::uint64_t>(bytes_delivered_));
  if (sample_dt_ > 0.0) {
    obs::counter("flow.sample_frames").add(out.local_traffic_ts.frames());
  }
#else
  (void)out;
#endif
}

}  // namespace dv::flow
