#include "flow/flow.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <queue>

#include "obs/obs.hpp"

namespace dv::flow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Byte residue below which a backlog counts as drained (float noise from
/// rate*dt round trips, never a meaningful fraction of any message).
constexpr double kByteEps = 1e-6;
/// A link is saturated when its load reaches this fraction of capacity.
constexpr double kSatFrac = 1.0 - 1e-6;
/// Runaway guard: no sane configuration needs more epochs than this.
constexpr std::uint64_t kMaxEpochs = 1u << 22;
/// Event stepping batches completions: re-solve after the active set
/// shrank by ~1/16th instead of after every single completion. Exact
/// (batch of one) below 16 active bundles, so light load keeps
/// per-completion fidelity while heavy UR pays O(16 ln n) solves total.
constexpr std::size_t kCompletionBatch = 16;
/// Event solves apply demand caps (backlog / quantum — the fixed-epoch
/// semantics that keeps solved utilization an honest congestion signal
/// for the adaptive comparison) only below this active count. Past it a
/// backlog dwarfs any fair share, the caps cannot bind, and skipping them
/// skips the O(n log n) cap sort in every solve.
constexpr std::size_t kCapSolveLimit = 4096;

}  // namespace

// ------------------------------------------------------------- water_fill

SolverResult water_fill(const std::vector<double>& capacity,
                        const std::vector<SolverFlow>& flows) {
  const std::size_t nf = flows.size();
  const std::size_t nl = capacity.size();
  SolverResult out;
  out.rates.assign(nf, 0.0);
  out.link_load.assign(nl, 0.0);
  if (nf == 0) return out;

  std::vector<std::uint32_t> count(nl, 0);   // alive crossings per link
  std::vector<double> frozen_load(nl, 0.0);  // load contributed by frozen flows
  std::vector<std::uint8_t> alive(nf, 1);
  std::size_t n_alive = 0;

  // Used-link list: everything below touches only links some active flow
  // crosses, so sparse traffic on a big topology stays cheap. Absent
  // flows (rate_cap <= 0) are skipped before their links are touched —
  // the event engine keeps one solver slot per ever-seen bundle, so most
  // slots are dead in the long drain tail.
  std::vector<std::uint32_t> used;
  for (std::size_t f = 0; f < nf; ++f) {
    DV_REQUIRE(flows[f].rate_cap >= 0.0, "negative rate cap");
    if (flows[f].rate_cap <= 0.0) {
      alive[f] = 0;  // absent flow: rate stays 0
      continue;
    }
    if (flows[f].links.empty() && !std::isfinite(flows[f].rate_cap)) {
      throw Error("unconstrained flow: no links and no rate cap");
    }
    ++n_alive;
    for (const std::uint32_t l : flows[f].links) {
      DV_REQUIRE(l < nl, "flow crosses a link outside the capacity vector");
      if (count[l]++ == 0) used.push_back(l);
    }
  }

  // Per-link flow lists, so an exhausted link freezes its flows in O(deg).
  std::vector<std::uint32_t> adj_start(nl + 1, 0);
  {
    std::vector<std::uint32_t> deg(nl, 0);
    for (std::size_t f = 0; f < nf; ++f) {
      if (!alive[f]) continue;
      for (const std::uint32_t l : flows[f].links) ++deg[l];
    }
    for (const std::uint32_t l : used) adj_start[l + 1] = deg[l];
    for (std::size_t l = 0; l < nl; ++l) adj_start[l + 1] += adj_start[l];
  }
  std::vector<std::uint32_t> adj(adj_start[nl]);
  {
    std::vector<std::uint32_t> fill(nl, 0);
    for (std::size_t f = 0; f < nf; ++f) {
      if (!alive[f]) continue;
      for (const std::uint32_t l : flows[f].links) {
        adj[adj_start[l] + fill[l]++] = static_cast<std::uint32_t>(f);
      }
    }
  }

  // Progressive filling with an implicit water level W: every unfrozen
  // rate equals W, so a round never touches the alive flows at all. Cap
  // freezes happen in ascending cap order (a pointer into the cap-sorted
  // id list); link exhaustion levels live in a lazy min-heap keyed by the
  // level W at which link l fills: frozen_load[l] + count[l]*W == cap_l.
  //
  // Freezes only *raise* a link's exhaustion level (the frozen rate is at
  // most the old level: new = (cap - frozen - w)/(count - 1) >= old for
  // w <= old, and cap freezes satisfy w <= w_link by the round order), so
  // a stale heap entry is a safe underestimate: freezes just bump the
  // link's stamp, and a pop whose stamp mismatches recomputes the level
  // and re-pushes. That caps heap traffic at O(links + stale pops)
  // instead of one push per flow-link crossing per freeze — the
  // difference between ~milliseconds and ~tens of milliseconds per solve
  // on tens of thousands of active flows.
  std::vector<std::uint32_t> by_cap;
  by_cap.reserve(nf);
  for (std::size_t f = 0; f < nf; ++f) {
    if (alive[f] && std::isfinite(flows[f].rate_cap)) {
      by_cap.push_back(static_cast<std::uint32_t>(f));
    }
  }
  std::sort(by_cap.begin(), by_cap.end(),
            [&flows](std::uint32_t a, std::uint32_t b) {
              if (flows[a].rate_cap != flows[b].rate_cap) {
                return flows[a].rate_cap < flows[b].rate_cap;
              }
              return a < b;
            });

  struct LinkLevel {
    double w;
    std::uint32_t link;
    std::uint32_t stamp;
    bool operator>(const LinkLevel& o) const { return w > o.w; }
  };
  std::priority_queue<LinkLevel, std::vector<LinkLevel>,
                      std::greater<LinkLevel>>
      heap;
  std::vector<std::uint32_t> stamp(nl, 0);
  auto sat_level = [&](std::uint32_t l) {
    return (capacity[l] - frozen_load[l]) / static_cast<double>(count[l]);
  };
  for (const std::uint32_t l : used) {
    if (count[l] > 0) heap.push({sat_level(l), l, stamp[l]});
  }

  double water = 0.0;
  auto freeze = [&](std::uint32_t f, double rate) {
    alive[f] = 0;
    out.rates[f] = rate;
    --n_alive;
    for (const std::uint32_t l : flows[f].links) {
      --count[l];
      frozen_load[l] += rate;
      ++stamp[l];
    }
  };

  std::size_t cap_ptr = 0;
  while (n_alive > 0) {
    ++out.rounds;
    DV_CHECK(out.rounds <= nf + used.size() + 1,
             "water-filling failed to converge");
    // Validate the heap top: recompute stale entries (their true level
    // only ever moved up) until the minimum is current.
    while (!heap.empty()) {
      const LinkLevel top = heap.top();
      if (count[top.link] == 0) {
        heap.pop();
        continue;
      }
      if (stamp[top.link] != top.stamp) {
        heap.pop();
        heap.push({sat_level(top.link), top.link, stamp[top.link]});
        continue;
      }
      break;
    }
    const double w_link = heap.empty() ? kInf : heap.top().w;
    while (cap_ptr < by_cap.size() && !alive[by_cap[cap_ptr]]) ++cap_ptr;
    const double w_cap =
        cap_ptr < by_cap.size() ? flows[by_cap[cap_ptr]].rate_cap : kInf;
    DV_CHECK(std::isfinite(std::min(w_cap, w_link)),
             "unbounded water-filling increment");

    if (w_cap <= w_link) {
      // Raise the level to the smallest alive cap and freeze every flow
      // capped there (batching ties), each at exactly its cap.
      water = std::max(water, w_cap);
      while (cap_ptr < by_cap.size()) {
        const std::uint32_t f = by_cap[cap_ptr];
        if (!alive[f]) {
          ++cap_ptr;
          continue;
        }
        if (flows[f].rate_cap > water) break;
        freeze(f, flows[f].rate_cap);
        ++cap_ptr;
      }
    } else {
      // Raise the level until the bottleneck link fills, freezing all its
      // alive flows at W — its load lands exactly on capacity.
      const std::uint32_t l = heap.top().link;
      heap.pop();
      water = std::max(water, w_link);
      for (std::uint32_t a = adj_start[l]; a < adj_start[l + 1]; ++a) {
        const std::uint32_t f = adj[a];
        if (alive[f]) freeze(f, water);
      }
    }
  }

  for (const std::uint32_t l : used) {
    out.link_load[l] = frozen_load[l];
  }
  return out;
}

// ----------------------------------------------------- water_fill_removed

IncrementalResult water_fill_removed(const std::vector<double>& capacity,
                                     const std::vector<SolverFlow>& flows,
                                     const std::vector<std::uint32_t>& removed,
                                     SolverResult& state,
                                     double cascade_frac) {
  const std::size_t nf = flows.size();
  const std::size_t nl = capacity.size();
  IncrementalResult out;
  DV_REQUIRE(state.rates.size() == nf, "state rates/flows size mismatch");
  DV_REQUIRE(state.link_load.size() == nl,
             "state link_load/capacity size mismatch");
  if (removed.empty()) return out;

  // Saturation baseline: a frozen flow's max-min certificate references
  // links saturated *before* the removal, so losing one is a release
  // trigger no matter how many passes it takes to surface.
  std::vector<std::uint8_t> was_sat(nl, 0);
  for (std::size_t l = 0; l < nl; ++l) {
    if (state.link_load[l] >= capacity[l] * kSatFrac) was_sat[l] = 1;
  }

  // Take the removed flows off their links and mark those links dirty.
  std::vector<std::uint8_t> gone(nf, 0);
  std::vector<std::uint8_t> dirty(nl, 0);
  for (const std::uint32_t r : removed) {
    DV_REQUIRE(r < nf, "removed flow out of range");
    DV_REQUIRE(flows[r].rate_cap > 0.0, "removed flow already absent");
    DV_REQUIRE(!gone[r], "duplicate removed flow");
    gone[r] = 1;
    for (const std::uint32_t l : flows[r].links) {
      state.link_load[l] -= state.rates[r];
      dirty[l] = 1;
    }
    state.rates[r] = 0.0;
  }

  // While a flow is released its load is off state.link_load, so the
  // vector holds exactly the frozen flows' load — the restricted solve's
  // floor. Seed: every survivor crossing a dirty link.
  std::vector<std::uint8_t> released(nf, 0);
  std::vector<std::uint32_t> R;
  auto release = [&](std::uint32_t f) {
    released[f] = 1;
    R.push_back(f);
    for (const std::uint32_t l : flows[f].links) {
      state.link_load[l] -= state.rates[f];
    }
  };
  std::size_t n_alive = 0;
  for (std::size_t f = 0; f < nf; ++f) {
    if (gone[f] || flows[f].rate_cap <= 0.0) continue;
    ++n_alive;
  }
  const auto limit = static_cast<std::size_t>(
      cascade_frac * static_cast<double>(n_alive));
  for (std::size_t f = 0; f < nf; ++f) {
    if (gone[f] || flows[f].rate_cap <= 0.0) continue;
    for (const std::uint32_t l : flows[f].links) {
      if (dirty[l]) {
        release(static_cast<std::uint32_t>(f));
        // Dense perturbations (heavy UR: removals touch most links) bail
        // here, before the seed scan turns into a full pass of wasted
        // bookkeeping on top of the fallback solve.
        if (R.size() > limit) {
          out.full_solve = true;
          out.released = static_cast<std::uint32_t>(R.size());
          return out;
        }
        break;
      }
    }
  }

  std::vector<SolverFlow> rflows;
  std::vector<double> sub_cap;
  std::vector<std::uint32_t> touched;  // links some released flow crosses
  std::vector<std::uint8_t> touched_mark(nl, 0);
  std::vector<double> max_released(nl, 0.0);  // per touched link
  std::vector<std::uint8_t> trig(nl, 0);      // 1 = sat check, 2 = release all

  for (std::uint32_t pass = 0;; ++pass) {
    DV_CHECK(pass <= nf + 1, "incremental re-solve failed to converge");
    if (R.empty()) return out;  // isolated removals: nothing to re-solve
    if (R.size() > limit) {
      out.full_solve = true;
      out.released = static_cast<std::uint32_t>(R.size());
      return out;
    }

    // Restricted water-filling: R's flows over the slack the frozen flows
    // leave behind. Links nothing in R crosses never enter the solve.
    rflows.clear();
    touched.clear();
    for (const std::uint32_t f : R) {
      rflows.push_back(flows[f]);
      for (const std::uint32_t l : flows[f].links) {
        if (!touched_mark[l]) {
          touched_mark[l] = 1;
          touched.push_back(l);
        }
      }
    }
    sub_cap = capacity;
    for (const std::uint32_t l : touched) {
      sub_cap[l] = std::max(0.0, capacity[l] - state.link_load[l]);
    }
    const SolverResult res = water_fill(sub_cap, rflows);
    out.rounds += res.rounds;
    for (std::size_t i = 0; i < R.size(); ++i) {
      state.rates[R[i]] = res.rates[i];
    }

    // Certificate check on every touched link (only their loads moved).
    // Trigger 1 (push-down): the link is saturated but some frozen flow
    // sits above the released water level there — in the true allocation
    // it would have to yield, so release it and try again. Trigger 2
    // (rise): a link that backed certificates lost saturation — its
    // frozen flows may now rise, release them all.
    for (const std::uint32_t l : touched) {
      max_released[l] = 0.0;
    }
    for (const std::uint32_t f : R) {
      for (const std::uint32_t l : flows[f].links) {
        max_released[l] = std::max(max_released[l], state.rates[f]);
      }
    }
    for (const std::uint32_t l : touched) {
      const double load = state.link_load[l] + res.link_load[l];
      if (load >= capacity[l] * kSatFrac) {
        trig[l] = 1;
      } else if (was_sat[l]) {
        trig[l] = 2;
      }
    }
    const std::size_t before = R.size();
    for (std::size_t f = 0; f < nf; ++f) {
      if (gone[f] || released[f] || flows[f].rate_cap <= 0.0) continue;
      for (const std::uint32_t l : flows[f].links) {
        if (trig[l] == 2 ||
            (trig[l] == 1 && state.rates[f] > max_released[l])) {
          release(static_cast<std::uint32_t>(f));
          break;
        }
      }
    }
    for (const std::uint32_t l : touched) {
      trig[l] = 0;
      touched_mark[l] = 0;
    }

    if (R.size() == before) {
      // Fixpoint: commit the restricted rates back onto the links.
      for (const std::uint32_t f : R) {
        for (const std::uint32_t l : flows[f].links) {
          state.link_load[l] += state.rates[f];
        }
      }
      out.released = static_cast<std::uint32_t>(R.size());
      return out;
    }
  }
}

// ------------------------------------------------------------ FlowNetwork

FlowNetwork::FlowNetwork(const topo::Dragonfly& topo, routing::Algo algo,
                         netsim::Params params, std::uint64_t seed)
    : topo_(topo),
      algo_(algo),
      params_(params),
      planner_(topo_, routing::Algo::kMinimal, params.adaptive, seed),
      seed_(seed) {
  params_.validate();
  nterm_ = topo_.num_terminals();
  nlocal_ = topo_.num_local_links();
  nglobal_ = topo_.num_global_links();
  nrouters_ = topo_.num_routers();
  const std::size_t nlinks =
      2 * static_cast<std::size_t>(nterm_) + nlocal_ + nglobal_;
  coarse_base_ = static_cast<std::uint32_t>(nlinks);

  capacity_.resize(nlinks);
  for (std::uint32_t t = 0; t < nterm_; ++t) {
    capacity_[inj_link(t)] = params_.terminal_bandwidth;
    capacity_[ej_link(t)] = params_.terminal_bandwidth;
  }
  for (std::uint32_t l = 0; l < nlocal_; ++l) {
    capacity_[local_link(l)] = params_.local_bandwidth;
  }
  for (std::uint32_t g = 0; g < nglobal_; ++g) {
    capacity_[global_link(g)] = params_.global_bandwidth;
  }
  link_traffic_.assign(nlinks, 0.0);
  link_sat_.assign(nlinks, 0.0);
  link_saturated_.assign(nlinks, 0);
  link_util_.assign(nlinks, 0.0);

  term_rng_.reserve(nterm_);
  for (std::uint32_t t = 0; t < nterm_; ++t) {
    term_rng_.emplace_back(seed, (1ULL << 32) + t);
  }
  term_finished_.assign(nterm_, 0);
  term_sum_latency_.assign(nterm_, 0.0);
  term_sum_hops_.assign(nterm_, 0.0);
  term_job_.assign(nterm_, -1);
}

void FlowNetwork::add_message(const netsim::Message& m) {
  DV_REQUIRE(!ran_, "add_message after run()");
  DV_REQUIRE(m.src_terminal < nterm_ && m.dst_terminal < nterm_,
             "message endpoint outside the topology");
  DV_REQUIRE(m.src_terminal != m.dst_terminal,
             "message to self never enters the network");
  DV_REQUIRE(m.bytes > 0, "empty message");
  DV_REQUIRE(m.time >= 0.0, "negative injection time");
  messages_.push_back(m);
}

void FlowNetwork::add_messages(const std::vector<netsim::Message>& ms) {
  for (const auto& m : ms) add_message(m);
}

void FlowNetwork::set_labels(std::string workload, std::string placement,
                             std::vector<std::string> job_names) {
  workload_label_ = std::move(workload);
  placement_label_ = std::move(placement);
  job_names_ = std::move(job_names);
}

void FlowNetwork::set_jobs(const placement::Placement& placement) {
  DV_REQUIRE(placement.job_of.size() == term_job_.size(),
             "placement size mismatch");
  term_job_ = placement.job_of;
}

void FlowNetwork::enable_sampling(double dt) {
  DV_REQUIRE(!ran_, "enable_sampling after run()");
  DV_REQUIRE(dt > 0.0, "sampling interval must be positive");
  sample_dt_ = dt;
  local_traffic_ts_ = metrics::SampledSeries(nlocal_, dt);
  local_sat_ts_ = metrics::SampledSeries(nlocal_, dt);
  global_traffic_ts_ = metrics::SampledSeries(nglobal_, dt);
  global_sat_ts_ = metrics::SampledSeries(nglobal_, dt);
  term_traffic_ts_ = metrics::SampledSeries(nterm_, dt);
  term_sat_ts_ = metrics::SampledSeries(nterm_, dt);
  prev_traffic_.assign(capacity_.size(), 0.0);
  prev_sat_.assign(capacity_.size(), 0.0);
}

void FlowNetwork::set_epoch_dt(double dt) {
  DV_REQUIRE(!ran_, "set_epoch_dt after run()");
  DV_REQUIRE(dt > 0.0,
             "epoch length must be positive (omit it for auto sizing)");
  epoch_dt_ = dt;
}

void FlowNetwork::set_stepping(Stepping s) {
  DV_REQUIRE(!ran_, "set_stepping after run()");
  stepping_ = s;
}

void FlowNetwork::enable_coarsening() {
  DV_REQUIRE(!ran_, "enable_coarsening after run()");
  if (coarsen_) return;
  coarsen_ = true;
  // Router-level injection/ejection links carry the aggregated demand of
  // the router's p terminals; the per-terminal edge links stay allocated
  // (collect's schema reads them) but drop out of every path.
  const double cap =
      params_.terminal_bandwidth * topo_.terminals_per_router();
  capacity_.resize(coarse_base_ + 2 * static_cast<std::size_t>(nrouters_),
                   cap);
  link_traffic_.resize(capacity_.size(), 0.0);
  link_sat_.resize(capacity_.size(), 0.0);
  link_saturated_.resize(capacity_.size(), 0);
  link_util_.resize(capacity_.size(), 0.0);
  if (sample_dt_ > 0.0) {
    prev_traffic_.resize(capacity_.size(), 0.0);
    prev_sat_.resize(capacity_.size(), 0.0);
  }
}

// --------------------------------------------------------------- routing

FlowNetwork::PathInfo FlowNetwork::build_path(std::uint32_t src_term,
                                              std::uint32_t dst_term,
                                              std::int32_t proxy_group,
                                              std::int32_t proxy_router) const {
  PathInfo path;
  path.links.push_back(inj_link(src_term));
  path.latency = 2.0 * params_.terminal_latency;

  std::uint32_t cur = topo_.terminal_router(src_term);
  path.router_hops = 1;

  routing::PacketRoute st;
  st.dst_terminal = dst_term;
  st.proxy_group = proxy_group;
  st.proxy_router = proxy_router;
  st.src_group = static_cast<std::int32_t>(topo_.router_group(cur));
  st.decided = true;

  const std::uint32_t nterm = topo_.terminals_per_router();
  const std::uint32_t nlocal_ports = topo_.routers_per_group() - 1;
  routing::RouteStats stats;
  Rng rng(0, 0);  // never consulted: minimal walker, decided, no faults
  for (int step = 0; step < 32; ++step) {
    const routing::Decision d =
        planner_.route(st, cur, null_probe_, rng, stats);
    if (d.kind == routing::Decision::Kind::kTerminal) {
      path.links.push_back(ej_link(dst_term));
      path.latency += params_.router_delay * path.router_hops;
      return path;
    }
    if (d.kind == routing::Decision::Kind::kLocal) {
      const std::uint32_t lport = d.port - nterm;
      path.links.push_back(local_link(topo_.local_link_id(cur, lport)));
      path.latency += params_.local_latency;
      cur = topo_.router_id(
          topo_.router_group(cur),
          topo_.local_neighbor(topo_.router_rank(cur), lport));
    } else {
      const std::uint32_t channel = d.port - nterm - nlocal_ports;
      path.links.push_back(global_link(topo_.global_link_id(cur, channel)));
      path.latency += params_.global_latency;
      cur = topo_.global_neighbor(cur, channel).router;
    }
    ++path.router_hops;
  }
  throw Error("flow path walk failed to terminate");
}

std::int32_t FlowNetwork::pick_proxy_group(std::uint32_t sg, std::uint32_t dg,
                                           Rng& rng) const {
  if (topo_.groups() <= 2) return -1;
  for (;;) {
    const auto g = static_cast<std::uint32_t>(rng.next_below(topo_.groups()));
    if (g != sg && g != dg) return static_cast<std::int32_t>(g);
  }
}

std::int32_t FlowNetwork::pick_proxy_router(std::uint32_t group,
                                            std::uint32_t sr,
                                            std::uint32_t dr,
                                            Rng& rng) const {
  if (topo_.routers_per_group() <= 2) return -1;
  for (;;) {
    const auto rank = static_cast<std::uint32_t>(
        rng.next_below(topo_.routers_per_group()));
    const std::uint32_t r = topo_.router_id(group, rank);
    if (r != sr && r != dr) return static_cast<std::int32_t>(r);
  }
}

double FlowNetwork::path_peak_util(const PathInfo& path) const {
  double peak = 0.0;
  for (const std::uint32_t l : path.links) {
    peak = std::max(peak, link_util_[l]);
  }
  return peak;
}

void FlowNetwork::decide_route(Bundle& b) {
  const std::uint32_t sr = topo_.terminal_router(b.src);
  const std::uint32_t dr = topo_.terminal_router(b.dst);
  const std::uint32_t sg = topo_.router_group(sr);
  const std::uint32_t dg = topo_.router_group(dr);
  Rng& rng = term_rng_[b.src];

  std::int32_t proxy_group = -1;
  std::int32_t proxy_router = -1;
  if (sr != dr) {
    switch (algo_) {
      case routing::Algo::kMinimal:
        break;
      case routing::Algo::kNonMinimal:
        if (dg != sg) {
          proxy_group = pick_proxy_group(sg, dg, rng);
        } else {
          proxy_router = pick_proxy_router(sg, sr, dr, rng);
        }
        break;
      case routing::Algo::kAdaptive:
      case routing::Algo::kProgressiveAdaptive: {
        // Fluid UGAL: netsim compares source-router queue depths; the flow
        // model's congestion signal is the previous solve's bottleneck
        // utilization along each candidate path. The threshold (packets)
        // is normalized by the VC buffer size to the same [0,1] scale.
        if (dg == sg) break;
        const std::int32_t proxy = pick_proxy_group(sg, dg, rng);
        if (proxy < 0) break;
        const PathInfo min_path = build_path(b.src, b.dst, -1, -1);
        const PathInfo non_path = build_path(b.src, b.dst, proxy, -1);
        const double q_min = path_peak_util(min_path);
        const double q_non = path_peak_util(non_path);
        const double bias =
            params_.adaptive.threshold / params_.vc_buffer_packets;
        if (q_min * min_path.router_hops >
            q_non * non_path.router_hops + bias) {
          proxy_group = proxy;
        }
        break;
      }
    }
  }

  PathInfo path = (proxy_group >= 0 || proxy_router >= 0)
                      ? build_path(b.src, b.dst, proxy_group, proxy_router)
                      : build_path(b.src, b.dst, -1, -1);
  b.links = std::move(path.links);
  b.router_hops = path.router_hops;
  b.path_latency = path.latency;
  if (coarsen_) {
    // build_path always brackets the route with the representative
    // terminal's edge links; swap in the router-level aggregate links.
    b.links.front() = coarse_inj_link(sr);
    b.links.back() = coarse_ej_link(dr);
  }
}

// -------------------------------------------------------------- epoching

std::uint32_t FlowNetwork::bundle_of(std::uint32_t src, std::uint32_t dst) {
  std::uint32_t bsrc = src;
  std::uint32_t bdst = dst;
  if (coarsen_) {
    // One bundle per (src router, dst router); the slot-0 terminals stand
    // in for path building and the Valiant rng stream, so the coarse run
    // stays deterministic in the same per-source-stream scheme.
    const std::uint32_t p = topo_.terminals_per_router();
    bsrc = topo_.terminal_router(src) * p;
    bdst = topo_.terminal_router(dst) * p;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(bsrc) << 32) | bdst;
  const auto it = bundle_index_.find(key);
  if (it != bundle_index_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(bundles_.size());
  Bundle b;
  b.src = bsrc;
  b.dst = bdst;
  bundles_.push_back(std::move(b));
  bundle_index_.emplace(key, id);
  return id;
}

void FlowNetwork::solve_epoch(double dt) {
  // resize + assign (not clear + push_back) keeps each slot's links
  // capacity across epochs — the solve path allocates nothing steady-state.
  scratch_flows_.resize(active_.size());
  for (std::size_t i = 0; i < active_.size(); ++i) {
    const Bundle& b = bundles_[active_[i]];
    SolverFlow& f = scratch_flows_[i];
    f.links.assign(b.links.begin(), b.links.end());
    f.rate_cap = b.backlog / dt;
  }
  const SolverResult res = water_fill(capacity_, scratch_flows_);
  ++solves_;
  ++full_solves_;
  solver_rounds_ += res.rounds;
  for (std::size_t i = 0; i < active_.size(); ++i) {
    bundles_[active_[i]].rate = res.rates[i];
  }
  // Utilization + saturation snapshot for routing decisions and sat time.
  // Links used in the previous solve but idle now decay to zero first.
  for (const std::uint32_t l : used_links_) link_util_[l] = 0.0;
  used_links_.clear();
  sat_links_.clear();
  for (const std::uint32_t id : active_) {
    for (const std::uint32_t l : bundles_[id].links) {
      if (link_saturated_[l]) continue;  // already visited this solve
      link_saturated_[l] = 1;
      used_links_.push_back(l);
      link_util_[l] = res.link_load[l] / capacity_[l];
      if (res.link_load[l] >= capacity_[l] * kSatFrac) {
        sat_links_.push_back(l);
      }
    }
  }
  for (const std::uint32_t l : used_links_) link_saturated_[l] = 0;
}

bool FlowNetwork::drain_epoch(double t0, double dt) {
  for (const std::uint32_t l : sat_links_) link_sat_[l] += dt;

  drained_.clear();
  for (std::size_t i = 0; i < active_.size(); ++i) {
    Bundle& b = bundles_[active_[i]];
    double sent = std::min(b.backlog, b.rate * dt);
    if (sent <= 0.0) continue;
    for (const std::uint32_t l : b.links) link_traffic_[l] += sent;
    bytes_injected_ += sent;

    // FIFO completion: message k finishes when the cumulative drain covers
    // its residue; its packets arrive one fixed path latency later.
    double consumed = 0.0;
    while (!b.fifo.empty()) {
      PendingMsg& m = b.fifo.front();
      const double take = std::min(m.remaining, sent - consumed);
      if (take < m.remaining - kByteEps) {
        m.remaining -= take;
        break;
      }
      consumed += m.remaining;
      const double completion =
          b.rate > 0.0 ? std::min(t0 + consumed / b.rate, t0 + dt) : t0 + dt;
      const double arrival = completion + b.path_latency;
      const auto npkts = static_cast<std::uint64_t>(
          (m.bytes + params_.packet_size - 1) / params_.packet_size);
      term_finished_[m.dst] += npkts;
      term_sum_latency_[m.dst] +=
          std::max(arrival - m.issue, b.path_latency) *
          static_cast<double>(npkts);
      term_sum_hops_[m.dst] +=
          static_cast<double>(b.router_hops) * static_cast<double>(npkts);
      if (coarsen_) {
        // Fan the router-level drain back out to the exact terminals: the
        // per-terminal edge links are off the coarse path, so injected /
        // ejected bytes attribute whole messages at completion time.
        link_traffic_[inj_link(m.src)] += static_cast<double>(m.bytes);
        link_traffic_[ej_link(m.dst)] += static_cast<double>(m.bytes);
      }
      ++msgs_finished_;
      bytes_delivered_ += static_cast<double>(m.bytes);
      max_delivery_ = std::max(max_delivery_, arrival);
      b.fifo.pop_front();
    }
    b.backlog = std::max(0.0, b.backlog - sent);
    if (b.backlog <= kByteEps && b.fifo.empty()) {
      b.backlog = 0.0;
      b.rate = 0.0;
      drained_.push_back(active_[i]);
    }
  }
  if (!drained_.empty()) {
    drain_events_ += drained_.size();
    std::size_t d = 0;
    std::size_t w = 0;
    for (std::size_t r = 0; r < active_.size(); ++r) {
      if (d < drained_.size() && drained_[d] == active_[r]) {
        ++d;
        continue;
      }
      active_[w++] = active_[r];
    }
    active_.resize(w);
  }
  return !drained_.empty();
}

void FlowNetwork::push_sample_frame() {
  auto capture = [this](std::uint32_t base, std::size_t n,
                        metrics::SampledSeries& traffic_ts,
                        metrics::SampledSeries& sat_ts) {
    float* dt = traffic_ts.push_frame_raw();
    float* ds = sat_ts.push_frame_raw();
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t l = base + i;
      dt[i] = static_cast<float>(link_traffic_[l] - prev_traffic_[l]);
      ds[i] = static_cast<float>(link_sat_[l] - prev_sat_[l]);
      prev_traffic_[l] = link_traffic_[l];
      prev_sat_[l] = link_sat_[l];
    }
  };
  capture(local_link(0), nlocal_, local_traffic_ts_, local_sat_ts_);
  capture(global_link(0), nglobal_, global_traffic_ts_, global_sat_ts_);
  // Terminal frames: injected bytes, injection + ejection saturation.
  // Coarsened runs read saturation from the shared router-level links —
  // their prev marks update once per router, after the terminal loop.
  {
    float* dt = term_traffic_ts_.push_frame_raw();
    float* ds = term_sat_ts_.push_frame_raw();
    if (coarsen_) {
      for (std::size_t t = 0; t < nterm_; ++t) {
        const auto tm = static_cast<std::uint32_t>(t);
        const std::size_t li = inj_link(tm);
        const std::uint32_t r = topo_.terminal_router(tm);
        const std::size_t lsi = coarse_inj_link(r);
        const std::size_t lse = coarse_ej_link(r);
        dt[t] = static_cast<float>(link_traffic_[li] - prev_traffic_[li]);
        ds[t] = static_cast<float>(link_sat_[lsi] - prev_sat_[lsi] +
                                   link_sat_[lse] - prev_sat_[lse]);
        prev_traffic_[li] = link_traffic_[li];
      }
      for (std::uint32_t r = 0; r < nrouters_; ++r) {
        prev_sat_[coarse_inj_link(r)] = link_sat_[coarse_inj_link(r)];
        prev_sat_[coarse_ej_link(r)] = link_sat_[coarse_ej_link(r)];
      }
    } else {
      for (std::size_t t = 0; t < nterm_; ++t) {
        const std::size_t li = inj_link(static_cast<std::uint32_t>(t));
        const std::size_t le = ej_link(static_cast<std::uint32_t>(t));
        dt[t] = static_cast<float>(link_traffic_[li] - prev_traffic_[li]);
        ds[t] = static_cast<float>(link_sat_[li] - prev_sat_[li] +
                                   link_sat_[le] - prev_sat_[le]);
        prev_traffic_[li] = link_traffic_[li];
        prev_sat_[li] = link_sat_[li];
        prev_sat_[le] = link_sat_[le];
      }
    }
  }
}

// ----------------------------------------------------------- event engine

void FlowNetwork::apply_event_solve() {
  for (const std::uint32_t id : active_) {
    bundles_[id].rate = ev_state_.rates[id];
  }
  // Full utilization + saturation rescan: O(links) is noise next to any
  // solve, and it keeps incremental and full solves on one code path.
  sat_links_.clear();
  const std::size_t nl = capacity_.size();
  for (std::size_t l = 0; l < nl; ++l) {
    const double load = ev_state_.link_load[l];
    link_util_[l] = load > 0.0 ? load / capacity_[l] : 0.0;
    if (load >= capacity_[l] * kSatFrac) {
      sat_links_.push_back(static_cast<std::uint32_t>(l));
    }
  }
}

void FlowNetwork::solve_event_full(double dt) {
  const bool capped = active_.size() <= kCapSolveLimit;
  for (const std::uint32_t id : active_) {
    ev_flows_[id].rate_cap = capped ? bundles_[id].backlog / dt : kInf;
  }
  ev_state_ = water_fill(capacity_, ev_flows_);
  ++solves_;
  ++full_solves_;
  solver_rounds_ += ev_state_.rounds;
  ev_cap_bound_ = false;
  if (capped) {
    for (const std::uint32_t id : active_) {
      if (ev_state_.rates[id] >= ev_flows_[id].rate_cap * kSatFrac) {
        ev_cap_bound_ = true;
        break;
      }
    }
  }
  apply_event_solve();
}

void FlowNetwork::solve_event_drained(
    double dt, const std::vector<std::uint32_t>& removed) {
  // Shrink-only change. The incremental path pays off when the
  // perturbation stays sparse: skip it outright for mass completions
  // (the cascade would bail anyway) and whenever the last solve froze a
  // flow at its demand cap — cap-bound rates depend on the drained
  // backlogs, not just the active set, so the frozen allocation is not
  // reusable. water_fill_removed itself falls back on a wide cascade.
  if (!ev_cap_bound_ && removed.size() * 8 <= active_.size()) {
    const IncrementalResult inc =
        water_fill_removed(capacity_, ev_flows_, removed, ev_state_);
    if (!inc.full_solve) {
      for (const std::uint32_t id : removed) {
        ev_flows_[id].rate_cap = 0.0;
      }
      ++solves_;
      ++incremental_solves_;
      solver_rounds_ += inc.rounds;
      apply_event_solve();
      return;
    }
  }
  for (const std::uint32_t id : removed) ev_flows_[id].rate_cap = 0.0;
  solve_event_full(dt);
}

double FlowNetwork::next_completion_target(double t) {
  if (active_.empty()) return kInf;
  comp_scratch_.clear();
  for (const std::uint32_t id : active_) {
    const Bundle& b = bundles_[id];
    DV_CHECK(b.rate > 0.0, "active bundle with no allocation");
    comp_scratch_.push_back(t + b.backlog / b.rate);
  }
  // Above the cap-solve threshold a single solve costs milliseconds, so
  // the drain tail coarsens to quarter-of-active batches (a heavy run
  // re-solves O(log n) times total); below it the 1/16th batches keep
  // rate redistribution fine-grained.
  const std::size_t divisor =
      comp_scratch_.size() > kCapSolveLimit ? 4 : kCompletionBatch;
  const std::size_t k = std::max<std::size_t>(1, comp_scratch_.size() / divisor);
  const auto kth = comp_scratch_.begin() + static_cast<std::ptrdiff_t>(k - 1);
  std::nth_element(comp_scratch_.begin(), kth, comp_scratch_.end());
  return *kth;
}

double FlowNetwork::run_event(const std::vector<std::uint32_t>& order,
                              double dt) {
  const bool sampled = sample_dt_ > 0.0;
  std::size_t next = 0;
  std::vector<std::uint32_t> pending;  // activated, not yet solved in
  std::vector<std::uint32_t> removed;  // completed, not yet solved out
  double t = 0.0;
  double frame_next = dt;  // accumulated like the fixed loop's t += dt
  double batch_t = kInf;   // completion-batch target from the last solve

  // A message activates at the start of the length-dt interval containing
  // its issue time — the fixed-epoch activation semantics, which is what
  // keeps the two steppings aligned when completions land on boundaries.
  auto quantum = [dt](double time) { return std::floor(time / dt) * dt; };

  while (next < order.size() || !active_.empty()) {
    DV_REQUIRE(++epochs_ < kMaxEpochs,
               "flow simulation failed to drain (event guard)");
    const double t_inj =
        next < order.size() ? quantum(messages_[order[next]].time) : kInf;
    double stop = std::min(t_inj, batch_t);
    if (sampled) stop = std::min(stop, frame_next);
    DV_CHECK(std::isfinite(stop) && stop >= t, "event stepping stalled");

    // Drain the constant-rate interval [t, stop). Completion times inside
    // it are exact (FIFO residue / rate), so skipping straight to the
    // next rate-changing event loses nothing.
    if (stop > t && !active_.empty()) {
      obs::ScopedPhase ph("ev.drain");
      if (drain_epoch(t, stop - t)) {
        removed.insert(removed.end(), drained_.begin(), drained_.end());
      }
    }
    t = stop;

    if (sampled && t == frame_next) {
      push_sample_frame();
      frame_next += dt;
    }

    while (next < order.size() &&
           quantum(messages_[order[next]].time) <= t) {
      const netsim::Message& m = messages_[order[next]];
      const std::uint32_t id = bundle_of(m.src_terminal, m.dst_terminal);
      Bundle& b = bundles_[id];
      if (b.fifo.empty() && b.backlog <= 0.0) {
        decide_route(b);
        pending.push_back(id);
      }
      b.fifo.push_back(PendingMsg{static_cast<double>(m.bytes), m.time,
                                  m.bytes, m.src_terminal, m.dst_terminal});
      b.backlog += static_cast<double>(m.bytes);
      ++next;
    }

    // Activation batching: below the cap-solve threshold every quantum
    // with new demand solves immediately (exact activation timing); above
    // it new bundles wait — idle, like a control-loop delay — until they
    // amount to 1/16th of the active set, injections run out, or nothing
    // else is draining. A heavy ramp-up re-solves O(log n) times instead
    // of once per quantum.
    const bool flush =
        !pending.empty() &&
        (active_.size() <= kCapSolveLimit ||
         pending.size() * 16 >= active_.size() || next >= order.size() ||
         active_.empty());
    if (flush) {
      // Solver slots grow only here, so the drain-only incremental path
      // always sees ev_flows_/ev_state_ at matching sizes.
      if (ev_flows_.size() < bundles_.size()) {
        ev_flows_.resize(bundles_.size());
      }
      for (const std::uint32_t id : pending) {
        ev_flows_[id].links.assign(bundles_[id].links.begin(),
                                   bundles_[id].links.end());
      }
      active_.insert(active_.end(), pending.begin(), pending.end());
      pending.clear();
      std::sort(active_.begin(), active_.end());
      active_.erase(std::unique(active_.begin(), active_.end()),
                    active_.end());
      for (const std::uint32_t id : removed) ev_flows_[id].rate_cap = 0.0;
      removed.clear();
      {
        obs::ScopedPhase ph("ev.solve_full");
        solve_event_full(dt);
      }
    } else if (!removed.empty()) {
      // Completions also batch: freed capacity sits idle (the fluid
      // analog of the fixed loop's one-epoch redistribution delay) until
      // the accumulated removals reach 1/16th of what's still active —
      // otherwise every injection quantum that happens to see a straggler
      // completion would pay a full-size re-solve.
      if (active_.empty()) {
        // Nothing left to re-solve; rates refresh with the next
        // activation's full solve.
        for (const std::uint32_t id : removed) {
          ev_flows_[id].rate_cap = 0.0;
        }
        removed.clear();
      } else if (removed.size() * 16 >= active_.size()) {
        obs::ScopedPhase ph("ev.solve_drained");
        solve_event_drained(dt, removed);
        removed.clear();
      }
    }
    // Injections into running bundles change completion times without
    // changing rates, so the target recomputes every step either way.
    {
      obs::ScopedPhase ph("ev.target");
      batch_t = next_completion_target(t);
    }
  }

  // Sampled runs keep ticking until the frames cover the last arrival —
  // netsim's sampling loop ends only once the event queue is empty, so
  // end_time ≈ frames * dt holds for both backends.
  if (sampled) {
    while (frame_next - dt < max_delivery_) {
      push_sample_frame();
      frame_next += dt;
    }
    return frame_next - dt;
  }
  return max_delivery_;
}

// ------------------------------------------------------------------- run

double FlowNetwork::run_fixed(const std::vector<std::uint32_t>& order,
                              double dt) {
  double t = 0.0;
  std::size_t next = 0;
  std::vector<std::uint32_t> activated;
  bool need_solve = true;
  while (next < order.size() || !active_.empty()) {
    DV_REQUIRE(++epochs_ < kMaxEpochs,
               "flow simulation failed to drain (epoch guard)");
    // Idle gap: jump to the epoch containing the next injection,
    // emitting zero frames so sampled series stay contiguous from t=0.
    if (active_.empty() && next < order.size()) {
      const double next_time = messages_[order[next]].time;
      while (t + dt <= next_time) {
        if (sample_dt_ > 0.0) push_sample_frame();
        t += dt;
      }
    }
    const double t1 = t + dt;
    activated.clear();
    while (next < order.size() && messages_[order[next]].time < t1) {
      const netsim::Message& m = messages_[order[next]];
      const std::uint32_t id = bundle_of(m.src_terminal, m.dst_terminal);
      Bundle& b = bundles_[id];
      if (b.fifo.empty() && b.backlog <= 0.0) {
        decide_route(b);
        activated.push_back(id);
      }
      b.fifo.push_back(PendingMsg{static_cast<double>(m.bytes), m.time,
                                  m.bytes, m.src_terminal, m.dst_terminal});
      b.backlog += static_cast<double>(m.bytes);
      ++next;
    }
    if (!activated.empty()) {
      active_.insert(active_.end(), activated.begin(), activated.end());
      std::sort(active_.begin(), active_.end());
      active_.erase(std::unique(active_.begin(), active_.end()),
                    active_.end());
      need_solve = true;
    }
    // Rates only change when the active set does (a new demand arrives
    // or a bundle drains); every other epoch reuses the last max-min
    // allocation and just advances the drain accounting. Redistribution
    // after a completion lands one epoch later — the fluid analog of a
    // control-loop delay — which keeps heavy sweeps out of the
    // solve-per-epoch regime.
    if (need_solve) solve_epoch(dt);
    // Epoch batching: while the allocation is frozen, drain accounting
    // is linear in dt (sat += dt, exact in-epoch completion times), so
    // one drain_epoch call over k whole epochs lands on the same state
    // as k unit steps. k stops at the first event that changes rates:
    // the earliest bundle to fully drain or the next injection epoch.
    // Sampled runs step one epoch at a time — each epoch is a frame.
    double step = dt;
    if (sample_dt_ <= 0.0 && !active_.empty()) {
      double k = std::numeric_limits<double>::infinity();
      for (const std::uint32_t id : active_) {
        const Bundle& b = bundles_[id];
        if (b.rate <= 0.0) {
          k = 1.0;
          break;
        }
        k = std::min(k, std::ceil(b.backlog / (b.rate * dt)));
      }
      if (next < order.size()) {
        k = std::min(k, std::floor((messages_[order[next]].time - t) / dt));
      }
      step = std::max(1.0, k) * dt;
    }
    need_solve = drain_epoch(t, step);
    if (sample_dt_ > 0.0) push_sample_frame();
    t = sample_dt_ > 0.0 ? t1 : t + step;
  }
  // Sampled runs keep ticking until the frames cover the last arrival —
  // netsim's sampling loop ends only once the event queue is empty, so
  // end_time ≈ frames * dt holds for both backends.
  if (sample_dt_ > 0.0) {
    while (t < max_delivery_) {
      push_sample_frame();
      t += dt;
    }
    return t;
  }
  return max_delivery_;
}

metrics::RunMetrics FlowNetwork::run() {
  DV_REQUIRE(!ran_, "run() already called");
  ran_ = true;

  // Deterministic processing order, independent of add_message order.
  std::vector<std::uint32_t> order(messages_.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              const netsim::Message& ma = messages_[a];
              const netsim::Message& mb = messages_[b];
              if (ma.time != mb.time) return ma.time < mb.time;
              if (ma.src_terminal != mb.src_terminal)
                return ma.src_terminal < mb.src_terminal;
              if (ma.dst_terminal != mb.dst_terminal)
                return ma.dst_terminal < mb.dst_terminal;
              return a < b;
            });

  double dt = sample_dt_ > 0.0 ? sample_dt_ : epoch_dt_;
  if (dt <= 0.0) {
    double max_issue = 0.0;
    for (const auto& m : messages_) max_issue = std::max(max_issue, m.time);
    dt = max_issue > 0.0 ? max_issue / 256.0 : 1000.0;
  }

  double end = 0.0;
  {
    obs::ScopedPhase phase("sim");
    end = stepping_ == Stepping::kEvent ? run_event(order, dt)
                                        : run_fixed(order, dt);
  }

  DV_CHECK(msgs_finished_ == messages_.size(),
           "flow simulation drained with messages outstanding");
  const double tol =
      std::max(1.0, bytes_delivered_) * 1e-9 + kByteEps * messages_.size();
  DV_CHECK(std::abs(bytes_injected_ - bytes_delivered_) <= tol,
           "flow conservation violated: injected != delivered");

  metrics::RunMetrics out;
  {
    obs::ScopedPhase phase("collect");
    collect(out, end);
  }
  publish_run_obs(out);
  return out;
}

void FlowNetwork::collect(metrics::RunMetrics& out, double end) {
  out.groups = topo_.groups();
  out.routers_per_group = topo_.routers_per_group();
  out.terminals_per_router = topo_.terminals_per_router();
  out.global_per_router = topo_.global_per_router();
  out.workload = workload_label_;
  out.routing = routing::to_string(algo_);
  out.placement = placement_label_;
  out.job_names = job_names_;
  out.seed = seed_;
  out.end_time = end;

  const std::uint32_t nterm = topo_.terminals_per_router();
  out.local_links.resize(nlocal_);
  for (std::uint32_t lid = 0; lid < nlocal_; ++lid) {
    const auto [router, lport] = topo_.local_link_ends(lid);
    const std::uint32_t nrank =
        topo_.local_neighbor(topo_.router_rank(router), lport);
    metrics::LinkMetrics& l = out.local_links[lid];
    l.src_router = router;
    l.src_port = nterm + lport;
    l.dst_router = topo_.router_id(topo_.router_group(router), nrank);
    l.dst_port = nterm + (topo_.local_port(nrank, topo_.router_rank(router)) -
                          nterm);
    l.traffic = link_traffic_[local_link(lid)];
    l.sat_time = link_sat_[local_link(lid)];
  }
  out.global_links.resize(nglobal_);
  for (std::uint32_t gid = 0; gid < nglobal_; ++gid) {
    const topo::GlobalEnd src = topo_.global_link_src(gid);
    const topo::GlobalEnd dst = topo_.global_neighbor(src.router, src.channel);
    metrics::LinkMetrics& l = out.global_links[gid];
    l.src_router = src.router;
    l.src_port = topo_.global_port(src.channel);
    l.dst_router = dst.router;
    l.dst_port = topo_.global_port(dst.channel);
    l.traffic = link_traffic_[global_link(gid)];
    l.sat_time = link_sat_[global_link(gid)];
  }
  out.terminals.resize(nterm_);
  for (std::uint32_t tm = 0; tm < nterm_; ++tm) {
    metrics::TerminalMetrics& trow = out.terminals[tm];
    trow.router = topo_.terminal_router(tm);
    trow.port = topo_.terminal_slot(tm);
    trow.packets_finished = term_finished_[tm];
    trow.sum_latency = term_sum_latency_[tm];
    trow.sum_hops = term_sum_hops_[tm];
    trow.data_size = link_traffic_[inj_link(tm)];
    // Coarsened runs never load the per-terminal edge links; a terminal's
    // saturation is its router's aggregate — the documented attribution
    // tradeoff of --flow-coarsen.
    trow.sat_time = coarsen_
                        ? link_sat_[coarse_inj_link(trow.router)] +
                              link_sat_[coarse_ej_link(trow.router)]
                        : link_sat_[inj_link(tm)] + link_sat_[ej_link(tm)];
    trow.job = term_job_[tm];
  }

  if (sample_dt_ > 0.0) {
    out.sample_dt = sample_dt_;
    out.local_traffic_ts = std::move(local_traffic_ts_);
    out.local_sat_ts = std::move(local_sat_ts_);
    out.global_traffic_ts = std::move(global_traffic_ts_);
    out.global_sat_ts = std::move(global_sat_ts_);
    out.term_traffic_ts = std::move(term_traffic_ts_);
    out.term_sat_ts = std::move(term_sat_ts_);
  }
}

void FlowNetwork::publish_run_obs(const metrics::RunMetrics& out) {
#ifdef DV_OBS_ENABLED
  obs::counter("flow.messages").add(messages_.size());
  obs::counter("flow.bundles").add(bundles_.size());
  obs::counter("flow.epochs").add(epochs_);
  obs::counter("flow.solves").add(solves_);
  obs::counter("flow.solve.full").add(full_solves_);
  obs::counter("flow.solve.incremental").add(incremental_solves_);
  obs::counter("flow.drain.events").add(drain_events_);
  obs::counter("flow.solver_rounds").add(solver_rounds_);
  obs::counter("flow.bytes").add(static_cast<std::uint64_t>(bytes_delivered_));
  if (sample_dt_ > 0.0) {
    obs::counter("flow.sample_frames").add(out.local_traffic_ts.frames());
  }
#else
  (void)out;
#endif
}

}  // namespace dv::flow
