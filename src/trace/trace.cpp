#include "trace/trace.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <functional>
#include <set>

namespace dv::trace {

namespace {
constexpr char kMagic[4] = {'D', 'V', 'T', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::ostream& os, const T& v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
T get(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DV_REQUIRE(is.good(), "truncated trace file");
  return v;
}
}  // namespace

Trace record(const std::string& app, std::uint32_t ranks,
             std::vector<workload::RankMsg> messages) {
  Trace t{app, ranks, std::move(messages)};
  validate(t);
  return t;
}

void validate(const Trace& t) {
  DV_REQUIRE(t.ranks > 0, "trace has no ranks");
  for (const auto& m : t.messages) {
    DV_REQUIRE(m.src_rank < t.ranks && m.dst_rank < t.ranks,
               "trace message rank out of range");
    DV_REQUIRE(m.bytes > 0, "trace message with zero bytes");
    DV_REQUIRE(m.time >= 0.0, "trace message with negative time");
  }
}

void save_binary(const Trace& t, const std::string& path) {
  validate(t);
  std::ofstream os(path, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open trace for writing: " + path);
  os.write(kMagic, 4);
  put(os, kVersion);
  const auto name_len = static_cast<std::uint32_t>(t.app.size());
  put(os, name_len);
  os.write(t.app.data(), name_len);
  put(os, t.ranks);
  put(os, static_cast<std::uint64_t>(t.messages.size()));
  for (const auto& m : t.messages) {
    put(os, m.src_rank);
    put(os, m.dst_rank);
    put(os, m.bytes);
    put(os, m.time);
  }
  DV_REQUIRE(os.good(), "trace write failed: " + path);
}

Trace load_binary(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DV_REQUIRE(is.good(), "cannot open trace for reading: " + path);
  char magic[4];
  is.read(magic, 4);
  DV_REQUIRE(is.good() && std::memcmp(magic, kMagic, 4) == 0,
             "not a dragonviz trace file: " + path);
  const auto version = get<std::uint32_t>(is);
  DV_REQUIRE(version == kVersion, "unsupported trace version");
  const auto name_len = get<std::uint32_t>(is);
  DV_REQUIRE(name_len < 4096, "corrupt trace (app name too long)");
  std::string app(name_len, '\0');
  is.read(app.data(), name_len);
  Trace t;
  t.app = app;
  t.ranks = get<std::uint32_t>(is);
  const auto count = get<std::uint64_t>(is);
  t.messages.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    workload::RankMsg m;
    m.src_rank = get<std::uint32_t>(is);
    m.dst_rank = get<std::uint32_t>(is);
    m.bytes = get<std::uint64_t>(is);
    m.time = get<double>(is);
    t.messages.push_back(m);
  }
  validate(t);
  return t;
}

TraceSummary summarize(const Trace& t) {
  validate(t);
  TraceSummary s;
  s.messages = t.messages.size();
  std::vector<std::set<std::uint32_t>> partners(t.ranks);
  std::vector<std::uint64_t> sent(t.ranks, 0);
  bool first = true;
  for (const auto& m : t.messages) {
    s.bytes += m.bytes;
    sent[m.src_rank] += m.bytes;
    partners[m.src_rank].insert(m.dst_rank);
    if (first || m.time < s.t_first) s.t_first = m.time;
    if (first || m.time > s.t_last) s.t_last = m.time;
    first = false;
  }
  double degree_sum = 0.0;
  for (std::uint32_t r = 0; r < t.ranks; ++r) {
    if (partners[r].empty()) continue;
    ++s.active_ranks;
    degree_sum += static_cast<double>(partners[r].size());
    s.max_degree = std::max(s.max_degree,
                            static_cast<std::uint32_t>(partners[r].size()));
  }
  if (s.active_ranks) degree_sum /= s.active_ranks;
  s.avg_degree = degree_sum;
  if (s.bytes > 0) {
    std::sort(sent.begin(), sent.end(), std::greater<>());
    const std::size_t top = std::max<std::size_t>(1, t.ranks / 10);
    std::uint64_t top_bytes = 0;
    for (std::size_t i = 0; i < top; ++i) top_bytes += sent[i];
    s.top_decile_share =
        static_cast<double>(top_bytes) / static_cast<double>(s.bytes);
  }
  return s;
}

json::Value to_json(const Trace& t) {
  json::Object o;
  o["app"] = json::Value(t.app);
  o["ranks"] = json::Value(t.ranks);
  json::Array msgs;
  msgs.reserve(t.messages.size());
  for (const auto& m : t.messages) {
    json::Array row;
    row.emplace_back(m.src_rank);
    row.emplace_back(m.dst_rank);
    row.emplace_back(static_cast<double>(m.bytes));
    row.emplace_back(m.time);
    msgs.emplace_back(std::move(row));
  }
  o["messages"] = json::Value(std::move(msgs));
  return json::Value(std::move(o));
}

Trace from_json(const json::Value& v) {
  Trace t;
  t.app = v.at("app").as_string();
  t.ranks = static_cast<std::uint32_t>(v.at("ranks").as_int());
  for (const auto& rowv : v.at("messages").as_array()) {
    const auto& row = rowv.as_array();
    DV_REQUIRE(row.size() == 4, "bad trace message row");
    workload::RankMsg m;
    m.src_rank = static_cast<std::uint32_t>(row[0].as_int());
    m.dst_rank = static_cast<std::uint32_t>(row[1].as_int());
    m.bytes = static_cast<std::uint64_t>(row[2].as_number());
    m.time = row[3].as_number();
    t.messages.push_back(m);
  }
  validate(t);
  return t;
}

}  // namespace dv::trace
