// Communication trace recording and replay — the stand-in for the DUMPI
// MPI trace path in the paper's toolchain (Fig. 1 "Application Traces").
//
// A trace is a rank-level message list plus metadata. The binary format is
// little-endian, versioned, and validated on load; a JSON form exists for
// inspection and interchange. Replaying a trace through a placement yields
// exactly the messages the original workload generator produced, so the
// trace-driven and generator-driven paths are interchangeable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace dv::trace {

struct Trace {
  std::string app;            ///< workload/application name
  std::uint32_t ranks = 0;
  std::vector<workload::RankMsg> messages;

  std::uint64_t total_bytes() const { return workload::total_bytes(messages); }

  bool operator==(const Trace&) const = default;
};

/// Records a generated workload as a trace.
Trace record(const std::string& app, std::uint32_t ranks,
             std::vector<workload::RankMsg> messages);

/// Binary serialization (magic "DVTR", version 1).
void save_binary(const Trace& t, const std::string& path);
Trace load_binary(const std::string& path);

/// JSON serialization.
json::Value to_json(const Trace& t);
Trace from_json(const json::Value& v);

/// Validates invariants (ranks in range, bytes > 0, times >= 0); throws.
void validate(const Trace& t);

/// Aggregate statistics of a trace (for trace-info and workload studies).
struct TraceSummary {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  double t_first = 0.0, t_last = 0.0;
  double avg_degree = 0.0;   ///< mean distinct destinations per sender
  std::uint32_t max_degree = 0;
  std::uint32_t active_ranks = 0;  ///< ranks that send at least once
  double top_decile_share = 0.0;   ///< byte share of the busiest 10% senders
};
TraceSummary summarize(const Trace& t);

}  // namespace dv::trace
