// Routing strategies for Dragonfly networks (Sec. II-A, V-B of the paper):
// minimal, non-minimal (Valiant), adaptive (UGAL with local queue
// information), and progressive adaptive routing (PAR, Jiang et al. 2009 —
// the strategy the paper's burst analysis recommends).
//
// The planner is pure policy: it owns no network state. Queue occupancies
// come from a QueueProbe supplied by the simulator, which keeps this module
// unit-testable with synthetic congestion patterns.
#pragma once

#include <cstdint>
#include <string>

#include "topology/dragonfly.hpp"
#include "util/rng.hpp"

namespace dv::routing {

enum class Algo {
  kMinimal,
  kNonMinimal,          ///< Valiant: always via a random proxy group
  kAdaptive,            ///< UGAL-L decision at the source router
  kProgressiveAdaptive, ///< re-evaluate while still in the source group
};

Algo algo_from_string(const std::string& name);  // throws on unknown
std::string to_string(Algo a);

/// Per-packet routing state carried through the network.
struct PacketRoute {
  std::uint32_t dst_terminal = 0;
  std::int32_t proxy_group = -1;   ///< Valiant intermediate group, -1 = none
  bool proxy_reached = false;      ///< set once the packet enters the proxy
  std::int32_t proxy_router = -1;  ///< intra-group Valiant intermediate router
  bool proxy_router_reached = false;
  bool decided = false;            ///< adaptive choice has been committed
  bool fault_detour = false;       ///< Valiant proxy forced by a dead link
  std::int32_t src_group = -1;     ///< group of the injecting terminal
};

/// One forwarding decision: the output port on the current router.
struct Decision {
  enum class Kind { kTerminal, kLocal, kGlobal };
  Kind kind = Kind::kTerminal;
  std::uint32_t port = 0;  ///< router port index (see Dragonfly port map)
};

/// Read-only view of router output congestion, supplied by the simulator.
/// depth() is in packets (queue length + in-service).
class QueueProbe {
 public:
  virtual ~QueueProbe() = default;
  virtual double depth(std::uint32_t router, std::uint32_t port) const = 0;
  /// True when the output port is unusable at `now` because of an injected
  /// fault (dead link, dead router on either end). Pure function of the
  /// fault plan — unlike depth(), safe to evaluate for any router from any
  /// partition. Default: a healthy network.
  virtual bool port_blocked(std::uint32_t /*router*/, std::uint32_t /*port*/,
                            double /*now*/) const {
    return false;
  }
  /// Fast gate: false keeps every fault check off the no-fault hot path.
  virtual bool faults_active() const { return false; }
};

/// A probe reporting empty queues everywhere (for tests / pure path math).
class NullProbe : public QueueProbe {
 public:
  double depth(std::uint32_t, std::uint32_t) const override { return 0.0; }
};

/// Tuning knobs for the adaptive decision.
struct AdaptiveParams {
  /// UGAL bias: minimal wins when q_min*H_min <= q_non*H_non + threshold.
  double threshold = 1.0;
  /// PAR divert trigger: divert when the queue toward the minimal next hop
  /// exceeds this depth and a less-loaded non-minimal candidate exists.
  double par_divert_depth = 4.0;
};

/// Tally of route decisions taken (adaptive-vs-minimal split etc.). The
/// planner only counts; the simulator publishes these to the observability
/// registry at the end of a run.
struct RouteStats {
  std::uint64_t minimal = 0;       ///< packets committed to the minimal path
  std::uint64_t nonminimal = 0;    ///< packets sent via a Valiant proxy
  std::uint64_t par_diverts = 0;   ///< in-flight PAR diversions (subset of
                                   ///< nonminimal)
  std::uint64_t fault_detours = 0; ///< Valiant proxies forced by dead global
                                   ///< links (counted apart from the
                                   ///< minimal/nonminimal commitment split)
  std::uint64_t steps = 0;         ///< route() calls (forwarding decisions)
};

class RoutePlanner {
 public:
  RoutePlanner(const topo::Dragonfly& net, Algo algo,
               AdaptiveParams params = {}, std::uint64_t seed = 1);

  Algo algo() const { return algo_; }
  const RouteStats& stats() const { return stats_; }

  /// Called when a packet is injected (state.dst_terminal must be set);
  /// fixes src_group and, for Valiant, the proxy group. This overload is
  /// const and takes the random stream and stats tally from the caller, so
  /// one planner can serve many threads (each supplies its own Rng/stats).
  /// `now` is the injection timestamp, used only for fault-liveness probes.
  void on_inject(PacketRoute& state, std::uint32_t src_terminal,
                 const QueueProbe& probe, Rng& rng, RouteStats& stats,
                 double now = 0.0) const;

  /// Next hop for a packet sitting in `router`. Mutates state (proxy
  /// progress, adaptive commitment). Const/thread-shareable as above.
  Decision route(PacketRoute& state, std::uint32_t router,
                 const QueueProbe& probe, Rng& rng, RouteStats& stats,
                 double now = 0.0) const;

  /// Convenience overloads using the planner's own RNG stream and stats
  /// (single-threaded callers and the routing unit tests).
  void on_inject(PacketRoute& state, std::uint32_t src_terminal,
                 const QueueProbe& probe) {
    on_inject(state, src_terminal, probe, rng_, stats_);
  }
  Decision route(PacketRoute& state, std::uint32_t router,
                 const QueueProbe& probe) {
    return route(state, router, probe, rng_, stats_);
  }

  /// Opts the planner into degraded-mode routing (fault detours around
  /// dead global links). Must be set before the simulation hands out
  /// credits: it raises max_link_hops() for minimal routing, because a
  /// detoured "minimal" packet takes a Valiant-length path.
  void set_fault_aware(bool aware) { fault_aware_ = aware; }
  bool fault_aware() const { return fault_aware_; }

  /// Upper bound on router-to-router link hops any packet can take; the
  /// simulator sizes its VC count from this (VC index = hop index gives an
  /// acyclic channel dependency graph, hence deadlock freedom).
  std::uint32_t max_link_hops() const;

 private:
  Decision minimal_step(std::uint32_t router, std::uint32_t dst_terminal,
                        std::int32_t target_group) const;
  std::int32_t pick_proxy(std::uint32_t src_group, std::uint32_t dst_group,
                          Rng& rng) const;
  std::int32_t pick_intermediate_router(std::uint32_t group,
                                        std::uint32_t src_router,
                                        std::uint32_t dst_router,
                                        Rng& rng) const;
  std::uint32_t first_hop_port(std::uint32_t router, std::uint32_t target_group,
                               std::uint32_t dst_terminal) const;

  /// Fault detour: when the global exit toward `target_group` is dead,
  /// commits the packet to a live Valiant proxy. Returns true if a detour
  /// (or none needed) was applied; false when no live exit exists.
  bool maybe_fault_detour(PacketRoute& state, std::uint32_t router,
                          std::uint32_t target_group, const QueueProbe& probe,
                          Rng& rng, RouteStats& stats, double now) const;

  const topo::Dragonfly& net_;
  Algo algo_;
  AdaptiveParams params_;
  Rng rng_;
  RouteStats stats_;
  bool fault_aware_ = false;
};

}  // namespace dv::routing
