#include "routing/routing.hpp"

#include <limits>

#include "util/str.hpp"

namespace dv::routing {

Algo algo_from_string(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "minimal") return Algo::kMinimal;
  if (n == "nonminimal" || n == "non_minimal" || n == "valiant")
    return Algo::kNonMinimal;
  if (n == "adaptive" || n == "ugal") return Algo::kAdaptive;
  if (n == "progressive_adaptive" || n == "progressiveadaptive" || n == "par")
    return Algo::kProgressiveAdaptive;
  throw Error("unknown routing algorithm: " + name);
}

std::string to_string(Algo a) {
  switch (a) {
    case Algo::kMinimal: return "minimal";
    case Algo::kNonMinimal: return "nonminimal";
    case Algo::kAdaptive: return "adaptive";
    case Algo::kProgressiveAdaptive: return "progressive_adaptive";
  }
  return "?";
}

RoutePlanner::RoutePlanner(const topo::Dragonfly& net, Algo algo,
                           AdaptiveParams params, std::uint64_t seed)
    : net_(net), algo_(algo), params_(params), rng_(seed, 0x70f2e5ULL) {}

std::uint32_t RoutePlanner::max_link_hops() const {
  switch (algo_) {
    // Fault-aware minimal routing can detour one leg via a Valiant proxy
    // (l-g-l-g-l plus one pre-detour local hop), so it needs the
    // non-minimal VC budget; the adaptive algorithms already have it.
    case Algo::kMinimal: return fault_aware_ ? 7 : 4;
    case Algo::kNonMinimal:
    case Algo::kAdaptive: return 7;
    case Algo::kProgressiveAdaptive: return 8;
  }
  return 8;
}

std::int32_t RoutePlanner::pick_intermediate_router(std::uint32_t group,
                                                    std::uint32_t src_router,
                                                    std::uint32_t dst_router,
                                                    Rng& rng) const {
  if (net_.routers_per_group() <= 2) return -1;
  for (;;) {
    const auto rank = static_cast<std::uint32_t>(
        rng.next_below(net_.routers_per_group()));
    const std::uint32_t r = net_.router_id(group, rank);
    if (r != src_router && r != dst_router) return static_cast<std::int32_t>(r);
  }
}

std::int32_t RoutePlanner::pick_proxy(std::uint32_t src_group,
                                      std::uint32_t dst_group,
                                      Rng& rng) const {
  if (net_.groups() <= 2) return -1;
  for (;;) {
    const auto g =
        static_cast<std::uint32_t>(rng.next_below(net_.groups()));
    if (g != src_group && g != dst_group) return static_cast<std::int32_t>(g);
  }
}

std::uint32_t RoutePlanner::first_hop_port(std::uint32_t router,
                                           std::uint32_t target_group,
                                           std::uint32_t dst_terminal) const {
  const std::uint32_t cur_group = net_.router_group(router);
  const std::uint32_t rank = net_.router_rank(router);
  if (target_group == cur_group) {
    const std::uint32_t dr = net_.terminal_router(dst_terminal);
    DV_CHECK(dr != router, "first_hop_port called at the destination router");
    return net_.local_port(rank, net_.router_rank(dr));
  }
  const topo::GlobalEnd exit = net_.group_exit(cur_group, target_group);
  if (exit.router == router) return net_.global_port(exit.channel);
  return net_.local_port(rank, net_.router_rank(exit.router));
}

Decision RoutePlanner::minimal_step(std::uint32_t router,
                                    std::uint32_t dst_terminal,
                                    std::int32_t target_group) const {
  const std::uint32_t dr = net_.terminal_router(dst_terminal);
  const std::uint32_t cur_group = net_.router_group(router);
  const auto tg = target_group >= 0 ? static_cast<std::uint32_t>(target_group)
                                    : net_.router_group(dr);
  if (tg != cur_group) {
    const topo::GlobalEnd exit = net_.group_exit(cur_group, tg);
    if (exit.router == router) {
      return {Decision::Kind::kGlobal, net_.global_port(exit.channel)};
    }
    return {Decision::Kind::kLocal,
            net_.local_port(net_.router_rank(router),
                            net_.router_rank(exit.router))};
  }
  // In the target group; if it's the destination group, head to dst router.
  DV_CHECK(net_.router_group(dr) == tg,
           "minimal_step target group is not the destination group");
  DV_CHECK(dr != router, "minimal_step called at the destination router");
  return {Decision::Kind::kLocal,
          net_.local_port(net_.router_rank(router), net_.router_rank(dr))};
}

bool RoutePlanner::maybe_fault_detour(PacketRoute& state, std::uint32_t router,
                                      std::uint32_t target_group,
                                      const QueueProbe& probe, Rng& rng,
                                      RouteStats& stats, double now) const {
  const std::uint32_t cur_group = net_.router_group(router);
  const topo::GlobalEnd exit = net_.group_exit(cur_group, target_group);
  if (!probe.port_blocked(exit.router, net_.global_port(exit.channel), now)) {
    return true;  // the minimal exit is alive; nothing to do
  }
  // The direct cable toward the target group is dead: commit to a Valiant
  // proxy whose own exit from this group is still up. Bounded draws keep
  // the decision cheap and deterministic (same rng stream, same order on
  // both engines); if every sampled proxy exit is dead too, give up and
  // let the simulator's retry/backoff path handle the packet.
  for (int tries = 0; tries < 8; ++tries) {
    const std::int32_t proxy = pick_proxy(cur_group, target_group, rng);
    if (proxy < 0) break;
    const topo::GlobalEnd pexit =
        net_.group_exit(cur_group, static_cast<std::uint32_t>(proxy));
    if (!probe.port_blocked(pexit.router, net_.global_port(pexit.channel),
                            now)) {
      state.proxy_group = proxy;
      state.fault_detour = true;
      state.decided = true;
      ++stats.fault_detours;
      return true;
    }
  }
  return false;
}

void RoutePlanner::on_inject(PacketRoute& state, std::uint32_t src_terminal,
                             const QueueProbe& probe, Rng& rng,
                             RouteStats& stats, double now) const {
  const std::uint32_t sr = net_.terminal_router(src_terminal);
  const std::uint32_t sg = net_.router_group(sr);
  const std::uint32_t dr = net_.terminal_router(state.dst_terminal);
  const std::uint32_t dg = net_.router_group(dr);
  state.src_group = static_cast<std::int32_t>(sg);

  if (sr == dr) {
    state.decided = true;  // same router: nothing to decide
    ++stats.minimal;
    return;
  }

  switch (algo_) {
    case Algo::kMinimal:
      state.decided = true;
      break;

    case Algo::kNonMinimal:
      if (dg != sg) {
        state.proxy_group = pick_proxy(sg, dg, rng);
      } else {
        state.proxy_router = pick_intermediate_router(sg, sr, dr, rng);
      }
      state.decided = true;
      break;

    case Algo::kAdaptive: {
      // UGAL-L: compare source-router queue toward the minimal first hop
      // against the queue toward a random Valiant candidate, weighted by
      // the respective path lengths.
      if (dg == sg) {
        // Standard UGAL routes intra-group traffic minimally: the Valiant
        // candidates considered are proxy *groups*, so a same-group
        // destination has no non-minimal alternative. (The light
        // non-minimal local traffic the paper observes under adaptive
        // routing comes from cross-group flows transiting proxy groups.)
        state.decided = true;
        break;
      }
      const std::int32_t proxy = pick_proxy(sg, dg, rng);
      if (proxy < 0) {
        state.decided = true;
        break;
      }
      const std::uint32_t min_port = first_hop_port(sr, dg, state.dst_terminal);
      const std::uint32_t non_port = first_hop_port(
          sr, static_cast<std::uint32_t>(proxy), state.dst_terminal);
      const double h_min =
          net_.minimal_router_hops(src_terminal, state.dst_terminal);
      const double h_non = h_min + 2.0;
      double q_min = probe.depth(sr, min_port);
      double q_non = probe.depth(sr, non_port);
      if (probe.faults_active()) {
        // A dead first hop counts as an infinite queue, so UGAL steers
        // around it; when both candidates are dead the comparison below
        // stays false and the packet goes minimal into the retry path.
        constexpr double kInf = std::numeric_limits<double>::infinity();
        if (probe.port_blocked(sr, min_port, now)) q_min = kInf;
        if (probe.port_blocked(sr, non_port, now)) q_non = kInf;
      }
      if (q_min * h_min > q_non * h_non + params_.threshold) {
        state.proxy_group = proxy;
      }
      state.decided = true;
      break;
    }

    case Algo::kProgressiveAdaptive:
      // Decision is deferred: route() re-evaluates at every router while
      // the packet is still in its source group.
      state.decided = (dg == sg);
      break;
  }
  if (state.decided) {
    if (state.proxy_group >= 0 || state.proxy_router >= 0) {
      ++stats.nonminimal;
    } else {
      ++stats.minimal;
    }
  }
}

Decision RoutePlanner::route(PacketRoute& state, std::uint32_t router,
                             const QueueProbe& probe, Rng& rng,
                             RouteStats& stats, double now) const {
  ++stats.steps;
  const std::uint32_t dr = net_.terminal_router(state.dst_terminal);
  if (router == dr) {
    return {Decision::Kind::kTerminal,
            net_.terminal_port(net_.terminal_slot(state.dst_terminal))};
  }

  const std::uint32_t cur_group = net_.router_group(router);
  const std::uint32_t dg = net_.router_group(dr);

  // Valiant progress: reaching the proxy group ends the first leg.
  if (state.proxy_group >= 0 && !state.proxy_reached &&
      cur_group == static_cast<std::uint32_t>(state.proxy_group)) {
    state.proxy_reached = true;
  }

  // Intra-group Valiant progress/first leg.
  if (state.proxy_router >= 0 && !state.proxy_router_reached) {
    if (router == static_cast<std::uint32_t>(state.proxy_router)) {
      state.proxy_router_reached = true;
    } else {
      return {Decision::Kind::kLocal,
              net_.local_port(net_.router_rank(router),
                              net_.router_rank(static_cast<std::uint32_t>(
                                  state.proxy_router)))};
    }
  }

  // Progressive adaptive: while still in the source group and uncommitted,
  // re-check whether the minimal next hop is congested and divert if a
  // less-loaded Valiant first hop exists (at most one diversion).
  if (algo_ == Algo::kProgressiveAdaptive && !state.decided &&
      cur_group == static_cast<std::uint32_t>(state.src_group) &&
      dg != cur_group && state.proxy_group < 0) {
    const std::uint32_t min_port =
        first_hop_port(router, dg, state.dst_terminal);
    double q_min = probe.depth(router, min_port);
    if (probe.faults_active() &&
        probe.port_blocked(router, min_port, now)) {
      q_min = std::numeric_limits<double>::infinity();
    }
    if (q_min > params_.par_divert_depth) {
      const std::int32_t proxy = pick_proxy(cur_group, dg, rng);
      if (proxy >= 0) {
        const std::uint32_t non_port = first_hop_port(
            router, static_cast<std::uint32_t>(proxy), state.dst_terminal);
        if (probe.depth(router, non_port) < q_min &&
            !(probe.faults_active() &&
              probe.port_blocked(router, non_port, now))) {
          state.proxy_group = proxy;
          state.decided = true;
          ++stats.nonminimal;
          ++stats.par_diverts;
        }
      }
    }
  }
  if (cur_group != static_cast<std::uint32_t>(state.src_group) &&
      !state.decided) {
    state.decided = true;  // PAR window closes once the packet leaves home
    ++stats.minimal;
  }

  // Degraded-mode fallback for every algorithm: when the global exit
  // toward the destination group is dead, commit to a Valiant detour
  // through a group whose exit cable is alive. At most one detour per
  // packet (guarded by proxy_group/proxy_router) — the VC/hop budget
  // admits exactly one extra Valiant leg.
  if (probe.faults_active() && state.proxy_group < 0 &&
      state.proxy_router < 0 && dg != cur_group) {
    maybe_fault_detour(state, router, dg, probe, rng, stats, now);
  }

  const std::int32_t target_group =
      (state.proxy_group >= 0 && !state.proxy_reached)
          ? state.proxy_group
          : static_cast<std::int32_t>(dg);
  return minimal_step(router, state.dst_terminal, target_group);
}

}  // namespace dv::routing
