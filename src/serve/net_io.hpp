// POSIX stream-socket plumbing for the serve daemon: address parsing
// ("unix:/path" | "tcp:PORT" | "tcp:HOST:PORT"), listen/connect helpers,
// and buffered newline-delimited frame I/O.
//
// Everything here is blocking; concurrency lives in the Server (one reader
// per connection, a bounded worker pool for execution). TCP sockets bind
// the loopback interface only — the daemon speaks a trusting protocol and
// is not meant to face a hostile network.
#pragma once

#include <cstddef>
#include <string>

namespace dv::serve {

/// A parsed listen/connect address.
struct Address {
  enum class Kind { kUnix, kTcp } kind = Kind::kUnix;
  std::string path;             ///< unix socket path
  std::string host = "127.0.0.1";
  int port = 0;

  /// Parses "unix:/path", "tcp:PORT", or "tcp:HOST:PORT"; throws dv::Error.
  static Address parse(const std::string& text);
  std::string describe() const;
};

/// Creates a bound + listening socket for `addr` (unlinking a stale unix
/// socket path first). Returns the listen fd; throws dv::Error on failure.
int listen_socket(const Address& addr, int backlog = 64);

/// Connects a blocking stream socket to `addr`; throws dv::Error.
int connect_socket(const Address& addr);

/// Closes `fd` if >= 0 (EINTR-safe, idempotent via the caller resetting).
void close_fd(int fd);

/// Wakes any thread blocked reading `fd` (shutdown(2) both directions).
void shutdown_fd(int fd);

/// Buffered reader/writer of newline-delimited frames over one socket.
/// Reads never return a partial frame; writes always flush the whole frame.
class FrameStream {
 public:
  /// Adopts `fd` (closed on destruction unless released). `max_frame`
  /// bounds one frame's length; longer input fails the read.
  explicit FrameStream(int fd, std::size_t max_frame = 8u << 20);
  ~FrameStream();

  FrameStream(const FrameStream&) = delete;
  FrameStream& operator=(const FrameStream&) = delete;

  int fd() const { return fd_; }

  /// Reads one '\n'-terminated frame (terminator stripped). Returns false
  /// on clean EOF at a frame boundary; throws dv::Error on I/O errors,
  /// oversized frames, or EOF mid-frame.
  bool read_frame(std::string& out);

  /// Writes `frame` plus a trailing '\n'; throws dv::Error on failure.
  void write_frame(const std::string& frame);

 private:
  int fd_ = -1;
  std::size_t max_frame_;
  std::string buf_;      // bytes read but not yet returned
  std::size_t pos_ = 0;  // consumed prefix of buf_
};

}  // namespace dv::serve
