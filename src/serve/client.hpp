// Blocking client for the serve daemon's wire protocol.
//
// One Client is one connection (one daemon-side Session). call() sends a
// request frame and waits for its response; protocol-level failures come
// back as RpcError carrying the structured error code, so callers (the
// `dragonviz client` subcommand, tests, bench_serve) can distinguish
// "overloaded" from "not_found" without string matching.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "json/json.hpp"
#include "serve/net_io.hpp"
#include "serve/protocol.hpp"

namespace dv::serve {

/// An error response from the daemon (`ok: false`), as an exception.
struct RpcError : Error {
  RpcError(std::string code_, const std::string& message)
      : Error(code_ + ": " + message), code(std::move(code_)) {}
  std::string code;  ///< wire string of ErrorCode (e.g. "not_found")
};

class Client {
 public:
  /// Connects to "unix:/path" or "tcp:[host:]port"; throws dv::Error.
  static Client connect(const std::string& address);

  /// Adopts an already-connected stream socket (e.g. a socketpair end).
  explicit Client(int fd, std::size_t max_frame = 8u << 20);

  /// Sends one request and waits for its response. Returns the "result"
  /// value of an ok response; throws RpcError on an error response and
  /// dv::Error on connection failures. `params` may be Null (omitted).
  json::Value call(const std::string& verb, json::Value params = {});

  /// The id the next request will use (exposed for tests).
  std::int64_t next_id() const { return next_id_; }

 private:
  std::unique_ptr<FrameStream> stream_;
  std::int64_t next_id_ = 1;
};

}  // namespace dv::serve
