#include "serve/protocol.hpp"

#include <cmath>

#include "util/common.hpp"

namespace dv::serve {

std::string to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownVerb: return "unknown_verb";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

Request Request::parse(const std::string& frame) {
  json::Value v;
  try {
    v = json::parse(frame);
  } catch (const Error& e) {
    throw Error(std::string("bad JSON frame: ") + e.what());
  }
  DV_REQUIRE(v.is_object(), "request frame must be a JSON object");
  Request req;
  if (const json::Value* id = v.find("id")) {
    DV_REQUIRE(id->is_number(), "request id must be a number");
    const double d = id->as_number();
    DV_REQUIRE(std::floor(d) == d, "request id must be an integer");
    req.id = static_cast<std::int64_t>(d);
  }
  const json::Value* verb = v.find("verb");
  DV_REQUIRE(verb != nullptr && verb->is_string(),
             "request needs a string \"verb\"");
  req.verb = verb->as_string();
  if (const json::Value* params = v.find("params")) {
    DV_REQUIRE(params->is_object(), "request \"params\" must be an object");
    req.params = *params;
  }
  return req;
}

std::string ok_frame(std::int64_t id, json::Value result) {
  json::Object o;
  o["id"] = json::Value(id);
  o["ok"] = json::Value(true);
  o["result"] = std::move(result);
  return json::dump(json::Value(std::move(o)));
}

std::string error_frame(std::int64_t id, ErrorCode code,
                        const std::string& message) {
  json::Object err;
  err["code"] = json::Value(to_string(code));
  err["message"] = json::Value(message);
  json::Object o;
  o["id"] = json::Value(id);
  o["ok"] = json::Value(false);
  o["error"] = json::Value(std::move(err));
  return json::dump(json::Value(std::move(o)));
}

}  // namespace dv::serve
