#include "serve/client.hpp"

namespace dv::serve {

Client Client::connect(const std::string& address) {
  return Client(connect_socket(Address::parse(address)));
}

Client::Client(int fd, std::size_t max_frame)
    : stream_(std::make_unique<FrameStream>(fd, max_frame)) {}

json::Value Client::call(const std::string& verb, json::Value params) {
  const std::int64_t id = next_id_++;
  json::Object req;
  req["id"] = json::Value(id);
  req["verb"] = json::Value(verb);
  if (!params.is_null()) {
    DV_REQUIRE(params.is_object(), "call params must be an object");
    req["params"] = std::move(params);
  }
  stream_->write_frame(json::dump(json::Value(std::move(req))));

  std::string frame;
  DV_REQUIRE(stream_->read_frame(frame),
             "connection closed while waiting for a response");
  const json::Value resp = json::parse(frame);
  DV_REQUIRE(resp.is_object(), "response is not a JSON object");
  // Responses come back in request order on a connection; a mismatched id
  // means the stream is corrupt, not that the response is pending.
  DV_REQUIRE(static_cast<std::int64_t>(resp.get_number("id", -1)) == id,
             "response id mismatch");
  if (resp.get_bool("ok", false)) return resp.at("result");
  const json::Value* err = resp.find("error");
  DV_REQUIRE(err != nullptr, "error response without an error object");
  throw RpcError(err->get_string("code", "internal"),
                 err->get_string("message", "unknown error"));
}

}  // namespace dv::serve
