#include "serve/net_io.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "util/common.hpp"
#include "util/str.hpp"

namespace dv::serve {

namespace {

std::string errno_text(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

Address Address::parse(const std::string& text) {
  Address a;
  if (starts_with(text, "unix:")) {
    a.kind = Kind::kUnix;
    a.path = text.substr(5);
    DV_REQUIRE(!a.path.empty(), "unix socket address needs a path");
    DV_REQUIRE(a.path.size() < sizeof(sockaddr_un{}.sun_path),
               "unix socket path too long: " + a.path);
    return a;
  }
  if (starts_with(text, "tcp:")) {
    a.kind = Kind::kTcp;
    const std::string rest = text.substr(4);
    const auto colon = rest.rfind(':');
    std::string port_text = rest;
    if (colon != std::string::npos) {
      a.host = rest.substr(0, colon);
      port_text = rest.substr(colon + 1);
    }
    DV_REQUIRE(!port_text.empty(), "tcp address needs a port");
    char* end = nullptr;
    const long p = std::strtol(port_text.c_str(), &end, 10);
    DV_REQUIRE(end && *end == '\0' && p > 0 && p < 65536,
               "bad tcp port: " + port_text);
    a.port = static_cast<int>(p);
    return a;
  }
  throw Error("address must be unix:/path or tcp:[host:]port, got: " + text);
}

std::string Address::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

int listen_socket(const Address& addr, int backlog) {
  if (addr.kind == Address::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DV_REQUIRE(fd >= 0, errno_text("socket(AF_UNIX)"));
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    ::unlink(addr.path.c_str());  // stale socket from a previous daemon
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string msg = errno_text("bind " + addr.describe());
      ::close(fd);
      throw Error(msg);
    }
    if (::listen(fd, backlog) != 0) {
      const std::string msg = errno_text("listen " + addr.describe());
      ::close(fd);
      throw Error(msg);
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DV_REQUIRE(fd >= 0, errno_text("socket(AF_INET)"));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    throw Error("bad listen host (IPv4 literal required): " + addr.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const std::string msg = errno_text("bind " + addr.describe());
    ::close(fd);
    throw Error(msg);
  }
  if (::listen(fd, backlog) != 0) {
    const std::string msg = errno_text("listen " + addr.describe());
    ::close(fd);
    throw Error(msg);
  }
  return fd;
}

int connect_socket(const Address& addr) {
  if (addr.kind == Address::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    DV_REQUIRE(fd >= 0, errno_text("socket(AF_UNIX)"));
    sockaddr_un sa{};
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, addr.path.c_str(), sizeof(sa.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const std::string msg = errno_text("connect " + addr.describe());
      ::close(fd);
      throw Error(msg);
    }
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  DV_REQUIRE(fd >= 0, errno_text("socket(AF_INET)"));
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(static_cast<std::uint16_t>(addr.port));
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    ::close(fd);
    throw Error("bad connect host (IPv4 literal required): " + addr.host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
    const std::string msg = errno_text("connect " + addr.describe());
    ::close(fd);
    throw Error(msg);
  }
  return fd;
}

void close_fd(int fd) {
  if (fd >= 0) ::close(fd);
}

void shutdown_fd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

// ------------------------------------------------------------- FrameStream

FrameStream::FrameStream(int fd, std::size_t max_frame)
    : fd_(fd), max_frame_(max_frame) {
  DV_REQUIRE(fd_ >= 0, "FrameStream needs a valid fd");
}

FrameStream::~FrameStream() { close_fd(fd_); }

bool FrameStream::read_frame(std::string& out) {
  for (;;) {
    const auto nl = buf_.find('\n', pos_);
    if (nl != std::string::npos) {
      DV_REQUIRE(nl - pos_ <= max_frame_,
                 "oversized frame (> " + std::to_string(max_frame_) +
                     " bytes)");
      out.assign(buf_, pos_, nl - pos_);
      pos_ = nl + 1;
      if (pos_ == buf_.size()) {
        buf_.clear();
        pos_ = 0;
      }
      return true;
    }
    // Compact before growing: everything before pos_ is consumed.
    if (pos_ > 0) {
      buf_.erase(0, pos_);
      pos_ = 0;
    }
    DV_REQUIRE(buf_.size() <= max_frame_,
               "oversized frame (> " + std::to_string(max_frame_) +
                   " bytes without newline)");
    char chunk[65536];
    ssize_t n;
    do {
      n = ::read(fd_, chunk, sizeof(chunk));
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw Error(errno_text("read"));
    if (n == 0) {
      DV_REQUIRE(buf_.empty(), "connection closed mid-frame");
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

void FrameStream::write_frame(const std::string& frame) {
  std::string line = frame;
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    ssize_t n;
    do {
      // MSG_NOSIGNAL: a peer that vanished mid-response must surface as an
      // error on this connection, not SIGPIPE the whole daemon.
      n = ::send(fd_, line.data() + off, line.size() - off, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) throw Error(errno_text("send"));
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace dv::serve
