// Wire protocol of the serve daemon (documented in docs/SERVE_PROTOCOL.md).
//
// Framing is one JSON object per '\n'-terminated line, both directions.
// A request names a verb and carries its parameters; a response echoes the
// request id and carries either a result object or a structured error:
//
//   -> {"id": 1, "verb": "render", "params": {"run": "amg", "spec": "..."}}
//   <- {"id": 1, "ok": true, "result": {"svg": "<svg ...>"}}
//   <- {"id": 1, "ok": false,
//       "error": {"code": "not_found", "message": "no such run: amg"}}
//
// The projection-spec language doubles as the message payload (the paper's
// "specification language" is serializable by construction), so a spec
// saved from any session replays verbatim against the daemon.
#pragma once

#include <cstdint>
#include <string>

#include "json/json.hpp"

namespace dv::serve {

/// Protocol revision; bumped on incompatible changes. Reported by `hello`.
inline constexpr int kProtocolVersion = 1;

/// Machine-readable error classes (stable wire strings, see to_string).
enum class ErrorCode {
  kParse,        ///< frame is not a JSON object / missing verb
  kBadRequest,   ///< verb known, params malformed or invalid
  kUnknownVerb,  ///< verb not in the dispatch table
  kNotFound,     ///< named run (or file) does not exist
  kOverloaded,   ///< admission control rejected the request (queue full)
  kInternal,     ///< unexpected server-side failure
};

std::string to_string(ErrorCode code);

/// A parsed request frame.
struct Request {
  std::int64_t id = 0;  ///< echoed in the response (0 when omitted)
  std::string verb;
  json::Value params;   ///< object; Null when omitted

  /// Parses one frame. Throws dv::Error (message suitable for a kParse /
  /// kBadRequest response) when the frame is not a request object.
  static Request parse(const std::string& frame);
};

/// Serialized response frames (compact JSON, no trailing newline).
std::string ok_frame(std::int64_t id, json::Value result);
std::string error_frame(std::int64_t id, ErrorCode code,
                        const std::string& message);

}  // namespace dv::serve
