// dragonviz serve — the long-lived multi-tenant query daemon.
//
// One process holds a RunCatalog of immutable shared DataSets and a
// sharded result cache; many clients connect over a unix or loopback TCP
// socket, each getting a Session (window/brush state + counters). Requests
// are newline-delimited JSON (serve/protocol.hpp, docs/SERVE_PROTOCOL.md).
//
// Concurrency model:
//  - one reader thread per connection (responses stay in request order on
//    a connection; clients may still pipeline),
//  - heavy verbs (load / render / report) execute on a bounded worker
//    pool; light verbs run on the connection thread,
//  - admission control: when the worker queue is full the request is
//    rejected immediately with the "overloaded" error code instead of
//    queueing without bound,
//  - identical in-flight computations are coalesced inside the shared
//    ResultCache (core/query.hpp), so a thundering herd of sessions
//    brushing the same view costs one computation.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace dv::serve {

struct ServeOptions {
  /// "unix:/path" or "tcp:[host:]port" (listen_and_serve only).
  std::string listen = "unix:/tmp/dragonviz.sock";
  std::size_t workers = 4;         ///< worker pool threads (heavy verbs)
  std::size_t max_queue = 64;      ///< admission bound on queued requests
  std::size_t max_sessions = 64;   ///< concurrent connections
  std::size_t cache_capacity = 1024;  ///< shared result-cache entries
  std::size_t cache_shards = 8;       ///< power of two
  std::size_t max_frame = 8u << 20;   ///< request frame size bound (bytes)
  /// When nonempty, this file is created (with the listen address as its
  /// content) once the daemon is accepting connections — lets scripts and
  /// CI wait for readiness without polling the socket.
  std::string ready_file;
};

/// One dispatch-table entry (protocol_verbs() drives the docs-coverage
/// test: every verb must be documented in docs/SERVE_PROTOCOL.md).
struct VerbInfo {
  std::string name;
  std::string summary;
  bool heavy = false;  ///< executes on the worker pool (admission applies)
};

/// The daemon's verb table, in documentation order.
const std::vector<VerbInfo>& protocol_verbs();

class Server {
 public:
  explicit Server(ServeOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const ServeOptions& options() const { return opts_; }
  RunCatalog& catalog() { return catalog_; }

  /// Serves one already-connected stream socket until the peer disconnects
  /// or sends `bye`/`shutdown`. Blocking; called from connection threads by
  /// listen_and_serve, and directly (e.g. on a socketpair end) by tests.
  /// Takes ownership of `fd`.
  void serve_fd(int fd);

  /// Binds opts.listen and accepts until stop()/`shutdown`. Returns 0 on a
  /// clean stop. Throws dv::Error when the socket cannot be created.
  int listen_and_serve();

  /// Requests a stop: wakes the accept loop and all connection readers.
  /// Async-signal-safe (writes one byte to an internal pipe).
  void stop();

  bool stopping() const { return stopping_.load(std::memory_order_relaxed); }

  /// The `stats` verb's payload; `session` adds the per-session block.
  json::Value stats_json(const Session* session) const;

 private:
  friend struct VerbTable;

  /// Thrown by verb handlers to select a protocol error code.
  struct VerbError : Error {
    VerbError(ErrorCode code_, const std::string& msg)
        : Error(msg), code(code_) {}
    ErrorCode code;
  };

  /// Outcome flags a handler can set on its connection.
  struct ConnControl {
    bool close = false;     ///< close the connection after responding
    bool shutdown = false;  ///< stop the whole daemon after responding
  };

  json::Value execute(Session& session, const Request& req, ConnControl& cc);
  json::Value run_on_pool(const std::function<json::Value()>& job);

  // Verb handlers (session-owned state is only touched by its own
  // connection thread; catalog/cache/stats are internally synchronized).
  json::Value verb_hello(Session& s, const json::Value& p);
  json::Value verb_ping(Session& s, const json::Value& p);
  json::Value verb_load(Session& s, const json::Value& p);
  json::Value verb_list(Session& s, const json::Value& p);
  json::Value verb_use(Session& s, const json::Value& p);
  json::Value verb_window(Session& s, const json::Value& p);
  json::Value verb_brush(Session& s, const json::Value& p);
  json::Value verb_render(Session& s, const json::Value& p);
  json::Value verb_report(Session& s, const json::Value& p);
  json::Value verb_stats(Session& s, const json::Value& p);

  std::shared_ptr<const LoadedRun> resolve_run(const Session& s,
                                               const json::Value& p) const;

  void record_latency(const std::string& verb, double seconds);

  ServeOptions opts_;
  RunCatalog catalog_;

  std::atomic<bool> stopping_{false};
  int stop_pipe_[2] = {-1, -1};  // [read, write]

  // Worker pool (bounded queue; admission control).
  std::vector<std::thread> workers_;
  mutable std::mutex pool_mu_;
  std::condition_variable pool_cv_;
  std::deque<std::function<void()>> pool_queue_;
  bool pool_stop_ = false;
  void worker_loop();

  // Session registry (teardown accounting + stats).
  mutable std::mutex sessions_mu_;
  std::map<std::uint64_t, const Session*> sessions_;
  std::atomic<std::uint64_t> next_session_id_{1};

  // Live connection fds, so stop() can wake blocked readers.
  mutable std::mutex conns_mu_;
  std::set<int> conn_fds_;

  // Request latency samples per verb (bounded ring; p50/p99 in `stats`).
  struct LatencyRing {
    std::vector<double> samples;  // seconds
    std::size_t next = 0;
    std::uint64_t count = 0;
  };
  mutable std::mutex lat_mu_;
  std::map<std::string, LatencyRing> latency_;

  std::atomic<std::uint64_t> total_requests_{0};
  std::atomic<std::uint64_t> total_errors_{0};
  std::chrono::steady_clock::time_point started_;
};

}  // namespace dv::serve
