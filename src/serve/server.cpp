#include "serve/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <fstream>
#include <future>
#include <limits>

#include "core/comparison.hpp"
#include "core/presets.hpp"
#include "metrics/dvr.hpp"
#include "core/projection.hpp"
#include "core/report.hpp"
#include "core/spec.hpp"
#include "obs/obs.hpp"
#include "serve/net_io.hpp"

namespace dv::serve {

namespace {

constexpr std::size_t kLatencyRingCap = 2048;

/// Nearest-rank percentile (p in [0, 1]) over a sample copy.
double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(v.size())));
  return v[rank == 0 ? 0 : rank - 1];
}

json::Value run_info(const LoadedRun& lr) {
  const metrics::RunMetrics& run = lr.data.run();
  json::Object o;
  o["name"] = json::Value(lr.name);
  o["source"] = json::Value(lr.source_path);
  o["workload"] = json::Value(run.workload);
  o["routing"] = json::Value(run.routing);
  o["placement"] = json::Value(run.placement);
  o["terminals"] = json::Value(run.groups * run.routers_per_group *
                               run.terminals_per_router);
  o["end_time"] = json::Value(run.end_time);
  o["sampled"] = json::Value(run.has_time_series());
  o["resident"] = json::Value(true);
  return json::Value(std::move(o));
}

json::Value pending_info(const RunCatalog::PendingInfo& p) {
  json::Object o;
  o["name"] = json::Value(p.name);
  o["source"] = json::Value(p.path);
  o["packed"] = json::Value(p.packed);
  o["resident"] = json::Value(false);
  return json::Value(std::move(o));
}

}  // namespace

const std::vector<VerbInfo>& protocol_verbs() {
  static const std::vector<VerbInfo> kVerbs = {
      {"hello", "protocol handshake: server identity, version, verb list",
       false},
      {"ping", "liveness probe", false},
      {"load",
       "load a run file (text or packed .dvr) into the shared catalog; "
       "params.lazy attaches it for on-demand materialization",
       true},
      {"list", "enumerate catalog runs, resident and attached", false},
      {"use", "set this session's default run", false},
      {"window", "set or clear this session's time window", false},
      {"brush", "set, replace, or clear this session's attribute brushes",
       false},
      {"render", "build a projection view and return its SVG", true},
      {"report", "build a standalone HTML analysis report", true},
      {"stats", "server, cache, latency, and per-session counters", false},
      {"bye", "close this connection", false},
      {"shutdown", "stop the whole daemon", false},
  };
  return kVerbs;
}

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)),
      catalog_(opts_.cache_capacity, opts_.cache_shards),
      started_(std::chrono::steady_clock::now()) {
  DV_REQUIRE(::pipe(stop_pipe_) == 0, "cannot create stop pipe");
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Server::~Server() {
  stop();
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    pool_stop_ = true;
  }
  pool_cv_.notify_all();
  for (auto& w : workers_) w.join();
  close_fd(stop_pipe_[0]);
  close_fd(stop_pipe_[1]);
}

void Server::stop() {
  stopping_.store(true, std::memory_order_relaxed);
  const char byte = 'x';
  // Best-effort wake of the accept loop; async-signal-safe.
  [[maybe_unused]] const auto n = ::write(stop_pipe_[1], &byte, 1);
}

void Server::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(pool_mu_);
      pool_cv_.wait(lock, [&] { return pool_stop_ || !pool_queue_.empty(); });
      if (pool_stop_ && pool_queue_.empty()) return;
      job = std::move(pool_queue_.front());
      pool_queue_.pop_front();
      DV_OBS_GAUGE_SET("serve.queue_depth",
                       static_cast<double>(pool_queue_.size()));
    }
    job();
  }
}

json::Value Server::run_on_pool(const std::function<json::Value()>& job) {
  if (workers_.empty()) return job();  // workers=0: execute inline
  auto task = std::make_shared<std::packaged_task<json::Value()>>(job);
  auto future = task->get_future();
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (pool_queue_.size() >= opts_.max_queue) {
      throw VerbError(ErrorCode::kOverloaded,
                      "request queue full (" +
                          std::to_string(opts_.max_queue) +
                          " pending); retry later");
    }
    pool_queue_.emplace_back([task] { (*task)(); });
    DV_OBS_GAUGE_SET("serve.queue_depth",
                     static_cast<double>(pool_queue_.size()));
  }
  pool_cv_.notify_one();
  return future.get();  // rethrows VerbError / Error from the handler
}

void Server::record_latency(const std::string& verb, double seconds) {
  std::lock_guard<std::mutex> lock(lat_mu_);
  LatencyRing& ring = latency_[verb];
  if (ring.samples.size() < kLatencyRingCap) {
    ring.samples.push_back(seconds);
  } else {
    ring.samples[ring.next] = seconds;
    ring.next = (ring.next + 1) % kLatencyRingCap;
  }
  ring.count += 1;
}

// ---------------------------------------------------------------------------
// Verb handlers.

json::Value Server::verb_hello(Session& s, const json::Value&) {
  json::Object o;
  o["server"] = json::Value("dragonviz serve");
  o["protocol"] = json::Value(kProtocolVersion);
  o["session"] = json::Value(s.id);
  json::Array verbs;
  for (const auto& v : protocol_verbs()) verbs.emplace_back(v.name);
  o["verbs"] = json::Value(std::move(verbs));
  return json::Value(std::move(o));
}

json::Value Server::verb_ping(Session&, const json::Value&) {
  json::Object o;
  o["pong"] = json::Value(true);
  return json::Value(std::move(o));
}

json::Value Server::verb_load(Session& s, const json::Value& p) {
  const std::string path = p.get_string("path", "");
  if (path.empty()) {
    throw VerbError(ErrorCode::kBadRequest, "load needs params.path");
  }
  if (p.get_bool("lazy", false)) {
    // Attach only: the parse + dataset build are deferred to the first
    // verb that actually touches the run.
    std::string name;
    try {
      name = catalog_.attach(path, p.get_string("name", ""));
    } catch (const Error& e) {
      throw VerbError(ErrorCode::kNotFound, e.what());
    }
    if (s.run_name.empty()) s.run_name = name;
    json::Object o;
    o["name"] = json::Value(name);
    o["source"] = json::Value(path);
    o["resident"] = json::Value(false);
    return json::Value(std::move(o));
  }
  std::shared_ptr<const LoadedRun> lr;
  try {
    lr = catalog_.load(path, p.get_string("name", ""));
  } catch (const Error& e) {
    throw VerbError(ErrorCode::kNotFound, e.what());
  }
  if (s.run_name.empty()) s.run_name = lr->name;
  return run_info(*lr);
}

json::Value Server::verb_list(Session&, const json::Value&) {
  json::Array runs;
  for (const auto& lr : catalog_.list()) runs.push_back(run_info(*lr));
  for (const auto& p : catalog_.list_pending()) {
    runs.push_back(pending_info(p));
  }
  json::Object o;
  o["runs"] = json::Value(std::move(runs));
  return json::Value(std::move(o));
}

json::Value Server::verb_use(Session& s, const json::Value& p) {
  const std::string name = p.get_string("run", "");
  if (name.empty()) {
    throw VerbError(ErrorCode::kBadRequest, "use needs params.run");
  }
  try {
    catalog_.get(name);  // existence check
  } catch (const Error& e) {
    throw VerbError(ErrorCode::kNotFound, e.what());
  }
  s.run_name = name;
  json::Object o;
  o["run"] = json::Value(name);
  return json::Value(std::move(o));
}

json::Value Server::verb_window(Session& s, const json::Value& p) {
  if (p.get_bool("clear", false)) {
    s.window = core::TimeWindow{};
  } else {
    core::TimeWindow w;
    w.t0 = p.get_number("t0", 0.0);
    w.t1 = p.get_number("t1", 0.0);
    if (!w.active()) {
      throw VerbError(ErrorCode::kBadRequest,
                      "window needs t0 < t1 (or clear: true)");
    }
    s.window = w;
  }
  json::Object o;
  if (s.window.active()) {
    o["window"] = json::Value(json::Array{json::Value(s.window.t0),
                                          json::Value(s.window.t1)});
  } else {
    o["window"] = json::Value(nullptr);
  }
  return json::Value(std::move(o));
}

json::Value Server::verb_brush(Session& s, const json::Value& p) {
  if (p.get_bool("clear", false)) {
    s.clear_brushes();
  } else {
    const std::string axis = p.get_string("axis", "");
    if (axis.empty()) {
      throw VerbError(ErrorCode::kBadRequest,
                      "brush needs params.axis (or clear: true)");
    }
    constexpr double inf = std::numeric_limits<double>::infinity();
    s.brush(axis, p.get_number("lo", -inf), p.get_number("hi", inf));
  }
  json::Array brushes;
  for (const auto& b : s.brushes) {
    json::Object bo;
    bo["axis"] = json::Value(b.attr);
    // Omit unbounded sides: infinities are not representable in JSON.
    if (std::isfinite(b.lo)) bo["lo"] = json::Value(b.lo);
    if (std::isfinite(b.hi)) bo["hi"] = json::Value(b.hi);
    brushes.emplace_back(std::move(bo));
  }
  json::Object o;
  o["brushes"] = json::Value(std::move(brushes));
  return json::Value(std::move(o));
}

std::shared_ptr<const LoadedRun> Server::resolve_run(
    const Session& s, const json::Value& p) const {
  const std::string name = p.get_string("run", s.run_name);
  if (name.empty()) {
    throw VerbError(ErrorCode::kBadRequest,
                    "no run selected: pass params.run, or load/use one");
  }
  try {
    return catalog_.get(name);
  } catch (const Error& e) {
    throw VerbError(ErrorCode::kNotFound, e.what());
  }
}

namespace {

/// Resolves params.spec — a preset reference ("preset:<name>"), a script
/// text (the Fig. 5 language), or a spec JSON object — into a spec. The
/// same resolution the CLI applies to --spec file contents, so a script
/// sent over the wire renders byte-identically to `dragonviz render`.
core::ProjectionSpec resolve_spec(const json::Value& p) {
  const json::Value* spec = p.find("spec");
  DV_REQUIRE(spec != nullptr, "missing params.spec");
  if (spec->is_string()) {
    const std::string& ref = spec->as_string();
    if (core::is_preset_ref(ref)) return core::preset_from_ref(ref);
    return core::ProjectionSpec::parse(ref);
  }
  return core::ProjectionSpec::from_json(*spec);
}

/// Window precedence mirrors the CLI: an explicit params.window overrides
/// the spec's own window; otherwise the session window fills in only when
/// the spec does not carry one.
void apply_window(const json::Value& p, const Session& s,
                  core::ProjectionSpec& spec) {
  if (const json::Value* w = p.find("window")) {
    DV_REQUIRE(w->is_array() && w->as_array().size() == 2,
               "params.window must be [t0, t1]");
    spec.window.t0 = w->as_array()[0].as_number();
    spec.window.t1 = w->as_array()[1].as_number();
    DV_REQUIRE(spec.window.active(), "params.window needs t0 < t1");
  } else if (!spec.window.active() && s.window.active()) {
    spec.window = s.window;
  }
}

/// Applies the session's brushes as AND-combined filters on every level
/// whose entity table carries the brushed attribute.
void apply_brushes(const Session& s, const core::DataSet& data,
                   core::ProjectionSpec& spec) {
  for (const auto& b : s.brushes) {
    for (auto& lvl : spec.levels) {
      if (data.table(lvl.entity).has_column(b.attr)) {
        lvl.filters.push_back(b);
      }
    }
  }
}

}  // namespace

json::Value Server::verb_render(Session& s, const json::Value& p) {
  const auto lr = resolve_run(s, p);
  auto spec = resolve_spec(p);
  apply_window(p, s, spec);
  apply_brushes(s, lr->data, spec);
  // Drill-down focus: params.focus is a list of [ring, item] pairs, applied
  // in order exactly like repeated --focus flags.
  if (const json::Value* focus = p.find("focus")) {
    DV_REQUIRE(focus->is_array(), "params.focus must be [[ring, item], ...]");
    for (const auto& f : focus->as_array()) {
      DV_REQUIRE(f.is_array() && f.as_array().size() == 2,
                 "each focus entry must be [ring, item]");
      const core::ProjectionView overview(lr->data, spec, nullptr,
                                          &lr->engine);
      spec = overview.drill_down(
          static_cast<std::size_t>(f.as_array()[0].as_number()),
          static_cast<std::size_t>(f.as_array()[1].as_number()));
    }
  }
  const core::ProjectionView view(lr->data, spec, nullptr, &lr->engine);
  const metrics::RunMetrics& run = lr->data.run();
  const std::string title =
      p.get_string("title", run.workload + " / " + run.routing);
  s.renders.fetch_add(1, std::memory_order_relaxed);
  json::Object o;
  o["run"] = json::Value(lr->name);
  o["rings"] = json::Value(view.rings().size());
  o["ribbons"] = json::Value(view.ribbons().size());
  o["svg"] = json::Value(view.to_svg(p.get_number("size", 800), title));
  return json::Value(std::move(o));
}

json::Value Server::verb_report(Session& s, const json::Value& p) {
  // Accept params.runs (list of names) or a single params.run / default.
  std::vector<std::shared_ptr<const LoadedRun>> runs;
  if (const json::Value* list = p.find("runs")) {
    DV_REQUIRE(list->is_array() && !list->as_array().empty(),
               "params.runs must be a non-empty array of run names");
    for (const auto& name : list->as_array()) {
      json::Object one;
      one["run"] = name;
      runs.push_back(resolve_run(s, json::Value(std::move(one))));
    }
  } else {
    runs.push_back(resolve_run(s, p));
  }
  auto spec = resolve_spec(p);
  apply_window(p, s, spec);

  core::ReportBuilder report(
      p.get_string("title", "dragonviz analysis report"));
  if (runs.size() == 1) {
    const LoadedRun& lr = *runs[0];
    apply_brushes(s, lr.data, spec);
    const metrics::RunMetrics& run = lr.data.run();
    report.run_summary(lr.data);
    const core::ProjectionView view(lr.data, spec, nullptr, &lr.engine);
    report.projection(view, run.workload + " / " + run.routing + " / " +
                                run.placement);
    if (p.get_bool("cache_stats", false)) {
      report.query_stats(lr.engine.stats());
    }
  } else {
    std::vector<const core::DataSet*> ptrs;
    ptrs.reserve(runs.size());
    for (const auto& lr : runs) ptrs.push_back(&lr->data);
    const core::ComparisonView cmp(ptrs, spec);
    report.comparison(cmp, "comparison under shared visual scales");
  }
  s.renders.fetch_add(1, std::memory_order_relaxed);
  json::Object o;
  json::Array names;
  for (const auto& lr : runs) names.emplace_back(lr->name);
  o["runs"] = json::Value(std::move(names));
  o["html"] = json::Value(report.html());
  return json::Value(std::move(o));
}

json::Value Server::stats_json(const Session* session) const {
  json::Object server;
  server["protocol"] = json::Value(kProtocolVersion);
  server["uptime_s"] = json::Value(
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count());
  server["requests"] =
      json::Value(total_requests_.load(std::memory_order_relaxed));
  server["errors"] =
      json::Value(total_errors_.load(std::memory_order_relaxed));
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    server["sessions"] = json::Value(sessions_.size());
    std::size_t brushes = 0;
    for (const auto& [id, s] : sessions_) {
      brushes += s->brush_count.load(std::memory_order_relaxed);
    }
    server["active_brushes"] = json::Value(brushes);
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    server["queue_depth"] = json::Value(pool_queue_.size());
  }
  server["workers"] = json::Value(opts_.workers);
  server["max_queue"] = json::Value(opts_.max_queue);
  server["runs"] = json::Value(catalog_.size());
  server["runs_resident"] = json::Value(catalog_.resident());
  server["runs_pending"] = json::Value(catalog_.pending());

  // Packed-store reader counters: how much of the mapped .dvr bytes
  // queries actually touched, and how many chunks zone maps pruned.
  const metrics::DvrStats ds = metrics::dvr_stats();
  json::Object store;
  store["dvr_opens"] = json::Value(ds.opens);
  store["dvr_bytes_mapped"] = json::Value(ds.bytes_mapped);
  store["dvr_chunks_read"] = json::Value(ds.chunks_read);
  store["dvr_chunk_bytes_read"] = json::Value(ds.chunk_bytes_read);
  store["dvr_chunks_pruned"] = json::Value(ds.chunks_pruned);

  const core::QueryStats cs = catalog_.cache()->stats();
  json::Object cache;
  cache["hits"] = json::Value(cs.hits);
  cache["misses"] = json::Value(cs.misses);
  cache["coalesced"] = json::Value(cs.coalesced);
  cache["evictions"] = json::Value(cs.evictions);
  cache["entries"] = json::Value(cs.entries);
  cache["slab_builds"] = json::Value(cs.slab_builds);
  cache["slab_reduces"] = json::Value(cs.slab_reduces);
  const double lookups = static_cast<double>(cs.hits + cs.misses);
  cache["hit_rate"] =
      json::Value(lookups > 0 ? static_cast<double>(cs.hits) / lookups : 0.0);

  json::Object latency;
  {
    std::lock_guard<std::mutex> lock(lat_mu_);
    for (const auto& [verb, ring] : latency_) {
      json::Object v;
      v["count"] = json::Value(ring.count);
      v["p50_ms"] = json::Value(percentile(ring.samples, 0.50) * 1e3);
      v["p99_ms"] = json::Value(percentile(ring.samples, 0.99) * 1e3);
      latency[verb] = json::Value(std::move(v));
    }
  }

  json::Object o;
  o["server"] = json::Value(std::move(server));
  o["store"] = json::Value(std::move(store));
  o["cache"] = json::Value(std::move(cache));
  o["latency_ms"] = json::Value(std::move(latency));
  if (session != nullptr) {
    json::Object s;
    s["id"] = json::Value(session->id);
    s["run"] = json::Value(session->run_name);
    s["requests"] =
        json::Value(session->requests.load(std::memory_order_relaxed));
    s["renders"] =
        json::Value(session->renders.load(std::memory_order_relaxed));
    s["errors"] =
        json::Value(session->errors.load(std::memory_order_relaxed));
    s["brushes"] = json::Value(session->brushes.size());
    if (session->window.active()) {
      s["window"] = json::Value(json::Array{json::Value(session->window.t0),
                                            json::Value(session->window.t1)});
    } else {
      s["window"] = json::Value(nullptr);
    }
    o["session"] = json::Value(std::move(s));
  }
  return json::Value(std::move(o));
}

json::Value Server::verb_stats(Session& s, const json::Value&) {
  return stats_json(&s);
}

// ---------------------------------------------------------------------------
// Dispatch.

json::Value Server::execute(Session& session, const Request& req,
                            ConnControl& cc) {
  // Handlers see an object even when params was omitted.
  const json::Value params =
      req.params.is_object() ? req.params : json::Value(json::Object{});

  using Handler = json::Value (Server::*)(Session&, const json::Value&);
  struct Entry {
    Handler handler;
    bool heavy;
  };
  static const std::map<std::string, Entry> kDispatch = {
      {"hello", {&Server::verb_hello, false}},
      {"ping", {&Server::verb_ping, false}},
      {"load", {&Server::verb_load, true}},
      {"list", {&Server::verb_list, false}},
      {"use", {&Server::verb_use, false}},
      {"window", {&Server::verb_window, false}},
      {"brush", {&Server::verb_brush, false}},
      {"render", {&Server::verb_render, true}},
      {"report", {&Server::verb_report, true}},
      {"stats", {&Server::verb_stats, false}},
  };

  if (req.verb == "bye") {
    cc.close = true;
    json::Object o;
    o["bye"] = json::Value(true);
    return json::Value(std::move(o));
  }
  if (req.verb == "shutdown") {
    cc.close = true;
    cc.shutdown = true;
    json::Object o;
    o["stopping"] = json::Value(true);
    return json::Value(std::move(o));
  }

  const auto it = kDispatch.find(req.verb);
  if (it == kDispatch.end()) {
    throw VerbError(ErrorCode::kUnknownVerb,
                    "unknown verb: " + req.verb +
                        " (see docs/SERVE_PROTOCOL.md)");
  }
  const Entry& entry = it->second;
  try {
    if (entry.heavy) {
      return run_on_pool(
          [&] { return (this->*entry.handler)(session, params); });
    }
    return (this->*entry.handler)(session, params);
  } catch (const VerbError&) {
    throw;
  } catch (const Error& e) {
    throw VerbError(ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    throw VerbError(ErrorCode::kInternal, e.what());
  }
}

void Server::serve_fd(int fd) {
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.insert(fd);
  }
  Session session;
  session.id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[session.id] = &session;
    DV_OBS_GAUGE_SET("serve.sessions", static_cast<double>(sessions_.size()));
  }

  try {
    FrameStream stream(fd, opts_.max_frame);  // owns fd
    std::string frame;
    bool done = false;
    while (!done && !stopping() && stream.read_frame(frame)) {
      const auto start = std::chrono::steady_clock::now();
      total_requests_.fetch_add(1, std::memory_order_relaxed);
      DV_OBS_COUNT("serve.requests", 1);
      std::int64_t id = 0;
      std::string verb = "(invalid)";
      std::string reply;
      ConnControl cc;
      try {
        const Request req = Request::parse(frame);
        id = req.id;
        verb = req.verb;
        session.requests.fetch_add(1, std::memory_order_relaxed);
        reply = ok_frame(id, execute(session, req, cc));
      } catch (const VerbError& e) {
        session.errors.fetch_add(1, std::memory_order_relaxed);
        total_errors_.fetch_add(1, std::memory_order_relaxed);
        DV_OBS_COUNT("serve.errors", 1);
        reply = error_frame(id, e.code, e.what());
      } catch (const Error& e) {
        // Request::parse failures land here: the frame was not a request.
        session.errors.fetch_add(1, std::memory_order_relaxed);
        total_errors_.fetch_add(1, std::memory_order_relaxed);
        DV_OBS_COUNT("serve.errors", 1);
        reply = error_frame(id, ErrorCode::kParse, e.what());
      }
      record_latency(verb, std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
      stream.write_frame(reply);
      if (cc.shutdown) stop();
      if (cc.close) done = true;
    }
  } catch (const Error&) {
    // Connection-level I/O failure (mid-frame EOF, oversized frame, broken
    // pipe): nothing sensible can be sent; drop the connection.
  }

  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(session.id);
    DV_OBS_GAUGE_SET("serve.sessions", static_cast<double>(sessions_.size()));
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conn_fds_.erase(fd);
  }
}

int Server::listen_and_serve() {
  const Address addr = Address::parse(opts_.listen);
  const int lfd = listen_socket(addr);
  if (!opts_.ready_file.empty()) {
    std::ofstream os(opts_.ready_file, std::ios::binary | std::ios::trunc);
    os << addr.describe() << "\n";
  }

  std::vector<std::thread> conns;
  while (!stopping()) {
    pollfd pfds[2] = {{lfd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(pfds, 2, -1);
    if (rc < 0) continue;  // EINTR
    if (pfds[1].revents != 0) break;
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int cfd = ::accept(lfd, nullptr, nullptr);
    if (cfd < 0) continue;
    std::size_t active;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      active = sessions_.size();
    }
    if (active >= opts_.max_sessions) {
      // Refuse politely: one error frame, then close.
      try {
        FrameStream stream(cfd, opts_.max_frame);
        stream.write_frame(error_frame(
            0, ErrorCode::kOverloaded,
            "session limit reached (" + std::to_string(opts_.max_sessions) +
                ")"));
      } catch (const Error&) {
      }
      continue;
    }
    conns.emplace_back([this, cfd] { serve_fd(cfd); });
  }

  close_fd(lfd);
  if (addr.kind == Address::Kind::kUnix) ::unlink(addr.path.c_str());
  {
    // Wake connection readers blocked in read_frame.
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (const int fd : conn_fds_) shutdown_fd(fd);
  }
  for (auto& t : conns) t.join();
  if (!opts_.ready_file.empty()) ::unlink(opts_.ready_file.c_str());
  return 0;
}

}  // namespace dv::serve
