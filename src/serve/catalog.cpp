#include "serve/catalog.hpp"

#include "metrics/dvr.hpp"
#include "metrics/run_metrics.hpp"
#include "obs/obs.hpp"

namespace dv::serve {

namespace {

std::string derive_name(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  for (const char* ext : {".json", ".dvr"}) {
    const std::size_t len = std::string(ext).size();
    if (base.size() > len && base.substr(base.size() - len) == ext) {
      base = base.substr(0, base.size() - len);
      break;
    }
  }
  DV_REQUIRE(!base.empty(), "cannot derive a run name from: " + path);
  return base;
}

}  // namespace

std::pair<std::string, std::string> split_run_ref(const std::string& ref) {
  const auto eq = ref.find('=');
  if (eq == std::string::npos) return {derive_name(ref), ref};
  std::string name = ref.substr(0, eq);
  std::string path = ref.substr(eq + 1);
  DV_REQUIRE(!name.empty() && !path.empty(),
             "run reference must be path or name=path, got: " + ref);
  return {std::move(name), std::move(path)};
}

RunCatalog::RunCatalog(std::size_t cache_capacity, std::size_t shards)
    : cache_(std::make_shared<core::ResultCache>(cache_capacity, shards,
                                                 "serve.cache")) {}

std::shared_ptr<const LoadedRun> RunCatalog::load(const std::string& path,
                                                  std::string name) {
  if (name.empty()) name = derive_name(path);
  // Parse + dataset build happen outside the catalog lock: loading a big
  // run must not stall sessions querying already-loaded ones.
  const metrics::RunMetrics run = metrics::RunMetrics::load(path);
  auto loaded = std::make_shared<const LoadedRun>(
      name, path, core::DataSet(run), cache_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    runs_[name] = loaded;
    pending_.erase(name);  // an eager load supersedes any attachment
    DV_OBS_GAUGE_SET("serve.catalog.runs", static_cast<double>(runs_.size()));
  }
  DV_OBS_COUNT("serve.catalog.loads", 1);
  return loaded;
}

std::string RunCatalog::attach(const std::string& path, std::string name) {
  if (name.empty()) name = derive_name(path);
  auto p = std::make_shared<PendingRun>();
  p->path = path;
  // The 4-byte magic sniff is the only file touch an attach performs.
  p->packed = metrics::is_dvr_file(path);
  {
    std::lock_guard<std::mutex> lock(mu_);
    runs_.erase(name);  // a re-attach supersedes a resident run
    pending_[name] = std::move(p);
  }
  DV_OBS_COUNT("serve.catalog.attaches", 1);
  return name;
}

std::shared_ptr<const LoadedRun> RunCatalog::get(
    const std::string& name) const {
  std::shared_ptr<PendingRun> p;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = runs_.find(name);
    if (it != runs_.end()) return it->second;
    const auto pit = pending_.find(name);
    DV_REQUIRE(pit != pending_.end(), "no such run: " + name);
    p = pit->second;
  }
  // Materialize outside the catalog lock (sessions querying resident runs
  // must not stall behind a parse); the per-entry mutex coalesces
  // concurrent getters of the same pending run onto one load.
  std::lock_guard<std::mutex> entry_lock(p->mu);
  if (p->done == nullptr) {
    const metrics::RunMetrics run = metrics::RunMetrics::load(p->path);
    p->done = std::make_shared<const LoadedRun>(name, p->path,
                                                core::DataSet(run), cache_);
    DV_OBS_COUNT("serve.catalog.lazy_loads", 1);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Promote unless the entry was unloaded or replaced while we parsed.
    const auto pit = pending_.find(name);
    if (pit != pending_.end() && pit->second == p) {
      runs_[name] = p->done;
      pending_.erase(pit);
      DV_OBS_GAUGE_SET("serve.catalog.runs",
                       static_cast<double>(runs_.size()));
    }
  }
  return p->done;
}

void RunCatalog::unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = runs_.find(name);
  if (it != runs_.end()) {
    runs_.erase(it);
    DV_OBS_GAUGE_SET("serve.catalog.runs", static_cast<double>(runs_.size()));
    return;
  }
  const auto pit = pending_.find(name);
  DV_REQUIRE(pit != pending_.end(), "no such run: " + name);
  pending_.erase(pit);
}

std::size_t RunCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size() + pending_.size();
}

std::size_t RunCatalog::resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

std::size_t RunCatalog::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

std::vector<RunCatalog::PendingInfo> RunCatalog::list_pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingInfo> out;
  out.reserve(pending_.size());
  for (const auto& [name, p] : pending_) {
    out.push_back(PendingInfo{name, p->path, p->packed});
  }
  return out;
}

std::vector<std::shared_ptr<const LoadedRun>> RunCatalog::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const LoadedRun>> out;
  out.reserve(runs_.size());
  for (const auto& [name, run] : runs_) out.push_back(run);
  return out;
}

}  // namespace dv::serve
