#include "serve/catalog.hpp"

#include "metrics/run_metrics.hpp"
#include "obs/obs.hpp"

namespace dv::serve {

namespace {

std::string derive_name(const std::string& path) {
  const auto slash = path.find_last_of('/');
  std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  if (base.size() > 5 && base.substr(base.size() - 5) == ".json") {
    base = base.substr(0, base.size() - 5);
  }
  DV_REQUIRE(!base.empty(), "cannot derive a run name from: " + path);
  return base;
}

}  // namespace

std::pair<std::string, std::string> split_run_ref(const std::string& ref) {
  const auto eq = ref.find('=');
  if (eq == std::string::npos) return {derive_name(ref), ref};
  std::string name = ref.substr(0, eq);
  std::string path = ref.substr(eq + 1);
  DV_REQUIRE(!name.empty() && !path.empty(),
             "run reference must be path or name=path, got: " + ref);
  return {std::move(name), std::move(path)};
}

RunCatalog::RunCatalog(std::size_t cache_capacity, std::size_t shards)
    : cache_(std::make_shared<core::ResultCache>(cache_capacity, shards,
                                                 "serve.cache")) {}

std::shared_ptr<const LoadedRun> RunCatalog::load(const std::string& path,
                                                  std::string name) {
  if (name.empty()) name = derive_name(path);
  // Parse + dataset build happen outside the catalog lock: loading a big
  // run must not stall sessions querying already-loaded ones.
  const metrics::RunMetrics run = metrics::RunMetrics::load(path);
  auto loaded = std::make_shared<const LoadedRun>(
      name, path, core::DataSet(run), cache_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    runs_[name] = loaded;
    DV_OBS_GAUGE_SET("serve.catalog.runs", static_cast<double>(runs_.size()));
  }
  DV_OBS_COUNT("serve.catalog.loads", 1);
  return loaded;
}

std::shared_ptr<const LoadedRun> RunCatalog::get(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = runs_.find(name);
  DV_REQUIRE(it != runs_.end(), "no such run: " + name);
  return it->second;
}

void RunCatalog::unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = runs_.find(name);
  DV_REQUIRE(it != runs_.end(), "no such run: " + name);
  runs_.erase(it);
  DV_OBS_GAUGE_SET("serve.catalog.runs", static_cast<double>(runs_.size()));
}

std::size_t RunCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_.size();
}

std::vector<std::shared_ptr<const LoadedRun>> RunCatalog::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<const LoadedRun>> out;
  out.reserve(runs_.size());
  for (const auto& [name, run] : runs_) out.push_back(run);
  return out;
}

}  // namespace dv::serve
