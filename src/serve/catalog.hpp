// RunCatalog — the daemon-resident "data management" tier.
//
// The catalog owns every loaded run as an immutable shared LoadedRun: the
// RunMetrics-derived DataSet, plus one QueryEngine over it. All engines
// share ONE sharded ResultCache (keys embed each dataset's uid), so a view
// any session computes — windowed tables, aggregations, group slabs,
// reductions — is a cache hit for every other session brushing the same
// run: the cross-session view indexing that VAID / Collaboration Spotting
// motivate (PAPERS.md), keyed by the canonical spec hashes of PR 3.
//
// LoadedRuns are handed out as shared_ptr<const LoadedRun>; a `load` that
// replaces a name cannot invalidate a session mid-query.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/datatable.hpp"
#include "core/query.hpp"

namespace dv::serve {

/// One run resident in the daemon: immutable dataset + its query engine.
struct LoadedRun {
  std::string name;
  std::string source_path;
  core::DataSet data;
  /// Engine over `data`, computing through the catalog's shared cache.
  /// QueryEngine is internally synchronized; many sessions use it at once.
  mutable core::QueryEngine engine;

  LoadedRun(std::string name_, std::string path_, core::DataSet data_,
            std::shared_ptr<core::ResultCache> cache)
      : name(std::move(name_)),
        source_path(std::move(path_)),
        data(std::move(data_)),
        engine(data, std::move(cache)) {}
};

class RunCatalog {
 public:
  /// `cache_capacity` bounds cached results across every run; `shards`
  /// (power of two) bounds lock contention under concurrent sessions.
  explicit RunCatalog(std::size_t cache_capacity = 1024,
                      std::size_t shards = 8);

  /// Loads a run file (text JSON or packed .dvr — RunMetrics::load sniffs
  /// the magic) under `name` (basename of `path`, minus a trailing
  /// ".json"/".dvr", when empty). Replaces an existing entry with the same
  /// name; in-flight references to the old run stay valid. Returns the
  /// loaded run. Throws dv::Error when the file is unreadable.
  std::shared_ptr<const LoadedRun> load(const std::string& path,
                                        std::string name = "");

  /// Registers a run file WITHOUT materializing it: only the name, path
  /// and format sniff are recorded; parsing and the DataSet build happen
  /// on the first get(). A sweep-scale catalog attaches hundreds of runs
  /// in milliseconds and pays load cost only for runs sessions touch —
  /// the out-of-core half of the packed-store design. Returns the derived
  /// name.
  std::string attach(const std::string& path, std::string name = "");

  /// Looks up a run, materializing it first if it was only attached.
  /// Concurrent getters of the same pending run coalesce onto a single
  /// load. Throws dv::Error when `name` is unknown.
  std::shared_ptr<const LoadedRun> get(const std::string& name) const;

  /// Drops `name` — resident or attached — from the catalog (sessions
  /// holding a resident run keep it alive).
  void unload(const std::string& name);

  /// Runs the catalog knows: resident + still-pending attachments.
  std::size_t size() const;
  /// Runs materialized in memory.
  std::size_t resident() const;
  /// Attached runs not yet materialized.
  std::size_t pending() const;
  /// Resident runs in name order (does not materialize attachments).
  std::vector<std::shared_ptr<const LoadedRun>> list() const;
  /// Name/path/packed of every still-pending attachment, in name order.
  struct PendingInfo {
    std::string name;
    std::string path;
    bool packed = false;
  };
  std::vector<PendingInfo> list_pending() const;

  const std::shared_ptr<core::ResultCache>& cache() const { return cache_; }

 private:
  struct PendingRun {
    std::string path;
    bool packed = false;
    std::mutex mu;  ///< serializes materialization of this entry
    std::shared_ptr<const LoadedRun> done;
  };

  std::shared_ptr<core::ResultCache> cache_;
  mutable std::mutex mu_;
  mutable std::map<std::string, std::shared_ptr<const LoadedRun>> runs_;
  mutable std::map<std::string, std::shared_ptr<PendingRun>> pending_;
};

/// "name=path" → {name, path}; bare "path" derives the name from the
/// basename (minus a trailing ".json"). Shared by the CLI and the verbs.
std::pair<std::string, std::string> split_run_ref(const std::string& ref);

}  // namespace dv::serve
