// RunCatalog — the daemon-resident "data management" tier.
//
// The catalog owns every loaded run as an immutable shared LoadedRun: the
// RunMetrics-derived DataSet, plus one QueryEngine over it. All engines
// share ONE sharded ResultCache (keys embed each dataset's uid), so a view
// any session computes — windowed tables, aggregations, group slabs,
// reductions — is a cache hit for every other session brushing the same
// run: the cross-session view indexing that VAID / Collaboration Spotting
// motivate (PAPERS.md), keyed by the canonical spec hashes of PR 3.
//
// LoadedRuns are handed out as shared_ptr<const LoadedRun>; a `load` that
// replaces a name cannot invalidate a session mid-query.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/datatable.hpp"
#include "core/query.hpp"

namespace dv::serve {

/// One run resident in the daemon: immutable dataset + its query engine.
struct LoadedRun {
  std::string name;
  std::string source_path;
  core::DataSet data;
  /// Engine over `data`, computing through the catalog's shared cache.
  /// QueryEngine is internally synchronized; many sessions use it at once.
  mutable core::QueryEngine engine;

  LoadedRun(std::string name_, std::string path_, core::DataSet data_,
            std::shared_ptr<core::ResultCache> cache)
      : name(std::move(name_)),
        source_path(std::move(path_)),
        data(std::move(data_)),
        engine(data, std::move(cache)) {}
};

class RunCatalog {
 public:
  /// `cache_capacity` bounds cached results across every run; `shards`
  /// (power of two) bounds lock contention under concurrent sessions.
  explicit RunCatalog(std::size_t cache_capacity = 1024,
                      std::size_t shards = 8);

  /// Loads a RunMetrics JSON file under `name` (basename of `path`, minus
  /// a trailing ".json", when empty). Replaces an existing entry with the
  /// same name; in-flight references to the old run stay valid. Returns
  /// the loaded run. Throws dv::Error when the file is unreadable.
  std::shared_ptr<const LoadedRun> load(const std::string& path,
                                        std::string name = "");

  /// Looks up a loaded run; throws dv::Error when `name` is unknown.
  std::shared_ptr<const LoadedRun> get(const std::string& name) const;

  /// Drops `name` from the catalog (sessions holding it keep it alive).
  void unload(const std::string& name);

  std::size_t size() const;
  /// Loaded runs in name order.
  std::vector<std::shared_ptr<const LoadedRun>> list() const;

  const std::shared_ptr<core::ResultCache>& cache() const { return cache_; }

 private:
  std::shared_ptr<core::ResultCache> cache_;
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const LoadedRun>> runs_;
};

/// "name=path" → {name, path}; bare "path" derives the name from the
/// basename (minus a trailing ".json"). Shared by the CLI and the verbs.
std::pair<std::string, std::string> split_run_ref(const std::string& ref);

}  // namespace dv::serve
