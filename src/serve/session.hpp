// Per-connection session state.
//
// A Session is created when a client connects and destroyed when the
// connection closes; it carries the interactive state of the paper's
// linked-view loop — the selected time window, the active attribute
// brushes, and a default run — plus per-session request counters surfaced
// by the `stats` verb. Sessions are owned by their connection thread;
// only the Server's registry (for counting/teardown) is shared.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/datatable.hpp"

namespace dv::serve {

struct Session {
  std::uint64_t id = 0;

  /// Default run for verbs that omit "run" (set by `use`, or by the first
  /// successful `load` on this connection).
  std::string run_name;

  /// Time window applied to renders/reports that don't carry their own
  /// (half-open [t0, t1) ns; inactive when !window.active()).
  core::TimeWindow window;

  /// Attribute brushes, applied as AND-combined spec filters to every
  /// projection level whose entity carries the brushed attribute.
  /// Re-brushing an axis replaces its range. Owner-thread only; other
  /// threads (the aggregate `stats` block) read brush_count instead.
  std::vector<core::AttrFilter> brushes;

  // Per-session counters. Atomic because any session's `stats` verb sums
  // them across the registry while owner threads update their own.
  std::atomic<std::uint64_t> requests{0};  ///< frames dispatched
  std::atomic<std::uint64_t> renders{0};   ///< render/report verbs executed
  std::atomic<std::uint64_t> errors{0};    ///< error responses sent
  std::atomic<std::size_t> brush_count{0};  ///< == brushes.size()

  void brush(const std::string& axis, double lo, double hi) {
    for (auto& b : brushes) {
      if (b.attr == axis) {
        b.lo = lo;
        b.hi = hi;
        return;
      }
    }
    core::AttrFilter f;
    f.attr = axis;
    f.lo = lo;
    f.hi = hi;
    brushes.push_back(f);
    brush_count.store(brushes.size(), std::memory_order_relaxed);
  }

  void clear_brushes() {
    brushes.clear();
    brush_count.store(0, std::memory_order_relaxed);
  }
};

}  // namespace dv::serve
