// Fat-tree packet simulator — the paper's future-work extension.
//
// "In future work, we plan to extend our system to support analysis and
// exploration of other network topologies, such as Fat Tree and Slim Fly."
// (Sec. VI). This simulator runs the same message workloads on a 3-level
// k-ary fat tree with ECMP up-routing and emits the *same* RunMetrics
// schema as the Dragonfly simulator, mapped so the whole VA layer (entity
// tables, aggregation, projection views) works unchanged:
//
//   group_id      <- pod            routers_per_group <- switches per pod
//   router        <- edge/agg switch (pod-major: edge 0..k/2-1, agg k/2..)
//   local links   <- edge <-> aggregation links (intra-pod, both dirs)
//   global links  <- aggregation <-> core links (inter-pod, both dirs;
//                    core switches appear as a trailing pseudo-pod)
//   terminals     <- hosts
//
// Model: store-and-forward output-queued switches; saturation is the time
// a port's backlog holds at least `queue_packets` packets (the same
// congestion signal as the Dragonfly model's backlog term). ECMP picks
// up-links by deterministic flow hash.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "netsim/network.hpp"
#include "pdes/engine.hpp"
#include "topology/fattree.hpp"

namespace dv::netsim {

struct FatTreeParams {
  double host_bandwidth = 5.25;   // GB/s == bytes/ns
  double link_bandwidth = 5.25;
  double host_latency = 30.0;     // ns
  double link_latency = 100.0;
  double switch_delay = 50.0;
  std::uint32_t packet_size = 2048;
  std::uint32_t queue_packets = 8;  ///< backlog threshold for saturation
  std::uint64_t event_budget = 0;

  void validate() const;
};

class FatTreeNetwork final : public pdes::LogicalProcess {
 public:
  FatTreeNetwork(const topo::FatTree& topo, FatTreeParams params = {},
                 std::uint64_t seed = 1);

  FatTreeNetwork(const FatTreeNetwork&) = delete;
  FatTreeNetwork& operator=(const FatTreeNetwork&) = delete;

  const topo::FatTree& topology() const { return topo_; }

  /// Message endpoints are host ids.
  void add_message(const Message& m);
  void add_messages(const std::vector<Message>& ms);
  void set_labels(std::string workload, std::string placement,
                  std::vector<std::string> job_names);
  /// job_of[host] = job id or -1, as in placement::Placement::job_of.
  void set_jobs(const std::vector<std::int32_t>& job_of);

  /// Runs to completion; the RunMetrics uses the pod/switch mapping above.
  metrics::RunMetrics run();

  void on_event(pdes::Simulator& sim, const pdes::Event& ev) override;

  std::uint64_t events_processed() const { return sim_.events_processed(); }
  std::uint64_t packets_delivered() const { return packets_delivered_; }

 private:
  // Node ids: hosts [0, H); edge switches [H, H+E); agg [H+E, H+E+A);
  // core [H+E+A, ...). Each node has output ports (see port map below).
  enum : std::uint32_t { kEvMsgStart, kEvPortFree, kEvArrive };

  struct Packet {
    std::uint32_t src = 0, dst = 0, size = 0;
    std::int32_t job = -1;
    SimTime issue_time = 0.0;
    std::uint32_t hops = 0;  // switches visited
  };
  struct OutPort {
    std::deque<std::uint32_t> queue;
    bool busy = false;
    double traffic = 0.0;
    double sat_closed = 0.0;
    SimTime sat_since = 0.0;
    bool saturated = false;
  };
  struct HostState {
    std::deque<std::pair<Message, std::uint64_t>> pending;  // msg, remaining
    bool injector_busy = false;
  };

  std::uint32_t node_count() const;
  std::uint32_t ports_of(std::uint32_t node) const;
  OutPort& port(std::uint32_t node, std::uint32_t p);
  /// Next hop for a packet at `node`: (next node, output port index).
  std::pair<std::uint32_t, std::uint32_t> route(const Packet& pkt,
                                                std::uint32_t node);
  void try_inject(std::uint32_t host);
  void try_transmit(std::uint32_t node, std::uint32_t p);
  void update_saturation(OutPort& op, SimTime now);
  double sat_at(const OutPort& op, SimTime now) const;

  std::uint32_t alloc_packet();
  void free_packet(std::uint32_t id);

  const topo::FatTree topo_;
  FatTreeParams params_;
  pdes::Simulator sim_;
  std::uint64_t seed_;

  std::vector<Message> messages_;
  std::vector<HostState> hosts_;
  std::vector<OutPort> ports_;
  std::vector<std::uint32_t> port_base_;  // per node

  std::vector<Packet> packets_;
  std::vector<std::uint32_t> free_packets_;
  std::vector<metrics::TerminalMetrics> host_stats_;
  std::vector<std::int32_t> host_job_;
  std::string workload_label_ = "custom";
  std::string placement_label_ = "custom";
  std::vector<std::string> job_names_;

  std::size_t msgs_unfinished_ = 0;
  std::size_t packets_in_flight_ = 0;
  std::uint64_t bytes_injected_ = 0;
  std::uint64_t bytes_delivered_ = 0;
  std::uint64_t packets_delivered_ = 0;
  bool ran_ = false;
};

}  // namespace dv::netsim
