#include "netsim/network.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace dv::netsim {

// ----------------------------------------------------------------- Params

void Params::validate() const {
  DV_REQUIRE(terminal_bandwidth > 0 && local_bandwidth > 0 &&
                 global_bandwidth > 0,
             "bandwidths must be positive");
  DV_REQUIRE(terminal_latency >= 0 && local_latency >= 0 &&
                 global_latency >= 0 && router_delay >= 0 &&
                 credit_latency >= 0,
             "latencies must be non-negative");
  DV_REQUIRE(packet_size > 0, "packet size must be positive");
  DV_REQUIRE(vc_buffer_packets > 0, "vc buffer must hold at least one packet");
}

// ----------------------------------------------------------------- LinkArray

void Network::LinkArray::init(std::size_t links, std::uint32_t vcs_per_link,
                              std::int32_t initial_credits) {
  vcs = vcs_per_link;
  credits.assign(links * vcs, initial_credits);
  zero_since.assign(links * vcs, 0.0);
  closed_sat.assign(links, 0.0);
  open_zero.assign(links, 0);
  open_since_sum.assign(links, 0.0);
  traffic.assign(links, 0.0);
  backlog.assign(links, 0);
  backlog_since.assign(links, 0.0);
}

void Network::LinkArray::set_backlog(std::uint32_t link, bool full,
                                     SimTime now) {
  if (full == static_cast<bool>(backlog[link])) return;
  if (full) {
    backlog[link] = 1;
    backlog_since[link] = now;
    ++open_zero[link];
    open_since_sum[link] += now;
  } else {
    backlog[link] = 0;
    closed_sat[link] += now - backlog_since[link];
    DV_CHECK(open_zero[link] > 0, "backlog bookkeeping underflow");
    --open_zero[link];
    open_since_sum[link] -= backlog_since[link];
  }
}

bool Network::LinkArray::has_credit(std::uint32_t link, std::uint32_t vc) const {
  return credits[link * vcs + vc] > 0;
}

void Network::LinkArray::take_credit(std::uint32_t link, std::uint32_t vc,
                                     SimTime now) {
  const std::size_t idx = link * vcs + vc;
  DV_CHECK(credits[idx] > 0, "taking credit from an empty pool");
  if (--credits[idx] == 0) {
    zero_since[idx] = now;
    ++open_zero[link];
    open_since_sum[link] += now;
  }
}

void Network::LinkArray::give_credit(std::uint32_t link, std::uint32_t vc,
                                     SimTime now) {
  const std::size_t idx = link * vcs + vc;
  if (credits[idx] == 0) {
    closed_sat[link] += now - zero_since[idx];
    DV_CHECK(open_zero[link] > 0, "credit bookkeeping underflow");
    --open_zero[link];
    open_since_sum[link] -= zero_since[idx];
  }
  ++credits[idx];
}

double Network::LinkArray::sat_at(std::uint32_t link, SimTime now) const {
  return closed_sat[link] +
         static_cast<double>(open_zero[link]) * now - open_since_sum[link];
}

// ----------------------------------------------------------------- encoding

std::uint64_t Network::encode_link(LinkClass c, std::uint32_t id,
                                   std::uint32_t vc) {
  return (static_cast<std::uint64_t>(c) << 48) |
         (static_cast<std::uint64_t>(vc) << 40) | id;
}

Network::LinkClass Network::link_class(std::uint64_t enc) {
  return static_cast<LinkClass>(enc >> 48);
}

std::uint32_t Network::link_id(std::uint64_t enc) {
  return static_cast<std::uint32_t>(enc & 0xffffffffULL);
}

std::uint32_t Network::link_vc(std::uint64_t enc) {
  return static_cast<std::uint32_t>((enc >> 40) & 0xff);
}

// ----------------------------------------------------------------- setup

Network::Network(const topo::Dragonfly& topo, routing::Algo algo,
                 Params params, std::uint64_t seed)
    : topo_(topo), params_(params),
      planner_(topo_, algo, params.adaptive, seed),
      rng_(seed, 0x5e7f10ULL), seed_(seed) {
  params_.validate();
  ports_per_router_ = topo_.ports_per_router();
  ports_.resize(static_cast<std::size_t>(topo_.num_routers()) *
                ports_per_router_);
  terminals_.resize(topo_.num_terminals());
  term_stats_.resize(topo_.num_terminals());
  term_job_.assign(topo_.num_terminals(), -1);
  for (std::uint32_t t = 0; t < topo_.num_terminals(); ++t) {
    term_stats_[t].router = topo_.terminal_router(t);
    term_stats_[t].port = topo_.terminal_slot(t);
  }

  num_vcs_ = planner_.max_link_hops();
  const auto buf = static_cast<std::int32_t>(params_.vc_buffer_packets);
  local_links_.init(topo_.num_local_links(), num_vcs_, buf);
  global_links_.init(topo_.num_global_links(), num_vcs_, buf);
  injection_.init(topo_.num_terminals(), 1, buf);
  ejection_.init(topo_.num_terminals(), 1, buf);

  sim_.add_lp(this);  // single-LP dispatch; kind selects the handler
  if (params_.event_budget) sim_.set_event_budget(params_.event_budget);
  if constexpr (obs::kEnabled) {
    sim_.set_kind_label(kEvMsgStart, "msg_start");
    sim_.set_kind_label(kEvInjectorFree, "injector_free");
    sim_.set_kind_label(kEvPktAtRouter, "pkt_at_router");
    sim_.set_kind_label(kEvPktAtTerminal, "pkt_at_terminal");
    sim_.set_kind_label(kEvPortFree, "port_free");
    sim_.set_kind_label(kEvCredit, "credit");
    sim_.set_kind_label(kEvSample, "sample");
  }
}

void Network::add_message(const Message& m) {
  DV_REQUIRE(!ran_, "add_message after run()");
  DV_REQUIRE(m.src_terminal < topo_.num_terminals() &&
                 m.dst_terminal < topo_.num_terminals(),
             "message terminal out of range");
  DV_REQUIRE(m.src_terminal != m.dst_terminal,
             "self-messages never enter the network");
  DV_REQUIRE(m.bytes > 0, "empty message");
  DV_REQUIRE(m.time >= 0.0, "negative message time");
  messages_.push_back(m);
}

void Network::add_messages(const std::vector<Message>& ms) {
  for (const auto& m : ms) add_message(m);
}

void Network::set_labels(std::string workload, std::string placement,
                         std::vector<std::string> job_names) {
  workload_label_ = std::move(workload);
  placement_label_ = std::move(placement);
  job_names_ = std::move(job_names);
}

void Network::set_jobs(const placement::Placement& placement) {
  DV_REQUIRE(placement.job_of.size() == term_job_.size(),
             "placement size mismatch");
  term_job_ = placement.job_of;
}

void Network::enable_sampling(double dt) {
  DV_REQUIRE(!ran_, "enable_sampling after run()");
  DV_REQUIRE(dt > 0.0, "sampling interval must be positive");
  sample_dt_ = dt;
  local_traffic_ts_ = metrics::SampledSeries(topo_.num_local_links(), dt);
  local_sat_ts_ = metrics::SampledSeries(topo_.num_local_links(), dt);
  global_traffic_ts_ = metrics::SampledSeries(topo_.num_global_links(), dt);
  global_sat_ts_ = metrics::SampledSeries(topo_.num_global_links(), dt);
  term_traffic_ts_ = metrics::SampledSeries(topo_.num_terminals(), dt);
  term_sat_ts_ = metrics::SampledSeries(topo_.num_terminals(), dt);
  prev_local_traffic_.assign(topo_.num_local_links(), 0.0);
  prev_local_sat_.assign(topo_.num_local_links(), 0.0);
  prev_global_traffic_.assign(topo_.num_global_links(), 0.0);
  prev_global_sat_.assign(topo_.num_global_links(), 0.0);
  prev_term_traffic_.assign(topo_.num_terminals(), 0.0);
  prev_term_sat_.assign(topo_.num_terminals(), 0.0);
}

// ----------------------------------------------------------------- arena

std::uint32_t Network::alloc_packet() {
  if (!free_packets_.empty()) {
    const std::uint32_t id = free_packets_.back();
    free_packets_.pop_back();
    packets_[id] = Packet{};
    return id;
  }
  packets_.emplace_back();
  return static_cast<std::uint32_t>(packets_.size() - 1);
}

void Network::free_packet(std::uint32_t id) { free_packets_.push_back(id); }

Network::OutPort& Network::port(std::uint32_t router, std::uint32_t p) {
  return ports_[static_cast<std::size_t>(router) * ports_per_router_ + p];
}

double Network::depth(std::uint32_t router, std::uint32_t p) const {
  const auto& op =
      ports_[static_cast<std::size_t>(router) * ports_per_router_ + p];
  return static_cast<double>(op.queue.size()) + (op.busy ? 1.0 : 0.0);
}

// ----------------------------------------------------------------- hops

Network::Hop Network::hop_for_port(std::uint32_t router,
                                   std::uint32_t p) const {
  Hop hop;
  const std::uint32_t nterm = topo_.terminals_per_router();
  const std::uint32_t nlocal = topo_.routers_per_group() - 1;
  if (p < nterm) {
    hop.cls = LinkClass::kEjection;
    hop.dst_terminal = topo_.terminal_id(router, p);
    hop.id = hop.dst_terminal;
    hop.bandwidth = params_.terminal_bandwidth;
    hop.latency = params_.terminal_latency;
    return hop;
  }
  if (p < nterm + nlocal) {
    const std::uint32_t lport = p - nterm;
    const std::uint32_t nrank =
        topo_.local_neighbor(topo_.router_rank(router), lport);
    hop.cls = LinkClass::kLocal;
    hop.dst_router = topo_.router_id(topo_.router_group(router), nrank);
    hop.dst_port =
        nterm + (topo_.local_port(nrank, topo_.router_rank(router)) - nterm);
    hop.id = topo_.local_link_id(router, lport);
    hop.bandwidth = params_.local_bandwidth;
    hop.latency = params_.local_latency;
    return hop;
  }
  const std::uint32_t channel = p - nterm - nlocal;
  const topo::GlobalEnd ge = topo_.global_neighbor(router, channel);
  hop.cls = LinkClass::kGlobal;
  hop.dst_router = ge.router;
  hop.dst_port = topo_.global_port(ge.channel);
  hop.id = topo_.global_link_id(router, channel);
  hop.bandwidth = params_.global_bandwidth;
  hop.latency = params_.global_latency;
  return hop;
}

// ----------------------------------------------------------------- injection

void Network::try_inject(std::uint32_t term) {
  TerminalState& ts = terminals_[term];
  if (ts.injector_busy || ts.pending.empty()) return;
  if (!injection_.has_credit(term, 0)) return;  // retried on credit return

  const SimTime now = sim_.now();
  MsgProgress& msg = ts.pending.front();
  const std::uint32_t size = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params_.packet_size, msg.remaining));

  const std::uint32_t pid = alloc_packet();
  Packet& pkt = packets_[pid];
  pkt.src = term;
  pkt.dst = msg.dst;
  pkt.size = size;
  pkt.job = msg.job;
  // Latency is measured from the application's send time, so source-side
  // queueing (the dominant cost under congestion) is included — this is
  // what makes per-job "application performance" comparable across
  // placements as in Fig. 13d.
  pkt.inject_time = msg.issue_time;
  pkt.route.dst_terminal = msg.dst;
  planner_.on_inject(pkt.route, term, *this);
  pkt.in_link = encode_link(LinkClass::kInjection, term, 0);

  injection_.take_credit(term, 0, now);
  injection_.traffic[term] += size;
  ++packets_injected_;
  bytes_injected_ += size;

  msg.remaining -= size;
  if (msg.remaining == 0) {
    ts.pending.pop_front();
    DV_CHECK(msgs_unfinished_ > 0, "message bookkeeping underflow");
    --msgs_unfinished_;
  }
  ++packets_in_flight_;

  const double ser = static_cast<double>(size) / params_.terminal_bandwidth;
  ts.injector_busy = true;
  sim_.schedule_in(ser, 0, kEvInjectorFree, term);
  sim_.schedule_in(ser + params_.terminal_latency + params_.router_delay, 0,
                   kEvPktAtRouter, pid, topo_.terminal_router(term));
}

// ----------------------------------------------------------------- transit

Network::LinkArray& Network::link_array_for(LinkClass cls) {
  switch (cls) {
    case LinkClass::kEjection: return ejection_;
    case LinkClass::kLocal: return local_links_;
    case LinkClass::kGlobal: return global_links_;
    default: break;
  }
  throw Error("no link array for this link class");
}

void Network::update_backlog(std::uint32_t router, std::uint32_t p) {
  const Hop hop = hop_for_port(router, p);
  LinkArray& la = link_array_for(hop.cls);
  la.set_backlog(hop.id,
                 port(router, p).queue.size() >= params_.vc_buffer_packets,
                 sim_.now());
}

void Network::try_transmit(std::uint32_t router, std::uint32_t p) {
  OutPort& op = port(router, p);
  if (op.busy || op.queue.empty()) return;

  const Hop hop = hop_for_port(router, p);
  LinkArray& la = link_array_for(hop.cls);

  // VC arbitration: first queued packet whose VC has a downstream slot.
  std::size_t pick = op.queue.size();
  std::uint32_t vc = 0;
  for (std::size_t i = 0; i < op.queue.size(); ++i) {
    const Packet& cand = packets_[op.queue[i]];
    const std::uint32_t cvc =
        hop.cls == LinkClass::kEjection ? 0u : cand.link_hops;
    if (la.has_credit(hop.id, cvc)) {
      pick = i;
      vc = cvc;
      break;
    }
  }
  if (pick == op.queue.size()) return;  // all VCs full; retried on credit

  const std::uint32_t pid = op.queue[pick];
  op.queue.erase(op.queue.begin() + static_cast<std::ptrdiff_t>(pick));
  la.set_backlog(hop.id, op.queue.size() >= params_.vc_buffer_packets,
                 sim_.now());
  Packet& pkt = packets_[pid];
  const SimTime now = sim_.now();

  la.take_credit(hop.id, vc, now);
  la.traffic[hop.id] += pkt.size;
  return_credit(pkt.in_link);  // upstream buffer slot frees as we depart
  pkt.in_link = encode_link(hop.cls, hop.id, vc);
  if (hop.cls != LinkClass::kEjection) {
    ++pkt.link_hops;
    DV_CHECK(pkt.link_hops <= num_vcs_, "packet exceeded the VC/hop bound");
  }

  const double ser = static_cast<double>(pkt.size) / hop.bandwidth;
  op.busy = true;
  sim_.schedule_in(ser, 0, kEvPortFree, router, p);
  if (hop.cls == LinkClass::kEjection) {
    sim_.schedule_in(ser + hop.latency, 0, kEvPktAtTerminal, pid,
                     hop.dst_terminal);
  } else {
    sim_.schedule_in(ser + hop.latency + params_.router_delay, 0,
                     kEvPktAtRouter, pid, hop.dst_router);
  }
}

void Network::return_credit(std::uint64_t enc_link) {
  if (link_class(enc_link) == LinkClass::kNone) return;
  sim_.schedule_in(params_.credit_latency, 0, kEvCredit, enc_link);
}

void Network::handle_packet_at_router(std::uint32_t pid,
                                      std::uint32_t router) {
  Packet& pkt = packets_[pid];
  ++pkt.router_hops;
  const routing::Decision d = planner_.route(pkt.route, router, *this);
  port(router, d.port).queue.push_back(pid);
  update_backlog(router, d.port);
  try_transmit(router, d.port);
}

void Network::handle_packet_at_terminal(std::uint32_t pid,
                                        std::uint32_t term) {
  Packet& pkt = packets_[pid];
  DV_CHECK(pkt.dst == term, "packet delivered to the wrong terminal");
  metrics::TerminalMetrics& tm = term_stats_[term];
  ++tm.packets_finished;
  tm.sum_latency += sim_.now() - pkt.inject_time;
  tm.sum_hops += pkt.router_hops;
  ++packets_delivered_;
  bytes_delivered_ += pkt.size;
  DV_CHECK(packets_in_flight_ > 0, "packet bookkeeping underflow");
  --packets_in_flight_;

  // The ejection buffer slot frees once the NIC has drained the packet.
  DV_CHECK(link_class(pkt.in_link) == LinkClass::kEjection,
           "terminal received a packet not via its ejection link");
  const double drain =
      static_cast<double>(pkt.size) / params_.terminal_bandwidth;
  sim_.schedule_in(drain, 0, kEvCredit, pkt.in_link);
  free_packet(pid);
}

// ----------------------------------------------------------------- sampling

void Network::take_sample() {
  const SimTime now = sim_.now();
  auto capture = [now](const LinkArray& la, std::vector<double>& prev_traffic,
                       std::vector<double>& prev_sat,
                       metrics::SampledSeries& traffic_ts,
                       metrics::SampledSeries& sat_ts) {
    const std::size_t n = la.traffic.size();
    std::vector<float> dt(n), ds(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double cur_t = la.traffic[i];
      const double cur_s = la.sat_at(static_cast<std::uint32_t>(i), now);
      dt[i] = static_cast<float>(cur_t - prev_traffic[i]);
      ds[i] = static_cast<float>(cur_s - prev_sat[i]);
      prev_traffic[i] = cur_t;
      prev_sat[i] = cur_s;
    }
    traffic_ts.push_frame(dt);
    sat_ts.push_frame(ds);
  };
  capture(local_links_, prev_local_traffic_, prev_local_sat_,
          local_traffic_ts_, local_sat_ts_);
  capture(global_links_, prev_global_traffic_, prev_global_sat_,
          global_traffic_ts_, global_sat_ts_);
  // Terminal series: injected bytes and injection+ejection saturation.
  {
    const std::size_t n = topo_.num_terminals();
    std::vector<float> dt(n), ds(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto li = static_cast<std::uint32_t>(i);
      const double cur_t = injection_.traffic[i];
      const double cur_s =
          injection_.sat_at(li, now) + ejection_.sat_at(li, now);
      dt[i] = static_cast<float>(cur_t - prev_term_traffic_[i]);
      ds[i] = static_cast<float>(cur_s - prev_term_sat_[i]);
      prev_term_traffic_[i] = cur_t;
      prev_term_sat_[i] = cur_s;
    }
    term_traffic_ts_.push_frame(dt);
    term_sat_ts_.push_frame(ds);
  }
}

// ----------------------------------------------------------------- dispatch

void Network::on_event(pdes::Simulator& sim, const pdes::Event& ev) {
  switch (ev.kind) {
    case kEvMsgStart: {
      const Message& m = messages_[ev.data0];
      terminals_[m.src_terminal].pending.push_back(
          MsgProgress{m.dst_terminal, m.bytes, m.job, sim.now()});
      try_inject(m.src_terminal);
      break;
    }
    case kEvInjectorFree: {
      const auto term = static_cast<std::uint32_t>(ev.data0);
      terminals_[term].injector_busy = false;
      try_inject(term);
      break;
    }
    case kEvPktAtRouter:
      handle_packet_at_router(static_cast<std::uint32_t>(ev.data0),
                              static_cast<std::uint32_t>(ev.data1));
      break;
    case kEvPktAtTerminal:
      handle_packet_at_terminal(static_cast<std::uint32_t>(ev.data0),
                                static_cast<std::uint32_t>(ev.data1));
      break;
    case kEvPortFree: {
      const auto router = static_cast<std::uint32_t>(ev.data0);
      const auto p = static_cast<std::uint32_t>(ev.data1);
      port(router, p).busy = false;
      try_transmit(router, p);
      break;
    }
    case kEvCredit: {
      const std::uint64_t enc = ev.data0;
      const std::uint32_t id = link_id(enc);
      const std::uint32_t vc = link_vc(enc);
      switch (link_class(enc)) {
        case LinkClass::kInjection:
          injection_.give_credit(id, vc, sim.now());
          try_inject(id);
          break;
        case LinkClass::kEjection: {
          ejection_.give_credit(id, vc, sim.now());
          const std::uint32_t router = topo_.terminal_router(id);
          try_transmit(router, topo_.terminal_slot(id));
          break;
        }
        case LinkClass::kLocal: {
          local_links_.give_credit(id, vc, sim.now());
          const auto [router, lport] = topo_.local_link_ends(id);
          try_transmit(router, topo_.terminals_per_router() + lport);
          break;
        }
        case LinkClass::kGlobal: {
          global_links_.give_credit(id, vc, sim.now());
          const topo::GlobalEnd src = topo_.global_link_src(id);
          try_transmit(src.router, topo_.global_port(src.channel));
          break;
        }
        case LinkClass::kNone:
          DV_CHECK(false, "credit for the null link");
      }
      break;
    }
    case kEvSample:
      take_sample();
      if (packets_in_flight_ > 0 || msgs_unfinished_ > 0) {
        sim.schedule_in(sample_dt_, 0, kEvSample);
      }
      break;
    default:
      DV_CHECK(false, "unknown event kind");
  }
}

// ----------------------------------------------------------------- run

metrics::RunMetrics Network::run() {
  DV_REQUIRE(!ran_, "a Network can only run once");
  ran_ = true;

  msgs_unfinished_ = messages_.size();
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    sim_.schedule(messages_[i].time, 0, kEvMsgStart, i);
  }
  if (sample_dt_ > 0.0) sim_.schedule(sample_dt_, 0, kEvSample);

  {
    obs::ScopedPhase phase("sim");
    sim_.run();
  }

  DV_CHECK(packets_in_flight_ == 0 && msgs_unfinished_ == 0,
           "simulation drained with work outstanding");
  DV_CHECK(bytes_injected_ == bytes_delivered_,
           "flow conservation violated: injected != delivered bytes");

  metrics::RunMetrics out;
  {
    obs::ScopedPhase phase("collect");
    flush_and_collect(out);
  }
  if constexpr (obs::kEnabled) {
    obs::counter("net.messages").add(messages_.size());
    obs::counter("net.packets_injected").add(packets_injected_);
    obs::counter("net.packets_delivered").add(packets_delivered_);
    obs::counter("net.bytes_injected").add(bytes_injected_);
    obs::counter("net.bytes_delivered").add(bytes_delivered_);
    double hops = 0.0;
    for (const auto& t : out.terminals) hops += t.sum_hops;
    obs::counter("net.router_hops").add(static_cast<std::uint64_t>(hops));
    const routing::RouteStats& rs = planner_.stats();
    obs::counter("net.route.minimal").add(rs.minimal);
    obs::counter("net.route.nonminimal").add(rs.nonminimal);
    obs::counter("net.route.par_diverts").add(rs.par_diverts);
    obs::counter("net.route.steps").add(rs.steps);
    if (sample_dt_ > 0.0) {
      obs::counter("net.sample_frames").add(out.local_traffic_ts.frames());
    }
  }
  return out;
}

void Network::flush_and_collect(metrics::RunMetrics& out) {
  const SimTime end = sim_.now();
  out.groups = topo_.groups();
  out.routers_per_group = topo_.routers_per_group();
  out.terminals_per_router = topo_.terminals_per_router();
  out.global_per_router = topo_.global_per_router();
  out.workload = workload_label_;
  out.routing = routing::to_string(planner_.algo());
  out.placement = placement_label_;
  out.job_names = job_names_;
  out.seed = seed_;
  out.end_time = end;

  out.local_links.resize(topo_.num_local_links());
  for (std::uint32_t lid = 0; lid < topo_.num_local_links(); ++lid) {
    const auto [router, lport] = topo_.local_link_ends(lid);
    const Hop hop = hop_for_port(router, topo_.terminals_per_router() + lport);
    metrics::LinkMetrics& l = out.local_links[lid];
    l.src_router = router;
    l.src_port = topo_.terminals_per_router() + lport;
    l.dst_router = hop.dst_router;
    l.dst_port = hop.dst_port;
    l.traffic = local_links_.traffic[lid];
    l.sat_time = local_links_.sat_at(lid, end);
  }
  out.global_links.resize(topo_.num_global_links());
  for (std::uint32_t gid = 0; gid < topo_.num_global_links(); ++gid) {
    const topo::GlobalEnd src = topo_.global_link_src(gid);
    const Hop hop = hop_for_port(src.router, topo_.global_port(src.channel));
    metrics::LinkMetrics& l = out.global_links[gid];
    l.src_router = src.router;
    l.src_port = topo_.global_port(src.channel);
    l.dst_router = hop.dst_router;
    l.dst_port = hop.dst_port;
    l.traffic = global_links_.traffic[gid];
    l.sat_time = global_links_.sat_at(gid, end);
  }
  out.terminals = term_stats_;
  for (std::uint32_t t = 0; t < topo_.num_terminals(); ++t) {
    out.terminals[t].data_size = injection_.traffic[t];
    out.terminals[t].sat_time =
        injection_.sat_at(t, end) + ejection_.sat_at(t, end);
    out.terminals[t].job = term_job_[t];
  }

  if (sample_dt_ > 0.0) {
    take_sample();  // final partial frame
    out.sample_dt = sample_dt_;
    out.local_traffic_ts = std::move(local_traffic_ts_);
    out.local_sat_ts = std::move(local_sat_ts_);
    out.global_traffic_ts = std::move(global_traffic_ts_);
    out.global_sat_ts = std::move(global_sat_ts_);
    out.term_traffic_ts = std::move(term_traffic_ts_);
    out.term_sat_ts = std::move(term_sat_ts_);
  }
}

}  // namespace dv::netsim
