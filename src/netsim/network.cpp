#include "netsim/network.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace dv::netsim {

namespace {
// Partition executing the current parallel event on this thread, -1 when
// running sequentially. Lets depth() assert the conservative contract:
// adaptive routing may only probe queues its own partition owns.
thread_local std::int32_t t_active_partition = -1;
}  // namespace

// ----------------------------------------------------------------- Params

void Params::validate() const {
  DV_REQUIRE(terminal_bandwidth > 0 && local_bandwidth > 0 &&
                 global_bandwidth > 0,
             "bandwidths must be positive");
  DV_REQUIRE(terminal_latency > 0 && local_latency > 0 && global_latency > 0,
             "link latencies must be positive (zero latencies break both "
             "saturation accounting and the parallel lookahead)");
  DV_REQUIRE(router_delay >= 0, "router delay must be non-negative");
  DV_REQUIRE(credit_latency > 0,
             "credit latency must be positive (it bounds the conservative "
             "lookahead window)");
  DV_REQUIRE(packet_size > 0, "packet size must be positive");
  DV_REQUIRE(vc_buffer_packets > 0, "vc buffer must hold at least one packet");
  DV_REQUIRE(fault_retry_base > 0,
             "fault retry backoff base must be positive");
}

// ----------------------------------------------------------------- LinkArray

void Network::LinkArray::init(std::size_t links, std::uint32_t vcs_per_link,
                              std::int32_t initial_credits) {
  vcs = vcs_per_link;
  credits.assign(links * vcs, initial_credits);
  zero_since.assign(links * vcs, 0.0);
  closed_sat.assign(links, 0.0);
  open_zero.assign(links, 0);
  open_since_sum.assign(links, 0.0);
  traffic.assign(links, 0.0);
  backlog.assign(links, 0);
  backlog_since.assign(links, 0.0);
  retries.assign(links, 0);
  drops.assign(links, 0);
}

void Network::LinkArray::set_backlog(std::uint32_t link, bool full,
                                     SimTime now) {
  if (full == static_cast<bool>(backlog[link])) return;
  if (full) {
    backlog[link] = 1;
    backlog_since[link] = now;
    ++open_zero[link];
    open_since_sum[link] += now;
  } else {
    backlog[link] = 0;
    closed_sat[link] += now - backlog_since[link];
    DV_CHECK(open_zero[link] > 0, "backlog bookkeeping underflow");
    --open_zero[link];
    open_since_sum[link] -= backlog_since[link];
  }
}

bool Network::LinkArray::has_credit(std::uint32_t link, std::uint32_t vc) const {
  return credits[link * vcs + vc] > 0;
}

void Network::LinkArray::take_credit(std::uint32_t link, std::uint32_t vc,
                                     SimTime now) {
  const std::size_t idx = link * vcs + vc;
  DV_CHECK(credits[idx] > 0, "taking credit from an empty pool");
  if (--credits[idx] == 0) {
    zero_since[idx] = now;
    ++open_zero[link];
    open_since_sum[link] += now;
  }
}

void Network::LinkArray::give_credit(std::uint32_t link, std::uint32_t vc,
                                     SimTime now) {
  const std::size_t idx = link * vcs + vc;
  if (credits[idx] == 0) {
    closed_sat[link] += now - zero_since[idx];
    DV_CHECK(open_zero[link] > 0, "credit bookkeeping underflow");
    --open_zero[link];
    open_since_sum[link] -= zero_since[idx];
  }
  ++credits[idx];
}

double Network::LinkArray::sat_at(std::uint32_t link, SimTime now) const {
  return closed_sat[link] +
         static_cast<double>(open_zero[link]) * now - open_since_sum[link];
}

// ----------------------------------------------------------------- encoding

std::uint64_t Network::encode_link(LinkClass c, std::uint32_t id,
                                   std::uint32_t vc) {
  return (static_cast<std::uint64_t>(c) << 48) |
         (static_cast<std::uint64_t>(vc) << 40) | id;
}

Network::LinkClass Network::link_class(std::uint64_t enc) {
  return static_cast<LinkClass>(enc >> 48);
}

std::uint32_t Network::link_id(std::uint64_t enc) {
  return static_cast<std::uint32_t>(enc & 0xffffffffULL);
}

std::uint32_t Network::link_vc(std::uint64_t enc) {
  return static_cast<std::uint32_t>((enc >> 40) & 0xff);
}

// ----------------------------------------------------------------- setup

Network::Network(const topo::Dragonfly& topo, routing::Algo algo,
                 Params params, std::uint64_t seed)
    : topo_(topo), params_(params),
      planner_(topo_, algo, params.adaptive, seed), seed_(seed) {
  params_.validate();
  ports_per_router_ = topo_.ports_per_router();
  ports_.resize(static_cast<std::size_t>(topo_.num_routers()) *
                ports_per_router_);
  terminals_.resize(topo_.num_terminals());
  term_finished_.assign(topo_.num_terminals(), 0);
  term_sum_latency_.assign(topo_.num_terminals(), 0.0);
  term_sum_hops_.assign(topo_.num_terminals(), 0.0);
  term_rerouted_.assign(topo_.num_terminals(), 0);
  term_dropped_.assign(topo_.num_terminals(), 0);
  term_job_.assign(topo_.num_terminals(), -1);

  hop_cache_.reserve(ports_.size());
  for (std::uint32_t r = 0; r < topo_.num_routers(); ++r) {
    for (std::uint32_t p = 0; p < ports_per_router_; ++p) {
      hop_cache_.push_back(compute_hop(r, p));
    }
  }

  num_vcs_ = planner_.max_link_hops();
  const auto buf = static_cast<std::int32_t>(params_.vc_buffer_packets);
  local_links_.init(topo_.num_local_links(), num_vcs_, buf);
  global_links_.init(topo_.num_global_links(), num_vcs_, buf);
  injection_.init(topo_.num_terminals(), 1, buf);
  ejection_.init(topo_.num_terminals(), 1, buf);

  // Entity random streams: Valiant/UGAL draws happen at injection from the
  // terminal's stream, PAR diverts from the router's stream — so route
  // randomness is a function of (seed, entity, per-entity order), never of
  // engine interleaving.
  term_rng_.reserve(topo_.num_terminals());
  for (std::uint32_t t = 0; t < topo_.num_terminals(); ++t) {
    term_rng_.emplace_back(seed, (1ULL << 32) + t);
  }
  router_rng_.reserve(topo_.num_routers());
  for (std::uint32_t r = 0; r < topo_.num_routers(); ++r) {
    router_rng_.emplace_back(seed, (2ULL << 32) + r);
  }
  term_pkt_seq_.assign(topo_.num_terminals(), 0);
  router_partition_.assign(topo_.num_routers(), 0);

  // One LP per router on the sequential engine too, so event streams carry
  // the same LP ids as the parallel decomposition.
  for (std::uint32_t r = 0; r < topo_.num_routers(); ++r) {
    sim_.add_lp(this);
  }
  if (params_.event_budget) sim_.set_event_budget(params_.event_budget);
  // The conservative lookahead is the model's minimum physical delay, the
  // natural bucket width; the rare shorter delay (serialization of a short
  // tail packet) takes the bucket layer's ordered-insert slow path. 512
  // buckets (a ~10 us horizon at default latencies) measured fastest on
  // bench_perf_core: a wider horizon spreads the same events over more,
  // colder buckets, a narrower one spills too many pushes to the heap.
  sim_.set_bucket_granularity(lookahead(), 512);
  if constexpr (obs::kEnabled) {
    sim_.set_kind_label(kEvMsgStart, "msg_start");
    sim_.set_kind_label(kEvInjectorFree, "injector_free");
    sim_.set_kind_label(kEvPktAtRouter, "pkt_at_router");
    sim_.set_kind_label(kEvPktAtTerminal, "pkt_at_terminal");
    sim_.set_kind_label(kEvPortFree, "port_free");
    sim_.set_kind_label(kEvCredit, "credit");
    sim_.set_kind_label(kEvPktRetry, "pkt_retry");
    sim_.set_kind_label(kEvFaultWake, "fault_wake");
    sim_.set_kind_label(kEvPktDropNotify, "pkt_drop_notify");
  }
}

void Network::add_message(const Message& m) {
  DV_REQUIRE(!ran_, "add_message after run()");
  DV_REQUIRE(m.src_terminal < topo_.num_terminals() &&
                 m.dst_terminal < topo_.num_terminals(),
             "message terminal out of range");
  DV_REQUIRE(m.src_terminal != m.dst_terminal,
             "self-messages never enter the network");
  DV_REQUIRE(m.bytes > 0, "empty message");
  DV_REQUIRE(m.time >= 0.0, "negative message time");
  messages_.push_back(m);
}

void Network::add_messages(const std::vector<Message>& ms) {
  for (const auto& m : ms) add_message(m);
}

void Network::set_labels(std::string workload, std::string placement,
                         std::vector<std::string> job_names) {
  workload_label_ = std::move(workload);
  placement_label_ = std::move(placement);
  job_names_ = std::move(job_names);
}

void Network::set_jobs(const placement::Placement& placement) {
  DV_REQUIRE(placement.job_of.size() == term_job_.size(),
             "placement size mismatch");
  term_job_ = placement.job_of;
}

void Network::enable_sampling(double dt) {
  DV_REQUIRE(!ran_, "enable_sampling after run()");
  DV_REQUIRE(dt > 0.0, "sampling interval must be positive");
  sample_dt_ = dt;
  local_traffic_ts_ = metrics::SampledSeries(topo_.num_local_links(), dt);
  local_sat_ts_ = metrics::SampledSeries(topo_.num_local_links(), dt);
  global_traffic_ts_ = metrics::SampledSeries(topo_.num_global_links(), dt);
  global_sat_ts_ = metrics::SampledSeries(topo_.num_global_links(), dt);
  term_traffic_ts_ = metrics::SampledSeries(topo_.num_terminals(), dt);
  term_sat_ts_ = metrics::SampledSeries(topo_.num_terminals(), dt);
  prev_local_traffic_.assign(topo_.num_local_links(), 0.0);
  prev_local_sat_.assign(topo_.num_local_links(), 0.0);
  prev_global_traffic_.assign(topo_.num_global_links(), 0.0);
  prev_global_sat_.assign(topo_.num_global_links(), 0.0);
  prev_term_traffic_.assign(topo_.num_terminals(), 0.0);
  prev_term_sat_.assign(topo_.num_terminals(), 0.0);
}

void Network::set_fault_plan(const fault::FaultPlan& plan) {
  DV_REQUIRE(!ran_, "set_fault_plan after run()");
  if (plan.empty()) return;  // bit-identical to never calling this
  fault_ = fault::FaultTimeline(topo_, plan);
  has_faults_ = true;
  planner_.set_fault_aware(true);
  // A detoured minimal packet takes a Valiant-length path, so the planner's
  // hop bound (== VC count) may grow. No credits have been handed out yet
  // (run() hasn't started), so re-initializing the pools is safe.
  if (planner_.max_link_hops() != num_vcs_) {
    num_vcs_ = planner_.max_link_hops();
    const auto buf = static_cast<std::int32_t>(params_.vc_buffer_packets);
    local_links_.init(topo_.num_local_links(), num_vcs_, buf);
    global_links_.init(topo_.num_global_links(), num_vcs_, buf);
  }
  router_retries_.assign(topo_.num_routers(), 0);
  router_drops_.assign(topo_.num_routers(), 0);
}

void Network::set_parallel(std::uint32_t workers) {
  DV_REQUIRE(!ran_, "set_parallel after run()");
  parallel_ = workers == 0 ? 1 : workers;
}

double Network::lookahead() const {
  return std::min(params_.credit_latency,
                  std::min(params_.local_latency, params_.global_latency));
}

std::uint32_t Network::resolve_partitions() const {
  // One partition must own whole groups (the LP map is group-contiguous)
  // and the packet-id encoding carries 6 shard bits.
  return std::min({parallel_, topo_.groups(), 64u});
}

// ----------------------------------------------------------------- arena

void Network::init_shards(std::uint32_t count) {
  // Every in-flight packet holds exactly one buffer credit, so the live
  // packet count is bounded by the total credit pool. Reserving the chunk
  // table to that bound means it never reallocates mid-run — which is what
  // makes cross-partition packet(pid) lookups safe without a lock.
  const std::uint64_t slots =
      static_cast<std::uint64_t>(local_links_.credits.size() +
                                 global_links_.credits.size() +
                                 injection_.credits.size() +
                                 ejection_.credits.size()) *
      params_.vc_buffer_packets;
  const std::size_t max_chunks =
      static_cast<std::size_t>(slots >> kChunkShift) + 2;
  shards_.clear();
  shards_.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto sh = std::make_unique<Shard>();
    sh->chunks.reserve(max_chunks);
    shards_.push_back(std::move(sh));
  }
}

std::uint32_t Network::alloc_packet(std::uint32_t shard_id) {
  Shard& sh = *shards_[shard_id];
  if (sh.free_list.empty()) {
    // Reclaim ids freed by other partitions (lock-free MPSC stack: they
    // push with CAS, only we pop, and we take the whole chain at once).
    std::uint32_t head =
        sh.remote_free.exchange(kNilIndex, std::memory_order_acquire);
    while (head != kNilIndex) {
      sh.free_list.push_back(head);
      head = sh.chunks[head >> kChunkShift][head & (kChunkSize - 1)].next_free;
    }
  }
  std::uint32_t idx;
  if (!sh.free_list.empty()) {
    idx = sh.free_list.back();
    sh.free_list.pop_back();
  } else {
    idx = sh.allocated++;
    DV_CHECK(idx <= kIndexMask, "packet arena exhausted");
    if ((idx >> kChunkShift) >= sh.chunks.size()) {
      DV_CHECK(sh.chunks.size() < sh.chunks.capacity(),
               "packet arena exceeded the in-flight credit bound");
      sh.chunks.push_back(std::make_unique<Packet[]>(kChunkSize));
    }
  }
  Packet& pkt = sh.chunks[idx >> kChunkShift][idx & (kChunkSize - 1)];
  pkt = Packet{};
  return (shard_id << kShardShift) | idx;
}

void Network::free_packet(std::uint32_t current_shard, std::uint32_t pid) {
  const std::uint32_t owner = pid >> kShardShift;
  const std::uint32_t idx = pid & kIndexMask;
  Shard& sh = *shards_[owner];
  if (owner == current_shard) {
    sh.free_list.push_back(idx);
    return;
  }
  Packet& pkt = sh.chunks[idx >> kChunkShift][idx & (kChunkSize - 1)];
  std::uint32_t head = sh.remote_free.load(std::memory_order_relaxed);
  do {
    pkt.next_free = head;
  } while (!sh.remote_free.compare_exchange_weak(
      head, idx, std::memory_order_release, std::memory_order_relaxed));
}

Network::OutPort& Network::port(std::uint32_t router, std::uint32_t p) {
  return ports_[static_cast<std::size_t>(router) * ports_per_router_ + p];
}

double Network::depth(std::uint32_t router, std::uint32_t p) const {
  DV_CHECK(t_active_partition < 0 ||
               router_partition_[router] ==
                   static_cast<std::uint32_t>(t_active_partition),
           "adaptive probe read a queue outside its own partition");
  const auto& op =
      ports_[static_cast<std::size_t>(router) * ports_per_router_ + p];
  return static_cast<double>(op.queue.size()) + (op.busy ? 1.0 : 0.0);
}

bool Network::port_blocked(std::uint32_t router, std::uint32_t p,
                           double now) const {
  if (!has_faults_) return false;
  if (fault_.router_down(router, now)) return true;
  const Hop& hop = hop_for_port(router, p);
  switch (hop.cls) {
    case LinkClass::kEjection:
      return false;  // terminal NICs don't fail in this model
    case LinkClass::kLocal:
      return fault_.local_link_down(hop.id, now) ||
             fault_.router_down(hop.dst_router, now);
    case LinkClass::kGlobal:
      return fault_.global_link_down(hop.id, now) ||
             fault_.router_down(hop.dst_router, now);
    default:
      return false;
  }
}

// ----------------------------------------------------------------- hops

Network::Hop Network::compute_hop(std::uint32_t router,
                                  std::uint32_t p) const {
  Hop hop;
  const std::uint32_t nterm = topo_.terminals_per_router();
  const std::uint32_t nlocal = topo_.routers_per_group() - 1;
  if (p < nterm) {
    hop.cls = LinkClass::kEjection;
    hop.dst_terminal = topo_.terminal_id(router, p);
    hop.id = hop.dst_terminal;
    hop.bandwidth = params_.terminal_bandwidth;
    hop.latency = params_.terminal_latency;
    return hop;
  }
  if (p < nterm + nlocal) {
    const std::uint32_t lport = p - nterm;
    const std::uint32_t nrank =
        topo_.local_neighbor(topo_.router_rank(router), lport);
    hop.cls = LinkClass::kLocal;
    hop.dst_router = topo_.router_id(topo_.router_group(router), nrank);
    hop.dst_port =
        nterm + (topo_.local_port(nrank, topo_.router_rank(router)) - nterm);
    hop.id = topo_.local_link_id(router, lport);
    hop.bandwidth = params_.local_bandwidth;
    hop.latency = params_.local_latency;
    return hop;
  }
  const std::uint32_t channel = p - nterm - nlocal;
  const topo::GlobalEnd ge = topo_.global_neighbor(router, channel);
  hop.cls = LinkClass::kGlobal;
  hop.dst_router = ge.router;
  hop.dst_port = topo_.global_port(ge.channel);
  hop.id = topo_.global_link_id(router, channel);
  hop.bandwidth = params_.global_bandwidth;
  hop.latency = params_.global_latency;
  return hop;
}

// ----------------------------------------------------------------- injection

void Network::try_inject(Ctx& ctx, std::uint32_t term) {
  TerminalState& ts = terminals_[term];
  if (ts.injector_busy || ts.pending.empty()) return;
  if (has_faults_ &&
      fault_.router_down(topo_.terminal_router(term), ctx.now)) {
    return;  // re-attempted at the router's revival wake
  }
  if (!injection_.has_credit(term, 0)) return;  // retried on credit return

  const SimTime now = ctx.now;
  Shard& sh = *shards_[ctx.shard];
  MsgProgress& msg = ts.pending.front();
  const std::uint32_t size = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params_.packet_size, msg.remaining));

  const std::uint32_t pid = alloc_packet(ctx.shard);
  Packet& pkt = packet(pid);
  pkt.src = term;
  pkt.dst = msg.dst;
  pkt.size = size;
  pkt.job = msg.job;
  // Latency is measured from the application's send time, so source-side
  // queueing (the dominant cost under congestion) is included — this is
  // what makes per-job "application performance" comparable across
  // placements as in Fig. 13d.
  pkt.inject_time = msg.issue_time;
  // Injections at a terminal are totally ordered, so this uid is the same
  // on both engines — it keys every event the packet generates.
  pkt.uid = (static_cast<std::uint64_t>(term) << 32) | term_pkt_seq_[term]++;
  pkt.route.dst_terminal = msg.dst;
  planner_.on_inject(pkt.route, term, *this, term_rng_[term], sh.route_stats,
                     now);
  pkt.in_link = encode_link(LinkClass::kInjection, term, 0);

  injection_.take_credit(term, 0, now);
  injection_.traffic[term] += size;
  ++sh.packets_injected;
  sh.bytes_injected += size;

  msg.remaining -= size;
  if (msg.remaining == 0) {
    ts.pending.pop_front();
    ++sh.msgs_finished;
  }
  ++sh.in_flight;

  const double ser = static_cast<double>(size) / params_.terminal_bandwidth;
  ts.injector_busy = true;
  const pdes::LpId lp = lp_of_terminal(term);
  ctx.schedule_in(ser, lp, kEvInjectorFree, term, 0,
                  pri_key(kEvInjectorFree, term));
  ctx.schedule_in(ser + params_.terminal_latency + params_.router_delay, lp,
                  kEvPktAtRouter, pid, topo_.terminal_router(term),
                  pri_key(kEvPktAtRouter, pkt.uid));
}

// ----------------------------------------------------------------- transit

Network::LinkArray& Network::link_array_for(LinkClass cls) {
  switch (cls) {
    case LinkClass::kEjection: return ejection_;
    case LinkClass::kLocal: return local_links_;
    case LinkClass::kGlobal: return global_links_;
    default: break;
  }
  throw Error("no link array for this link class");
}

void Network::update_backlog(Ctx& ctx, std::uint32_t router, std::uint32_t p) {
  const Hop& hop = hop_for_port(router, p);
  LinkArray& la = link_array_for(hop.cls);
  la.set_backlog(hop.id,
                 port(router, p).queue.size() >= params_.vc_buffer_packets,
                 ctx.now);
}

void Network::try_transmit(Ctx& ctx, std::uint32_t router, std::uint32_t p) {
  OutPort& op = port(router, p);
  if (op.busy || op.queue.empty()) return;
  if (has_faults_ && port_blocked(router, p, ctx.now)) {
    return;  // queued packets bounce into the retry path at the next wake
  }

  const Hop& hop = hop_for_port(router, p);
  LinkArray& la = link_array_for(hop.cls);

  // VC arbitration: first queued packet whose VC has a downstream slot.
  std::size_t pick = op.queue.size();
  std::uint32_t vc = 0;
  for (std::size_t i = 0; i < op.queue.size(); ++i) {
    const Packet& cand = packet(op.queue[i]);
    const std::uint32_t cvc =
        hop.cls == LinkClass::kEjection ? 0u : cand.link_hops;
    if (la.has_credit(hop.id, cvc)) {
      pick = i;
      vc = cvc;
      break;
    }
  }
  if (pick == op.queue.size()) return;  // all VCs full; retried on credit

  const std::uint32_t pid = op.queue[pick];
  op.queue.erase_at(pick);
  la.set_backlog(hop.id, op.queue.size() >= params_.vc_buffer_packets,
                 ctx.now);
  Packet& pkt = packet(pid);
  const SimTime now = ctx.now;

  la.take_credit(hop.id, vc, now);
  la.traffic[hop.id] += pkt.size;
  return_credit(ctx, pkt.in_link);  // upstream buffer slot frees as we depart
  pkt.in_link = encode_link(hop.cls, hop.id, vc);
  if (hop.cls != LinkClass::kEjection) {
    ++pkt.link_hops;
    DV_CHECK(pkt.link_hops <= num_vcs_, "packet exceeded the VC/hop bound");
  }

  const double ser = static_cast<double>(pkt.size) / hop.bandwidth;
  op.busy = true;
  ctx.schedule_in(
      ser, router, kEvPortFree, router, p,
      pri_key(kEvPortFree,
              static_cast<std::uint64_t>(router) * ports_per_router_ + p));
  if (hop.cls == LinkClass::kEjection) {
    // The destination terminal hangs off this router: same LP.
    ctx.schedule_in(ser + hop.latency, router, kEvPktAtTerminal, pid,
                    hop.dst_terminal, pri_key(kEvPktAtTerminal, pkt.uid));
  } else {
    // Cross-router (possibly cross-partition): the link latency keeps the
    // delay at or above the conservative lookahead.
    ctx.schedule_in(ser + hop.latency + params_.router_delay, hop.dst_router,
                    kEvPktAtRouter, pid, hop.dst_router,
                    pri_key(kEvPktAtRouter, pkt.uid));
  }
}

void Network::return_credit(Ctx& ctx, std::uint64_t enc_link) {
  const LinkClass cls = link_class(enc_link);
  if (cls == LinkClass::kNone) return;
  // Credits go to the LP owning the link's upstream (source) port; for
  // local/global links that can be another partition, and credit_latency
  // >= lookahead keeps the conservative contract.
  pdes::LpId lp = 0;
  switch (cls) {
    case LinkClass::kInjection:
    case LinkClass::kEjection:
      lp = topo_.terminal_router(link_id(enc_link));
      break;
    case LinkClass::kLocal:
      lp = topo_.local_link_ends(link_id(enc_link)).first;
      break;
    case LinkClass::kGlobal:
      lp = topo_.global_link_src(link_id(enc_link)).router;
      break;
    case LinkClass::kNone:
      break;
  }
  ctx.schedule_in(params_.credit_latency, lp, kEvCredit, enc_link, 0,
                  pri_key(kEvCredit, enc_link));
}

void Network::handle_packet_at_router(Ctx& ctx, std::uint32_t pid,
                                      std::uint32_t router, bool is_retry) {
  Packet& pkt = packet(pid);
  if (!is_retry) ++pkt.router_hops;
  Shard& sh = *shards_[ctx.shard];
  if (has_faults_ && fault_.router_down(router, ctx.now)) {
    // The packet arrived at (or is retrying on) a dead router: it cannot
    // be routed until the router revives.
    retry_or_drop(ctx, pid, router);
    return;
  }
  const routing::Decision d = planner_.route(pkt.route, router, *this,
                                             router_rng_[router],
                                             sh.route_stats, ctx.now);
  if (has_faults_ && port_blocked(router, d.port, ctx.now)) {
    // Routing found no live alternative (e.g. a dead local hop, or every
    // candidate global exit down): back off and re-route later.
    retry_or_drop(ctx, pid, router, d.port);
    return;
  }
  port(router, d.port).queue.push_back(pid);
  update_backlog(ctx, router, d.port);
  try_transmit(ctx, router, d.port);
}

void Network::retry_or_drop(Ctx& ctx, std::uint32_t pid, std::uint32_t router,
                            std::uint32_t blocked_port) {
  Packet& pkt = packet(pid);
  Shard& sh = *shards_[ctx.shard];
  LinkArray* la = nullptr;
  std::uint32_t link = 0;
  if (blocked_port != std::numeric_limits<std::uint32_t>::max()) {
    const Hop& hop = hop_for_port(router, blocked_port);
    if (hop.cls == LinkClass::kLocal || hop.cls == LinkClass::kGlobal) {
      la = &link_array_for(hop.cls);
      link = hop.id;
    }
  }
  if (pkt.retries < params_.fault_retry_budget) {
    ++pkt.retries;
    ++sh.fault_retries;
    ++router_retries_[router];
    if (la) ++la->retries[link];
    // Exponential backoff; the retry re-enters the routing step, so a
    // packet stuck at a dead port escapes as soon as an alternative (or
    // the port itself) comes back up.
    const std::uint32_t exp = std::min(pkt.retries - 1, 20u);
    const double backoff =
        params_.fault_retry_base * static_cast<double>(1ULL << exp);
    ctx.schedule_in(backoff, router, kEvPktRetry, pid, router,
                    pri_key(kEvPktRetry, pkt.uid));
    return;
  }
  // Retry budget exhausted: drop the packet where it sits. Its upstream
  // buffer slot frees, and the source terminal's partition is notified so
  // per-terminal drop counts stay owner-written (the notify delay equals
  // credit_latency, which respects the conservative lookahead).
  ++sh.pkts_dropped;
  sh.bytes_dropped += pkt.size;
  ++router_drops_[router];
  if (la) ++la->drops[link];
  --sh.in_flight;
  return_credit(ctx, pkt.in_link);
  ctx.schedule_in(params_.credit_latency, lp_of_terminal(pkt.src),
                  kEvPktDropNotify, pkt.src, 0,
                  pri_key(kEvPktDropNotify, pkt.uid));
  free_packet(ctx.shard, pid);
}

void Network::handle_fault_wake(Ctx& ctx, std::uint32_t router) {
  // Some adjacent entity changed liveness at exactly ctx.now. Dead ports:
  // bounce their queues into the retry path (the packets re-route and can
  // escape via a detour). Live ports: restart transmission — they may have
  // been silenced while down.
  for (std::uint32_t p = 0; p < ports_per_router_; ++p) {
    OutPort& op = port(router, p);
    if (port_blocked(router, p, ctx.now)) {
      while (!op.queue.empty()) {
        const std::uint32_t pid = op.queue.front();
        op.queue.pop_front();
        retry_or_drop(ctx, pid, router, p);
      }
      update_backlog(ctx, router, p);
    } else {
      try_transmit(ctx, router, p);
    }
  }
  // A revived router also resumes injection for its terminals.
  for (std::uint32_t s = 0; s < topo_.terminals_per_router(); ++s) {
    try_inject(ctx, topo_.terminal_id(router, s));
  }
}

void Network::handle_packet_at_terminal(Ctx& ctx, std::uint32_t pid,
                                        std::uint32_t term) {
  Packet& pkt = packet(pid);
  DV_CHECK(pkt.dst == term, "packet delivered to the wrong terminal");
  ++term_finished_[term];
  term_sum_latency_[term] += ctx.now - pkt.inject_time;
  term_sum_hops_[term] += pkt.router_hops;
  if (pkt.route.fault_detour) ++term_rerouted_[term];
  Shard& sh = *shards_[ctx.shard];
  ++sh.packets_delivered;
  sh.bytes_delivered += pkt.size;
  --sh.in_flight;

  // The ejection buffer slot frees once the NIC has drained the packet.
  DV_CHECK(link_class(pkt.in_link) == LinkClass::kEjection,
           "terminal received a packet not via its ejection link");
  const double drain =
      static_cast<double>(pkt.size) / params_.terminal_bandwidth;
  ctx.schedule_in(drain, lp_of_terminal(term), kEvCredit, pkt.in_link, 0,
                  pri_key(kEvCredit, pkt.in_link));
  free_packet(ctx.shard, pid);
}

// ----------------------------------------------------------------- sampling

void Network::take_sample(SimTime now) {
  // Frames are written straight into the series' frame-major storage
  // (push_frame_raw) — no temporary frame vectors on the per-tick path.
  // The delta arithmetic (float of a cumulative-double difference, in
  // entity order) matches the frames the row-at-a-time version produced
  // bit for bit.
  obs::ScopedPhase phase("sample");
  auto capture = [now](const LinkArray& la, std::vector<double>& prev_traffic,
                       std::vector<double>& prev_sat,
                       metrics::SampledSeries& traffic_ts,
                       metrics::SampledSeries& sat_ts) {
    const std::size_t n = la.traffic.size();
    float* dt = traffic_ts.push_frame_raw();
    float* ds = sat_ts.push_frame_raw();
    for (std::size_t i = 0; i < n; ++i) {
      const double cur_t = la.traffic[i];
      const double cur_s = la.sat_at(static_cast<std::uint32_t>(i), now);
      dt[i] = static_cast<float>(cur_t - prev_traffic[i]);
      ds[i] = static_cast<float>(cur_s - prev_sat[i]);
      prev_traffic[i] = cur_t;
      prev_sat[i] = cur_s;
    }
  };
  capture(local_links_, prev_local_traffic_, prev_local_sat_,
          local_traffic_ts_, local_sat_ts_);
  capture(global_links_, prev_global_traffic_, prev_global_sat_,
          global_traffic_ts_, global_sat_ts_);
  // Terminal series: injected bytes and injection+ejection saturation.
  {
    const std::size_t n = topo_.num_terminals();
    float* dt = term_traffic_ts_.push_frame_raw();
    float* ds = term_sat_ts_.push_frame_raw();
    for (std::size_t i = 0; i < n; ++i) {
      const auto li = static_cast<std::uint32_t>(i);
      const double cur_t = injection_.traffic[i];
      const double cur_s =
          injection_.sat_at(li, now) + ejection_.sat_at(li, now);
      dt[i] = static_cast<float>(cur_t - prev_term_traffic_[i]);
      ds[i] = static_cast<float>(cur_s - prev_term_sat_[i]);
      prev_term_traffic_[i] = cur_t;
      prev_term_sat_[i] = cur_s;
    }
  }
}

// ----------------------------------------------------------------- dispatch

void Network::dispatch(Ctx& ctx, const pdes::Event& ev) {
  switch (ev.kind) {
    case kEvMsgStart: {
      const Message& m = messages_[ev.data0];
      terminals_[m.src_terminal].pending.push_back(
          MsgProgress{m.dst_terminal, m.bytes, m.job, ctx.now});
      try_inject(ctx, m.src_terminal);
      break;
    }
    case kEvInjectorFree: {
      const auto term = static_cast<std::uint32_t>(ev.data0);
      terminals_[term].injector_busy = false;
      try_inject(ctx, term);
      break;
    }
    case kEvPktAtRouter:
      handle_packet_at_router(ctx, static_cast<std::uint32_t>(ev.data0),
                              static_cast<std::uint32_t>(ev.data1));
      break;
    case kEvPktAtTerminal:
      handle_packet_at_terminal(ctx, static_cast<std::uint32_t>(ev.data0),
                                static_cast<std::uint32_t>(ev.data1));
      break;
    case kEvPortFree: {
      const auto router = static_cast<std::uint32_t>(ev.data0);
      const auto p = static_cast<std::uint32_t>(ev.data1);
      port(router, p).busy = false;
      try_transmit(ctx, router, p);
      break;
    }
    case kEvCredit: {
      const std::uint64_t enc = ev.data0;
      const std::uint32_t id = link_id(enc);
      const std::uint32_t vc = link_vc(enc);
      switch (link_class(enc)) {
        case LinkClass::kInjection:
          injection_.give_credit(id, vc, ctx.now);
          try_inject(ctx, id);
          break;
        case LinkClass::kEjection: {
          ejection_.give_credit(id, vc, ctx.now);
          const std::uint32_t router = topo_.terminal_router(id);
          try_transmit(ctx, router, topo_.terminal_slot(id));
          break;
        }
        case LinkClass::kLocal: {
          local_links_.give_credit(id, vc, ctx.now);
          const auto [router, lport] = topo_.local_link_ends(id);
          try_transmit(ctx, router, topo_.terminals_per_router() + lport);
          break;
        }
        case LinkClass::kGlobal: {
          global_links_.give_credit(id, vc, ctx.now);
          const topo::GlobalEnd src = topo_.global_link_src(id);
          try_transmit(ctx, src.router, topo_.global_port(src.channel));
          break;
        }
        case LinkClass::kNone:
          DV_CHECK(false, "credit for the null link");
      }
      break;
    }
    case kEvPktRetry:
      handle_packet_at_router(ctx, static_cast<std::uint32_t>(ev.data0),
                              static_cast<std::uint32_t>(ev.data1),
                              /*is_retry=*/true);
      break;
    case kEvFaultWake:
      handle_fault_wake(ctx, static_cast<std::uint32_t>(ev.data0));
      break;
    case kEvPktDropNotify:
      ++term_dropped_[static_cast<std::uint32_t>(ev.data0)];
      break;
    default:
      DV_CHECK(false, "unknown event kind");
  }
}

void Network::on_event(pdes::Simulator& sim, const pdes::Event& ev) {
  Ctx ctx{&sim, nullptr, sim.now(), 0};
  dispatch(ctx, ev);
}

void Network::on_event(pdes::ParallelContext& pctx, const pdes::Event& ev) {
  t_active_partition = static_cast<std::int32_t>(pctx.partition());
  Ctx ctx{nullptr, &pctx, pctx.now(), pctx.partition()};
  dispatch(ctx, ev);
}

// ----------------------------------------------------------------- run

metrics::RunMetrics Network::run() {
  DV_REQUIRE(!ran_, "a Network can only run once");
  ran_ = true;

  partitions_used_ = resolve_partitions();
  const std::uint32_t nparts = partitions_used_;
  init_shards(nparts);

  if (nparts > 1) {
    // Topology-aware placement: groups are the atoms (the LP map is
    // group-contiguous and local links never leave a group), and the
    // partitioner minimizes the weight of channels crossing the cut
    // instead of striping contiguous group blocks.
    plan_ = std::make_unique<PartitionPlan>(partition_channels(
        topo_.groups(), nparts, dragonfly_channel_graph(topo_, params_)));
    for (std::uint32_t r = 0; r < topo_.num_routers(); ++r) {
      router_partition_[r] = plan_->atom_partition[topo_.router_group(r)];
    }
    par_ = std::make_unique<pdes::ParallelSimulator>(nparts, lookahead());
    // Per-pair lookahead: the tightest delay over channels actually
    // crossing each ordered cut, +infinity where nothing crosses. Under
    // faults the drop-notify path can message *any* pair (source
    // terminals live anywhere) at credit latency, so every pair is
    // clamped there. Must precede all scheduling — it retunes each
    // partition's bucket width, which requires empty queues.
    for (std::uint32_t s = 0; s < nparts; ++s) {
      for (std::uint32_t d = 0; d < nparts; ++d) {
        if (s == d) continue;
        double la = plan_->pair_lookahead(s, d);
        if (has_faults_) la = std::min(la, params_.credit_latency);
        par_->set_pair_lookahead(s, d, la);
      }
    }
    for (std::uint32_t r = 0; r < topo_.num_routers(); ++r) {
      par_->add_lp(static_cast<pdes::ParallelLp*>(this), router_partition_[r]);
    }
    if (params_.event_budget) par_->set_event_budget(params_.event_budget);
  } else {
    std::fill(router_partition_.begin(), router_partition_.end(), 0u);
  }

  // Fault wakes are plain pre-scheduled events, so both engines see the
  // same liveness transitions in the same (time, pri) order.
  if (has_faults_) {
    for (const auto& [router, t] : fault_.wakes()) {
      const std::uint64_t pri = pri_key(kEvFaultWake, router);
      if (par_) {
        par_->schedule(t, router, kEvFaultWake, router, 0, pri);
      } else {
        sim_.schedule(t, router, kEvFaultWake, router, 0, pri);
      }
    }
  }

  for (std::size_t i = 0; i < messages_.size(); ++i) {
    const pdes::LpId lp = lp_of_terminal(messages_[i].src_terminal);
    const std::uint64_t pri = pri_key(kEvMsgStart, i);
    if (par_) {
      par_->schedule(messages_[i].time, lp, kEvMsgStart, i, 0, pri);
    } else {
      sim_.schedule(messages_[i].time, lp, kEvMsgStart, i, 0, pri);
    }
  }

  // Sampling is orchestrated from here (not via self-rescheduling events):
  // both engines run window-by-window to each tick, and the sampler reads
  // link state between windows when no worker is active.
  SimTime end = 0.0;
  {
    obs::ScopedPhase phase("sim");
    if (sample_dt_ > 0.0) {
      SimTime tick = 0.0;
      if (par_) {
        while (par_->has_events()) {
          tick += sample_dt_;
          par_->run_until(tick);
          take_sample(tick);
        }
      } else {
        while (!sim_.queue_empty()) {
          tick += sample_dt_;
          sim_.run_until(tick);
          take_sample(tick);
        }
      }
      end = tick;
    } else if (par_) {
      par_->run_until(std::numeric_limits<SimTime>::max());
      end = par_->last_event_time();
    } else {
      sim_.run();
      end = sim_.now();
    }
  }

  std::int64_t in_flight = 0;
  std::uint64_t msgs_finished = 0, bytes_in = 0, bytes_out = 0;
  std::uint64_t bytes_dropped = 0;
  for (const auto& sh : shards_) {
    in_flight += sh->in_flight;
    msgs_finished += sh->msgs_finished;
    bytes_in += sh->bytes_injected;
    bytes_out += sh->bytes_delivered;
    bytes_dropped += sh->bytes_dropped;
  }
  DV_CHECK(in_flight == 0, "simulation drained with packets in flight");
  if (has_faults_) {
    // Messages queued behind a permanently dead router never finish
    // injecting; everything that did inject must be accounted for.
    DV_CHECK(msgs_finished <= messages_.size(),
             "message bookkeeping overflowed");
  } else {
    DV_CHECK(msgs_finished == messages_.size(),
             "simulation drained with messages outstanding");
  }
  DV_CHECK(bytes_in == bytes_out + bytes_dropped,
           "flow conservation violated: injected != delivered + dropped");

  metrics::RunMetrics out;
  {
    obs::ScopedPhase phase("collect");
    flush_and_collect(out, end);
  }
  publish_run_obs(out);
  return out;
}

std::uint64_t Network::packets_injected() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->packets_injected;
  return n;
}

std::uint64_t Network::packets_delivered() const {
  std::uint64_t n = 0;
  for (const auto& sh : shards_) n += sh->packets_delivered;
  return n;
}

void Network::publish_run_obs(const metrics::RunMetrics& out) {
#ifdef DV_OBS_ENABLED
  std::uint64_t bytes_in = 0, bytes_out = 0;
  std::uint64_t retries = 0, dropped = 0, bytes_dropped = 0;
  routing::RouteStats rs;
  for (const auto& sh : shards_) {
    bytes_in += sh->bytes_injected;
    bytes_out += sh->bytes_delivered;
    retries += sh->fault_retries;
    dropped += sh->pkts_dropped;
    bytes_dropped += sh->bytes_dropped;
    rs.minimal += sh->route_stats.minimal;
    rs.nonminimal += sh->route_stats.nonminimal;
    rs.par_diverts += sh->route_stats.par_diverts;
    rs.fault_detours += sh->route_stats.fault_detours;
    rs.steps += sh->route_stats.steps;
  }
  obs::counter("net.messages").add(messages_.size());
  obs::counter("net.packets_injected").add(packets_injected());
  obs::counter("net.packets_delivered").add(packets_delivered());
  obs::counter("net.bytes_injected").add(bytes_in);
  obs::counter("net.bytes_delivered").add(bytes_out);
  double hops = 0.0;
  for (const auto& t : out.terminals) hops += t.sum_hops;
  obs::counter("net.router_hops").add(static_cast<std::uint64_t>(hops));
  obs::counter("net.route.minimal").add(rs.minimal);
  obs::counter("net.route.nonminimal").add(rs.nonminimal);
  obs::counter("net.route.par_diverts").add(rs.par_diverts);
  obs::counter("net.route.steps").add(rs.steps);
  obs::gauge("net.partitions").set(static_cast<double>(partitions_used_));
  if (plan_) {
    obs::counter("par.partition.count").add(plan_->num_parts);
    obs::counter("par.partition.cut_channels").add(plan_->cut_channels);
    obs::counter("par.partition.total_channels").add(plan_->total_channels);
    obs::counter("par.partition.refine_moves").add(plan_->refine_moves);
    obs::gauge("par.partition.cut_weight").set(plan_->cut_weight);
    double la_min = std::numeric_limits<double>::infinity(), la_max = 0.0;
    for (std::uint32_t s = 0; s < plan_->num_parts; ++s) {
      for (std::uint32_t d = 0; d < plan_->num_parts; ++d) {
        if (s == d) continue;
        const double la = plan_->pair_lookahead(s, d);
        if (!std::isfinite(la)) continue;
        la_min = std::min(la_min, la);
        la_max = std::max(la_max, la);
      }
    }
    if (std::isfinite(la_min)) {
      obs::gauge("par.partition.lookahead_min").set(la_min);
      obs::gauge("par.partition.lookahead_max").set(la_max);
    }
  }
  if (has_faults_) {
    std::uint64_t rerouted = 0;
    for (const auto& t : out.terminals) rerouted += t.packets_rerouted;
    obs::counter("net.fault.retries").add(retries);
    obs::counter("net.fault.pkts_dropped").add(dropped);
    obs::counter("net.fault.bytes_dropped").add(bytes_dropped);
    obs::counter("net.fault.detours").add(rs.fault_detours);
    obs::counter("net.fault.rerouted").add(rerouted);
    obs::gauge("net.fault.entities").set(static_cast<double>(fault_.entities()));
  }
  if (sample_dt_ > 0.0) {
    obs::counter("net.sample_frames").add(out.local_traffic_ts.frames());
  }
#else
  (void)out;
#endif
}

void Network::flush_and_collect(metrics::RunMetrics& out, SimTime end) {
  out.groups = topo_.groups();
  out.routers_per_group = topo_.routers_per_group();
  out.terminals_per_router = topo_.terminals_per_router();
  out.global_per_router = topo_.global_per_router();
  out.workload = workload_label_;
  out.routing = routing::to_string(planner_.algo());
  out.placement = placement_label_;
  out.job_names = job_names_;
  out.seed = seed_;
  out.end_time = end;

  out.local_links.resize(topo_.num_local_links());
  for (std::uint32_t lid = 0; lid < topo_.num_local_links(); ++lid) {
    const auto [router, lport] = topo_.local_link_ends(lid);
    const Hop& hop =
        hop_for_port(router, topo_.terminals_per_router() + lport);
    metrics::LinkMetrics& l = out.local_links[lid];
    l.src_router = router;
    l.src_port = topo_.terminals_per_router() + lport;
    l.dst_router = hop.dst_router;
    l.dst_port = hop.dst_port;
    l.traffic = local_links_.traffic[lid];
    l.sat_time = local_links_.sat_at(lid, end);
    l.retries = local_links_.retries[lid];
    l.pkts_dropped = local_links_.drops[lid];
    if (has_faults_) {
      l.downtime = fault_.effective_link_downtime(false, lid, router,
                                                  hop.dst_router, end);
    }
  }
  out.global_links.resize(topo_.num_global_links());
  for (std::uint32_t gid = 0; gid < topo_.num_global_links(); ++gid) {
    const topo::GlobalEnd src = topo_.global_link_src(gid);
    const Hop& hop = hop_for_port(src.router, topo_.global_port(src.channel));
    metrics::LinkMetrics& l = out.global_links[gid];
    l.src_router = src.router;
    l.src_port = topo_.global_port(src.channel);
    l.dst_router = hop.dst_router;
    l.dst_port = hop.dst_port;
    l.traffic = global_links_.traffic[gid];
    l.sat_time = global_links_.sat_at(gid, end);
    l.retries = global_links_.retries[gid];
    l.pkts_dropped = global_links_.drops[gid];
    if (has_faults_) {
      l.downtime = fault_.effective_link_downtime(true, gid, src.router,
                                                  hop.dst_router, end);
    }
  }
  // Terminal rows assemble here from the columnar accumulators — the only
  // place the 80-byte TerminalMetrics records are materialized.
  out.terminals.resize(topo_.num_terminals());
  for (std::uint32_t t = 0; t < topo_.num_terminals(); ++t) {
    metrics::TerminalMetrics& tm = out.terminals[t];
    tm.router = topo_.terminal_router(t);
    tm.port = topo_.terminal_slot(t);
    tm.packets_finished = term_finished_[t];
    tm.sum_latency = term_sum_latency_[t];
    tm.sum_hops = term_sum_hops_[t];
    tm.packets_rerouted = term_rerouted_[t];
    tm.packets_dropped = term_dropped_[t];
    tm.data_size = injection_.traffic[t];
    tm.sat_time = injection_.sat_at(t, end) + ejection_.sat_at(t, end);
    tm.job = term_job_[t];
    if (has_faults_) {
      // A terminal is down exactly when its router is.
      tm.downtime = fault_.router_downtime(topo_.terminal_router(t), end);
    }
  }
  if (has_faults_) {
    out.router_downtime.resize(topo_.num_routers());
    for (std::uint32_t r = 0; r < topo_.num_routers(); ++r) {
      out.router_downtime[r] = fault_.router_downtime(r, end);
    }
    out.router_retries = router_retries_;
    out.router_drops = router_drops_;
  }

  if (sample_dt_ > 0.0) {
    // The orchestrated run already sampled through `end`; just hand the
    // series over.
    out.sample_dt = sample_dt_;
    out.local_traffic_ts = std::move(local_traffic_ts_);
    out.local_sat_ts = std::move(local_sat_ts_);
    out.global_traffic_ts = std::move(global_traffic_ts_);
    out.global_sat_ts = std::move(global_sat_ts_);
    out.term_traffic_ts = std::move(term_traffic_ts_);
    out.term_sat_ts = std::move(term_sat_ts_);
  }
}

}  // namespace dv::netsim
