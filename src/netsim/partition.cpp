#include "netsim/partition.hpp"

#include <algorithm>
#include <limits>

#include "netsim/network.hpp"
#include "util/common.hpp"

namespace dv::netsim {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Credit returns are a few flits of control traffic against whole packets
// of data: they still force a cut channel (and pin its lookahead to the
// credit latency) but should barely influence *where* the cut goes.
constexpr double kCreditWeightScale = 0.1;

/// Fills the cut metrics and the pairwise min-delay matrix from a
/// finished atom -> partition assignment.
void finalize(PartitionPlan& plan, const std::vector<ChannelEdge>& edges) {
  const std::uint32_t parts = plan.num_parts;
  plan.pair_min_delay.assign(static_cast<std::size_t>(parts) * parts, kInf);
  plan.cut_channels = 0;
  plan.total_channels = 0;
  plan.cut_weight = 0.0;
  for (const ChannelEdge& e : edges) {
    if (e.src == e.dst) continue;
    ++plan.total_channels;
    const std::uint32_t ps = plan.atom_partition[e.src];
    const std::uint32_t pd = plan.atom_partition[e.dst];
    if (ps == pd) continue;
    ++plan.cut_channels;
    plan.cut_weight += e.weight;
    double& la = plan.pair_min_delay[ps * parts + pd];
    la = std::min(la, e.min_delay);
  }
}

/// Symmetric atom-to-atom weight matrix (direction does not matter for
/// the cut objective: a channel crossing either way is a crossing).
std::vector<double> weight_matrix(std::uint32_t atoms,
                                  const std::vector<ChannelEdge>& edges) {
  std::vector<double> w(static_cast<std::size_t>(atoms) * atoms, 0.0);
  for (const ChannelEdge& e : edges) {
    if (e.src == e.dst) continue;
    DV_REQUIRE(e.src < atoms && e.dst < atoms,
               "channel edge endpoint out of range");
    w[static_cast<std::size_t>(e.src) * atoms + e.dst] += e.weight;
    w[static_cast<std::size_t>(e.dst) * atoms + e.src] += e.weight;
  }
  return w;
}

}  // namespace

PartitionPlan stripe_partition(std::uint32_t atoms, std::uint32_t parts,
                               const std::vector<ChannelEdge>& edges) {
  DV_REQUIRE(parts >= 1 && parts <= atoms,
             "stripe_partition needs 1 <= parts <= atoms");
  PartitionPlan plan;
  plan.num_atoms = atoms;
  plan.num_parts = parts;
  plan.atom_partition.resize(atoms);
  for (std::uint32_t a = 0; a < atoms; ++a) {
    plan.atom_partition[a] =
        static_cast<std::uint32_t>(static_cast<std::uint64_t>(a) * parts /
                                   atoms);
  }
  finalize(plan, edges);
  return plan;
}

PartitionPlan partition_channels(std::uint32_t atoms, std::uint32_t parts,
                                 const std::vector<ChannelEdge>& edges) {
  DV_REQUIRE(parts >= 1 && parts <= atoms,
             "partition_channels needs 1 <= parts <= atoms");
  const std::vector<double> w = weight_matrix(atoms, edges);

  // --- Phase 1: greedy cluster merge -------------------------------
  // Every atom starts as its own cluster; repeatedly merge the pair of
  // clusters joined by the heaviest total channel weight whose combined
  // size fits the balance cap, until exactly `parts` clusters remain.
  // Ties break on the lowest (a, b) cluster ids so the result is a pure
  // function of the channel graph.
  std::uint32_t cap = (atoms + parts - 1) / parts;
  std::vector<std::uint32_t> cluster_of(atoms);
  for (std::uint32_t a = 0; a < atoms; ++a) cluster_of[a] = a;
  std::vector<std::uint32_t> size(atoms, 1);
  std::vector<bool> alive(atoms, true);
  // Inter-cluster weights, updated on merge (clusters are few: atoms is
  // group-count scale, so the O(atoms^2) matrix is cheap).
  std::vector<double> cw = w;
  std::uint32_t clusters = atoms;
  while (clusters > parts) {
    std::uint32_t best_a = atoms, best_b = atoms;
    double best_w = -1.0;
    for (std::uint32_t a = 0; a < atoms; ++a) {
      if (!alive[a]) continue;
      for (std::uint32_t b = a + 1; b < atoms; ++b) {
        if (!alive[b] || size[a] + size[b] > cap) continue;
        const double weight = cw[static_cast<std::size_t>(a) * atoms + b];
        if (weight > best_w) {
          best_w = weight;
          best_a = a;
          best_b = b;
        }
      }
    }
    if (best_a == atoms) {
      // No pair fits the cap (pathological sizes): relax it one notch
      // rather than wedge — the refinement pass keeps the cut honest.
      ++cap;
      continue;
    }
    // Merge b into a.
    for (std::uint32_t c = 0; c < atoms; ++c) {
      if (!alive[c] || c == best_a || c == best_b) continue;
      cw[static_cast<std::size_t>(best_a) * atoms + c] +=
          cw[static_cast<std::size_t>(best_b) * atoms + c];
      cw[static_cast<std::size_t>(c) * atoms + best_a] =
          cw[static_cast<std::size_t>(best_a) * atoms + c];
    }
    for (std::uint32_t a2 = 0; a2 < atoms; ++a2) {
      if (cluster_of[a2] == best_b) cluster_of[a2] = best_a;
    }
    size[best_a] += size[best_b];
    alive[best_b] = false;
    --clusters;
  }

  // Renumber surviving clusters 0..parts-1 in ascending id order.
  std::vector<std::uint32_t> remap(atoms, 0);
  std::uint32_t next = 0;
  for (std::uint32_t c = 0; c < atoms; ++c) {
    if (alive[c]) remap[c] = next++;
  }
  PartitionPlan plan;
  plan.num_atoms = atoms;
  plan.num_parts = parts;
  plan.atom_partition.resize(atoms);
  for (std::uint32_t a = 0; a < atoms; ++a) {
    plan.atom_partition[a] = remap[cluster_of[a]];
  }

  // --- Phase 2: KL-style boundary refinement -----------------------
  // Greedy single-atom moves: shift an atom to the partition where its
  // external weight is highest whenever that strictly reduces the cut,
  // respecting the balance cap and never emptying a partition. Bounded
  // passes; stops at the first pass with no accepted move.
  std::vector<std::uint32_t> part_size(parts, 0);
  for (std::uint32_t a = 0; a < atoms; ++a) ++part_size[plan.atom_partition[a]];
  std::vector<double> affinity(parts, 0.0);
  for (int pass = 0; pass < 8; ++pass) {
    bool moved = false;
    for (std::uint32_t a = 0; a < atoms; ++a) {
      const std::uint32_t from = plan.atom_partition[a];
      if (part_size[from] <= 1) continue;  // never empty a partition
      std::fill(affinity.begin(), affinity.end(), 0.0);
      for (std::uint32_t b = 0; b < atoms; ++b) {
        if (b == a) continue;
        affinity[plan.atom_partition[b]] +=
            w[static_cast<std::size_t>(a) * atoms + b];
      }
      std::uint32_t best = from;
      double best_gain = 0.0;
      for (std::uint32_t p = 0; p < parts; ++p) {
        if (p == from || part_size[p] + 1 > cap) continue;
        const double gain = affinity[p] - affinity[from];
        if (gain > best_gain) {
          best_gain = gain;
          best = p;
        }
      }
      if (best != from) {
        plan.atom_partition[a] = best;
        --part_size[from];
        ++part_size[best];
        ++plan.refine_moves;
        moved = true;
      }
    }
    if (!moved) break;
  }

  finalize(plan, edges);
  return plan;
}

std::vector<ChannelEdge> dragonfly_channel_graph(
    const topo::Dragonfly& topo, const Params& params) {
  std::vector<ChannelEdge> edges;
  edges.reserve(static_cast<std::size_t>(topo.num_global_links()) * 2);
  for (std::uint32_t r = 0; r < topo.num_routers(); ++r) {
    const std::uint32_t src_group = topo.router_group(r);
    for (std::uint32_t c = 0; c < topo.global_per_router(); ++c) {
      const std::uint32_t dst_group =
          topo.router_group(topo.global_neighbor(r, c).router);
      if (dst_group == src_group) continue;
      // Data: packets traverse the cable with at least the global wire
      // latency before anything happens at the far router.
      edges.push_back({src_group, dst_group, params.global_bandwidth,
                       params.global_latency});
      // Credit return for this cable flows the other way.
      edges.push_back({dst_group, src_group,
                       params.global_bandwidth * kCreditWeightScale,
                       params.credit_latency});
    }
  }
  return edges;
}

}  // namespace dv::netsim
