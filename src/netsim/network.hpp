// Packet-level Dragonfly network simulator (the CODES stand-in).
//
// Model: store-and-forward packets, output-queued routers, credit-based
// virtual-channel flow control. Every directed link (local, global, and
// both directions of each terminal-router cable) has per-VC credit pools;
// a packet occupies one downstream buffer slot from the moment its
// transmission starts until the downstream hop forwards it onward. The
// "link saturation time" metric — the paper's congestion signal — is the
// accumulated time any VC buffer of the link is full, which is exactly the
// back-pressure condition.
//
// Deadlock freedom: the VC used on a router-to-router link equals the
// packet's link-hop index, which increases monotonically along every path
// allowed by the RoutePlanner, so the channel dependency graph is acyclic.
//
// Engines: one model core serves two engines behind a tiny scheduling
// shim. The sequential dv::pdes::Simulator is the reference; the
// conservative pdes::ParallelSimulator runs the same model decomposed into
// one logical process per router (plus its terminals), partitioned by
// Dragonfly group. Every event carries an engine-independent priority key
// (kind + entity id), every terminal/router has its own random stream, and
// all mutable state is owned by exactly one router's partition — so for
// execution-order-independent routing (minimal, Valiant) the parallel
// engine reproduces the sequential RunMetrics bit for bit at any partition
// count. Lookahead is the minimum physical delay that can cross a
// partition boundary: min(credit_latency, local_latency, global_latency).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "metrics/run_metrics.hpp"
#include "pdes/engine.hpp"
#include "netsim/partition.hpp"
#include "pdes/parallel.hpp"
#include "placement/placement.hpp"
#include "routing/routing.hpp"
#include "topology/dragonfly.hpp"
#include "util/ring_queue.hpp"
#include "util/rng.hpp"

namespace dv::netsim {

/// Physical parameters. Bandwidths are in GB/s (== bytes/ns), latencies
/// and delays in ns. Defaults approximate the Cray Aries-class links used
/// in the paper's CODES configurations.
struct Params {
  double terminal_bandwidth = 5.25;
  double local_bandwidth = 5.25;
  double global_bandwidth = 4.7;
  double terminal_latency = 30.0;
  double local_latency = 50.0;
  double global_latency = 300.0;
  double router_delay = 50.0;
  double credit_latency = 20.0;
  std::uint32_t packet_size = 2048;       ///< bytes per packet (last may be short)
  std::uint32_t vc_buffer_packets = 8;    ///< credits per (link, VC)
  routing::AdaptiveParams adaptive;
  std::uint64_t event_budget = 0;         ///< 0 = unlimited
  /// Fault handling: a packet whose chosen output port is dead waits
  /// fault_retry_base * 2^(attempt-1) ns between attempts; after
  /// fault_retry_budget failed attempts it is dropped.
  double fault_retry_base = 200.0;
  std::uint32_t fault_retry_budget = 6;

  void validate() const;
};

/// One application-level message to inject.
struct Message {
  std::uint32_t src_terminal = 0;
  std::uint32_t dst_terminal = 0;
  std::uint64_t bytes = 0;
  SimTime time = 0.0;   ///< earliest injection time
  std::int32_t job = -1;
};

/// A complete simulation: construct, add messages, run once.
class Network final : public pdes::LogicalProcess,
                      public pdes::ParallelLp,
                      public routing::QueueProbe {
 public:
  Network(const topo::Dragonfly& topo, routing::Algo algo, Params params = {},
          std::uint64_t seed = 1);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const topo::Dragonfly& topology() const { return topo_; }

  /// Queues a message (must be called before run()). src != dst required.
  void add_message(const Message& m);
  void add_messages(const std::vector<Message>& ms);

  /// Labels the run for the metrics record.
  void set_labels(std::string workload, std::string placement,
                  std::vector<std::string> job_names);

  /// Marks terminal job ownership (from a placement) for the metrics.
  void set_jobs(const placement::Placement& placement);

  /// Enables fixed-rate time-series sampling (dt in ns).
  void enable_sampling(double dt);

  /// Installs a fault plan (must be called before run()). An empty plan is
  /// a no-op: the simulation is bit-identical to one without this call.
  /// A non-empty plan compiles the plan into a FaultTimeline, switches the
  /// planner into fault-aware routing (which may raise the VC count for
  /// minimal routing — detoured packets take Valiant-length paths), and
  /// schedules one wake event per liveness transition so the reaction is
  /// an ordinary deterministic PDES event on both engines.
  void set_fault_plan(const fault::FaultPlan& plan);

  /// Selects the engine: 0 or 1 = sequential reference, N > 1 = the
  /// conservative parallel engine with N partitions (clamped to the number
  /// of groups and to 64). Must be called before run().
  void set_parallel(std::uint32_t workers);

  /// Partition count the run actually used (valid after run()).
  std::uint32_t partitions_used() const { return partitions_used_; }

  /// Topology-aware partition plan the parallel run used (cut provenance
  /// for bench/obs); nullptr for sequential runs or before run().
  const PartitionPlan* partition_plan() const { return plan_.get(); }

  /// Per-worker engine statistics (busy/wait split, negotiation rounds);
  /// nullptr for sequential runs or before run().
  const pdes::ParallelSimulator* parallel_engine() const { return par_.get(); }

  /// Conservative window width: the smallest delay that can cross a
  /// router-partition boundary.
  double lookahead() const;

  /// Runs the simulation to completion and returns the collected metrics.
  /// May be called once.
  metrics::RunMetrics run();

  // routing::QueueProbe: output queue depth (packets, incl. in service).
  double depth(std::uint32_t router, std::uint32_t port) const override;
  // routing::QueueProbe: fault liveness of an output port. Pure function
  // of the fault timeline — safe to evaluate from any partition.
  bool port_blocked(std::uint32_t router, std::uint32_t port,
                    double now) const override;
  bool faults_active() const override { return has_faults_; }

  // pdes::LogicalProcess (sequential engine).
  void on_event(pdes::Simulator& sim, const pdes::Event& ev) override;
  // pdes::ParallelLp (parallel engine).
  void on_event(pdes::ParallelContext& ctx, const pdes::Event& ev) override;

  std::uint64_t events_processed() const {
    return par_ ? par_->events_processed() : sim_.events_processed();
  }
  std::uint64_t packets_injected() const;
  std::uint64_t packets_delivered() const;

 private:
  // ---- link identity: class + id ------------------------------------
  enum class LinkClass : std::uint32_t { kNone, kInjection, kEjection, kLocal, kGlobal };
  static std::uint64_t encode_link(LinkClass c, std::uint32_t id, std::uint32_t vc);
  static LinkClass link_class(std::uint64_t enc);
  static std::uint32_t link_id(std::uint64_t enc);
  static std::uint32_t link_vc(std::uint64_t enc);

  // ---- per-link-class credit/metric state ---------------------------
  struct LinkArray {
    std::uint32_t vcs = 1;
    std::vector<std::int32_t> credits;    // [link*vcs + vc]
    std::vector<SimTime> zero_since;      // [link*vcs + vc]
    std::vector<double> closed_sat;       // [link]
    std::vector<std::uint32_t> open_zero; // [link] count of open intervals
    std::vector<double> open_since_sum;   // [link]
    std::vector<double> traffic;          // [link] bytes
    std::vector<std::uint8_t> backlog;    // [link] output backlog state
    std::vector<SimTime> backlog_since;   // [link]
    std::vector<std::uint64_t> retries;   // [link] fault retries at the port
    std::vector<std::uint64_t> drops;     // [link] packets dropped at the port

    void init(std::size_t links, std::uint32_t vcs_per_link,
              std::int32_t initial_credits);
    void take_credit(std::uint32_t link, std::uint32_t vc, SimTime now);
    void give_credit(std::uint32_t link, std::uint32_t vc, SimTime now);
    bool has_credit(std::uint32_t link, std::uint32_t vc) const;
    /// Output-backlog contribution: while the upstream output queue holds
    /// a full buffer's worth of packets the link counts as saturated
    /// (contention at the link itself, not just downstream blocking).
    void set_backlog(std::uint32_t link, bool full, SimTime now);
    /// Saturation accumulated up to `now`, including open intervals.
    double sat_at(std::uint32_t link, SimTime now) const;
  };

  struct Packet {
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint32_t size = 0;
    std::int32_t job = -1;
    SimTime inject_time = 0.0;
    std::uint64_t uid = 0;          // (src << 32) | per-terminal counter —
                                    // engine-independent event priority key
    std::uint32_t router_hops = 0;  // routers visited
    std::uint32_t link_hops = 0;    // router-router links crossed (== VC)
    std::uint32_t retries = 0;      // fault-retry attempts at current router
    std::uint32_t next_free = 0;    // remote free-list chain (arena)
    std::uint64_t in_link = 0;      // where to return the buffer credit
    routing::PacketRoute route;
  };

  struct OutPort {
    RingQueue<std::uint32_t> queue;
    bool busy = false;
  };

  struct MsgProgress {
    std::uint32_t dst = 0;
    std::uint64_t remaining = 0;
    std::int32_t job = -1;
    SimTime issue_time = 0.0;  ///< when the application issued the send
  };

  struct TerminalState {
    RingQueue<MsgProgress> pending;
    bool injector_busy = false;
  };

  // ---- packet arena ---------------------------------------------------
  // One arena per partition ("shard"). A packet id is shard << 26 | index;
  // storage is fixed 1024-slot chunks, and the chunk table's capacity is
  // pre-reserved to the in-flight bound (total buffer credits), so the
  // table never reallocates while other partitions hold packet ids into
  // it. Packets delivered on a foreign partition are recycled through a
  // lock-free multi-producer stack drained by the owner at allocation.
  static constexpr std::uint32_t kChunkShift = 10;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;
  static constexpr std::uint32_t kShardShift = 26;
  static constexpr std::uint32_t kIndexMask = (1u << kShardShift) - 1;
  static constexpr std::uint32_t kNilIndex =
      std::numeric_limits<std::uint32_t>::max();

  /// Per-partition state: packet arena, scalar counters, routing stats.
  /// Only the owning partition's worker mutates a shard during a window
  /// (except remote_free, which is the lock-free return stack).
  struct alignas(64) Shard {
    std::vector<std::unique_ptr<Packet[]>> chunks;
    std::vector<std::uint32_t> free_list;
    std::uint32_t allocated = 0;
    std::atomic<std::uint32_t> remote_free{kNilIndex};

    std::uint64_t packets_injected = 0;
    std::uint64_t packets_delivered = 0;
    std::uint64_t bytes_injected = 0;
    std::uint64_t bytes_delivered = 0;
    std::int64_t in_flight = 0;      // per-shard delta; only the sum is >= 0
    std::uint64_t msgs_finished = 0;
    std::uint64_t fault_retries = 0;
    std::uint64_t pkts_dropped = 0;
    std::uint64_t bytes_dropped = 0;
    routing::RouteStats route_stats;
  };

  /// Engine-dispatch shim: handlers schedule through this so one model
  /// core serves both engines.
  struct Ctx {
    pdes::Simulator* seq = nullptr;
    pdes::ParallelContext* par = nullptr;
    SimTime now = 0.0;
    std::uint32_t shard = 0;
    void schedule_in(SimTime delay, pdes::LpId lp, std::uint32_t kind,
                     std::uint64_t data0, std::uint64_t data1,
                     std::uint64_t pri) {
      if (seq) {
        seq->schedule_in(delay, lp, kind, data0, data1, pri);
      } else {
        par->schedule(now + delay, lp, kind, data0, data1, pri);
      }
    }
  };

  // ---- event kinds ---------------------------------------------------
  enum : std::uint32_t {
    kEvMsgStart,      // data0 = message index
    kEvInjectorFree,  // data0 = terminal
    kEvPktAtRouter,   // data0 = packet, data1 = router
    kEvPktAtTerminal, // data0 = packet, data1 = terminal
    kEvPortFree,      // data0 = router, data1 = port
    kEvCredit,        // data0 = encoded link+vc
    kEvPktRetry,      // data0 = packet, data1 = router
    kEvFaultWake,     // data0 = router (a liveness transition near it)
    kEvPktDropNotify, // data0 = src terminal (attributes the drop)
  };

  /// Engine-independent ordering key for simultaneous events: kind in the
  /// top byte, the owning entity (packet uid, terminal, port, link) below.
  /// Events sharing a key are interchangeable (e.g. two credit returns
  /// for the same link+VC), so any (time, pri)-respecting order yields
  /// identical results on both engines.
  static constexpr std::uint64_t pri_key(std::uint32_t kind,
                                         std::uint64_t entity) {
    return (static_cast<std::uint64_t>(kind) << 56) | entity;
  }

  // ---- helpers ---------------------------------------------------
  std::uint32_t alloc_packet(std::uint32_t shard_id);
  void free_packet(std::uint32_t shard_id, std::uint32_t pid);
  Packet& packet(std::uint32_t pid) {
    Shard& sh = *shards_[pid >> kShardShift];
    const std::uint32_t idx = pid & kIndexMask;
    return sh.chunks[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }
  OutPort& port(std::uint32_t router, std::uint32_t p);
  LinkArray& link_array_for(LinkClass cls);
  void update_backlog(Ctx& ctx, std::uint32_t router, std::uint32_t p);
  pdes::LpId lp_of_terminal(std::uint32_t term) const {
    return topo_.terminal_router(term);
  }

  void dispatch(Ctx& ctx, const pdes::Event& ev);
  void try_inject(Ctx& ctx, std::uint32_t term);
  void try_transmit(Ctx& ctx, std::uint32_t router, std::uint32_t p);
  void handle_packet_at_router(Ctx& ctx, std::uint32_t pkt_id,
                               std::uint32_t router, bool is_retry = false);
  void handle_packet_at_terminal(Ctx& ctx, std::uint32_t pkt_id,
                                 std::uint32_t term);
  /// Fault reaction for a packet whose next hop from `router` is dead:
  /// schedules an exponential-backoff retry while the budget lasts, then
  /// drops the packet (freeing its buffer credit and notifying the source
  /// terminal's partition for attribution).
  void retry_or_drop(Ctx& ctx, std::uint32_t pkt_id, std::uint32_t router,
                     std::uint32_t blocked_port =
                         std::numeric_limits<std::uint32_t>::max());
  /// Reacts to a liveness transition adjacent to `router`: bounces queued
  /// packets off now-dead ports into the retry path, restarts transmission
  /// on revived ports, and re-attempts injection at local terminals.
  void handle_fault_wake(Ctx& ctx, std::uint32_t router);
  void return_credit(Ctx& ctx, std::uint64_t enc_link);
  void take_sample(SimTime now);
  void flush_and_collect(metrics::RunMetrics& out, SimTime end);
  std::uint32_t resolve_partitions() const;
  void init_shards(std::uint32_t count);
  void publish_run_obs(const metrics::RunMetrics& out);

  /// (link class, link id, downstream arrival delay, serialization rate)
  struct Hop {
    LinkClass cls = LinkClass::kNone;
    std::uint32_t id = 0;
    std::uint32_t dst_router = 0;   // for local/global
    std::uint32_t dst_port = 0;
    std::uint32_t dst_terminal = 0; // for ejection
    double bandwidth = 1.0;
    double latency = 0.0;
  };
  /// Derives the hop record from the topology (ctor-time only; the hot
  /// path reads the precomputed hop_cache_ through hop_for_port).
  Hop compute_hop(std::uint32_t router, std::uint32_t p) const;
  const Hop& hop_for_port(std::uint32_t router, std::uint32_t p) const {
    return hop_cache_[static_cast<std::size_t>(router) * ports_per_router_ + p];
  }

  // ---- state ---------------------------------------------------------
  const topo::Dragonfly topo_;
  Params params_;
  routing::RoutePlanner planner_;
  pdes::Simulator sim_;
  std::unique_ptr<pdes::ParallelSimulator> par_;

  std::vector<Message> messages_;
  std::vector<TerminalState> terminals_;
  std::vector<OutPort> ports_;       // router-major
  std::uint32_t ports_per_router_ = 0;
  std::uint32_t num_vcs_ = 1;

  LinkArray local_links_, global_links_, injection_, ejection_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Rng> term_rng_;               // injection-time routing draws
  std::vector<Rng> router_rng_;             // in-flight (PAR) routing draws
  std::vector<std::uint32_t> term_pkt_seq_; // per-terminal packet counter
  std::vector<std::uint32_t> router_partition_;

  // Per-port hop records, router-major — topology and physical parameters
  // are fixed at construction, so the hot path never recomputes them.
  std::vector<Hop> hop_cache_;

  // Terminal delivery stats, columnar: the delivery handler touches three
  // adjacent flat arrays instead of scattering into 80-byte records; the
  // full TerminalMetrics rows are assembled once, in flush_and_collect.
  std::vector<std::uint64_t> term_finished_;
  std::vector<double> term_sum_latency_;
  std::vector<double> term_sum_hops_;
  std::vector<std::uint64_t> term_rerouted_;
  std::vector<std::uint64_t> term_dropped_;

  // Fault injection. fault_ is immutable during the run; per-router tallies
  // are written only by the owning router's partition.
  fault::FaultTimeline fault_;
  bool has_faults_ = false;
  std::vector<std::uint64_t> router_retries_;
  std::vector<std::uint64_t> router_drops_;

  // Sampling.
  double sample_dt_ = 0.0;
  metrics::SampledSeries local_traffic_ts_, local_sat_ts_;
  metrics::SampledSeries global_traffic_ts_, global_sat_ts_;
  metrics::SampledSeries term_traffic_ts_, term_sat_ts_;
  std::vector<double> prev_local_traffic_, prev_local_sat_;
  std::vector<double> prev_global_traffic_, prev_global_sat_;
  std::vector<double> prev_term_traffic_, prev_term_sat_;

  std::string workload_label_ = "custom";
  std::string placement_label_ = "custom";
  std::vector<std::string> job_names_;
  std::vector<std::int32_t> term_job_;

  std::uint64_t seed_ = 1;
  std::uint32_t parallel_ = 1;
  std::uint32_t partitions_used_ = 1;
  std::unique_ptr<PartitionPlan> plan_;  // parallel runs only
  bool ran_ = false;
};

}  // namespace dv::netsim
