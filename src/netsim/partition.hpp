// Topology-aware partitioning for the parallel netsim engine.
//
// The unit of placement is an *atom* — an indivisible block of LPs that
// must land on one partition (for the dragonfly model an atom is a group:
// the LP map is group-contiguous and local links never leave a group).
// The input is the directed channel graph between atoms; each edge carries
// the traffic-class weight used by the cut objective (how much crossing
// it is expected to hurt) and the minimum latency any event travelling
// over it can carry (what bounds the pairwise lookahead if it crosses).
//
// partition_channels() minimizes the weight of channels crossing the cut:
// greedy cluster merging (heaviest inter-cluster weight first, capped at
// ceil(atoms/parts) atoms per partition) followed by KL-style boundary
// refinement (single-atom moves with positive cut gain). The result is
// deterministic — no RNG, fixed tie-breaks — because partition layout
// feeds the parallel engine whose output must be byte-identical to the
// sequential engine regardless of how clever the placement is.
//
// stripe_partition() is the naive contiguous striping the engine used
// before (atom a -> a * parts / atoms), kept as the comparison baseline:
// tests assert the optimized cut is never worse.
//
// The plan also carries the per-partition-pair lookahead matrix: entry
// (p, q) is the minimum `min_delay` over channels that actually cross
// from p to q, or +infinity when no channel does (the parallel engine
// treats +infinity pairs as unreachable — sends there throw).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/dragonfly.hpp"

namespace dv::netsim {

struct Params;

/// One directed channel between atoms. `weight` is the cut-objective
/// weight (traffic class x bandwidth), `min_delay` the smallest latency
/// any cross-partition event on this channel can carry.
struct ChannelEdge {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  double weight = 1.0;
  double min_delay = 0.0;
};

/// Output of a partitioning pass, including cut provenance for obs/bench.
struct PartitionPlan {
  std::uint32_t num_atoms = 0;
  std::uint32_t num_parts = 0;
  std::vector<std::uint32_t> atom_partition;  ///< atom -> partition id
  std::uint64_t cut_channels = 0;   ///< directed channels crossing the cut
  std::uint64_t total_channels = 0; ///< directed channels between atoms
  double cut_weight = 0.0;          ///< total weight of crossing channels
  std::uint64_t refine_moves = 0;   ///< KL-style moves accepted
  /// Row-major [src_part][dst_part]: min `min_delay` over channels
  /// crossing that ordered pair; +infinity when none does. The diagonal
  /// is +infinity (same-partition events need no lookahead).
  std::vector<double> pair_min_delay;

  double pair_lookahead(std::uint32_t src, std::uint32_t dst) const {
    return pair_min_delay[src * num_parts + dst];
  }
};

/// Naive contiguous striping baseline: atom a -> a * parts / atoms.
PartitionPlan stripe_partition(std::uint32_t atoms, std::uint32_t parts,
                               const std::vector<ChannelEdge>& edges);

/// Greedy cluster merge + KL-style refinement minimizing cut weight.
/// Every partition ends up non-empty with at most ceil(atoms / parts)
/// atoms (the cap is relaxed only if merging would otherwise wedge).
/// Requires 1 <= parts <= atoms; edges with src == dst are ignored.
PartitionPlan partition_channels(std::uint32_t atoms, std::uint32_t parts,
                                 const std::vector<ChannelEdge>& edges);

/// Dragonfly channel graph at group granularity: one data edge per
/// directed global link (weight = global bandwidth, min_delay = global
/// latency) and one credit-return edge in the reverse direction (light
/// weight, min_delay = credit latency). Local links never leave a group
/// and so never appear.
std::vector<ChannelEdge> dragonfly_channel_graph(const topo::Dragonfly& topo,
                                                 const Params& params);

}  // namespace dv::netsim
