#include "netsim/fattree_network.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace dv::netsim {

namespace {
/// Deterministic ECMP flow hash.
std::uint32_t flow_hash(std::uint32_t src, std::uint32_t dst,
                        std::uint64_t seed) {
  std::uint64_t s = (static_cast<std::uint64_t>(src) << 32) | dst;
  s ^= seed * 0x9e3779b97f4a7c15ULL;
  return static_cast<std::uint32_t>(splitmix64(s) >> 32);
}
}  // namespace

void FatTreeParams::validate() const {
  DV_REQUIRE(host_bandwidth > 0 && link_bandwidth > 0,
             "bandwidths must be positive");
  DV_REQUIRE(host_latency >= 0 && link_latency >= 0 && switch_delay >= 0,
             "latencies must be non-negative");
  DV_REQUIRE(packet_size > 0, "packet size must be positive");
  DV_REQUIRE(queue_packets > 0, "queue threshold must be positive");
}

FatTreeNetwork::FatTreeNetwork(const topo::FatTree& topo,
                               FatTreeParams params, std::uint64_t seed)
    : topo_(topo), params_(params), seed_(seed) {
  params_.validate();
  hosts_.resize(topo_.num_hosts());
  host_stats_.resize(topo_.num_hosts());
  host_job_.assign(topo_.num_hosts(), -1);
  const std::uint32_t half = topo_.k() / 2;
  for (std::uint32_t h = 0; h < topo_.num_hosts(); ++h) {
    host_stats_[h].router =
        topo_.host_pod(h) * topo_.k() + (topo_.host_edge(h) % half);
    host_stats_[h].port = h % half;
  }
  // Port layout.
  port_base_.resize(node_count() + 1);
  std::uint32_t base = 0;
  for (std::uint32_t n = 0; n < node_count(); ++n) {
    port_base_[n] = base;
    base += ports_of(n);
  }
  port_base_[node_count()] = base;
  ports_.resize(base);
  sim_.add_lp(this);
  if (params_.event_budget) sim_.set_event_budget(params_.event_budget);
}

std::uint32_t FatTreeNetwork::node_count() const {
  return topo_.num_hosts() + topo_.num_edge() + topo_.num_agg() +
         topo_.num_core();
}

std::uint32_t FatTreeNetwork::ports_of(std::uint32_t node) const {
  const std::uint32_t h = topo_.num_hosts();
  if (node < h) return 1;                              // host uplink
  if (node < h + topo_.num_edge()) return topo_.k();   // edge: down+up
  if (node < h + topo_.num_edge() + topo_.num_agg()) return topo_.k();
  return topo_.k();                                    // core: one per pod
}

FatTreeNetwork::OutPort& FatTreeNetwork::port(std::uint32_t node,
                                              std::uint32_t p) {
  DV_CHECK(port_base_[node] + p < port_base_[node + 1], "port out of range");
  return ports_[port_base_[node] + p];
}

void FatTreeNetwork::add_message(const Message& m) {
  DV_REQUIRE(!ran_, "add_message after run()");
  DV_REQUIRE(m.src_terminal < topo_.num_hosts() &&
                 m.dst_terminal < topo_.num_hosts(),
             "message host out of range");
  DV_REQUIRE(m.src_terminal != m.dst_terminal, "self-message");
  DV_REQUIRE(m.bytes > 0 && m.time >= 0.0, "bad message");
  messages_.push_back(m);
}

void FatTreeNetwork::add_messages(const std::vector<Message>& ms) {
  for (const auto& m : ms) add_message(m);
}

void FatTreeNetwork::set_labels(std::string workload, std::string placement,
                                std::vector<std::string> job_names) {
  workload_label_ = std::move(workload);
  placement_label_ = std::move(placement);
  job_names_ = std::move(job_names);
}

void FatTreeNetwork::set_jobs(const std::vector<std::int32_t>& job_of) {
  DV_REQUIRE(job_of.size() == host_job_.size(), "job map size mismatch");
  host_job_ = job_of;
}

std::uint32_t FatTreeNetwork::alloc_packet() {
  if (!free_packets_.empty()) {
    const std::uint32_t id = free_packets_.back();
    free_packets_.pop_back();
    packets_[id] = Packet{};
    return id;
  }
  packets_.emplace_back();
  return static_cast<std::uint32_t>(packets_.size() - 1);
}

void FatTreeNetwork::free_packet(std::uint32_t id) {
  free_packets_.push_back(id);
}

void FatTreeNetwork::update_saturation(OutPort& op, SimTime now) {
  const bool full = op.queue.size() >= params_.queue_packets;
  if (full == op.saturated) return;
  if (full) {
    op.saturated = true;
    op.sat_since = now;
  } else {
    op.saturated = false;
    op.sat_closed += now - op.sat_since;
  }
}

double FatTreeNetwork::sat_at(const OutPort& op, SimTime now) const {
  return op.sat_closed + (op.saturated ? now - op.sat_since : 0.0);
}

std::pair<std::uint32_t, std::uint32_t> FatTreeNetwork::route(
    const Packet& pkt, std::uint32_t node) {
  const std::uint32_t k = topo_.k();
  const std::uint32_t half = k / 2;
  const std::uint32_t h = topo_.num_hosts();
  const std::uint32_t dst_edge = topo_.host_edge(pkt.dst);
  const std::uint32_t dst_pod = topo_.host_pod(pkt.dst);

  if (node < h) {
    // Host uplink to its edge switch.
    return {h + topo_.host_edge(pkt.src), 0};
  }
  if (node < h + topo_.num_edge()) {
    const std::uint32_t edge = node - h;
    if (edge == dst_edge) {
      // Down to the host: port = host slot.
      return {pkt.dst, pkt.dst % half};
    }
    // Up to an aggregation switch (ECMP): up ports are [half, k).
    const std::uint32_t u = flow_hash(pkt.src, pkt.dst, seed_) % half;
    const std::uint32_t pod = edge / half;
    return {h + topo_.num_edge() + pod * half + u, half + u};
  }
  if (node < h + topo_.num_edge() + topo_.num_agg()) {
    const std::uint32_t agg = node - h - topo_.num_edge();
    const std::uint32_t pod = agg / half;
    const std::uint32_t j = agg % half;
    if (pod == dst_pod) {
      // Down to the destination edge: down ports are [0, half).
      const std::uint32_t e = dst_edge % half;
      return {h + dst_edge, e};
    }
    // Up to a core switch (ECMP over this agg's half cores).
    const std::uint32_t u = flow_hash(pkt.src, pkt.dst, seed_ + 1) % half;
    return {h + topo_.num_edge() + topo_.num_agg() + j * half + u, half + u};
  }
  // Core: down to the destination pod's aggregation switch.
  const std::uint32_t core = node - h - topo_.num_edge() - topo_.num_agg();
  const std::uint32_t j = core / half;
  return {h + topo_.num_edge() + dst_pod * half + j, dst_pod};
}

void FatTreeNetwork::try_inject(std::uint32_t host) {
  HostState& hs = hosts_[host];
  if (hs.injector_busy || hs.pending.empty()) return;
  auto& [msg, remaining] = hs.pending.front();
  const std::uint32_t size = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(params_.packet_size, remaining));
  const std::uint32_t pid = alloc_packet();
  Packet& pkt = packets_[pid];
  pkt.src = host;
  pkt.dst = msg.dst_terminal;
  pkt.size = size;
  pkt.job = msg.job;
  pkt.issue_time = msg.time;
  remaining -= size;
  if (remaining == 0) {
    hs.pending.pop_front();
    --msgs_unfinished_;
  }
  ++packets_in_flight_;
  bytes_injected_ += size;
  host_stats_[host].data_size += size;

  OutPort& op = port(host, 0);
  op.queue.push_back(pid);
  update_saturation(op, sim_.now());
  hs.injector_busy = true;
  try_transmit(host, 0);
  // The injector frees when the host port finishes serializing (kEvPortFree
  // re-enables it via try_inject below).
}

void FatTreeNetwork::try_transmit(std::uint32_t node, std::uint32_t p) {
  OutPort& op = port(node, p);
  if (op.busy || op.queue.empty()) return;
  const std::uint32_t pid = op.queue.front();
  op.queue.pop_front();
  update_saturation(op, sim_.now());
  Packet& pkt = packets_[pid];
  op.traffic += pkt.size;
  const bool from_host = node < topo_.num_hosts();
  const double bw = from_host ? params_.host_bandwidth : params_.link_bandwidth;
  const double ser = static_cast<double>(pkt.size) / bw;
  op.busy = true;
  sim_.schedule_in(ser, 0, kEvPortFree, node, p);

  const auto [next, next_port] = route(pkt, node);
  (void)next_port;
  const bool to_host = next < topo_.num_hosts();
  const double lat =
      (from_host || to_host ? params_.host_latency : params_.link_latency) +
      (to_host ? 0.0 : params_.switch_delay);
  sim_.schedule_in(ser + lat, 0, kEvArrive, pid, next);
}

void FatTreeNetwork::on_event(pdes::Simulator& sim, const pdes::Event& ev) {
  switch (ev.kind) {
    case kEvMsgStart: {
      const Message& m = messages_[ev.data0];
      hosts_[m.src_terminal].pending.push_back({m, m.bytes});
      try_inject(m.src_terminal);
      break;
    }
    case kEvPortFree: {
      const auto node = static_cast<std::uint32_t>(ev.data0);
      const auto p = static_cast<std::uint32_t>(ev.data1);
      port(node, p).busy = false;
      if (node < topo_.num_hosts()) {
        hosts_[node].injector_busy = false;
        try_inject(node);
      }
      try_transmit(node, p);
      break;
    }
    case kEvArrive: {
      const auto pid = static_cast<std::uint32_t>(ev.data0);
      const auto node = static_cast<std::uint32_t>(ev.data1);
      Packet& pkt = packets_[pid];
      if (node < topo_.num_hosts()) {
        DV_CHECK(node == pkt.dst, "packet at the wrong host");
        metrics::TerminalMetrics& tm = host_stats_[node];
        ++tm.packets_finished;
        tm.sum_latency += sim.now() - pkt.issue_time;
        tm.sum_hops += pkt.hops;
        ++packets_delivered_;
        bytes_delivered_ += pkt.size;
        --packets_in_flight_;
        free_packet(pid);
        break;
      }
      ++pkt.hops;  // switch visit
      const auto [next, out_port] = route(pkt, node);
      (void)next;
      OutPort& op = port(node, out_port);
      op.queue.push_back(pid);
      update_saturation(op, sim.now());
      try_transmit(node, out_port);
      break;
    }
    default:
      DV_CHECK(false, "unknown event kind");
  }
}

metrics::RunMetrics FatTreeNetwork::run() {
  DV_REQUIRE(!ran_, "a FatTreeNetwork can only run once");
  ran_ = true;
  msgs_unfinished_ = messages_.size();
  for (std::size_t i = 0; i < messages_.size(); ++i) {
    sim_.schedule(messages_[i].time, 0, kEvMsgStart, i);
  }
  sim_.run();
  DV_CHECK(packets_in_flight_ == 0 && msgs_unfinished_ == 0,
           "fat tree drained with work outstanding");
  DV_CHECK(bytes_injected_ == bytes_delivered_, "flow conservation violated");

  const SimTime end = sim_.now();
  const std::uint32_t k = topo_.k();
  const std::uint32_t half = k / 2;
  const std::uint32_t h = topo_.num_hosts();

  metrics::RunMetrics out;
  // VA mapping: pods are groups; cores live in trailing pseudo-pods.
  const std::uint32_t core_pods = (topo_.num_core() + k - 1) / k;
  out.groups = k + core_pods;
  out.routers_per_group = k;
  out.terminals_per_router = half;
  out.global_per_router = half;
  out.workload = workload_label_;
  out.routing = "ecmp_up_down";
  out.placement = placement_label_;
  out.job_names = job_names_;
  out.seed = seed_;
  out.end_time = end;

  auto va_router = [&](std::uint32_t node) -> std::uint32_t {
    if (node < h + topo_.num_edge()) {
      const std::uint32_t edge = node - h;
      return (edge / half) * k + (edge % half);
    }
    if (node < h + topo_.num_edge() + topo_.num_agg()) {
      const std::uint32_t agg = node - h - topo_.num_edge();
      return (agg / half) * k + half + (agg % half);
    }
    const std::uint32_t core = node - h - topo_.num_edge() - topo_.num_agg();
    return (k + core / k) * k + (core % k);
  };

  // Local links: edge <-> agg within each pod (both directions).
  for (std::uint32_t pod = 0; pod < k; ++pod) {
    for (std::uint32_t i = 0; i < half; ++i) {
      const std::uint32_t edge_node = h + pod * half + i;
      for (std::uint32_t j = 0; j < half; ++j) {
        const std::uint32_t agg_node = h + topo_.num_edge() + pod * half + j;
        metrics::LinkMetrics up;
        up.src_router = va_router(edge_node);
        up.src_port = half + j;
        up.dst_router = va_router(agg_node);
        up.dst_port = i;
        const OutPort& opu = port(edge_node, half + j);
        up.traffic = opu.traffic;
        up.sat_time = sat_at(opu, end);
        out.local_links.push_back(up);

        metrics::LinkMetrics down;
        down.src_router = va_router(agg_node);
        down.src_port = i;
        down.dst_router = va_router(edge_node);
        down.dst_port = half + j;
        const OutPort& opd = port(agg_node, i);
        down.traffic = opd.traffic;
        down.sat_time = sat_at(opd, end);
        out.local_links.push_back(down);
      }
    }
  }
  // Global links: agg <-> core (both directions).
  for (std::uint32_t agg = 0; agg < topo_.num_agg(); ++agg) {
    const std::uint32_t agg_node = h + topo_.num_edge() + agg;
    const std::uint32_t pod = agg / half;
    const std::uint32_t j = agg % half;
    for (std::uint32_t u = 0; u < half; ++u) {
      const std::uint32_t core = j * half + u;
      const std::uint32_t core_node =
          h + topo_.num_edge() + topo_.num_agg() + core;
      metrics::LinkMetrics up;
      up.src_router = va_router(agg_node);
      up.src_port = half + u;
      up.dst_router = va_router(core_node);
      up.dst_port = pod;
      const OutPort& opu = port(agg_node, half + u);
      up.traffic = opu.traffic;
      up.sat_time = sat_at(opu, end);
      out.global_links.push_back(up);

      metrics::LinkMetrics down;
      down.src_router = va_router(core_node);
      down.src_port = pod;
      down.dst_router = va_router(agg_node);
      down.dst_port = half + u;
      const OutPort& opd = port(core_node, pod);
      down.traffic = opd.traffic;
      down.sat_time = sat_at(opd, end);
      out.global_links.push_back(down);
    }
  }
  // Terminals: hosts, plus padding rows for the pseudo-pod routers so the
  // VA invariant terminals == groups * a * p holds.
  out.terminals = host_stats_;
  for (std::uint32_t t = 0; t < out.terminals.size(); ++t) {
    out.terminals[t].job = host_job_[t];
    const OutPort& inj = port(t, 0);
    out.terminals[t].sat_time = sat_at(inj, end);
    // Edge down-port saturation (ejection) adds to the host's signal.
    const std::uint32_t edge_node = h + topo_.host_edge(t);
    const OutPort& ej = port(edge_node, t % half);
    out.terminals[t].sat_time += sat_at(ej, end);
  }
  const std::uint32_t want =
      out.groups * out.routers_per_group * out.terminals_per_router;
  for (std::uint32_t t = static_cast<std::uint32_t>(out.terminals.size());
       t < want; ++t) {
    metrics::TerminalMetrics pad;
    pad.router = t / half;
    pad.port = t % half;
    pad.job = -1;
    out.terminals.push_back(pad);
  }
  return out;
}

}  // namespace dv::netsim
