// Conservative parallel discrete-event simulation.
//
// The paper's substrate (ROSS) is a *parallel* DES engine; this module
// provides the conservative counterpart for multi-threaded execution.
// Logical processes are partitioned across worker threads and every event
// scheduled for an LP in a *different* partition must clear that pair's
// lookahead: `t >= now + pair_lookahead(src, dst)`. The engine supports
// two synchronization protocols over the same contract:
//
// - kPairwise (default): barrier-free window negotiation. Every partition
//   publishes a monotone lower bound `lb` on anything it will still
//   execute or send; a worker advances to
//   `safe = min over in-neighbours q of (lb[q] + pair_lookahead(q, p))`,
//   processes events below `safe`, and republishes its own bound. Cross
//   events travel through per-(src, dst) mailbox channels. No global
//   barrier: partitions far apart in the channel graph (large pairwise
//   lookahead) advance independently, and nobody pays a rendezvous per
//   window — the cost that made the barrier engine *lose* to sequential.
//
// - kBarrier: the original synchronous-window ("YAWNS"-style) protocol —
//   one global window of width `lookahead` per round with a std::barrier
//   rendezvous — kept as the fallback (DV_PAR_SYNC=barrier) and as the
//   simplest reference implementation of the same contract.
//
// The pairwise lookahead matrix defaults to the scalar `lookahead` for
// every pair; models with a channel graph (netsim) raise entries to the
// minimum delay over channels actually crossing that cut, and mark pairs
// no channel crosses as unreachable (+infinity — sends there throw).
// Each partition's bucket-scheduler width is unified with its effective
// window: the minimum finite inbound pairwise lookahead.
//
// Determinism: in pairwise mode the *sender* assigns cross-partition
// sequence numbers (per-channel counters, namespaced above local seqs),
// so the (time, pri, seq) order is independent of thread timing. In
// barrier mode outboxes are drained in (time, pri) order with source
// partition breaking exact ties. Either way a model that assigns unique
// priority keys (netsim does) gets an event order independent of both
// thread timing *and* partition count — bit-identical to the sequential
// engine. Models that leave pri = 0 (PHOLD) are still deterministic per
// (seed, partition count, sync mode).
//
// The classic PHOLD benchmark model is included (phold.hpp/cpp) and the
// equivalence of the parallel and sequential engines is tested on it.
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "pdes/engine.hpp"
#include "util/threadpool.hpp"

namespace dv::pdes {

class ParallelSimulator;

/// Handle through which an LP interacts with the engine during an event.
class ParallelContext {
 public:
  SimTime now() const { return now_; }
  std::uint32_t partition() const { return partition_; }
  /// Schedules an event. Same-partition targets accept any t >= now();
  /// cross-partition targets require t >= now() + pair_lookahead(this
  /// partition, target partition) (throws otherwise — that is the
  /// conservative contract).
  void schedule(SimTime t, LpId lp, std::uint32_t kind,
                std::uint64_t data0 = 0, std::uint64_t data1 = 0,
                std::uint64_t pri = 0);

 private:
  friend class ParallelSimulator;
  ParallelContext(ParallelSimulator* sim, std::uint32_t partition,
                  SimTime now)
      : sim_(sim), partition_(partition), now_(now) {}
  ParallelSimulator* sim_;
  std::uint32_t partition_;
  SimTime now_;
};

/// LP interface for the parallel engine.
class ParallelLp {
 public:
  virtual ~ParallelLp() = default;
  virtual void on_event(ParallelContext& ctx, const Event& ev) = 0;
};

class ParallelSimulator {
 public:
  enum class SyncMode {
    kPairwise,  ///< barrier-free pairwise window negotiation (default)
    kBarrier,   ///< global synchronous windows behind a std::barrier
  };

  /// Per-worker execution statistics, cumulative across run_until calls.
  struct WorkerStats {
    std::uint64_t events = 0;
    double busy_seconds = 0.0;   ///< wall time executing events
    double wait_seconds = 0.0;   ///< wall time waiting on peers/barriers
    std::uint64_t rounds = 0;    ///< negotiation rounds (pairwise mode)
    std::uint64_t stalls = 0;    ///< rounds that processed no event
  };

  /// `partitions` worker partitions (each gets a thread), conservative
  /// lookahead floor = `lookahead` (> 0). Every partition must own at
  /// least one LP by the time run_until is called: `partitions` larger
  /// than the LP count is rejected there (empty partitions would only
  /// idle-spin at every window edge).
  ParallelSimulator(std::size_t partitions, double lookahead);

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /// Registers an LP; round-robin partition assignment by default.
  LpId add_lp(ParallelLp* lp);
  LpId add_lp(ParallelLp* lp, std::uint32_t partition);

  std::size_t partitions() const { return parts_.size(); }
  double lookahead() const { return lookahead_; }
  std::uint32_t partition_of(LpId lp) const;

  /// Raises the lookahead for the directed pair (src -> dst) above the
  /// global floor: events sent from `src` to `dst` must then satisfy
  /// `t >= now + la`. Pass +infinity for pairs no channel crosses —
  /// sends there become contract violations and the pair stops
  /// constraining `dst`'s window. Must be called before any event is
  /// scheduled (it retunes dst's bucket width, which requires an empty
  /// queue). `la` must be >= lookahead() so the barrier fallback's
  /// global window stays sound.
  void set_pair_lookahead(std::uint32_t src, std::uint32_t dst, double la);
  double pair_lookahead(std::uint32_t src, std::uint32_t dst) const;

  /// Protocol selection; the DV_PAR_SYNC environment variable
  /// ("pairwise" / "barrier") overrides the built-in default.
  void set_sync_mode(SyncMode mode);
  SyncMode sync_mode() const { return sync_mode_; }

  /// Pre-run scheduling (any time >= 0).
  void schedule(SimTime t, LpId lp, std::uint32_t kind,
                std::uint64_t data0 = 0, std::uint64_t data1 = 0,
                std::uint64_t pri = 0);

  /// Runs until no events remain with time <= t_end.
  void run_until(SimTime t_end);

  std::uint64_t events_processed() const;
  /// True while any partition still holds pending events.
  bool has_events() const;
  /// Timestamp of the latest event processed so far (0 before any).
  SimTime last_event_time() const;
  /// Per-worker counters for bench reporting (call between runs).
  WorkerStats worker_stats(std::uint32_t p) const;

  /// Safety valve against runaway models; 0 disables. The budget is
  /// checked per partition and (approximately) globally between event
  /// batches, so overshoot by a batch per worker is possible; exceeding
  /// it throws.
  void set_event_budget(std::uint64_t max_events) { budget_ = max_events; }

 private:
  friend class ParallelContext;

  /// Mailbox for one directed partition pair. `buf` is the only field
  /// both sides touch (producer appends, consumer swap-takes, both under
  /// `mu`); `sent` is the sender-owned per-channel sequence counter that
  /// makes pairwise event order thread-timing independent.
  struct alignas(64) Channel {
    std::mutex mu;
    std::vector<Event> buf;
    std::uint64_t sent = 0;
  };

  struct alignas(64) Partition {
    BucketSched<Event> queue;  // bucket width = min finite inbound lookahead
    // outbox[target]: cross-partition events produced by *this* partition
    // during the current barrier-mode window. Single-writer (this
    // partition's worker), read only in the barrier completion step.
    std::vector<std::vector<Event>> outbox;
    // Pairwise mode: published lower bound on any event this partition
    // will still execute or send (monotone non-decreasing per run).
    std::atomic<SimTime> lb{0.0};
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
    SimTime last_time = 0.0;       // time of the last processed event
    std::exception_ptr error;      // worker exception, surfaced after join
    double busy_seconds = 0.0;     // wall time executing events (obs)
    double wait_seconds = 0.0;     // wall time not executing events (obs)
    std::uint64_t rounds = 0;      // pairwise negotiation rounds
    std::uint64_t stalls = 0;      // rounds with no event processed
    std::uint64_t published = 0;   // processed count already flushed to obs
    double busy_published = 0.0;
    std::uint64_t rounds_published = 0;
    std::uint64_t stalls_published = 0;
    std::uint64_t sched_bucketed_published = 0;
    std::uint64_t sched_heap_published = 0;
  };

  double la(std::uint32_t src, std::uint32_t dst) const {
    return la_[src * parts_.size() + dst];
  }
  Channel& channel(std::uint32_t src, std::uint32_t dst) {
    return channels_[src * parts_.size() + dst];
  }

  void process_window(std::uint32_t p);
  /// Single-partition fast path: with one partition no event can cross a
  /// partition boundary, so run_until drains the queue on a plain
  /// sequential loop — no windows, barriers, outboxes, or atomics — while
  /// keeping the pop order (and therefore the output) byte-identical.
  void run_single_partition();
  /// Pairwise-mode worker loop for partition p. `bar` is the rendezvous
  /// barrier every worker arrives at when `sync_requested_` is raised;
  /// its completion step is pairwise_sync_step().
  template <typename Barrier>
  void run_pairwise_worker(std::uint32_t p, Barrier& bar);
  /// Rendezvous completion step: single-threaded while every pairwise
  /// worker is parked. Detects global termination (empty queues and
  /// channels, or nothing left at or below t_end), surfaces worker
  /// errors, enforces the global budget, and re-seeds the published
  /// bounds — jumping idle gaps the per-round lb ratchet would crawl
  /// across one lookahead at a time.
  void pairwise_sync_step() noexcept;
  void run_barrier_mode();
  /// Seeds the published lower bounds with the greatest fixed point of
  /// lb[p] = min(queue_top[p], min_q(lb[q] + la(q, p))) before workers
  /// start (single-threaded Bellman-Ford relaxation).
  void seed_lower_bounds();
  /// Moves any events parked in pairwise channels into their target
  /// queues (single-threaded, after workers joined): events beyond t_end
  /// stay pending for the next run_until call.
  void drain_channels_sequential();
  /// Barrier completion step: single-threaded while every worker is
  /// parked. Drains outboxes, advances the window or flags termination.
  void advance_window() noexcept;
  void drain_outboxes();
  /// Publishes per-worker event counts, busy time and wait time to the
  /// observability registry (deltas flushed once per run_until call).
  void publish_obs(double loop_seconds);

  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<Channel> channels_;  // parts x parts mailboxes (pairwise)
  std::vector<ParallelLp*> lps_;
  std::vector<std::uint32_t> lp_partition_;
  double lookahead_;
  std::vector<double> la_;  // pairwise lookahead matrix, row-major [src][dst]
  SyncMode sync_mode_;
  ThreadPool pool_;
  bool running_ = false;
  std::uint64_t budget_ = 0;

  // Pairwise-mode shared state: any worker (stalled, errored, or over
  // budget) raises this flag; every worker checks it once per round and
  // then arrives at the rendezvous barrier, whose completion step is
  // pairwise_sync_step(). Mandatory arrival is what makes the rendezvous
  // deadlock-free.
  std::atomic<bool> sync_requested_{false};

  // Barrier-mode window state: written in advance_window() (or before
  // workers start), read by workers after the barrier — the barrier
  // orders both.
  SimTime window_end_ = 0.0;
  SimTime t_end_ = 0.0;
  bool done_ = false;
  // Atomic because pairwise workers may trip the global budget
  // concurrently; barrier mode only touches it single-threaded.
  std::atomic<bool> budget_exceeded_{false};
  std::uint64_t windows_ = 0;
  std::vector<Event> drain_buf_;  // completion-step scratch
};

}  // namespace dv::pdes
