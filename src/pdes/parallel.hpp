// Conservative parallel discrete-event simulation.
//
// The paper's substrate (ROSS) is a *parallel* DES engine; this module
// provides the conservative counterpart for multi-threaded execution: a
// synchronous-window ("YAWNS"-style) simulator. Logical processes are
// partitioned across worker threads; time advances in windows of width
// `lookahead`, and the protocol is safe because every event scheduled for
// an LP in a *different* partition must be at least `lookahead` in the
// future — so nothing scheduled during a window can land inside it on
// another partition. Same-partition events may use any non-negative delay
// and are processed in local timestamp order.
//
// The classic PHOLD benchmark model is included (phold.hpp/cpp) and the
// equivalence of the parallel and sequential engines is tested on it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "pdes/engine.hpp"
#include "util/threadpool.hpp"

namespace dv::pdes {

class ParallelSimulator;

/// Handle through which an LP interacts with the engine during an event.
class ParallelContext {
 public:
  SimTime now() const { return now_; }
  /// Schedules an event. Same-partition targets accept any t >= now();
  /// cross-partition targets require t >= now() + lookahead (throws
  /// otherwise — that is the conservative contract).
  void schedule(SimTime t, LpId lp, std::uint32_t kind,
                std::uint64_t data0 = 0, std::uint64_t data1 = 0);

 private:
  friend class ParallelSimulator;
  ParallelContext(ParallelSimulator* sim, std::uint32_t partition,
                  SimTime now)
      : sim_(sim), partition_(partition), now_(now) {}
  ParallelSimulator* sim_;
  std::uint32_t partition_;
  SimTime now_;
};

/// LP interface for the parallel engine.
class ParallelLp {
 public:
  virtual ~ParallelLp() = default;
  virtual void on_event(ParallelContext& ctx, const Event& ev) = 0;
};

class ParallelSimulator {
 public:
  /// `partitions` worker partitions (each gets a thread), window width =
  /// `lookahead` (> 0).
  ParallelSimulator(std::size_t partitions, double lookahead);

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /// Registers an LP; round-robin partition assignment by default.
  LpId add_lp(ParallelLp* lp);
  LpId add_lp(ParallelLp* lp, std::uint32_t partition);

  std::size_t partitions() const { return parts_.size(); }
  double lookahead() const { return lookahead_; }
  std::uint32_t partition_of(LpId lp) const;

  /// Pre-run scheduling (any time >= 0).
  void schedule(SimTime t, LpId lp, std::uint32_t kind,
                std::uint64_t data0 = 0, std::uint64_t data1 = 0);

  /// Runs until no events remain with time <= t_end.
  void run_until(SimTime t_end);

  std::uint64_t events_processed() const;

 private:
  friend class ParallelContext;

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Partition {
    std::priority_queue<Event, std::vector<Event>, Later> queue;
    std::vector<Event> mailbox;  // cross-partition deliveries
    std::mutex mailbox_mu;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
    double busy_seconds = 0.0;   // wall time inside process_window (obs)
    std::uint64_t published = 0;  // processed count already flushed to obs
    double busy_published = 0.0;
  };

  void enqueue_cross(std::uint32_t target_partition, const Event& ev);
  void process_window(std::uint32_t p, SimTime window_end);
  /// Publishes per-worker event counts, busy time and barrier wait to the
  /// observability registry (deltas flushed once per run_until call).
  void publish_obs(double loop_seconds, std::uint64_t windows);

  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<ParallelLp*> lps_;
  std::vector<std::uint32_t> lp_partition_;
  double lookahead_;
  ThreadPool pool_;
  bool running_ = false;
};

}  // namespace dv::pdes
