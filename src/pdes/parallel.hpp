// Conservative parallel discrete-event simulation.
//
// The paper's substrate (ROSS) is a *parallel* DES engine; this module
// provides the conservative counterpart for multi-threaded execution: a
// synchronous-window ("YAWNS"-style) simulator. Logical processes are
// partitioned across worker threads; time advances in windows of width
// `lookahead`, and the protocol is safe because every event scheduled for
// an LP in a *different* partition must be at least `lookahead` in the
// future — so nothing scheduled during a window can land inside it on
// another partition. Same-partition events may use any non-negative delay
// and are processed in local timestamp order.
//
// Execution model: one long-lived worker per partition runs
// process-window / arrive-at-barrier in a loop; the barrier's completion
// step (single-threaded, all workers parked) drains the outbox matrix,
// computes the next window and decides termination. Cross-partition
// events go through a per-(source, target) outbox — each cell written by
// exactly one thread — so the hot path takes no locks at all.
//
// Determinism: outboxes are drained in (time, pri) order with source
// partition order breaking exact ties, so a model that assigns unique
// priority keys (netsim does) gets an event order independent of both
// thread timing *and* partition count — bit-identical to the sequential
// engine. Models that leave pri = 0 (PHOLD) are still deterministic per
// (seed, partition count).
//
// The classic PHOLD benchmark model is included (phold.hpp/cpp) and the
// equivalence of the parallel and sequential engines is tested on it.
#pragma once

#include <cstdint>
#include <exception>
#include <memory>
#include <vector>

#include "pdes/engine.hpp"
#include "util/threadpool.hpp"

namespace dv::pdes {

class ParallelSimulator;

/// Handle through which an LP interacts with the engine during an event.
class ParallelContext {
 public:
  SimTime now() const { return now_; }
  std::uint32_t partition() const { return partition_; }
  /// Schedules an event. Same-partition targets accept any t >= now();
  /// cross-partition targets require t >= now() + lookahead (throws
  /// otherwise — that is the conservative contract).
  void schedule(SimTime t, LpId lp, std::uint32_t kind,
                std::uint64_t data0 = 0, std::uint64_t data1 = 0,
                std::uint64_t pri = 0);

 private:
  friend class ParallelSimulator;
  ParallelContext(ParallelSimulator* sim, std::uint32_t partition,
                  SimTime now)
      : sim_(sim), partition_(partition), now_(now) {}
  ParallelSimulator* sim_;
  std::uint32_t partition_;
  SimTime now_;
};

/// LP interface for the parallel engine.
class ParallelLp {
 public:
  virtual ~ParallelLp() = default;
  virtual void on_event(ParallelContext& ctx, const Event& ev) = 0;
};

class ParallelSimulator {
 public:
  /// `partitions` worker partitions (each gets a thread), window width =
  /// `lookahead` (> 0).
  ParallelSimulator(std::size_t partitions, double lookahead);

  ParallelSimulator(const ParallelSimulator&) = delete;
  ParallelSimulator& operator=(const ParallelSimulator&) = delete;

  /// Registers an LP; round-robin partition assignment by default.
  LpId add_lp(ParallelLp* lp);
  LpId add_lp(ParallelLp* lp, std::uint32_t partition);

  std::size_t partitions() const { return parts_.size(); }
  double lookahead() const { return lookahead_; }
  std::uint32_t partition_of(LpId lp) const;

  /// Pre-run scheduling (any time >= 0).
  void schedule(SimTime t, LpId lp, std::uint32_t kind,
                std::uint64_t data0 = 0, std::uint64_t data1 = 0,
                std::uint64_t pri = 0);

  /// Runs until no events remain with time <= t_end.
  void run_until(SimTime t_end);

  std::uint64_t events_processed() const;
  /// True while any partition still holds pending events.
  bool has_events() const;
  /// Timestamp of the latest event processed so far (0 before any).
  SimTime last_event_time() const;

  /// Safety valve against runaway models; 0 disables. The budget is
  /// checked at window boundaries (and per partition inside a window), so
  /// overshoot by up to one window is possible; exceeding it throws.
  void set_event_budget(std::uint64_t max_events) { budget_ = max_events; }

 private:
  friend class ParallelContext;

  struct alignas(64) Partition {
    BucketSched<Event> queue;  // bucket width = the conservative lookahead
    // outbox[target]: cross-partition events produced by *this* partition
    // during the current window. Single-writer (this partition's worker),
    // read only in the barrier completion step — no lock needed.
    std::vector<std::vector<Event>> outbox;
    std::uint64_t next_seq = 0;
    std::uint64_t processed = 0;
    SimTime last_time = 0.0;       // time of the last processed event
    std::exception_ptr error;      // worker exception, surfaced after join
    double busy_seconds = 0.0;     // wall time inside process_window (obs)
    std::uint64_t published = 0;   // processed count already flushed to obs
    double busy_published = 0.0;
    std::uint64_t sched_bucketed_published = 0;
    std::uint64_t sched_heap_published = 0;
  };

  void process_window(std::uint32_t p);
  /// Single-partition fast path: with one partition no event can cross a
  /// partition boundary, so run_until drains the queue on a plain
  /// sequential loop — no windows, barriers, outboxes, or atomics — while
  /// keeping the pop order (and therefore the output) byte-identical.
  void run_single_partition();
  /// Barrier completion step: single-threaded while every worker is
  /// parked. Drains outboxes, advances the window or flags termination.
  void advance_window() noexcept;
  void drain_outboxes();
  /// Publishes per-worker event counts, busy time and barrier wait to the
  /// observability registry (deltas flushed once per run_until call).
  void publish_obs(double loop_seconds);

  std::vector<std::unique_ptr<Partition>> parts_;
  std::vector<ParallelLp*> lps_;
  std::vector<std::uint32_t> lp_partition_;
  double lookahead_;
  ThreadPool pool_;
  bool running_ = false;
  std::uint64_t budget_ = 0;

  // Window state: written in advance_window() (or before workers start),
  // read by workers after the barrier — the barrier orders both.
  SimTime window_end_ = 0.0;
  SimTime t_end_ = 0.0;
  bool done_ = false;
  bool budget_exceeded_ = false;
  std::uint64_t windows_ = 0;
  std::vector<Event> drain_buf_;  // completion-step scratch
};

}  // namespace dv::pdes
