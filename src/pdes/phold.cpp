#include "pdes/phold.hpp"

#include <memory>

namespace dv::pdes {

namespace {

/// Shared PHOLD behaviour: draw (destination, delay) from the LP's own
/// stream so the model's randomness is independent of the engine.
struct PholdCore {
  explicit PholdCore(const PholdConfig& cfg, std::uint32_t id)
      : cfg(cfg), rng(cfg.seed, id) {}

  const PholdConfig& cfg;
  Rng rng;
  std::uint64_t count = 0;

  /// Returns (dst, absolute time) for the successor event.
  std::pair<LpId, SimTime> next(SimTime now) {
    ++count;
    const auto dst = static_cast<LpId>(rng.next_below(cfg.lps));
    const double delay =
        cfg.lookahead + rng.next_exponential(cfg.mean_delay);
    return {dst, now + delay};
  }
};

class SeqPholdLp : public LogicalProcess {
 public:
  SeqPholdLp(const PholdConfig& cfg, std::uint32_t id) : core_(cfg, id) {}
  std::uint64_t count() const { return core_.count; }

  void on_event(Simulator& sim, const Event&) override {
    const auto [dst, t] = core_.next(sim.now());
    sim.schedule(t, dst, 0);
  }

 private:
  PholdCore core_;
};

class ParPholdLp : public ParallelLp {
 public:
  ParPholdLp(const PholdConfig& cfg, std::uint32_t id) : core_(cfg, id) {}
  std::uint64_t count() const { return core_.count; }

  void on_event(ParallelContext& ctx, const Event&) override {
    const auto [dst, t] = core_.next(ctx.now());
    ctx.schedule(t, dst, 0);
  }

 private:
  PholdCore core_;
};

}  // namespace

PholdResult run_phold_sequential(const PholdConfig& cfg) {
  DV_REQUIRE(cfg.lps > 0 && cfg.population > 0, "empty phold model");
  Simulator sim;
  // Every PHOLD delay is >= lookahead, so it is the natural bucket width.
  sim.set_bucket_granularity(cfg.lookahead);
  std::vector<std::unique_ptr<SeqPholdLp>> lps;
  lps.reserve(cfg.lps);
  for (std::uint32_t i = 0; i < cfg.lps; ++i) {
    lps.push_back(std::make_unique<SeqPholdLp>(cfg, i));
    sim.add_lp(lps.back().get());
  }
  // Initial population, staggered deterministically.
  for (std::uint32_t i = 0; i < cfg.lps; ++i) {
    for (std::uint32_t k = 0; k < cfg.population; ++k) {
      sim.schedule(cfg.lookahead * (1.0 + 0.01 * k) + 1e-3 * i, i, 0);
    }
  }
  sim.run_until(cfg.horizon);
  PholdResult out;
  out.per_lp.reserve(cfg.lps);
  for (const auto& lp : lps) {
    out.per_lp.push_back(lp->count());
    out.events += lp->count();
  }
  return out;
}

PholdResult run_phold_parallel(const PholdConfig& cfg,
                               std::size_t partitions) {
  DV_REQUIRE(cfg.lps > 0 && cfg.population > 0, "empty phold model");
  ParallelSimulator sim(partitions, cfg.lookahead);
  std::vector<std::unique_ptr<ParPholdLp>> lps;
  lps.reserve(cfg.lps);
  for (std::uint32_t i = 0; i < cfg.lps; ++i) {
    lps.push_back(std::make_unique<ParPholdLp>(cfg, i));
    sim.add_lp(lps.back().get());
  }
  for (std::uint32_t i = 0; i < cfg.lps; ++i) {
    for (std::uint32_t k = 0; k < cfg.population; ++k) {
      sim.schedule(cfg.lookahead * (1.0 + 0.01 * k) + 1e-3 * i, i, 0);
    }
  }
  sim.run_until(cfg.horizon);
  PholdResult out;
  out.per_lp.reserve(cfg.lps);
  for (const auto& lp : lps) {
    out.per_lp.push_back(lp->count());
    out.events += lp->count();
  }
  return out;
}

}  // namespace dv::pdes
