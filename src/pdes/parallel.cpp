#include "pdes/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"

namespace dv::pdes {

ParallelSimulator::ParallelSimulator(std::size_t partitions,
                                     double lookahead)
    : lookahead_(lookahead), pool_(partitions) {
  DV_REQUIRE(partitions >= 1, "need at least one partition");
  DV_REQUIRE(lookahead > 0.0, "conservative lookahead must be positive");
  parts_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    parts_.push_back(std::make_unique<Partition>());
    parts_.back()->outbox.resize(partitions);
    // The lookahead is the engine's own lower bound on cross-partition
    // delays, which makes it a sound bucket width for the near-future
    // fast path (see bucket_sched.hpp; sub-width same-partition delays
    // are still legal, just slower).
    parts_.back()->queue.configure(lookahead);
  }
}

LpId ParallelSimulator::add_lp(ParallelLp* lp) {
  return add_lp(lp, static_cast<std::uint32_t>(lps_.size() % parts_.size()));
}

LpId ParallelSimulator::add_lp(ParallelLp* lp, std::uint32_t partition) {
  DV_REQUIRE(lp != nullptr, "null logical process");
  DV_REQUIRE(partition < parts_.size(), "partition out of range");
  DV_REQUIRE(!running_, "cannot add LPs while running");
  lps_.push_back(lp);
  lp_partition_.push_back(partition);
  return static_cast<LpId>(lps_.size() - 1);
}

std::uint32_t ParallelSimulator::partition_of(LpId lp) const {
  DV_REQUIRE(lp < lp_partition_.size(), "unknown LP");
  return lp_partition_[lp];
}

void ParallelSimulator::schedule(SimTime t, LpId lp, std::uint32_t kind,
                                 std::uint64_t data0, std::uint64_t data1,
                                 std::uint64_t pri) {
  DV_REQUIRE(!running_, "use ParallelContext::schedule during the run");
  DV_REQUIRE(lp < lps_.size(), "schedule to unknown LP");
  DV_REQUIRE(t >= 0.0, "negative timestamp");
  Partition& part = *parts_[lp_partition_[lp]];
  part.queue.push(Event{.time = t, .pri = pri, .seq = part.next_seq++,
                        .lp = lp, .kind = kind, .data0 = data0,
                        .data1 = data1});
}

void ParallelContext::schedule(SimTime t, LpId lp, std::uint32_t kind,
                               std::uint64_t data0, std::uint64_t data1,
                               std::uint64_t pri) {
  DV_REQUIRE(lp < sim_->lps_.size(), "schedule to unknown LP");
  DV_REQUIRE(t >= now_, "cannot schedule into the past");
  const std::uint32_t target = sim_->lp_partition_[lp];
  ParallelSimulator::Partition& mine = *sim_->parts_[partition_];
  if (target == partition_) {
    mine.queue.push(Event{.time = t, .pri = pri, .seq = mine.next_seq++,
                          .lp = lp, .kind = kind, .data0 = data0,
                          .data1 = data1});
    return;
  }
  // Conservative contract: cross-partition events must clear the window.
  DV_REQUIRE(t >= now_ + sim_->lookahead_,
             "cross-partition event violates the lookahead contract");
  // seq is assigned when the outboxes are drained at the barrier; the
  // outbox cell is owned by this partition's worker, so no lock.
  mine.outbox[target].push_back(Event{.time = t, .pri = pri, .seq = 0,
                                      .lp = lp, .kind = kind, .data0 = data0,
                                      .data1 = data1});
}

void ParallelSimulator::process_window(std::uint32_t p) {
  Partition& part = *parts_[p];
#ifdef DV_OBS_ENABLED
  const auto t0 = std::chrono::steady_clock::now();
#endif
  try {
    Event ev;
    while (!part.queue.empty() && part.queue.top().time < window_end_) {
      part.queue.pop_into(ev);
      ++part.processed;
      if (budget_ != 0 && part.processed > budget_) {
        throw Error("simulation event budget exceeded");
      }
      part.last_time = ev.time;
      ParallelContext ctx(this, p, ev.time);
      lps_[ev.lp]->on_event(ctx, ev);
    }
  } catch (...) {
    part.error = std::current_exception();
  }
#ifdef DV_OBS_ENABLED
  part.busy_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
#endif
}

void ParallelSimulator::run_single_partition() {
  // One partition owns every LP, so no event can cross a partition
  // boundary and the windowed protocol degenerates to "drain the queue in
  // (time, pri, seq) order" — exactly the sequential engine's loop. Skip
  // the per-window bookkeeping entirely; the pop order (and therefore the
  // model output) is byte-identical to the windowed execution.
  Partition& part = *parts_[0];
#ifdef DV_OBS_ENABLED
  const auto t0 = std::chrono::steady_clock::now();
#endif
  try {
    Event ev;
    while (!part.queue.empty() && part.queue.top().time <= t_end_) {
      part.queue.pop_into(ev);
      ++part.processed;
      if (budget_ != 0 && part.processed > budget_) {
        throw Error("simulation event budget exceeded");
      }
      part.last_time = ev.time;
      ParallelContext ctx(this, 0, ev.time);
      lps_[ev.lp]->on_event(ctx, ev);
    }
  } catch (...) {
    part.error = std::current_exception();
  }
#ifdef DV_OBS_ENABLED
  part.busy_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
#endif
}

void ParallelSimulator::drain_outboxes() {
  const std::size_t n = parts_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    drain_buf_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      auto& box = parts_[src]->outbox[dst];
      drain_buf_.insert(drain_buf_.end(), box.begin(), box.end());
      box.clear();
    }
    if (drain_buf_.empty()) continue;
    // (time, pri) with source order breaking exact ties: thread-timing
    // independent, and partition-count independent when pris are unique.
    std::stable_sort(drain_buf_.begin(), drain_buf_.end(),
                     [](const Event& a, const Event& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.pri < b.pri;
                     });
    Partition& part = *parts_[dst];
    for (Event ev : drain_buf_) {
      ev.seq = part.next_seq++;
      part.queue.push(ev);
    }
  }
}

void ParallelSimulator::advance_window() noexcept {
  try {
    for (const auto& part : parts_) {
      if (part->error) {
        done_ = true;
        return;
      }
    }
    drain_outboxes();
    if (budget_ != 0 && events_processed() > budget_) {
      budget_exceeded_ = true;
      done_ = true;
      return;
    }
    // Global lower bound on the next event.
    SimTime gvt = std::numeric_limits<SimTime>::infinity();
    for (const auto& part : parts_) {
      if (!part->queue.empty()) gvt = std::min(gvt, part->queue.top().time);
    }
    if (!std::isfinite(gvt) || gvt > t_end_) {
      done_ = true;
      return;
    }
    ++windows_;
    // Match Simulator::run_until semantics: events with time <= t_end run.
    window_end_ = std::min(
        gvt + lookahead_,
        std::nextafter(t_end_, std::numeric_limits<SimTime>::infinity()));
  } catch (...) {
    if (!parts_[0]->error) parts_[0]->error = std::current_exception();
    done_ = true;
  }
}

void ParallelSimulator::publish_obs(double loop_seconds) {
#ifdef DV_OBS_ENABLED
  std::uint64_t total = 0;
  double busy = 0.0;
  std::uint64_t sched_bucketed = 0, sched_heap = 0;
  for (std::uint32_t p = 0; p < parts_.size(); ++p) {
    Partition& part = *parts_[p];
    const std::uint64_t ev_delta = part.processed - part.published;
    const double busy_delta = part.busy_seconds - part.busy_published;
    part.published = part.processed;
    part.busy_published = part.busy_seconds;
    total += ev_delta;
    busy += busy_delta;
    sched_bucketed +=
        part.queue.pushes_bucketed() - part.sched_bucketed_published;
    sched_heap += part.queue.pushes_heap() - part.sched_heap_published;
    part.sched_bucketed_published = part.queue.pushes_bucketed();
    part.sched_heap_published = part.queue.pushes_heap();
    obs::counter("par.worker" + std::to_string(p) + ".events").add(ev_delta);
    obs::gauge("par.worker" + std::to_string(p) + ".busy_seconds")
        .add(busy_delta);
  }
  obs::counter("par.events_processed").add(total);
  obs::counter("par.sched.bucket_pushes").add(sched_bucketed);
  obs::counter("par.sched.heap_pushes").add(sched_heap);
  obs::counter("par.windows").add(windows_);
  obs::gauge("par.run_seconds").add(loop_seconds);
  // Barrier wait: the span the whole run spends not executing events,
  // summed over workers (idle time at window barriers + window overheads).
  const double wait = loop_seconds * static_cast<double>(parts_.size()) - busy;
  if (wait > 0.0) obs::gauge("par.barrier_wait_seconds").add(wait);
#else
  (void)loop_seconds;
#endif
}

void ParallelSimulator::run_until(SimTime t_end) {
  running_ = true;
  const auto loop_t0 = std::chrono::steady_clock::now();
  t_end_ = t_end;
  done_ = false;
  budget_exceeded_ = false;
  windows_ = 0;
  for (auto& part : parts_) part->error = nullptr;
  advance_window();  // establishes the first window (or flags done)

  if (!done_) {
    if (parts_.size() == 1) {
      run_single_partition();
    } else {
      // Long-lived workers: one per partition, looping process-window /
      // barrier. The completion step runs advance_window with every
      // worker parked, which is what makes the unlocked outbox/queue
      // accesses there safe; the barrier also publishes window_end_ and
      // done_ to the workers.
      std::barrier bar(static_cast<std::ptrdiff_t>(parts_.size()),
                       [this]() noexcept { advance_window(); });
      for (std::uint32_t p = 0; p < parts_.size(); ++p) {
        pool_.submit([this, p, &bar] {
          for (;;) {
            process_window(p);
            bar.arrive_and_wait();
            if (done_) break;
          }
        });
      }
      pool_.wait_idle();
    }
  }

  running_ = false;
  for (const auto& part : parts_) {
    if (part->error) std::rethrow_exception(part->error);
  }
  if (budget_exceeded_) throw Error("simulation event budget exceeded");
  publish_obs(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            loop_t0)
                  .count());
}

std::uint64_t ParallelSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) total += part->processed;
  return total;
}

bool ParallelSimulator::has_events() const {
  for (const auto& part : parts_) {
    if (!part->queue.empty()) return true;
  }
  return false;
}

SimTime ParallelSimulator::last_event_time() const {
  SimTime t = 0.0;
  for (const auto& part : parts_) t = std::max(t, part->last_time);
  return t;
}

}  // namespace dv::pdes
