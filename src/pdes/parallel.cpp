#include "pdes/parallel.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "obs/obs.hpp"

namespace dv::pdes {

ParallelSimulator::ParallelSimulator(std::size_t partitions,
                                     double lookahead)
    : lookahead_(lookahead), pool_(partitions) {
  DV_REQUIRE(partitions >= 1, "need at least one partition");
  DV_REQUIRE(lookahead > 0.0, "conservative lookahead must be positive");
  parts_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    parts_.push_back(std::make_unique<Partition>());
  }
}

LpId ParallelSimulator::add_lp(ParallelLp* lp) {
  return add_lp(lp, static_cast<std::uint32_t>(lps_.size() % parts_.size()));
}

LpId ParallelSimulator::add_lp(ParallelLp* lp, std::uint32_t partition) {
  DV_REQUIRE(lp != nullptr, "null logical process");
  DV_REQUIRE(partition < parts_.size(), "partition out of range");
  DV_REQUIRE(!running_, "cannot add LPs while running");
  lps_.push_back(lp);
  lp_partition_.push_back(partition);
  return static_cast<LpId>(lps_.size() - 1);
}

std::uint32_t ParallelSimulator::partition_of(LpId lp) const {
  DV_REQUIRE(lp < lp_partition_.size(), "unknown LP");
  return lp_partition_[lp];
}

void ParallelSimulator::schedule(SimTime t, LpId lp, std::uint32_t kind,
                                 std::uint64_t data0, std::uint64_t data1) {
  DV_REQUIRE(!running_, "use ParallelContext::schedule during the run");
  DV_REQUIRE(lp < lps_.size(), "schedule to unknown LP");
  DV_REQUIRE(t >= 0.0, "negative timestamp");
  Partition& part = *parts_[lp_partition_[lp]];
  part.queue.push(Event{t, part.next_seq++, lp, kind, data0, data1});
}

void ParallelSimulator::enqueue_cross(std::uint32_t target,
                                      const Event& ev) {
  Partition& part = *parts_[target];
  std::lock_guard<std::mutex> lock(part.mailbox_mu);
  part.mailbox.push_back(ev);
}

void ParallelContext::schedule(SimTime t, LpId lp, std::uint32_t kind,
                               std::uint64_t data0, std::uint64_t data1) {
  DV_REQUIRE(lp < sim_->lps_.size(), "schedule to unknown LP");
  DV_REQUIRE(t >= now_, "cannot schedule into the past");
  const std::uint32_t target = sim_->lp_partition_[lp];
  if (target == partition_) {
    auto& part = *sim_->parts_[partition_];
    part.queue.push(Event{t, part.next_seq++, lp, kind, data0, data1});
    return;
  }
  // Conservative contract: cross-partition events must clear the window.
  DV_REQUIRE(t >= now_ + sim_->lookahead_,
             "cross-partition event violates the lookahead contract");
  // seq is assigned when the mailbox is drained (deterministic order is
  // established by sorting on (time, source order) there).
  sim_->enqueue_cross(target, Event{t, 0, lp, kind, data0, data1});
}

void ParallelSimulator::process_window(std::uint32_t p,
                                       SimTime window_end) {
  Partition& part = *parts_[p];
#ifdef DV_OBS_ENABLED
  const auto t0 = std::chrono::steady_clock::now();
#endif
  while (!part.queue.empty() && part.queue.top().time < window_end) {
    const Event ev = part.queue.top();
    part.queue.pop();
    ++part.processed;
    ParallelContext ctx(this, p, ev.time);
    lps_[ev.lp]->on_event(ctx, ev);
  }
#ifdef DV_OBS_ENABLED
  part.busy_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
#endif
}

void ParallelSimulator::publish_obs(double loop_seconds,
                                    std::uint64_t windows) {
#ifdef DV_OBS_ENABLED
  std::uint64_t total = 0;
  double busy = 0.0;
  for (std::uint32_t p = 0; p < parts_.size(); ++p) {
    Partition& part = *parts_[p];
    const std::uint64_t ev_delta = part.processed - part.published;
    const double busy_delta = part.busy_seconds - part.busy_published;
    part.published = part.processed;
    part.busy_published = part.busy_seconds;
    total += ev_delta;
    busy += busy_delta;
    obs::counter("par.worker" + std::to_string(p) + ".events").add(ev_delta);
    obs::gauge("par.worker" + std::to_string(p) + ".busy_seconds")
        .add(busy_delta);
  }
  obs::counter("par.events_processed").add(total);
  obs::counter("par.windows").add(windows);
  obs::gauge("par.run_seconds").add(loop_seconds);
  // Barrier wait: the span the whole run spends not executing events,
  // summed over workers (idle time at window barriers + window overheads).
  const double wait = loop_seconds * static_cast<double>(parts_.size()) - busy;
  if (wait > 0.0) obs::gauge("par.barrier_wait_seconds").add(wait);
#else
  (void)loop_seconds;
  (void)windows;
#endif
}

void ParallelSimulator::run_until(SimTime t_end) {
  running_ = true;
  const auto loop_t0 = std::chrono::steady_clock::now();
  std::uint64_t windows = 0;
  for (;;) {
    // Global lower bound on the next event.
    SimTime gvt = std::numeric_limits<SimTime>::infinity();
    for (const auto& part : parts_) {
      if (!part->queue.empty()) {
        gvt = std::min(gvt, part->queue.top().time);
      }
    }
    if (gvt > t_end || !std::isfinite(gvt)) break;
    ++windows;
    // Match Simulator::run_until semantics: events with time <= t_end run.
    const SimTime window_end = std::min(
        gvt + lookahead_,
        std::nextafter(t_end, std::numeric_limits<SimTime>::infinity()));

    if (parts_.size() == 1) {
      process_window(0, window_end);
    } else {
      // Worker exceptions (e.g. lookahead-contract violations) must reach
      // the caller, not std::terminate a pool thread.
      std::exception_ptr first_error;
      std::mutex error_mu;
      for (std::uint32_t p = 0; p < parts_.size(); ++p) {
        pool_.submit([this, p, window_end, &first_error, &error_mu] {
          try {
            process_window(p, window_end);
          } catch (...) {
            std::lock_guard<std::mutex> lock(error_mu);
            if (!first_error) first_error = std::current_exception();
          }
        });
      }
      pool_.wait_idle();
      if (first_error) {
        running_ = false;
        std::rethrow_exception(first_error);
      }
    }

    // Barrier passed: drain mailboxes in deterministic order.
    for (auto& part : parts_) {
      std::lock_guard<std::mutex> lock(part->mailbox_mu);
      std::stable_sort(part->mailbox.begin(), part->mailbox.end(),
                       [](const Event& a, const Event& b) {
                         if (a.time != b.time) return a.time < b.time;
                         if (a.lp != b.lp) return a.lp < b.lp;
                         return a.kind < b.kind;
                       });
      for (Event ev : part->mailbox) {
        ev.seq = part->next_seq++;
        part->queue.push(ev);
      }
      part->mailbox.clear();
    }
  }
  running_ = false;
  publish_obs(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            loop_t0)
                  .count(),
              windows);
}

std::uint64_t ParallelSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) total += part->processed;
  return total;
}

}  // namespace dv::pdes
