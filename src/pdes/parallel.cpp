#include "pdes/parallel.hpp"

#include <algorithm>
#include <barrier>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>

#include "obs/obs.hpp"

namespace dv::pdes {

namespace {

constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();

// Cross-partition events carry sender-assigned sequence numbers namespaced
// above every local counter: seq = (src_partition + 1) << kForeignSeqShift
// | per-channel count. At equal (time, pri) this orders local events first,
// then foreign ones by (source partition, send order) — fully determined
// by each sender's (deterministic) execution, never by thread timing.
constexpr std::uint32_t kForeignSeqShift = 40;
constexpr std::uint64_t kLocalSeqLimit = 1ull << kForeignSeqShift;

// Consecutive no-progress rounds before a stalled worker requests a
// rendezvous. Low enough that termination and idle gaps resolve in
// microseconds, high enough that transient waits on a busy neighbour
// (the common case mid-run) never pay a barrier.
constexpr std::uint32_t kStallSyncThreshold = 64;

// Stall backoff: spin briefly (a negotiation round is sub-microsecond),
// then hand the core over — essential when workers oversubscribe the CPUs.
void backoff(std::uint32_t spins) {
  if (spins < 64) return;
  std::this_thread::yield();
}

ParallelSimulator::SyncMode default_sync_mode() {
  const char* env = std::getenv("DV_PAR_SYNC");
  if (env && std::strcmp(env, "barrier") == 0) {
    return ParallelSimulator::SyncMode::kBarrier;
  }
  return ParallelSimulator::SyncMode::kPairwise;
}

}  // namespace

ParallelSimulator::ParallelSimulator(std::size_t partitions,
                                     double lookahead)
    : lookahead_(lookahead), sync_mode_(default_sync_mode()),
      pool_(partitions) {
  DV_REQUIRE(partitions >= 1, "need at least one partition");
  DV_REQUIRE(lookahead > 0.0, "conservative lookahead must be positive");
  DV_REQUIRE(partitions <= (1u << 22),
             "partition count exceeds the foreign-seq encoding");
  parts_.reserve(partitions);
  for (std::size_t i = 0; i < partitions; ++i) {
    parts_.push_back(std::make_unique<Partition>());
    parts_.back()->outbox.resize(partitions);
    // The lookahead floor is the engine's own lower bound on
    // cross-partition delays, which makes it a sound default bucket width
    // for the near-future fast path (see bucket_sched.hpp; sub-width
    // same-partition delays are still legal, just slower).
    // set_pair_lookahead() widens this per partition.
    parts_.back()->queue.configure(lookahead);
  }
  la_.assign(partitions * partitions, lookahead);
  channels_ = std::vector<Channel>(partitions * partitions);
}

LpId ParallelSimulator::add_lp(ParallelLp* lp) {
  return add_lp(lp, static_cast<std::uint32_t>(lps_.size() % parts_.size()));
}

LpId ParallelSimulator::add_lp(ParallelLp* lp, std::uint32_t partition) {
  DV_REQUIRE(lp != nullptr, "null logical process");
  DV_REQUIRE(partition < parts_.size(), "partition out of range");
  DV_REQUIRE(!running_, "cannot add LPs while running");
  lps_.push_back(lp);
  lp_partition_.push_back(partition);
  return static_cast<LpId>(lps_.size() - 1);
}

std::uint32_t ParallelSimulator::partition_of(LpId lp) const {
  DV_REQUIRE(lp < lp_partition_.size(), "unknown LP");
  return lp_partition_[lp];
}

void ParallelSimulator::set_pair_lookahead(std::uint32_t src,
                                           std::uint32_t dst, double la) {
  DV_REQUIRE(src < parts_.size() && dst < parts_.size(),
             "pair lookahead partition out of range");
  DV_REQUIRE(src != dst, "pair lookahead is for distinct partitions");
  DV_REQUIRE(!running_, "set_pair_lookahead during a run");
  DV_REQUIRE(la >= lookahead_,
             "pair lookahead below the global floor (the scalar lookahead "
             "stays the lower bound for every pair)");
  la_[src * parts_.size() + dst] = la;
  // Unify the bucket horizon with the partition's effective window: the
  // narrowest finite inbound lookahead bounds how far ahead of the global
  // clock dst can run, so it is the natural bucket width. Requires dst's
  // queue to still be empty (BucketSched::configure enforces it).
  double width = kInf;
  for (std::uint32_t q = 0; q < parts_.size(); ++q) {
    if (q == dst) continue;
    width = std::min(width, la_[q * parts_.size() + dst]);
  }
  if (!std::isfinite(width)) width = lookahead_;
  parts_[dst]->queue.configure(width);
}

double ParallelSimulator::pair_lookahead(std::uint32_t src,
                                         std::uint32_t dst) const {
  DV_REQUIRE(src < parts_.size() && dst < parts_.size(),
             "pair lookahead partition out of range");
  return la_[src * parts_.size() + dst];
}

void ParallelSimulator::set_sync_mode(SyncMode mode) {
  DV_REQUIRE(!running_, "set_sync_mode during a run");
  sync_mode_ = mode;
}

void ParallelSimulator::schedule(SimTime t, LpId lp, std::uint32_t kind,
                                 std::uint64_t data0, std::uint64_t data1,
                                 std::uint64_t pri) {
  DV_REQUIRE(!running_, "use ParallelContext::schedule during the run");
  DV_REQUIRE(lp < lps_.size(), "schedule to unknown LP");
  DV_REQUIRE(t >= 0.0, "negative timestamp");
  Partition& part = *parts_[lp_partition_[lp]];
  part.queue.push(Event{.time = t, .pri = pri, .seq = part.next_seq++,
                        .lp = lp, .kind = kind, .data0 = data0,
                        .data1 = data1});
}

void ParallelContext::schedule(SimTime t, LpId lp, std::uint32_t kind,
                               std::uint64_t data0, std::uint64_t data1,
                               std::uint64_t pri) {
  DV_REQUIRE(lp < sim_->lps_.size(), "schedule to unknown LP");
  DV_REQUIRE(t >= now_, "cannot schedule into the past");
  const std::uint32_t target = sim_->lp_partition_[lp];
  ParallelSimulator::Partition& mine = *sim_->parts_[partition_];
  if (target == partition_) {
    mine.queue.push(Event{.time = t, .pri = pri, .seq = mine.next_seq++,
                          .lp = lp, .kind = kind, .data0 = data0,
                          .data1 = data1});
    return;
  }
  // Conservative contract: cross-partition events must clear the pairwise
  // lookahead (+infinity marks pairs no channel crosses — any send there
  // is a model bug).
  DV_REQUIRE(t >= now_ + sim_->la(partition_, target),
             "cross-partition event violates the pairwise lookahead "
             "contract");
  if (sim_->sync_mode_ == ParallelSimulator::SyncMode::kBarrier) {
    // seq is assigned when the outboxes are drained at the barrier; the
    // outbox cell is owned by this partition's worker, so no lock.
    mine.outbox[target].push_back(Event{.time = t, .pri = pri, .seq = 0,
                                        .lp = lp, .kind = kind,
                                        .data0 = data0, .data1 = data1});
    return;
  }
  // Pairwise mode: the sender stamps the deterministic sequence number and
  // mails the event directly; the receiver drains the channel on its next
  // negotiation round.
  auto& ch = sim_->channel(partition_, target);
  const std::uint64_t seq =
      (static_cast<std::uint64_t>(partition_) + 1) << kForeignSeqShift |
      ch.sent++;
  std::lock_guard<std::mutex> lock(ch.mu);
  ch.buf.push_back(Event{.time = t, .pri = pri, .seq = seq, .lp = lp,
                         .kind = kind, .data0 = data0, .data1 = data1});
}

void ParallelSimulator::process_window(std::uint32_t p) {
  Partition& part = *parts_[p];
#ifdef DV_OBS_ENABLED
  const auto t0 = std::chrono::steady_clock::now();
#endif
  try {
    Event ev;
    while (!part.queue.empty() && part.queue.top().time < window_end_) {
      part.queue.pop_into(ev);
      ++part.processed;
      if (budget_ != 0 && part.processed > budget_) {
        throw Error("simulation event budget exceeded");
      }
      part.last_time = ev.time;
      ParallelContext ctx(this, p, ev.time);
      lps_[ev.lp]->on_event(ctx, ev);
    }
  } catch (...) {
    part.error = std::current_exception();
  }
#ifdef DV_OBS_ENABLED
  part.busy_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
#endif
}

void ParallelSimulator::run_single_partition() {
  // One partition owns every LP, so no event can cross a partition
  // boundary and both protocols degenerate to "drain the queue in
  // (time, pri, seq) order" — exactly the sequential engine's loop. Skip
  // the per-window bookkeeping entirely; the pop order (and therefore the
  // model output) is byte-identical to the windowed execution.
  Partition& part = *parts_[0];
#ifdef DV_OBS_ENABLED
  const auto t0 = std::chrono::steady_clock::now();
#endif
  try {
    Event ev;
    while (!part.queue.empty() && part.queue.top().time <= t_end_) {
      part.queue.pop_into(ev);
      ++part.processed;
      if (budget_ != 0 && part.processed > budget_) {
        throw Error("simulation event budget exceeded");
      }
      part.last_time = ev.time;
      ParallelContext ctx(this, 0, ev.time);
      lps_[ev.lp]->on_event(ctx, ev);
    }
  } catch (...) {
    part.error = std::current_exception();
  }
#ifdef DV_OBS_ENABLED
  part.busy_seconds += std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
#endif
}

// ------------------------------------------------------------- pairwise

void ParallelSimulator::seed_lower_bounds() {
  const std::size_t n = parts_.size();
  std::vector<SimTime> lb(n);
  for (std::size_t p = 0; p < n; ++p) {
    lb[p] = parts_[p]->queue.empty() ? kInf : parts_[p]->queue.top().time;
  }
  // Greatest fixed point of lb[p] = min(qtop[p], min_q(lb[q] + la(q, p))):
  // values only decrease and every pass propagates one more hop, so at
  // most n-1 passes settle it (standard Bellman-Ford argument; positive
  // lookaheads keep it bounded below by the global minimum queue top).
  for (std::size_t pass = 1; pass < n; ++pass) {
    bool changed = false;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = 0; q < n; ++q) {
        if (q == p) continue;
        const double d = la_[q * n + p];
        if (!std::isfinite(d)) continue;
        const SimTime v = lb[q] + d;
        if (v < lb[p]) {
          lb[p] = v;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  for (std::size_t p = 0; p < n; ++p) {
    parts_[p]->lb.store(lb[p], std::memory_order_relaxed);
  }
}

void ParallelSimulator::pairwise_sync_step() noexcept {
  // Runs single-threaded with every worker parked at the rendezvous
  // barrier (the completion step), so plain queue/channel access is safe.
  // This is the rare-path complement to the barrier-free rounds: it
  // detects global termination (which pure lb-ratcheting can only
  // approach asymptotically when queues drain), surfaces worker errors,
  // enforces the global event budget, and re-seeds the published bounds
  // at the Bellman-Ford fixed point — jumping idle gaps that the +la
  // per-round ratchet would crawl across.
  try {
    for (const auto& part : parts_) {
      if (part->error) {
        done_ = true;
        return;
      }
    }
    drain_channels_sequential();
    if (budget_ != 0 && events_processed() > budget_) {
      budget_exceeded_.store(true, std::memory_order_relaxed);
      done_ = true;
      return;
    }
    SimTime gvt = kInf;
    for (const auto& part : parts_) {
      if (!part->queue.empty()) gvt = std::min(gvt, part->queue.top().time);
    }
    if (!std::isfinite(gvt) || gvt > t_end_) {
      done_ = true;
      return;
    }
    seed_lower_bounds();
    sync_requested_.store(false, std::memory_order_release);
  } catch (...) {
    if (!parts_[0]->error) parts_[0]->error = std::current_exception();
    done_ = true;
  }
}

template <typename Barrier>
void ParallelSimulator::run_pairwise_worker(std::uint32_t p, Barrier& bar) {
  const std::uint32_t n = static_cast<std::uint32_t>(parts_.size());
  Partition& part = *parts_[p];
  // The horizon is inclusive (events at exactly t_end run), so the safe
  // bound is capped just above it; queue pops still require time < safe.
  const SimTime cap =
      std::nextafter(t_end_, std::numeric_limits<SimTime>::infinity());
  std::vector<Event> taken;
  std::uint32_t spins = 0;
  std::uint32_t idle_rounds = 0;  // consecutive rounds with no progress
#ifdef DV_OBS_ENABLED
  const auto loop_t0 = std::chrono::steady_clock::now();
  const double busy_at_entry = part.busy_seconds;
#endif
  try {
    for (;;) {
      ++part.rounds;
      // (1) Read every in-neighbour's published bound *before* draining
      // its channel. An event still missing after the drain in (2) was
      // mailed after the publish of the value read here (the sender
      // publishes only after mailing, and the mail is visible once its
      // bound is), so its timestamp is >= that value + the pairwise
      // lookahead — exactly what `safe` assumes. Draining first would
      // break this.
      SimTime safe = cap;
      for (std::uint32_t q = 0; q < n; ++q) {
        if (q == p) continue;
        const double d = la_[q * n + p];
        if (!std::isfinite(d)) continue;
        safe = std::min(
            safe, parts_[q]->lb.load(std::memory_order_acquire) + d);
      }
      // (2) Drain inbound channels into the local queue.
      for (std::uint32_t q = 0; q < n; ++q) {
        if (q == p || !std::isfinite(la_[q * n + p])) continue;
        Channel& ch = channel(q, p);
        {
          std::lock_guard<std::mutex> lock(ch.mu);
          if (!ch.buf.empty()) ch.buf.swap(taken);
        }
        for (const Event& ev : taken) part.queue.push(ev);
        taken.clear();
      }
      // (3) Execute everything below the negotiated window.
      bool progressed = false;
      if (!part.queue.empty() && part.queue.top().time < safe) {
#ifdef DV_OBS_ENABLED
        const auto t0 = std::chrono::steady_clock::now();
#endif
        Event ev;
        do {
          part.queue.pop_into(ev);
          ++part.processed;
          if (budget_ != 0 && part.processed > budget_) {
            throw Error("simulation event budget exceeded");
          }
          part.last_time = ev.time;
          ParallelContext ctx(this, p, ev.time);
          lps_[ev.lp]->on_event(ctx, ev);
        } while (!part.queue.empty() && part.queue.top().time < safe);
        progressed = true;
#ifdef DV_OBS_ENABLED
        part.busy_seconds += std::chrono::duration<double>(
                                 std::chrono::steady_clock::now() - t0)
                                 .count();
#endif
      }
      // (4) Republish this partition's bound: nothing below
      // min(queue top, safe) can ever be executed here or mailed from
      // here (sends add at least the pairwise lookahead on top of `now`).
      // Monotone by construction: `safe` only grows (neighbour bounds
      // are monotone) and arrivals are bounded below by the previous
      // `safe`.
      const SimTime qtop =
          part.queue.empty() ? kInf : part.queue.top().time;
      part.lb.store(std::min(qtop, safe), std::memory_order_release);
      if (progressed) {
        spins = idle_rounds = 0;
        continue;
      }
      ++part.stalls;
      // A long stall means either the run is over, the model is in an
      // idle gap the ratchet would crawl across, or a peer errored out —
      // all cases the rendezvous completion step resolves.
      if (++idle_rounds >= kStallSyncThreshold) {
        sync_requested_.store(true, std::memory_order_release);
      }
      // A requested rendezvous is honoured only from a *stalled* round: a
      // progressing worker keeps working (the raiser is parked and would
      // be waiting either way), so every rendezvous cycle advances the
      // GVT holder by a full window — arriving from the loop top instead
      // can starve a worker that is runnable but descheduled whenever a
      // peer re-raises the flag faster than the OS reschedules it (seen
      // on 1-core hosts). Deadlock-free: a worker that stops progressing
      // checks the flag on that very round, and a worker that never
      // stalls never blocks anyone who is parked.
      if (sync_requested_.load(std::memory_order_acquire)) {
        bar.arrive_and_wait();
        if (done_) break;
        spins = idle_rounds = 0;
        continue;
      }
      backoff(++spins);
    }
  } catch (...) {
    // Park at the rendezvous so nobody waits on us: the completion step
    // sees the error (published before we arrive) and flags done.
    part.error = std::current_exception();
    sync_requested_.store(true, std::memory_order_release);
    for (;;) {
      bar.arrive_and_wait();
      if (done_) break;
    }
  }
#ifdef DV_OBS_ENABLED
  const double loop_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    loop_t0)
          .count();
  const double wait = loop_seconds - (part.busy_seconds - busy_at_entry);
  if (wait > 0.0) part.wait_seconds += wait;
#endif
}

void ParallelSimulator::drain_channels_sequential() {
  const std::size_t n = parts_.size();
  for (std::size_t src = 0; src < n; ++src) {
    for (std::size_t dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      Channel& ch = channels_[src * n + dst];
      std::lock_guard<std::mutex> lock(ch.mu);
      for (const Event& ev : ch.buf) parts_[dst]->queue.push(ev);
      ch.buf.clear();
    }
  }
}

// -------------------------------------------------------------- barrier

void ParallelSimulator::drain_outboxes() {
  const std::size_t n = parts_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    drain_buf_.clear();
    for (std::size_t src = 0; src < n; ++src) {
      auto& box = parts_[src]->outbox[dst];
      drain_buf_.insert(drain_buf_.end(), box.begin(), box.end());
      box.clear();
    }
    if (drain_buf_.empty()) continue;
    // (time, pri) with source order breaking exact ties: thread-timing
    // independent, and partition-count independent when pris are unique.
    std::stable_sort(drain_buf_.begin(), drain_buf_.end(),
                     [](const Event& a, const Event& b) {
                       if (a.time != b.time) return a.time < b.time;
                       return a.pri < b.pri;
                     });
    Partition& part = *parts_[dst];
    for (Event ev : drain_buf_) {
      ev.seq = part.next_seq++;
      part.queue.push(ev);
    }
  }
}

void ParallelSimulator::advance_window() noexcept {
  try {
    for (const auto& part : parts_) {
      if (part->error) {
        done_ = true;
        return;
      }
    }
    drain_outboxes();
    if (budget_ != 0 && events_processed() > budget_) {
      budget_exceeded_.store(true, std::memory_order_relaxed);
      done_ = true;
      return;
    }
    // Global lower bound on the next event.
    SimTime gvt = std::numeric_limits<SimTime>::infinity();
    for (const auto& part : parts_) {
      if (!part->queue.empty()) gvt = std::min(gvt, part->queue.top().time);
    }
    if (!std::isfinite(gvt) || gvt > t_end_) {
      done_ = true;
      return;
    }
    ++windows_;
    // Match Simulator::run_until semantics: events with time <= t_end run.
    window_end_ = std::min(
        gvt + lookahead_,
        std::nextafter(t_end_, std::numeric_limits<SimTime>::infinity()));
  } catch (...) {
    if (!parts_[0]->error) parts_[0]->error = std::current_exception();
    done_ = true;
  }
}

void ParallelSimulator::run_barrier_mode() {
  advance_window();  // establishes the first window (or flags done)
  if (done_) return;
  // Long-lived workers: one per partition, looping process-window /
  // barrier. The completion step runs advance_window with every worker
  // parked, which is what makes the unlocked outbox/queue accesses there
  // safe; the barrier also publishes window_end_ and done_ to the
  // workers.
  std::barrier bar(static_cast<std::ptrdiff_t>(parts_.size()),
                   [this]() noexcept { advance_window(); });
  for (std::uint32_t p = 0; p < parts_.size(); ++p) {
    pool_.submit([this, p, &bar] {
#ifdef DV_OBS_ENABLED
      const auto loop_t0 = std::chrono::steady_clock::now();
      const double busy_at_entry = parts_[p]->busy_seconds;
#endif
      for (;;) {
        process_window(p);
        bar.arrive_and_wait();
        if (done_) break;
      }
#ifdef DV_OBS_ENABLED
      const double loop_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        loop_t0)
              .count();
      const double wait =
          loop_seconds - (parts_[p]->busy_seconds - busy_at_entry);
      if (wait > 0.0) parts_[p]->wait_seconds += wait;
#endif
    });
  }
  pool_.wait_idle();
}

// ------------------------------------------------------------------ run

void ParallelSimulator::publish_obs(double loop_seconds) {
#ifdef DV_OBS_ENABLED
  std::uint64_t total = 0;
  double busy = 0.0;
  std::uint64_t sched_bucketed = 0, sched_heap = 0;
  std::uint64_t rounds = 0, stalls = 0;
  for (std::uint32_t p = 0; p < parts_.size(); ++p) {
    Partition& part = *parts_[p];
    const std::uint64_t ev_delta = part.processed - part.published;
    const double busy_delta = part.busy_seconds - part.busy_published;
    part.published = part.processed;
    part.busy_published = part.busy_seconds;
    total += ev_delta;
    busy += busy_delta;
    rounds += part.rounds - part.rounds_published;
    stalls += part.stalls - part.stalls_published;
    part.rounds_published = part.rounds;
    part.stalls_published = part.stalls;
    sched_bucketed +=
        part.queue.pushes_bucketed() - part.sched_bucketed_published;
    sched_heap += part.queue.pushes_heap() - part.sched_heap_published;
    part.sched_bucketed_published = part.queue.pushes_bucketed();
    part.sched_heap_published = part.queue.pushes_heap();
    obs::counter("par.worker" + std::to_string(p) + ".events").add(ev_delta);
    obs::gauge("par.worker" + std::to_string(p) + ".busy_seconds")
        .add(busy_delta);
  }
  obs::counter("par.events_processed").add(total);
  obs::counter("par.sched.bucket_pushes").add(sched_bucketed);
  obs::counter("par.sched.heap_pushes").add(sched_heap);
  obs::counter("par.windows").add(windows_);
  // Pairwise-mode telemetry: negotiation rounds across workers, and how
  // many of them made no progress (a stall = one spin/yield waiting for
  // an in-neighbour's bound to move).
  obs::counter("par.window.rounds").add(rounds);
  obs::counter("par.window.stalls").add(stalls);
  obs::gauge("par.run_seconds").add(loop_seconds);
  // Total wait: the span the whole run spends not executing events,
  // summed over workers (barrier rendezvous or pairwise stall spins).
  const double wait = loop_seconds * static_cast<double>(parts_.size()) - busy;
  if (wait > 0.0) obs::gauge("par.barrier_wait_seconds").add(wait);
#else
  (void)loop_seconds;
#endif
}

void ParallelSimulator::run_until(SimTime t_end) {
  DV_REQUIRE(lps_.size() >= parts_.size(),
             "more partitions than LPs (" + std::to_string(parts_.size()) +
                 " > " + std::to_string(lps_.size()) +
                 "): every partition must own at least one LP — lower the "
                 "partition count to at most the LP count");
  running_ = true;
  const auto loop_t0 = std::chrono::steady_clock::now();
  t_end_ = t_end;
  done_ = false;
  budget_exceeded_.store(false, std::memory_order_relaxed);
  windows_ = 0;
  sync_requested_.store(false, std::memory_order_relaxed);
  for (auto& part : parts_) part->error = nullptr;

  if (parts_.size() == 1) {
    run_single_partition();
  } else if (sync_mode_ == SyncMode::kBarrier) {
    run_barrier_mode();
  } else {
    // Pairwise negotiation. Skip worker launch when nothing is due.
    SimTime gvt = kInf;
    for (const auto& part : parts_) {
      if (!part->queue.empty()) gvt = std::min(gvt, part->queue.top().time);
    }
    if (gvt <= t_end_) {
      for (const auto& part : parts_) {
        DV_CHECK(part->next_seq < kLocalSeqLimit,
                 "local event sequence overflowed into the foreign range");
      }
      seed_lower_bounds();
      std::barrier bar(static_cast<std::ptrdiff_t>(parts_.size()),
                       [this]() noexcept { pairwise_sync_step(); });
      for (std::uint32_t p = 0; p < parts_.size(); ++p) {
        pool_.submit([this, p, &bar] { run_pairwise_worker(p, bar); });
      }
      pool_.wait_idle();
      // Belt and braces: the terminating rendezvous drained every
      // channel, but future exits must never strand mailed events —
      // has_events() and repeated run_until ticks rely on it.
      drain_channels_sequential();
    }
  }

  running_ = false;
  for (const auto& part : parts_) {
    if (part->error) std::rethrow_exception(part->error);
  }
  if (budget_exceeded_.load(std::memory_order_relaxed)) {
    throw Error("simulation event budget exceeded");
  }
  publish_obs(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            loop_t0)
                  .count());
}

std::uint64_t ParallelSimulator::events_processed() const {
  std::uint64_t total = 0;
  for (const auto& part : parts_) total += part->processed;
  return total;
}

bool ParallelSimulator::has_events() const {
  for (const auto& part : parts_) {
    if (!part->queue.empty()) return true;
  }
  return false;
}

SimTime ParallelSimulator::last_event_time() const {
  SimTime t = 0.0;
  for (const auto& part : parts_) t = std::max(t, part->last_time);
  return t;
}

ParallelSimulator::WorkerStats ParallelSimulator::worker_stats(
    std::uint32_t p) const {
  DV_REQUIRE(p < parts_.size(), "worker index out of range");
  const Partition& part = *parts_[p];
  return WorkerStats{part.processed, part.busy_seconds, part.wait_seconds,
                     part.rounds, part.stalls};
}

}  // namespace dv::pdes
