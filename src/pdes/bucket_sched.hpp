// Bounded-horizon bucket scheduler — the engines' hot-path pending set.
//
// A calendar-style layer over EventHeap: events landing within a bounded
// time horizon ahead of the drain cursor go into fixed-width buckets;
// everything else (far-future events, or events pushed while the layer is
// unconfigured) falls back to the indexed d-ary heap. Buckets partition
// time, so the minimum bucketed event is always at the first non-empty
// bucket; each bucket is sorted lazily — descending by (time, pri, seq) —
// exactly once, when the cursor reaches it, and is then drained from the
// back. The common near-future push/pop pair is therefore O(1) amortized
// (an append plus a back-pop) instead of a full heap sift, and the lazy
// sort touches one contiguous vector instead of chasing 32-bit slot
// indices through a slab.
//
// Choosing the bucket width: any positive width is *correct* (pops always
// come out in strict (time, pri, seq) order; the fallback heap and the
// buckets are merged through the same comparator). The width is *fast*
// when it is at most the model's minimum scheduling delay — then a push
// can (almost) never land in the bucket currently being drained, so the
// ordered-insert slow path stays cold. The netsim model uses its
// conservative lookahead (min link/credit latency); the parallel engine
// uses the same lookahead it already synchronizes windows with.
//
// Horizon advance: when every bucket has drained and the next event comes
// out of the fallback heap, the window re-anchors at that event's time, so
// the events its handler schedules land back in buckets. Sub-width or even
// zero delays are legal everywhere: a push into the already-sorted active
// bucket does an ordered insert (binary search + move), preserving the
// drain order.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "pdes/event_heap.hpp"
#include "util/common.hpp"

namespace dv::pdes {

template <typename EventT>
class BucketSched {
 public:
  static constexpr std::size_t kDefaultBuckets = 1024;

  /// Enables the bucket layer with the given bucket width (simulated time
  /// units); the horizon spans `buckets * width`. A width of 0 disables
  /// bucketing — every event goes through the fallback heap, which is the
  /// default state. Must be called while the scheduler is empty.
  void configure(double width, std::size_t buckets = kDefaultBuckets) {
    DV_REQUIRE(empty(), "configure() on a non-empty scheduler");
    DV_REQUIRE(width >= 0.0, "bucket width must be non-negative");
    DV_REQUIRE(buckets >= 2, "need at least two buckets");
    width_ = width;
    buckets_.clear();
    if (width_ > 0.0) {
      inv_width_ = 1.0 / width_;
      buckets_.resize(buckets);
    }
    base_ = 0.0;
    cur_ = 0;
    sorted_ = false;
  }

  bool bucketing_enabled() const { return width_ > 0.0; }
  bool empty() const { return nbucketed_ == 0 && heap_.empty(); }
  std::size_t size() const { return nbucketed_ + heap_.size(); }

  void reserve(std::size_t n) { heap_.reserve(n); }

  void push(const EventT& ev) {
    if (width_ > 0.0) {
      const double off = ev.time - base_;
      if (off >= 0.0) {
        const double scaled = off * inv_width_;
        if (scaled < static_cast<double>(buckets_.size())) {
          push_bucket(static_cast<std::size_t>(scaled), ev);
          ++pushes_bucketed_;
          return;
        }
      }
    }
    heap_.push(ev);
    ++pushes_heap_;
  }

  /// Reference to the minimum event. Non-const: reaching the minimum may
  /// lazily sort the bucket the cursor just arrived at. The reference is
  /// invalidated by the next push or pop.
  const EventT& top() {
    EventT* bm = bucket_min();
    if (bm == nullptr) return heap_.top();
    if (heap_.empty() || before(*bm, heap_.top())) return *bm;
    return heap_.top();
  }

  /// Removes the minimum event into caller-owned storage.
  void pop_into(EventT& out) {
    EventT* bm = bucket_min();
    if (bm != nullptr && (heap_.empty() || before(*bm, heap_.top()))) {
      out = *bm;
      buckets_[cur_].pop_back();
      --nbucketed_;
      return;
    }
    heap_.pop_into(out);
    if (width_ > 0.0 && nbucketed_ == 0) {
      // Every bucket has drained and the minimum lived in the fallback
      // heap: re-anchor the horizon at that event so its handler's
      // near-future pushes land back in buckets. Guard the re-anchored
      // base at or below the event time despite floating-point rounding.
      base_ = std::floor(out.time * inv_width_) * width_;
      if (base_ > out.time) base_ -= width_;
      cur_ = 0;
      sorted_ = false;
    }
  }

  EventT pop() {
    EventT out;
    pop_into(out);
    return out;
  }

  // Scheduler attribution for the observability layer: how many pushes the
  // bucket layer absorbed vs. how many fell through to the heap.
  std::uint64_t pushes_bucketed() const { return pushes_bucketed_; }
  std::uint64_t pushes_heap() const { return pushes_heap_; }

 private:
  static bool before(const EventT& a, const EventT& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.pri != b.pri) return a.pri < b.pri;
    return a.seq < b.seq;
  }
  /// Descending comparator — buckets drain from the back.
  static bool after(const EventT& a, const EventT& b) { return before(b, a); }

  void push_bucket(std::size_t b, const EventT& ev) {
    ++nbucketed_;
    std::vector<EventT>& vec = buckets_[b];
    if (b < cur_) {
      // A pop from the fallback heap moved `now` behind the drain cursor
      // (an old far-future event re-entered the window); all buckets below
      // the cursor are empty, so rewinding it is cheap and safe.
      cur_ = b;
      sorted_ = false;
      vec.push_back(ev);
      return;
    }
    if (b == cur_ && sorted_) {
      // Sub-width delay into the bucket being drained: ordered insert
      // keeps it drainable from the back. Rare when the bucket width is
      // at most the model's minimum scheduling delay.
      vec.insert(std::upper_bound(vec.begin(), vec.end(), ev, after), ev);
      return;
    }
    vec.push_back(ev);
  }

  /// Minimum bucketed event (back of the first non-empty bucket), or
  /// nullptr when no events are bucketed. Advances the cursor over empty
  /// buckets and lazily sorts the one it lands on.
  EventT* bucket_min() {
    if (nbucketed_ == 0) return nullptr;
    while (buckets_[cur_].empty()) {
      ++cur_;
      sorted_ = false;
      DV_CHECK(cur_ < buckets_.size(), "bucket occupancy out of sync");
    }
    std::vector<EventT>& vec = buckets_[cur_];
    if (!sorted_) {
      std::sort(vec.begin(), vec.end(), after);
      sorted_ = true;
    }
    return &vec.back();
  }

  EventHeap<EventT> heap_;                   // far-future fallback
  std::vector<std::vector<EventT>> buckets_; // fixed-width time buckets
  double width_ = 0.0;                       // 0 = bucket layer disabled
  double inv_width_ = 0.0;
  double base_ = 0.0;        // time at the start of bucket 0
  std::size_t cur_ = 0;      // drain cursor; buckets below it are empty
  bool sorted_ = false;      // bucket `cur_` sorted descending?
  std::size_t nbucketed_ = 0;
  std::uint64_t pushes_bucketed_ = 0;
  std::uint64_t pushes_heap_ = 0;
};

}  // namespace dv::pdes
