// PHOLD — the standard PDES benchmark model (used throughout the ROSS
// literature the paper builds on). Each LP holds a population of events;
// handling one schedules a successor at now + lookahead + Exp(mean) on a
// uniformly random LP. Runs on both the sequential and the conservative
// parallel engine so their equivalence can be tested and their throughput
// compared.
#pragma once

#include <cstdint>
#include <vector>

#include "pdes/engine.hpp"
#include "pdes/parallel.hpp"
#include "util/rng.hpp"

namespace dv::pdes {

struct PholdConfig {
  std::uint32_t lps = 16;
  std::uint32_t population = 4;  ///< initial events per LP
  double lookahead = 1.0;
  double mean_delay = 5.0;       ///< extra exponential delay
  double horizon = 1000.0;       ///< run_until time
  std::uint64_t seed = 1;
};

struct PholdResult {
  std::uint64_t events = 0;
  /// Per-LP event counts (model-level, excludes engine bookkeeping).
  std::vector<std::uint64_t> per_lp;
};

/// Runs PHOLD on the sequential engine.
PholdResult run_phold_sequential(const PholdConfig& cfg);

/// Runs PHOLD on the conservative parallel engine with `partitions`.
PholdResult run_phold_parallel(const PholdConfig& cfg,
                               std::size_t partitions);

}  // namespace dv::pdes
