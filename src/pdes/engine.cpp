#include "pdes/engine.hpp"

namespace dv::pdes {

LpId Simulator::add_lp(LogicalProcess* lp) {
  DV_REQUIRE(lp != nullptr, "null logical process");
  lps_.push_back(lp);
  return static_cast<LpId>(lps_.size() - 1);
}

void Simulator::schedule(SimTime t, LpId lp, std::uint32_t kind,
                         std::uint64_t data0, std::uint64_t data1) {
  DV_REQUIRE(lp < lps_.size(), "schedule to unknown LP");
  DV_REQUIRE(t >= now_, "cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, lp, kind, data0, data1});
}

void Simulator::schedule_in(SimTime delay, LpId lp, std::uint32_t kind,
                            std::uint64_t data0, std::uint64_t data1) {
  DV_REQUIRE(delay >= 0.0, "negative delay");
  schedule(now_ + delay, lp, kind, data0, data1);
}

void Simulator::dispatch(const Event& ev) {
  now_ = ev.time;
  ++events_processed_;
  if (budget_ != 0 && events_processed_ > budget_) {
    throw Error("simulation event budget exceeded");
  }
  lps_[ev.lp]->on_event(*this, ev);
}

void Simulator::run() {
  while (!queue_.empty()) {
    const Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
}

void Simulator::run_until(SimTime t_end) {
  DV_REQUIRE(t_end >= now_, "run_until into the past");
  while (!queue_.empty() && queue_.top().time <= t_end) {
    const Event ev = queue_.top();
    queue_.pop();
    dispatch(ev);
  }
  now_ = t_end;
}

}  // namespace dv::pdes
