#include "pdes/engine.hpp"

#include <chrono>

#include "obs/obs.hpp"

namespace dv::pdes {

LpId Simulator::add_lp(LogicalProcess* lp) {
  DV_REQUIRE(lp != nullptr, "null logical process");
  lps_.push_back(lp);
  return static_cast<LpId>(lps_.size() - 1);
}

void Simulator::set_kind_label(std::uint32_t kind, std::string label) {
  if (kind_labels_.size() <= kind) kind_labels_.resize(kind + 1);
  kind_labels_[kind] = std::move(label);
}

void Simulator::schedule(SimTime t, LpId lp, std::uint32_t kind,
                         std::uint64_t data0, std::uint64_t data1,
                         std::uint64_t pri) {
  DV_REQUIRE(lp < lps_.size(), "schedule to unknown LP");
  DV_REQUIRE(t >= now_, "cannot schedule into the past");
  queue_.push(Event{.time = t, .pri = pri, .seq = next_seq_++, .lp = lp,
                    .kind = kind, .data0 = data0, .data1 = data1});
#ifdef DV_OBS_ENABLED
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
#endif
}

void Simulator::schedule_in(SimTime delay, LpId lp, std::uint32_t kind,
                            std::uint64_t data0, std::uint64_t data1,
                            std::uint64_t pri) {
  DV_REQUIRE(delay >= 0.0, "negative delay");
  schedule(now_ + delay, lp, kind, data0, data1, pri);
}

void Simulator::dispatch(const Event& ev) {
  now_ = ev.time;
  ++events_processed_;
  if (budget_ != 0 && events_processed_ > budget_) {
    throw Error("simulation event budget exceeded");
  }
#ifdef DV_OBS_ENABLED
  if (kind_counts_.size() <= ev.kind) kind_counts_.resize(ev.kind + 1, 0);
  ++kind_counts_[ev.kind];
#endif
  lps_[ev.lp]->on_event(*this, ev);
}

void Simulator::publish_obs(double loop_seconds) {
#ifdef DV_OBS_ENABLED
  const std::uint64_t delta = events_processed_ - events_published_;
  events_published_ = events_processed_;
  obs::counter("sim.events_processed").add(delta);
  if (kind_published_.size() < kind_counts_.size()) {
    kind_published_.resize(kind_counts_.size(), 0);
  }
  for (std::size_t k = 0; k < kind_counts_.size(); ++k) {
    const std::uint64_t kd = kind_counts_[k] - kind_published_[k];
    if (!kd) continue;
    kind_published_[k] = kind_counts_[k];
    const std::string label = k < kind_labels_.size() && !kind_labels_[k].empty()
                                  ? kind_labels_[k]
                                  : "kind" + std::to_string(k);
    obs::counter("sim.events." + label).add(kd);
  }
  obs::gauge("sim.queue_high_water")
      .record_max(static_cast<double>(queue_high_water_));
  // Scheduler attribution: pushes absorbed by the bounded-horizon bucket
  // layer vs. pushes that fell through to the fallback heap.
  obs::counter("sim.sched.bucket_pushes")
      .add(queue_.pushes_bucketed() - sched_bucketed_published_);
  obs::counter("sim.sched.heap_pushes")
      .add(queue_.pushes_heap() - sched_heap_published_);
  sched_bucketed_published_ = queue_.pushes_bucketed();
  sched_heap_published_ = queue_.pushes_heap();
  obs::gauge("sim.run_seconds").add(loop_seconds);
  if (loop_seconds > 0.0 && delta > 0) {
    obs::gauge("sim.events_per_sec")
        .set(static_cast<double>(delta) / loop_seconds);
  }
#else
  (void)loop_seconds;
#endif
}

void Simulator::run() {
  const auto t0 = std::chrono::steady_clock::now();
  Event ev;  // pop target reused across the loop — no per-event temporary
  while (!queue_.empty()) {
    queue_.pop_into(ev);
    dispatch(ev);
  }
  publish_obs(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
}

void Simulator::run_until(SimTime t_end) {
  DV_REQUIRE(t_end >= now_, "run_until into the past");
  const auto t0 = std::chrono::steady_clock::now();
  Event ev;
  while (!queue_.empty() && queue_.top().time <= t_end) {
    queue_.pop_into(ev);
    dispatch(ev);
  }
  now_ = t_end;
  publish_obs(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count());
}

}  // namespace dv::pdes
