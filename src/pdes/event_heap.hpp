// Indexed d-ary event heap — the engines' pending-event set.
//
// std::priority_queue<Event> moves whole 48-byte Event values through the
// heap on every push/pop (and pop() alone costs a top() copy plus a full
// sift-down of the last element). This container keeps events in a stable
// slab with a free list and heapifies 32-bit slot indices instead, so a
// sift moves 4 bytes per level; arity 4 halves the tree depth relative to
// a binary heap and keeps the child scan inside one cache line.
//
// Ordering is (time, pri, seq): `pri` is a model-assigned priority key that
// makes simultaneous-event order engine-independent (see engine.hpp), and
// `seq` breaks the remaining ties by schedule order.
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace dv::pdes {

template <typename EventT>
class EventHeap {
 public:
  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    slab_.reserve(n);
  }

  const EventT& top() const {
    DV_CHECK(!heap_.empty(), "top() on an empty event heap");
    return slab_[heap_[0]];
  }

  void push(const EventT& ev) {
    std::uint32_t slot;
    if (free_.empty()) {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.push_back(ev);
    } else {
      slot = free_.back();
      free_.pop_back();
      slab_[slot] = ev;
    }
    heap_.push_back(slot);
    sift_up(heap_.size() - 1);
  }

  /// Removes the minimum event, writing it into caller-owned storage (one
  /// slab read, no intermediate temporary); its slab slot is recycled.
  void pop_into(EventT& out) {
    DV_CHECK(!heap_.empty(), "pop() on an empty event heap");
    const std::uint32_t slot = heap_[0];
    out = slab_[slot];
    free_.push_back(slot);
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
  }

  /// Removes and returns the minimum event; its slab slot is recycled.
  EventT pop() {
    EventT out;
    pop_into(out);
    return out;
  }

 private:
  static constexpr std::size_t kArity = 4;

  bool before(std::uint32_t a, std::uint32_t b) const {
    const EventT& ea = slab_[a];
    const EventT& eb = slab_[b];
    if (ea.time != eb.time) return ea.time < eb.time;
    if (ea.pri != eb.pri) return ea.pri < eb.pri;
    return ea.seq < eb.seq;
  }

  void sift_up(std::size_t i) {
    const std::uint32_t slot = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!before(slot, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = slot;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const std::uint32_t slot = heap_[i];
    for (;;) {
      const std::size_t first = i * kArity + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + kArity, n);
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], slot)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = slot;
  }

  std::vector<EventT> slab_;           // stable event storage
  std::vector<std::uint32_t> free_;    // recycled slab slots
  std::vector<std::uint32_t> heap_;    // d-ary heap of slab indices
};

}  // namespace dv::pdes
