// Discrete-event simulation engine.
//
// This is the substrate standing in for ROSS in the paper's toolchain: a
// deterministic event engine over logical processes (LPs). Events are
// ordered by (timestamp, priority key, sequence number). The priority key
// is model-assigned and engine-independent, so models that key every event
// can produce bit-identical results on the sequential and the partitioned
// parallel engine; `seq` (schedule order) breaks the remaining ties, so
// every run is bit-reproducible for a given seed either way.
//
// The model layer (netsim) keeps its own payload arenas; an event carries
// the destination LP, a model-defined kind, and two 64-bit payload words,
// which avoids per-event heap allocation on the hot path.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pdes/bucket_sched.hpp"
#include "util/common.hpp"

namespace dv::pdes {

using LpId = std::uint32_t;

/// One scheduled event. `kind` and `data` are interpreted by the receiving
/// logical process. Field order is hot-path-deliberate: the three ordering
/// keys the scheduler compares on occupy the first 24 bytes (one cache
/// line covers them wherever the event starts), and the four dispatch
/// fields fill the remaining 24, so the whole record stays at 48 bytes.
struct Event {
  SimTime time = 0.0;
  // Model-assigned ordering key for simultaneous events. Unlike `seq` it
  // must not depend on schedule order; models wanting cross-engine
  // determinism give every event class a unique key (netsim encodes
  // kind + entity id). 0 (the default) preserves pure schedule order.
  std::uint64_t pri = 0;
  std::uint64_t seq = 0;  // per-engine schedule order; last tie-breaker
  LpId lp = 0;
  std::uint32_t kind = 0;
  std::uint64_t data0 = 0;
  std::uint64_t data1 = 0;
};
static_assert(sizeof(Event) == 48, "keep the event record at 48 bytes");

class Simulator;

/// Base class for simulation entities (routers, terminals, samplers...).
class LogicalProcess {
 public:
  virtual ~LogicalProcess() = default;

  /// Handles one event addressed to this LP. Called with sim.now() ==
  /// event.time.
  virtual void on_event(Simulator& sim, const Event& ev) = 0;
};

/// Sequential deterministic event-driven simulator.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Registers an LP and returns its id. The pointer must stay valid for
  /// the simulator's lifetime (LPs are owned by the model layer).
  LpId add_lp(LogicalProcess* lp);

  std::size_t lp_count() const { return lps_.size(); }

  /// Schedules an event at absolute time `t` (must be >= now()).
  void schedule(SimTime t, LpId lp, std::uint32_t kind, std::uint64_t data0 = 0,
                std::uint64_t data1 = 0, std::uint64_t pri = 0);

  /// Schedules an event `delay` after now().
  void schedule_in(SimTime delay, LpId lp, std::uint32_t kind,
                   std::uint64_t data0 = 0, std::uint64_t data1 = 0,
                   std::uint64_t pri = 0);

  /// Runs until the event queue is empty (or the event budget is hit).
  void run();

  /// Runs while events exist with time <= t_end; now() ends at t_end.
  void run_until(SimTime t_end);

  SimTime now() const { return now_; }
  std::uint64_t events_processed() const { return events_processed_; }
  bool queue_empty() const { return queue_.empty(); }

  /// Safety valve against runaway models; 0 disables. Exceeding it throws.
  void set_event_budget(std::uint64_t max_events) { budget_ = max_events; }

  /// Enables the bounded-horizon bucket layer of the pending-event set
  /// (see bucket_sched.hpp). `width` should be the model's minimum
  /// scheduling delay (netsim passes its conservative lookahead); 0
  /// reverts to the pure heap. Must be called before any event is
  /// scheduled. No effect on event order — only on scheduling cost.
  void set_bucket_granularity(double width,
                              std::size_t buckets =
                                  BucketSched<Event>::kDefaultBuckets) {
    queue_.configure(width, buckets);
  }

  /// Names an event kind for observability output ("sim.events.<label>"
  /// instead of "sim.events.kind<N>"). No effect on simulation behaviour.
  void set_kind_label(std::uint32_t kind, std::string label);

  /// Largest queue size observed so far (0 in DV_OBS_ENABLED=OFF builds).
  std::size_t queue_high_water() const { return queue_high_water_; }

 private:
  void dispatch(const Event& ev);
  /// Publishes events/sec, per-kind counts and queue high-water to the
  /// observability registry (deltas since the previous publish).
  void publish_obs(double loop_seconds);

  std::vector<LogicalProcess*> lps_;
  BucketSched<Event> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_processed_ = 0;
  std::uint64_t budget_ = 0;

  // Observability (updated only in DV_OBS_ENABLED builds; publish_obs
  // flushes deltas so repeated run()/run_until() calls accumulate).
  std::size_t queue_high_water_ = 0;
  std::vector<std::uint64_t> kind_counts_;
  std::vector<std::uint64_t> kind_published_;
  std::vector<std::string> kind_labels_;
  std::uint64_t events_published_ = 0;
  std::uint64_t sched_bucketed_published_ = 0;
  std::uint64_t sched_heap_published_ = 0;
};

}  // namespace dv::pdes
