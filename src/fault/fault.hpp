// Deterministic fault injection for the dragonfly simulator.
//
// A FaultPlan is a list of scheduled link-down/up and router-down/up
// intervals, parsed from a spec file (--faults) or inline CLI arguments
// (--fault). The plan is pure configuration: compiled against a concrete
// topology it becomes a FaultTimeline, where "is entity X down at time t"
// is a pure function of the plan — sorted, merged down-intervals queried
// by binary search. Because liveness never depends on simulation state,
// any partition of the parallel engine can evaluate it without
// communication, and sequential and parallel runs under the same plan stay
// bit-exact (the netsim reacts through ordinary PDES events scheduled at
// the interval boundaries).
//
// Spec grammar (one fault per line / argument, '#' starts a comment):
//   link:g<G>.r<R>->g<G'>.r<R'>@<t_down>[:<t_up>]  exact directed link
//   link:g<G>->g<G'>@<t_down>[:<t_up>]             the unique inter-group
//                                                  cable (canonical wiring)
//   router:g<G>.r<R>@<t_down>[:<t_up>]             whole router
// Times are ns; a missing <t_up> means the entity never recovers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "topology/dragonfly.hpp"
#include "util/common.hpp"

namespace dv::fault {

/// A (group, rank) router address as written in fault specs.
struct RouterRef {
  std::uint32_t group = 0;
  std::uint32_t rank = 0;
  bool operator==(const RouterRef&) const = default;
};

/// One scheduled fault: the entity is down over [t_down, t_up).
struct FaultSpec {
  enum class Kind { kLink, kRouter };
  Kind kind = Kind::kRouter;
  RouterRef src;            ///< the router, or the link's source router
  RouterRef dst;            ///< link destination router (kLink only)
  /// Group-level link form ("link:g2->g5"): ranks are resolved from the
  /// topology's group_exit wiring at timeline-compile time.
  bool group_level = false;
  double t_down = 0.0;
  double t_up = std::numeric_limits<double>::infinity();

  bool operator==(const FaultSpec&) const = default;
};

/// Parses one fault spec; throws dv::Error with the offending text on
/// malformed input. to_string(parse_fault(s)) round-trips semantically.
FaultSpec parse_fault(const std::string& spec);
std::string to_string(const FaultSpec& f);

/// An ordered list of scheduled faults (order is irrelevant to semantics;
/// it is kept for faithful round-tripping).
struct FaultPlan {
  std::vector<FaultSpec> faults;

  bool empty() const { return faults.empty(); }

  /// Parses a multi-line spec ('#' comments, blank lines ignored).
  static FaultPlan parse(const std::string& text);
  static FaultPlan load(const std::string& path);
  std::string to_string() const;
};

/// A FaultPlan resolved against a topology: per-entity sorted disjoint
/// down-intervals plus the wake schedule the simulator needs. Queries are
/// pure functions of (plan, t) — safe from any thread/partition.
class FaultTimeline {
 public:
  /// Sorted, merged, half-open [down, up) intervals.
  using Intervals = std::vector<std::pair<double, double>>;

  FaultTimeline() = default;  ///< empty timeline: nothing ever fails
  FaultTimeline(const topo::Dragonfly& topo, const FaultPlan& plan);

  bool empty() const { return faults_ == 0; }
  std::size_t faults() const { return faults_; }
  /// Distinct entities with at least one scheduled down-interval.
  std::size_t entities() const {
    return local_.size() + global_.size() + routers_.size();
  }

  bool local_link_down(std::uint32_t id, double t) const {
    return is_down(local_, id, t);
  }
  bool global_link_down(std::uint32_t id, double t) const {
    return is_down(global_, id, t);
  }
  bool router_down(std::uint32_t router, double t) const {
    return is_down(routers_, router, t);
  }

  /// Scheduled downtime of the entity itself, clipped to [0, end).
  double local_link_downtime(std::uint32_t id, double end) const {
    return downtime(local_, id, end);
  }
  double global_link_downtime(std::uint32_t id, double end) const {
    return downtime(global_, id, end);
  }
  double router_downtime(std::uint32_t router, double end) const {
    return downtime(routers_, router, end);
  }

  /// Downtime during which the link was *effectively* unusable: its own
  /// intervals unioned with both endpoint routers' (a link hangs off live
  /// electronics on both ends), clipped to [0, end).
  double effective_link_downtime(bool global, std::uint32_t id,
                                 std::uint32_t src_router,
                                 std::uint32_t dst_router, double end) const;

  /// (router, time) pairs at which some adjacent entity changes liveness —
  /// the simulator schedules one wake event per pair so ports re-evaluate
  /// exactly at the transitions. Sorted, deduplicated.
  const std::vector<std::pair<std::uint32_t, double>>& wakes() const {
    return wakes_;
  }

 private:
  using Map = std::unordered_map<std::uint32_t, Intervals>;
  static bool is_down(const Map& m, std::uint32_t id, double t);
  static double downtime(const Map& m, std::uint32_t id, double end);

  Map local_, global_, routers_;
  std::vector<std::pair<std::uint32_t, double>> wakes_;
  std::size_t faults_ = 0;
};

}  // namespace dv::fault
