#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/str.hpp"

namespace dv::fault {

// ----------------------------------------------------------------- parsing

namespace {

std::uint32_t parse_nat(const std::string& s, const std::string& what) {
  DV_REQUIRE(!s.empty(), "missing " + what + " in fault spec");
  for (char c : s) {
    DV_REQUIRE(c >= '0' && c <= '9', "bad " + what + " in fault spec: " + s);
  }
  return static_cast<std::uint32_t>(std::stoul(s));
}

/// Parses "g<G>" or "g<G>.r<R>"; `has_rank` reports which form was used.
RouterRef parse_endpoint(const std::string& s, bool& has_rank) {
  DV_REQUIRE(starts_with(s, "g"), "fault endpoint must start with 'g': " + s);
  RouterRef ref;
  const auto dot = s.find('.');
  if (dot == std::string::npos) {
    ref.group = parse_nat(s.substr(1), "group");
    has_rank = false;
    return ref;
  }
  ref.group = parse_nat(s.substr(1, dot - 1), "group");
  const std::string r = s.substr(dot + 1);
  DV_REQUIRE(starts_with(r, "r"), "fault endpoint rank must be 'r<N>': " + s);
  ref.rank = parse_nat(r.substr(1), "rank");
  has_rank = true;
  return ref;
}

double parse_time(const std::string& s) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(s, &pos);
    DV_REQUIRE(pos == s.size(), "trailing characters in fault time: " + s);
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    throw Error("bad time in fault spec: " + s);
  }
}

/// Shortest decimal form that parses back to exactly the same double.
std::string fmt_time(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int prec = 1; prec < 17; ++prec) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    if (std::stod(probe) == v) return probe;
  }
  return buf;
}

std::string endpoint_to_string(const RouterRef& r, bool group_level) {
  std::string s = "g" + std::to_string(r.group);
  if (!group_level) s += ".r" + std::to_string(r.rank);
  return s;
}

}  // namespace

FaultSpec parse_fault(const std::string& spec) {
  const std::string s = trim(spec);
  const auto colon = s.find(':');
  DV_REQUIRE(colon != std::string::npos,
             "fault spec must be kind:target@times — got: " + spec);
  const std::string kind = to_lower(s.substr(0, colon));
  std::string rest = s.substr(colon + 1);

  const auto at = rest.find('@');
  DV_REQUIRE(at != std::string::npos, "fault spec missing '@times': " + spec);
  const std::string target = trim(rest.substr(0, at));
  const auto times = split(rest.substr(at + 1), ':');
  DV_REQUIRE(times.size() == 1 || times.size() == 2,
             "fault times must be t_down[:t_up]: " + spec);

  FaultSpec f;
  f.t_down = parse_time(trim(times[0]));
  DV_REQUIRE(f.t_down >= 0.0 && std::isfinite(f.t_down),
             "fault t_down must be finite and non-negative: " + spec);
  if (times.size() == 2) {
    f.t_up = parse_time(trim(times[1]));
    DV_REQUIRE(f.t_up > f.t_down,
               "fault t_up must be after t_down: " + spec);
  }

  if (kind == "router") {
    f.kind = FaultSpec::Kind::kRouter;
    bool has_rank = false;
    f.src = parse_endpoint(target, has_rank);
    DV_REQUIRE(has_rank, "router fault needs g<G>.r<R>: " + spec);
    return f;
  }
  DV_REQUIRE(kind == "link", "fault kind must be link or router: " + spec);
  f.kind = FaultSpec::Kind::kLink;
  const auto arrow = target.find("->");
  DV_REQUIRE(arrow != std::string::npos,
             "link fault needs src->dst endpoints: " + spec);
  bool src_rank = false, dst_rank = false;
  f.src = parse_endpoint(trim(target.substr(0, arrow)), src_rank);
  f.dst = parse_endpoint(trim(target.substr(arrow + 2)), dst_rank);
  DV_REQUIRE(src_rank == dst_rank,
             "link fault endpoints must both be g<G> or both g<G>.r<R>: " +
                 spec);
  f.group_level = !src_rank;
  if (f.group_level) {
    DV_REQUIRE(f.src.group != f.dst.group,
               "group-level link fault needs two distinct groups: " + spec);
  } else {
    DV_REQUIRE(!(f.src == f.dst), "link fault endpoints are equal: " + spec);
  }
  return f;
}

std::string to_string(const FaultSpec& f) {
  std::string s = f.kind == FaultSpec::Kind::kRouter ? "router:" : "link:";
  s += endpoint_to_string(f.src, f.group_level);
  if (f.kind == FaultSpec::Kind::kLink) {
    s += "->" + endpoint_to_string(f.dst, f.group_level);
  }
  s += "@" + fmt_time(f.t_down);
  if (std::isfinite(f.t_up)) s += ":" + fmt_time(f.t_up);
  return s;
}

FaultPlan FaultPlan::parse(const std::string& text) {
  FaultPlan plan;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    plan.faults.push_back(parse_fault(line));
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DV_REQUIRE(is.good(), "cannot open fault plan: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return parse(buf.str());
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const auto& f : faults) {
    out += fault::to_string(f);
    out += '\n';
  }
  return out;
}

// ----------------------------------------------------------------- timeline

namespace {

void merge_intervals(FaultTimeline::Intervals& iv) {
  std::sort(iv.begin(), iv.end());
  std::size_t out = 0;
  for (std::size_t i = 0; i < iv.size(); ++i) {
    if (out > 0 && iv[i].first <= iv[out - 1].second) {
      iv[out - 1].second = std::max(iv[out - 1].second, iv[i].second);
    } else {
      iv[out++] = iv[i];
    }
  }
  iv.resize(out);
}

double sum_clipped(const FaultTimeline::Intervals& iv, double end) {
  double s = 0.0;
  for (const auto& [lo, hi] : iv) {
    if (lo >= end) break;
    s += std::min(hi, end) - lo;
  }
  return s;
}

const FaultTimeline::Intervals* find_intervals(
    const std::unordered_map<std::uint32_t, FaultTimeline::Intervals>& m,
    std::uint32_t id) {
  const auto it = m.find(id);
  return it == m.end() ? nullptr : &it->second;
}

}  // namespace

FaultTimeline::FaultTimeline(const topo::Dragonfly& topo,
                             const FaultPlan& plan) {
  const std::uint32_t nterm = topo.terminals_per_router();
  auto router_of = [&](const RouterRef& ref, const FaultSpec& f) {
    DV_REQUIRE(ref.group < topo.groups() &&
                   ref.rank < topo.routers_per_group(),
               "fault endpoint outside the topology: " + to_string(f));
    return topo.router_id(ref.group, ref.rank);
  };

  for (const auto& f : plan.faults) {
    if (f.kind == FaultSpec::Kind::kRouter) {
      routers_[router_of(f.src, f)].emplace_back(f.t_down, f.t_up);
      ++faults_;
      continue;
    }
    if (f.group_level) {
      DV_REQUIRE(f.src.group < topo.groups() && f.dst.group < topo.groups(),
                 "fault endpoint outside the topology: " + to_string(f));
      const topo::GlobalEnd exit = topo.group_exit(f.src.group, f.dst.group);
      global_[topo.global_link_id(exit.router, exit.channel)].emplace_back(
          f.t_down, f.t_up);
      ++faults_;
      continue;
    }
    const std::uint32_t src = router_of(f.src, f);
    const std::uint32_t dst = router_of(f.dst, f);
    if (f.src.group == f.dst.group) {
      const std::uint32_t lidx =
          topo.local_port(f.src.rank, f.dst.rank) - nterm;
      local_[topo.local_link_id(src, lidx)].emplace_back(f.t_down, f.t_up);
      ++faults_;
      continue;
    }
    bool found = false;
    for (std::uint32_t c = 0; c < topo.global_per_router(); ++c) {
      if (topo.global_neighbor(src, c).router == dst) {
        global_[topo.global_link_id(src, c)].emplace_back(f.t_down, f.t_up);
        found = true;
        break;
      }
    }
    DV_REQUIRE(found, "no global link between the named routers: " +
                          to_string(f));
    ++faults_;
  }

  for (auto& [id, iv] : local_) merge_intervals(iv);
  for (auto& [id, iv] : global_) merge_intervals(iv);
  for (auto& [id, iv] : routers_) merge_intervals(iv);

  // Wake schedule: the source router of a faulted link re-evaluates its
  // ports at every transition; a faulted router wakes itself, its group
  // peers (their local links into it die with it) and its global
  // neighbors. Dedup'd so simultaneous transitions yield one event.
  std::vector<std::pair<std::uint32_t, double>> wakes;
  auto add_wakes = [&wakes](std::uint32_t router, const Intervals& iv) {
    for (const auto& [lo, hi] : iv) {
      wakes.emplace_back(router, lo);
      if (std::isfinite(hi)) wakes.emplace_back(router, hi);
    }
  };
  for (const auto& [id, iv] : local_) {
    add_wakes(topo.local_link_ends(id).first, iv);
  }
  for (const auto& [id, iv] : global_) {
    add_wakes(topo.global_link_src(id).router, iv);
  }
  for (const auto& [r, iv] : routers_) {
    add_wakes(r, iv);
    const std::uint32_t g = topo.router_group(r);
    for (std::uint32_t rank = 0; rank < topo.routers_per_group(); ++rank) {
      const std::uint32_t peer = topo.router_id(g, rank);
      if (peer != r) add_wakes(peer, iv);
    }
    for (std::uint32_t c = 0; c < topo.global_per_router(); ++c) {
      add_wakes(topo.global_neighbor(r, c).router, iv);
    }
  }
  std::sort(wakes.begin(), wakes.end());
  wakes.erase(std::unique(wakes.begin(), wakes.end()), wakes.end());
  wakes_ = std::move(wakes);
}

bool FaultTimeline::is_down(const Map& m, std::uint32_t id, double t) {
  const Intervals* iv = find_intervals(m, id);
  if (!iv) return false;
  // First interval starting after t; the one before it is the only
  // candidate containing t.
  auto it = std::upper_bound(
      iv->begin(), iv->end(), t,
      [](double v, const std::pair<double, double>& p) { return v < p.first; });
  if (it == iv->begin()) return false;
  --it;
  return t < it->second;
}

double FaultTimeline::downtime(const Map& m, std::uint32_t id, double end) {
  const Intervals* iv = find_intervals(m, id);
  return iv ? sum_clipped(*iv, end) : 0.0;
}

double FaultTimeline::effective_link_downtime(bool global, std::uint32_t id,
                                              std::uint32_t src_router,
                                              std::uint32_t dst_router,
                                              double end) const {
  Intervals merged;
  if (const Intervals* iv = find_intervals(global ? global_ : local_, id)) {
    merged.insert(merged.end(), iv->begin(), iv->end());
  }
  for (std::uint32_t r : {src_router, dst_router}) {
    if (const Intervals* iv = find_intervals(routers_, r)) {
      merged.insert(merged.end(), iv->begin(), iv->end());
    }
  }
  if (merged.empty()) return 0.0;
  merge_intervals(merged);
  return sum_clipped(merged, end);
}

}  // namespace dv::fault
