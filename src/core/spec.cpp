#include "core/spec.hpp"

#include "util/str.hpp"

namespace dv::core {

std::size_t VisualMapping::channel_count() const {
  std::size_t n = 0;
  if (!color.empty()) ++n;
  if (!size.empty()) ++n;
  if (!x.empty()) ++n;
  if (!y.empty()) ++n;
  return n;
}

std::string to_string(PlotType t) {
  switch (t) {
    case PlotType::kHeatmap1D: return "heatmap";
    case PlotType::kBarChart: return "bar_chart";
    case PlotType::kHeatmap2D: return "heatmap2d";
    case PlotType::kScatter: return "scatter";
  }
  return "?";
}

PlotType LevelSpec::plot_type() const {
  // Paper: "The type of the plot used in each layer is based on the number
  // of visual encodings defined by the user."
  switch (vmap.channel_count()) {
    case 0:
    case 1: return PlotType::kHeatmap1D;
    case 2: return PlotType::kBarChart;
    case 3: return PlotType::kHeatmap2D;
    default: return PlotType::kScatter;
  }
}

AggregationSpec LevelSpec::aggregation_spec() const {
  AggregationSpec s;
  s.keys = aggregate;
  s.max_bins = max_bins;
  s.filters = filters;
  return s;
}

// ----------------------------------------------------------------- parsing

namespace {

std::vector<std::string> parse_string_list(const json::Value& v,
                                           const char* what) {
  std::vector<std::string> out;
  if (v.is_string()) {
    out.push_back(v.as_string());
  } else if (v.is_array()) {
    for (const auto& item : v.as_array()) out.push_back(item.as_string());
  } else {
    throw Error(std::string(what) + " must be a string or array of strings");
  }
  return out;
}

std::vector<AttrFilter> parse_filters(const json::Value& v) {
  std::vector<AttrFilter> out;
  for (const auto& [attr, range] : v.as_object()) {
    AttrFilter f;
    f.attr = attr;
    // `attr: null` keeps the default unbounded range (the attr is named
    // without restricting it); `[null, hi]` / `[lo, null]` are one-sided.
    if (!range.is_null()) {
      const auto& arr = range.as_array();
      DV_REQUIRE(arr.size() == 2, "filter range must be [lo, hi]");
      if (!arr[0].is_null()) f.lo = arr[0].as_number();
      if (!arr[1].is_null()) f.hi = arr[1].as_number();
    }
    out.push_back(std::move(f));
  }
  return out;
}

TimeWindow parse_window(const json::Value& v) {
  const auto& arr = v.as_array();
  DV_REQUIRE(arr.size() == 2, "window must be [t0, t1]");
  TimeWindow w{arr[0].as_number(), arr[1].as_number()};
  DV_REQUIRE(w.active(), "window must satisfy t0 < t1");
  return w;
}

LevelSpec parse_level(const json::Value& v) {
  LevelSpec lvl;
  lvl.entity = entity_from_string(v.at("project").as_string());
  if (const auto* agg = v.find("aggregate")) {
    lvl.aggregate = parse_string_list(*agg, "aggregate");
  }
  if (const auto* mb = v.find("maxBins")) {
    lvl.max_bins = static_cast<std::size_t>(mb->as_int());
  }
  if (const auto* f = v.find("filter")) {
    lvl.filters = parse_filters(*f);
  }
  if (const auto* vm = v.find("vmap")) {
    lvl.vmap.color = vm->get_string("color", "");
    lvl.vmap.size = vm->get_string("size", "");
    lvl.vmap.x = vm->get_string("x", "");
    lvl.vmap.y = vm->get_string("y", "");
  }
  if (const auto* c = v.find("colors")) {
    lvl.colors = parse_string_list(*c, "colors");
  }
  lvl.border = v.get_bool("border", true);
  return lvl;
}

RibbonSpec parse_ribbons(const json::Value& v) {
  RibbonSpec r;
  r.enabled = v.get_bool("enabled", true);
  if (const auto* e = v.find("project")) {
    r.entity = entity_from_string(e->as_string());
    DV_REQUIRE(r.entity == Entity::kLocalLink || r.entity == Entity::kGlobalLink,
               "ribbons must project a link entity");
  }
  r.key = v.get_string("key", r.key);
  if (const auto* vm = v.find("vmap")) {
    r.size_attr = vm->get_string("size", r.size_attr);
    r.color_attr = vm->get_string("color", r.color_attr);
  }
  if (const auto* c = v.find("colors")) {
    r.colors = parse_string_list(*c, "colors");
  }
  return r;
}

}  // namespace

ProjectionSpec ProjectionSpec::parse(const std::string& script) {
  return from_json(json::parse_script(script));
}

ProjectionSpec ProjectionSpec::from_json(const json::Value& v) {
  ProjectionSpec spec;
  const json::Array* entries = nullptr;
  json::Array single;
  if (v.is_array()) {
    entries = &v.as_array();
  } else {
    single.push_back(v);
    entries = &single;
  }
  for (const auto& entry : *entries) {
    DV_REQUIRE(entry.is_object(), "each spec entry must be an object");
    if (entry.find("ribbons") != nullptr) {
      spec.ribbons = parse_ribbons(entry.at("ribbons"));
      continue;
    }
    if (const auto* w = entry.find("window")) {
      DV_REQUIRE(entry.as_object().size() == 1,
                 "window must be its own spec entry");
      spec.window = parse_window(*w);
      continue;
    }
    spec.levels.push_back(parse_level(entry));
  }
  DV_REQUIRE(!spec.levels.empty(), "projection spec has no levels");
  return spec;
}

json::Value ProjectionSpec::to_json() const {
  json::Array arr;
  for (const auto& lvl : levels) {
    json::Object o;
    o["project"] = json::Value(to_string(lvl.entity));
    if (!lvl.aggregate.empty()) {
      if (lvl.aggregate.size() == 1) {
        o["aggregate"] = json::Value(lvl.aggregate[0]);
      } else {
        json::Array keys;
        for (const auto& k : lvl.aggregate) keys.emplace_back(k);
        o["aggregate"] = json::Value(std::move(keys));
      }
    }
    if (lvl.max_bins) o["maxBins"] = json::Value(lvl.max_bins);
    if (!lvl.filters.empty()) {
      json::Object f;
      for (const auto& flt : lvl.filters) {
        if (!flt.bounded_lo() && !flt.bounded_hi()) {
          f[flt.attr] = json::Value(nullptr);
          continue;
        }
        json::Array range;
        range.emplace_back(flt.bounded_lo() ? json::Value(flt.lo)
                                            : json::Value(nullptr));
        range.emplace_back(flt.bounded_hi() ? json::Value(flt.hi)
                                            : json::Value(nullptr));
        f[flt.attr] = json::Value(std::move(range));
      }
      o["filter"] = json::Value(std::move(f));
    }
    {
      json::Object vm;
      if (!lvl.vmap.color.empty()) vm["color"] = json::Value(lvl.vmap.color);
      if (!lvl.vmap.size.empty()) vm["size"] = json::Value(lvl.vmap.size);
      if (!lvl.vmap.x.empty()) vm["x"] = json::Value(lvl.vmap.x);
      if (!lvl.vmap.y.empty()) vm["y"] = json::Value(lvl.vmap.y);
      if (!vm.empty()) o["vmap"] = json::Value(std::move(vm));
    }
    if (!lvl.colors.empty()) {
      json::Array c;
      for (const auto& name : lvl.colors) c.emplace_back(name);
      o["colors"] = json::Value(std::move(c));
    }
    if (!lvl.border) o["border"] = json::Value(false);
    arr.emplace_back(std::move(o));
  }
  if (window.active()) {
    json::Object w;
    json::Array range;
    range.emplace_back(window.t0);
    range.emplace_back(window.t1);
    w["window"] = json::Value(std::move(range));
    arr.emplace_back(std::move(w));
  }
  {
    json::Object rw;
    json::Object r;
    r["enabled"] = json::Value(ribbons.enabled);
    r["project"] = json::Value(to_string(ribbons.entity));
    r["key"] = json::Value(ribbons.key);
    json::Object vm;
    vm["size"] = json::Value(ribbons.size_attr);
    vm["color"] = json::Value(ribbons.color_attr);
    r["vmap"] = json::Value(std::move(vm));
    json::Array c;
    for (const auto& name : ribbons.colors) c.emplace_back(name);
    r["colors"] = json::Value(std::move(c));
    rw["ribbons"] = json::Value(std::move(r));
    arr.emplace_back(std::move(rw));
  }
  return json::Value(std::move(arr));
}

std::string ProjectionSpec::to_script() const { return json::dump(to_json(), 2); }

// ----------------------------------------------------------------- builder

LevelSpec& SpecBuilder::current() {
  DV_REQUIRE(has_level_, "call level() before configuring it");
  return spec_.levels.back();
}

SpecBuilder& SpecBuilder::level(Entity entity) {
  spec_.levels.push_back(LevelSpec{});
  spec_.levels.back().entity = entity;
  has_level_ = true;
  return *this;
}

SpecBuilder& SpecBuilder::aggregate(std::vector<std::string> keys) {
  current().aggregate = std::move(keys);
  return *this;
}

SpecBuilder& SpecBuilder::max_bins(std::size_t n) {
  current().max_bins = n;
  return *this;
}

SpecBuilder& SpecBuilder::filter(const std::string& attr, double lo,
                                 double hi) {
  current().filters.push_back(AttrFilter{attr, lo, hi});
  return *this;
}

SpecBuilder& SpecBuilder::filter_min(const std::string& attr, double lo) {
  AttrFilter f;
  f.attr = attr;
  f.lo = lo;
  current().filters.push_back(std::move(f));
  return *this;
}

SpecBuilder& SpecBuilder::filter_max(const std::string& attr, double hi) {
  AttrFilter f;
  f.attr = attr;
  f.hi = hi;
  current().filters.push_back(std::move(f));
  return *this;
}

SpecBuilder& SpecBuilder::color(const std::string& attr) {
  current().vmap.color = attr;
  return *this;
}

SpecBuilder& SpecBuilder::size(const std::string& attr) {
  current().vmap.size = attr;
  return *this;
}

SpecBuilder& SpecBuilder::x(const std::string& attr) {
  current().vmap.x = attr;
  return *this;
}

SpecBuilder& SpecBuilder::y(const std::string& attr) {
  current().vmap.y = attr;
  return *this;
}

SpecBuilder& SpecBuilder::colors(std::vector<std::string> ramp) {
  current().colors = std::move(ramp);
  return *this;
}

SpecBuilder& SpecBuilder::no_border() {
  current().border = false;
  return *this;
}

SpecBuilder& SpecBuilder::ribbons(Entity entity, const std::string& key,
                                  const std::string& size_attr,
                                  const std::string& color_attr) {
  DV_REQUIRE(entity == Entity::kLocalLink || entity == Entity::kGlobalLink,
             "ribbons must project a link entity");
  spec_.ribbons.enabled = true;
  spec_.ribbons.entity = entity;
  spec_.ribbons.key = key;
  spec_.ribbons.size_attr = size_attr;
  spec_.ribbons.color_attr = color_attr;
  return *this;
}

SpecBuilder& SpecBuilder::ribbon_colors(std::vector<std::string> ramp) {
  spec_.ribbons.colors = std::move(ramp);
  return *this;
}

SpecBuilder& SpecBuilder::no_ribbons() {
  spec_.ribbons.enabled = false;
  return *this;
}

SpecBuilder& SpecBuilder::window(double t0, double t1) {
  DV_REQUIRE(t0 < t1, "window must satisfy t0 < t1");
  spec_.window = TimeWindow{t0, t1};
  return *this;
}

ProjectionSpec SpecBuilder::build() const {
  DV_REQUIRE(!spec_.levels.empty(), "projection spec has no levels");
  return spec_;
}

}  // namespace dv::core
