#include "core/presets.hpp"

#include "util/str.hpp"

namespace dv::core {

std::vector<std::string> preset_names() {
  return {"fig4", "fig5a", "fig7", "fig9", "fig13", "overview",
          "interactive", "faults"};
}

ProjectionSpec preset(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "fig4") {
    return SpecBuilder()
        .level(Entity::kGlobalLink)
        .aggregate({"router_rank", "router_port"})
        .color("sat_time")
        .size("traffic")
        .colors({"white", "steelblue"})
        .level(Entity::kTerminal)
        .aggregate({"router_rank", "router_port"})
        .color("sat_time")
        .colors({"white", "steelblue"})
        .level(Entity::kTerminal)
        .color("workload")
        .size("avg_latency")
        .x("avg_hops")
        .y("data_size")
        .colors({"green", "orange", "brown"})
        .ribbons(Entity::kLocalLink, "router_rank")
        .build();
  }
  if (n == "fig5a") {
    return SpecBuilder()
        .level(Entity::kGlobalLink)
        .aggregate({"group_id"})
        .max_bins(8)
        .color("sat_time")
        .size("traffic")
        .colors({"white", "purple"})
        .level(Entity::kRouter)
        .aggregate({"router_rank"})
        .color("local_sat_time")
        .colors({"white", "steelblue"})
        .level(Entity::kTerminal)
        .aggregate({"router_port", "workload"})
        .color("workload")
        .size("avg_hops")
        .colors({"green", "orange", "brown"})
        .ribbons(Entity::kGlobalLink, "job")
        .ribbon_colors({"white", "purple"})
        .build();
  }
  if (n == "fig7") {
    return SpecBuilder()
        .level(Entity::kLocalLink)
        .aggregate({"router_rank"})
        .color("sat_time")
        .colors({"white", "steelblue"})
        .level(Entity::kGlobalLink)
        .aggregate({"router_rank"})
        .color("sat_time")
        .colors({"white", "purple"})
        .level(Entity::kTerminal)
        .aggregate({"router_rank"})
        .color("sat_time")
        .colors({"white", "crimson"})
        .ribbons(Entity::kLocalLink, "router_rank")
        .build();
  }
  if (n == "fig9") {
    return SpecBuilder()
        .level(Entity::kGlobalLink)
        .aggregate({"group_id"})
        .max_bins(12)
        .color("sat_time")
        .size("traffic")
        .colors({"white", "purple"})
        .level(Entity::kLocalLink)
        .aggregate({"router_rank"})
        .color("sat_time")
        .size("traffic")
        .colors({"white", "steelblue"})
        .level(Entity::kTerminal)
        .aggregate({"router_rank"})
        .color("avg_latency")
        .size("avg_hops")
        .colors({"white", "crimson"})
        .ribbons(Entity::kGlobalLink, "group_id")
        .build();
  }
  if (n == "fig13") {
    return SpecBuilder()
        .level(Entity::kLocalLink)
        .aggregate({"src_job"})
        .color("sat_time")
        .size("traffic")
        .colors({"white", "steelblue"})
        .level(Entity::kTerminal)
        .aggregate({"workload"})
        .color("avg_latency")
        .size("avg_hops")
        .colors({"white", "crimson"})
        .ribbons(Entity::kGlobalLink, "job")
        .build();
  }
  if (n == "overview") {
    return SpecBuilder()
        .level(Entity::kGlobalLink)
        .aggregate({"router_rank"})
        .color("sat_time")
        .size("traffic")
        .colors({"white", "purple"})
        .level(Entity::kTerminal)
        .aggregate({"router_rank"})
        .color("sat_time")
        .colors({"white", "steelblue"})
        .ribbons(Entity::kLocalLink, "router_rank")
        .build();
  }
  if (n == "interactive") {
    // Brushing workload: windowable sum channels on every ring, so a
    // time-range selection re-aggregates through the engine's group slabs
    // (combine with --window / SpecBuilder::window).
    return SpecBuilder()
        .level(Entity::kGlobalLink)
        .aggregate({"group_id"})
        .max_bins(16)
        .color("sat_time")
        .size("traffic")
        .colors({"white", "purple"})
        .level(Entity::kLocalLink)
        .aggregate({"router_rank"})
        .color("sat_time")
        .size("traffic")
        .colors({"white", "steelblue"})
        .level(Entity::kTerminal)
        .aggregate({"router_rank"})
        .color("sat_time")
        .size("data_size")
        .colors({"white", "crimson"})
        .ribbons(Entity::kGlobalLink, "group_id")
        .build();
  }
  if (n == "faults") {
    // Degraded-operation view: outage fraction on the link rings, drops at
    // the routers, and the share of traffic that had to detour around dead
    // global links on the terminal ring.
    return SpecBuilder()
        .level(Entity::kGlobalLink)
        .aggregate({"group_id"})
        .max_bins(16)
        .color("downtime_frac")
        .size("traffic")
        .colors({"white", "crimson"})
        .level(Entity::kRouter)
        .aggregate({"router_rank"})
        .color("pkts_dropped")
        .size("retries")
        .colors({"white", "orange"})
        .level(Entity::kTerminal)
        .aggregate({"router_rank"})
        .color("rerouted_frac")
        .size("data_size")
        .colors({"white", "purple"})
        .ribbons(Entity::kGlobalLink, "group_id")
        .build();
  }
  throw Error("unknown spec preset: " + name + " (available: " +
              join(preset_names(), ", ") + ")");
}

bool is_preset_ref(const std::string& ref) {
  return starts_with(to_lower(trim(ref)), "preset:");
}

ProjectionSpec preset_from_ref(const std::string& ref) {
  DV_REQUIRE(is_preset_ref(ref), "not a preset reference: " + ref);
  return preset(trim(ref).substr(7));
}

}  // namespace dv::core
