// HTML analysis reports.
//
// The paper's system lets users "better communicate and present the
// information and discoveries in the results". A ReportBuilder assembles a
// self-contained HTML page — run metadata, embedded SVG views, the spec
// scripts that produced them, job summary tables, and free-text notes —
// so a whole analysis session can be shared as one file.
#pragma once

#include <string>
#include <vector>

#include "core/comparison.hpp"
#include "core/views.hpp"

namespace dv::core {

class ReportBuilder {
 public:
  explicit ReportBuilder(std::string title);

  /// Free-text sections (paragraph-level; HTML-escaped).
  ReportBuilder& note(const std::string& heading, const std::string& text);

  /// Run metadata block (workload, routing, placement, totals).
  ReportBuilder& run_summary(const DataSet& data);

  /// Embeds a projection view (SVG inline) with its spec script.
  ReportBuilder& projection(const ProjectionView& view,
                            const std::string& caption,
                            double size_px = 640);

  /// Embeds a side-by-side comparison and its per-job summary table.
  ReportBuilder& comparison(const ComparisonView& cmp,
                            const std::string& caption,
                            double panel_px = 420);

  /// Embeds the detail view (link scatters + parallel coordinates).
  ReportBuilder& detail(const DetailView& view, const std::string& caption,
                        double w = 900, double h = 360);

  /// Embeds the timeline view (requires a sampled run).
  ReportBuilder& timeline(const TimelineView& view,
                          const std::string& caption, double w = 900,
                          double h = 220);

  /// Embeds any prebuilt SVG string.
  ReportBuilder& svg(const std::string& svg_markup,
                     const std::string& caption);

  /// Query-engine cache effectiveness table (hits, misses, evictions, slab
  /// usage) — documents how interactive the reported session was.
  ReportBuilder& query_stats(const QueryStats& stats);

  std::string html() const;
  void save(const std::string& path) const;

 private:
  void heading(const std::string& text);

  std::string title_;
  std::string body_;
};

}  // namespace dv::core
