#include "core/aggregation.hpp"

#include <algorithm>
#include <map>

#include "obs/obs.hpp"
#include "util/kernels.hpp"
#include "util/str.hpp"

namespace dv::core {

Reducer default_reducer(const std::string& attr) {
  if (starts_with(attr, "avg_")) return Reducer::kMean;
  return Reducer::kSum;
}

Aggregation::Aggregation(const DataTable& table, AggregationSpec spec)
    : table_(&table), spec_(std::move(spec)) {
  build();
}

void Aggregation::build() {
  const DataTable& t = *table_;

  // 1. Filter — column-at-a-time predicate masks instead of the old
  // row-at-a-time short-circuit loop. Column extents act as table-level
  // zone maps: a filter whose range covers the whole column is dropped
  // before any scan, and one disjoint from it empties the result outright.
  // Either way the surviving rows are exactly those of the scalar loop:
  // filter_range_mask keeps NaN cells like the original predicate did, and
  // the extent skips are exact because metric columns are NaN-free (the
  // documented DataTable invariant). Every filter is validated — range
  // orientation and column existence — before any short-circuit takes
  // effect, so an inverted later range still throws even when an earlier
  // filter already proved the result empty.
  filtered_rows_.clear();
  bool disjoint = false;
  std::vector<const std::vector<double>*> fcols;
  std::vector<std::pair<double, double>> fbounds;
  for (const auto& f : spec_.filters) {
    DV_REQUIRE(f.lo <= f.hi, "filter range inverted for " + f.attr);
    const auto& col = t.column(f.attr);
    const auto [lo, hi] = t.extent(f.attr);
    if (disjoint) continue;  // masks are moot; keep validating the rest
    if (t.rows() > 0 && (f.hi < lo || f.lo > hi)) {
      disjoint = true;
      continue;
    }
    if (f.lo <= lo && hi <= f.hi) continue;  // passes every row
    fcols.push_back(&col);
    fbounds.emplace_back(f.lo, f.hi);
  }
  if (!disjoint) {
    filtered_rows_.reserve(t.rows());
    if (fcols.empty()) {
      for (std::uint32_t r = 0; r < t.rows(); ++r) {
        filtered_rows_.push_back(r);
      }
    } else {
      std::vector<unsigned char> keep(t.rows(), 1);
      for (std::size_t i = 0; i < fcols.size(); ++i) {
        kernels::filter_range_mask(fcols[i]->data(), t.rows(),
                                   fbounds[i].first, fbounds[i].second,
                                   keep.data());
      }
      for (std::uint32_t r = 0; r < t.rows(); ++r) {
        if (keep[r]) filtered_rows_.push_back(r);
      }
    }
  }
  DV_OBS_COUNT("core.agg.rows_in", t.rows());
  DV_OBS_COUNT("core.agg.rows_kept", filtered_rows_.size());

  // 2. Group by the key tuple (or one group per row when no keys).
  groups_.clear();
  if (spec_.keys.empty()) {
    groups_.reserve(filtered_rows_.size());
    for (std::uint32_t r : filtered_rows_) {
      groups_.push_back(AggregateGroup{{static_cast<double>(r)}, {r}});
    }
    DV_OBS_COUNT("core.agg.groups", groups_.size());
    return;
  }

  std::vector<const std::vector<double>*> kcols;
  for (const auto& k : spec_.keys) kcols.push_back(&t.column(k));

  std::map<std::vector<double>, std::vector<std::uint32_t>> buckets;
  for (std::uint32_t r : filtered_rows_) {
    std::vector<double> key(kcols.size());
    for (std::size_t i = 0; i < kcols.size(); ++i) key[i] = (*kcols[i])[r];
    buckets[std::move(key)].push_back(r);
  }

  // 3. Optional binned re-aggregation of the first key (paper's maxBins):
  // if the first key has more distinct values than max_bins, merge runs of
  // consecutive values so at most ~max_bins partitions remain.
  std::vector<double> first_distinct;
  first_distinct.reserve(buckets.size());
  for (const auto& [key, rows] : buckets) first_distinct.push_back(key[0]);
  std::sort(first_distinct.begin(), first_distinct.end());
  first_distinct.erase(
      std::unique(first_distinct.begin(), first_distinct.end()),
      first_distinct.end());

  if (spec_.max_bins > 0 && first_distinct.size() > spec_.max_bins) {
    binned_ = true;
    const std::size_t bucket_size =
        std::max<std::size_t>(1, first_distinct.size() / spec_.max_bins);
    // first_distinct is sorted and every key[0] is a member, so a binary
    // search gives the same rank -> bin mapping the old std::map lookup
    // did, without building (and rebalancing) a tree of doubles.
    auto bin_of = [&](double v) {
      const auto it = std::lower_bound(first_distinct.begin(),
                                       first_distinct.end(), v);
      const auto rank = static_cast<std::size_t>(it - first_distinct.begin());
      return static_cast<double>(rank / bucket_size);
    };
    std::map<std::vector<double>, std::vector<std::uint32_t>> rebinned;
    for (auto& [key, rows] : buckets) {
      std::vector<double> nk = key;
      nk[0] = bin_of(key[0]);
      auto& dst = rebinned[std::move(nk)];
      dst.insert(dst.end(), rows.begin(), rows.end());
    }
    buckets = std::move(rebinned);
    DV_OBS_COUNT("core.agg.rebinned", 1);
  }

  groups_.reserve(buckets.size());
  for (auto& [key, rows] : buckets) {
    groups_.push_back(AggregateGroup{key, std::move(rows)});
  }
  DV_OBS_COUNT("core.agg.groups", groups_.size());
}

std::vector<double> Aggregation::reduce(const std::string& attr,
                                        Reducer r) const {
  return reduce_over(*table_, attr, r);
}

std::vector<double> Aggregation::reduce_over(const DataTable& t,
                                             const std::string& attr,
                                             Reducer r) const {
  DV_REQUIRE(t.rows() == table_->rows(),
             "reduce_over table must share row indexing");
  const auto& col = t.column(attr);
  const std::vector<double>* weights = nullptr;
  if (r == Reducer::kMean && t.has_column("packets_finished") &&
      attr != "packets_finished") {
    weights = &t.column("packets_finished");
  }

  std::vector<double> out;
  out.reserve(groups_.size());
  for (const auto& g : groups_) {
    double acc = 0.0;
    switch (r) {
      case Reducer::kSum:
        // Same row order, same accumulation order — gather_sum only hoists
        // the bounds checks and base pointer out of the loop.
        acc = kernels::gather_sum(col.data(), g.rows.data(), g.rows.size());
        break;
      case Reducer::kMean: {
        double wsum = 0.0;
        for (std::uint32_t row : g.rows) {
          const double w = weights ? (*weights)[row] : 1.0;
          acc += col[row] * w;
          wsum += w;
        }
        acc = wsum > 0 ? acc / wsum : 0.0;
        break;
      }
      case Reducer::kMax: {
        bool first = true;
        for (std::uint32_t row : g.rows) {
          acc = first ? col[row] : std::max(acc, col[row]);
          first = false;
        }
        break;
      }
      case Reducer::kMin: {
        bool first = true;
        for (std::uint32_t row : g.rows) {
          acc = first ? col[row] : std::min(acc, col[row]);
          first = false;
        }
        break;
      }
      case Reducer::kCount:
        acc = static_cast<double>(g.rows.size());
        break;
    }
    out.push_back(acc);
  }
  return out;
}

std::vector<double> Aggregation::reduce(const std::string& attr) const {
  return reduce(attr, default_reducer(attr));
}

}  // namespace dv::core
