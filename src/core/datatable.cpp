#include "core/datatable.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <map>

#include "util/kernels.hpp"
#include "util/str.hpp"

namespace dv::core {

// ----------------------------------------------------------------- DataTable

namespace {

// Whole-column zone map, computed once per mutation so the const accessor
// never writes (concurrent readers share tables lock-free in serve).
std::pair<double, double> column_extent(const std::vector<double>& col) {
  if (col.empty()) return {0.0, 0.0};
  double lo = 0.0, hi = 0.0;
  kernels::minmax_f64(col.data(), col.size(), lo, hi);
  return {lo, hi};
}

}  // namespace

void DataTable::add_column(const std::string& name,
                           std::vector<double> values) {
  DV_REQUIRE(!has_column(name), "duplicate column: " + name);
  if (rows_ == 0 && columns_.empty()) {
    rows_ = values.size();
  }
  DV_REQUIRE(values.size() == rows_,
             "column length mismatch for '" + name + "'");
  names_.push_back(name);
  extents_.push_back(column_extent(values));
  columns_.push_back(std::move(values));
  ++version_;
}

void DataTable::set_column(const std::string& name,
                           std::vector<double> values) {
  DV_REQUIRE(values.size() == rows_,
             "column length mismatch for '" + name + "'");
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      extents_[i] = column_extent(values);
      columns_[i] = std::move(values);
      ++version_;
      return;
    }
  }
  throw Error("no such column: '" + name + "' (available: " +
              join(names_, ", ") + ")");
}

bool DataTable::has_column(const std::string& name) const {
  return std::find(names_.begin(), names_.end(), name) != names_.end();
}

const std::vector<double>& DataTable::column(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return columns_[i];
  }
  throw Error("no such column: '" + name + "' (available: " +
              join(names_, ", ") + ")");
}

double DataTable::at(const std::string& name, std::size_t row) const {
  const auto& col = column(name);
  DV_REQUIRE(row < col.size(), "row out of range");
  return col[row];
}

std::pair<double, double> DataTable::extent(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return extents_[i];
  }
  throw Error("no such column: '" + name + "' (available: " +
              join(names_, ", ") + ")");
}

std::pair<double, double> DataTable::extent(
    const std::string& name, const std::vector<std::uint32_t>& rows) const {
  if (rows.empty()) return extent(name);
  const auto& col = column(name);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (std::uint32_t r : rows) {
    DV_REQUIRE(r < col.size(), "row out of range");
    lo = std::min(lo, col[r]);
    hi = std::max(hi, col[r]);
  }
  return {lo, hi};
}

// ----------------------------------------------------------------- Entity

Entity entity_from_string(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "router" || n == "routers") return Entity::kRouter;
  if (n == "local_link" || n == "local_links") return Entity::kLocalLink;
  if (n == "global_link" || n == "global_links") return Entity::kGlobalLink;
  if (n == "terminal" || n == "terminals") return Entity::kTerminal;
  throw Error("unknown entity: " + name);
}

std::string to_string(Entity e) {
  switch (e) {
    case Entity::kRouter: return "router";
    case Entity::kLocalLink: return "local_link";
    case Entity::kGlobalLink: return "global_link";
    case Entity::kTerminal: return "terminal";
  }
  return "?";
}

// ----------------------------------------------------------------- DataSet

DataSet::DataSet(const metrics::RunMetrics& run)
    : run_(std::make_shared<metrics::RunMetrics>(run)) {
  build();
}

std::uint64_t DataSet::next_uid() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

DataSet::DataSet(const DataSet& other)
    : run_(other.run_),
      slabs_(other.slabs_),
      routers_(other.routers_),
      local_links_(other.local_links_),
      global_links_(other.global_links_),
      terminals_(other.terminals_) {}

DataSet& DataSet::operator=(const DataSet& other) {
  if (this == &other) return *this;
  run_ = other.run_;
  slabs_ = other.slabs_;
  routers_ = other.routers_;
  local_links_ = other.local_links_;
  global_links_ = other.global_links_;
  terminals_ = other.terminals_;
  uid_ = next_uid();
  return *this;
}

void DataSet::build() {
  const metrics::RunMetrics& run = *run_;
  const std::uint32_t a = run.routers_per_group;

  // Per-router job: the job owning the router's terminals (majority when
  // mixed, -1 when none). Used for job-level link bundling (Fig. 13, where
  // routers with no job but carrying non-minimal traffic are "proxies").
  const std::uint32_t n_routers = run.groups * a;
  std::vector<double> router_job(n_routers, -1.0);
  {
    std::vector<std::map<std::int32_t, std::size_t>> counts(n_routers);
    for (const auto& t : run.terminals) {
      if (t.job >= 0) ++counts[t.router][t.job];
    }
    for (std::uint32_t r = 0; r < n_routers; ++r) {
      std::size_t best = 0;
      for (const auto& [job, c] : counts[r]) {
        if (c > best) {
          best = c;
          router_job[r] = job;
        }
      }
    }
  }

  // Scheduled downtime as a fraction of the simulated span; zero on a
  // healthy run (and when the run finished at t=0).
  const double span = run.end_time > 0.0 ? run.end_time : 0.0;
  auto frac = [span](double ns) { return span > 0.0 ? ns / span : 0.0; };

  {
    const auto routers = run.derive_routers();
    const std::size_t n = routers.size();
    std::vector<double> id(n), grp(n), rank(n), gt(n), gs(n), lt(n), ls(n),
        down(n), dfrac(n), retries(n), drops(n);
    for (std::size_t i = 0; i < n; ++i) {
      id[i] = routers[i].router;
      grp[i] = routers[i].group;
      rank[i] = routers[i].rank;
      gt[i] = routers[i].global_traffic;
      gs[i] = routers[i].global_sat_time;
      lt[i] = routers[i].local_traffic;
      ls[i] = routers[i].local_sat_time;
      down[i] = routers[i].downtime;
      dfrac[i] = frac(routers[i].downtime);
      retries[i] = static_cast<double>(routers[i].retries);
      drops[i] = static_cast<double>(routers[i].pkts_dropped);
    }
    routers_ = DataTable(n);
    routers_.add_column("router", std::move(id));
    routers_.add_column("group_id", std::move(grp));
    routers_.add_column("router_rank", std::move(rank));
    routers_.add_column("global_traffic", std::move(gt));
    routers_.add_column("global_sat_time", std::move(gs));
    routers_.add_column("local_traffic", std::move(lt));
    routers_.add_column("local_sat_time", std::move(ls));
    routers_.add_column("job", router_job);
    routers_.add_column("downtime", std::move(down));
    routers_.add_column("downtime_frac", std::move(dfrac));
    routers_.add_column("retries", std::move(retries));
    routers_.add_column("pkts_dropped", std::move(drops));
  }

  auto build_links = [a, &router_job, &frac](
                         const std::vector<metrics::LinkMetrics>& links) {
    const std::size_t n = links.size();
    std::vector<double> sr(n), sp(n), dr(n), dp(n), grp(n), rank(n), port(n),
        dgrp(n), drank(n), sjob(n), djob(n), traffic(n), sat(n), down(n),
        dfrac(n), retries(n), drops(n);
    for (std::size_t i = 0; i < n; ++i) {
      sr[i] = links[i].src_router;
      sp[i] = links[i].src_port;
      dr[i] = links[i].dst_router;
      dp[i] = links[i].dst_port;
      grp[i] = links[i].src_router / a;
      rank[i] = links[i].src_router % a;
      port[i] = links[i].src_port;
      dgrp[i] = links[i].dst_router / a;
      drank[i] = links[i].dst_router % a;
      sjob[i] = router_job[links[i].src_router];
      djob[i] = router_job[links[i].dst_router];
      traffic[i] = links[i].traffic;
      sat[i] = links[i].sat_time;
      down[i] = links[i].downtime;
      dfrac[i] = frac(links[i].downtime);
      retries[i] = static_cast<double>(links[i].retries);
      drops[i] = static_cast<double>(links[i].pkts_dropped);
    }
    DataTable t(n);
    t.add_column("src_router", std::move(sr));
    t.add_column("src_port", std::move(sp));
    t.add_column("dst_router", std::move(dr));
    t.add_column("dst_port", std::move(dp));
    t.add_column("group_id", std::move(grp));
    t.add_column("router_rank", std::move(rank));
    t.add_column("router_port", std::move(port));
    t.add_column("dst_group", std::move(dgrp));
    t.add_column("dst_rank", std::move(drank));
    t.add_column("src_job", std::move(sjob));
    t.add_column("dst_job", std::move(djob));
    t.add_column("traffic", std::move(traffic));
    t.add_column("sat_time", std::move(sat));
    t.add_column("downtime", std::move(down));
    t.add_column("downtime_frac", std::move(dfrac));
    t.add_column("retries", std::move(retries));
    t.add_column("pkts_dropped", std::move(drops));
    return t;
  };
  local_links_ = build_links(run.local_links);
  global_links_ = build_links(run.global_links);

  {
    const std::size_t n = run.terminals.size();
    std::vector<double> id(n), router(n), grp(n), rank(n), port(n), data(n),
        sat(n), pkts(n), lat(n), hops(n), job(n), dropped(n), rerouted(n),
        rfrac(n), down(n), dfrac(n);
    for (std::size_t i = 0; i < n; ++i) {
      const auto& t = run.terminals[i];
      id[i] = static_cast<double>(i);
      router[i] = t.router;
      grp[i] = t.router / a;
      rank[i] = t.router % a;
      port[i] = t.port;
      data[i] = t.data_size;
      sat[i] = t.sat_time;
      pkts[i] = static_cast<double>(t.packets_finished);
      lat[i] = t.avg_latency();
      hops[i] = t.avg_hops();
      job[i] = t.job;
      dropped[i] = static_cast<double>(t.packets_dropped);
      rerouted[i] = static_cast<double>(t.packets_rerouted);
      rfrac[i] = t.rerouted_frac();
      down[i] = t.downtime;
      dfrac[i] = frac(t.downtime);
    }
    terminals_ = DataTable(n);
    terminals_.add_column("terminal", std::move(id));
    terminals_.add_column("router", std::move(router));
    terminals_.add_column("group_id", std::move(grp));
    terminals_.add_column("router_rank", std::move(rank));
    terminals_.add_column("router_port", std::move(port));
    terminals_.add_column("data_size", std::move(data));
    terminals_.add_column("sat_time", std::move(sat));
    terminals_.add_column("packets_finished", std::move(pkts));
    terminals_.add_column("avg_latency", std::move(lat));
    terminals_.add_column("avg_hops", std::move(hops));
    terminals_.add_column("workload", std::move(job));
    terminals_.add_column("pkts_dropped", std::move(dropped));
    terminals_.add_column("rerouted", std::move(rerouted));
    terminals_.add_column("rerouted_frac", std::move(rfrac));
    terminals_.add_column("downtime", std::move(down));
    terminals_.add_column("downtime_frac", std::move(dfrac));
  }

  if (run.has_time_series()) {
    auto slabs = std::make_shared<TimeSlabs>();
    slabs->local_traffic = metrics::PrefixSeries(run.local_traffic_ts);
    slabs->local_sat = metrics::PrefixSeries(run.local_sat_ts);
    slabs->global_traffic = metrics::PrefixSeries(run.global_traffic_ts);
    slabs->global_sat = metrics::PrefixSeries(run.global_sat_ts);
    slabs->term_traffic = metrics::PrefixSeries(run.term_traffic_ts);
    slabs->term_sat = metrics::PrefixSeries(run.term_sat_ts);
    slabs_ = std::move(slabs);
  }
}

const DataTable& DataSet::table(Entity e) const {
  switch (e) {
    case Entity::kRouter: return routers_;
    case Entity::kLocalLink: return local_links_;
    case Entity::kGlobalLink: return global_links_;
    case Entity::kTerminal: return terminals_;
  }
  throw Error("bad entity");
}

DataSet DataSet::slice_time(double t0, double t1) const {
  DV_REQUIRE(run_->has_time_series(),
             "time-range selection requires a sampled run");
  DV_REQUIRE(t0 < t1, "empty time range");
  // Windowed values go through the same PrefixSeries deltas as
  // windowed_table, so from-scratch slicing and incremental re-windowing
  // are bit-exact with each other.
  const TimeSlabs& sl = slabs();
  metrics::RunMetrics sliced = *run_;
  auto apply = [&](std::vector<metrics::LinkMetrics>& links,
                   const metrics::PrefixSeries& traffic_ps,
                   const metrics::PrefixSeries& sat_ps) {
    const auto [f0, f1] = traffic_ps.frame_range(t0, t1);
    for (std::size_t i = 0; i < links.size(); ++i) {
      links[i].traffic = traffic_ps.range_sum(i, f0, f1);
      links[i].sat_time = sat_ps.range_sum(i, f0, f1);
    }
  };
  apply(sliced.local_links, sl.local_traffic, sl.local_sat);
  apply(sliced.global_links, sl.global_traffic, sl.global_sat);
  {
    const auto [f0, f1] = sl.term_traffic.frame_range(t0, t1);
    for (std::size_t i = 0; i < sliced.terminals.size(); ++i) {
      sliced.terminals[i].data_size = sl.term_traffic.range_sum(i, f0, f1);
      sliced.terminals[i].sat_time = sl.term_sat.range_sum(i, f0, f1);
    }
  }
  return DataSet(sliced);
}

const TimeSlabs& DataSet::slabs() const {
  DV_REQUIRE(slabs_ != nullptr,
             "time-range selection requires a sampled run");
  return *slabs_;
}

bool DataSet::windowable(Entity e, const std::string& attr) {
  switch (e) {
    case Entity::kRouter:
      return attr == "global_traffic" || attr == "global_sat_time" ||
             attr == "local_traffic" || attr == "local_sat_time";
    case Entity::kLocalLink:
    case Entity::kGlobalLink:
      return attr == "traffic" || attr == "sat_time";
    case Entity::kTerminal:
      return attr == "data_size" || attr == "sat_time";
  }
  return false;
}

const metrics::PrefixSeries& DataSet::prefix_for(
    Entity e, const std::string& attr) const {
  const TimeSlabs& sl = slabs();
  switch (e) {
    case Entity::kLocalLink:
      if (attr == "traffic") return sl.local_traffic;
      if (attr == "sat_time") return sl.local_sat;
      break;
    case Entity::kGlobalLink:
      if (attr == "traffic") return sl.global_traffic;
      if (attr == "sat_time") return sl.global_sat;
      break;
    case Entity::kTerminal:
      if (attr == "data_size") return sl.term_traffic;
      if (attr == "sat_time") return sl.term_sat;
      break;
    case Entity::kRouter:
      break;  // router attrs are link sums; no per-row slab
  }
  throw Error("no time-series slab for " + to_string(e) + "." + attr);
}

DataTable DataSet::windowed_table(Entity e, double t0, double t1) const {
  DV_REQUIRE(t0 < t1, "empty time range");
  const TimeSlabs& sl = slabs();
  auto windowed = [&](const metrics::PrefixSeries& ps) {
    const auto [f0, f1] = ps.frame_range(t0, t1);
    std::vector<double> out(ps.entities());
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] = ps.range_sum(i, f0, f1);
    }
    return out;
  };
  DataTable t = table(e);
  switch (e) {
    case Entity::kLocalLink:
      t.set_column("traffic", windowed(sl.local_traffic));
      t.set_column("sat_time", windowed(sl.local_sat));
      break;
    case Entity::kGlobalLink:
      t.set_column("traffic", windowed(sl.global_traffic));
      t.set_column("sat_time", windowed(sl.global_sat));
      break;
    case Entity::kTerminal:
      t.set_column("data_size", windowed(sl.term_traffic));
      t.set_column("sat_time", windowed(sl.term_sat));
      break;
    case Entity::kRouter: {
      // Re-accumulate per-router sums from the windowed links in the exact
      // order of RunMetrics::derive_routers, for bit-exactness with
      // slice_time().table(kRouter).
      const std::size_t n = t.rows();
      std::vector<double> lt(n, 0.0), ls(n, 0.0), gt(n, 0.0), gs(n, 0.0);
      auto accumulate = [&](const std::vector<metrics::LinkMetrics>& links,
                            const metrics::PrefixSeries& traffic_ps,
                            const metrics::PrefixSeries& sat_ps,
                            std::vector<double>& traffic,
                            std::vector<double>& sat) {
        const auto [f0, f1] = traffic_ps.frame_range(t0, t1);
        for (std::size_t i = 0; i < links.size(); ++i) {
          traffic[links[i].src_router] += traffic_ps.range_sum(i, f0, f1);
          sat[links[i].src_router] += sat_ps.range_sum(i, f0, f1);
        }
      };
      accumulate(run_->local_links, sl.local_traffic, sl.local_sat, lt, ls);
      accumulate(run_->global_links, sl.global_traffic, sl.global_sat, gt,
                 gs);
      t.set_column("local_traffic", std::move(lt));
      t.set_column("local_sat_time", std::move(ls));
      t.set_column("global_traffic", std::move(gt));
      t.set_column("global_sat_time", std::move(gs));
      break;
    }
  }
  return t;
}

std::uint64_t DataSet::version() const {
  return routers_.version() + local_links_.version() +
         global_links_.version() + terminals_.version();
}

DataTable& DataSet::table_mut(Entity e) {
  switch (e) {
    case Entity::kRouter: return routers_;
    case Entity::kLocalLink: return local_links_;
    case Entity::kGlobalLink: return global_links_;
    case Entity::kTerminal: return terminals_;
  }
  throw Error("bad entity");
}

void DataSet::add_derived_column(Entity e, const std::string& name,
                                 std::vector<double> values) {
  DataTable& t = table_mut(e);
  if (t.has_column(name)) {
    t.set_column(name, std::move(values));
  } else {
    t.add_column(name, std::move(values));
  }
}

}  // namespace dv::core
