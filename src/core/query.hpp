// Query engine for the VA pipeline (the paper's interactive loop, Fig. 6).
//
// Brushing a time range re-executes filter → aggregate → project; doing
// that from scratch over the full run is O(rows x samples) per brush. The
// QueryEngine makes it incremental:
//
//  1. Time-windowed tables: windowable metric columns are restricted to
//     [t0, t1) through the DataSet's prefix slabs (O(rows) per window, no
//     RunMetrics copy, no table rebuild).
//  2. Group slabs: for window-independent groupings reduced with kSum over
//     a sampled attribute, a per-(grouping, attr) prefix array over groups
//     is built once; every subsequent window is an O(groups) delta.
//  3. A result cache keyed by a canonical 64-bit hash of (kind, entity,
//     spec, filters, quantized window, dataset version) with LRU eviction.
//     Mutating the dataset (add_derived_column) bumps the version, so stale
//     entries can never be returned; they age out of the LRU.
//
// Determinism contract: the evaluation path for a query is a pure function
// of the query itself (never of cache state), so a cached result is
// bit-exact with what a fresh engine would recompute.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/aggregation.hpp"
#include "core/datatable.hpp"

namespace dv::core {

/// Cache effectiveness counters (mirrored into obs as core.cache.*).
struct QueryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t slab_builds = 0;  ///< group-slab constructions (cold)
  std::uint64_t slab_reduces = 0; ///< O(groups) windowed reductions (warm)
  std::size_t entries = 0;        ///< live cache entries
};

class QueryEngine {
 public:
  /// The dataset must outlive the engine. `capacity` bounds the number of
  /// cached results (tables, aggregations, slabs, reductions combined).
  explicit QueryEngine(const DataSet& data, std::size_t capacity = 128);

  const DataSet& data() const { return *data_; }

  /// The entity table restricted to `w` (the base table when inactive).
  std::shared_ptr<const DataTable> table(Entity e, TimeWindow w);

  /// Grouping for `spec`. Built over the windowed table only when a key or
  /// filter attribute actually varies with the window; otherwise the
  /// grouping is window-independent and shared across brushes.
  std::shared_ptr<const Aggregation> aggregate(Entity e,
                                               const AggregationSpec& spec);

  /// Per-group reduction of one attribute. Windowed kSum reductions over
  /// sampled attributes go through a group slab when the grouping is
  /// window-independent.
  std::shared_ptr<const std::vector<double>> reduce(
      Entity e, const AggregationSpec& spec, const std::string& attr,
      Reducer r);
  std::shared_ptr<const std::vector<double>> reduce(
      Entity e, const AggregationSpec& spec, const std::string& attr);

  QueryStats stats() const;
  void clear();

 private:
  struct GroupSlab {
    std::size_t groups = 0;
    std::size_t frames = 0;
    std::vector<double> prefix;  // (frames+1) x groups, frame-major
    double value(std::size_t g, std::size_t f0, std::size_t f1) const {
      return prefix[f1 * groups + g] - prefix[f0 * groups + g];
    }
  };

  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const void> value;
    // Keeps a windowed table alive while a cached Aggregation refers to it.
    std::shared_ptr<const DataTable> dep;
  };

  /// True when the grouping (keys or filters) reads a windowable attribute,
  /// i.e. the group structure itself depends on the window.
  bool grouping_windowed(Entity e, const AggregationSpec& spec) const;
  /// Quantized [f0, f1) of an active window for entity e's series.
  std::pair<std::size_t, std::size_t> frame_range(Entity e,
                                                  TimeWindow w) const;

  std::shared_ptr<const GroupSlab> group_slab(Entity e,
                                              const AggregationSpec& spec,
                                              const std::string& attr);

  /// LRU lookup-or-compute. `make` runs outside the cache lock; on a racing
  /// duplicate insert the first entry wins.
  std::shared_ptr<const void> get_or_compute(
      std::uint64_t key,
      const std::function<Entry()>& make);

  const DataSet* data_;
  std::size_t capacity_;

  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  QueryStats stats_;
};

/// Runs independent view-pipeline tasks (projection rings, report panels)
/// on a small shared worker pool. Exceptions thrown by tasks are captured
/// and the first one is rethrown on the caller after all tasks finish.
/// Nested calls from inside a pool task degrade to sequential execution
/// (the pool's barrier is not reentrant). Thread count: DV_VA_THREADS env
/// var, default min(4, hardware_concurrency).
void run_parallel(std::vector<std::function<void()>> tasks);

}  // namespace dv::core
