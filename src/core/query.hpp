// Query engine for the VA pipeline (the paper's interactive loop, Fig. 6).
//
// Brushing a time range re-executes filter → aggregate → project; doing
// that from scratch over the full run is O(rows x samples) per brush. The
// QueryEngine makes it incremental:
//
//  1. Time-windowed tables: windowable metric columns are restricted to
//     [t0, t1) through the DataSet's prefix slabs (O(rows) per window, no
//     RunMetrics copy, no table rebuild).
//  2. Group slabs: for window-independent groupings reduced with kSum over
//     a sampled attribute, a per-(grouping, attr) prefix array over groups
//     is built once; every subsequent window is an O(groups) delta.
//  3. A result cache keyed by a canonical 64-bit hash of (kind, entity,
//     spec, filters, quantized window, dataset version) with LRU eviction.
//     Mutating the dataset (add_derived_column) bumps the version, so stale
//     entries can never be returned; they age out of the LRU.
//
// Determinism contract: the evaluation path for a query is a pure function
// of the query itself (never of cache state), so a cached result is
// bit-exact with what a fresh engine would recompute.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/aggregation.hpp"
#include "core/datatable.hpp"

namespace dv {
namespace obs {
class Counter;
class Gauge;
}  // namespace obs

namespace core {

/// Cache effectiveness counters. Per cache instance: each ResultCache owns
/// its own QueryStats (and mirrors into its own obs scope, "core.cache.*"
/// by default), so a daemon's shared cache and a CLI engine's private cache
/// in the same process never alias each other's numbers.
struct QueryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;    ///< hits that joined an in-flight compute
  std::uint64_t evictions = 0;
  std::uint64_t slab_builds = 0;  ///< group-slab constructions (cold)
  std::uint64_t slab_reduces = 0; ///< O(groups) windowed reductions (warm)
  std::size_t entries = 0;        ///< live cache entries
};

/// Sharded, version-invalidated LRU result cache — the concurrency substrate
/// the QueryEngine (and the serve daemon's shared catalog) computes through.
///
/// Keys are canonical 64-bit hashes (FNV-1a over dataset uid, version and
/// the query description); values are type-erased shared_ptrs. The cache is
/// safe for concurrent use: each shard has its own mutex + LRU list, and a
/// key maps to exactly one shard. Identical concurrent computations are
/// coalesced — the second caller blocks on the first's in-flight compute and
/// shares its result instead of recomputing (the request "batching" of the
/// serve daemon's admission layer). This is sound because of the engine's
/// determinism contract: a result is a pure function of its key's query.
class ResultCache {
 public:
  struct Entry {
    std::uint64_t key = 0;
    std::shared_ptr<const void> value;
    // Keeps a windowed table alive while a cached Aggregation refers to it.
    std::shared_ptr<const void> dep;
  };

  /// `capacity` bounds live entries across all shards; `shards` must be a
  /// power of two (1 = the PR 3 single-list behaviour, byte-compatible
  /// eviction order). `obs_scope` prefixes the mirrored obs counter names.
  explicit ResultCache(std::size_t capacity = 128, std::size_t shards = 1,
                       std::string obs_scope = "core.cache");

  /// LRU lookup-or-compute. `make` runs outside every cache lock; identical
  /// concurrent calls coalesce onto one compute. If `make` throws, waiters
  /// are released and retry the compute themselves.
  std::shared_ptr<const void> get_or_compute(
      std::uint64_t key, const std::function<Entry()>& make);

  /// Aggregated over shards. `entries` is exact; the counters are summed.
  QueryStats stats() const;
  void clear();

  /// Slab counters live here too so QueryStats stays one struct; the
  /// QueryEngine calls these from its slab build / reduce paths.
  void count_slab_build();
  void count_slab_reduce();

 private:
  struct InFlight {
    std::condition_variable cv;
    bool done = false;
    bool failed = false;
    std::shared_ptr<const void> value;
  };

  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index;
    std::unordered_map<std::uint64_t, std::shared_ptr<InFlight>> in_flight;
    QueryStats stats;
  };

  Shard& shard_of(std::uint64_t key) {
    return shards_[(key >> 48) & shard_mask_];
  }

  std::size_t cap_per_shard_;
  std::size_t shard_mask_;
  std::vector<Shard> shards_;
  std::atomic<std::size_t> entries_{0};  ///< live entries across shards

  // Per-instance obs mirror (null when observability is compiled out).
  obs::Counter* obs_hit_ = nullptr;
  obs::Counter* obs_miss_ = nullptr;
  obs::Counter* obs_evict_ = nullptr;
  obs::Counter* obs_slab_build_ = nullptr;
  obs::Counter* obs_slab_reduce_ = nullptr;
  obs::Gauge* obs_size_ = nullptr;
};

class QueryEngine {
 public:
  /// The dataset must outlive the engine. `capacity` bounds the number of
  /// cached results (tables, aggregations, slabs, reductions combined) in
  /// the engine's own private cache.
  explicit QueryEngine(const DataSet& data, std::size_t capacity = 128);

  /// Shares `cache` with other engines (the serve daemon: one sharded cache
  /// across every loaded run and session). Keys embed the dataset's uid and
  /// version, so engines over different datasets never collide.
  QueryEngine(const DataSet& data, std::shared_ptr<ResultCache> cache);

  const DataSet& data() const { return *data_; }

  /// The entity table restricted to `w` (the base table when inactive).
  std::shared_ptr<const DataTable> table(Entity e, TimeWindow w);

  /// Grouping for `spec`. Built over the windowed table only when a key or
  /// filter attribute actually varies with the window; otherwise the
  /// grouping is window-independent and shared across brushes.
  std::shared_ptr<const Aggregation> aggregate(Entity e,
                                               const AggregationSpec& spec);

  /// Per-group reduction of one attribute. Windowed kSum reductions over
  /// sampled attributes go through a group slab when the grouping is
  /// window-independent.
  std::shared_ptr<const std::vector<double>> reduce(
      Entity e, const AggregationSpec& spec, const std::string& attr,
      Reducer r);
  std::shared_ptr<const std::vector<double>> reduce(
      Entity e, const AggregationSpec& spec, const std::string& attr);

  /// The cache this engine computes through (its own, or the shared one it
  /// was constructed with).
  const std::shared_ptr<ResultCache>& cache() const { return cache_; }

  QueryStats stats() const;
  void clear();

 private:
  struct GroupSlab {
    std::size_t groups = 0;
    std::size_t frames = 0;
    std::vector<double> prefix;  // (frames+1) x groups, frame-major
    double value(std::size_t g, std::size_t f0, std::size_t f1) const {
      return prefix[f1 * groups + g] - prefix[f0 * groups + g];
    }
  };

  /// True when the grouping (keys or filters) reads a windowable attribute,
  /// i.e. the group structure itself depends on the window.
  bool grouping_windowed(Entity e, const AggregationSpec& spec) const;
  /// Quantized [f0, f1) of an active window for entity e's series.
  std::pair<std::size_t, std::size_t> frame_range(Entity e,
                                                  TimeWindow w) const;

  std::shared_ptr<const GroupSlab> group_slab(Entity e,
                                              const AggregationSpec& spec,
                                              const std::string& attr);

  const DataSet* data_;
  std::shared_ptr<ResultCache> cache_;
};

/// Runs independent view-pipeline tasks (projection rings, report panels)
/// on a small shared worker pool. Exceptions thrown by tasks are captured
/// and the first one is rethrown on the caller after all tasks finish.
/// Nested calls from inside a pool task degrade to sequential execution
/// (the pool's barrier is not reentrant). Thread count: DV_VA_THREADS env
/// var, default min(4, hardware_concurrency).
void run_parallel(std::vector<std::function<void()>> tasks);

}  // namespace core
}  // namespace dv
