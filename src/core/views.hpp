// Detail and timeline views plus the linked-view session (Fig. 6).
//
// The paper's primary UI couples a customizable projection view with
//  (b) a detail view — two scatter plots (traffic vs. saturation of all
//      global and local links) and a parallel-coordinates plot of all
//      terminal metrics, with axis brushing, and
//  (c) a timeline view — temporal statistics per link class, from which a
//      time range can be selected to re-aggregate the other views.
// AnalysisSession wires the three interactions together exactly as the
// paper describes: brushing filters the projection, selecting a visual
// aggregate highlights entities in the detail view, selecting terminals
// highlights their associated links, and a time range rebuilds everything
// from the sampled series.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/datatable.hpp"
#include "core/projection.hpp"
#include "core/svg.hpp"

namespace dv::core {

/// Detail view: link scatter plots + terminal parallel coordinates.
class DetailView {
 public:
  /// Default parallel-coordinate axes follow Fig. 6: data_size, sat_time,
  /// packets_finished, avg_latency, avg_hops, workload.
  explicit DetailView(const DataSet& data,
                      std::vector<std::string> pc_axes = {});

  const std::vector<std::string>& axes() const { return pc_axes_; }

  /// Brushes one parallel-coordinate axis to [lo, hi] (inclusive);
  /// brushing the same axis again replaces the range.
  void brush(const std::string& axis, double lo, double hi);
  void clear_brushes();
  const std::vector<AttrFilter>& brushes() const { return brushes_; }

  /// Terminal rows passing all brushes (all terminals when un-brushed).
  std::vector<std::uint32_t> selected_terminals() const;

  /// Explicit selection (e.g. handed over from a projection aggregate);
  /// overrides brush-derived selection until cleared.
  void select_terminals(std::vector<std::uint32_t> rows);
  void clear_selection();

  /// Links touching the routers of the currently selected terminals — the
  /// paper's "selecting a set of terminals ... highlights associated
  /// network links in the detail view".
  std::vector<std::uint32_t> associated_links(Entity link_entity) const;

  /// Renders the panel (two scatters + parallel coordinates) into a box.
  void render(SvgDocument& doc, double x, double y, double w, double h) const;
  std::string to_svg(double w = 900, double h = 360) const;

 private:
  const DataSet* data_;
  std::vector<std::string> pc_axes_;
  std::vector<AttrFilter> brushes_;
  std::optional<std::vector<std::uint32_t>> explicit_selection_;
};

/// Timeline view over the run's sampled series (requires sampling).
class TimelineView {
 public:
  explicit TimelineView(const DataSet& data);

  double dt() const;
  std::size_t frames() const;

  /// Per-frame totals; `which` is one of: local_traffic, local_sat,
  /// global_traffic, global_sat, terminal_traffic, terminal_sat.
  std::vector<double> series(const std::string& which) const;

  /// Selects [t0, t1) for downstream re-aggregation.
  void select_range(double t0, double t1);
  void clear_range();
  bool has_selection() const { return t0_ < t1_; }
  double t0() const { return t0_; }
  double t1() const { return t1_; }

  /// The dataset restricted to the selected range (whole run if none).
  DataSet slice() const;

  /// Renders stacked traffic/saturation timelines with the selection band.
  void render(SvgDocument& doc, double x, double y, double w, double h) const;
  std::string to_svg(double w = 900, double h = 220) const;

 private:
  const DataSet* data_;
  double t0_ = 0.0, t1_ = 0.0;
};

/// The full linked-view analysis session of Fig. 6.
///
/// The session owns a QueryEngine over its dataset: time-range selections
/// become spec windows, so re-brushing the timeline re-aggregates through
/// cached prefix slabs instead of rebuilding the dataset from scratch.
class AnalysisSession {
 public:
  AnalysisSession(DataSet data, ProjectionSpec spec);

  AnalysisSession(const AnalysisSession&) = delete;
  AnalysisSession& operator=(const AnalysisSession&) = delete;

  /// Current projection (rebuilt on time-range/brush changes).
  const ProjectionView& projection() const { return *projection_; }
  DetailView& detail() { return *detail_; }
  TimelineView& timeline() { return *timeline_; }

  /// The session's query engine (shared across rebuilds) and its cache
  /// counters (the CLI's --cache-stats report).
  QueryEngine& engine() { return *engine_; }
  QueryStats query_stats() const { return engine_->stats(); }

  /// Timeline interaction: re-aggregates projection + detail on [t0, t1).
  void select_time_range(double t0, double t1);
  void clear_time_range();

  /// Detail interaction: brush an axis, then filter the projection to the
  /// brushed terminals (paper: "the projection views will be updated
  /// accordingly to represent the selected data").
  void brush(const std::string& axis, double lo, double hi);
  void clear_brushes();

  /// Projection interaction: select an aggregate item; its source entities
  /// are handed to the detail view (and, for terminal selections, their
  /// associated links are highlighted in the projection too).
  void select_aggregate(std::size_t ring, std::size_t item);

  /// Renders the whole UI (projection left, detail right, timeline below).
  std::string to_svg(double width = 1400, double height = 900) const;
  void save_svg(const std::string& path, double width = 1400,
                double height = 900) const;

 private:
  void rebuild();

  DataSet data_;
  ProjectionSpec spec_;
  std::optional<QueryEngine> engine_;  // over data_; outlives every rebuild
  std::optional<ProjectionView> projection_;
  std::optional<DetailView> detail_;
  std::optional<TimelineView> timeline_;
  // The detail view shows raw windowed values, so it reads a sliced copy;
  // memoized on the selected range and kept alive alongside the views.
  std::optional<DataSet> current_data_;
  double slice_t0_ = 0.0, slice_t1_ = 0.0;
  double sel_t0_ = 0.0, sel_t1_ = 0.0;
};

}  // namespace dv::core
