// Matrix-view baseline.
//
// The paper positions its aggregated radial encoding *against* the matrix
// views that are "common visualizations used for performance and
// communication data" (Sec. IV-B1): a matrix needs one cell per entity
// pair, so it cannot scale to large networks, and it can show only one
// metric per cell. This class implements that baseline faithfully — an
// N x N heatmap of a link metric between routers or groups — so the
// scalability comparison can be measured (see bench_ablation_encoding).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/datatable.hpp"
#include "core/svg.hpp"
#include "util/color.hpp"

namespace dv::core {

class MatrixView {
 public:
  /// Aggregates `value_attr` of the link entity into a matrix between
  /// src/dst keys. `key` is "router" (src_router x dst_router) or "group"
  /// (group_id x dst_group).
  MatrixView(const DataSet& data, Entity link_entity, const std::string& key,
             const std::string& value_attr = "traffic");

  std::size_t dim() const { return dim_; }
  double at(std::size_t row, std::size_t col) const;
  double max_value() const { return max_; }

  /// Cells the encoding must draw — the scalability cost the paper calls
  /// out (always dim^2; a radial aggregated view draws O(aggregates)).
  std::size_t visual_items() const { return dim_ * dim_; }

  /// Renders the heatmap; refuses dimensions that would be unreadable
  /// (> max_render_dim), which is exactly the baseline's limitation.
  void render(SvgDocument& doc, double x, double y, double size,
              std::size_t max_render_dim = 512) const;
  std::string to_svg(double size_px = 700, const std::string& title = "",
                     std::size_t max_render_dim = 512) const;

 private:
  std::size_t dim_ = 0;
  std::vector<double> cells_;  // row-major
  double max_ = 0.0;
  std::string value_attr_;
};

}  // namespace dv::core
