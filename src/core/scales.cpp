#include "core/scales.hpp"

#include <algorithm>

namespace dv::core {

LinearScale::LinearScale(double lo, double hi) : lo_(lo), hi_(hi) {
  DV_REQUIRE(hi >= lo, "scale domain inverted");
}

double LinearScale::norm(double v) const {
  if (!valid() || hi_ == lo_) return 0.0;
  return std::clamp((v - lo_) / (hi_ - lo_), 0.0, 1.0);
}

void LinearScale::include(double v) {
  if (!valid()) {
    lo_ = hi_ = v;
    return;
  }
  lo_ = std::min(lo_, v);
  hi_ = std::max(hi_, v);
}

void LinearScale::merge(const LinearScale& other) {
  if (!other.valid()) return;
  include(other.lo_);
  include(other.hi_);
}

const LinearScale& ScaleSet::at(const std::string& key) const {
  const auto it = scales_.find(key);
  if (it == scales_.end()) throw Error("no scale for key: " + key);
  return it->second;
}

LinearScale& ScaleSet::get_or_add(const std::string& key) {
  return scales_[key];
}

void ScaleSet::merge(const ScaleSet& other) {
  for (const auto& [key, scale] : other) {
    scales_[key].merge(scale);
  }
}

}  // namespace dv::core
