#include "core/comparison.hpp"

#include <algorithm>
#include <fstream>
#include <functional>
#include <optional>

namespace dv::core {

std::vector<JobSummary> summarize_jobs(const DataSet& data) {
  const metrics::RunMetrics& run = data.run();
  std::int32_t max_job = -1;
  for (const auto& t : run.terminals) max_job = std::max(max_job, t.job);
  std::vector<JobSummary> out;
  for (std::int32_t j = 0; j <= max_job; ++j) {
    JobSummary s;
    s.job = j;
    s.name = static_cast<std::size_t>(j) < run.job_names.size()
                 ? run.job_names[static_cast<std::size_t>(j)]
                 : "job" + std::to_string(j);
    double lat_sum = 0.0, hop_sum = 0.0;
    std::uint64_t pkts = 0;
    for (const auto& t : run.terminals) {
      if (t.job != j) continue;
      ++s.terminals;
      s.data_size += t.data_size;
      s.sat_time += t.sat_time;
      lat_sum += t.sum_latency;
      hop_sum += t.sum_hops;
      pkts += t.packets_finished;
    }
    if (pkts > 0) {
      s.avg_latency = lat_sum / static_cast<double>(pkts);
      s.avg_hops = hop_sum / static_cast<double>(pkts);
    }
    out.push_back(s);
  }
  return out;
}

ComparisonView::ComparisonView(std::vector<const DataSet*> runs,
                               ProjectionSpec spec,
                               std::vector<std::string> labels)
    : runs_(std::move(runs)), spec_(std::move(spec)),
      labels_(std::move(labels)) {
  DV_REQUIRE(!runs_.empty(), "comparison needs at least one run");
  while (labels_.size() < runs_.size()) {
    const auto& r = runs_[labels_.size()]->run();
    labels_.push_back(r.workload + "/" + r.routing + "/" + r.placement);
  }
  // Each run's panel is an independent pipeline — both passes fan out on
  // the VA pool, with deterministic merge/collection in run order.
  // Pass 1: union of every channel domain across runs.
  {
    std::vector<ScaleSet> per_run(runs_.size());
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      tasks.push_back([this, &per_run, i] {
        per_run[i] = ProjectionView::compute_scales(*runs_[i], spec_);
      });
    }
    run_parallel(std::move(tasks));
    for (const auto& s : per_run) shared_.merge(s);
  }
  // Pass 2: rebuild every view against the shared scales.
  {
    std::vector<std::optional<ProjectionView>> staged(runs_.size());
    std::vector<std::function<void()>> tasks;
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      tasks.push_back(
          [this, &staged, i] { staged[i].emplace(*runs_[i], spec_, &shared_); });
    }
    run_parallel(std::move(tasks));
    views_.reserve(runs_.size());
    for (auto& v : staged) views_.push_back(std::move(*v));
  }
}

const ProjectionView& ComparisonView::view(std::size_t i) const {
  DV_REQUIRE(i < views_.size(), "run index out of range");
  return views_[i];
}

std::string ComparisonView::to_svg(double panel_px) const {
  const double w = panel_px * static_cast<double>(views_.size());
  const double h = panel_px + 30;
  SvgDocument doc(w, h);
  doc.rect(0, 0, w, h, Style::filled(Rgb{255, 255, 255}));
  for (std::size_t i = 0; i < views_.size(); ++i) {
    const double x0 = panel_px * static_cast<double>(i);
    doc.text(x0 + panel_px / 2, 18, labels_[i], 12, Rgb{40, 40, 40},
             "middle");
    views_[i].render(doc, x0 + panel_px / 2, 30 + panel_px / 2,
                     panel_px * 0.46);
  }
  return doc.str();
}

void ComparisonView::save_svg(const std::string& path,
                              double panel_px) const {
  std::ofstream os(path, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open svg for writing: " + path);
  os << to_svg(panel_px);
  DV_REQUIRE(os.good(), "svg write failed: " + path);
}

std::vector<std::vector<JobSummary>> ComparisonView::job_summaries() const {
  std::vector<std::vector<JobSummary>> out;
  out.reserve(runs_.size());
  for (const DataSet* d : runs_) out.push_back(summarize_jobs(*d));
  return out;
}

}  // namespace dv::core
