// Column-oriented data tables — the substrate of the VA layer.
//
// A DataTable holds one entity class (routers, links, terminals...) as
// named numeric columns. The EntityTree of Fig. 2(a) is represented as a
// DataSet: one table per entity class plus the cross-references that link
// them (router ids on links and terminals), which is what the aggregation
// and projection machinery traverses.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "metrics/run_metrics.hpp"
#include "util/common.hpp"

namespace dv::core {

/// One entity class as named columns of doubles (column-major).
class DataTable {
 public:
  DataTable() = default;
  explicit DataTable(std::size_t rows) : rows_(rows) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return names_.size(); }

  /// Adds a column (must match the row count; a table with 0 rows adopts
  /// the column's length).
  void add_column(const std::string& name, std::vector<double> values);
  /// Replaces an existing column (same length); bumps version().
  void set_column(const std::string& name, std::vector<double> values);
  bool has_column(const std::string& name) const;
  const std::vector<double>& column(const std::string& name) const;  // throws
  const std::vector<std::string>& column_names() const { return names_; }

  /// Mutation counter: bumped by every add_column / set_column. Cached
  /// query results keyed on it are invalidated by any table change.
  std::uint64_t version() const { return version_; }

  double at(const std::string& name, std::size_t row) const;

  /// Min/max of a column over a row subset (empty subset = all rows).
  /// Whole-column extents are precomputed at add/set time (table-level
  /// zone maps), so this overload is O(1) and safe to call from concurrent
  /// readers; the row-subset overload still scans its subset.
  std::pair<double, double> extent(const std::string& name) const;
  std::pair<double, double> extent(
      const std::string& name, const std::vector<std::uint32_t>& rows) const;

 private:
  std::size_t rows_ = 0;
  std::uint64_t version_ = 0;
  std::vector<std::string> names_;
  std::vector<std::vector<double>> columns_;
  std::vector<std::pair<double, double>> extents_;  // parallel to columns_
};

/// Entity classes in a Dragonfly run (Fig. 2a).
enum class Entity { kRouter, kLocalLink, kGlobalLink, kTerminal };

Entity entity_from_string(const std::string& name);  // throws on unknown
std::string to_string(Entity e);

/// Prefix-summed time-series slabs, one per sampled metric. Built once per
/// DataSet (O(frames x entities)); every windowed reduction afterwards is a
/// prefix delta, so a brushed time range re-aggregates in O(rows) instead of
/// O(rows x frames).
struct TimeSlabs {
  metrics::PrefixSeries local_traffic, local_sat;
  metrics::PrefixSeries global_traffic, global_sat;
  metrics::PrefixSeries term_traffic, term_sat;
};

/// A full run as a set of linked entity tables, plus the topology shape
/// needed to resolve references and time series for range re-aggregation.
class DataSet {
 public:
  /// Builds all entity tables from a simulation result. Columns:
  ///  routers:      router, group_id, router_rank, global_traffic,
  ///                global_sat_time, local_traffic, local_sat_time
  ///  local_links / global_links:
  ///                src_router, src_port, dst_router, dst_port,
  ///                group_id, router_rank, router_port, traffic, sat_time
  ///  terminals:    terminal, router, group_id, router_rank, router_port,
  ///                data_size, sat_time, packets_finished, avg_latency
  ///                (alias: avg_packet_latency), avg_hops, workload (job id)
  explicit DataSet(const metrics::RunMetrics& run);

  // Copies are independently mutable (add_derived_column), so they take a
  // fresh uid(); moves keep the source's identity.
  DataSet(const DataSet& other);
  DataSet& operator=(const DataSet& other);
  DataSet(DataSet&&) = default;
  DataSet& operator=(DataSet&&) = default;

  const DataTable& table(Entity e) const;
  const metrics::RunMetrics& run() const { return *run_; }

  std::uint32_t groups() const { return run_->groups; }
  std::uint32_t routers_per_group() const { return run_->routers_per_group; }

  /// Restricts metric columns (traffic / sat_time / data_size) to a time
  /// range [t0, t1) using the run's sampled series; returns a new DataSet.
  /// Requires the run to have time series.
  DataSet slice_time(double t0, double t1) const;

  bool has_time_series() const { return run_->has_time_series(); }
  /// The prefix slabs backing windowed reduction (requires time series).
  const TimeSlabs& slabs() const;

  /// True when `attr` of entity `e` varies with the time window (it is fed
  /// by a sampled series rather than a whole-run scalar).
  static bool windowable(Entity e, const std::string& attr);
  /// The prefix slab whose entity index matches rows of table(e), for a
  /// windowable attr. Router attrs are sums over links, so they have no
  /// per-row slab — use windowed_table for those.
  const metrics::PrefixSeries& prefix_for(Entity e,
                                          const std::string& attr) const;

  /// Copy of table(e) with every windowable column restricted to [t0, t1).
  /// Router columns are re-accumulated from the windowed links in the same
  /// order as metrics::RunMetrics::derive_routers, so the result is
  /// bit-exact with slice_time(t0, t1).table(e).
  DataTable windowed_table(Entity e, double t0, double t1) const;

  /// Monotonic mutation counter over all entity tables (cache key input).
  std::uint64_t version() const;

  /// Process-unique dataset identity (assigned at construction, never
  /// reused). Cache keys combine uid() with version() so one ResultCache
  /// can be shared across many datasets — e.g. the serve daemon's catalog —
  /// without key collisions between runs.
  std::uint64_t uid() const { return uid_; }

  /// Appends (or replaces) a derived column on one entity table. Bumps
  /// version(), invalidating cached query results.
  void add_derived_column(Entity e, const std::string& name,
                          std::vector<double> values);

 private:
  DataSet() = default;
  void build();
  DataTable& table_mut(Entity e);

  static std::uint64_t next_uid();

  std::shared_ptr<const metrics::RunMetrics> run_;
  std::shared_ptr<const TimeSlabs> slabs_;
  std::uint64_t uid_ = next_uid();
  DataTable routers_, local_links_, global_links_, terminals_;
};

}  // namespace dv::core
