#include "core/svg.hpp"

#include <cmath>
#include <fstream>

#include "util/common.hpp"
#include "util/str.hpp"

namespace dv::core {

namespace {
std::string num(double v) { return fmt_double(v, 3); }

Pt polar(double cx, double cy, double r, double a) {
  // SVG y grows downward; negate to keep mathematical orientation.
  return {cx + r * std::cos(a), cy - r * std::sin(a)};
}
}  // namespace

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {
  DV_REQUIRE(width > 0 && height > 0, "svg size must be positive");
}

std::string SvgDocument::style_attrs(const Style& s) const {
  std::string out;
  out += " fill=\"";
  out += s.fill.a ? s.fill.hex() : std::string("none");
  out += "\"";
  if (s.fill.a && s.fill.a != 255) {
    out += " fill-opacity=\"" + num(s.fill.a / 255.0) + "\"";
  }
  if (s.stroke.a) {
    out += " stroke=\"" + s.stroke.hex() + "\" stroke-width=\"" +
           num(s.stroke_width) + "\"";
    if (s.stroke.a != 255) {
      out += " stroke-opacity=\"" + num(s.stroke.a / 255.0) + "\"";
    }
  }
  if (s.opacity != 1.0) out += " opacity=\"" + num(s.opacity) + "\"";
  return out;
}

void SvgDocument::rect(double x, double y, double w, double h,
                       const Style& s) {
  body_ << "<rect x=\"" << num(x) << "\" y=\"" << num(y) << "\" width=\""
        << num(w) << "\" height=\"" << num(h) << "\"" << style_attrs(s)
        << "/>\n";
  ++elements_;
}

void SvgDocument::circle(double cx, double cy, double r, const Style& s) {
  body_ << "<circle cx=\"" << num(cx) << "\" cy=\"" << num(cy) << "\" r=\""
        << num(r) << "\"" << style_attrs(s) << "/>\n";
  ++elements_;
}

void SvgDocument::line(Pt a, Pt b, const Style& s) {
  body_ << "<line x1=\"" << num(a.x) << "\" y1=\"" << num(a.y) << "\" x2=\""
        << num(b.x) << "\" y2=\"" << num(b.y) << "\"" << style_attrs(s)
        << "/>\n";
  ++elements_;
}

void SvgDocument::polyline(const std::vector<Pt>& pts, const Style& s) {
  body_ << "<polyline points=\"";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i) body_ << ' ';
    body_ << num(pts[i].x) << ',' << num(pts[i].y);
  }
  body_ << "\"" << style_attrs(s) << "/>\n";
  ++elements_;
}

void SvgDocument::path(const std::string& d, const Style& s) {
  body_ << "<path d=\"" << d << "\"" << style_attrs(s) << "/>\n";
  ++elements_;
}

void SvgDocument::text(double x, double y, const std::string& content,
                       double size, const Rgb& color,
                       const std::string& anchor) {
  body_ << "<text x=\"" << num(x) << "\" y=\"" << num(y)
        << "\" font-size=\"" << num(size) << "\" font-family=\"sans-serif\""
        << " fill=\"" << color.hex() << "\" text-anchor=\"" << anchor
        << "\">";
  for (char c : content) {
    switch (c) {
      case '<': body_ << "&lt;"; break;
      case '>': body_ << "&gt;"; break;
      case '&': body_ << "&amp;"; break;
      default: body_ << c;
    }
  }
  body_ << "</text>\n";
  ++elements_;
}

void SvgDocument::ring_sector(double cx, double cy, double r0, double r1,
                              double a0, double a1, const Style& s) {
  DV_REQUIRE(r1 >= r0 && r0 >= 0, "bad ring radii");
  const Pt p00 = polar(cx, cy, r0, a0), p01 = polar(cx, cy, r0, a1);
  const Pt p10 = polar(cx, cy, r1, a0), p11 = polar(cx, cy, r1, a1);
  const int large = (a1 - a0) > 3.14159265358979323846 ? 1 : 0;
  std::ostringstream d;
  // Outer arc a0->a1 (sweep 0 because of the flipped y axis), inner back.
  d << "M" << num(p10.x) << ' ' << num(p10.y) << " A" << num(r1) << ' '
    << num(r1) << " 0 " << large << " 0 " << num(p11.x) << ' ' << num(p11.y)
    << " L" << num(p01.x) << ' ' << num(p01.y) << " A" << num(r0) << ' '
    << num(r0) << " 0 " << large << " 1 " << num(p00.x) << ' ' << num(p00.y)
    << " Z";
  path(d.str(), s);
}

void SvgDocument::ribbon(double cx, double cy, double r, double a0,
                         double a1, double b0, double b1, const Style& s) {
  const Pt pa0 = polar(cx, cy, r, a0), pa1 = polar(cx, cy, r, a1);
  const Pt pb0 = polar(cx, cy, r, b0), pb1 = polar(cx, cy, r, b1);
  std::ostringstream d;
  // Arc across span A, curve through centre to span B, arc, curve back.
  d << "M" << num(pa0.x) << ' ' << num(pa0.y)
    << " A" << num(r) << ' ' << num(r) << " 0 0 0 " << num(pa1.x) << ' '
    << num(pa1.y)
    << " Q" << num(cx) << ' ' << num(cy) << ' ' << num(pb0.x) << ' '
    << num(pb0.y)
    << " A" << num(r) << ' ' << num(r) << " 0 0 0 " << num(pb1.x) << ' '
    << num(pb1.y)
    << " Q" << num(cx) << ' ' << num(cy) << ' ' << num(pa0.x) << ' '
    << num(pa0.y) << " Z";
  path(d.str(), s);
}

void SvgDocument::begin_group(const std::string& id) {
  body_ << "<g id=\"" << id << "\">\n";
  ++open_groups_;
}

void SvgDocument::end_group() {
  DV_REQUIRE(open_groups_ > 0, "end_group without begin_group");
  body_ << "</g>\n";
  --open_groups_;
}

std::string SvgDocument::str() const {
  DV_REQUIRE(open_groups_ == 0, "unclosed svg group");
  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << num(width_)
      << "\" height=\"" << num(height_) << "\" viewBox=\"0 0 " << num(width_)
      << ' ' << num(height_) << "\">\n"
      << body_.str() << "</svg>\n";
  return out.str();
}

void SvgDocument::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open svg for writing: " + path);
  os << str();
  DV_REQUIRE(os.good(), "svg write failed: " + path);
}

}  // namespace dv::core
