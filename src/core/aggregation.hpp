// Hierarchical and binned data aggregation (Sec. IV-A of the paper).
//
// An Aggregation groups the rows of one entity table by an ordered list of
// attributes (e.g. ["router_rank", "router_port"]), optionally re-binning
// the first attribute when the number of groups exceeds `max_bins` — the
// paper's automatic "extra binned aggregation" (Fig. 5a, maxBins). Filters
// restrict the rows first (the `filter` operation of Fig. 5b).
//
// Reduction follows the paper: sum for most performance metrics, mean for
// the per-terminal averages (weighted by finished packets so aggregate
// averages stay exact).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "core/datatable.hpp"

namespace dv::core {

enum class Reducer { kSum, kMean, kMax, kMin, kCount };

/// sum for most metrics; mean for "avg_*" attributes (paper Sec. IV-A).
Reducer default_reducer(const std::string& attr);

/// Inclusive value range filter on one attribute. The default range is
/// unbounded, so a spec that names an attribute without a range keeps every
/// row instead of silently filtering everything out.
struct AttrFilter {
  std::string attr;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();

  bool bounded_lo() const {
    return lo > -std::numeric_limits<double>::infinity();
  }
  bool bounded_hi() const {
    return hi < std::numeric_limits<double>::infinity();
  }
};

/// Half-open time range [t0, t1) for windowed aggregation (the brushed
/// range of the paper's interactive loop). Inactive when t0 >= t1.
struct TimeWindow {
  double t0 = 0.0;
  double t1 = 0.0;

  bool active() const { return t0 < t1; }
};

struct AggregationSpec {
  std::vector<std::string> keys;     ///< group-by attributes, outermost first
  std::size_t max_bins = 0;          ///< 0 = unlimited
  std::vector<AttrFilter> filters;   ///< applied before grouping
  TimeWindow window;                 ///< restrict sampled metrics to [t0,t1)
};

/// One aggregate item (a visual item in a projection ring).
struct AggregateGroup {
  std::vector<double> keys;          ///< key values (bin index when binned)
  std::vector<std::uint32_t> rows;   ///< source row indices
};

class Aggregation {
 public:
  /// The table must outlive the aggregation. With empty keys, every
  /// (filtered) row becomes its own group ("individual entities" mode).
  Aggregation(const DataTable& table, AggregationSpec spec);

  const std::vector<AggregateGroup>& groups() const { return groups_; }
  std::size_t size() const { return groups_.size(); }
  bool binned() const { return binned_; }
  const AggregationSpec& spec() const { return spec_; }
  const DataTable& table() const { return *table_; }

  /// Rows that survived the filters (union of all groups, sorted).
  const std::vector<std::uint32_t>& filtered_rows() const {
    return filtered_rows_;
  }

  /// Reduces one attribute per group. kMean on a table with a
  /// "packets_finished" column is weighted by it.
  std::vector<double> reduce(const std::string& attr, Reducer r) const;
  std::vector<double> reduce(const std::string& attr) const;

  /// Like reduce, but reads attribute values (and mean weights) from
  /// `values` instead of the grouped table. `values` must share the grouped
  /// table's row indexing — e.g. a time-windowed copy of it. This is how
  /// the query engine reuses a window-independent grouping across brushes.
  std::vector<double> reduce_over(const DataTable& values,
                                  const std::string& attr, Reducer r) const;

 private:
  void build();

  const DataTable* table_;
  AggregationSpec spec_;
  std::vector<AggregateGroup> groups_;
  std::vector<std::uint32_t> filtered_rows_;
  bool binned_ = false;
};

}  // namespace dv::core
