#include "core/projection.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <set>
#include <unordered_set>

#include "obs/obs.hpp"
#include "util/str.hpp"

namespace dv::core {

namespace {
constexpr double kTau = 6.283185307179586;

bool is_categorical_attr(const std::string& attr) {
  return attr == "workload" || attr == "job" || attr == "src_job" ||
         attr == "dst_job";
}

/// (src key column, dst key column) for a ribbon bundling key.
std::pair<std::string, std::string> ribbon_key_columns(
    const DataTable& table, const std::string& key) {
  if (key == "router_rank") return {"router_rank", "dst_rank"};
  if (key == "group_id") return {"group_id", "dst_group"};
  if (key == "job") return {"src_job", "dst_job"};
  if (table.has_column(key) && table.has_column("dst_" + key)) {
    return {key, "dst_" + key};
  }
  throw Error("cannot bundle ribbons by '" + key +
              "' (no src/dst column pair)");
}
}  // namespace

Rgb categorical_color(std::int64_t index) {
  if (index < 0) return Rgb{170, 170, 170};  // idle terminals / proxy routers
  static const Rgb palette[] = {
      {46, 139, 34},    // green
      {255, 140, 0},    // orange
      {139, 69, 19},    // brown
      {70, 130, 180},   // steelblue
      {128, 0, 128},    // purple
      {0, 128, 128},    // teal
      {220, 20, 60},    // crimson
      {128, 128, 0},    // olive
      {0, 0, 128},      // navy
      {199, 21, 133},   // magenta
  };
  return palette[static_cast<std::size_t>(index) % (sizeof(palette) / sizeof(palette[0]))];
}

std::string ProjectionView::scale_key(std::size_t level, const char* channel) {
  return "L" + std::to_string(level) + "/" + channel;
}

ProjectionView::ProjectionView(const DataSet& data, ProjectionSpec spec,
                               const ScaleSet* shared, QueryEngine* engine)
    : spec_(std::move(spec)) {
  DV_REQUIRE(!spec_.levels.empty(), "projection spec has no levels");
  build(data, shared, engine);
}

ScaleSet ProjectionView::compute_scales(const DataSet& data,
                                        const ProjectionSpec& spec) {
  return ProjectionView(data, spec).scales();
}

void ProjectionView::build(const DataSet& data, const ScaleSet* shared,
                           QueryEngine* engine) {
  DV_OBS_PHASE("projection");
  QueryEngine local(data);
  QueryEngine& eng = engine ? *engine : local;

  // Every ring and the ribbon layer are independent pipelines: build each
  // into its own ring/scale slot on the VA pool, then merge the scale
  // domains in ring order so the result is deterministic.
  const std::size_t n_levels = spec_.levels.size();
  std::vector<Ring> rings(n_levels);
  std::vector<ScaleSet> ring_scales(n_levels);
  ScaleSet ribbon_scales;
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n_levels + 1);
  for (std::size_t i = 0; i < n_levels; ++i) {
    tasks.push_back([this, &eng, &rings, &ring_scales, i] {
      build_ring(eng, spec_.levels[i], i, rings[i], ring_scales[i]);
    });
  }
  if (spec_.ribbons.enabled) {
    tasks.push_back(
        [this, &eng, &ribbon_scales] { build_ribbons(eng, ribbon_scales); });
  }
  run_parallel(std::move(tasks));

  rings_ = std::move(rings);
  for (const auto& s : ring_scales) scales_.merge(s);
  scales_.merge(ribbon_scales);
  if (shared) scales_.merge(*shared);
  apply_scales();
}

void ProjectionView::build_ring(QueryEngine& eng, const LevelSpec& lvl,
                                std::size_t level_idx, Ring& out,
                                ScaleSet& scales) {
  AggregationSpec aspec = lvl.aggregation_spec();
  aspec.window = spec_.window;
  const auto agg = eng.aggregate(lvl.entity, aspec);
  const DataTable& table = agg->table();

  Ring& ring = out;
  ring.spec = lvl;
  ring.type = lvl.plot_type();

  const std::size_t n = agg->size();
  ring.items.resize(n);

  auto fill_channel = [&](const std::string& attr, const char* channel,
                          auto setter) {
    if (attr.empty()) return;
    const auto vals = eng.reduce(lvl.entity, aspec, attr);
    auto& scale = scales.get_or_add(scale_key(level_idx, channel));
    for (std::size_t j = 0; j < n; ++j) {
      setter(ring.items[j], (*vals)[j]);
      scale.include((*vals)[j]);
    }
  };
  fill_channel(lvl.vmap.color, "color",
               [](RingItem& it, double v) { it.color_value = v; });
  fill_channel(lvl.vmap.size, "size",
               [](RingItem& it, double v) { it.size_value = v; });
  fill_channel(lvl.vmap.x, "x",
               [](RingItem& it, double v) { it.x_value = v; });
  fill_channel(lvl.vmap.y, "y",
               [](RingItem& it, double v) { it.y_value = v; });

  const std::vector<double>* first_key_col =
      lvl.aggregate.empty() ? nullptr : &table.column(lvl.aggregate[0]);
  for (std::size_t j = 0; j < n; ++j) {
    RingItem& it = ring.items[j];
    it.keys = agg->groups()[j].keys;
    it.source_rows = agg->groups()[j].rows;
    if (first_key_col && !it.source_rows.empty()) {
      it.key_lo = it.key_hi = (*first_key_col)[it.source_rows[0]];
      for (std::uint32_t r : it.source_rows) {
        it.key_lo = std::min(it.key_lo, (*first_key_col)[r]);
        it.key_hi = std::max(it.key_hi, (*first_key_col)[r]);
      }
    }
    it.a0 = kTau * static_cast<double>(j) / static_cast<double>(std::max<std::size_t>(1, n));
    it.a1 = kTau * static_cast<double>(j + 1) / static_cast<double>(std::max<std::size_t>(1, n));
  }
  DV_OBS_COUNT("core.proj.rings", 1);
  DV_OBS_COUNT("core.proj.items", n);
}

void ProjectionView::build_ribbons(QueryEngine& eng, ScaleSet& scales) {
  const RibbonSpec& rs = spec_.ribbons;
  const auto table_ptr = eng.table(rs.entity, spec_.window);
  const DataTable& table = *table_ptr;
  const auto [src_col_name, dst_col_name] =
      ribbon_key_columns(table, rs.key);
  const auto& src_col = table.column(src_col_name);
  const auto& dst_col = table.column(dst_col_name);
  const auto& size_col = table.column(rs.size_attr);
  const auto& color_col = table.column(rs.color_attr);

  // Bundle directed links by unordered key pair.
  struct Acc {
    double size = 0.0;
    double color = 0.0;
    std::vector<std::uint32_t> rows;
  };
  std::map<std::pair<double, double>, Acc> bundles;
  std::set<double> keys;
  for (std::uint32_t r = 0; r < table.rows(); ++r) {
    const double ka = src_col[r];
    const double kb = dst_col[r];
    keys.insert(ka);
    keys.insert(kb);
    if (size_col[r] == 0.0 && color_col[r] == 0.0) continue;  // unused link
    auto& acc = bundles[{std::min(ka, kb), std::max(ka, kb)}];
    acc.size += size_col[r];
    acc.color = std::max(acc.color, color_col[r]);
    acc.rows.push_back(r);
  }

  // Arcs: span proportional to the bundled traffic touching each key
  // ("the size of the arcs shows the ratios of the total traffic" —
  // Sec. V-D); keys with no traffic get a minimal span.
  std::vector<double> key_list(keys.begin(), keys.end());
  std::map<double, std::size_t> arc_of;
  arcs_.clear();
  for (std::size_t i = 0; i < key_list.size(); ++i) {
    arc_of[key_list[i]] = i;
    RibbonArc arc;
    arc.key = key_list[i];
    arc.color = is_categorical_attr(rs.key) || rs.key == "job"
                    ? categorical_color(static_cast<std::int64_t>(
                          std::llround(key_list[i])))
                    : categorical_color(static_cast<std::int64_t>(i));
    arcs_.push_back(arc);
  }
  for (const auto& [pair, acc] : bundles) {
    arcs_[arc_of[pair.first]].weight += acc.size;
    arcs_[arc_of[pair.second]].weight += acc.size;
  }

  double total_weight = 0.0;
  for (const auto& arc : arcs_) total_weight += arc.weight;
  const std::size_t n_arcs = arcs_.size();
  if (n_arcs == 0) return;
  const double gap = kTau * 0.08 / static_cast<double>(n_arcs);
  const double usable = kTau - gap * static_cast<double>(n_arcs);
  const double min_span = usable * 0.01;

  // First pass: raw spans; then normalize to fill the circle.
  std::vector<double> spans(n_arcs);
  double span_sum = 0.0;
  for (std::size_t i = 0; i < n_arcs; ++i) {
    spans[i] = total_weight > 0
                   ? std::max(min_span, usable * arcs_[i].weight / total_weight)
                   : usable / static_cast<double>(n_arcs);
    span_sum += spans[i];
  }
  double angle = 0.0;
  for (std::size_t i = 0; i < n_arcs; ++i) {
    const double span = spans[i] * usable / span_sum;
    arcs_[i].a0 = angle;
    arcs_[i].a1 = angle + span;
    angle += span + gap;
  }

  // Sub-span allocation (chord layout): walk each arc, giving every bundle
  // an end width proportional to its size; self-bundles take two slots.
  struct End {
    std::size_t bundle;
    bool first_end;
    double partner_key;
    double size;
  };
  std::vector<std::vector<End>> ends(n_arcs);
  ribbons_.clear();
  ribbons_.reserve(bundles.size());
  auto& sscale = scales.get_or_add("R/size");
  auto& cscale = scales.get_or_add("R/color");
  for (const auto& [pair, acc] : bundles) {
    RibbonBundle rb;
    rb.arc_a = arc_of[pair.first];
    rb.arc_b = arc_of[pair.second];
    rb.size_value = acc.size;
    rb.color_value = acc.color;
    rb.source_rows = acc.rows;
    sscale.include(rb.size_value);
    cscale.include(rb.color_value);
    const std::size_t idx = ribbons_.size();
    ends[rb.arc_a].push_back(End{idx, true, pair.second, acc.size});
    ends[rb.arc_b].push_back(End{idx, false, pair.first, acc.size});
    ribbons_.push_back(std::move(rb));
  }
  for (std::size_t i = 0; i < n_arcs; ++i) {
    auto& list = ends[i];
    std::sort(list.begin(), list.end(), [](const End& a, const End& b) {
      if (a.partner_key != b.partner_key) return a.partner_key < b.partner_key;
      return a.first_end && !b.first_end;
    });
    double wsum = 0.0;
    for (const auto& e : list) wsum += e.size;
    double cursor = arcs_[i].a0;
    const double arc_span = arcs_[i].a1 - arcs_[i].a0;
    for (const auto& e : list) {
      const double w = wsum > 0
                           ? arc_span * e.size / wsum
                           : arc_span / static_cast<double>(list.size());
      RibbonBundle& rb = ribbons_[e.bundle];
      if (e.first_end) {
        rb.a0 = cursor;
        rb.a1 = cursor + w;
      } else {
        rb.b0 = cursor;
        rb.b1 = cursor + w;
      }
      cursor += w;
    }
  }
  DV_OBS_COUNT("core.proj.ribbons", ribbons_.size());
  DV_OBS_COUNT("core.proj.ribbon_arcs", n_arcs);
}

void ProjectionView::apply_scales() {
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    Ring& ring = rings_[i];
    const VisualMapping& vm = ring.spec.vmap;
    const ColorRamp ramp = ring.spec.colors.empty()
                               ? ColorRamp::from_names({"white", "steelblue"})
                               : ColorRamp::from_names(ring.spec.colors);
    const bool categorical = is_categorical_attr(vm.color);
    for (RingItem& it : ring.items) {
      if (!vm.color.empty()) {
        it.color_t = scales_.at(scale_key(i, "color")).norm(it.color_value);
        it.color = categorical
                       ? categorical_color(static_cast<std::int64_t>(
                             std::llround(it.color_value)))
                       : ramp.at(it.color_t);
      } else {
        it.color = Rgb{190, 190, 200};
      }
      if (!vm.size.empty()) {
        it.size_t_ = scales_.at(scale_key(i, "size")).norm(it.size_value);
      }
      if (!vm.x.empty()) {
        it.x_t = scales_.at(scale_key(i, "x")).norm(it.x_value);
      }
      if (!vm.y.empty()) {
        it.y_t = scales_.at(scale_key(i, "y")).norm(it.y_value);
      }
    }
  }
  if (!ribbons_.empty()) {
    const ColorRamp ramp = ColorRamp::from_names(spec_.ribbons.colors);
    for (RibbonBundle& rb : ribbons_) {
      rb.size_t_ = scales_.at("R/size").norm(rb.size_value);
      rb.color_t = scales_.at("R/color").norm(rb.color_value);
      rb.color = ramp.at(rb.color_t);
    }
  }
}

const std::vector<std::uint32_t>& ProjectionView::select(
    std::size_t ring, std::size_t item) const {
  DV_REQUIRE(ring < rings_.size(), "ring index out of range");
  DV_REQUIRE(item < rings_[ring].items.size(), "item index out of range");
  return rings_[ring].items[item].source_rows;
}

ProjectionSpec ProjectionView::drill_down(std::size_t ring,
                                          std::size_t item) const {
  DV_REQUIRE(ring < rings_.size(), "ring index out of range");
  DV_REQUIRE(item < rings_[ring].items.size(), "item index out of range");
  const LevelSpec& lvl = rings_[ring].spec;
  DV_REQUIRE(!lvl.aggregate.empty(),
             "drill-down needs an aggregated ring (individual entities "
             "have nothing to expand)");
  const std::string& attr = lvl.aggregate[0];
  const RingItem& it = rings_[ring].items[item];

  ProjectionSpec focused = spec_;
  for (auto& level : focused.levels) {
    level.filters.push_back(AttrFilter{attr, it.key_lo, it.key_hi});
    // Inside the focus the partitioning is no longer needed.
    if (&level - focused.levels.data() == static_cast<std::ptrdiff_t>(ring)) {
      level.max_bins = 0;
    }
  }
  return focused;
}

std::size_t ProjectionView::highlight(
    Entity entity, const std::vector<std::uint32_t>& rows) {
  const std::unordered_set<std::uint32_t> set(rows.begin(), rows.end());
  std::size_t hits = 0;
  for (Ring& ring : rings_) {
    if (ring.spec.entity != entity) continue;
    for (RingItem& it : ring.items) {
      const bool hit = std::any_of(
          it.source_rows.begin(), it.source_rows.end(),
          [&](std::uint32_t r) { return set.count(r) > 0; });
      if (hit) {
        it.highlighted = true;
        ++hits;
      }
    }
  }
  if (spec_.ribbons.enabled && spec_.ribbons.entity == entity) {
    for (RibbonBundle& rb : ribbons_) {
      const bool hit = std::any_of(
          rb.source_rows.begin(), rb.source_rows.end(),
          [&](std::uint32_t r) { return set.count(r) > 0; });
      if (hit) {
        rb.highlighted = true;
        ++hits;
      }
    }
  }
  return hits;
}

void ProjectionView::clear_highlight() {
  for (Ring& ring : rings_) {
    for (RingItem& it : ring.items) it.highlighted = false;
  }
  for (RibbonBundle& rb : ribbons_) rb.highlighted = false;
}

// ----------------------------------------------------------------- render

void ProjectionView::render(SvgDocument& doc, double cx, double cy,
                            double radius) const {
  const Rgb highlight_color{255, 215, 0};  // gold, as in the paper's UI
  const double r_ribbon = radius * 0.40;
  const double rings_r0 = radius * 0.46;
  const std::size_t n_rings = rings_.size();
  const double band =
      n_rings ? (radius - rings_r0) / static_cast<double>(n_rings) : 0.0;

  doc.begin_group("ribbons");
  if (spec_.ribbons.enabled) {
    for (const auto& arc : arcs_) {
      doc.ring_sector(cx, cy, r_ribbon + 2.0, r_ribbon + radius * 0.02,
                      arc.a0, arc.a1, Style::filled(arc.color));
    }
    for (const auto& rb : ribbons_) {
      Style s = Style::filled(Rgb{rb.color.r, rb.color.g, rb.color.b, 200});
      if (rb.highlighted) {
        s.stroke = highlight_color;
        s.stroke_width = 1.5;
      }
      doc.ribbon(cx, cy, r_ribbon, rb.a0, rb.a1, rb.b0, rb.b1, s);
    }
  }
  doc.end_group();

  for (std::size_t i = 0; i < n_rings; ++i) {
    const Ring& ring = rings_[i];
    const double r0 = rings_r0 + band * static_cast<double>(i) + band * 0.06;
    const double r1 = rings_r0 + band * static_cast<double>(i + 1) - band * 0.06;
    doc.begin_group("ring" + std::to_string(i));

    const Style border_style = Style::stroked(Rgb{210, 210, 210}, 0.4);
    switch (ring.type) {
      case PlotType::kHeatmap1D:
        for (const auto& it : ring.items) {
          Style s = Style::filled(it.color);
          if (ring.spec.border) {
            s.stroke = border_style.stroke;
            s.stroke_width = border_style.stroke_width;
          }
          if (it.highlighted) {
            s.stroke = highlight_color;
            s.stroke_width = 1.5;
          }
          doc.ring_sector(cx, cy, r0, r1, it.a0, it.a1, s);
        }
        break;

      case PlotType::kBarChart:
        for (const auto& it : ring.items) {
          if (ring.spec.border) {
            doc.ring_sector(cx, cy, r0, r1, it.a0, it.a1,
                            Style::filled(Rgb{245, 245, 245}));
          }
          const double rb = r0 + (r1 - r0) * std::max(0.02, it.size_t_);
          Style s = Style::filled(it.color);
          if (it.highlighted) {
            s.stroke = highlight_color;
            s.stroke_width = 1.5;
          }
          doc.ring_sector(cx, cy, r0, rb, it.a0, it.a1, s);
        }
        break;

      case PlotType::kHeatmap2D: {
        // Grid cells: x and y channels index the angular/radial position.
        std::set<double> xs, ys;
        for (const auto& it : ring.items) {
          xs.insert(it.x_value);
          ys.insert(it.y_value);
        }
        std::map<double, std::size_t> xi, yi;
        std::size_t k = 0;
        for (double v : xs) xi[v] = k++;
        k = 0;
        for (double v : ys) yi[v] = k++;
        const double da = kTau / static_cast<double>(std::max<std::size_t>(1, xs.size()));
        const double dr =
            (r1 - r0) / static_cast<double>(std::max<std::size_t>(1, ys.size()));
        for (const auto& it : ring.items) {
          const double a0 = da * static_cast<double>(xi[it.x_value]);
          const double rr0 = r0 + dr * static_cast<double>(yi[it.y_value]);
          Style s = Style::filled(it.color);
          if (ring.spec.border) {
            s.stroke = border_style.stroke;
            s.stroke_width = border_style.stroke_width;
          }
          if (it.highlighted) {
            s.stroke = highlight_color;
            s.stroke_width = 1.5;
          }
          doc.ring_sector(cx, cy, rr0, rr0 + dr, a0, a0 + da, s);
        }
        break;
      }

      case PlotType::kScatter: {
        const bool aggregated = !ring.spec.aggregate.empty();
        for (const auto& it : ring.items) {
          const double angle =
              aggregated ? it.a0 + it.x_t * (it.a1 - it.a0) : it.x_t * kTau;
          const double rr = r0 + (r1 - r0) * (0.1 + 0.8 * it.y_t);
          const double pr =
              band * (0.05 + 0.18 * (ring.spec.vmap.size.empty() ? 0.5
                                                                 : it.size_t_));
          Style s = Style::filled(Rgb{it.color.r, it.color.g, it.color.b, 220});
          if (it.highlighted) {
            s.stroke = highlight_color;
            s.stroke_width = 1.2;
          }
          doc.circle(cx + rr * std::cos(angle), cy - rr * std::sin(angle),
                     pr, s);
        }
        break;
      }
    }
    doc.end_group();
  }
}

double ProjectionView::legend_height() const {
  return 14.0 * static_cast<double>(rings_.size() +
                                    (spec_.ribbons.enabled ? 1 : 0)) +
         6.0;
}

void ProjectionView::render_legend(SvgDocument& doc, double x, double y,
                                   double width) const {
  const Rgb text_color{70, 70, 70};
  double line_y = y + 10;
  auto ramp_bar = [&](double bx, const std::vector<std::string>& colors,
                      const LinearScale* scale) {
    const ColorRamp ramp = colors.empty()
                               ? ColorRamp::from_names({"white", "steelblue"})
                               : ColorRamp::from_names(colors);
    const double bar_w = 46.0;
    for (int k = 0; k < 20; ++k) {
      doc.rect(bx + bar_w * k / 20.0, line_y - 8, bar_w / 20.0 + 0.4, 9,
               Style::filled(ramp.at(k / 19.0)));
    }
    doc.rect(bx, line_y - 8, bar_w, 9, Style::stroked(Rgb{150, 150, 150}, 0.5));
    if (scale && scale->valid()) {
      doc.text(bx + bar_w + 4, line_y,
               "[" + fmt_double(scale->lo(), 1) + " .. " +
                   fmt_double(scale->hi(), 1) + "]",
               8, text_color);
    }
  };

  if (spec_.ribbons.enabled) {
    doc.text(x, line_y,
             "ribbons: " + to_string(spec_.ribbons.entity) + " by " +
                 spec_.ribbons.key + "  size=" + spec_.ribbons.size_attr +
                 "  color=" + spec_.ribbons.color_attr,
             9, text_color);
    const LinearScale* s = scales_.has("R/color") ? &scales_.at("R/color") : nullptr;
    ramp_bar(x + width * 0.58, spec_.ribbons.colors, s);
    line_y += 14;
  }
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    const LevelSpec& lvl = rings_[i].spec;
    std::string desc = "ring " + std::to_string(i) + " (" +
                       to_string(rings_[i].type) + "): " +
                       to_string(lvl.entity);
    if (!lvl.aggregate.empty()) desc += " by " + join(lvl.aggregate, ",");
    if (!lvl.vmap.color.empty()) desc += "  color=" + lvl.vmap.color;
    if (!lvl.vmap.size.empty()) desc += "  size=" + lvl.vmap.size;
    if (!lvl.vmap.x.empty()) desc += "  x=" + lvl.vmap.x;
    if (!lvl.vmap.y.empty()) desc += "  y=" + lvl.vmap.y;
    doc.text(x, line_y, desc, 9, text_color);
    if (!lvl.vmap.color.empty() && !is_categorical_attr(lvl.vmap.color)) {
      const std::string key = scale_key(i, "color");
      const LinearScale* s = scales_.has(key) ? &scales_.at(key) : nullptr;
      ramp_bar(x + width * 0.58, lvl.colors, s);
    }
    line_y += 14;
  }
}

std::string ProjectionView::to_svg(double size_px,
                                   const std::string& title) const {
  const double legend_h = legend_height();
  SvgDocument doc(size_px, size_px + 28 + legend_h);
  doc.rect(0, 0, size_px, size_px + 28 + legend_h,
           Style::filled(Rgb{255, 255, 255}));
  if (!title.empty()) {
    doc.text(size_px / 2, 18, title, 14, Rgb{40, 40, 40}, "middle");
  }
  render(doc, size_px / 2, size_px / 2 + 24, size_px * 0.47);
  render_legend(doc, 10, size_px + 24, size_px - 20);
  return doc.str();
}

void ProjectionView::save_svg(const std::string& path, double size_px,
                              const std::string& title) const {
  std::ofstream os(path, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open svg for writing: " + path);
  os << to_svg(size_px, title);
  DV_REQUIRE(os.good(), "svg write failed: " + path);
}

}  // namespace dv::core
