// Named projection-spec presets — the view configurations used in the
// paper's figures, available by name from the library and the CLI
// (`--spec preset:fig5a`), so any run can be inspected exactly the way the
// paper presents it.
#pragma once

#include <string>
#include <vector>

#include "core/spec.hpp"

namespace dv::core {

/// Available preset names:
///   fig4        — rank/port bar + heatmap rings, terminal scatter,
///                 rank-bundled local-link ribbons (Fig. 4c)
///   fig5a       — group partitions via maxBins with job-colored terminals
///                 and job-bundled global ribbons (Fig. 5a)
///   fig7        — per-rank saturation across all three link classes
///                 (Figs. 7/8/10 comparisons)
///   fig9        — group-binned global links, local links, terminal
///                 latency/hops (Fig. 9)
///   fig13       — job-level local-link rings and global-link ribbons with
///                 proxy arcs (Fig. 13a-c)
///   overview    — a compact general-purpose default
std::vector<std::string> preset_names();
ProjectionSpec preset(const std::string& name);  // throws on unknown

/// Resolves a CLI spec argument: "preset:<name>" loads a preset; anything
/// else is treated as a script (the caller passes file contents).
bool is_preset_ref(const std::string& ref);
ProjectionSpec preset_from_ref(const std::string& ref);

}  // namespace dv::core
