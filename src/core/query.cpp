#include "core/query.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"
#include "util/threadpool.hpp"

namespace dv::core {

namespace {

// FNV-1a 64-bit over a canonical byte stream. Doubles hash by bit pattern,
// so -0.0 != 0.0 — acceptable: distinct keys only cost a duplicate entry.
struct Hasher {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    u64(b);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

enum CacheKind : std::uint64_t {
  kTableKind = 1,
  kAggKind = 2,
  kSlabKind = 3,
  kReduceKind = 4,
};

// Filters are AND-combined, so their order is irrelevant — sort for a
// canonical key. Key order matters and is hashed as-is.
void hash_spec(Hasher& h, Entity e, const AggregationSpec& spec) {
  h.u64(static_cast<std::uint64_t>(e));
  h.u64(spec.keys.size());
  for (const auto& k : spec.keys) h.str(k);
  h.u64(spec.max_bins);
  std::vector<AttrFilter> filters = spec.filters;
  std::sort(filters.begin(), filters.end(),
            [](const AttrFilter& a, const AttrFilter& b) {
              if (a.attr != b.attr) return a.attr < b.attr;
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  h.u64(filters.size());
  for (const auto& f : filters) {
    h.str(f.attr);
    h.f64(f.lo);
    h.f64(f.hi);
  }
}

}  // namespace

QueryEngine::QueryEngine(const DataSet& data, std::size_t capacity)
    : data_(&data), capacity_(std::max<std::size_t>(1, capacity)) {}

bool QueryEngine::grouping_windowed(Entity e,
                                    const AggregationSpec& spec) const {
  for (const auto& k : spec.keys) {
    if (DataSet::windowable(e, k)) return true;
  }
  for (const auto& f : spec.filters) {
    if (DataSet::windowable(e, f.attr)) return true;
  }
  return false;
}

std::pair<std::size_t, std::size_t> QueryEngine::frame_range(
    Entity e, TimeWindow w) const {
  const TimeSlabs& sl = data_->slabs();
  const metrics::PrefixSeries* ps = nullptr;
  switch (e) {
    case Entity::kRouter:
    case Entity::kLocalLink: ps = &sl.local_traffic; break;
    case Entity::kGlobalLink: ps = &sl.global_traffic; break;
    case Entity::kTerminal: ps = &sl.term_traffic; break;
  }
  return ps->frame_range(w.t0, w.t1);
}

std::shared_ptr<const DataTable> QueryEngine::table(Entity e, TimeWindow w) {
  if (!w.active()) {
    // Aliasing pointer to the live base table (no copy, not cached).
    return std::shared_ptr<const DataTable>(std::shared_ptr<const void>(),
                                            &data_->table(e));
  }
  const auto [f0, f1] = frame_range(e, w);
  Hasher h;
  h.u64(kTableKind);
  h.u64(static_cast<std::uint64_t>(e));
  h.u64(f0);
  h.u64(f1);
  h.u64(data_->version());
  auto v = get_or_compute(h.h, [&] {
    Entry en;
    en.key = h.h;
    en.value = std::make_shared<const DataTable>(
        data_->windowed_table(e, w.t0, w.t1));
    return en;
  });
  return std::static_pointer_cast<const DataTable>(v);
}

std::shared_ptr<const Aggregation> QueryEngine::aggregate(
    Entity e, const AggregationSpec& spec) {
  const bool gw = spec.window.active() && grouping_windowed(e, spec);
  auto tbl = table(e, gw ? spec.window : TimeWindow{});

  Hasher h;
  h.u64(kAggKind);
  hash_spec(h, e, spec);
  if (gw) {
    const auto [f0, f1] = frame_range(e, spec.window);
    h.u64(1);
    h.u64(f0);
    h.u64(f1);
  } else {
    h.u64(0);
  }
  h.u64(data_->version());
  auto v = get_or_compute(h.h, [&] {
    Entry en;
    en.key = h.h;
    en.value = std::make_shared<const Aggregation>(*tbl, spec);
    en.dep = tbl;  // the Aggregation holds a reference into tbl
    return en;
  });
  return std::static_pointer_cast<const Aggregation>(v);
}

std::shared_ptr<const QueryEngine::GroupSlab> QueryEngine::group_slab(
    Entity e, const AggregationSpec& spec, const std::string& attr) {
  Hasher h;
  h.u64(kSlabKind);
  hash_spec(h, e, spec);
  h.str(attr);
  h.u64(data_->version());
  auto v = get_or_compute(h.h, [&] {
    DV_OBS_PHASE("query/slab_build");
    auto agg = aggregate(e, spec);  // window-independent grouping
    const metrics::PrefixSeries& ps = data_->prefix_for(e, attr);
    auto slab = std::make_shared<GroupSlab>();
    slab->groups = agg->size();
    slab->frames = ps.frames();
    slab->prefix.assign((slab->frames + 1) * slab->groups, 0.0);
    for (std::size_t g = 0; g < slab->groups; ++g) {
      const auto& rows = agg->groups()[g].rows;
      for (std::size_t f = 1; f <= slab->frames; ++f) {
        double acc = 0.0;
        for (std::uint32_t row : rows) acc += ps.range_sum(row, 0, f);
        slab->prefix[f * slab->groups + g] = acc;
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.slab_builds;
    }
    DV_OBS_COUNT("core.cache.slab_build", 1);
    Entry en;
    en.key = h.h;
    en.value = std::move(slab);
    return en;
  });
  return std::static_pointer_cast<const GroupSlab>(v);
}

std::shared_ptr<const std::vector<double>> QueryEngine::reduce(
    Entity e, const AggregationSpec& spec, const std::string& attr,
    Reducer r) {
  const bool windowed = spec.window.active();
  const bool attr_w = DataSet::windowable(e, attr);
  const bool gw = windowed && grouping_windowed(e, spec);
  // Whether the result depends on the window at all; if not, brushes with
  // different windows share one cache entry.
  const bool window_sensitive = windowed && (attr_w || gw);
  // Group-slab fast path: window-independent grouping, plain sum of a
  // sampled per-row attribute. Routers have no per-row series (their sums
  // span links), so they take the windowed-table path below.
  const bool slab_ok = window_sensitive && !gw && r == Reducer::kSum &&
                       attr_w && e != Entity::kRouter;

  Hasher h;
  h.u64(kReduceKind);
  hash_spec(h, e, spec);
  h.str(attr);
  h.u64(static_cast<std::uint64_t>(r));
  if (window_sensitive) {
    const auto [f0, f1] = frame_range(e, spec.window);
    h.u64(1);
    h.u64(f0);
    h.u64(f1);
  } else {
    h.u64(0);
  }
  h.u64(data_->version());

  auto v = get_or_compute(h.h, [&] {
    Entry en;
    en.key = h.h;
    if (slab_ok) {
      auto slab = group_slab(e, spec, attr);
      const auto [f0, f1] = frame_range(e, spec.window);
      auto out = std::make_shared<std::vector<double>>(slab->groups);
      for (std::size_t g = 0; g < slab->groups; ++g) {
        (*out)[g] = slab->value(g, f0, f1);
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.slab_reduces;
      }
      DV_OBS_COUNT("core.cache.slab_reduce", 1);
      en.value = std::move(out);
    } else if (window_sensitive) {
      // Reuse the grouping (windowed only when it must be) and reduce over
      // the windowed table; bit-exact with slicing from scratch because the
      // groups, row order, and windowed values all coincide.
      auto agg = aggregate(e, spec);
      auto tbl = table(e, spec.window);
      en.value = std::make_shared<std::vector<double>>(
          agg->reduce_over(*tbl, attr, r));
    } else {
      auto agg = aggregate(e, spec);
      en.value = std::make_shared<std::vector<double>>(agg->reduce(attr, r));
    }
    return en;
  });
  return std::static_pointer_cast<const std::vector<double>>(v);
}

std::shared_ptr<const std::vector<double>> QueryEngine::reduce(
    Entity e, const AggregationSpec& spec, const std::string& attr) {
  return reduce(e, spec, attr, default_reducer(attr));
}

std::shared_ptr<const void> QueryEngine::get_or_compute(
    std::uint64_t key, const std::function<Entry()>& make) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      ++stats_.hits;
      DV_OBS_COUNT("core.cache.hit", 1);
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->value;
    }
    ++stats_.misses;
    DV_OBS_COUNT("core.cache.miss", 1);
  }

  // Compute outside the lock (make may recurse into the cache).
  Entry fresh = make();

  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    // Raced with a concurrent compute of the same key; first insert wins
    // (both values are bit-identical by the determinism contract).
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->value;
  }
  lru_.push_front(std::move(fresh));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
    DV_OBS_COUNT("core.cache.evict", 1);
  }
  stats_.entries = lru_.size();
  DV_OBS_GAUGE_SET("core.cache.size", static_cast<double>(lru_.size()));
  return lru_.front().value;
}

QueryStats QueryEngine::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  QueryStats s = stats_;
  s.entries = lru_.size();
  return s;
}

void QueryEngine::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
}

// ----------------------------------------------------------- run_parallel

namespace {

std::size_t va_threads() {
  if (const char* env = std::getenv("DV_VA_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, hw ? hw : 1);
}

ThreadPool& va_pool() {
  static ThreadPool pool(va_threads());
  return pool;
}

// The pool's wait_idle barrier is not reentrant: a pool task blocking on it
// would deadlock. Nested run_parallel calls run their tasks inline instead.
thread_local bool t_in_va_pool = false;

}  // namespace

void run_parallel(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (t_in_va_pool || tasks.size() == 1 || va_threads() <= 1) {
    for (auto& t : tasks) t();
    return;
  }
  std::vector<std::exception_ptr> errors(tasks.size());
  parallel_for(
      va_pool(), tasks.size(),
      [&](std::size_t i) {
        t_in_va_pool = true;
        try {
          tasks[i]();
        } catch (...) {
          errors[i] = std::current_exception();
        }
        t_in_va_pool = false;
      },
      1);
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace dv::core
