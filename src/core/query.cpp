#include "core/query.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/obs.hpp"
#include "util/threadpool.hpp"

namespace dv::core {

namespace {

// FNV-1a 64-bit over a canonical byte stream. Doubles hash by bit pattern,
// so -0.0 != 0.0 — acceptable: distinct keys only cost a duplicate entry.
struct Hasher {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ull;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(b));
    u64(b);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

enum CacheKind : std::uint64_t {
  kTableKind = 1,
  kAggKind = 2,
  kSlabKind = 3,
  kReduceKind = 4,
};

// Filters are AND-combined, so their order is irrelevant — sort for a
// canonical key. Key order matters and is hashed as-is.
void hash_spec(Hasher& h, Entity e, const AggregationSpec& spec) {
  h.u64(static_cast<std::uint64_t>(e));
  h.u64(spec.keys.size());
  for (const auto& k : spec.keys) h.str(k);
  h.u64(spec.max_bins);
  std::vector<AttrFilter> filters = spec.filters;
  std::sort(filters.begin(), filters.end(),
            [](const AttrFilter& a, const AttrFilter& b) {
              if (a.attr != b.attr) return a.attr < b.attr;
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi < b.hi;
            });
  h.u64(filters.size());
  for (const auto& f : filters) {
    h.str(f.attr);
    h.f64(f.lo);
    h.f64(f.hi);
  }
}

}  // namespace

// ------------------------------------------------------------- ResultCache

ResultCache::ResultCache(std::size_t capacity, std::size_t shards,
                         std::string obs_scope) {
  DV_REQUIRE(shards > 0 && (shards & (shards - 1)) == 0,
             "cache shard count must be a power of two");
  shard_mask_ = shards - 1;
  cap_per_shard_ = std::max<std::size_t>(1, (capacity + shards - 1) / shards);
  shards_ = std::vector<Shard>(shards);
  if (obs::kEnabled) {
    obs_hit_ = &obs::counter(obs_scope + ".hit");
    obs_miss_ = &obs::counter(obs_scope + ".miss");
    obs_evict_ = &obs::counter(obs_scope + ".evict");
    obs_slab_build_ = &obs::counter(obs_scope + ".slab_build");
    obs_slab_reduce_ = &obs::counter(obs_scope + ".slab_reduce");
    obs_size_ = &obs::gauge(obs_scope + ".size");
  }
}

std::shared_ptr<const void> ResultCache::get_or_compute(
    std::uint64_t key, const std::function<Entry()>& make) {
  Shard& sh = shard_of(key);
  std::shared_ptr<InFlight> mine;
  {
    std::unique_lock<std::mutex> lock(sh.mu);
    for (;;) {
      auto it = sh.index.find(key);
      if (it != sh.index.end()) {
        ++sh.stats.hits;
        if (obs_hit_) obs_hit_->add(1);
        sh.lru.splice(sh.lru.begin(), sh.lru, it->second);
        return it->second->value;
      }
      auto fl = sh.in_flight.find(key);
      if (fl == sh.in_flight.end()) break;
      // Someone is computing this exact key right now: join their result
      // instead of duplicating the work (request coalescing).
      std::shared_ptr<InFlight> theirs = fl->second;
      ++sh.stats.hits;
      ++sh.stats.coalesced;
      if (obs_hit_) obs_hit_->add(1);
      theirs->cv.wait(lock, [&] { return theirs->done; });
      if (!theirs->failed) return theirs->value;
      // The computing thread threw; fall through and retry ourselves.
    }
    ++sh.stats.misses;
    if (obs_miss_) obs_miss_->add(1);
    mine = std::make_shared<InFlight>();
    sh.in_flight.emplace(key, mine);
  }

  // Compute outside the lock (make may recurse into other cache keys).
  Entry fresh;
  std::exception_ptr error;
  try {
    fresh = make();
  } catch (...) {
    error = std::current_exception();
  }

  std::lock_guard<std::mutex> lock(sh.mu);
  sh.in_flight.erase(key);
  mine->done = true;
  if (error) {
    mine->failed = true;
    mine->cv.notify_all();
    std::rethrow_exception(error);
  }
  mine->value = fresh.value;
  mine->cv.notify_all();
  sh.lru.push_front(std::move(fresh));
  sh.index[key] = sh.lru.begin();
  entries_.fetch_add(1, std::memory_order_relaxed);
  while (sh.lru.size() > cap_per_shard_) {
    sh.index.erase(sh.lru.back().key);
    sh.lru.pop_back();
    ++sh.stats.evictions;
    entries_.fetch_sub(1, std::memory_order_relaxed);
    if (obs_evict_) obs_evict_->add(1);
  }
  sh.stats.entries = sh.lru.size();
  if (obs_size_) {
    obs_size_->set(
        static_cast<double>(entries_.load(std::memory_order_relaxed)));
  }
  return sh.lru.front().value;
}

QueryStats ResultCache::stats() const {
  QueryStats out;
  for (const auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    out.hits += sh.stats.hits;
    out.misses += sh.stats.misses;
    out.coalesced += sh.stats.coalesced;
    out.evictions += sh.stats.evictions;
    out.slab_builds += sh.stats.slab_builds;
    out.slab_reduces += sh.stats.slab_reduces;
    out.entries += sh.lru.size();
  }
  return out;
}

void ResultCache::clear() {
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lock(sh.mu);
    entries_.fetch_sub(sh.lru.size(), std::memory_order_relaxed);
    sh.lru.clear();
    sh.index.clear();
    sh.stats.entries = 0;
  }
}

void ResultCache::count_slab_build() {
  Shard& sh = shards_[0];
  std::lock_guard<std::mutex> lock(sh.mu);
  ++sh.stats.slab_builds;
  if (obs_slab_build_) obs_slab_build_->add(1);
}

void ResultCache::count_slab_reduce() {
  Shard& sh = shards_[0];
  std::lock_guard<std::mutex> lock(sh.mu);
  ++sh.stats.slab_reduces;
  if (obs_slab_reduce_) obs_slab_reduce_->add(1);
}

// ------------------------------------------------------------- QueryEngine

QueryEngine::QueryEngine(const DataSet& data, std::size_t capacity)
    : data_(&data),
      cache_(std::make_shared<ResultCache>(capacity, /*shards=*/1)) {}

QueryEngine::QueryEngine(const DataSet& data,
                         std::shared_ptr<ResultCache> cache)
    : data_(&data), cache_(std::move(cache)) {
  DV_REQUIRE(cache_ != nullptr, "QueryEngine requires a cache");
}

bool QueryEngine::grouping_windowed(Entity e,
                                    const AggregationSpec& spec) const {
  for (const auto& k : spec.keys) {
    if (DataSet::windowable(e, k)) return true;
  }
  for (const auto& f : spec.filters) {
    if (DataSet::windowable(e, f.attr)) return true;
  }
  return false;
}

std::pair<std::size_t, std::size_t> QueryEngine::frame_range(
    Entity e, TimeWindow w) const {
  const TimeSlabs& sl = data_->slabs();
  const metrics::PrefixSeries* ps = nullptr;
  switch (e) {
    case Entity::kRouter:
    case Entity::kLocalLink: ps = &sl.local_traffic; break;
    case Entity::kGlobalLink: ps = &sl.global_traffic; break;
    case Entity::kTerminal: ps = &sl.term_traffic; break;
  }
  return ps->frame_range(w.t0, w.t1);
}

std::shared_ptr<const DataTable> QueryEngine::table(Entity e, TimeWindow w) {
  if (!w.active()) {
    // Aliasing pointer to the live base table (no copy, not cached).
    return std::shared_ptr<const DataTable>(std::shared_ptr<const void>(),
                                            &data_->table(e));
  }
  const auto [f0, f1] = frame_range(e, w);
  Hasher h;
  h.u64(kTableKind);
  h.u64(static_cast<std::uint64_t>(e));
  h.u64(f0);
  h.u64(f1);
  h.u64(data_->uid());
  h.u64(data_->version());
  auto v = cache_->get_or_compute(h.h, [&] {
    ResultCache::Entry en;
    en.key = h.h;
    en.value = std::make_shared<const DataTable>(
        data_->windowed_table(e, w.t0, w.t1));
    return en;
  });
  return std::static_pointer_cast<const DataTable>(v);
}

std::shared_ptr<const Aggregation> QueryEngine::aggregate(
    Entity e, const AggregationSpec& spec) {
  const bool gw = spec.window.active() && grouping_windowed(e, spec);
  auto tbl = table(e, gw ? spec.window : TimeWindow{});

  Hasher h;
  h.u64(kAggKind);
  hash_spec(h, e, spec);
  if (gw) {
    const auto [f0, f1] = frame_range(e, spec.window);
    h.u64(1);
    h.u64(f0);
    h.u64(f1);
  } else {
    h.u64(0);
  }
  h.u64(data_->uid());
  h.u64(data_->version());
  auto v = cache_->get_or_compute(h.h, [&] {
    ResultCache::Entry en;
    en.key = h.h;
    en.value = std::make_shared<const Aggregation>(*tbl, spec);
    en.dep = tbl;  // the Aggregation holds a reference into tbl
    return en;
  });
  return std::static_pointer_cast<const Aggregation>(v);
}

std::shared_ptr<const QueryEngine::GroupSlab> QueryEngine::group_slab(
    Entity e, const AggregationSpec& spec, const std::string& attr) {
  Hasher h;
  h.u64(kSlabKind);
  hash_spec(h, e, spec);
  h.str(attr);
  h.u64(data_->uid());
  h.u64(data_->version());
  auto v = cache_->get_or_compute(h.h, [&] {
    DV_OBS_PHASE("query/slab_build");
    auto agg = aggregate(e, spec);  // window-independent grouping
    const metrics::PrefixSeries& ps = data_->prefix_for(e, attr);
    auto slab = std::make_shared<GroupSlab>();
    slab->groups = agg->size();
    slab->frames = ps.frames();
    slab->prefix.assign((slab->frames + 1) * slab->groups, 0.0);
    // Raw prefix-slab indexing: range_sum(row, 0, f) is the prefix delta
    // P[f*E + row] - P[row]. Hoisting the frame base pointer out of the
    // row loop drops the per-element bounds checks and index math while
    // keeping the accumulation order (and therefore the bits) unchanged.
    const double* prefix = ps.prefix_data();
    const std::size_t entities = ps.entities();
    for (std::size_t g = 0; g < slab->groups; ++g) {
      const auto& rows = agg->groups()[g].rows;
      for (std::size_t f = 1; f <= slab->frames; ++f) {
        const double* frame = prefix + f * entities;
        double acc = 0.0;
        for (std::uint32_t row : rows) acc += frame[row] - prefix[row];
        slab->prefix[f * slab->groups + g] = acc;
      }
    }
    cache_->count_slab_build();
    ResultCache::Entry en;
    en.key = h.h;
    en.value = std::move(slab);
    return en;
  });
  return std::static_pointer_cast<const GroupSlab>(v);
}

std::shared_ptr<const std::vector<double>> QueryEngine::reduce(
    Entity e, const AggregationSpec& spec, const std::string& attr,
    Reducer r) {
  const bool windowed = spec.window.active();
  const bool attr_w = DataSet::windowable(e, attr);
  const bool gw = windowed && grouping_windowed(e, spec);
  // Whether the result depends on the window at all; if not, brushes with
  // different windows share one cache entry.
  const bool window_sensitive = windowed && (attr_w || gw);
  // Group-slab fast path: window-independent grouping, plain sum of a
  // sampled per-row attribute. Routers have no per-row series (their sums
  // span links), so they take the windowed-table path below.
  const bool slab_ok = window_sensitive && !gw && r == Reducer::kSum &&
                       attr_w && e != Entity::kRouter;

  Hasher h;
  h.u64(kReduceKind);
  hash_spec(h, e, spec);
  h.str(attr);
  h.u64(static_cast<std::uint64_t>(r));
  if (window_sensitive) {
    const auto [f0, f1] = frame_range(e, spec.window);
    h.u64(1);
    h.u64(f0);
    h.u64(f1);
  } else {
    h.u64(0);
  }
  h.u64(data_->uid());
  h.u64(data_->version());

  auto v = cache_->get_or_compute(h.h, [&] {
    ResultCache::Entry en;
    en.key = h.h;
    if (slab_ok) {
      auto slab = group_slab(e, spec, attr);
      const auto [f0, f1] = frame_range(e, spec.window);
      auto out = std::make_shared<std::vector<double>>(slab->groups);
      for (std::size_t g = 0; g < slab->groups; ++g) {
        (*out)[g] = slab->value(g, f0, f1);
      }
      cache_->count_slab_reduce();
      en.value = std::move(out);
    } else if (window_sensitive) {
      // Reuse the grouping (windowed only when it must be) and reduce over
      // the windowed table; bit-exact with slicing from scratch because the
      // groups, row order, and windowed values all coincide.
      auto agg = aggregate(e, spec);
      auto tbl = table(e, spec.window);
      en.value = std::make_shared<std::vector<double>>(
          agg->reduce_over(*tbl, attr, r));
    } else {
      auto agg = aggregate(e, spec);
      en.value = std::make_shared<std::vector<double>>(agg->reduce(attr, r));
    }
    return en;
  });
  return std::static_pointer_cast<const std::vector<double>>(v);
}

std::shared_ptr<const std::vector<double>> QueryEngine::reduce(
    Entity e, const AggregationSpec& spec, const std::string& attr) {
  return reduce(e, spec, attr, default_reducer(attr));
}

QueryStats QueryEngine::stats() const { return cache_->stats(); }

void QueryEngine::clear() { cache_->clear(); }

// ----------------------------------------------------------- run_parallel

namespace {

std::size_t va_threads() {
  if (const char* env = std::getenv("DV_VA_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min<std::size_t>(4, hw ? hw : 1);
}

ThreadPool& va_pool() {
  static ThreadPool pool(va_threads());
  return pool;
}

// The pool's wait_idle barrier is not reentrant: a pool task blocking on it
// would deadlock. Nested run_parallel calls run their tasks inline instead.
thread_local bool t_in_va_pool = false;

}  // namespace

void run_parallel(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (t_in_va_pool || tasks.size() == 1 || va_threads() <= 1) {
    for (auto& t : tasks) t();
    return;
  }
  std::vector<std::exception_ptr> errors(tasks.size());
  parallel_for(
      va_pool(), tasks.size(),
      [&](std::size_t i) {
        t_in_va_pool = true;
        try {
          tasks[i]();
        } catch (...) {
          errors[i] = std::current_exception();
        }
        t_in_va_pool = false;
      },
      1);
  for (auto& err : errors) {
    if (err) std::rethrow_exception(err);
  }
}

}  // namespace dv::core
