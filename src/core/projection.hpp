// Hierarchical radial projection views (Sec. IV-B of the paper).
//
// A ProjectionView executes a ProjectionSpec against a DataSet: every level
// becomes one ring of aggregate items laid out around the circle in key
// order, and the centre shows bundled link ribbons between aggregate
// groups (chord-diagram layout; arc spans are proportional to the total
// bundled traffic of each group, and the two ends of a ribbon have equal
// width — both as described for Fig. 13).
//
// The view is a pure data structure plus an SVG renderer, so every visual
// quantity (angular spans, normalized channels, colors) is testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/datatable.hpp"
#include "core/query.hpp"
#include "core/scales.hpp"
#include "core/spec.hpp"
#include "core/svg.hpp"

namespace dv::core {

/// One visual aggregate item on a ring.
struct RingItem {
  std::vector<double> keys;
  std::vector<std::uint32_t> source_rows;  ///< rows in the entity table
  double key_lo = 0.0, key_hi = 0.0;  ///< first-key value range (for drill-down)
  double a0 = 0.0, a1 = 0.0;               ///< angular span (radians)
  double color_value = 0.0, size_value = 0.0, x_value = 0.0, y_value = 0.0;
  double color_t = 0.0, size_t_ = 0.0, x_t = 0.0, y_t = 0.0;  ///< normalized
  Rgb color{200, 200, 200};
  bool highlighted = false;
};

struct Ring {
  LevelSpec spec;
  PlotType type = PlotType::kHeatmap1D;
  std::vector<RingItem> items;
};

/// Endpoint arc for the ribbon layer: one per distinct bundling key.
struct RibbonArc {
  double key = 0.0;
  double a0 = 0.0, a1 = 0.0;
  double weight = 0.0;  ///< total bundled size touching this arc
  Rgb color{150, 150, 150};
};

/// A bundle of directed links between two key groups (unordered pair).
struct RibbonBundle {
  std::size_t arc_a = 0, arc_b = 0;  ///< indices into arcs()
  double a0 = 0.0, a1 = 0.0;         ///< sub-span on arc_a
  double b0 = 0.0, b1 = 0.0;         ///< sub-span on arc_b
  double size_value = 0.0;           ///< summed size attr over both directions
  double color_value = 0.0;          ///< max color attr over bundled links
  double size_t_ = 0.0, color_t = 0.0;
  Rgb color{150, 150, 150};
  std::vector<std::uint32_t> source_rows;  ///< link rows in both directions
  bool highlighted = false;
};

class ProjectionView {
 public:
  /// Builds the view. If `shared` is given, its domains are unioned into
  /// the locally computed scales (cross-run comparison uses the same
  /// min/max — Sec. IV-B2). If `engine` is given, aggregations and
  /// reductions go through its result cache (the interactive loop: repeated
  /// builds against the same dataset — brushing, drill-down, re-windowing —
  /// reuse each other's work); otherwise a throwaway engine is used. The
  /// spec's window restricts sampled metrics to [t0, t1). Rings and the
  /// ribbon layer are independent pipelines and are built on the VA worker
  /// pool.
  ProjectionView(const DataSet& data, ProjectionSpec spec,
                 const ScaleSet* shared = nullptr,
                 QueryEngine* engine = nullptr);

  const std::vector<Ring>& rings() const { return rings_; }
  const std::vector<RibbonArc>& arcs() const { return arcs_; }
  const std::vector<RibbonBundle>& ribbons() const { return ribbons_; }
  const ScaleSet& scales() const { return scales_; }
  const ProjectionSpec& spec() const { return spec_; }

  /// Scale domains this spec produces on this dataset (merge the results
  /// of several runs to build a shared ScaleSet).
  static ScaleSet compute_scales(const DataSet& data,
                                 const ProjectionSpec& spec);

  /// "Details on demand": source entity rows behind one visual aggregate.
  const std::vector<std::uint32_t>& select(std::size_t ring,
                                           std::size_t item) const;

  /// "Click to focus on aggregate items" (Fig. 5): derives a spec whose
  /// every level is filtered to the clicked aggregate's first-key value
  /// range, so rebuilding yields the drill-down view of that partition.
  /// The clicked ring's first aggregation key must be a structural
  /// attribute shared by all entity tables (e.g. group_id, router_rank).
  ProjectionSpec drill_down(std::size_t ring, std::size_t item) const;

  /// Marks every ring item containing any of `rows` of `entity`
  /// (selection linking from the detail view); returns the hit count.
  std::size_t highlight(Entity entity, const std::vector<std::uint32_t>& rows);
  void clear_highlight();

  /// Renders into a square region centred at (cx, cy) with outer radius R.
  void render(SvgDocument& doc, double cx, double cy, double radius) const;

  /// Renders the per-ring/ribbon legend (attribute names, color ramps with
  /// their domains, plot types) into a box starting at (x, y).
  void render_legend(SvgDocument& doc, double x, double y,
                     double width) const;
  /// Vertical space render_legend needs.
  double legend_height() const;

  /// Convenience: standalone SVG document.
  std::string to_svg(double size_px = 800,
                     const std::string& title = "") const;
  void save_svg(const std::string& path, double size_px = 800,
                const std::string& title = "") const;

 private:
  void build(const DataSet& data, const ScaleSet* shared,
             QueryEngine* engine);
  void build_ring(QueryEngine& engine, const LevelSpec& lvl,
                  std::size_t level_idx, Ring& out, ScaleSet& scales);
  void build_ribbons(QueryEngine& engine, ScaleSet& scales);
  void apply_scales();

  static std::string scale_key(std::size_t level, const char* channel);

  ProjectionSpec spec_;
  ScaleSet scales_;
  std::vector<Ring> rings_;
  std::vector<RibbonArc> arcs_;
  std::vector<RibbonBundle> ribbons_;
};

/// Categorical palette for job/class coloring (greens/oranges/browns as in
/// the paper's figures, then distinguishable extras; index -1 = idle/proxy
/// gray).
Rgb categorical_color(std::int64_t index);

}  // namespace dv::core
