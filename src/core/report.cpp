#include "core/report.hpp"

#include <fstream>
#include <sstream>

#include "util/str.hpp"

namespace dv::core {

namespace {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

ReportBuilder::ReportBuilder(std::string title) : title_(std::move(title)) {}

void ReportBuilder::heading(const std::string& text) {
  body_ += "<h2>" + escape(text) + "</h2>\n";
}

ReportBuilder& ReportBuilder::note(const std::string& heading_text,
                                   const std::string& text) {
  heading(heading_text);
  body_ += "<p>" + escape(text) + "</p>\n";
  return *this;
}

ReportBuilder& ReportBuilder::run_summary(const DataSet& data) {
  const metrics::RunMetrics& run = data.run();
  heading("Run: " + run.workload);
  std::ostringstream os;
  os << "<table class=\"meta\">\n";
  auto row = [&os](const std::string& k, const std::string& v) {
    os << "<tr><th>" << escape(k) << "</th><td>" << escape(v) << "</td></tr>\n";
  };
  row("routing", run.routing);
  row("placement", run.placement);
  row("network", "dragonfly g=" + std::to_string(run.groups) + " a=" +
                     std::to_string(run.routers_per_group) + " p=" +
                     std::to_string(run.terminals_per_router));
  row("terminals", std::to_string(run.groups * run.routers_per_group *
                                  run.terminals_per_router));
  row("simulated time", fmt_double(run.end_time / 1e3, 1) + " us");
  row("injected", human_bytes(run.total_injected()));
  row("packets", std::to_string(run.total_packets_finished()));
  if (run.has_time_series()) {
    row("sampling", fmt_double(run.sample_dt, 0) + " ns, " +
                        std::to_string(run.local_traffic_ts.frames()) +
                        " frames");
  }
  os << "</table>\n";
  body_ += os.str();
  return *this;
}

ReportBuilder& ReportBuilder::projection(const ProjectionView& view,
                                         const std::string& caption,
                                         double size_px) {
  body_ += "<figure>\n" + view.to_svg(size_px) + "<figcaption>" +
           escape(caption) + "</figcaption>\n</figure>\n";
  body_ += "<details><summary>projection spec</summary><pre>" +
           escape(view.spec().to_script()) + "</pre></details>\n";
  return *this;
}

ReportBuilder& ReportBuilder::comparison(const ComparisonView& cmp,
                                         const std::string& caption,
                                         double panel_px) {
  body_ += "<figure>\n" + cmp.to_svg(panel_px) + "<figcaption>" +
           escape(caption) + "</figcaption>\n</figure>\n";
  const auto summaries = cmp.job_summaries();
  std::ostringstream os;
  os << "<table class=\"jobs\">\n<tr><th>run</th><th>job</th>"
        "<th>avg latency (ns)</th><th>avg hops</th><th>data</th></tr>\n";
  for (std::size_t r = 0; r < summaries.size(); ++r) {
    for (const auto& s : summaries[r]) {
      os << "<tr><td>" << escape(cmp.label(r)) << "</td><td>"
         << escape(s.name) << "</td><td>" << fmt_double(s.avg_latency, 1)
         << "</td><td>" << fmt_double(s.avg_hops, 2) << "</td><td>"
         << escape(human_bytes(s.data_size)) << "</td></tr>\n";
    }
  }
  os << "</table>\n";
  body_ += os.str();
  return *this;
}

ReportBuilder& ReportBuilder::detail(const DetailView& view,
                                     const std::string& caption, double w,
                                     double h) {
  return svg(view.to_svg(w, h), caption);
}

ReportBuilder& ReportBuilder::timeline(const TimelineView& view,
                                       const std::string& caption, double w,
                                       double h) {
  return svg(view.to_svg(w, h), caption);
}

ReportBuilder& ReportBuilder::svg(const std::string& svg_markup,
                                  const std::string& caption) {
  body_ += "<figure>\n" + svg_markup + "<figcaption>" + escape(caption) +
           "</figcaption>\n</figure>\n";
  return *this;
}

ReportBuilder& ReportBuilder::query_stats(const QueryStats& stats) {
  heading("Query engine");
  std::ostringstream os;
  os << "<table class=\"meta\">\n";
  auto row = [&os](const std::string& k, std::uint64_t v) {
    os << "<tr><th>" << escape(k) << "</th><td>" << v << "</td></tr>\n";
  };
  row("cache hits", stats.hits);
  row("cache misses", stats.misses);
  row("evictions", stats.evictions);
  row("group-slab builds", stats.slab_builds);
  row("group-slab reductions", stats.slab_reduces);
  row("live entries", stats.entries);
  os << "</table>\n";
  body_ += os.str();
  return *this;
}

std::string ReportBuilder::html() const {
  std::ostringstream os;
  os << "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">\n<title>"
     << escape(title_) << "</title>\n<style>\n"
     << "body{font-family:sans-serif;max-width:1100px;margin:2em auto;"
        "color:#222}\n"
     << "figure{margin:1.5em 0;text-align:center}\n"
     << "figcaption{font-size:0.9em;color:#555;margin-top:0.4em}\n"
     << "table{border-collapse:collapse;margin:1em 0}\n"
     << "th,td{border:1px solid #ccc;padding:4px 10px;font-size:0.9em;"
        "text-align:left}\n"
     << "pre{background:#f6f6f6;padding:0.8em;overflow-x:auto;"
        "font-size:0.85em}\n"
     << "details{margin:0.5em 0}\n</style></head>\n<body>\n<h1>"
     << escape(title_) << "</h1>\n"
     << body_ << "</body></html>\n";
  return os.str();
}

void ReportBuilder::save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open report for writing: " + path);
  os << html();
  DV_REQUIRE(os.good(), "report write failed: " + path);
}

}  // namespace dv::core
