// Minimal SVG document builder — the headless rendering backend for all
// views (see DESIGN.md: the paper's interactive GUI is replaced by SVG
// output plus a programmatic interaction API).
#pragma once

#include <sstream>
#include <string>

#include "util/color.hpp"

namespace dv::core {

/// 2-D point in SVG user units.
struct Pt {
  double x = 0.0, y = 0.0;
};

/// Stroke/fill styling for a shape.
struct Style {
  Rgb fill{0, 0, 0, 0};        ///< alpha 0 = no fill
  Rgb stroke{0, 0, 0, 0};      ///< alpha 0 = no stroke
  double stroke_width = 1.0;
  double opacity = 1.0;

  static Style filled(const Rgb& c) { return {c, {0, 0, 0, 0}, 1.0, 1.0}; }
  static Style stroked(const Rgb& c, double w = 1.0) {
    return {{0, 0, 0, 0}, c, w, 1.0};
  }
};

/// Accumulates SVG elements; geometry helpers cover everything the radial
/// views need (ring sectors, chord ribbons, polylines).
class SvgDocument {
 public:
  SvgDocument(double width, double height);

  double width() const { return width_; }
  double height() const { return height_; }

  void rect(double x, double y, double w, double h, const Style& s);
  void circle(double cx, double cy, double r, const Style& s);
  void line(Pt a, Pt b, const Style& s);
  void polyline(const std::vector<Pt>& pts, const Style& s);
  /// Arbitrary path data (already in SVG path syntax).
  void path(const std::string& d, const Style& s);
  void text(double x, double y, const std::string& content, double size,
            const Rgb& color, const std::string& anchor = "start");

  /// Annular sector between radii [r0, r1] and angles [a0, a1] (radians,
  /// 0 = +x axis, growing counter-clockwise) centred on (cx, cy).
  void ring_sector(double cx, double cy, double r0, double r1, double a0,
                   double a1, const Style& s);

  /// Chord ribbon connecting angular spans [a0,a1] and [b0,b1] on a circle
  /// of radius r, with quadratic curves through the centre (the bundled
  /// link encoding of Fig. 3).
  void ribbon(double cx, double cy, double r, double a0, double a1,
              double b0, double b1, const Style& s);

  /// Start/end a <g> group (for structure and post-hoc inspection).
  void begin_group(const std::string& id);
  void end_group();

  std::string str() const;
  void save(const std::string& path) const;

  /// Number of emitted elements (used by tests).
  std::size_t element_count() const { return elements_; }

 private:
  std::string style_attrs(const Style& s) const;

  double width_, height_;
  std::ostringstream body_;
  std::size_t elements_ = 0;
  int open_groups_ = 0;
};

}  // namespace dv::core
