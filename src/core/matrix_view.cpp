#include "core/matrix_view.hpp"

#include <algorithm>
#include <cmath>

namespace dv::core {

MatrixView::MatrixView(const DataSet& data, Entity link_entity,
                       const std::string& key,
                       const std::string& value_attr)
    : value_attr_(value_attr) {
  DV_REQUIRE(link_entity == Entity::kLocalLink ||
                 link_entity == Entity::kGlobalLink,
             "matrix view needs a link entity");
  const DataTable& links = data.table(link_entity);
  const std::string src_col = key == "router"  ? "src_router"
                              : key == "group" ? "group_id"
                                               : "";
  const std::string dst_col = key == "router"  ? "dst_router"
                              : key == "group" ? "dst_group"
                                               : "";
  DV_REQUIRE(!src_col.empty(), "matrix key must be 'router' or 'group'");

  const auto& src = links.column(src_col);
  const auto& dst = links.column(dst_col);
  const auto& val = links.column(value_attr);

  double max_key = 0;
  for (std::uint32_t r = 0; r < links.rows(); ++r) {
    max_key = std::max({max_key, src[r], dst[r]});
  }
  dim_ = static_cast<std::size_t>(max_key) + 1;
  cells_.assign(dim_ * dim_, 0.0);
  for (std::uint32_t r = 0; r < links.rows(); ++r) {
    const auto i = static_cast<std::size_t>(src[r]);
    const auto j = static_cast<std::size_t>(dst[r]);
    cells_[i * dim_ + j] += val[r];
    max_ = std::max(max_, cells_[i * dim_ + j]);
  }
}

double MatrixView::at(std::size_t row, std::size_t col) const {
  DV_REQUIRE(row < dim_ && col < dim_, "matrix index out of range");
  return cells_[row * dim_ + col];
}

void MatrixView::render(SvgDocument& doc, double x, double y, double size,
                        std::size_t max_render_dim) const {
  DV_REQUIRE(dim_ <= max_render_dim,
             "matrix view does not scale to " + std::to_string(dim_) +
                 " entities (limit " + std::to_string(max_render_dim) +
                 ") — use an aggregated projection view");
  const double cell = size / static_cast<double>(dim_);
  const ColorRamp ramp = ColorRamp::from_names({"white", "purple"});
  for (std::size_t i = 0; i < dim_; ++i) {
    for (std::size_t j = 0; j < dim_; ++j) {
      const double v = cells_[i * dim_ + j];
      const Rgb c = ramp.at(max_ > 0 ? v / max_ : 0.0);
      doc.rect(x + cell * static_cast<double>(j),
               y + cell * static_cast<double>(i), cell, cell,
               Style::filled(c));
    }
  }
  doc.rect(x, y, size, size, Style::stroked(Rgb{120, 120, 120}, 0.8));
}

std::string MatrixView::to_svg(double size_px, const std::string& title,
                               std::size_t max_render_dim) const {
  SvgDocument doc(size_px, size_px + 28);
  doc.rect(0, 0, size_px, size_px + 28, Style::filled(Rgb{255, 255, 255}));
  if (!title.empty()) {
    doc.text(size_px / 2, 18, title, 13, Rgb{40, 40, 40}, "middle");
  }
  render(doc, 10, 26, size_px - 20, max_render_dim);
  return doc.str();
}

}  // namespace dv::core
