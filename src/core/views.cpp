#include "core/views.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <unordered_set>

#include "core/scales.hpp"
#include "obs/obs.hpp"
#include "util/str.hpp"

namespace dv::core {

namespace {

const Rgb kAxisColor{120, 120, 120};
const Rgb kHighlight{255, 215, 0};

/// Simple framed scatter plot of two table columns.
void render_scatter(SvgDocument& doc, const DataTable& t,
                    const std::string& xattr, const std::string& yattr,
                    const std::unordered_set<std::uint32_t>& highlight,
                    double x, double y, double w, double h,
                    const std::string& title) {
  doc.rect(x, y, w, h, Style::stroked(kAxisColor, 0.8));
  doc.text(x + 4, y + 12, title, 10, Rgb{60, 60, 60});
  const auto [xlo, xhi] = t.extent(xattr);
  const auto [ylo, yhi] = t.extent(yattr);
  const LinearScale xs(xlo, std::max(xhi, xlo + 1e-12));
  const LinearScale ys(ylo, std::max(yhi, ylo + 1e-12));
  const auto& xcol = t.column(xattr);
  const auto& ycol = t.column(yattr);
  const double pad = 8.0;
  for (std::uint32_t r = 0; r < t.rows(); ++r) {
    const double px = x + pad + xs.norm(xcol[r]) * (w - 2 * pad);
    const double py = y + h - pad - ys.norm(ycol[r]) * (h - 2 * pad - 14);
    const bool hit = highlight.count(r) > 0;
    Style s = Style::filled(hit ? kHighlight : Rgb{70, 130, 180, 160});
    doc.circle(px, py, hit ? 2.4 : 1.4, s);
  }
  doc.text(x + w - 4, y + h - 3, xattr, 8, kAxisColor, "end");
  doc.text(x + 4, y + h - 3, yattr + " ^", 8, kAxisColor);
}

}  // namespace

// ----------------------------------------------------------------- Detail

DetailView::DetailView(const DataSet& data, std::vector<std::string> pc_axes)
    : data_(&data), pc_axes_(std::move(pc_axes)) {
  if (pc_axes_.empty()) {
    pc_axes_ = {"data_size", "sat_time",   "packets_finished",
                "avg_latency", "avg_hops", "workload"};
  }
  const DataTable& t = data_->table(Entity::kTerminal);
  for (const auto& a : pc_axes_) {
    DV_REQUIRE(t.has_column(a), "parallel-coordinates axis not found: " + a);
  }
}

void DetailView::brush(const std::string& axis, double lo, double hi) {
  DV_REQUIRE(lo <= hi, "brush range inverted");
  DV_REQUIRE(std::find(pc_axes_.begin(), pc_axes_.end(), axis) !=
                 pc_axes_.end(),
             "brush on unknown axis: " + axis);
  for (auto& b : brushes_) {
    if (b.attr == axis) {
      b.lo = lo;
      b.hi = hi;
      return;
    }
  }
  brushes_.push_back(AttrFilter{axis, lo, hi});
}

void DetailView::clear_brushes() { brushes_.clear(); }

std::vector<std::uint32_t> DetailView::selected_terminals() const {
  if (explicit_selection_) return *explicit_selection_;
  const DataTable& t = data_->table(Entity::kTerminal);
  AggregationSpec spec;
  spec.filters = brushes_;
  return Aggregation(t, spec).filtered_rows();
}

void DetailView::select_terminals(std::vector<std::uint32_t> rows) {
  explicit_selection_ = std::move(rows);
}

void DetailView::clear_selection() { explicit_selection_.reset(); }

std::vector<std::uint32_t> DetailView::associated_links(
    Entity link_entity) const {
  DV_REQUIRE(link_entity == Entity::kLocalLink ||
                 link_entity == Entity::kGlobalLink,
             "associated_links needs a link entity");
  const DataTable& terms = data_->table(Entity::kTerminal);
  const auto& term_router = terms.column("router");
  std::unordered_set<double> routers;
  for (std::uint32_t r : selected_terminals()) routers.insert(term_router[r]);

  const DataTable& links = data_->table(link_entity);
  const auto& src = links.column("src_router");
  const auto& dst = links.column("dst_router");
  std::vector<std::uint32_t> out;
  for (std::uint32_t r = 0; r < links.rows(); ++r) {
    if (routers.count(src[r]) || routers.count(dst[r])) out.push_back(r);
  }
  return out;
}

void DetailView::render(SvgDocument& doc, double x, double y, double w,
                        double h) const {
  const bool has_selection =
      explicit_selection_.has_value() || !brushes_.empty();
  std::unordered_set<std::uint32_t> hi_global, hi_local, hi_terms;
  if (has_selection) {
    for (std::uint32_t r : associated_links(Entity::kGlobalLink)) {
      hi_global.insert(r);
    }
    for (std::uint32_t r : associated_links(Entity::kLocalLink)) {
      hi_local.insert(r);
    }
    for (std::uint32_t r : selected_terminals()) hi_terms.insert(r);
  }

  const double scatter_w = w * 0.27;
  const double gap = w * 0.02;
  render_scatter(doc, data_->table(Entity::kGlobalLink), "traffic",
                 "sat_time", hi_global, x, y, scatter_w, h, "Global links");
  render_scatter(doc, data_->table(Entity::kLocalLink), "traffic", "sat_time",
                 hi_local, x + scatter_w + gap, y, scatter_w, h,
                 "Local links");

  // Parallel coordinates of all terminals.
  const double pc_x = x + 2 * (scatter_w + gap);
  const double pc_w = w - 2 * (scatter_w + gap);
  doc.rect(pc_x, y, pc_w, h, Style::stroked(kAxisColor, 0.8));
  doc.text(pc_x + 4, y + 12, "Terminals", 10, Rgb{60, 60, 60});
  const DataTable& t = data_->table(Entity::kTerminal);
  const std::size_t n_axes = pc_axes_.size();
  const double pad = 14.0;
  std::vector<LinearScale> scales;
  std::vector<const std::vector<double>*> cols;
  for (const auto& a : pc_axes_) {
    const auto [lo, hi] = t.extent(a);
    scales.emplace_back(lo, std::max(hi, lo + 1e-12));
    cols.push_back(&t.column(a));
  }
  auto axis_x = [&](std::size_t i) {
    return pc_x + pad +
           (pc_w - 2 * pad) * static_cast<double>(i) /
               static_cast<double>(std::max<std::size_t>(1, n_axes - 1));
  };
  const double top = y + 22, bottom = y + h - 16;
  for (std::size_t i = 0; i < n_axes; ++i) {
    doc.line({axis_x(i), top}, {axis_x(i), bottom},
             Style::stroked(kAxisColor, 0.8));
    doc.text(axis_x(i), y + h - 4, pc_axes_[i], 7, kAxisColor, "middle");
  }
  // Brush bands.
  for (const auto& b : brushes_) {
    const auto it = std::find(pc_axes_.begin(), pc_axes_.end(), b.attr);
    const std::size_t i = static_cast<std::size_t>(it - pc_axes_.begin());
    const double y_lo = bottom - scales[i].norm(b.lo) * (bottom - top);
    const double y_hi = bottom - scales[i].norm(b.hi) * (bottom - top);
    Style s = Style::filled(Rgb{255, 215, 0, 60});
    s.stroke = kHighlight;
    s.stroke_width = 0.8;
    doc.rect(axis_x(i) - 4, y_hi, 8, y_lo - y_hi, s);
  }
  // Polylines (selected terminals drawn in job color, the rest faint).
  const auto& jobs = t.column("workload");
  for (std::uint32_t r = 0; r < t.rows(); ++r) {
    std::vector<Pt> pts;
    pts.reserve(n_axes);
    for (std::size_t i = 0; i < n_axes; ++i) {
      pts.push_back(
          {axis_x(i), bottom - scales[i].norm((*cols[i])[r]) * (bottom - top)});
    }
    const bool selected = !has_selection || hi_terms.count(r) > 0;
    Rgb c = selected ? categorical_color(static_cast<std::int64_t>(jobs[r]))
                     : Rgb{200, 200, 200};
    c.a = selected ? 120 : 40;
    doc.polyline(pts, Style::stroked(c, selected ? 0.7 : 0.4));
  }
}

std::string DetailView::to_svg(double w, double h) const {
  SvgDocument doc(w, h);
  doc.rect(0, 0, w, h, Style::filled(Rgb{255, 255, 255}));
  render(doc, 6, 6, w - 12, h - 12);
  return doc.str();
}

// ----------------------------------------------------------------- Timeline

TimelineView::TimelineView(const DataSet& data) : data_(&data) {
  DV_REQUIRE(data_->run().has_time_series(),
             "timeline view requires a sampled run (enable_sampling)");
}

double TimelineView::dt() const { return data_->run().sample_dt; }

std::size_t TimelineView::frames() const {
  return data_->run().local_traffic_ts.frames();
}

std::vector<double> TimelineView::series(const std::string& which) const {
  const metrics::RunMetrics& run = data_->run();
  const metrics::SampledSeries* s = nullptr;
  if (which == "local_traffic") s = &run.local_traffic_ts;
  else if (which == "local_sat") s = &run.local_sat_ts;
  else if (which == "global_traffic") s = &run.global_traffic_ts;
  else if (which == "global_sat") s = &run.global_sat_ts;
  else if (which == "terminal_traffic") s = &run.term_traffic_ts;
  else if (which == "terminal_sat") s = &run.term_sat_ts;
  else throw Error("unknown timeline series: " + which);
  std::vector<double> out(s->frames());
  for (std::size_t f = 0; f < s->frames(); ++f) out[f] = s->frame_total(f);
  return out;
}

void TimelineView::select_range(double t0, double t1) {
  DV_REQUIRE(t0 < t1, "empty time range");
  t0_ = t0;
  t1_ = t1;
}

void TimelineView::clear_range() { t0_ = t1_ = 0.0; }

DataSet TimelineView::slice() const {
  if (!has_selection()) return *data_;
  return data_->slice_time(t0_, t1_);
}

void TimelineView::render(SvgDocument& doc, double x, double y, double w,
                          double h) const {
  struct Panel {
    const char* title;
    std::vector<std::pair<std::string, Rgb>> lines;
  };
  const std::vector<Panel> panels = {
      {"Network link traffic (bytes)",
       {{"local_traffic", Rgb{70, 130, 180}},
        {"global_traffic", Rgb{128, 0, 128}},
        {"terminal_traffic", Rgb{46, 139, 34}}}},
      {"Link saturation (ns)",
       {{"local_sat", Rgb{70, 130, 180}},
        {"global_sat", Rgb{128, 0, 128}},
        {"terminal_sat", Rgb{46, 139, 34}}}},
  };
  const double ph = h / static_cast<double>(panels.size());
  const double end_time = data_->run().end_time;
  for (std::size_t p = 0; p < panels.size(); ++p) {
    const double py = y + ph * static_cast<double>(p);
    doc.rect(x, py, w, ph - 4, Style::stroked(kAxisColor, 0.8));
    doc.text(x + 4, py + 11, panels[p].title, 9, Rgb{60, 60, 60});
    double legend_x = x + w - 4;
    for (auto it = panels[p].lines.rbegin(); it != panels[p].lines.rend();
         ++it) {
      doc.text(legend_x, py + 11, it->first, 8, it->second, "end");
      legend_x -= 90;
    }
    for (const auto& [name, color] : panels[p].lines) {
      const auto s = series(name);
      if (s.empty()) continue;
      double peak = 0.0;
      for (double v : s) peak = std::max(peak, v);
      if (peak <= 0) peak = 1.0;
      std::vector<Pt> pts;
      pts.reserve(s.size());
      for (std::size_t f = 0; f < s.size(); ++f) {
        const double fx =
            x + w * (static_cast<double>(f) + 0.5) * dt() / std::max(end_time, dt());
        const double fy = py + (ph - 8) - (ph - 24) * (s[f] / peak);
        pts.push_back({fx, fy});
      }
      doc.polyline(pts, Style::stroked(color, 1.0));
    }
    if (has_selection()) {
      const double sx0 = x + w * t0_ / std::max(end_time, dt());
      const double sx1 = x + w * t1_ / std::max(end_time, dt());
      doc.rect(sx0, py + 2, sx1 - sx0, ph - 8,
               Style::filled(Rgb{255, 215, 0, 50}));
    }
  }
}

std::string TimelineView::to_svg(double w, double h) const {
  SvgDocument doc(w, h);
  doc.rect(0, 0, w, h, Style::filled(Rgb{255, 255, 255}));
  render(doc, 6, 6, w - 12, h - 12);
  return doc.str();
}

// ----------------------------------------------------------------- Session

AnalysisSession::AnalysisSession(DataSet data, ProjectionSpec spec)
    : data_(std::move(data)), spec_(std::move(spec)) {
  engine_.emplace(data_);
  rebuild();
}

void AnalysisSession::rebuild() {
  DV_OBS_PHASE("session/rebuild");
  const bool windowed = sel_t0_ < sel_t1_;

  // The detail view plots raw per-entity values, so it reads a sliced copy
  // of the dataset; memoize it on the selected range so brush changes do
  // not re-slice.
  if (!windowed) {
    current_data_.reset();
  } else if (!current_data_ || slice_t0_ != sel_t0_ || slice_t1_ != sel_t1_) {
    current_data_ = data_.slice_time(sel_t0_, sel_t1_);
    slice_t0_ = sel_t0_;
    slice_t1_ = sel_t1_;
  }
  const DataSet& detail_data = windowed ? *current_data_ : data_;

  // Apply detail brushes as terminal-entity filters on the projection
  // (paper: brushing updates the projection to the selected data). The
  // selected time range becomes the spec window, so the projection
  // re-aggregates through the engine's prefix slabs instead of a fresh
  // dataset rebuild.
  ProjectionSpec spec = spec_;
  if (windowed) spec.window = TimeWindow{sel_t0_, sel_t1_};
  if (detail_) {
    for (auto& lvl : spec.levels) {
      if (lvl.entity != Entity::kTerminal) continue;
      for (const auto& b : detail_->brushes()) lvl.filters.push_back(b);
    }
  }
  std::vector<AttrFilter> saved_brushes;
  if (detail_) saved_brushes = detail_->brushes();

  projection_.emplace(data_, spec, nullptr, &*engine_);
  detail_.emplace(detail_data);
  for (const auto& b : saved_brushes) detail_->brush(b.attr, b.lo, b.hi);
  if (data_.run().has_time_series()) {
    timeline_.emplace(data_);
    if (sel_t0_ < sel_t1_) timeline_->select_range(sel_t0_, sel_t1_);
  }
}

void AnalysisSession::select_time_range(double t0, double t1) {
  DV_REQUIRE(data_.run().has_time_series(),
             "time-range selection requires a sampled run");
  sel_t0_ = t0;
  sel_t1_ = t1;
  rebuild();
}

void AnalysisSession::clear_time_range() {
  sel_t0_ = sel_t1_ = 0.0;
  rebuild();
}

void AnalysisSession::brush(const std::string& axis, double lo, double hi) {
  if (!detail_) rebuild();
  detail_->brush(axis, lo, hi);
  rebuild();
}

void AnalysisSession::clear_brushes() {
  if (detail_) detail_->clear_brushes();
  rebuild();
}

void AnalysisSession::select_aggregate(std::size_t ring, std::size_t item) {
  const auto rows = projection_->select(ring, item);
  const Entity entity = projection_->rings()[ring].spec.entity;
  if (entity == Entity::kTerminal) {
    detail_->select_terminals(rows);
    // Highlight the links that carry this selection's traffic.
    projection_->clear_highlight();
    projection_->highlight(Entity::kTerminal, rows);
    projection_->highlight(Entity::kLocalLink,
                           detail_->associated_links(Entity::kLocalLink));
    projection_->highlight(Entity::kGlobalLink,
                           detail_->associated_links(Entity::kGlobalLink));
  } else {
    projection_->clear_highlight();
    projection_->highlight(entity, rows);
  }
}

std::string AnalysisSession::to_svg(double width, double height) const {
  SvgDocument doc(width, height);
  doc.rect(0, 0, width, height, Style::filled(Rgb{255, 255, 255}));
  const double timeline_h = timeline_ ? height * 0.24 : 0.0;
  const double top_h = height - timeline_h;
  const double proj_size = std::min(top_h, width * 0.45);
  doc.text(10, 16, "dragonviz — " + data_.run().workload + " / " +
                       data_.run().routing + " / " + data_.run().placement,
           12, Rgb{40, 40, 40});
  projection_->render(doc, proj_size / 2 + 8, top_h / 2 + 8,
                      proj_size * 0.46);
  detail_->render(doc, proj_size + 24, 28, width - proj_size - 36,
                  top_h - 40);
  if (timeline_) {
    timeline_->render(doc, 10, top_h + 4, width - 20, timeline_h - 10);
  }
  return doc.str();
}

void AnalysisSession::save_svg(const std::string& path, double width,
                               double height) const {
  std::ofstream os(path, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open svg for writing: " + path);
  os << to_svg(width, height);
  DV_REQUIRE(os.good(), "svg write failed: " + path);
}

}  // namespace dv::core
