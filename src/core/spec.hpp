// Projection-view specifications (Sec. IV-B2/B3 of the paper).
//
// A projection view is specified as an ordered list of levels; each level
// selects an entity (`project`), a grouping (`aggregate`, one or more
// attributes, optionally `maxBins`-rebinned), a visual mapping (`vmap`:
// color / size / x / y), a color ramp (`colors`) and optional `filter`
// ranges — exactly the key-value script syntax of Fig. 5. A builder API
// mirrors the visual interface of Fig. 4(a).
//
// The plot type of a ring follows the paper's rule — it is chosen from the
// number of visual encodings the user defined: 1 → 1-D heatmap,
// 2 → bar chart, 3 → 2-D heatmap, 4 → scatter plot.
#pragma once

#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/datatable.hpp"
#include "json/json.hpp"

namespace dv::core {

/// Attribute → visual channel assignment (empty string = channel unused).
struct VisualMapping {
  std::string color;
  std::string size;
  std::string x;
  std::string y;

  std::size_t channel_count() const;
};

enum class PlotType { kHeatmap1D, kBarChart, kHeatmap2D, kScatter };
std::string to_string(PlotType t);

/// One ring of the hierarchical radial visualization.
struct LevelSpec {
  Entity entity = Entity::kRouter;         // project
  std::vector<std::string> aggregate;      // group-by attrs; empty = per-entity
  std::size_t max_bins = 0;                // maxBins
  std::vector<AttrFilter> filters;         // filter
  VisualMapping vmap;                      // vmap
  std::vector<std::string> colors;         // color ramp stop names
  bool border = true;

  PlotType plot_type() const;
  AggregationSpec aggregation_spec() const;
};

/// Ribbons in the centre of the radial layout (Fig. 3): network links
/// bundled between aggregate groups identified by `key` — "router_rank"
/// (Fig. 4), "group_id" (Fig. 9), or "job" (Fig. 13).
struct RibbonSpec {
  bool enabled = true;
  Entity entity = Entity::kLocalLink;      // kLocalLink or kGlobalLink
  std::string key = "router_rank";
  std::string size_attr = "traffic";
  std::string color_attr = "sat_time";
  std::vector<std::string> colors = {"white", "steelblue"};
};

struct ProjectionSpec {
  std::vector<LevelSpec> levels;
  RibbonSpec ribbons;
  /// Restricts sampled metrics to [t0, t1) in every level and the ribbons
  /// (script entry: { window: [t0, t1] }). Inactive by default.
  TimeWindow window;

  /// Parses a Fig. 5-style script (relaxed JSON; a comma-separated list of
  /// level objects, optionally with one "ribbons" object).
  static ProjectionSpec parse(const std::string& script);
  static ProjectionSpec from_json(const json::Value& v);
  json::Value to_json() const;
  /// Round-trippable script (the paper's "save the specification ... for
  /// analyzing another dataset or comparing between datasets").
  std::string to_script() const;
};

/// Fluent builder mirroring the paper's visual interface (Fig. 4a).
class SpecBuilder {
 public:
  /// Starts a new level projecting `entity`.
  SpecBuilder& level(Entity entity);
  SpecBuilder& aggregate(std::vector<std::string> keys);
  SpecBuilder& max_bins(std::size_t n);
  SpecBuilder& filter(const std::string& attr, double lo, double hi);
  /// One-sided / unbounded filters (omitted bounds stay infinite).
  SpecBuilder& filter_min(const std::string& attr, double lo);
  SpecBuilder& filter_max(const std::string& attr, double hi);
  SpecBuilder& color(const std::string& attr);
  SpecBuilder& size(const std::string& attr);
  SpecBuilder& x(const std::string& attr);
  SpecBuilder& y(const std::string& attr);
  SpecBuilder& colors(std::vector<std::string> ramp);
  SpecBuilder& no_border();

  SpecBuilder& ribbons(Entity entity, const std::string& key,
                       const std::string& size_attr = "traffic",
                       const std::string& color_attr = "sat_time");
  SpecBuilder& ribbon_colors(std::vector<std::string> ramp);
  SpecBuilder& no_ribbons();

  /// Restricts the whole projection to the time range [t0, t1).
  SpecBuilder& window(double t0, double t1);

  ProjectionSpec build() const;

 private:
  LevelSpec& current();

  ProjectionSpec spec_;
  bool has_level_ = false;
};

}  // namespace dv::core
