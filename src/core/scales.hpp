// Visual-encoding scales.
//
// When the paper's system compares datasets, "the scale for visual encoding
// uses the same minimum and maximum values, which ensures fair comparison"
// (Sec. IV-B2). ScaleSet captures per-(entity, attribute, level) domains and
// can be unioned across runs to implement exactly that.
#pragma once

#include <map>
#include <string>

#include "util/common.hpp"

namespace dv::core {

/// Linear domain→[0,1] normalization with clamping.
class LinearScale {
 public:
  LinearScale() = default;
  LinearScale(double lo, double hi);

  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Normalized position in [0,1]; degenerate domains map to 0.
  double norm(double v) const;

  /// Extends the domain to cover v.
  void include(double v);
  /// Union with another scale's domain.
  void merge(const LinearScale& other);

  bool valid() const { return hi_ >= lo_; }

 private:
  double lo_ = 0.0;
  double hi_ = -1.0;  // invalid until set
};

/// Domains keyed by an arbitrary string key (the projection layer uses
/// "level<i>/<channel>" so the same spec applied to two runs shares scales
/// channel-by-channel).
class ScaleSet {
 public:
  bool has(const std::string& key) const { return scales_.count(key) > 0; }
  const LinearScale& at(const std::string& key) const;
  LinearScale& get_or_add(const std::string& key);

  /// Unions every domain of `other` into this set (cross-run comparison).
  void merge(const ScaleSet& other);

  std::size_t size() const { return scales_.size(); }
  auto begin() const { return scales_.begin(); }
  auto end() const { return scales_.end(); }

 private:
  std::map<std::string, LinearScale> scales_;
};

}  // namespace dv::core
