// Cross-run comparison (Sec. III / IV-B2 of the paper).
//
// "Our system also provides effective visualizations for comparing
// simulation results between different network configurations ... When
// comparing different datasets, the scale for visual encoding uses the
// same minimum and maximum values, which ensures fair comparison."
//
// ComparisonView applies one projection spec to several runs, computes the
// union of every channel's domain, rebuilds each view against the shared
// scales, and renders them side by side. It also derives per-job summary
// statistics (the numbers behind Fig. 13d).
#pragma once

#include <string>
#include <vector>

#include "core/projection.hpp"
#include "core/views.hpp"

namespace dv::core {

/// Per-job summary of one run (avg over the job's terminals, weighted by
/// finished packets for latency/hops).
struct JobSummary {
  std::int32_t job = -1;
  std::string name;
  std::uint64_t terminals = 0;
  double data_size = 0.0;
  double avg_latency = 0.0;
  double avg_hops = 0.0;
  double sat_time = 0.0;
};

std::vector<JobSummary> summarize_jobs(const DataSet& data);

class ComparisonView {
 public:
  /// Datasets must stay alive for the view's lifetime.
  ComparisonView(std::vector<const DataSet*> runs, ProjectionSpec spec,
                 std::vector<std::string> labels = {});

  std::size_t run_count() const { return views_.size(); }
  const ProjectionView& view(std::size_t i) const;
  const ScaleSet& shared_scales() const { return shared_; }
  const std::string& label(std::size_t i) const { return labels_[i]; }

  /// Side-by-side render of every run under the shared scales.
  std::string to_svg(double panel_px = 520) const;
  void save_svg(const std::string& path, double panel_px = 520) const;

  /// Per-run, per-job summaries (rows of a Fig. 13d-style table).
  std::vector<std::vector<JobSummary>> job_summaries() const;

 private:
  std::vector<const DataSet*> runs_;
  ProjectionSpec spec_;
  std::vector<std::string> labels_;
  ScaleSet shared_;
  std::vector<ProjectionView> views_;
};

}  // namespace dv::core
