#include "util/threadpool.hpp"

#include <algorithm>

#include "util/common.hpp"

namespace dv {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DV_REQUIRE(!stop_, "submit on stopped pool");
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = std::max<std::size_t>(1, n / (pool.size() * 4));
  for (std::size_t begin = 0; begin < n; begin += grain) {
    const std::size_t end = std::min(n, begin + grain);
    pool.submit([begin, end, &fn] {
      for (std::size_t i = begin; i < end; ++i) fn(i);
    });
  }
  pool.wait_idle();
}

}  // namespace dv
