// Color types and interpolating color scales for the visualization layer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dv {

/// 8-bit sRGB color with alpha.
struct Rgb {
  std::uint8_t r = 0, g = 0, b = 0, a = 255;

  bool operator==(const Rgb&) const = default;

  /// "#rrggbb" (alpha omitted when fully opaque, else "#rrggbbaa").
  std::string hex() const;
};

/// Parses "#rgb", "#rrggbb", "#rrggbbaa" or a known CSS color name
/// (the palette used in the paper's figures: white, purple, steelblue,
/// green, orange, brown, ... ). Throws dv::Error on unknown input.
Rgb parse_color(const std::string& s);

/// Linear interpolation in sRGB (matches the paper's "linearly interpolated
/// from white to blue" encoding).
Rgb lerp(const Rgb& a, const Rgb& b, double t);

/// Piecewise-linear multi-stop color scale over t in [0,1].
class ColorRamp {
 public:
  /// Stops are evenly spaced; at least one required.
  explicit ColorRamp(std::vector<Rgb> stops);
  static ColorRamp from_names(const std::vector<std::string>& names);

  Rgb at(double t) const;
  std::size_t stop_count() const { return stops_.size(); }
  const Rgb& stop(std::size_t i) const { return stops_[i]; }

 private:
  std::vector<Rgb> stops_;
};

}  // namespace dv
