// Vectorized inner loops for the VA-side aggregation hot path.
//
// Every kernel here is a drop-in replacement for a scalar loop somewhere in
// the metrics / core layers, with one hard contract: **bit-identical
// output**. Floating-point addition is not associative, so kernels that
// accumulate (range sums, group reductions) keep the exact accumulation
// order of the scalar code they replace and win through pointer hoisting,
// `restrict`, and bounds-check elimination instead of lane reordering.
// Kernels whose lanes are independent (the prefix-slab build, filter
// predicate masks, min/max zone maps, histogram bin indices) additionally
// carry explicit SSE2 paths — SSE2 is baseline on x86-64, and per-lane
// results are unaffected by evaluation order, so the SIMD and scalar paths
// agree bit for bit. tests/test_dvr.cpp pins each kernel against its naive
// scalar twin.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <emmintrin.h>
#define DV_KERNELS_SSE2 1
#else
#define DV_KERNELS_SSE2 0
#endif

#if defined(__GNUC__) || defined(__clang__)
#define DV_RESTRICT __restrict__
#else
#define DV_RESTRICT
#endif

namespace dv::kernels {

/// One frame of the prefix-slab build: next[i] = prev[i] + frame[i] with
/// the float widened to double first — exactly the arithmetic of
/// PrefixSeries' scalar loop. Lanes are independent, so the SSE2 path
/// (two doubles per step, cvtps->pd widening) is bit-identical.
inline void prefix_add_frame(const float* DV_RESTRICT frame,
                             const double* DV_RESTRICT prev,
                             double* DV_RESTRICT next, std::size_t n) {
  std::size_t i = 0;
#if DV_KERNELS_SSE2
  for (; i + 4 <= n; i += 4) {
    const __m128 f = _mm_loadu_ps(frame + i);
    const __m128d flo = _mm_cvtps_pd(f);
    const __m128d fhi = _mm_cvtps_pd(_mm_movehl_ps(f, f));
    _mm_storeu_pd(next + i, _mm_add_pd(_mm_loadu_pd(prev + i), flo));
    _mm_storeu_pd(next + i + 2,
                  _mm_add_pd(_mm_loadu_pd(prev + i + 2), fhi));
  }
#endif
  for (; i < n; ++i) next[i] = prev[i] + static_cast<double>(frame[i]);
}

/// Strided sum of data[f * stride + offset] over f in [f0, f1) — the
/// SampledSeries::range_sum loop. The adds form a sequential dependence
/// chain (order is the contract), so this stays scalar; the win over the
/// original is hoisting the base pointer and stride math out of the loop.
inline double strided_sum(const float* DV_RESTRICT data, std::size_t stride,
                          std::size_t offset, std::size_t f0,
                          std::size_t f1) {
  const float* DV_RESTRICT p = data + f0 * stride + offset;
  double acc = 0.0;
  for (std::size_t f = f0; f < f1; ++f, p += stride) {
    acc += static_cast<double>(*p);
  }
  return acc;
}

/// Contiguous sum, preserving left-to-right accumulation order.
inline double sum_span(const float* DV_RESTRICT p, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += static_cast<double>(p[i]);
  return acc;
}

/// ANDs `keep[i] &= !(col[i] < lo || col[i] > hi)` over the span — the
/// aggregation filter pass, one column at a time. The predicate is kept in
/// the scalar filter's *negated* form (reject below/above) rather than the
/// equivalent-looking `lo <= v && v <= hi` so a NaN cell behaves exactly as
/// the original row loop: both ordered compares are false, the row is kept.
/// Pure per-lane work, so the SSE2 path is trivially bit-identical.
inline void filter_range_mask(const double* DV_RESTRICT col, std::size_t n,
                              double lo, double hi,
                              unsigned char* DV_RESTRICT keep) {
  std::size_t i = 0;
#if DV_KERNELS_SSE2
  const __m128d vlo = _mm_set1_pd(lo);
  const __m128d vhi = _mm_set1_pd(hi);
  for (; i + 2 <= n; i += 2) {
    const __m128d v = _mm_loadu_pd(col + i);
    const __m128d bad =
        _mm_or_pd(_mm_cmplt_pd(v, vlo), _mm_cmpgt_pd(v, vhi));
    const int mask = _mm_movemask_pd(bad);
    keep[i] &= static_cast<unsigned char>(~mask & 1);
    keep[i + 1] &= static_cast<unsigned char>((~mask >> 1) & 1);
  }
#endif
  for (; i < n; ++i) {
    keep[i] &= static_cast<unsigned char>(!(col[i] < lo || col[i] > hi));
  }
}

/// Min/max over a span (the zone-map builder). min/max are commutative and
/// associative (no NaNs in metric columns), so lane order is free.
inline void minmax_f32(const float* DV_RESTRICT p, std::size_t n,
                       float& out_min, float& out_max) {
  float lo = n ? p[0] : 0.0f;
  float hi = lo;
  std::size_t i = 0;
#if DV_KERNELS_SSE2
  if (n >= 4) {
    __m128 vlo = _mm_loadu_ps(p);
    __m128 vhi = vlo;
    for (i = 4; i + 4 <= n; i += 4) {
      const __m128 v = _mm_loadu_ps(p + i);
      vlo = _mm_min_ps(vlo, v);
      vhi = _mm_max_ps(vhi, v);
    }
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, vlo);
    lo = tmp[0];
    for (int k = 1; k < 4; ++k) lo = tmp[k] < lo ? tmp[k] : lo;
    _mm_store_ps(tmp, vhi);
    hi = tmp[0];
    for (int k = 1; k < 4; ++k) hi = tmp[k] > hi ? tmp[k] : hi;
  }
#endif
  for (; i < n; ++i) {
    lo = p[i] < lo ? p[i] : lo;
    hi = p[i] > hi ? p[i] : hi;
  }
  out_min = lo;
  out_max = hi;
}

inline void minmax_f64(const double* DV_RESTRICT p, std::size_t n,
                       double& out_min, double& out_max) {
  double lo = n ? p[0] : 0.0;
  double hi = lo;
  std::size_t i = 0;
#if DV_KERNELS_SSE2
  if (n >= 2) {
    __m128d vlo = _mm_loadu_pd(p);
    __m128d vhi = vlo;
    for (i = 2; i + 2 <= n; i += 2) {
      const __m128d v = _mm_loadu_pd(p + i);
      vlo = _mm_min_pd(vlo, v);
      vhi = _mm_max_pd(vhi, v);
    }
    alignas(16) double tmp[2];
    _mm_store_pd(tmp, vlo);
    lo = tmp[0] < tmp[1] ? tmp[0] : tmp[1];
    _mm_store_pd(tmp, vhi);
    hi = tmp[0] > tmp[1] ? tmp[0] : tmp[1];
  }
#endif
  for (; i < n; ++i) {
    lo = p[i] < lo ? p[i] : lo;
    hi = p[i] > hi ? p[i] : hi;
  }
  out_min = lo;
  out_max = hi;
}

/// Gathered sum col[rows[i]] for i in [0, n) — the group-by kSum inner
/// loop. Sequential accumulation order is the bit-identity contract, so no
/// lane reordering; `restrict` + a hoisted base pointer let the compiler
/// keep the accumulator in a register and software-pipeline the gathers.
inline double gather_sum(const double* DV_RESTRICT col,
                         const std::uint32_t* DV_RESTRICT rows,
                         std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += col[rows[i]];
  return acc;
}

/// Histogram bin indices for a batch. The per-lane expression mirrors
/// Histogram::bin_of term for term ((x-lo)/(hi-lo) first, scale second) so
/// borderline values land in the same bin; only the per-call dispatch
/// overhead is amortized. The caller accumulates counts in input order, so
/// batching the index math changes nothing.
inline void histogram_bins(const double* DV_RESTRICT xs, std::size_t n,
                           double lo, double hi, std::size_t bins,
                           std::uint32_t* DV_RESTRICT out) {
  const double width = hi - lo;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = xs[i];
    std::size_t b;
    if (x <= lo) {
      b = 0;
    } else if (x >= hi) {
      b = bins - 1;
    } else {
      const double f = (x - lo) / width;
      b = static_cast<std::size_t>(f * static_cast<double>(bins));
      if (b >= bins) b = bins - 1;
    }
    out[i] = static_cast<std::uint32_t>(b);
  }
}

}  // namespace dv::kernels
