#include "util/str.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace dv {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         std::equal(prefix.begin(), prefix.end(), s.begin());
}

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

std::string human_bytes(double bytes) {
  static const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 5) {
    bytes /= 1024.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), bytes < 10 ? "%.2f %s" : "%.1f %s", bytes,
                units[u]);
  return buf;
}

std::string fmt_double(double v, int max_decimals) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", max_decimals, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace dv
