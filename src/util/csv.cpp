#include "util/csv.hpp"

#include <ostream>
#include <sstream>

#include "util/common.hpp"

namespace dv {

std::size_t CsvTable::col_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw Error("csv column not found: " + name);
}

namespace {

void write_field(std::ostream& os, const std::string& f) {
  const bool needs_quote =
      f.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quote) {
    os << f;
    return;
  }
  os << '"';
  for (char c : f) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

void write_row(std::ostream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i) os << ',';
    write_field(os, row[i]);
  }
  os << '\n';
}

}  // namespace

void write_csv(std::ostream& os, const CsvTable& table) {
  write_row(os, table.header);
  for (const auto& row : table.rows) write_row(os, row);
}

std::string to_csv_string(const CsvTable& table) {
  std::ostringstream os;
  write_csv(os, table);
  return os.str();
}

CsvTable parse_csv(const std::string& text) {
  CsvTable out;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool row_has_data = false;

  auto end_field = [&] {
    row.push_back(field);
    field.clear();
  };
  auto end_row = [&] {
    end_field();
    if (out.header.empty()) {
      out.header = row;
    } else {
      out.rows.push_back(row);
    }
    row.clear();
    row_has_data = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_data = true;
        break;
      case ',':
        end_field();
        row_has_data = true;
        break;
      case '\r':
        break;
      case '\n':
        if (row_has_data || !field.empty() || !row.empty()) end_row();
        break;
      default:
        field.push_back(c);
        row_has_data = true;
    }
  }
  if (row_has_data || !field.empty() || !row.empty()) end_row();
  DV_REQUIRE(!in_quotes, "unterminated quoted csv field");
  return out;
}

}  // namespace dv
