// Tiny CSV reader/writer used by the metrics layer for result export and by
// tests for round-tripping.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dv {

/// In-memory CSV table: a header row plus string cells.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t col_index(const std::string& name) const;  // throws if missing
};

/// Writes with minimal quoting (fields containing , " or newline get quoted).
void write_csv(std::ostream& os, const CsvTable& table);
std::string to_csv_string(const CsvTable& table);

/// Parses CSV with quoted-field support; first row is the header.
CsvTable parse_csv(const std::string& text);

}  // namespace dv
