#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/kernels.hpp"

namespace dv {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void Accumulator::merge(const Accumulator& o) {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += o.m2_ + delta * delta * na * nb / nt;
  n_ += o.n_;
  sum_ += o.sum_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0.0) {
  DV_REQUIRE(bins > 0, "histogram needs at least one bin");
  DV_REQUIRE(hi > lo, "histogram range must be non-empty");
}

std::size_t Histogram::bin_of(double x) const {
  if (x <= lo_) return 0;
  if (x >= hi_) return counts_.size() - 1;
  const double f = (x - lo_) / (hi_ - lo_);
  const auto b = static_cast<std::size_t>(f * static_cast<double>(counts_.size()));
  return std::min(b, counts_.size() - 1);
}

void Histogram::add(double x, double weight) {
  counts_[bin_of(x)] += weight;
  total_ += weight;
}

void Histogram::add_n(const double* xs, std::size_t n) {
  std::vector<std::uint32_t> bins(n);
  kernels::histogram_bins(xs, n, lo_, hi_, counts_.size(), bins.data());
  for (std::size_t i = 0; i < n; ++i) counts_[bins[i]] += 1.0;
  total_ += static_cast<double>(n);
}

double Histogram::bin_lo(std::size_t b) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(b) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const { return bin_lo(b + 1); }

namespace {

/// Average ranks (1-based, ties share their mean rank).
std::vector<double> average_ranks(const std::vector<double>& xs) {
  const std::size_t n = xs.size();
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    const double r = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = r;
    i = j + 1;
  }
  return ranks;
}

}  // namespace

double spearman(const std::vector<double>& xs, const std::vector<double>& ys) {
  DV_REQUIRE(xs.size() == ys.size(), "spearman needs equal-length series");
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const std::vector<double> rx = average_ranks(xs);
  const std::vector<double> ry = average_ranks(ys);
  // Pearson on the ranks (handles ties correctly, unlike the d^2 formula).
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += rx[i];
    my += ry[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = rx[i] - mx;
    const double dy = ry[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double percentile(std::vector<double> values, double q) {
  DV_REQUIRE(!values.empty(), "percentile of empty set");
  DV_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace dv
