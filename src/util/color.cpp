#include "util/color.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_map>

#include "util/common.hpp"
#include "util/str.hpp"

namespace dv {

std::string Rgb::hex() const {
  char buf[16];
  if (a == 255) {
    std::snprintf(buf, sizeof(buf), "#%02x%02x%02x", r, g, b);
  } else {
    std::snprintf(buf, sizeof(buf), "#%02x%02x%02x%02x", r, g, b, a);
  }
  return buf;
}

namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw Error(std::string("invalid hex digit in color: ") + c);
}

const std::unordered_map<std::string, Rgb>& named_colors() {
  static const std::unordered_map<std::string, Rgb> table = {
      {"white", {255, 255, 255}},   {"black", {0, 0, 0}},
      {"red", {255, 0, 0}},         {"green", {0, 128, 0}},
      {"blue", {0, 0, 255}},        {"purple", {128, 0, 128}},
      {"steelblue", {70, 130, 180}},{"orange", {255, 165, 0}},
      {"brown", {165, 42, 42}},     {"gray", {128, 128, 128}},
      {"grey", {128, 128, 128}},    {"lightgray", {211, 211, 211}},
      {"yellow", {255, 255, 0}},    {"gold", {255, 215, 0}},
      {"teal", {0, 128, 128}},      {"navy", {0, 0, 128}},
      {"crimson", {220, 20, 60}},   {"darkgreen", {0, 100, 0}},
      {"magenta", {255, 0, 255}},   {"cyan", {0, 255, 255}},
      {"pink", {255, 192, 203}},    {"olive", {128, 128, 0}},
  };
  return table;
}

}  // namespace

Rgb parse_color(const std::string& raw) {
  const std::string s = to_lower(trim(raw));
  DV_REQUIRE(!s.empty(), "empty color string");
  if (s[0] == '#') {
    const std::string h = s.substr(1);
    auto byte = [&](std::size_t i) {
      return static_cast<std::uint8_t>(hex_digit(h[i]) * 16 +
                                       hex_digit(h[i + 1]));
    };
    if (h.size() == 3) {
      auto nib = [&](std::size_t i) {
        return static_cast<std::uint8_t>(hex_digit(h[i]) * 17);
      };
      return {nib(0), nib(1), nib(2), 255};
    }
    if (h.size() == 6) return {byte(0), byte(2), byte(4), 255};
    if (h.size() == 8) return {byte(0), byte(2), byte(4), byte(6)};
    throw Error("invalid hex color length: " + raw);
  }
  const auto& table = named_colors();
  const auto it = table.find(s);
  if (it == table.end()) throw Error("unknown color name: " + raw);
  return it->second;
}

Rgb lerp(const Rgb& a, const Rgb& b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  auto mix = [t](std::uint8_t x, std::uint8_t y) {
    return static_cast<std::uint8_t>(
        std::lround(static_cast<double>(x) +
                    (static_cast<double>(y) - static_cast<double>(x)) * t));
  };
  return {mix(a.r, b.r), mix(a.g, b.g), mix(a.b, b.b), mix(a.a, b.a)};
}

ColorRamp::ColorRamp(std::vector<Rgb> stops) : stops_(std::move(stops)) {
  DV_REQUIRE(!stops_.empty(), "color ramp needs at least one stop");
}

ColorRamp ColorRamp::from_names(const std::vector<std::string>& names) {
  std::vector<Rgb> stops;
  stops.reserve(names.size());
  for (const auto& n : names) stops.push_back(parse_color(n));
  return ColorRamp(std::move(stops));
}

Rgb ColorRamp::at(double t) const {
  if (stops_.size() == 1) return stops_[0];
  t = std::clamp(t, 0.0, 1.0);
  const double pos = t * static_cast<double>(stops_.size() - 1);
  const auto lo = std::min(static_cast<std::size_t>(pos), stops_.size() - 2);
  return lerp(stops_[lo], stops_[lo + 1], pos - static_cast<double>(lo));
}

}  // namespace dv
