#include "util/rng.hpp"

#include <cmath>

namespace dv {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed, std::uint64_t stream) {
  // Mix seed and stream so that nearby (seed, stream) pairs diverge.
  std::uint64_t state = seed ^ (0x6a09e667f3bcc909ULL * (stream + 1));
  for (auto& s : s_) s = splitmix64(state);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  DV_REQUIRE(bound > 0, "next_below with zero bound");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  DV_REQUIRE(lo <= hi, "next_range with lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

bool Rng::next_bool(double p) { return next_double() < p; }

double Rng::next_exponential(double mean) {
  DV_REQUIRE(mean > 0, "exponential mean must be positive");
  double u = next_double();
  if (u <= 0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

double Rng::next_normal() {
  double u1 = next_double();
  if (u1 <= 0) u1 = 0x1.0p-53;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace dv
