// Small string helpers (formatting, splitting) shared across modules.
#pragma once

#include <string>
#include <vector>

namespace dv {

std::vector<std::string> split(const std::string& s, char sep);
std::string trim(const std::string& s);
std::string join(const std::vector<std::string>& parts, const std::string& sep);
bool starts_with(const std::string& s, const std::string& prefix);
std::string to_lower(std::string s);

/// "1.2 GB"-style human readable byte count.
std::string human_bytes(double bytes);

/// Fixed-precision double formatting without trailing-zero noise.
std::string fmt_double(double v, int max_decimals = 6);

}  // namespace dv
