// Streaming statistics and histograms used by metrics collection and the
// aggregation layer.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "util/common.hpp"

namespace dv {

/// Streaming accumulator: count/sum/min/max plus Welford mean & variance.
class Accumulator {
 public:
  void add(double x);
  void merge(const Accumulator& other);

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-range equal-width histogram.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0);
  /// Batch insert with unit weight: bin indices are computed in one
  /// vectorizable pass (kernels::histogram_bins), then counts accumulate
  /// in input order — equivalent to calling add(xs[i]) for each i.
  void add_n(const double* xs, std::size_t n);
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t b) const;
  double bin_hi(std::size_t b) const;
  double count(std::size_t b) const { return counts_[b]; }
  double total() const { return total_; }
  /// Index of the bin x falls in (clamped to the range).
  std::size_t bin_of(double x) const;

 private:
  double lo_, hi_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

/// Exact percentile (sorts a copy). q in [0,1].
double percentile(std::vector<double> values, double q);

/// Spearman rank correlation of two equal-length series (average ranks for
/// ties). Returns 0 when either series is constant or shorter than 2 —
/// degenerate inputs carry no ordering information.
double spearman(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace dv
