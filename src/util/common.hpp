// Common error-handling and basic types shared by all dragonviz modules.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace dv {

/// Error thrown for violated preconditions and invalid user input.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void fail(const char* kind, const char* expr, const char* file,
                       int line, const std::string& msg);
}  // namespace detail

/// Precondition check on user-facing API boundaries; throws dv::Error.
#define DV_REQUIRE(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) ::dv::detail::fail("requirement", #cond, __FILE__,        \
                                    __LINE__, (msg));                      \
  } while (0)

/// Internal invariant check; throws dv::Error (kept on in release builds —
/// simulation correctness matters more than the branch cost).
#define DV_CHECK(cond, msg)                                                \
  do {                                                                     \
    if (!(cond)) ::dv::detail::fail("invariant", #cond, __FILE__,          \
                                    __LINE__, (msg));                      \
  } while (0)

/// Simulated time in nanoseconds.
using SimTime = double;

}  // namespace dv
