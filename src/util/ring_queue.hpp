// Ring-buffer index queue.
//
// netsim's per-port VC queues and per-terminal message lists are FIFO
// almost everywhere but occasionally erase from the middle (VC
// arbitration picks the first sendable packet). std::deque pays a heap
// allocation roughly every 64 entries for that; this ring buffer keeps a
// power-of-two storage block, grows geometrically, and supports indexed
// access plus middle erasure by shifting toward whichever end is nearer.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "util/common.hpp"

namespace dv {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push_back(const T& v) {
    if (size_ == buf_.size()) grow();
    buf_[wrap(head_ + size_)] = v;
    ++size_;
  }

  T& front() {
    DV_CHECK(size_ != 0, "front() on an empty ring queue");
    return buf_[head_];
  }
  const T& front() const {
    DV_CHECK(size_ != 0, "front() on an empty ring queue");
    return buf_[head_];
  }

  void pop_front() {
    DV_CHECK(size_ != 0, "pop_front() on an empty ring queue");
    head_ = wrap(head_ + 1);
    --size_;
  }

  T& operator[](std::size_t i) {
    DV_CHECK(i < size_, "ring queue index out of range");
    return buf_[wrap(head_ + i)];
  }
  const T& operator[](std::size_t i) const {
    DV_CHECK(i < size_, "ring queue index out of range");
    return buf_[wrap(head_ + i)];
  }

  /// Removes the element at logical index `i`, preserving the relative
  /// order of the rest. Shifts whichever side of `i` is shorter.
  void erase_at(std::size_t i) {
    DV_CHECK(i < size_, "ring queue erase out of range");
    if (i < size_ - i - 1) {
      for (std::size_t k = i; k > 0; --k) {
        buf_[wrap(head_ + k)] = std::move(buf_[wrap(head_ + k - 1)]);
      }
      head_ = wrap(head_ + 1);
    } else {
      for (std::size_t k = i; k + 1 < size_; ++k) {
        buf_[wrap(head_ + k)] = std::move(buf_[wrap(head_ + k + 1)]);
      }
    }
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::size_t wrap(std::size_t i) const { return i & (buf_.size() - 1); }

  void grow() {
    const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[wrap(head_ + i)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace dv
