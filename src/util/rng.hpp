// Deterministic, stream-splittable random number generation.
//
// Simulation reproducibility requires per-LP random streams that are stable
// across runs and independent of scheduling; xoshiro256** seeded through
// splitmix64 gives high-quality independent streams from (seed, stream-id).
#pragma once

#include <cstdint>
#include <vector>

#include "util/common.hpp"

namespace dv {

/// splitmix64 step; used for seeding and cheap hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  /// Seeds the generator from a (seed, stream) pair; distinct streams from
  /// the same seed are statistically independent.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL,
               std::uint64_t stream = 0);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [0, bound) — bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// True with probability p.
  bool next_bool(double p);

  /// Exponentially distributed value with the given mean.
  double next_exponential(double mean);

  /// Standard normal via Box–Muller.
  double next_normal();

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks a uniformly random element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& v) {
    DV_REQUIRE(!v.empty(), "pick from empty vector");
    return v[static_cast<std::size_t>(next_below(v.size()))];
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace dv
