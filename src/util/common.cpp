#include "util/common.hpp"

#include <sstream>

namespace dv::detail {

void fail(const char* kind, const char* expr, const char* file, int line,
          const std::string& msg) {
  std::ostringstream os;
  os << "dragonviz " << kind << " failed: " << msg << " [" << expr << " at "
     << file << ":" << line << "]";
  throw Error(os.str());
}

}  // namespace dv::detail
