// Minimal fixed-size thread pool plus a blocking parallel_for, used by the
// aggregation layer and by benchmark harnesses that run independent
// simulations concurrently.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dv {

class ThreadPool {
 public:
  /// threads == 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; tasks must not throw (std::terminate otherwise).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Runs fn(i) for i in [0, n) across the pool in contiguous chunks and
/// blocks until done. fn must be safe to call concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

}  // namespace dv
