// Job placement policies for Dragonfly networks.
//
// The paper studies contiguous placement (the supercomputer-centre default),
// random-group and random-router placement (following Jain et al. and Yang
// et al.), and derives a *hybrid* policy — different random policies for
// different jobs — as its mitigation for inter-job interference (Sec. V-D).
// Hybrid is expressed here by giving every job its own policy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/dragonfly.hpp"

namespace dv::placement {

enum class Policy {
  kContiguous,   ///< consecutive terminals in id order
  kRandomGroup,  ///< fill available terminals of randomly ordered groups
  kRandomRouter, ///< fill terminals of randomly ordered routers
  kRandomNode,   ///< uniformly random individual terminals
};

Policy policy_from_string(const std::string& name);  // throws on unknown
std::string to_string(Policy p);

/// One job to be placed.
struct JobRequest {
  std::string name;
  std::uint32_t ranks = 0;
  Policy policy = Policy::kContiguous;
};

/// Result of placing a set of jobs on a network. Jobs never share terminals.
struct Placement {
  /// terminals[j][r] = terminal id hosting rank r of job j.
  std::vector<std::vector<std::uint32_t>> terminals;
  /// job_of[t] = job index using terminal t, or kIdle.
  std::vector<std::int32_t> job_of;
  /// rank_of[t] = MPI rank hosted on terminal t, or -1 when idle.
  std::vector<std::int32_t> rank_of;

  static constexpr std::int32_t kIdle = -1;

  std::size_t job_count() const { return terminals.size(); }
  std::uint32_t terminal_of(std::size_t job, std::uint32_t rank) const;
};

/// Places all jobs (in order) on the network; policies see only terminals
/// not taken by earlier jobs. Deterministic for a given seed. Throws if the
/// jobs do not fit.
Placement place_jobs(const topo::Dragonfly& net,
                     const std::vector<JobRequest>& jobs,
                     std::uint64_t seed = 1);

}  // namespace dv::placement
