#include "placement/placement.hpp"

#include <algorithm>
#include <numeric>

#include "util/rng.hpp"
#include "util/str.hpp"

namespace dv::placement {

Policy policy_from_string(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "contiguous") return Policy::kContiguous;
  if (n == "random_group" || n == "randomgroup") return Policy::kRandomGroup;
  if (n == "random_router" || n == "randomrouter") return Policy::kRandomRouter;
  if (n == "random_node" || n == "randomnode") return Policy::kRandomNode;
  throw Error("unknown placement policy: " + name);
}

std::string to_string(Policy p) {
  switch (p) {
    case Policy::kContiguous: return "contiguous";
    case Policy::kRandomGroup: return "random_group";
    case Policy::kRandomRouter: return "random_router";
    case Policy::kRandomNode: return "random_node";
  }
  return "?";
}

std::uint32_t Placement::terminal_of(std::size_t job,
                                     std::uint32_t rank) const {
  DV_REQUIRE(job < terminals.size(), "job index out of range");
  DV_REQUIRE(rank < terminals[job].size(), "rank out of range");
  return terminals[job][rank];
}

namespace {

/// Takes up to `want` free terminals in id order from `candidates` (a list
/// of terminal ids), appending to `out` and marking them used.
void take_available(const std::vector<std::uint32_t>& candidates,
                    std::vector<bool>& used, std::uint32_t want,
                    std::vector<std::uint32_t>& out) {
  for (std::uint32_t t : candidates) {
    if (out.size() >= want) return;
    if (!used[t]) {
      used[t] = true;
      out.push_back(t);
    }
  }
}

std::vector<std::uint32_t> place_one(const topo::Dragonfly& net,
                                     const JobRequest& job,
                                     std::vector<bool>& used, Rng& rng) {
  const std::uint32_t n = net.num_terminals();
  std::vector<std::uint32_t> picked;
  picked.reserve(job.ranks);

  switch (job.policy) {
    case Policy::kContiguous: {
      std::vector<std::uint32_t> all(n);
      std::iota(all.begin(), all.end(), 0u);
      take_available(all, used, job.ranks, picked);
      break;
    }
    case Policy::kRandomGroup: {
      std::vector<std::uint32_t> order(net.groups());
      std::iota(order.begin(), order.end(), 0u);
      rng.shuffle(order);
      const std::uint32_t per_group =
          net.routers_per_group() * net.terminals_per_router();
      for (std::uint32_t grp : order) {
        if (picked.size() >= job.ranks) break;
        std::vector<std::uint32_t> terms(per_group);
        const std::uint32_t base =
            net.router_id(grp, 0) * net.terminals_per_router();
        std::iota(terms.begin(), terms.end(), base);
        take_available(terms, used, job.ranks, picked);
      }
      break;
    }
    case Policy::kRandomRouter: {
      std::vector<std::uint32_t> order(net.num_routers());
      std::iota(order.begin(), order.end(), 0u);
      rng.shuffle(order);
      for (std::uint32_t r : order) {
        if (picked.size() >= job.ranks) break;
        std::vector<std::uint32_t> terms(net.terminals_per_router());
        std::iota(terms.begin(), terms.end(), r * net.terminals_per_router());
        take_available(terms, used, job.ranks, picked);
      }
      break;
    }
    case Policy::kRandomNode: {
      std::vector<std::uint32_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      rng.shuffle(order);
      take_available(order, used, job.ranks, picked);
      break;
    }
  }

  if (picked.size() < job.ranks) {
    throw Error("placement failed: job '" + job.name + "' needs " +
                std::to_string(job.ranks) + " terminals but only " +
                std::to_string(picked.size()) + " are available");
  }
  return picked;
}

}  // namespace

Placement place_jobs(const topo::Dragonfly& net,
                     const std::vector<JobRequest>& jobs,
                     std::uint64_t seed) {
  Placement out;
  out.job_of.assign(net.num_terminals(), Placement::kIdle);
  out.rank_of.assign(net.num_terminals(), -1);
  std::vector<bool> used(net.num_terminals(), false);

  Rng rng(seed, /*stream=*/0x9a110cULL);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    DV_REQUIRE(jobs[j].ranks > 0, "job must have at least one rank");
    auto picked = place_one(net, jobs[j], used, rng);
    for (std::uint32_t r = 0; r < picked.size(); ++r) {
      out.job_of[picked[r]] = static_cast<std::int32_t>(j);
      out.rank_of[picked[r]] = static_cast<std::int32_t>(r);
    }
    out.terminals.push_back(std::move(picked));
  }
  return out;
}

}  // namespace dv::placement
