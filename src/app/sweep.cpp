#include "app/sweep.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/comparison.hpp"
#include "core/datatable.hpp"
#include "core/presets.hpp"
#include "core/report.hpp"
#include "routing/routing.hpp"

namespace dv::app {

namespace {

std::string format_scale(double scale) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "x%g", scale);
  return buf;
}

core::ProjectionSpec resolve_spec(const std::string& ref) {
  if (core::is_preset_ref(ref)) return core::preset_from_ref(ref);
  std::ifstream is(ref, std::ios::binary);
  DV_REQUIRE(is.good(), "cannot open spec: " + ref);
  std::ostringstream buf;
  buf << is.rdbuf();
  return core::ProjectionSpec::parse(buf.str());
}

/// --flow-coarsen trades per-terminal latency attribution away (terminals
/// of one router share a bundle's FIFO order), so a spec that visualizes
/// terminal avg_latency would silently render the router-smeared stand-in.
bool spec_uses_terminal_latency(const core::ProjectionSpec& spec) {
  const auto hit = [](const std::string& attr) {
    return attr == "avg_latency";
  };
  for (const auto& lv : spec.levels) {
    if (lv.entity != core::Entity::kTerminal) continue;
    if (hit(lv.vmap.color) || hit(lv.vmap.size) || hit(lv.vmap.x) ||
        hit(lv.vmap.y)) {
      return true;
    }
    for (const auto& a : lv.aggregate) {
      if (hit(a)) return true;
    }
    for (const auto& f : lv.filters) {
      if (hit(f.attr)) return true;
    }
  }
  return false;
}

}  // namespace

std::string sweep_point_name(const std::string& workload,
                             const std::string& routing, double scale,
                             Backend backend) {
  return workload + "-" + routing + "-" + format_scale(scale) + "-" +
         to_string(backend);
}

SweepResult run_sweep(const SweepConfig& cfg) {
  DV_REQUIRE(!cfg.workloads.empty(), "sweep needs at least one workload");
  DV_REQUIRE(!cfg.routings.empty(), "sweep needs at least one routing");
  DV_REQUIRE(!cfg.scales.empty(), "sweep needs at least one scale");
  DV_REQUIRE(!cfg.store_dir.empty(), "sweep needs a --store directory");
  for (const double s : cfg.scales) {
    DV_REQUIRE(s > 0.0, "sweep scales must be positive");
  }
  if (!cfg.report_path.empty() && cfg.base.flow_coarsen) {
    // Fail before simulating anything: the report would plot terminal
    // latency a coarsened run cannot attribute per terminal.
    DV_REQUIRE(!spec_uses_terminal_latency(resolve_spec(cfg.report_spec)),
               "sweep: --flow-coarsen cannot serve spec '" + cfg.report_spec +
                   "': it maps per-terminal avg_latency, which coarsened "
                   "runs only attribute per router (drop --flow-coarsen or "
                   "use a spec without terminal latency channels)");
  }

  metrics::RunStore store(cfg.store_dir);
  SweepResult out;
  const auto sweep_t0 = std::chrono::steady_clock::now();

  for (const std::string& workload : cfg.workloads) {
    for (const std::string& routing : cfg.routings) {
      for (const double scale : cfg.scales) {
        ExperimentConfig point = cfg.base;
        point.jobs.clear();
        JobSpec job;
        job.workload = workload;
        point.jobs.push_back(job);
        point.routing = routing::algo_from_string(routing);
        point.traffic_scale = scale;

        const ExperimentResult res = run_experiment(point);

        const std::string name =
            sweep_point_name(workload, routing, scale, cfg.base.backend);
        // Replace (not suffix) so re-sweeping the same grid is idempotent.
        if (store.contains(name)) store.remove(name);
        const std::string stored = store.add(res.run, name, cfg.format);
        DV_CHECK(stored == name, "sweep point name collided in the store");

        SweepPoint p;
        p.name = name;
        p.workload = workload;
        p.routing = routing;
        p.scale = scale;
        p.uid = store.info(name).uid;
        p.events = res.events;
        p.end_time = res.run.end_time;
        p.wall_seconds = res.wall_seconds;
        p.flow = res.flow;
        out.points.push_back(std::move(p));
      }
    }
  }

  if (!cfg.report_path.empty()) {
    // Reload every point from the store (what any later consumer would
    // read) and render them side by side under shared scales.
    std::vector<std::unique_ptr<metrics::RunMetrics>> runs;
    std::vector<std::unique_ptr<core::DataSet>> datasets;
    std::vector<const core::DataSet*> ptrs;
    std::vector<std::string> labels;
    for (const SweepPoint& p : out.points) {
      runs.push_back(
          std::make_unique<metrics::RunMetrics>(store.load(p.name)));
      datasets.push_back(std::make_unique<core::DataSet>(*runs.back()));
      ptrs.push_back(datasets.back().get());
      labels.push_back(p.name);
    }
    const core::ProjectionSpec spec = resolve_spec(cfg.report_spec);
    const core::ComparisonView cmp(ptrs, spec, labels);

    core::ReportBuilder report(cfg.report_title);
    std::string grid_desc =
        std::to_string(out.points.size()) + " points (" +
        std::to_string(cfg.workloads.size()) + " workloads x " +
        std::to_string(cfg.routings.size()) + " routings x " +
        std::to_string(cfg.scales.size()) + " scales), backend=" +
        to_string(cfg.base.backend) + ", store=" + cfg.store_dir;
    report.note("Sweep grid", grid_desc);
    std::string uid_lines;
    for (const SweepPoint& p : out.points) {
      uid_lines += p.name + " uid=" + std::to_string(p.uid) +
                   " end=" + std::to_string(p.end_time) + " ns; ";
    }
    report.note("Stored runs", uid_lines);
    report.comparison(cmp, "All sweep points under shared scales");
    report.save(cfg.report_path);
    out.report_path = cfg.report_path;
  }

  const auto sweep_t1 = std::chrono::steady_clock::now();
  out.wall_seconds =
      std::chrono::duration<double>(sweep_t1 - sweep_t0).count();
  return out;
}

}  // namespace dv::app
