// Design-space sweep orchestrator — the paper's exploration workflow at
// grid scale: fan a (workload × routing × load) parameter grid through
// either simulation backend, store one packed run per point in a RunStore,
// and emit a cross-run comparison report with shared scales so the points
// are visually comparable (Sec. III "fair comparison").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "app/runner.hpp"
#include "metrics/run_store.hpp"

namespace dv::app {

/// One completed grid point.
struct SweepPoint {
  std::string name;      ///< RunStore entry name
  std::string workload;
  std::string routing;
  double scale = 1.0;
  std::uint64_t uid = 0;  ///< run content uid (deterministic per config)
  std::uint64_t events = 0;
  double end_time = 0.0;
  double wall_seconds = 0.0;
  FlowTelemetry flow;  ///< solver telemetry, zeros for packet points
};

struct SweepConfig {
  /// Template for every point: backend, p, window, seed, sampling, params.
  /// Its jobs/routing/traffic_scale are overwritten per grid point.
  ExperimentConfig base;

  // Grid axes (each must be non-empty; the grid is the cross product).
  std::vector<std::string> workloads;
  std::vector<std::string> routings;
  std::vector<double> scales;

  std::string store_dir;  ///< required: RunStore directory for the points
  metrics::StoreFormat format = metrics::StoreFormat::kPacked;

  /// When non-empty, writes a comparison report over every point.
  std::string report_path;
  std::string report_spec = "preset:overview";  ///< preset ref or file path
  std::string report_title = "dragonviz sweep";
};

struct SweepResult {
  std::vector<SweepPoint> points;  ///< grid order: workload, routing, scale
  double wall_seconds = 0.0;       ///< total simulate+store wall time
  std::string report_path;         ///< empty when no report was requested
};

/// Store entry name for one grid point, e.g. "uniform_random-adaptive-x1-flow".
/// Stable across runs, so re-sweeping the same grid into the same store
/// replaces each point in place (idempotent, uid-stable).
std::string sweep_point_name(const std::string& workload,
                             const std::string& routing, double scale,
                             Backend backend);

/// Runs the whole grid. Existing store entries with a grid point's name are
/// replaced, not suffixed, so a re-run converges to the same store state.
SweepResult run_sweep(const SweepConfig& cfg);

}  // namespace dv::app
