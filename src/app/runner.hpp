// Experiment runner: the one-call path from a declarative experiment
// description (network scale, jobs, routing, placement, sampling) to a
// RunMetrics — used by the CLI, the examples, and every figure bench.
#pragma once

#include <string>
#include <vector>

#include "core/datatable.hpp"
#include "fault/fault.hpp"
#include "metrics/run_metrics.hpp"
#include "netsim/network.hpp"
#include "obs/profile.hpp"
#include "placement/placement.hpp"
#include "routing/routing.hpp"
#include "topology/dragonfly.hpp"

namespace dv::app {

/// Simulation backend: the packet-level PDES reference or the flow-level
/// max-min water-filling model (src/flow) — same RunMetrics schema, so
/// everything downstream of run_experiment is backend-agnostic.
enum class Backend { kPacket, kFlow };

Backend backend_from_string(const std::string& name);  // throws on unknown
std::string to_string(Backend b);

/// One job in an experiment.
struct JobSpec {
  std::string workload;  ///< a dv::workload generator name
  std::uint32_t ranks = 0;  ///< 0 = app default / all terminals (synthetic)
  placement::Policy policy = placement::Policy::kContiguous;
  std::uint64_t bytes = 0;  ///< 0 = app default / synthetic default
};

struct ExperimentConfig {
  std::uint32_t dragonfly_p = 3;  ///< canonical dragonfly parameter
  std::vector<JobSpec> jobs;
  routing::Algo routing = routing::Algo::kAdaptive;
  double traffic_scale = 1.0;  ///< multiplies every job's volume
  double window = 2.0e6;       ///< injection window (ns)
  double sample_dt = 0.0;      ///< 0 = no time series
  std::uint64_t seed = 1;
  std::uint64_t synthetic_bytes_per_rank = 32 * 1024;
  /// nearest_neighbor stride (see workload::Config::neighbor_stride);
  /// 0 = auto (terminals per router, the congestion-forming variant).
  std::uint32_t nn_stride = 0;
  /// Simulation engine: 0 = take the DV_PARALLEL environment variable
  /// (defaulting to 1), 1 = sequential reference, N > 1 = conservative
  /// parallel engine with N partitions (clamped to the group count).
  std::uint32_t parallel = 0;
  netsim::Params params;
  /// Scheduled link/router outages (empty = healthy network).
  fault::FaultPlan faults;
  /// Simulation backend. The flow backend ignores `parallel` and rejects
  /// non-empty `faults` (no fluid fault model).
  Backend backend = Backend::kPacket;
  /// Flow backend epoch length in ns (0 = auto; locked to sample_dt when
  /// sampling is on; explicit values must be positive).
  double flow_epoch_dt = 0.0;
  /// Flow backend: aggregate demand per (src router, dst router) instead
  /// of per terminal pair. Big win for uniform-random-shaped demand
  /// (O(routers^2) bundles instead of O(terminals^2)); the tradeoff is
  /// per-terminal latency/saturation attribution (terminals of one router
  /// share FIFO order and saturation). Rejected with --backend packet.
  bool flow_coarsen = false;
  /// Flow backend time stepping: "event" (default — run to the next
  /// rate-changing event) or "fixed" (the PR-8 fixed-epoch loop).
  std::string flow_stepping = "event";

  /// Human-readable placement label ("contiguous", "random_router",
  /// "hybrid(...)" when jobs differ).
  std::string placement_label() const;
};

/// Flow-backend solver telemetry (all zero for packet runs): how the run
/// spent its solves — the provenance `bench_sweep` records so the bench
/// trajectory can see *why* a point got faster.
struct FlowTelemetry {
  std::uint64_t epochs = 0;          ///< time steps taken
  std::uint64_t solves = 0;          ///< water-filling solves (any kind)
  std::uint64_t full_solves = 0;     ///< from-scratch solves
  std::uint64_t incremental_solves = 0;  ///< shrink-only re-solves
  std::uint64_t solver_rounds = 0;   ///< water-filling rounds, all solves
  std::uint64_t drain_events = 0;    ///< bundle completions observed
};

struct ExperimentResult {
  topo::Dragonfly topo = topo::Dragonfly::canonical(1);
  placement::Placement placement;
  metrics::RunMetrics run;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  FlowTelemetry flow;  ///< zeros unless backend == kFlow
  /// Partition count the simulation actually used (1 = sequential engine).
  std::uint32_t partitions = 1;
  /// Observability snapshot taken when the experiment finished: counters,
  /// gauges and phase times accumulated since the last obs::reset() (call
  /// obs::reset() before run_experiment for a per-experiment profile).
  /// Empty in DV_OBS_ENABLED=OFF builds. Never feeds back into the
  /// simulation, so RunMetrics stay bit-identical with or without it.
  obs::RunProfile profile;
};

/// Places the jobs, generates every workload, simulates, collects metrics.
ExperimentResult run_experiment(const ExperimentConfig& cfg);

/// Loads a saved RunMetrics and builds the VA substrate in one step, under
/// the "load" and "dataset" obs phases. Shared by the CLI view commands so
/// every one of them profiles ingest identically.
core::DataSet load_run_dataset(const std::string& path);

}  // namespace dv::app
