#include "app/runner.hpp"

#include <chrono>
#include <cstdlib>
#include <memory>

#include "flow/flow.hpp"
#include "util/str.hpp"
#include "workload/workload.hpp"

namespace dv::app {

Backend backend_from_string(const std::string& name) {
  const std::string n = to_lower(trim(name));
  if (n == "packet" || n == "netsim" || n == "pdes") return Backend::kPacket;
  if (n == "flow" || n == "fluid") return Backend::kFlow;
  throw Error("unknown backend: " + name + " (expected packet|flow)");
}

std::string to_string(Backend b) {
  return b == Backend::kFlow ? "flow" : "packet";
}

namespace {

bool is_application(const std::string& name) {
  return name == "amg" || name == "amr_boxlib" || name == "minife";
}

std::uint32_t resolve_parallel(std::uint32_t requested) {
  if (requested) return requested;
  if (const char* env = std::getenv("DV_PARALLEL")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v > 1) return static_cast<std::uint32_t>(v);
  }
  return 1;
}

}  // namespace

std::string ExperimentConfig::placement_label() const {
  DV_REQUIRE(!jobs.empty(), "experiment has no jobs");
  bool uniform = true;
  for (const auto& j : jobs) {
    if (j.policy != jobs[0].policy) uniform = false;
  }
  if (uniform) return placement::to_string(jobs[0].policy);
  std::string label = "hybrid(";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i) label += ",";
    label += placement::to_string(jobs[i].policy);
  }
  return label + ")";
}

core::DataSet load_run_dataset(const std::string& path) {
  std::unique_ptr<metrics::RunMetrics> run;
  {
    obs::ScopedPhase phase("load");
    run = std::make_unique<metrics::RunMetrics>(metrics::RunMetrics::load(path));
  }
  obs::ScopedPhase phase("dataset");
  return core::DataSet(*run);
}

ExperimentResult run_experiment(const ExperimentConfig& cfg) {
  DV_REQUIRE(!cfg.jobs.empty(), "experiment has no jobs");
  DV_REQUIRE(cfg.traffic_scale > 0, "traffic scale must be positive");
  DV_REQUIRE(cfg.window > 0,
             "injection window must be positive (a zero-length window would "
             "inject every message at t=0 and simulate nothing)");

  ExperimentResult out;
  // Phases: "setup" covers placement, network construction and workload
  // generation here; Network::run adds the top-level "sim" and "collect"
  // phases, so a profile's top-level phases cover the whole experiment.
  auto setup_phase = std::make_unique<obs::ScopedPhase>("setup");
  out.topo = topo::Dragonfly::canonical(cfg.dragonfly_p);

  // Resolve job sizes and volumes.
  std::vector<placement::JobRequest> requests;
  std::vector<std::uint64_t> volumes;
  std::vector<std::string> names;
  for (const auto& j : cfg.jobs) {
    placement::JobRequest req;
    req.name = j.workload;
    req.policy = j.policy;
    std::uint64_t bytes = j.bytes;
    if (is_application(j.workload)) {
      const auto& info = workload::app_info(j.workload);
      req.ranks = j.ranks ? j.ranks : info.ranks;
      if (!bytes) bytes = static_cast<std::uint64_t>(info.scaled_bytes);
    } else {
      req.ranks = j.ranks ? j.ranks : out.topo.num_terminals();
      if (!bytes) bytes = cfg.synthetic_bytes_per_rank * req.ranks;
    }
    bytes = static_cast<std::uint64_t>(
        static_cast<double>(bytes) * cfg.traffic_scale);
    DV_REQUIRE(bytes > 0, "job volume scaled to zero");
    requests.push_back(req);
    volumes.push_back(bytes);
    names.push_back(j.workload);
  }

  out.placement = placement::place_jobs(out.topo, requests, cfg.seed);

  std::string workload_label;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (i) workload_label += "+";
    workload_label += names[i];
  }

  // Generate every job's terminal-level messages up front — the backends
  // consume the identical message list, which is what makes flow-vs-packet
  // runs directly comparable.
  std::vector<netsim::Message> messages;
  for (std::size_t j = 0; j < cfg.jobs.size(); ++j) {
    workload::Config wcfg;
    wcfg.ranks = requests[j].ranks;
    wcfg.total_bytes = volumes[j];
    wcfg.window = cfg.window;
    wcfg.seed = cfg.seed + j * 1000003;
    wcfg.neighbor_stride =
        cfg.nn_stride ? cfg.nn_stride : out.topo.terminals_per_router();
    const auto msgs = workload::generate(cfg.jobs[j].workload, wcfg);
    const auto mapped = workload::map_to_terminals(msgs, out.placement, j);
    messages.insert(messages.end(), mapped.begin(), mapped.end());
  }

  if (cfg.backend == Backend::kFlow) {
    DV_REQUIRE(cfg.faults.empty(),
               "the flow backend does not model faults; use --backend packet");
    flow::FlowNetwork net(out.topo, cfg.routing, cfg.params, cfg.seed);
    net.set_jobs(out.placement);
    net.set_labels(workload_label, cfg.placement_label(), names);
    net.add_messages(messages);
    if (cfg.sample_dt > 0) net.enable_sampling(cfg.sample_dt);
    if (cfg.flow_epoch_dt != 0) net.set_epoch_dt(cfg.flow_epoch_dt);
    if (cfg.flow_coarsen) net.enable_coarsening();
    {
      const std::string s = to_lower(trim(cfg.flow_stepping));
      if (s == "fixed") {
        net.set_stepping(flow::FlowNetwork::Stepping::kFixedEpoch);
      } else if (s != "event" && !s.empty()) {
        throw Error("unknown flow stepping: " + cfg.flow_stepping +
                    " (expected event|fixed)");
      }
    }
    setup_phase.reset();

    const auto t0 = std::chrono::steady_clock::now();
    out.run = net.run();
    const auto t1 = std::chrono::steady_clock::now();
    out.partitions = 1;
    out.events = net.epochs();  // the flow analog of an event count
    out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    out.flow.epochs = net.epochs();
    out.flow.solves = net.solves();
    out.flow.full_solves = net.full_solves();
    out.flow.incremental_solves = net.incremental_solves();
    out.flow.solver_rounds = net.solver_rounds();
    out.flow.drain_events = net.drain_events();
    out.profile = obs::capture();
    return out;
  }
  DV_REQUIRE(!cfg.flow_coarsen,
             "--flow-coarsen requires --backend flow (the packet simulator "
             "always resolves per-terminal demand)");

  netsim::Network net(out.topo, cfg.routing, cfg.params, cfg.seed);
  net.set_jobs(out.placement);
  net.set_labels(workload_label, cfg.placement_label(), names);
  net.add_messages(messages);

  if (!cfg.faults.empty()) net.set_fault_plan(cfg.faults);
  if (cfg.sample_dt > 0) net.enable_sampling(cfg.sample_dt);
  net.set_parallel(resolve_parallel(cfg.parallel));
  setup_phase.reset();

  const auto t0 = std::chrono::steady_clock::now();
  out.run = net.run();
  const auto t1 = std::chrono::steady_clock::now();
  out.partitions = net.partitions_used();
  out.events = net.events_processed();
  out.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  out.profile = obs::capture();
  return out;
}

}  // namespace dv::app
