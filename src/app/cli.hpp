// Command-line interface for the dragonviz tool.
#pragma once

namespace dv::app {

/// Entry point; returns the process exit code. Throws dv::Error on
/// invalid usage (caught in main).
int run_cli(int argc, char** argv);

}  // namespace dv::app
