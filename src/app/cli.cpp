// dragonviz CLI: simulate dragonfly networks and render spec-driven
// projection / detail / timeline views headlessly.
//
//   dragonviz sim --p 3 --job amg:0:contiguous --routing adaptive
//       ... --out run.json [--sample-dt 1000] [--scale 0.5]
//   dragonviz render  --run run.json --spec spec.json --out view.svg
//   dragonviz session --run run.json --spec spec.json --out ui.svg
//       ... [--t0 ns --t1 ns] [--brush axis:lo:hi]
//   dragonviz compare --run a.json --run b.json --spec spec.json --out c.svg
//   dragonviz export  --run run.json --entity terminals --out t.csv
//   dragonviz info    --run run.json
#include "app/cli.hpp"

#include <csignal>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/runner.hpp"
#include "app/sweep.hpp"
#include "core/comparison.hpp"
#include "fault/fault.hpp"
#include "obs/profile.hpp"
#include "core/presets.hpp"
#include "core/report.hpp"
#include "core/views.hpp"
#include "metrics/dvr.hpp"
#include "metrics/run_store.hpp"
#include "serve/catalog.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/trace.hpp"
#include "util/str.hpp"

namespace dv::app {

namespace {

/// Minimal option parser: --key value or --key=value (repeatable keys
/// collect). Keys in kOptionalValue may appear bare; they collect "".
struct Args {
  std::map<std::string, std::vector<std::string>> opts;

  static bool optional_value(const std::string& key) {
    return key == "profile" || key == "cache-stats" || key == "lazy" ||
           key == "flow-coarsen" ||
           // `client` action flags take no value.
           key == "list" || key == "stats" || key == "render" ||
           key == "report" || key == "shutdown";
  }

  static Args parse(int argc, char** argv, int start) {
    Args a;
    for (int i = start; i < argc; ++i) {
      std::string key = argv[i];
      DV_REQUIRE(starts_with(key, "--"), "expected --option, got: " + key);
      key = key.substr(2);
      const auto eq = key.find('=');
      if (eq != std::string::npos) {
        a.opts[key.substr(0, eq)].push_back(key.substr(eq + 1));
        continue;
      }
      if (optional_value(key) &&
          (i + 1 >= argc || starts_with(argv[i + 1], "--"))) {
        a.opts[key].push_back("");
        continue;
      }
      DV_REQUIRE(i + 1 < argc, "missing value for --" + key);
      a.opts[key].push_back(argv[++i]);
    }
    return a;
  }

  const std::string& one(const std::string& key) const {
    const auto it = opts.find(key);
    DV_REQUIRE(it != opts.end() && it->second.size() == 1,
               "exactly one --" + key + " required");
    return it->second[0];
  }
  std::string one_or(const std::string& key, const std::string& dflt) const {
    const auto it = opts.find(key);
    if (it == opts.end()) return dflt;
    DV_REQUIRE(it->second.size() == 1, "--" + key + " given multiple times");
    return it->second[0];
  }
  double num_or(const std::string& key, double dflt) const {
    const auto it = opts.find(key);
    return it == opts.end() ? dflt : std::stod(it->second[0]);
  }
  std::vector<std::string> many(const std::string& key) const {
    const auto it = opts.find(key);
    return it == opts.end() ? std::vector<std::string>{} : it->second;
  }
};

/// Explicit --epoch-dt values must be positive; omitting the flag keeps
/// the flow backend's automatic epoch sizing.
double parse_epoch_dt(const Args& args, const char* cmd) {
  const double dt = args.num_or("epoch-dt", 0.0);
  DV_REQUIRE(args.opts.find("epoch-dt") == args.opts.end() || dt > 0.0,
             std::string(cmd) +
                 ": --epoch-dt must be > 0 ns (omit the flag for automatic "
                 "epoch sizing)");
  return dt;
}

/// Boolean flag: bare `--key`, `--key=1/true/on`, or explicit off values.
bool flag_on(const Args& args, const std::string& key, const char* cmd) {
  const auto it = args.opts.find(key);
  if (it == args.opts.end()) return false;
  const std::string v = to_lower(trim(it->second.back()));
  if (v.empty() || v == "1" || v == "true" || v == "on") return true;
  if (v == "0" || v == "false" || v == "off") return false;
  throw Error(std::string(cmd) + ": bad --" + key + " value: " + v +
              " (expected on|off)");
}

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DV_REQUIRE(is.good(), "cannot open: " + path);
  std::ostringstream buf;
  buf << is.rdbuf();
  return buf.str();
}

/// Writes the observability profile when --profile was given. An empty
/// value (bare --profile) derives the path from `out_path` by replacing a
/// trailing ".json"/".svg" with ".profile.json".
void maybe_write_profile(const Args& args, const std::string& out_path) {
  const auto it = args.opts.find("profile");
  if (it == args.opts.end()) return;
  std::string path = it->second.back();
  if (path.empty()) {
    std::string base = out_path;
    const auto dot = base.find_last_of('.');
    if (dot != std::string::npos && base.find('/', dot) == std::string::npos) {
      base = base.substr(0, dot);
    }
    path = base + ".profile.json";
  }
  const obs::RunProfile profile = obs::capture();
  profile.save(path);
  std::printf("wrote %s (%zu counters, %zu phases, %.3fs wall)\n",
              path.c_str(), profile.counters.size(), profile.phases.size(),
              profile.wall_seconds);
  if (!obs::kEnabled) {
    std::printf("note: built with DV_OBS_ENABLED=OFF — profile is empty\n");
  }
}

/// Collects the fault plan from --faults FILE (at most one) plus any
/// number of inline --fault SPEC arguments.
fault::FaultPlan parse_fault_args(const Args& args) {
  fault::FaultPlan plan;
  const std::string file = args.one_or("faults", "");
  if (!file.empty()) plan = fault::FaultPlan::load(file);
  for (const auto& s : args.many("fault")) {
    plan.faults.push_back(fault::parse_fault(s));
  }
  return plan;
}

/// Applies the --fault-retry-* tuning knobs to the simulation parameters.
void apply_fault_params(const Args& args, netsim::Params& params) {
  params.fault_retry_base =
      args.num_or("fault-retry-base", params.fault_retry_base);
  params.fault_retry_budget = static_cast<std::uint32_t>(
      args.num_or("fault-retry-budget", params.fault_retry_budget));
}

/// --spec accepts either a script file path or "preset:<name>".
core::ProjectionSpec load_spec(const Args& args) {
  const std::string& ref = args.one("spec");
  if (core::is_preset_ref(ref)) return core::preset_from_ref(ref);
  return core::ProjectionSpec::parse(read_file(ref));
}

/// Parses "--window t0:t1" (ns, half-open) into a spec time window. Note
/// this is the analysis-side window; `sim --window` is the injection
/// window and is unrelated.
core::TimeWindow parse_time_window(const std::string& s) {
  const auto parts = split(s, ':');
  DV_REQUIRE(parts.size() == 2, "--window must be t0:t1 (ns)");
  core::TimeWindow w;
  w.t0 = std::stod(parts[0]);
  w.t1 = std::stod(parts[1]);
  DV_REQUIRE(w.active(), "--window needs t0 < t1");
  return w;
}

/// Applies --window to the projection spec when given.
void maybe_apply_window(const Args& args, core::ProjectionSpec& spec) {
  const std::string w = args.one_or("window", "");
  if (!w.empty()) spec.window = parse_time_window(w);
}

/// Prints the query-engine cache summary when --cache-stats was given.
void maybe_print_cache_stats(const Args& args, const core::QueryStats& s) {
  if (args.opts.find("cache-stats") == args.opts.end()) return;
  std::printf("query cache: %llu hits / %llu misses, %llu evictions, "
              "%llu live entries; group slabs: %llu built, %llu reductions\n",
              static_cast<unsigned long long>(s.hits),
              static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.evictions),
              static_cast<unsigned long long>(s.entries),
              static_cast<unsigned long long>(s.slab_builds),
              static_cast<unsigned long long>(s.slab_reduces));
}

int cmd_sim(const Args& args) {
  obs::reset();  // profile this invocation only
  ExperimentConfig cfg;
  cfg.dragonfly_p = static_cast<std::uint32_t>(args.num_or("p", 3));
  cfg.routing = routing::algo_from_string(args.one_or("routing", "adaptive"));
  cfg.traffic_scale = args.num_or("scale", 1.0);
  cfg.window = args.num_or("window", 2.0e6);
  cfg.sample_dt = args.num_or("sample-dt", 0.0);
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", 1));
  cfg.parallel = static_cast<std::uint32_t>(args.num_or("parallel", 0));
  cfg.backend = backend_from_string(args.one_or("backend", "packet"));
  cfg.flow_epoch_dt = parse_epoch_dt(args, "sim");
  cfg.flow_coarsen = flag_on(args, "flow-coarsen", "sim");
  cfg.flow_stepping = args.one_or("flow-stepping", "event");
  cfg.faults = parse_fault_args(args);
  apply_fault_params(args, cfg.params);
  const auto jobs = args.many("job");
  DV_REQUIRE(!jobs.empty(),
             "at least one --job workload[:ranks[:policy]] required");
  for (const auto& spec : jobs) {
    const auto parts = split(spec, ':');
    JobSpec job;
    job.workload = parts[0];
    if (parts.size() > 1 && !parts[1].empty() && parts[1] != "0") {
      job.ranks = static_cast<std::uint32_t>(std::stoul(parts[1]));
    }
    if (parts.size() > 2) job.policy = placement::policy_from_string(parts[2]);
    if (parts.size() > 3 && !parts[3].empty()) {
      job.bytes = static_cast<std::uint64_t>(std::stod(parts[3]));
    }
    DV_REQUIRE(parts.size() <= 4, "bad --job spec: " + spec);
    cfg.jobs.push_back(job);
  }
  const auto result = run_experiment(cfg);
  const std::string out = args.one("out");
  {
    obs::ScopedPhase phase("write");
    result.run.save(out);
  }
  std::printf(
      "simulated %s on %s: %llu events, %.2fs wall, end=%.0f ns (%u %s)\n",
      result.run.workload.c_str(), result.topo.describe().c_str(),
      static_cast<unsigned long long>(result.events), result.wall_seconds,
      result.run.end_time, result.partitions,
      result.partitions > 1 ? "partitions" : "partition, sequential");
  if (!cfg.faults.empty()) {
    std::uint64_t retries = 0, drops = 0;
    for (const auto c : result.run.router_retries) retries += c;
    for (const auto c : result.run.router_drops) drops += c;
    std::printf("faults: %zu scheduled, %llu retries, %llu packets dropped\n",
                cfg.faults.faults.size(),
                static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(drops));
  }
  std::printf("wrote %s\n", out.c_str());
  maybe_write_profile(args, out);
  return 0;
}

/// Collects a sweep axis from repeatable --<singular> options plus a
/// comma-separated --<plural> list, e.g. --workload ur --workloads a,b.
std::vector<std::string> axis_values(const Args& args,
                                     const std::string& singular,
                                     const std::string& plural) {
  std::vector<std::string> vals = args.many(singular);
  for (const auto& lst : args.many(plural)) {
    for (const auto& v : split(lst, ',')) {
      if (!trim(v).empty()) vals.push_back(trim(v));
    }
  }
  return vals;
}

int cmd_sweep(const Args& args) {
  obs::reset();
  SweepConfig cfg;
  cfg.base.dragonfly_p = static_cast<std::uint32_t>(args.num_or("p", 3));
  cfg.base.window = args.num_or("window", 2.0e6);
  cfg.base.sample_dt = args.num_or("sample-dt", 0.0);
  cfg.base.seed = static_cast<std::uint64_t>(args.num_or("seed", 1));
  cfg.base.backend = backend_from_string(args.one_or("backend", "flow"));
  cfg.base.flow_epoch_dt = parse_epoch_dt(args, "sweep");
  cfg.base.flow_coarsen = flag_on(args, "flow-coarsen", "sweep");
  cfg.base.flow_stepping = args.one_or("flow-stepping", "event");
  cfg.base.parallel =
      static_cast<std::uint32_t>(args.num_or("parallel", 0));
  cfg.base.synthetic_bytes_per_rank = static_cast<std::uint64_t>(
      args.num_or("bytes-per-rank",
                  static_cast<double>(cfg.base.synthetic_bytes_per_rank)));

  cfg.workloads = axis_values(args, "workload", "workloads");
  cfg.routings = axis_values(args, "routing", "routings");
  for (const auto& s : axis_values(args, "scale", "scales")) {
    cfg.scales.push_back(std::stod(s));
  }
  if (cfg.workloads.empty()) cfg.workloads = {"uniform_random"};
  if (cfg.routings.empty()) cfg.routings = {"adaptive"};
  if (cfg.scales.empty()) cfg.scales = {1.0};

  cfg.store_dir = args.one("store");
  cfg.format =
      metrics::store_format_from_string(args.one_or("format", "dvr"));
  cfg.report_path = args.one_or("report", "");
  cfg.report_spec = args.one_or("spec", "preset:overview");
  cfg.report_title = args.one_or("title", "dragonviz sweep");

  const SweepResult res = run_sweep(cfg);
  for (const auto& p : res.points) {
    std::printf("point %-40s uid=%llu end=%.0f ns %.3fs wall\n",
                p.name.c_str(), static_cast<unsigned long long>(p.uid),
                p.end_time, p.wall_seconds);
  }
  std::printf("sweep: %zu points (%s backend) into %s in %.2fs\n",
              res.points.size(), to_string(cfg.base.backend).c_str(),
              cfg.store_dir.c_str(), res.wall_seconds);
  if (!res.report_path.empty()) {
    std::printf("wrote %s\n", res.report_path.c_str());
  }
  maybe_write_profile(args, res.report_path.empty() ? cfg.store_dir + "/sweep"
                                                    : res.report_path);
  return 0;
}

int cmd_render(const Args& args) {
  obs::reset();
  const core::DataSet data = load_run_dataset(args.one("run"));
  auto spec = load_spec(args);
  maybe_apply_window(args, spec);
  core::QueryEngine engine(data);
  // --focus ring:item applies the paper's click-to-focus drill-down
  // before rendering (may be repeated for nested drill-down).
  for (const auto& f : args.many("focus")) {
    const auto parts = split(f, ':');
    DV_REQUIRE(parts.size() == 2, "--focus must be ring:item");
    const core::ProjectionView overview(data, spec, nullptr, &engine);
    spec = overview.drill_down(std::stoul(parts[0]), std::stoul(parts[1]));
  }
  auto build_phase = std::make_unique<obs::ScopedPhase>("build");
  const core::ProjectionView view(data, spec, nullptr, &engine);
  build_phase.reset();
  const std::string out = args.one("out");
  {
    obs::ScopedPhase phase("render");
    view.save_svg(out, args.num_or("size", 800),
                  args.one_or("title", data.run().workload + " / " +
                                           data.run().routing));
  }
  std::printf("wrote %s (%zu rings, %zu ribbons)\n", out.c_str(),
              view.rings().size(), view.ribbons().size());
  maybe_print_cache_stats(args, engine.stats());
  maybe_write_profile(args, out);
  return 0;
}

int cmd_store(const Args& args) {
  metrics::RunStore store(args.one("dir"));
  const std::string action = args.one_or("action", "list");
  if (action == "add") {
    const auto fmt =
        metrics::store_format_from_string(args.one_or("format", "text"));
    const auto run = metrics::RunMetrics::load(args.one("run"));
    const auto name = store.add(run, args.one_or("name", ""), fmt);
    std::printf("stored as '%s' (%s)\n", name.c_str(),
                metrics::to_string(fmt).c_str());
    return 0;
  }
  if (action == "remove") {
    store.remove(args.one("name"));
    std::printf("removed '%s'\n", args.one("name").c_str());
    return 0;
  }
  if (action == "repack") {
    const auto fmt =
        metrics::store_format_from_string(args.one_or("format", "dvr"));
    store.repack(args.one("name"), fmt);
    std::printf("repacked '%s' as %s\n", args.one("name").c_str(),
                metrics::to_string(fmt).c_str());
    return 0;
  }
  DV_REQUIRE(action == "list",
             "store action must be list|add|remove|repack");
  std::printf("%-36s %-20s %-12s %-18s %9s %5s %16s\n", "name", "workload",
              "routing", "placement", "terminals", "fmt", "uid");
  for (const auto& info : store.list()) {
    std::printf("%-36s %-20s %-12s %-18s %9u %5s %016llx\n",
                info.name.c_str(), info.workload.c_str(),
                info.routing.c_str(), info.placement.c_str(), info.terminals,
                metrics::to_string(info.format).c_str(),
                static_cast<unsigned long long>(info.uid));
  }
  std::printf("%zu run(s) in %s\n", store.size(), store.dir().c_str());
  return 0;
}

int cmd_pack(const Args& args) {
  const std::string in = args.one("in");
  const std::string out = args.one("out");
  // Output format: --format wins, else the output extension decides.
  std::string fmt_name = args.one_or("format", "");
  if (fmt_name.empty()) {
    fmt_name = out.size() > 4 && out.compare(out.size() - 4, 4, ".dvr") == 0
                   ? "dvr"
                   : "text";
  }
  const auto fmt = metrics::store_format_from_string(fmt_name);
  const auto run = metrics::RunMetrics::load(in);
  if (fmt == metrics::StoreFormat::kPacked) {
    metrics::save_dvr(run, out);
  } else {
    run.save(out);
  }
  const auto size_of = [](const std::string& p) {
    std::ifstream is(p, std::ios::binary | std::ios::ate);
    return is.good() ? static_cast<long long>(is.tellg()) : 0ll;
  };
  const long long in_b = size_of(in), out_b = size_of(out);
  std::printf("packed %s (%lld bytes) -> %s (%lld bytes, %s, %.2fx)\n",
              in.c_str(), in_b, out.c_str(), out_b,
              metrics::to_string(fmt).c_str(),
              out_b > 0 ? static_cast<double>(in_b) / out_b : 0.0);
  std::printf("run uid: %016llx\n", static_cast<unsigned long long>(
                                        metrics::run_content_uid(run)));
  return 0;
}

int cmd_inspect(const Args& args) {
  const std::string path = args.one("run");
  if (!metrics::is_dvr_file(path)) {
    std::printf("%s: text (JSON) run — no chunk directory; use "
                "`dragonviz pack` to convert, `info` for run summary\n",
                path.c_str());
    return 0;
  }
  // Header + directory only: no column payload is touched, which is the
  // point — this is what a catalog sees before the first query.
  const metrics::DvrFile f(path);
  std::printf("%s: dvr v%u, %llu bytes, run uid %016llx\n", path.c_str(),
              metrics::kDvrVersion,
              static_cast<unsigned long long>(f.file_bytes()),
              static_cast<unsigned long long>(f.run_uid()));
  std::printf("config:   %s / %s / %s\n", f.workload().c_str(),
              f.routing().c_str(), f.placement().c_str());
  std::printf("topology: g=%u a=%u p=%u h=%u, end=%.0f ns%s\n", f.groups(),
              f.routers_per_group(), f.terminals_per_router(),
              f.global_per_router(), f.end_time(),
              f.has_time_series() ? ", sampled" : "");
  // Per-section rollup of the chunk directory.
  std::map<std::uint16_t, std::pair<std::size_t, std::uint64_t>> sections;
  std::size_t zero_chunks = 0;
  for (const auto& c : f.chunks()) {
    auto& [count, bytes] = sections[c.section];
    ++count;
    bytes += c.bytes;
    if (c.zmin == 0.0 && c.zmax == 0.0) ++zero_chunks;
  }
  std::printf("chunks:   %zu total, %zu all-zero (prunable)\n",
              f.chunks().size(), zero_chunks);
  for (const auto& [section, cb] : sections) {
    const char* label = "series";
    switch (static_cast<metrics::DvrSection>(section)) {
      case metrics::DvrSection::kLocalLinks: label = "local_links"; break;
      case metrics::DvrSection::kGlobalLinks: label = "global_links"; break;
      case metrics::DvrSection::kTerminals: label = "terminals"; break;
      case metrics::DvrSection::kRouterTallies: label = "router_tallies"; break;
      default: break;
    }
    std::printf("  section %2u (%s): %zu chunk(s), %llu bytes\n", section,
                label, cb.first,
                static_cast<unsigned long long>(cb.second));
  }
  return 0;
}

int cmd_session(const Args& args) {
  const auto spec = load_spec(args);
  core::AnalysisSession session{load_run_dataset(args.one("run")), spec};
  const double t0 = args.num_or("t0", -1), t1 = args.num_or("t1", -1);
  if (t0 >= 0 && t1 > t0) session.select_time_range(t0, t1);
  // --window t0:t1 is shorthand for --t0/--t1.
  const std::string w = args.one_or("window", "");
  if (!w.empty()) {
    const auto win = parse_time_window(w);
    session.select_time_range(win.t0, win.t1);
  }
  for (const auto& b : args.many("brush")) {
    const auto parts = split(b, ':');
    DV_REQUIRE(parts.size() == 3, "--brush must be axis:lo:hi");
    session.brush(parts[0], std::stod(parts[1]), std::stod(parts[2]));
  }
  const std::string out = args.one("out");
  session.save_svg(out, args.num_or("width", 1400),
                   args.num_or("height", 900));
  std::printf("wrote %s\n", out.c_str());
  maybe_print_cache_stats(args, session.query_stats());
  return 0;
}

int cmd_compare(const Args& args) {
  const auto paths = args.many("run");
  DV_REQUIRE(paths.size() >= 2, "compare needs at least two --run files");
  std::vector<core::DataSet> datasets;
  datasets.reserve(paths.size());
  for (const auto& p : paths) datasets.push_back(load_run_dataset(p));
  std::vector<const core::DataSet*> ptrs;
  for (const auto& d : datasets) ptrs.push_back(&d);
  const auto spec = load_spec(args);
  const core::ComparisonView cmp(ptrs, spec);
  const std::string out = args.one("out");
  cmp.save_svg(out, args.num_or("size", 520));
  // Also print the per-job summary table (Fig. 13d style).
  const auto summaries = cmp.job_summaries();
  std::printf("%-32s %-12s %14s %14s %10s\n", "run", "job",
              "avg_latency_ns", "data_bytes", "avg_hops");
  for (std::size_t r = 0; r < summaries.size(); ++r) {
    for (const auto& s : summaries[r]) {
      std::printf("%-32s %-12s %14.1f %14.0f %10.2f\n", cmp.label(r).c_str(),
                  s.name.c_str(), s.avg_latency, s.data_size, s.avg_hops);
    }
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_export(const Args& args) {
  const auto run = metrics::RunMetrics::load(args.one("run"));
  const auto table = run.to_csv(args.one_or("entity", "terminals"));
  const std::string out = args.one("out");
  std::ofstream os(out, std::ios::binary);
  DV_REQUIRE(os.good(), "cannot open: " + out);
  write_csv(os, table);
  std::printf("wrote %s (%zu rows)\n", out.c_str(), table.rows.size());
  return 0;
}

int cmd_report(const Args& args) {
  const auto paths = args.many("run");
  DV_REQUIRE(!paths.empty(), "at least one --run required");
  auto spec = load_spec(args);
  maybe_apply_window(args, spec);
  std::vector<core::DataSet> datasets;
  datasets.reserve(paths.size());
  for (const auto& p : paths) datasets.push_back(load_run_dataset(p));

  core::ReportBuilder report(
      args.one_or("title", "dragonviz analysis report"));
  if (datasets.size() == 1) {
    const metrics::RunMetrics& run = datasets[0].run();
    report.run_summary(datasets[0]);
    core::QueryEngine engine(datasets[0]);
    const core::ProjectionView view(datasets[0], spec, nullptr, &engine);
    report.projection(view, run.workload + " / " + run.routing + " / " +
                                run.placement);
    if (args.opts.find("cache-stats") != args.opts.end()) {
      report.query_stats(engine.stats());
    }
    maybe_print_cache_stats(args, engine.stats());
  } else {
    std::vector<const core::DataSet*> ptrs;
    for (const auto& d : datasets) ptrs.push_back(&d);
    const core::ComparisonView cmp(ptrs, spec);
    report.comparison(cmp, "comparison under shared visual scales");
  }
  const std::string out = args.one("out");
  report.save(out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_trace_record(const Args& args) {
  const std::string workload = args.one("workload");
  workload::Config cfg;
  cfg.ranks = static_cast<std::uint32_t>(args.num_or("ranks", 0));
  DV_REQUIRE(cfg.ranks > 0, "--ranks required");
  cfg.total_bytes = static_cast<std::uint64_t>(args.num_or("bytes", 0));
  DV_REQUIRE(cfg.total_bytes > 0, "--bytes required");
  cfg.window = args.num_or("window", 2.0e6);
  cfg.seed = static_cast<std::uint64_t>(args.num_or("seed", 1));
  const auto t =
      trace::record(workload, cfg.ranks, workload::generate(workload, cfg));
  const std::string out = args.one("out");
  trace::save_binary(t, out);
  std::printf("recorded %zu messages (%s) from %s to %s\n",
              t.messages.size(),
              human_bytes(static_cast<double>(t.total_bytes())).c_str(),
              workload.c_str(), out.c_str());
  return 0;
}

int cmd_trace_info(const Args& args) {
  const auto t = trace::load_binary(args.one("trace"));
  const auto s = trace::summarize(t);
  std::printf("app:          %s\n", t.app.c_str());
  std::printf("ranks:        %u (%u active senders)\n", t.ranks,
              s.active_ranks);
  std::printf("messages:     %llu\n",
              static_cast<unsigned long long>(s.messages));
  std::printf("bytes:        %s\n",
              human_bytes(static_cast<double>(s.bytes)).c_str());
  std::printf("time span:    %.0f .. %.0f ns\n", s.t_first, s.t_last);
  std::printf("avg degree:   %.1f (max %u)\n", s.avg_degree, s.max_degree);
  std::printf("top 10%% share: %.0f%%\n", s.top_decile_share * 100);
  return 0;
}

int cmd_trace_replay(const Args& args) {
  obs::reset();
  const auto t = trace::load_binary(args.one("trace"));
  const auto p = static_cast<std::uint32_t>(args.num_or("p", 3));
  const auto topo = topo::Dragonfly::canonical(p);
  const auto policy =
      placement::policy_from_string(args.one_or("placement", "contiguous"));
  const auto seed = static_cast<std::uint64_t>(args.num_or("seed", 1));
  const auto placement =
      placement::place_jobs(topo, {{t.app, t.ranks, policy}}, seed);
  netsim::Params params;
  apply_fault_params(args, params);
  netsim::Network net(topo, routing::algo_from_string(
                                args.one_or("routing", "adaptive")),
                      params, seed);
  net.set_jobs(placement);
  net.set_labels(t.app, placement::to_string(policy), {t.app});
  net.add_messages(workload::map_to_terminals(t.messages, placement, 0));
  const auto fault_plan = parse_fault_args(args);
  if (!fault_plan.empty()) net.set_fault_plan(fault_plan);
  const double dt = args.num_or("sample-dt", 0.0);
  if (dt > 0) net.enable_sampling(dt);
  net.set_parallel(static_cast<std::uint32_t>(args.num_or("parallel", 1)));
  const auto run = net.run();
  const std::string out = args.one("out");
  run.save(out);
  std::printf("replayed %s (%u ranks) on %s: %llu packets, end=%.0f ns\n",
              t.app.c_str(), t.ranks, topo.describe().c_str(),
              static_cast<unsigned long long>(run.total_packets_finished()),
              run.end_time);
  std::printf("wrote %s\n", out.c_str());
  maybe_write_profile(args, out);
  return 0;
}

int cmd_info(const Args& args) {
  const auto run = metrics::RunMetrics::load(args.one("run"));
  std::printf("workload:   %s\nrouting:    %s\nplacement:  %s\n",
              run.workload.c_str(), run.routing.c_str(),
              run.placement.c_str());
  std::printf("dragonfly:  g=%u a=%u p=%u h=%u (%u terminals)\n", run.groups,
              run.routers_per_group, run.terminals_per_router,
              run.global_per_router,
              run.groups * run.routers_per_group * run.terminals_per_router);
  std::printf("end time:   %.0f ns\n", run.end_time);
  std::printf("traffic:    local=%s global=%s injected=%s\n",
              human_bytes(run.total_local_traffic()).c_str(),
              human_bytes(run.total_global_traffic()).c_str(),
              human_bytes(run.total_injected()).c_str());
  std::printf("packets:    %llu finished\n",
              static_cast<unsigned long long>(run.total_packets_finished()));
  if (!run.router_downtime.empty()) {
    double downtime = 0.0;
    std::uint64_t retries = 0, drops = 0, rerouted = 0;
    for (const auto d : run.router_downtime) downtime += d;
    for (const auto c : run.router_retries) retries += c;
    for (const auto c : run.router_drops) drops += c;
    for (const auto& t : run.terminals) rerouted += t.packets_rerouted;
    std::printf("faults:     %.0f router-ns down, %llu retries, %llu dropped,"
                " %llu rerouted\n",
                downtime, static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(drops),
                static_cast<unsigned long long>(rerouted));
  }
  if (run.has_time_series()) {
    std::printf("sampling:   dt=%.0f ns, %zu frames\n", run.sample_dt,
                run.local_traffic_ts.frames());
  }
  return 0;
}

serve::Server* g_server = nullptr;

void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->stop();  // async-signal-safe
}

int cmd_serve(const Args& args) {
  serve::ServeOptions opts;
  opts.listen = args.one_or("listen", opts.listen);
  opts.workers = static_cast<std::size_t>(
      args.num_or("workers", static_cast<double>(opts.workers)));
  opts.max_queue = static_cast<std::size_t>(
      args.num_or("max-queue", static_cast<double>(opts.max_queue)));
  opts.max_sessions = static_cast<std::size_t>(
      args.num_or("max-sessions", static_cast<double>(opts.max_sessions)));
  opts.cache_capacity = static_cast<std::size_t>(args.num_or(
      "cache-capacity", static_cast<double>(opts.cache_capacity)));
  opts.cache_shards = static_cast<std::size_t>(
      args.num_or("cache-shards", static_cast<double>(opts.cache_shards)));
  opts.ready_file = args.one_or("ready-file", "");

  serve::Server server(opts);
  const bool lazy = args.opts.count("lazy") != 0;
  for (const auto& ref : args.many("run")) {
    const auto [name, path] = serve::split_run_ref(ref);
    if (lazy) {
      server.catalog().attach(path, name);
      std::printf("attached '%s' from %s (lazy)\n", name.c_str(),
                  path.c_str());
    } else {
      server.catalog().load(path, name);
      std::printf("preloaded '%s' from %s\n", name.c_str(), path.c_str());
    }
  }
  // --store DIR: lazily attach every run of a RunStore (e.g. a sweep's
  // output) — entries materialize on first use, so sweep-scale catalogs
  // open instantly.
  for (const auto& dir : args.many("store")) {
    const metrics::RunStore store(dir);
    for (const auto& info : store.list()) {
      server.catalog().attach(store.path(info.name), info.name);
    }
    std::printf("attached store %s (%zu runs, lazy)\n", dir.c_str(),
                store.size());
  }

  g_server = &server;
  struct sigaction sa = {};
  sa.sa_handler = handle_stop_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::printf("dragonviz serve: listening on %s (%zu runs, %zu workers)\n",
              serve::Address::parse(opts.listen).describe().c_str(),
              server.catalog().size(), opts.workers);
  std::fflush(stdout);
  const int rc = server.listen_and_serve();
  g_server = nullptr;
  std::printf("dragonviz serve: stopped\n");
  return rc;
}

/// --spec for the client: a preset reference travels as-is; a script file
/// travels as its contents (the daemon parses the same text the CLI
/// would, so renders are byte-identical to `dragonviz render`).
std::string client_spec_payload(const Args& args) {
  const std::string& ref = args.one("spec");
  return core::is_preset_ref(ref) ? ref : read_file(ref);
}

int cmd_client(const Args& args) {
  auto client = serve::Client::connect(
      args.one_or("connect", "unix:/tmp/dragonviz.sock"));

  for (const auto& ref : args.many("load")) {
    const auto [name, path] = serve::split_run_ref(ref);
    json::Object p;
    p["path"] = json::Value(path);
    p["name"] = json::Value(name);
    const auto r = client.call("load", json::Value(std::move(p)));
    std::printf("loaded '%s' (%s / %s)\n", r.get_string("name", "").c_str(),
                r.get_string("workload", "").c_str(),
                r.get_string("routing", "").c_str());
  }

  if (args.opts.count("render") != 0) {
    json::Object p;
    const std::string run = args.one_or("run", "");
    if (!run.empty()) p["run"] = json::Value(run);
    p["spec"] = json::Value(client_spec_payload(args));
    const std::string w = args.one_or("window", "");
    if (!w.empty()) {
      const auto win = parse_time_window(w);
      p["window"] =
          json::Value(json::Array{json::Value(win.t0), json::Value(win.t1)});
    }
    json::Array focus;
    for (const auto& f : args.many("focus")) {
      const auto parts = split(f, ':');
      DV_REQUIRE(parts.size() == 2, "--focus must be ring:item");
      focus.push_back(json::Value(json::Array{
          json::Value(std::stod(parts[0])), json::Value(std::stod(parts[1]))}));
    }
    if (!focus.empty()) p["focus"] = json::Value(std::move(focus));
    if (args.opts.count("size") != 0) {
      p["size"] = json::Value(args.num_or("size", 800));
    }
    if (args.opts.count("title") != 0) {
      p["title"] = json::Value(args.one("title"));
    }
    const auto r = client.call("render", json::Value(std::move(p)));
    const std::string out = args.one("out");
    std::ofstream os(out, std::ios::binary);
    DV_REQUIRE(os.good(), "cannot open: " + out);
    os << r.at("svg").as_string();
    std::printf("wrote %s (run '%s', %.0f rings, %.0f ribbons)\n",
                out.c_str(), r.get_string("run", "").c_str(),
                r.get_number("rings", 0), r.get_number("ribbons", 0));
  }

  if (args.opts.count("report") != 0) {
    json::Object p;
    json::Array runs;
    for (const auto& name : args.many("run")) runs.emplace_back(name);
    if (runs.size() == 1) {
      p["run"] = runs[0];
    } else if (!runs.empty()) {
      p["runs"] = json::Value(std::move(runs));
    }
    p["spec"] = json::Value(client_spec_payload(args));
    if (args.opts.count("title") != 0) {
      p["title"] = json::Value(args.one("title"));
    }
    const auto r = client.call("report", json::Value(std::move(p)));
    const std::string out = args.one("out");
    std::ofstream os(out, std::ios::binary);
    DV_REQUIRE(os.good(), "cannot open: " + out);
    os << r.at("html").as_string();
    std::printf("wrote %s\n", out.c_str());
  }

  if (args.opts.count("list") != 0) {
    const auto r = client.call("list");
    std::printf("%-24s %-20s %-12s %-18s %10s\n", "name", "workload",
                "routing", "placement", "terminals");
    for (const auto& run : r.at("runs").as_array()) {
      std::printf("%-24s %-20s %-12s %-18s %10.0f\n",
                  run.get_string("name", "").c_str(),
                  run.get_string("workload", "").c_str(),
                  run.get_string("routing", "").c_str(),
                  run.get_string("placement", "").c_str(),
                  run.get_number("terminals", 0));
    }
  }

  if (args.opts.count("stats") != 0) {
    std::printf("%s\n", json::dump(client.call("stats"), 2).c_str());
  }

  if (args.opts.count("shutdown") != 0) {
    client.call("shutdown");
    std::printf("daemon stopping\n");
  }
  return 0;
}

void print_help() {
  std::printf(
      "dragonviz — visual analytics for large-scale dragonfly networks\n\n"
      "subcommands:\n"
      "  sim      --p N --job workload[:ranks[:policy]] ... --out run.json\n"
      "           [--routing minimal|nonminimal|adaptive|par]\n"
      "           [--scale F] [--window NS] [--sample-dt NS] [--seed N]\n"
      "           [--parallel N]  (N>1: conservative parallel engine with\n"
      "           N group-partitions; same seed => identical metrics for\n"
      "           minimal/nonminimal routing; env DV_PARALLEL as default)\n"
      "           [--profile[=prof.json]]  (counters + phase breakdown)\n"
      "           [--faults plan.txt] [--fault SPEC ...]  (fault injection;\n"
      "           SPEC: link:g0.r1->g2.r0@T0[:T1] | link:g0->g2@T0[:T1] |\n"
      "           router:g1.r2@T0[:T1], times in ns, no T1 = permanent)\n"
      "           [--fault-retry-base NS] [--fault-retry-budget N]\n"
      "           [--backend packet|flow]  (flow: max-min water-filling\n"
      "           fluid model — same RunMetrics schema, orders of magnitude\n"
      "           faster; no faults) [--epoch-dt NS] (> 0; omit for auto)\n"
      "           [--flow-stepping event|fixed]  (event = run to the next\n"
      "           rate change; fixed = PR-8 fixed-epoch loop)\n"
      "           [--flow-coarsen]  (flow: one bundle per router pair —\n"
      "           much faster under uniform-random; terminals of a router\n"
      "           share latency/saturation attribution)\n"
      "  sweep    --store DIR [--backend packet|flow] [--p N]\n"
      "           [--workloads a,b|--workload W ...]\n"
      "           [--routings a,b|--routing R ...]"
      " [--scales 0.5,1|--scale F ...]\n"
      "           [--window NS] [--seed N] [--sample-dt NS]"
      " [--bytes-per-rank B]\n"
      "           [--epoch-dt NS] [--flow-stepping S] [--flow-coarsen]\n"
      "           [--format text|dvr] [--report out.html]"
      " [--spec S] [--title T]\n"
      "           (fans the grid, one packed run per point, deterministic\n"
      "           content uids; report = side-by-side shared-scale panels)\n"
      "  render   --run run.json --spec spec.json --out view.svg [--size PX]\n"
      "           [--focus ring:item]   (click-to-focus drill-down)\n"
      "           [--window T0:T1]      (time-window the aggregation, ns)\n"
      "           [--cache-stats] [--profile[=prof.json]]\n"
      "  store    --dir runs/ [--action list|add|remove|repack]\n"
      "           [--run run.json] [--name NAME] [--format text|dvr]\n"
      "  pack     --in run.json --out run.dvr [--format text|dvr]\n"
      "           (lossless conversion between text and packed columnar\n"
      "           runs; every reader accepts both, bit-identically)\n"
      "  inspect  --run run.dvr   (header, chunk directory, zone maps —\n"
      "           reads no column payload; see docs/RUN_FORMAT.md)\n"
      "  session  --run run.json --spec spec.json --out ui.svg\n"
      "           [--t0 NS --t1 NS | --window T0:T1] [--brush axis:lo:hi]\n"
      "           [--cache-stats]\n"
      "  compare  --run a.json --run b.json ... --spec spec.json --out c.svg\n"
      "  export   --run run.json --entity terminals|routers|local_links|"
      "global_links --out t.csv\n"
      "  info     --run run.json\n"
      "  report   --run run.json [--run more.json ...] --spec spec.json\n"
      "           --out report.html [--title T] [--window T0:T1]"
      " [--cache-stats]\n"
      "  serve    [--listen unix:/path|tcp:PORT] [--run [name=]run.json ...]\n"
      "           [--lazy]  (attach preloads without materializing; runs\n"
      "           parse on first use — sweep-scale catalogs open instantly)\n"
      "           [--store DIR ...]  (lazily attach every run of a RunStore,\n"
      "           e.g. a sweep's output directory)\n"
      "           [--workers N] [--max-queue N] [--max-sessions N]\n"
      "           [--cache-capacity N] [--cache-shards N]"
      " [--ready-file F]\n"
      "           (multi-tenant query daemon; see docs/SERVE_PROTOCOL.md)\n"
      "  client   [--connect ADDR] [--load [name=]run.json ...]\n"
      "           [--render --spec S --out view.svg [--run NAME] [--size PX]\n"
      "            [--title T] [--window T0:T1] [--focus ring:item]]\n"
      "           [--report --spec S --out report.html [--run NAME ...]]\n"
      "           [--list] [--stats] [--shutdown]\n"
      "  trace-record --workload amg --ranks N --bytes B --out t.dvtr\n"
      "  trace-info   --trace t.dvtr\n"
      "  trace-replay --trace t.dvtr --p N --out run.json\n"
      "           [--placement P] [--routing R] [--sample-dt NS]"
      " [--parallel N]\n"
      "           [--faults plan.txt] [--fault SPEC ...]\n\n"
      "workloads: uniform_random nearest_neighbor all_to_all permutation\n"
      "           bisection amg amr_boxlib minife\n"
      "policies:  contiguous random_group random_router random_node\n");
}

}  // namespace

int run_cli(int argc, char** argv) {
  if (argc < 2 || std::string(argv[1]) == "--help" ||
      std::string(argv[1]) == "help") {
    print_help();
    return argc < 2 ? 1 : 0;
  }
  const std::string cmd = argv[1];
  const Args args = Args::parse(argc, argv, 2);
  if (cmd == "sim") return cmd_sim(args);
  if (cmd == "sweep") return cmd_sweep(args);
  if (cmd == "render") return cmd_render(args);
  if (cmd == "session") return cmd_session(args);
  if (cmd == "compare") return cmd_compare(args);
  if (cmd == "export") return cmd_export(args);
  if (cmd == "info") return cmd_info(args);
  if (cmd == "trace-record") return cmd_trace_record(args);
  if (cmd == "trace-info") return cmd_trace_info(args);
  if (cmd == "trace-replay") return cmd_trace_replay(args);
  if (cmd == "report") return cmd_report(args);
  if (cmd == "store") return cmd_store(args);
  if (cmd == "pack") return cmd_pack(args);
  if (cmd == "inspect") return cmd_inspect(args);
  if (cmd == "serve") return cmd_serve(args);
  if (cmd == "client") return cmd_client(args);
  throw Error("unknown subcommand: " + cmd + " (try --help)");
}

}  // namespace dv::app
