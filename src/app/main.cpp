// dragonviz CLI — run simulations and render projection views headlessly.
// (Subcommands are wired up in cli.cpp; this is only the entry point.)
#include <cstdio>
#include <exception>

#include "app/cli.hpp"

int main(int argc, char** argv) {
  try {
    return dv::app::run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dragonviz: %s\n", e.what());
    return 1;
  }
}
