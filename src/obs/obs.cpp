#include "obs/obs.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace dv::obs {

namespace {

/// Process-global registry. Counters and gauges are heap-allocated once and
/// never freed, so handles cached in static locals survive reset().
struct Registry {
  std::mutex mu;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::pair<double, std::uint64_t>> phases;
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Registry& registry() {
  static Registry* r = new Registry;  // leaked: outlives static destructors
  return *r;
}

thread_local std::string t_phase_path;  // "outer/inner" for the live stack

}  // namespace

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->value_.store(0);
  for (auto& [name, g] : r.gauges) g->value_.store(0.0);
  r.phases.clear();
  r.epoch = std::chrono::steady_clock::now();
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot s;
  s.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - r.epoch)
                       .count();
  s.counters.reserve(r.counters.size());
  for (const auto& [name, c] : r.counters) {
    if (const std::uint64_t v = c->value()) s.counters.push_back({name, v});
  }
  s.gauges.reserve(r.gauges.size());
  for (const auto& [name, g] : r.gauges) {
    if (const double v = g->value(); v != 0.0) s.gauges.push_back({name, v});
  }
  std::sort(s.counters.begin(), s.counters.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  std::sort(s.gauges.begin(), s.gauges.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  s.phases.reserve(r.phases.size());
  for (const auto& [path, acc] : r.phases) {
    s.phases.push_back({path, acc.first, acc.second});
  }
  return s;
}

namespace detail {

void phase_enter(const char* name, std::string& path_out,
                 std::string& prev_out) {
  prev_out = t_phase_path;
  if (t_phase_path.empty()) {
    t_phase_path = name;
  } else {
    t_phase_path += '/';
    t_phase_path += name;
  }
  path_out = t_phase_path;
}

void phase_exit(const std::string& path, const std::string& prev,
                double seconds) {
  // Restore the exact enclosing path (names may contain '/' themselves,
  // so stripping one component would leak segments onto the stack).
  t_phase_path = prev;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto& acc = r.phases[path];
  acc.first += seconds;
  ++acc.second;
}

}  // namespace detail

}  // namespace dv::obs
