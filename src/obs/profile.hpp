// Structured run profile: the observability registry serialized as data.
//
// A RunProfile is a Snapshot plus the JSON round-trip, written through the
// same dv::json writer the run metrics use. The schema (documented in
// docs/SPEC_LANGUAGE.md, "Profile JSON") is stable: fields are only added,
// never renamed, and counter/phase names published by the instrumented
// subsystems follow the dotted naming convention described there.
#pragma once

#include <string>

#include "json/json.hpp"
#include "obs/obs.hpp"

namespace dv::obs {

/// One run's observability record. `capture()` fills it from the global
/// registry; `wall_seconds` covers reset() → capture().
struct RunProfile {
  double wall_seconds = 0.0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<PhaseStat> phases;

  bool empty() const {
    return counters.empty() && gauges.empty() && phases.empty();
  }

  /// Value of one counter (0 when absent).
  std::uint64_t counter_value(const std::string& name) const;
  /// Value of one gauge (0.0 when absent).
  double gauge_value(const std::string& name) const;
  /// Summed seconds of the top-level phases (paths without '/'). Together
  /// these should account for most of wall_seconds in an instrumented run.
  double top_level_phase_seconds() const;

  json::Value to_json() const;
  static RunProfile from_json(const json::Value& v);
  void save(const std::string& path) const;
  static RunProfile load(const std::string& path);
};

/// Snapshots the registry into a profile (counters/gauges/phases since the
/// last obs::reset()). Returns an empty profile in DV_OBS_ENABLED=OFF
/// builds.
RunProfile capture();

}  // namespace dv::obs
