// Observability primitives: named counters, gauges, and RAII phase timers.
//
// The simulation and aggregation layers publish *where work goes* through a
// process-global registry: monotonic counters (events dispatched, packets
// delivered, rows aggregated), gauges (event rates, queue high-water marks,
// barrier wait time), and nested wall-clock phase timers. A RunProfile
// snapshot (profile.hpp) serializes the whole registry as JSON so perf
// baselines are data, not log lines — the same spirit as the declarative
// projection scripts of the VA layer.
//
// Cost model: everything here compiles away when the CMake option
// DV_OBS_ENABLED is OFF (the macros expand to nothing and the inline
// methods are empty), so the hot paths pay nothing in stripped builds.
// When ON, counters are relaxed atomics and phase enter/exit is two clock
// reads plus one mutex-guarded map update per scope exit — cheap enough to
// leave on by default.
//
// Registry lifetime: reset() zeroes every counter/gauge and clears the
// phase table but never invalidates handles, so instrumentation sites may
// cache `Counter&` references in static locals (the DV_OBS_* macros do).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/common.hpp"

namespace dv::obs {

#ifdef DV_OBS_ENABLED
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Monotonic counter. Handles are registry-owned and stable forever.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend void reset();
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time measurement. `set` overwrites, `add` accumulates and
/// `record_max` keeps a high-water mark; pick one discipline per gauge.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + v,
                                         std::memory_order_relaxed)) {
    }
  }
  void record_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend void reset();
  std::atomic<double> value_{0.0};
};

/// Accumulated wall time of one phase path ("sim", "sim/collect", ...).
struct PhaseStat {
  std::string path;
  double seconds = 0.0;
  std::uint64_t count = 0;  ///< times the phase was entered
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  double value = 0.0;
};

/// Point-in-time copy of the whole registry (see Registry::sample_*).
struct Snapshot {
  double wall_seconds = 0.0;  ///< since the last reset()
  std::vector<CounterSample> counters;  ///< nonzero counters, sorted by name
  std::vector<GaugeSample> gauges;      ///< nonzero gauges, sorted by name
  std::vector<PhaseStat> phases;        ///< sorted by path
};

/// Looks up (creating on first use) the named counter / gauge. Thread-safe;
/// the returned reference stays valid for the process lifetime.
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);

/// Zeroes all counters and gauges, clears phase accumulation, and restarts
/// the wall clock that Snapshot::wall_seconds reports against.
void reset();

/// Copies the current registry contents (cheap; safe while counting).
Snapshot snapshot();

namespace detail {
void phase_enter(const char* name, std::string& path_out,
                 std::string& prev_out);
void phase_exit(const std::string& path, const std::string& prev,
                double seconds);
}  // namespace detail

/// RAII wall-clock timer for one phase. Phases nest: a ScopedPhase created
/// while another is alive on the same thread records under the path
/// "outer/inner", and the outer phase's time includes the inner's. The
/// per-thread phase stack means concurrent phases on different threads do
/// not interleave paths. Names may themselves contain '/' (e.g.
/// "query/slab_build") to group related phases under one prefix; the exit
/// restores the exact enclosing path regardless.
class ScopedPhase {
 public:
#ifdef DV_OBS_ENABLED
  explicit ScopedPhase(const char* name)
      : start_(std::chrono::steady_clock::now()) {
    detail::phase_enter(name, path_, prev_);
  }
  ~ScopedPhase() {
    const auto end = std::chrono::steady_clock::now();
    detail::phase_exit(path_, prev_,
                       std::chrono::duration<double>(end - start_).count());
  }
#else
  explicit ScopedPhase(const char*) {}
#endif

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
#ifdef DV_OBS_ENABLED
  std::string path_;
  std::string prev_;  ///< enclosing path, restored verbatim on exit
  std::chrono::steady_clock::time_point start_;
#endif
};

// Instrumentation-site macros: compile to nothing when observability is
// off; cache the registry handle in a static local when on.
#ifdef DV_OBS_ENABLED
#define DV_OBS_CONCAT2(a, b) a##b
#define DV_OBS_CONCAT(a, b) DV_OBS_CONCAT2(a, b)
#define DV_OBS_COUNT(name, n)                                   \
  do {                                                          \
    static ::dv::obs::Counter& DV_OBS_CONCAT(dv_obs_c_, __LINE__) = \
        ::dv::obs::counter(name);                               \
    DV_OBS_CONCAT(dv_obs_c_, __LINE__).add(n);                  \
  } while (0)
#define DV_OBS_PHASE(name) ::dv::obs::ScopedPhase DV_OBS_CONCAT(dv_obs_p_, __LINE__)(name)
#define DV_OBS_GAUGE_SET(name, v)                               \
  do {                                                          \
    static ::dv::obs::Gauge& DV_OBS_CONCAT(dv_obs_g_, __LINE__) = \
        ::dv::obs::gauge(name);                                 \
    DV_OBS_CONCAT(dv_obs_g_, __LINE__).set(v);                  \
  } while (0)
#else
#define DV_OBS_COUNT(name, n) \
  do {                        \
  } while (0)
#define DV_OBS_PHASE(name) \
  do {                     \
  } while (0)
#define DV_OBS_GAUGE_SET(name, v) \
  do {                            \
  } while (0)
#endif

}  // namespace dv::obs
